"""The four code versions of the paper's optimization sequence.

========================  ======================================================
Stage                     Matches
========================  ======================================================
``BASELINE``              unmodified FSBM: ``kernals_ks`` precomputes all 20
                          global collision arrays per grid point; everything
                          runs on the CPU
``LOOKUP``                Sec. VI-A: ``kernals_ks`` deleted, entries computed
                          on demand by pure ``get_cw**`` functions; still CPU
``OFFLOAD_COLLAPSE2``     Sec. VI-B: collision loop fissioned out of Listing 1
                          and offloaded with ``collapse(2)``; automatic arrays
                          remain, the inner ``i`` loop is serial per thread
``OFFLOAD_COLLAPSE3``     Sec. VI-C: automatic arrays replaced by pointers into
                          preallocated ``*_temp`` module arrays, full
                          ``collapse(3)``
========================  ======================================================

This module is deliberately dependency-free (an enum plus static
metadata) so both the microphysics driver and the experiment harness
can import it without cycles.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class Stage(enum.Enum):
    """Code version being run."""

    BASELINE = "baseline"
    LOOKUP = "lookup"
    OFFLOAD_COLLAPSE2 = "offload_collapse2"
    OFFLOAD_COLLAPSE3 = "offload_collapse3"

    @property
    def uses_gpu(self) -> bool:
        return self in (Stage.OFFLOAD_COLLAPSE2, Stage.OFFLOAD_COLLAPSE3)

    @property
    def on_demand_kernels(self) -> bool:
        """Whether the lookup optimization is applied (all but baseline)."""
        return self is not Stage.BASELINE


@dataclass(frozen=True, slots=True)
class StageSpec:
    """Static properties of a stage used to build kernels and reports."""

    stage: Stage
    label: str
    collapse: int
    #: Automatic arrays still present in coal_bott_new?
    automatic_arrays: bool
    #: Live scalar/array-variable counts for the register estimate
    #: (coal_bott_new's declarations; the pointer rewrite removes the
    #: per-array descriptors from registers).
    n_scalars: int
    n_array_vars: int
    pointer_based: bool

    @property
    def description(self) -> str:
        return f"{self.label} (collapse({self.collapse}))" if self.collapse else self.label


STAGE_SPECS: dict[Stage, StageSpec] = {
    Stage.BASELINE: StageSpec(
        stage=Stage.BASELINE,
        label="CPU baseline (kernals_ks precompute)",
        collapse=0,
        automatic_arrays=True,
        n_scalars=30,
        n_array_vars=30,
        pointer_based=False,
    ),
    Stage.LOOKUP: StageSpec(
        stage=Stage.LOOKUP,
        label="CPU + lookup optimization (get_cw** on demand)",
        collapse=0,
        automatic_arrays=True,
        n_scalars=30,
        n_array_vars=30,
        pointer_based=False,
    ),
    Stage.OFFLOAD_COLLAPSE2: StageSpec(
        stage=Stage.OFFLOAD_COLLAPSE2,
        label="GPU offload, collapse(2), automatic arrays",
        collapse=2,
        automatic_arrays=True,
        n_scalars=30,
        n_array_vars=30,
        pointer_based=False,
    ),
    Stage.OFFLOAD_COLLAPSE3: StageSpec(
        stage=Stage.OFFLOAD_COLLAPSE3,
        label="GPU offload, collapse(3), temp_arrays pointers",
        collapse=3,
        automatic_arrays=False,
        n_scalars=20,
        n_array_vars=30,
        pointer_based=True,
    ),
}
