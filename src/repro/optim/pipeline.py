"""Run the optimization sequence end-to-end and collect stage timings.

This is the harness behind Tables III, IV and V: it runs the same
CONUS-12km configuration under each code version, extracts the three
quantities the paper tracks (the isolated collision loop, ``fast_sbm``,
and the whole program), and forms current/cumulative speedups exactly
as the paper defines them (per-time-step simulated seconds; elapsed
time is set by the slowest rank, so the "whole program" row reflects
the critical path).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.env import PAPER_ENV, OffloadEnv
from repro.errors import StageVerificationError
from repro.optim.speedup import SpeedupRow, speedup_table
from repro.optim.stages import Stage, StageSpec
from repro.wrf.model import RunResult, WrfModel
from repro.wrf.namelist import Namelist

#: The sequence of code versions the paper steps through.
OPTIMIZATION_SEQUENCE = (
    Stage.BASELINE,
    Stage.LOOKUP,
    Stage.OFFLOAD_COLLAPSE2,
    Stage.OFFLOAD_COLLAPSE3,
)


@dataclass(frozen=True, slots=True)
class StageTimings:
    """Per-step simulated seconds of the paper's tracked quantities."""

    stage: Stage
    #: Whole-program elapsed per step (the paper's "Overall").
    overall: float
    #: fast_sbm per step on the critical (slowest) rank.
    fast_sbm: float
    #: The isolated collision loop per step on the critical rank.
    coal_loop: float

    def as_dict(self) -> dict[str, float]:
        return {
            "coal_bott_new loop": self.coal_loop,
            "fast_sbm": self.fast_sbm,
            "Overall": self.overall,
        }


def timings_from_result(result: RunResult) -> StageTimings:
    """Extract the tracked quantities from a completed run."""
    steps = max(1, result.steps_run)
    fast_sbm = max(
        c.region_total("fast_sbm") for c in result.rank_clocks
    ) / steps
    coal = max(
        c.region_total("coal_bott_new") for c in result.rank_clocks
    ) / steps
    return StageTimings(
        stage=result.namelist.stage,
        overall=result.per_step_elapsed,
        fast_sbm=fast_sbm,
        coal_loop=coal,
    )


def run_stage(
    namelist: Namelist,
    stage: Stage,
    num_steps: int,
    verify: bool = False,
    verify_env: OffloadEnv | None = None,
    stage_spec: StageSpec | None = None,
) -> tuple[RunResult, StageTimings]:
    """Run one code version of the given configuration.

    With ``verify=True`` the stage's representative offload source is
    statically verified (``repro.codee.verifier``) before the model is
    built, under ``verify_env`` (default: the environment the stage
    will actually run with). Blocking violations raise
    :class:`~repro.errors.StageVerificationError` instead of running —
    the paper's Codee-before-execute workflow. ``stage_spec`` overrides
    the registered spec for what-if gating.
    """
    import dataclasses

    nl = namelist.with_stage(stage)
    if stage.uses_gpu and nl.env.stack_bytes < PAPER_ENV.stack_bytes:
        # GPU stages run under the paper's Table II environment unless
        # the caller configured one explicitly.
        nl = dataclasses.replace(nl, env=PAPER_ENV)
    if verify:
        from repro.optim.verify_gate import verify_stage

        violations = verify_stage(
            stage, env=verify_env or nl.env, spec=stage_spec
        )
        if violations:
            raise StageVerificationError(stage, violations)
    model = WrfModel(nl)
    try:
        result = model.run(num_steps=num_steps)
    finally:
        model.close()
    return result, timings_from_result(result)


@dataclass
class OptimizationRun:
    """All stage timings plus the paper-style speedup tables."""

    timings: dict[Stage, StageTimings] = field(default_factory=dict)
    #: Stage the verify gate refused to run, if any (later stages are
    #: skipped; earlier timings are kept).
    halted_at: Stage | None = None
    #: The gate's blocking violations for ``halted_at``.
    gate_violations: list = field(default_factory=list)

    def table_rows(
        self, current: Stage, previous: Stage, names: list[str], first: Stage
    ) -> list[SpeedupRow]:
        """Speedup rows between two stages (paper Tables III-V)."""
        cur = self.timings[current].as_dict()
        prev = self.timings[previous].as_dict()
        fst = self.timings[first].as_dict()
        return speedup_table(names, prev, cur, fst)

    def table3(self) -> list[SpeedupRow]:
        """Lookup optimization (fast_sbm first measured at BASELINE)."""
        return self.table_rows(
            Stage.LOOKUP, Stage.BASELINE, ["fast_sbm", "Overall"], Stage.BASELINE
        )

    def table4(self) -> list[SpeedupRow]:
        """collapse(2) offload (coal loop first measured at LOOKUP)."""
        rows = self.table_rows(
            Stage.OFFLOAD_COLLAPSE2,
            Stage.LOOKUP,
            ["coal_bott_new loop", "fast_sbm", "Overall"],
            Stage.BASELINE,
        )
        # The collision loop was first measured at the LOOKUP stage.
        fixed = []
        for r in rows:
            if r.name == "coal_bott_new loop":
                fixed.append(
                    SpeedupRow(
                        name=r.name,
                        previous_seconds=r.previous_seconds,
                        current_seconds=r.current_seconds,
                        first_seconds=self.timings[Stage.LOOKUP].coal_loop,
                    )
                )
            else:
                fixed.append(r)
        return fixed

    def table5(self) -> list[SpeedupRow]:
        """collapse(3) with temp_arrays pointers."""
        rows = self.table_rows(
            Stage.OFFLOAD_COLLAPSE3,
            Stage.OFFLOAD_COLLAPSE2,
            ["coal_bott_new loop", "fast_sbm", "Overall"],
            Stage.BASELINE,
        )
        fixed = []
        for r in rows:
            if r.name == "coal_bott_new loop":
                fixed.append(
                    SpeedupRow(
                        name=r.name,
                        previous_seconds=r.previous_seconds,
                        current_seconds=r.current_seconds,
                        first_seconds=self.timings[Stage.LOOKUP].coal_loop,
                    )
                )
            else:
                fixed.append(r)
        return fixed


def run_optimization_sequence(
    namelist: Namelist,
    num_steps: int,
    stages: tuple[Stage, ...] = OPTIMIZATION_SEQUENCE,
    verify: bool = False,
    verify_env: OffloadEnv | None = None,
    stage_specs: dict[Stage, StageSpec] | None = None,
) -> OptimizationRun:
    """Run every stage of the sequence on one configuration.

    With ``verify=True`` each stage must pass the static verify gate
    before it runs; a refusal halts the sequence (``halted_at`` and
    ``gate_violations`` record why) rather than raising, so the stages
    that did pass keep their timings.
    """
    out = OptimizationRun()
    for stage in stages:
        try:
            _, timings = run_stage(
                namelist,
                stage,
                num_steps,
                verify=verify,
                verify_env=verify_env,
                stage_spec=(stage_specs or {}).get(stage),
            )
        except StageVerificationError as exc:
            out.halted_at = stage
            out.gate_violations = exc.violations
            break
        out.timings[stage] = timings
    return out
