"""The staged optimization pipeline (Sec. VI of the paper).

`repro.optim.stages` names the four code versions; `repro.optim.pipeline`
runs the WRF model end-to-end under each and collects the per-step
timings from which `repro.optim.speedup` builds the paper's speedup
tables.
"""

from repro.optim.stages import Stage, StageSpec, STAGE_SPECS
from repro.optim.speedup import SpeedupRow, speedup_table, format_speedup_table

__all__ = [
    "Stage",
    "StageSpec",
    "STAGE_SPECS",
    "SpeedupRow",
    "speedup_table",
    "format_speedup_table",
]
