"""Speedup bookkeeping for the paper's Tables III–V and VII.

The paper reports two ratios per row: *current speedup* (this version
versus the previous one) and *cumulative speedup* (this version versus
the version in which the quantity was first measured). Both are
computed from per-time-step simulated seconds.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class SpeedupRow:
    """One row of a speedup table."""

    name: str
    previous_seconds: float
    current_seconds: float
    first_seconds: float

    @property
    def current_speedup(self) -> float:
        """Speedup over the immediately preceding code version."""
        if self.current_seconds <= 0:
            return float("inf")
        return self.previous_seconds / self.current_seconds

    @property
    def cumulative_speedup(self) -> float:
        """Speedup over the version where this quantity was first measured."""
        if self.current_seconds <= 0:
            return float("inf")
        return self.first_seconds / self.current_seconds


def speedup_table(
    names: list[str],
    previous: dict[str, float],
    current: dict[str, float],
    first: dict[str, float],
) -> list[SpeedupRow]:
    """Assemble rows for the named quantities (e.g. fast_sbm, Overall)."""
    return [
        SpeedupRow(
            name=n,
            previous_seconds=previous[n],
            current_seconds=current[n],
            first_seconds=first[n],
        )
        for n in names
    ]


def format_speedup_table(rows: list[SpeedupRow], title: str = "") -> str:
    """Render rows in the paper's two-column speedup format."""
    lines = []
    if title:
        lines.append(title)
    width = max((len(r.name) for r in rows), default=10)
    lines.append(f"{'':{width}}  {'Current speedup':>16}  {'Cumulative speedup':>19}")
    for r in rows:
        lines.append(
            f"{r.name:{width}}  {r.current_speedup:>15.2f}x  {r.cumulative_speedup:>18.2f}x"
        )
    return "\n".join(lines)
