"""Cost projection for large rank counts (Fig. 4 / Table VII).

Running 256 live Python ranks is infeasible, so the scaling experiments
combine three honest ingredients instead:

1. **Work rates** measured from a *live* reduced run (real physics):
   kernel/pair entries per collision cell, condensation updates per
   microphysics cell, and the growth of the active-cell population as
   the storms develop.
2. **Per-patch activity census** of the full-size CONUS-12km case:
   the synthetic case is deterministic in global coordinates, so every
   patch's cloudy-cell count is computed exactly at the target
   decomposition — this is where the paper's load imbalance comes from.
3. **The same pricing code paths** the live model uses: the Milan CPU
   model, the offload engine (including per-rank device contexts, stack
   reservations, ``temp_arrays`` footprints — and therefore the
   ranks-per-GPU memory limit), and the BSP step scheduler.

The projection then charges one representative step per rank and
multiplies by the step count of the 10-minute run.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.constants import NKR
from repro.core.clock import SimClock, TimeBucket
from repro.core.costmodel import CpuCostModel
from repro.core.directives import TargetTeamsDistributeParallelDo
from repro.core.engine import OffloadEngine
from repro.core.env import PAPER_ENV
from repro.core.kernel import Kernel
from repro.errors import CudaOutOfMemory, CudaStackOverflow
from repro.fsbm.coal_bott import CoalWorkStats
from repro.fsbm.collision_kernels import get_tables
from repro.fsbm.condensation import FLOPS_PER_BIN as COND_FLOPS_PER_BIN
from repro.fsbm.fast_sbm import coal_kernel_resources
from repro.fsbm.nucleation import FLOPS_PER_POINT as NUCL_FLOPS_PER_POINT
from repro.fsbm.sedimentation import FLOPS_PER_BIN as SED_FLOPS_PER_BIN
from repro.fsbm.species import Species
from repro.fsbm.temp_arrays import TempArrays
from repro.grid.decomposition import decompose_domain
from repro.grid.halo import build_halo_plan
from repro.hardware.specs import EPYC_MILAN, PERLMUTTER_CPU_NODE
from repro.mpi.costmodel import CommCostModel
from repro.mpi.gpu_sharing import GpuPool
from repro.mpi.scheduler import RankStepCharge, StepScheduler
from repro.optim.stages import STAGE_SPECS, Stage
from repro.wrf.cases import CaseConfig, _bubble_centers
from repro.wrf.model import ACOUSTIC_FIELDS, ACOUSTIC_SUBSTEPS, IO_BANDWIDTH, WrfModel
from repro.wrf.namelist import Namelist
from repro.wrf.state import base_state_column
from repro.constants import T_COAL_CUTOFF


@dataclass(frozen=True)
class WorkRates:
    """Per-cell work rates measured from a live reduced run."""

    pair_entries_per_coal_cell: float
    ondemand_entries_per_coal_cell: float
    cond_updates_per_mp_cell: float
    mp_cells_per_coal_cell: float
    #: Evolved coal cells / initial-condition coal cells.
    coal_growth: float

    @classmethod
    def measure(
        cls,
        scale: float = 0.12,
        num_ranks: int = 4,
        num_steps: int = 4,
        seed: int = 2024,
    ) -> "WorkRates":
        """Run a small live LOOKUP-stage model and extract the rates."""
        from repro.wrf.namelist import conus12km_namelist

        nl = conus12km_namelist(
            scale=scale, num_ranks=num_ranks, stage=Stage.LOOKUP, seed=seed
        )
        model = WrfModel(nl)
        ic_coal = _ic_coal_cells_live(model)
        result = model.run(num_steps=num_steps)
        pair = entries = cond = mp = coal = 0.0
        for timing in result.step_timings:
            for stats in timing.sbm_stats:
                pair += stats.coal.pair_entries
                entries += stats.coal.kernel_entries
                cond += stats.cond.bin_updates
                mp += stats.mp_points
                coal += stats.coal_points
        coal = max(coal, 1.0)
        mp = max(mp, 1.0)
        steps = max(1, result.steps_run)
        return cls(
            pair_entries_per_coal_cell=pair / coal,
            ondemand_entries_per_coal_cell=entries / coal,
            cond_updates_per_mp_cell=cond / mp,
            mp_cells_per_coal_cell=mp / coal,
            coal_growth=(coal / steps) / max(ic_coal, 1.0),
        )


def _ic_coal_cells_live(model: WrfModel) -> float:
    """Collision-eligible cells in the live model's initial condition."""
    total = 0
    for f, patch in zip(model.fields, model.decomposition.patches):
        from repro.grid.indexing import owned_slice

        sl = owned_slice(patch)
        cond = f.micro.total_condensate_mass()[sl]
        t = f.t[sl]
        total += int(((cond > 1.0e-12) & (t > T_COAL_CUTOFF)).sum())
    return float(total)


def domain_activity_census(
    namelist: Namelist, cfg: CaseConfig | None = None
) -> list[int]:
    """Initial-condition cloudy-cell count per rank, at full extents.

    Rebuilds the deterministic bubble field once for the whole domain
    and slices per patch — exact per-patch counts without constructing
    any 3D state.
    """
    cfg = cfg or CaseConfig()
    domain = namelist.domain
    dec = decompose_domain(domain, namelist.num_ranks)
    centers = _bubble_centers(domain, cfg, namelist.seed)
    gi = np.arange(1, domain.nx + 1, dtype=float)
    gj = np.arange(1, domain.ny + 1, dtype=float)
    dtheta = np.zeros((domain.nx, domain.ny))
    for ci, cj, amp in centers:
        r2 = ((gi[:, None] - ci) ** 2 + (gj[None, :] - cj) ** 2) / cfg.bubble_radius**2
        dtheta += amp * np.exp(-r2)
    kk = np.arange(domain.nz, dtype=float)
    vert = np.exp(-((kk - cfg.bubble_k_center) ** 2) / cfg.bubble_k_radius**2)
    base = base_state_column(domain.nz, domain.dz)
    warm = base["temperature"] > T_COAL_CUTOFF

    # Per-column count of cloudy, collision-eligible levels.
    levels_per_strength = ((vert[None, :] * 1.0) > 0.0)  # placeholder shape
    counts: list[int] = []
    for patch in dec.patches:
        sub = dtheta[patch.i.to_slice(1), :][:, patch.j.to_slice(1)]
        cloudy3d = (
            sub[:, None, :] * vert[None, :, None] > cfg.cloud_threshold
        ) & warm[None, :, None]
        counts.append(int(cloudy3d.sum()))
    return counts


@dataclass
class ProjectedRun:
    """Outcome of one projected configuration."""

    namelist: Namelist
    stage: Stage
    #: Simulated elapsed seconds for the full run (e.g. 600 model s).
    total_seconds: float
    per_step_seconds: float
    breakdown: dict[str, float]
    #: Device failure encountered while standing the job up, if any.
    error: str | None = None

    @property
    def failed(self) -> bool:
        return self.error is not None


def project_run(
    namelist: Namelist,
    rates: WorkRates,
    cfg: CaseConfig | None = None,
) -> ProjectedRun:
    """Project one configuration's full-run elapsed time."""
    stage = namelist.stage
    spec = STAGE_SPECS[stage]
    nranks = namelist.num_ranks
    dec = decompose_domain(namelist.domain, nranks)
    plan = build_halo_plan(dec)
    census = domain_activity_census(namelist, cfg)
    tables = get_tables()

    if stage.uses_gpu:
        # 4 GPUs per node: the job spans num_gpus/4 nodes and packs its
        # ranks onto them (e.g. 40 ranks on 2 nodes = 20 per node).
        nodes = max(1, namelist.num_gpus // 4)
        ranks_per_node = max(1, -(-nranks // nodes))
        cpu = EPYC_MILAN
    else:
        ranks_per_node = min(nranks, PERLMUTTER_CPU_NODE.cpu.cores)
        cpu = PERLMUTTER_CPU_NODE.cpu
    comm = CommCostModel(ranks_per_node=ranks_per_node)
    cpu_cost = CpuCostModel(cpu=cpu, active_cores_on_socket=min(nranks, ranks_per_node))

    gpu_pool: GpuPool | None = None
    engines: list[OffloadEngine] = []
    clocks = [SimClock() for _ in range(nranks)]
    if stage.uses_gpu:
        gpu_pool = GpuPool(num_gpus=namelist.num_gpus)
        devices = gpu_pool.bind(nranks)
        env = namelist.env if namelist.env.stack_bytes >= 65536 else PAPER_ENV
        try:
            for r in range(nranks):
                engines.append(
                    OffloadEngine(device=devices[r], env=env, clock=clocks[r])
                )
            if stage is Stage.OFFLOAD_COLLAPSE3:
                for r, patch in enumerate(dec.patches):
                    TempArrays(patch.shape).allocate(engines[r])
        except (CudaOutOfMemory, CudaStackOverflow) as exc:
            for e in engines:
                e.close()
            return ProjectedRun(
                namelist=namelist,
                stage=stage,
                total_seconds=float("nan"),
                per_step_seconds=float("nan"),
                breakdown={},
                error=f"{type(exc).__name__}: {exc}",
            )

    scheduler = StepScheduler(nranks=nranks, gpu_pool=gpu_pool)
    nscalars = 3 + len(Species) * NKR
    n_steps = namelist.num_steps
    baseline_entries = tables.baseline_entry_count()

    error: str | None = None
    for rank, patch in enumerate(dec.patches):
        clock = clocks[rank]
        cells = patch.num_points
        coal_cells = census[rank] * rates.coal_growth
        mp_cells = coal_cells * rates.mp_cells_per_coal_cell

        def charge(flops: float, nbytes: float, iters: int = 0) -> None:
            clock.advance(
                TimeBucket.CPU_COMPUTE, cpu_cost.time(flops, nbytes, iters)
            )

        # Scan + non-collision microphysics (always CPU).
        charge(2.0 * cells, 8.0 * cells, iters=cells)
        charge(mp_cells * NUCL_FLOPS_PER_POINT, mp_cells * 32.0)
        cond_updates = mp_cells * rates.cond_updates_per_mp_cell
        charge(cond_updates * COND_FLOPS_PER_BIN, cond_updates * 16.0)
        sed_bins = float(cells) * NKR * len(Species)
        charge(sed_bins * SED_FLOPS_PER_BIN, sed_bins * 12.0)

        # Dynamics (always CPU).
        from repro.wrf.dynamics import (
            FLOPS_PER_CELL_TEND,
            FLOPS_PER_CELL_UPDATE,
            RK3_FRACTIONS,
        )

        css = float(cells * nscalars * len(RK3_FRACTIONS))
        charge(css * FLOPS_PER_CELL_TEND, css * 16.0, iters=int(css))
        charge(css * FLOPS_PER_CELL_UPDATE, css * 12.0)

        # Collision loop, per stage.
        work = CoalWorkStats(
            active_points=int(coal_cells),
            kernel_entries=(
                coal_cells * baseline_entries
                if stage is Stage.BASELINE
                else coal_cells * rates.ondemand_entries_per_coal_cell
            ),
            pair_entries=coal_cells * rates.pair_entries_per_coal_cell,
        )
        if not stage.uses_gpu:
            charge(work.flops, work.bytes_moved, iters=int(work.pair_entries))
        else:
            resources = coal_kernel_resources(
                spec, work, max(1, int(coal_cells)), NKR
            )
            kernel = Kernel(
                name="coal_bott_new_loop",
                loop_extents=(patch.j.size, patch.k.size, patch.i.size),
                resources=resources,
                body=None,
            )
            directive = TargetTeamsDistributeParallelDo(collapse=spec.collapse)
            try:
                engines[rank].launch(kernel, directive)
            except CudaStackOverflow as exc:
                error = f"CudaStackOverflow: {exc}"
                break
            xfer = coal_cells * NKR * len(Species) * 4.0 * 2.0
            clock.advance(
                TimeBucket.H2D, engines[rank].pcie.transfer_time(int(xfer / 2))
            )
            clock.advance(
                TimeBucket.D2H, engines[rank].pcie.transfer_time(int(xfer / 2))
            )

        # Halo exchange + acoustic traffic.
        segs = plan.segments_from(rank)
        per_exchange = sum(
            comm.p2p_time(s.src, s.dst, s.num_points * 4) for s in segs
        )
        n_acoustic = len(RK3_FRACTIONS) * ACOUSTIC_SUBSTEPS * ACOUSTIC_FIELDS
        full_fields = sum(
            comm.p2p_time(s.src, s.dst, s.num_points * 4 * nscalars) for s in segs
        )
        clock.advance(
            TimeBucket.MPI,
            full_fields + per_exchange * n_acoustic + comm.step_sync_noise(nranks),
        )

        # History I/O, amortized per step: wrfout frames carry every bin
        # variable (the paper's timings include I/O).
        domain_bytes = namelist.domain.num_points * 4 * (5 + len(Species) * NKR)
        clock.advance(
            TimeBucket.IO, 2.0 * (domain_bytes / IO_BANDWIDTH) / nranks / n_steps
        )

    for e in engines:
        e.close()

    if error is not None:
        return ProjectedRun(
            namelist=namelist,
            stage=stage,
            total_seconds=float("nan"),
            per_step_seconds=float("nan"),
            breakdown={},
            error=error,
        )

    charges = [
        RankStepCharge.from_clock_delta(
            {b.value: 0.0 for b in TimeBucket}, c.snapshot()
        )
        for c in clocks
    ]
    step_seconds = scheduler.commit_step(charges)
    return ProjectedRun(
        namelist=namelist,
        stage=stage,
        total_seconds=step_seconds * n_steps,
        per_step_seconds=step_seconds,
        breakdown=dict(scheduler.breakdown),
    )
