"""Static verification gate for the optimization pipeline.

The paper's porting loop never ran a rewritten code version before
Codee's dependence analysis had signed off on it (Sec. V-A, VI-A).
This module gives our pipeline the same discipline: each stage of the
optimization sequence has a representative Fortran offload source
(assembled from the embedded listings), and :func:`verify_stage` runs
`repro.codee.verifier` over it under the budgets of the environment the
stage will execute with. `repro.optim.pipeline` refuses to advance to a
stage whose source does not verify clean — in particular, a
``collapse(3)`` stage that still carries automatic arrays trips the
stack-pressure checker *statically* instead of crashing the simulated
launch with :class:`~repro.errors.CudaStackOverflow`.

Since PR 6 the gate also covers the compiled-kernel side: every
registered loop-IR kernel (the generated C the model actually runs)
is re-verified with the IR rules VFY006–VFY010
(:func:`verify_ir_kernels`), so an illegal transformation refuses the
stage before any C is compiled.
"""

from __future__ import annotations

from repro.codee import sources
from repro.codee.verifier import VerifierConfig, Violation, verify_text
from repro.core.env import OffloadEnv
from repro.optim.stages import STAGE_SPECS, Stage, StageSpec

#: The automatic-array coal_bott_new of Listing 7, as a module routine
#: (body of ``sources.COAL_BOTT_ORIGINAL_SOURCE`` without the wrapper).
_COAL_BOTT_AUTOMATIC = sources.COAL_BOTT_ORIGINAL_SOURCE.strip()

#: Listing 8 split into its two program units.
_TEMP_ARRAYS_MODULE, _COAL_BOTT_POINTER = (
    part.strip() for part in sources.COAL_BOTT_POINTER_SOURCE.split("\n\n", 1)
)


def stage_offload_source(spec: StageSpec) -> str | None:
    """Representative offload source of one stage (None for CPU stages).

    GPU stages get the fissioned collision driver (Listing 6) under the
    stage's ``collapse`` level, calling either the automatic-array
    ``coal_bott_new`` (Listing 7) or the pointer-based rewrite
    (Listing 8) according to the spec.
    """
    if spec.collapse < 1:
        return None
    coal_bott = _COAL_BOTT_POINTER if spec.pointer_based else _COAL_BOTT_AUTOMATIC
    prelude = f"{_TEMP_ARRAYS_MODULE}\n\n" if spec.pointer_based else ""
    temp_names = ", ".join(("fl1_temp", "fl2_temp", "g1_temp", "g2_temp"))
    lifecycle = (
        "subroutine temp_arrays_setup()\n"
        "  implicit none\n"
        f"!$omp target enter data map(alloc: {temp_names})\n"
        "end subroutine temp_arrays_setup\n"
        "\n"
        "subroutine temp_arrays_teardown()\n"
        "  implicit none\n"
        f"!$omp target exit data map(release: {temp_names})\n"
        "end subroutine temp_arrays_teardown\n"
        "\n"
        if spec.pointer_based
        else ""
    )
    return (
        f"{prelude}"
        "subroutine coal_bott_driver(call_coal_bott_new, its, ite, kts, "
        "kte, jts, jte)\n"
        "  implicit none\n"
        "  integer, intent(in) :: its, ite, kts, kte, jts, jte\n"
        "  logical, intent(in) :: "
        "call_coal_bott_new(its:ite, kts:kte, jts:jte)\n"
        "  integer :: i, k, j\n"
        f"!$omp target teams distribute parallel do collapse({spec.collapse}) &\n"
        "!$omp map(to: call_coal_bott_new)\n"
        "  do j = jts, jte\n"
        "    do k = kts, kte\n"
        "      do i = its, ite\n"
        "        if (call_coal_bott_new(i,k,j)) then\n"
        "          call coal_bott_new(i, k, j)\n"
        "        endif\n"
        "      enddo\n"
        "    enddo\n"
        "  enddo\n"
        "end subroutine coal_bott_driver\n"
        "\n"
        f"{lifecycle}"
        f"{coal_bott}\n"
    )


def verify_stage(
    stage: Stage,
    env: OffloadEnv | None = None,
    spec: StageSpec | None = None,
) -> list[Violation]:
    """Blocking violations in one stage's representative offload source.

    ``env`` supplies the stack/heap budgets the stage will run under
    (defaults to the bare NVHPC environment); ``spec`` overrides the
    registered :data:`STAGE_SPECS` entry for what-if analysis (e.g. the
    paper's first ``collapse(3)`` attempt, which still had automatic
    arrays).
    """
    spec = spec or STAGE_SPECS[stage]
    config = VerifierConfig.from_env(env) if env is not None else VerifierConfig()
    text = stage_offload_source(spec)
    violations: list[Violation] = []
    if text is not None:
        path = f"stage_{spec.stage.value}.f90"
        violations.extend(verify_text(text, path, config))
    # The stage also runs the generated IR kernels; an illegal
    # transformation there refuses the stage just like a bad directive.
    violations.extend(verify_ir_kernels(config))
    return [
        v
        for v in violations
        if v.severity == "error" and v.category == "correctness"
    ]


def verify_ir_kernels(config: VerifierConfig | None = None) -> list[Violation]:
    """All IR-rule findings across the registered (gated) IR kernels.

    Each kernel is verified *as transformed* — the exact form
    `repro.codee.cgen` would emit — so the gate rejects an illegal
    derived annotation before `repro.core.cjit` sees any source.
    """
    from repro.codee import irverify, loopir

    config = config or VerifierConfig()
    violations: list[Violation] = []
    gated = loopir.gate_kernels()
    for name in sorted(gated):
        violations.extend(
            irverify.verify_kernel(gated[name].final_kernel(), config)
        )
    return violations
