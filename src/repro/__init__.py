"""Reproduction of "Optimizing the Weather Research and Forecasting
Model with OpenMP Offload and Codee" (SC 2024).

Top-level subpackages:

- :mod:`repro.grid` — WRF's domain/patch/tile decomposition (Fig. 1).
- :mod:`repro.hardware` — simulated A100/Milan specs, occupancy, caches,
  roofline.
- :mod:`repro.core` — the OpenMP-offload execution engine and cost
  models.
- :mod:`repro.mpi` — the in-process MPI simulator and GPU sharing.
- :mod:`repro.fsbm` — the Fast Spectral-Bin Microphysics scheme (and a
  bulk-scheme comparator).
- :mod:`repro.wrf` — the WRF-shaped model driver, synthetic CONUS-12km
  case, wrfout I/O, diffwrf.
- :mod:`repro.codee` — the static-analysis workflow (parser, dependence
  analysis, checks, offload rewriter, CLI).
- :mod:`repro.profiling` — gprof/NVTX/Nsight shims.
- :mod:`repro.optim` — the four optimization stages, live pipeline, and
  full-size cost projection.
- :mod:`repro.experiments` — one module per paper table/figure.

See README.md for a tour, DESIGN.md for the substitution map, and
EXPERIMENTS.md for paper-vs-measured results.
"""

__version__ = "1.0.0"

#: The paper this repository reproduces.
PAPER = (
    "Optimizing the Weather Research and Forecasting Model with "
    "OpenMP Offload and Codee (SC 2024)"
)
