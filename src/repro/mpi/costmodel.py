"""Communication cost model for the simulated interconnect.

Messages between ranks on the same node go through shared memory;
cross-node messages ride the Slingshot NIC. Node placement follows
Perlmutter's layout: GPU jobs place 1-4 ranks per GPU with 4 GPUs per
node; CPU jobs pack up to 128 ranks per node.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware.specs import SLINGSHOT_11, LinkSpec

#: Shared-memory transport between ranks on one node.
INTRA_NODE = LinkSpec(name="xpmem shared memory", latency=0.6e-6, bandwidth=48.0e9)

#: Per-step synchronization-noise coefficient [s / rank^0.8]; see
#: :meth:`CommCostModel.step_sync_noise`.
SYNC_NOISE_COEFF = 0.02


@dataclass(frozen=True)
class CommCostModel:
    """Latency/bandwidth charges for messages and collectives."""

    ranks_per_node: int
    inter_node: LinkSpec = SLINGSHOT_11
    intra_node: LinkSpec = INTRA_NODE

    def node_of(self, rank: int) -> int:
        return rank // max(1, self.ranks_per_node)

    def link(self, src: int, dst: int) -> LinkSpec:
        return (
            self.intra_node
            if self.node_of(src) == self.node_of(dst)
            else self.inter_node
        )

    def p2p_time(self, src: int, dst: int, nbytes: int) -> float:
        """One point-to-point message."""
        return self.link(src, dst).transfer_time(nbytes)

    def allreduce_time(self, nranks: int, nbytes: int) -> float:
        """Recursive-doubling allreduce estimate."""
        if nranks <= 1:
            return 0.0
        import math

        rounds = math.ceil(math.log2(nranks))
        # Worst-case round goes inter-node once the job spans nodes.
        link = self.inter_node if nranks > self.ranks_per_node else self.intra_node
        return rounds * link.transfer_time(nbytes)

    def barrier_time(self, nranks: int) -> float:
        """Barrier as a zero-byte allreduce."""
        return self.allreduce_time(nranks, 8)

    def step_sync_noise(self, nranks: int) -> float:
        """Straggler/OS-noise cost of one model step's sync points [s].

        WRF's split-explicit solver synchronizes neighbors dozens of
        times per step; at scale, per-rank jitter (OS noise, network
        contention, cache interference) is amplified because every sync
        waits for the slowest participant. Empirically this grows close
        to linearly in job size for fine-grained BSP codes; we use
        ``SYNC_NOISE_COEFF * nranks^0.8``, calibrated once against the
        paper's 256-rank CPU elapsed time (Table VII) and frozen.
        """
        if nranks <= 1:
            return 0.0
        return SYNC_NOISE_COEFF * nranks**0.8
