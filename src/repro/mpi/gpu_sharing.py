"""Rank-to-GPU binding and shared-device accounting.

Sec. VII-A of the paper fixes the number of GPUs and raises the rank
count, distributing ranks to GPUs round-robin. Kernels from co-resident
ranks serialize on the device, and each rank's context carries its own
stack reservation plus ``temp_arrays`` footprint — which is what capped
the paper at 5 ranks per GPU on the 40 GB A100.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.device import Device
from repro.errors import ConfigurationError
from repro.hardware.specs import A100_40GB, GpuSpec


def bind_ranks_round_robin(nranks: int, ngpus: int) -> list[int]:
    """GPU index per rank, round-robin as on Perlmutter (rank r -> r % g)."""
    if ngpus < 1:
        raise ConfigurationError("need at least one GPU to bind ranks")
    return [r % ngpus for r in range(nranks)]


@dataclass
class GpuPool:
    """The job's GPUs and the rank binding."""

    num_gpus: int
    spec: GpuSpec = field(default_factory=lambda: A100_40GB)
    devices: list[Device] = field(default_factory=list)
    binding: list[int] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.devices:
            self.devices = [
                Device(spec=self.spec, device_id=g) for g in range(self.num_gpus)
            ]

    def bind(self, nranks: int) -> list[Device]:
        """Assign every rank a device, round-robin; returns rank -> device."""
        self.binding = bind_ranks_round_robin(nranks, self.num_gpus)
        return [self.devices[g] for g in self.binding]

    def ranks_on(self, gpu: int) -> list[int]:
        """Ranks bound to one GPU."""
        return [r for r, g in enumerate(self.binding) if g == gpu]

    def serialize_kernel_time(self, per_rank_gpu_seconds: list[float]) -> float:
        """Busy time of the most loaded GPU given each rank's kernel seconds.

        Kernels from ranks sharing one device run back-to-back in its
        FIFO queue, so the device's busy time is the *sum* over its
        ranks; the job waits for the slowest device.
        """
        if not self.binding:
            raise ConfigurationError("bind() must run before serialization")
        busy = [0.0] * self.num_gpus
        for rank, seconds in enumerate(per_rank_gpu_seconds):
            busy[self.binding[rank]] += seconds
        return max(busy) if busy else 0.0
