"""BSP step scheduler: per-rank charges -> job elapsed time.

Within one model step, every rank runs its CPU phases concurrently with
the others, device kernels serialize per shared GPU, and halo exchange
synchronizes everyone. The step's contribution to job elapsed time is

    max_r(cpu_r + transfers_r) + max_g(sum of kernel seconds on g)
    + max_r(mpi_r) + max_r(io_r)

which makes the paper's two scaling effects emerge naturally: FSBM load
*imbalance* (the max over ranks grows relative to the mean as patches
shrink) and GPU *sharing* (co-resident ranks queue on one device but
their CPU work overlaps — why 2 and 4 ranks/GPU still speed the job up,
Sec. VIII).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.clock import SimClock, TimeBucket
from repro.mpi.gpu_sharing import GpuPool


@dataclass(frozen=True, slots=True)
class RankStepCharge:
    """One rank's simulated-time charges for one step."""

    cpu: float
    gpu_kernel: float
    transfers: float
    mpi: float
    io: float

    @classmethod
    def from_clock_delta(
        cls, before: dict[str, float], after: dict[str, float]
    ) -> "RankStepCharge":
        """Difference of two clock snapshots."""

        def d(bucket: TimeBucket) -> float:
            return after[bucket.value] - before[bucket.value]

        return cls(
            cpu=d(TimeBucket.CPU_COMPUTE),
            gpu_kernel=d(TimeBucket.GPU_KERNEL) + d(TimeBucket.GPU_WAIT),
            transfers=d(TimeBucket.H2D) + d(TimeBucket.D2H),
            mpi=d(TimeBucket.MPI),
            io=d(TimeBucket.IO),
        )


@dataclass
class StepScheduler:
    """Accumulates job elapsed time from per-step, per-rank charges."""

    nranks: int
    gpu_pool: GpuPool | None = None
    elapsed: float = 0.0
    #: Per-component elapsed accumulation for reports.
    breakdown: dict[str, float] = field(
        default_factory=lambda: {
            "cpu": 0.0,
            "gpu": 0.0,
            "transfers": 0.0,
            "mpi": 0.0,
            "io": 0.0,
        }
    )

    def commit_step(self, charges: list[RankStepCharge]) -> float:
        """Fold one step's charges into job time; returns the step's cost."""
        assert len(charges) == self.nranks
        cpu = max(c.cpu + c.transfers for c in charges)
        tx = max(c.transfers for c in charges)
        if self.gpu_pool is not None and self.gpu_pool.binding:
            gpu = self.gpu_pool.serialize_kernel_time(
                [c.gpu_kernel for c in charges]
            )
        else:
            gpu = max((c.gpu_kernel for c in charges), default=0.0)
        mpi = max(c.mpi for c in charges)
        io = max(c.io for c in charges)
        step = cpu + gpu + mpi + io
        self.elapsed += step
        self.breakdown["cpu"] += cpu - tx
        self.breakdown["transfers"] += tx
        self.breakdown["gpu"] += gpu
        self.breakdown["mpi"] += mpi
        self.breakdown["io"] += io
        return step
