"""A simulated MPI communicator over in-process rank states.

Follows the mpi4py buffer-object idioms (``Send``/``Recv``/``Bcast``/
``Allreduce`` on NumPy arrays): data really moves between per-rank
arrays, and each participating rank's clock is charged from the
:class:`~repro.mpi.costmodel.CommCostModel`. Ranks execute sequentially
in-process, so "communication" is a copy plus a time charge — the
correct semantics for a BSP-style simulation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.clock import SimClock, TimeBucket
from repro.errors import MpiError
from repro.mpi.costmodel import CommCostModel


@dataclass
class SimWorld:
    """The job: one clock per rank plus the interconnect model."""

    nranks: int
    cost: CommCostModel
    clocks: list[SimClock] = field(default_factory=list)
    _mailboxes: dict[tuple[int, int, int], list[np.ndarray]] = field(
        default_factory=dict
    )

    def __post_init__(self) -> None:
        if not self.clocks:
            self.clocks = [SimClock() for _ in range(self.nranks)]
        if len(self.clocks) != self.nranks:
            raise MpiError("one clock per rank required")

    def comm(self, rank: int) -> "SimComm":
        """The communicator handle for one rank."""
        if not 0 <= rank < self.nranks:
            raise MpiError(f"rank {rank} out of range")
        return SimComm(world=self, rank=rank)

    @property
    def elapsed(self) -> float:
        """Job elapsed time so far: the slowest rank's clock."""
        return max(c.total for c in self.clocks)


@dataclass
class SimComm:
    """Rank-local view of the world (mpi4py-style API subset)."""

    world: SimWorld
    rank: int

    def Get_rank(self) -> int:
        return self.rank

    def Get_size(self) -> int:
        return self.world.nranks

    # --- point to point ---------------------------------------------------

    def Send(self, buf: np.ndarray, dest: int, tag: int = 0) -> None:
        """Post a message; the matching Recv completes the transfer."""
        if dest == self.rank:
            raise MpiError("send-to-self deadlocks a blocking pair")
        key = (self.rank, dest, tag)
        self.world._mailboxes.setdefault(key, []).append(np.array(buf, copy=True))
        self.world.clocks[self.rank].advance(
            TimeBucket.MPI, self.world.cost.p2p_time(self.rank, dest, buf.nbytes)
        )

    def Recv(self, buf: np.ndarray, source: int, tag: int = 0) -> None:
        """Receive into ``buf`` (message must already be posted)."""
        key = (source, self.rank, tag)
        queue = self.world._mailboxes.get(key)
        if not queue:
            raise MpiError(
                f"Recv(source={source}, tag={tag}) on rank {self.rank}: "
                "no matching Send posted (simulated deadlock)"
            )
        msg = queue.pop(0)
        if msg.shape != buf.shape:
            raise MpiError(
                f"message shape {msg.shape} does not match buffer {buf.shape}"
            )
        buf[...] = msg
        self.world.clocks[self.rank].advance(
            TimeBucket.MPI, self.world.cost.p2p_time(source, self.rank, buf.nbytes)
        )

    def Sendrecv(
        self,
        sendbuf: np.ndarray,
        dest: int,
        recvbuf: np.ndarray,
        source: int,
        tag: int = 0,
    ) -> None:
        """Paired exchange (used by halo updates)."""
        self.Send(sendbuf, dest, tag)
        self.Recv(recvbuf, source, tag)

    # --- collectives ----------------------------------------------------------

    def Allreduce(self, values: np.ndarray, op: str = "sum") -> np.ndarray:
        """Collective reduce; charges every rank, returns the result.

        Because ranks run sequentially, the caller passes the stacked
        per-rank values on rank 0's call via :meth:`SimWorld`; for the
        common scalar case use :func:`allreduce_scalar` below.
        """
        raise MpiError(
            "use repro.mpi.comm.allreduce over the SimWorld; per-rank "
            "Allreduce is not expressible with sequential rank execution"
        )


def allreduce(world: SimWorld, per_rank: list[np.ndarray], op: str = "sum") -> np.ndarray:
    """World-level allreduce: combines per-rank arrays, charges all clocks."""
    if len(per_rank) != world.nranks:
        raise MpiError("need one contribution per rank")
    stacked = np.stack(per_rank)
    if op == "sum":
        result = stacked.sum(axis=0)
    elif op == "max":
        result = stacked.max(axis=0)
    elif op == "min":
        result = stacked.min(axis=0)
    else:
        raise MpiError(f"unsupported op {op!r}")
    t = world.cost.allreduce_time(world.nranks, per_rank[0].nbytes)
    for clock in world.clocks:
        clock.advance(TimeBucket.MPI, t)
    return result


def barrier(world: SimWorld) -> None:
    """Charge a barrier on every rank."""
    t = world.cost.barrier_time(world.nranks)
    for clock in world.clocks:
        clock.advance(TimeBucket.MPI, t)
