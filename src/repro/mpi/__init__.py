"""In-process MPI simulation: ranks, messages, collectives, GPU sharing.

Each simulated rank owns a clock and (optionally) a device context on a
shared GPU. Point-to-point and collective operations move real NumPy
data between rank states while charging latency/bandwidth time, and the
:class:`repro.mpi.scheduler.StepScheduler` combines per-rank,
per-step charges into the job's elapsed time with a BSP model: CPU
phases run concurrently across ranks, kernels serialize per GPU, and
the slowest participant sets the pace — which is how the paper's
FSBM load imbalance shows up in wall clock.
"""

from repro.mpi.costmodel import CommCostModel
from repro.mpi.comm import SimComm, SimWorld
from repro.mpi.gpu_sharing import GpuPool, bind_ranks_round_robin
from repro.mpi.scheduler import StepScheduler, RankStepCharge

__all__ = [
    "CommCostModel",
    "SimComm",
    "SimWorld",
    "GpuPool",
    "bind_ranks_round_robin",
    "StepScheduler",
    "RankStepCharge",
]
