"""Domain, patch, and tile descriptors using WRF index conventions.

WRF uses inclusive Fortran-style index triplets. For a field dimension
there are three nested ranges:

* **domain**: ``ids:ide`` — the whole grid,
* **memory**: ``ims:ime`` — the rank-local allocation (patch + halo),
* **tile**:   ``its:ite`` — the subrange a thread iterates over.

``i`` is west-east, ``k`` is the vertical, ``j`` is south-north; MPI
decomposition happens in ``i`` and ``j`` only (the vertical is never
split), exactly as in WRF.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError

#: WRF's default halo width for the scalar-advection stencils we carry.
DEFAULT_HALO_WIDTH = 3


@dataclass(frozen=True, slots=True)
class IndexRange:
    """Inclusive index range ``start:end`` (Fortran style, 1-based)."""

    start: int
    end: int

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise ConfigurationError(
                f"empty index range {self.start}:{self.end}"
            )

    @property
    def size(self) -> int:
        """Number of indices in the inclusive range."""
        return self.end - self.start + 1

    def contains(self, other: "IndexRange") -> bool:
        """True if ``other`` lies entirely inside this range."""
        return self.start <= other.start and other.end <= self.end

    def overlaps(self, other: "IndexRange") -> bool:
        """True if the two inclusive ranges share at least one index."""
        return self.start <= other.end and other.start <= self.end

    def intersect(self, other: "IndexRange") -> "IndexRange | None":
        """Intersection of two ranges, or None when disjoint."""
        lo = max(self.start, other.start)
        hi = min(self.end, other.end)
        if hi < lo:
            return None
        return IndexRange(lo, hi)

    def expand(self, width: int, clamp: "IndexRange | None" = None) -> "IndexRange":
        """Grow the range by ``width`` on both sides, optionally clamped."""
        lo, hi = self.start - width, self.end + width
        if clamp is not None:
            lo, hi = max(lo, clamp.start), min(hi, clamp.end)
        return IndexRange(lo, hi)

    def to_slice(self, base: int) -> slice:
        """0-based Python slice relative to an array whose first index is ``base``."""
        return slice(self.start - base, self.end - base + 1)


@dataclass(frozen=True, slots=True)
class DomainSpec:
    """Full-domain extents ``(ids:ide, kds:kde, jds:jde)`` plus grid spacing."""

    nx: int  # west-east points (i)
    nz: int  # vertical levels (k)
    ny: int  # south-north points (j)
    dx: float = 12_000.0  # horizontal spacing [m]
    dz: float = 500.0  # nominal vertical spacing [m]

    def __post_init__(self) -> None:
        if min(self.nx, self.nz, self.ny) < 1:
            raise ConfigurationError("domain extents must be positive")
        if self.dx <= 0 or self.dz <= 0:
            raise ConfigurationError("grid spacings must be positive")

    @property
    def i(self) -> IndexRange:
        """Domain west-east range ``ids:ide``."""
        return IndexRange(1, self.nx)

    @property
    def k(self) -> IndexRange:
        """Domain vertical range ``kds:kde``."""
        return IndexRange(1, self.nz)

    @property
    def j(self) -> IndexRange:
        """Domain south-north range ``jds:jde``."""
        return IndexRange(1, self.ny)

    @property
    def num_points(self) -> int:
        """Total grid points in the domain."""
        return self.nx * self.nz * self.ny

    def scaled(self, factor: float) -> "DomainSpec":
        """Return a horizontally shrunken domain (vertical kept intact).

        Used by the benchmark harness to run the CONUS-12km case at
        reduced horizontal extents while keeping per-column physics
        identical.
        """
        if factor <= 0 or factor > 1:
            raise ConfigurationError("scale factor must be in (0, 1]")
        nx = max(4, round(self.nx * factor))
        ny = max(4, round(self.ny * factor))
        return DomainSpec(nx=nx, nz=self.nz, ny=ny, dx=self.dx, dz=self.dz)


@dataclass(frozen=True, slots=True)
class Patch:
    """A rank's rectangle of the domain, with memory (halo) extents.

    ``i``/``j`` are the owned patch ranges (``ips:ipe``/``jps:jpe`` in
    WRF terms); ``im``/``jm`` the memory ranges including halo
    (``ims:ime``/``jms:jme``). The vertical is never decomposed, so
    ``k`` always equals the domain's ``kds:kde``.
    """

    rank: int
    i: IndexRange
    k: IndexRange
    j: IndexRange
    im: IndexRange
    jm: IndexRange
    halo: int
    grid_i: int  # position in the rank grid (column)
    grid_j: int  # position in the rank grid (row)

    def __post_init__(self) -> None:
        if not self.im.contains(self.i) or not self.jm.contains(self.j):
            raise ConfigurationError(
                "memory extents must contain the owned patch"
            )

    @property
    def num_points(self) -> int:
        """Owned (non-halo) grid points in the patch."""
        return self.i.size * self.k.size * self.j.size

    @property
    def memory_points(self) -> int:
        """Allocated grid points including halo."""
        return self.im.size * self.k.size * self.jm.size

    @property
    def shape(self) -> tuple[int, int, int]:
        """Local allocation shape ``(ni_mem, nk, nj_mem)``, i-k-j order."""
        return (self.im.size, self.k.size, self.jm.size)


@dataclass(frozen=True, slots=True)
class Tile:
    """An OpenMP thread's subrange of a patch (``its:ite``, ``jts:jte``)."""

    thread: int
    i: IndexRange
    k: IndexRange
    j: IndexRange

    @property
    def num_points(self) -> int:
        """Grid points the tile iterates over."""
        return self.i.size * self.k.size * self.j.size
