"""Domain decomposition into MPI patches and OpenMP tiles.

WRF factors the rank count into a near-square ``(nproc_x, nproc_y)``
process grid (unless overridden in the namelist) and deals the domain
out in contiguous, load-balanced strips. Tiling then subdivides each
patch in ``j`` for OpenMP threads, matching WRF's default
``numtiles``-in-j behaviour.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import DecompositionError
from repro.grid.domain import DEFAULT_HALO_WIDTH, DomainSpec, IndexRange, Patch, Tile


def factor_ranks(nranks: int, nx: int, ny: int) -> tuple[int, int]:
    """Factor ``nranks`` into a process grid ``(nproc_x, nproc_y)``.

    Picks the factor pair closest to the domain's aspect ratio so
    patches stay near-square, which is what WRF's ``MPASPECT`` does.
    """
    if nranks < 1:
        raise DecompositionError("need at least one rank")
    target = nx / ny
    best: tuple[int, int] | None = None
    best_err = math.inf
    for px in range(1, nranks + 1):
        if nranks % px:
            continue
        py = nranks // px
        err = abs(math.log((px / py) / target))
        if err < best_err:
            best_err = err
            best = (px, py)
    assert best is not None
    px, py = best
    if px > nx or py > ny:
        raise DecompositionError(
            f"{nranks} ranks cannot tile a {nx}x{ny} domain ({px}x{py} grid)"
        )
    return best


def _split_range(full: IndexRange, nparts: int) -> list[IndexRange]:
    """Split an inclusive range into ``nparts`` near-equal contiguous parts."""
    if nparts > full.size:
        raise DecompositionError(
            f"cannot split range of {full.size} into {nparts} parts"
        )
    base, extra = divmod(full.size, nparts)
    parts: list[IndexRange] = []
    start = full.start
    for p in range(nparts):
        size = base + (1 if p < extra else 0)
        parts.append(IndexRange(start, start + size - 1))
        start += size
    return parts


@dataclass(frozen=True, slots=True)
class Decomposition:
    """The full patch layout of a domain over an MPI rank grid."""

    domain: DomainSpec
    nproc_x: int
    nproc_y: int
    halo: int
    patches: tuple[Patch, ...]

    @property
    def nranks(self) -> int:
        """Total number of MPI ranks."""
        return self.nproc_x * self.nproc_y

    def patch_for_rank(self, rank: int) -> Patch:
        """The patch owned by ``rank`` (row-major rank ordering)."""
        return self.patches[rank]

    def neighbors(self, rank: int) -> dict[str, int | None]:
        """Ranks adjacent to ``rank`` in the process grid (or None at edges)."""
        p = self.patches[rank]
        gi, gj = p.grid_i, p.grid_j

        def at(ci: int, cj: int) -> int | None:
            if 0 <= ci < self.nproc_x and 0 <= cj < self.nproc_y:
                return cj * self.nproc_x + ci
            return None

        return {
            "west": at(gi - 1, gj),
            "east": at(gi + 1, gj),
            "south": at(gi, gj - 1),
            "north": at(gi, gj + 1),
        }


def decompose_domain(
    domain: DomainSpec,
    nranks: int,
    halo: int = DEFAULT_HALO_WIDTH,
    proc_grid: tuple[int, int] | None = None,
) -> Decomposition:
    """Partition ``domain`` into one patch per MPI rank.

    Ranks are laid out row-major over a ``(nproc_x, nproc_y)`` grid;
    rank ``r`` sits at column ``r % nproc_x``, row ``r // nproc_x``.
    Memory extents extend the owned range by ``halo`` on each side,
    clamped to the domain (WRF clamps boundary halos the same way).
    """
    if proc_grid is None:
        proc_grid = factor_ranks(nranks, domain.nx, domain.ny)
    nproc_x, nproc_y = proc_grid
    if nproc_x * nproc_y != nranks:
        raise DecompositionError(
            f"process grid {nproc_x}x{nproc_y} does not match {nranks} ranks"
        )
    i_parts = _split_range(domain.i, nproc_x)
    j_parts = _split_range(domain.j, nproc_y)

    patches: list[Patch] = []
    for gj, jrange in enumerate(j_parts):
        for gi, irange in enumerate(i_parts):
            rank = gj * nproc_x + gi
            patches.append(
                Patch(
                    rank=rank,
                    i=irange,
                    k=domain.k,
                    j=jrange,
                    im=irange.expand(halo, clamp=domain.i),
                    jm=jrange.expand(halo, clamp=domain.j),
                    halo=halo,
                    grid_i=gi,
                    grid_j=gj,
                )
            )
    return Decomposition(
        domain=domain,
        nproc_x=nproc_x,
        nproc_y=nproc_y,
        halo=halo,
        patches=tuple(patches),
    )


def tile_patch(patch: Patch, numtiles: int) -> list[Tile]:
    """Split a patch into ``numtiles`` OpenMP tiles along ``j``.

    WRF's default tiling strategy splits the patch in the j dimension
    only; a patch with fewer j rows than requested tiles yields one
    tile per row (the surplus threads receive no tile).
    """
    nparts = min(numtiles, patch.j.size)
    j_parts = _split_range(patch.j, nparts)
    return [
        Tile(thread=t, i=patch.i, k=patch.k, j=jrange)
        for t, jrange in enumerate(j_parts)
    ]
