"""Index-space conversions between WRF ranges and NumPy slices.

All rank-local arrays are allocated with the memory extents
``(ims:ime, kms:kme, jms:jme)`` in i-k-j order, mirroring WRF's storage
order for microphysics fields. These helpers translate inclusive
Fortran-style ranges into 0-based Python slices of those arrays.
"""

from __future__ import annotations

from repro.grid.domain import IndexRange, Patch, Tile


def local_slice(
    patch: Patch, i: IndexRange, k: IndexRange, j: IndexRange
) -> tuple[slice, slice, slice]:
    """Slices into a patch-local (memory-extent) array for global ranges."""
    return (
        i.to_slice(patch.im.start),
        k.to_slice(patch.k.start),
        j.to_slice(patch.jm.start),
    )


def owned_slice(patch: Patch) -> tuple[slice, slice, slice]:
    """Slices selecting the owned (non-halo) region of a local array."""
    return local_slice(patch, patch.i, patch.k, patch.j)


def tile_slice(patch: Patch, tile: Tile) -> tuple[slice, slice, slice]:
    """Slices selecting one OpenMP tile inside a patch-local array."""
    return local_slice(patch, tile.i, tile.k, tile.j)


def halo_slices(patch: Patch, side: str) -> tuple[slice, slice, slice]:
    """Slices selecting the halo region on ``side`` of a local array.

    ``side`` is one of ``west``/``east``/``south``/``north``. Returns an
    empty slice when the patch touches the domain boundary on that side
    (clamped halo).
    """
    if side == "west":
        if patch.im.start == patch.i.start:
            return (slice(0, 0), slice(None), slice(None))
        rng = IndexRange(patch.im.start, patch.i.start - 1)
        return local_slice(patch, rng, patch.k, patch.jm)
    if side == "east":
        if patch.im.end == patch.i.end:
            return (slice(0, 0), slice(None), slice(None))
        rng = IndexRange(patch.i.end + 1, patch.im.end)
        return local_slice(patch, rng, patch.k, patch.jm)
    if side == "south":
        if patch.jm.start == patch.j.start:
            return (slice(None), slice(None), slice(0, 0))
        rng = IndexRange(patch.jm.start, patch.j.start - 1)
        return local_slice(patch, patch.im, patch.k, rng)
    if side == "north":
        if patch.jm.end == patch.j.end:
            return (slice(None), slice(None), slice(0, 0))
        rng = IndexRange(patch.j.end + 1, patch.jm.end)
        return local_slice(patch, patch.im, patch.k, rng)
    raise ValueError(f"unknown side {side!r}")


def interior_edge_slices(
    patch: Patch, side: str, width: int
) -> tuple[slice, slice, slice]:
    """Slices of the owned strip of ``width`` adjacent to ``side``.

    This is the data a neighbor needs to fill *its* halo on the
    opposite side.
    """
    if side == "west":
        rng = IndexRange(patch.i.start, min(patch.i.start + width - 1, patch.i.end))
        return local_slice(patch, rng, patch.k, patch.jm)
    if side == "east":
        rng = IndexRange(max(patch.i.end - width + 1, patch.i.start), patch.i.end)
        return local_slice(patch, rng, patch.k, patch.jm)
    if side == "south":
        rng = IndexRange(patch.j.start, min(patch.j.start + width - 1, patch.j.end))
        return local_slice(patch, patch.im, patch.k, rng)
    if side == "north":
        rng = IndexRange(max(patch.j.end - width + 1, patch.j.start), patch.j.end)
        return local_slice(patch, patch.im, patch.k, rng)
    raise ValueError(f"unknown side {side!r}")
