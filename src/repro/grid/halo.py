"""Halo-exchange plans between neighboring patches.

The plan is built in global index space: the halo a rank must receive
is exactly the intersection of its *memory* box with every other rank's
*owned* box. Computing both send and receive slices from the same
global region guarantees matching shapes, and naturally includes corner
(diagonal-neighbor) regions in a single exchange phase.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.grid.decomposition import Decomposition
from repro.grid.domain import IndexRange, Patch
from repro.grid.indexing import local_slice


@dataclass(frozen=True, slots=True)
class HaloSegment:
    """One rectangular region moving from ``src`` rank to ``dst`` rank."""

    src: int
    dst: int
    i: IndexRange
    k: IndexRange
    j: IndexRange

    @property
    def num_points(self) -> int:
        """Grid points in the segment (per field)."""
        return self.i.size * self.k.size * self.j.size

    def src_slices(self, src_patch: Patch) -> tuple[slice, slice, slice]:
        """Slices into the source rank's local array."""
        return local_slice(src_patch, self.i, self.k, self.j)

    def dst_slices(self, dst_patch: Patch) -> tuple[slice, slice, slice]:
        """Slices into the destination rank's local array."""
        return local_slice(dst_patch, self.i, self.k, self.j)


@dataclass(frozen=True, slots=True)
class HaloExchangePlan:
    """All segments required to refresh every rank's halo once."""

    decomposition: Decomposition
    segments: tuple[HaloSegment, ...]

    def segments_to(self, rank: int) -> list[HaloSegment]:
        """Segments that fill ``rank``'s halo."""
        return [s for s in self.segments if s.dst == rank]

    def segments_from(self, rank: int) -> list[HaloSegment]:
        """Segments that ``rank`` must send."""
        return [s for s in self.segments if s.src == rank]

    def bytes_moved(self, itemsize: int = 4, nfields: int = 1) -> int:
        """Total bytes over the wire for one exchange of ``nfields`` fields."""
        return sum(s.num_points for s in self.segments) * itemsize * nfields

    def apply_pull(self, rank: int, blocks: list[np.ndarray]) -> int:
        """Fill ``rank``'s halo by pulling from neighbor arrays.

        ``blocks[r]`` is rank ``r``'s local array (3D field or 4D
        superblock) at memory extents. Executes only the segments whose
        destination is ``rank`` — the pull half of the exchange — and
        returns the grid points copied. Because every source region is
        inside its owner's *owned* box and every destination region is
        inside the puller's halo, concurrent pulls by different ranks
        touch disjoint memory: this is what lets the multiprocess rank
        engine run the exchange as direct strided copies between
        neighboring ranks' shared-memory superblocks, barriered before
        (all owners finished writing) and after (all halos filled).
        """
        patches = self.decomposition.patches
        points = 0
        for seg in self.segments:
            if seg.dst != rank:
                continue
            src = blocks[seg.src][seg.src_slices(patches[seg.src])]
            blocks[rank][seg.dst_slices(patches[rank])] = src
            points += seg.num_points
        return points

    def apply(self, fields: list[np.ndarray]) -> None:
        """Execute the exchange on per-rank local arrays (test helper).

        ``fields[r]`` is rank ``r``'s local array with memory extents.
        This performs the copies directly; the MPI simulator performs
        the same copies through its message layer and charges time.
        """
        patches = self.decomposition.patches
        for seg in self.segments:
            src = fields[seg.src][seg.src_slices(patches[seg.src])]
            fields[seg.dst][seg.dst_slices(patches[seg.dst])] = src


def build_halo_plan(decomposition: Decomposition) -> HaloExchangePlan:
    """Construct the exchange plan for a decomposition.

    For every ordered pair of distinct ranks, the segment is
    ``owned(src) ∩ memory(dst)`` — empty for non-adjacent ranks since
    halos are at most ``halo`` wide.
    """
    segments: list[HaloSegment] = []
    patches = decomposition.patches
    for dst_patch in patches:
        for src_patch in patches:
            if src_patch.rank == dst_patch.rank:
                continue
            i_int = src_patch.i.intersect(dst_patch.im)
            j_int = src_patch.j.intersect(dst_patch.jm)
            if i_int is None or j_int is None:
                continue
            segments.append(
                HaloSegment(
                    src=src_patch.rank,
                    dst=dst_patch.rank,
                    i=i_int,
                    k=dst_patch.k,
                    j=j_int,
                )
            )
    return HaloExchangePlan(decomposition=decomposition, segments=tuple(segments))
