"""WRF-style grid decomposition: domains, patches (MPI), tiles (OpenMP).

This subpackage reproduces the decomposition layer of Fig. 1 in the
paper: the *domain* ``(ids:ide, kds:kde, jds:jde)`` is split into
rectangular *patches* assigned to MPI ranks, each stored with a halo in
*memory* extents ``(ims:ime, ...)``, and further split into *tiles*
``(its:ite, ...)`` distributed among OpenMP threads.
"""

from repro.grid.domain import (
    IndexRange,
    DomainSpec,
    Patch,
    Tile,
    DEFAULT_HALO_WIDTH,
)
from repro.grid.decomposition import (
    factor_ranks,
    decompose_domain,
    tile_patch,
    Decomposition,
)
from repro.grid.halo import HaloExchangePlan, build_halo_plan
from repro.grid.indexing import local_slice, halo_slices, owned_slice

__all__ = [
    "IndexRange",
    "DomainSpec",
    "Patch",
    "Tile",
    "DEFAULT_HALO_WIDTH",
    "factor_ranks",
    "decompose_domain",
    "tile_patch",
    "Decomposition",
    "HaloExchangePlan",
    "build_halo_plan",
    "local_slice",
    "halo_slices",
    "owned_slice",
]
