"""Recursive-descent parser for the Fortran subset."""

from __future__ import annotations

from repro.codee.fast import (
    AllocateStmt,
    Assignment,
    BinOp,
    CallStmt,
    CycleStmt,
    Declaration,
    Directive,
    DoLoop,
    Entity,
    ExitStmt,
    Expr,
    IfBlock,
    Literal,
    Module,
    RangeExpr,
    ReturnStmt,
    SourceFile,
    Stmt,
    Subroutine,
    UnaryOp,
    UseStmt,
    VarRef,
)
from repro.codee.lexer import Token, TokenKind, tokenize
from repro.errors import FortranSyntaxError

_TYPE_KEYWORDS = {"real", "integer", "logical", "character"}
_ATTR_KEYWORDS = {
    "parameter",
    "dimension",
    "allocatable",
    "pointer",
    "target",
    "save",
    "intent",
}


class _Parser:
    def __init__(self, tokens: list[Token], path: str):
        self.tokens = tokens
        self.pos = 0
        self.path = path

    # --- token plumbing ----------------------------------------------------

    def peek(self, offset: int = 0) -> Token:
        return self.tokens[min(self.pos + offset, len(self.tokens) - 1)]

    def advance(self) -> Token:
        tok = self.tokens[self.pos]
        if tok.kind is not TokenKind.EOF:
            self.pos += 1
        return tok

    def at(self, kind: TokenKind, text: str | None = None, offset: int = 0) -> bool:
        tok = self.peek(offset)
        if tok.kind is not kind:
            return False
        return text is None or tok.lowered == text

    def at_kw(self, *words: str) -> bool:
        return self.peek().kind is TokenKind.KEYWORD and self.peek().lowered in words

    def expect(self, kind: TokenKind, text: str | None = None) -> Token:
        tok = self.peek()
        if not self.at(kind, text):
            raise FortranSyntaxError(
                f"expected {text or kind.value}, found {tok.text!r}",
                tok.line,
                tok.column,
            )
        return self.advance()

    def skip_newlines(self) -> None:
        while self.at(TokenKind.NEWLINE):
            self.advance()

    def end_of_statement(self) -> None:
        if self.at(TokenKind.EOF):
            return
        self.expect(TokenKind.NEWLINE)

    # --- program structure ---------------------------------------------------

    def parse_file(self) -> SourceFile:
        out = SourceFile(path=self.path)
        self.skip_newlines()
        while not self.at(TokenKind.EOF):
            if self.at_kw("module"):
                out.modules.append(self.parse_module())
            elif self._at_routine_start():
                out.routines.append(self.parse_routine())
            else:
                tok = self.peek()
                raise FortranSyntaxError(
                    f"expected module or subroutine, found {tok.text!r}",
                    tok.line,
                    tok.column,
                )
            self.skip_newlines()
        return out

    def _at_routine_start(self) -> bool:
        i = 0
        while self.peek(i).kind is TokenKind.KEYWORD and self.peek(i).lowered in (
            "pure",
            "elemental",
            *_TYPE_KEYWORDS,
        ):
            i += 1
        return self.peek(i).kind is TokenKind.KEYWORD and self.peek(i).lowered in (
            "subroutine",
            "function",
        )

    def parse_module(self) -> Module:
        start = self.expect(TokenKind.KEYWORD, "module")
        name = self.expect(TokenKind.IDENT).text
        self.end_of_statement()
        mod = Module(name=name, line=start.line)
        self.skip_newlines()
        # Specification part.
        while True:
            self.skip_newlines()
            if self.at_kw("contains"):
                self.advance()
                self.end_of_statement()
                break
            if self.at_kw("end"):
                break
            if self.at_kw("use"):
                mod.uses.append(self.parse_use())
            elif self.at_kw("implicit"):
                self.parse_implicit()
                mod.implicit_none = True
            elif self._at_declaration():
                mod.decls.append(self.parse_declaration())
            elif self.at(TokenKind.DIRECTIVE):
                self.advance()
                self.end_of_statement()
            else:
                tok = self.peek()
                raise FortranSyntaxError(
                    f"unexpected {tok.text!r} in module specification",
                    tok.line,
                    tok.column,
                )
        # Routines.
        while True:
            self.skip_newlines()
            if self.at_kw("end"):
                break
            mod.routines.append(self.parse_routine())
        self.parse_end("module", name)
        return mod

    def parse_end(self, unit: str, name: str | None = None) -> None:
        self.expect(TokenKind.KEYWORD, "end")
        if self.at_kw(unit):
            self.advance()
            if self.at(TokenKind.IDENT):
                self.advance()
        self.end_of_statement()

    def parse_use(self) -> UseStmt:
        tok = self.expect(TokenKind.KEYWORD, "use")
        name = self.expect(TokenKind.IDENT).text
        # Ignore only-lists: use mod, only: a, b
        while not self.at(TokenKind.NEWLINE) and not self.at(TokenKind.EOF):
            self.advance()
        self.end_of_statement()
        return UseStmt(module=name, line=tok.line)

    def parse_implicit(self) -> None:
        self.expect(TokenKind.KEYWORD, "implicit")
        self.expect(TokenKind.KEYWORD, "none")
        self.end_of_statement()

    def parse_routine(self) -> Subroutine:
        prefixes: list[str] = []
        is_function = False
        while self.at_kw("pure", "elemental", *_TYPE_KEYWORDS):
            prefixes.append(self.advance().lowered)
        if self.at_kw("function"):
            is_function = True
            self.advance()
        else:
            self.expect(TokenKind.KEYWORD, "subroutine")
        name_tok = self.expect(TokenKind.IDENT)
        args: list[str] = []
        if self.at(TokenKind.LPAREN):
            self.advance()
            while not self.at(TokenKind.RPAREN):
                if self.at(TokenKind.OP, "*"):
                    args.append(self.advance().text)  # alternate return
                else:
                    args.append(self.expect(TokenKind.IDENT).text)
                if self.at(TokenKind.COMMA):
                    self.advance()
            self.expect(TokenKind.RPAREN)
        if self.at_kw("result"):
            self.advance()
            self.expect(TokenKind.LPAREN)
            self.expect(TokenKind.IDENT)
            self.expect(TokenKind.RPAREN)
        self.end_of_statement()

        sub = Subroutine(
            name=name_tok.text,
            args=tuple(args),
            is_function=is_function,
            prefixes=tuple(prefixes),
            line=name_tok.line,
        )
        # Specification part.
        while True:
            self.skip_newlines()
            if self.at_kw("use"):
                sub.uses.append(self.parse_use())
            elif self.at_kw("implicit"):
                self.parse_implicit()
                sub.implicit_none = True
            elif self.at(TokenKind.DIRECTIVE) and any(
                key in self.peek().lowered
                for key in ("declare target", "enter data", "exit data")
            ):
                # Declaration-level directives belong to the routine;
                # executable directives (e.g. the combined target
                # construct) stay in the token stream for parse_block to
                # attach to the loop they precede.
                tok = self.advance()
                sub.directives.append(Directive(text=tok.text, line=tok.line))
                self.end_of_statement()
            elif self._at_declaration():
                sub.decls.append(self.parse_declaration())
            else:
                break
        # Executable part.
        sub.body = self.parse_block(until=("end",))
        self.parse_end("function" if is_function else "subroutine", sub.name)
        return sub

    # --- declarations -------------------------------------------------------

    def _at_declaration(self) -> bool:
        if not self.at_kw(*_TYPE_KEYWORDS):
            return False
        # Distinguish 'real function f(...)' (routine) from 'real :: x'.
        i = 1
        if self.peek(i).kind is TokenKind.KEYWORD and self.peek(i).lowered in (
            "function",
            "subroutine",
        ):
            return False
        return True

    def parse_declaration(self) -> Declaration:
        type_tok = self.advance()
        attrs: list[str] = []
        intent: str | None = None
        dim_attr: tuple[Expr, ...] = ()
        # Optional kind: real(8) / character(len=...)
        if self.at(TokenKind.LPAREN):
            depth = 0
            while True:
                tok = self.advance()
                if tok.kind is TokenKind.LPAREN:
                    depth += 1
                elif tok.kind is TokenKind.RPAREN:
                    depth -= 1
                    if depth == 0:
                        break
        while self.at(TokenKind.COMMA):
            self.advance()
            attr = self.expect(TokenKind.KEYWORD)
            if attr.lowered == "intent":
                self.expect(TokenKind.LPAREN)
                intent_tok = self.advance()
                intent = intent_tok.lowered
                if intent == "in" and self.at_kw("out"):
                    self.advance()
                    intent = "inout"
                self.expect(TokenKind.RPAREN)
                attrs.append("intent")
            elif attr.lowered == "dimension":
                self.expect(TokenKind.LPAREN)
                dim_attr = self.parse_subscript_list()
                self.expect(TokenKind.RPAREN)
                attrs.append("dimension")
            else:
                attrs.append(attr.lowered)
        if self.at(TokenKind.DCOLON):
            self.advance()
        entities: list[Entity] = []
        while True:
            name = self.expect(TokenKind.IDENT).text
            dims: tuple[Expr, ...] = dim_attr
            if self.at(TokenKind.LPAREN):
                self.advance()
                dims = self.parse_subscript_list()
                self.expect(TokenKind.RPAREN)
            init: Expr | None = None
            if self.at(TokenKind.ASSIGN):
                self.advance()
                init = self.parse_expr()
            entities.append(Entity(name=name, dims=dims, init=init))
            if self.at(TokenKind.COMMA):
                self.advance()
                continue
            break
        self.end_of_statement()
        return Declaration(
            base_type=type_tok.lowered,
            attrs=tuple(attrs),
            entities=tuple(entities),
            line=type_tok.line,
            intent=intent,
        )

    def parse_subscript_list(self) -> tuple[Expr, ...]:
        subs: list[Expr] = []
        while True:
            subs.append(self.parse_subscript())
            if self.at(TokenKind.COMMA):
                self.advance()
                continue
            return tuple(subs)

    def parse_subscript(self) -> Expr:
        """One subscript: expression, '*', ':', or 'lo:hi'."""
        if self.at(TokenKind.OP, "*"):
            tok = self.advance()
            return Literal("*")
        lo: Expr | None = None
        if not self._at_colon():
            lo = self.parse_expr()
        if self._at_colon():
            self.advance()  # ':'
            hi: Expr | None = None
            if not self.at(TokenKind.COMMA) and not self.at(TokenKind.RPAREN):
                hi = self.parse_expr()
            return RangeExpr(lo=lo, hi=hi)
        assert lo is not None
        return lo

    def _at_colon(self) -> bool:
        # ':' is not in our operator set; it only appears in subscripts.
        tok = self.peek()
        return tok.kind is TokenKind.OP and tok.text == ":"

    # --- statements ------------------------------------------------------------

    def parse_block(self, until: tuple[str, ...]) -> list[Stmt]:
        body: list[Stmt] = []
        pending_directives: list[Directive] = []
        while True:
            self.skip_newlines()
            if self.at(TokenKind.EOF):
                return body
            if self.peek().kind is TokenKind.KEYWORD and self.peek().lowered in until:
                if pending_directives:
                    body.extend(pending_directives)
                return body
            if self.at(TokenKind.DIRECTIVE):
                tok = self.advance()
                pending_directives.append(Directive(text=tok.text, line=tok.line))
                self.end_of_statement()
                continue
            stmt = self.parse_statement()
            if isinstance(stmt, DoLoop) and pending_directives:
                stmt.directives = pending_directives
                pending_directives = []
            elif pending_directives:
                body.extend(pending_directives)
                pending_directives = []
            body.append(stmt)

    def parse_statement(self) -> Stmt:
        if self.at_kw("do"):
            return self.parse_do()
        if self.at_kw("if"):
            return self.parse_if()
        if self.at_kw("call"):
            return self.parse_call()
        if self.at_kw("allocate", "deallocate"):
            return self.parse_allocate()
        if self.at_kw("return"):
            tok = self.advance()
            self.end_of_statement()
            return ReturnStmt(line=tok.line)
        if self.at_kw("exit"):
            tok = self.advance()
            self.end_of_statement()
            return ExitStmt(line=tok.line)
        if self.at_kw("cycle"):
            tok = self.advance()
            self.end_of_statement()
            return CycleStmt(line=tok.line)
        return self.parse_assignment()

    def parse_do(self) -> DoLoop:
        start = self.expect(TokenKind.KEYWORD, "do")
        var = self.expect(TokenKind.IDENT).text
        self.expect(TokenKind.ASSIGN)
        lo = self.parse_expr()
        self.expect(TokenKind.COMMA)
        hi = self.parse_expr()
        step: Expr | None = None
        if self.at(TokenKind.COMMA):
            self.advance()
            step = self.parse_expr()
        self.end_of_statement()
        body = self.parse_block(until=("enddo", "end"))
        if self.at_kw("enddo"):
            self.advance()
            self.end_of_statement()
        else:
            self.expect(TokenKind.KEYWORD, "end")
            self.expect(TokenKind.KEYWORD, "do")
            self.end_of_statement()
        return DoLoop(var=var, start=lo, stop=hi, step=step, body=body, line=start.line)

    def parse_if(self) -> Stmt:
        start = self.expect(TokenKind.KEYWORD, "if")
        self.expect(TokenKind.LPAREN)
        cond = self.parse_expr()
        self.expect(TokenKind.RPAREN)
        if self.at_kw("then"):
            self.advance()
            self.end_of_statement()
            block = IfBlock(condition=cond, line=start.line)
            block.body = self.parse_block(until=("else", "elseif", "endif", "end"))
            while True:
                if self.at_kw("elseif"):
                    self.advance()
                    self.expect(TokenKind.LPAREN)
                    c2 = self.parse_expr()
                    self.expect(TokenKind.RPAREN)
                    self.expect(TokenKind.KEYWORD, "then")
                    self.end_of_statement()
                    b2 = self.parse_block(until=("else", "elseif", "endif", "end"))
                    block.elifs.append((c2, b2))
                elif self.at_kw("else") and self.peek(1).lowered == "if":
                    self.advance()
                    self.advance()
                    self.expect(TokenKind.LPAREN)
                    c2 = self.parse_expr()
                    self.expect(TokenKind.RPAREN)
                    self.expect(TokenKind.KEYWORD, "then")
                    self.end_of_statement()
                    b2 = self.parse_block(until=("else", "elseif", "endif", "end"))
                    block.elifs.append((c2, b2))
                elif self.at_kw("else"):
                    self.advance()
                    self.end_of_statement()
                    block.orelse = self.parse_block(until=("endif", "end"))
                else:
                    break
            if self.at_kw("endif"):
                self.advance()
                self.end_of_statement()
            else:
                self.expect(TokenKind.KEYWORD, "end")
                self.expect(TokenKind.KEYWORD, "if")
                self.end_of_statement()
            return block
        # One-line if.
        stmt = self.parse_statement()
        block = IfBlock(condition=cond, body=[stmt], line=start.line)
        return block

    def parse_call(self) -> CallStmt:
        start = self.expect(TokenKind.KEYWORD, "call")
        name = self.expect(TokenKind.IDENT).text
        args: list[Expr] = []
        if self.at(TokenKind.LPAREN):
            self.advance()
            while not self.at(TokenKind.RPAREN):
                args.append(self.parse_subscript())
                if self.at(TokenKind.COMMA):
                    self.advance()
            self.expect(TokenKind.RPAREN)
        self.end_of_statement()
        return CallStmt(name=name, args=tuple(args), line=start.line)

    def parse_allocate(self) -> AllocateStmt:
        tok = self.advance()
        dealloc = tok.lowered == "deallocate"
        self.expect(TokenKind.LPAREN)
        targets: list[VarRef] = []
        while not self.at(TokenKind.RPAREN):
            expr = self.parse_primary()
            if isinstance(expr, VarRef):
                targets.append(expr)
            if self.at(TokenKind.COMMA):
                self.advance()
        self.expect(TokenKind.RPAREN)
        self.end_of_statement()
        return AllocateStmt(targets=tuple(targets), line=tok.line, deallocate=dealloc)

    def parse_assignment(self) -> Assignment:
        line = self.peek().line
        target = self.parse_primary()
        if not isinstance(target, VarRef):
            tok = self.peek()
            raise FortranSyntaxError(
                "assignment target must be a variable", tok.line, tok.column
            )
        pointer = False
        if self.at(TokenKind.POINT_TO):
            self.advance()
            pointer = True
        else:
            self.expect(TokenKind.ASSIGN)
        value = self.parse_expr()
        self.end_of_statement()
        return Assignment(target=target, value=value, line=line, pointer=pointer)

    # --- expressions ----------------------------------------------------------

    _PRECEDENCE = [
        (".or.",),
        (".and.",),
        ("==", "/=", "<", ">", "<=", ">=", ".eq.", ".ne.", ".lt.", ".gt.", ".le.", ".ge."),
        ("+", "-"),
        ("*", "/"),
        ("**",),
    ]

    def parse_expr(self, level: int = 0) -> Expr:
        if level >= len(self._PRECEDENCE):
            return self.parse_unary()
        ops = self._PRECEDENCE[level]
        left = self.parse_expr(level + 1)
        while self.at_op(*ops):
            op = self.advance().lowered
            right = self.parse_expr(level + 1)
            left = BinOp(op=op, left=left, right=right)
        return left

    def at_op(self, *ops: str) -> bool:
        tok = self.peek()
        return tok.kind is TokenKind.OP and tok.lowered in ops

    def parse_unary(self) -> Expr:
        if self.at_op("-", "+", ".not."):
            op = self.advance().lowered
            return UnaryOp(op=op, operand=self.parse_unary())
        return self.parse_primary()

    def parse_primary(self) -> Expr:
        tok = self.peek()
        if tok.kind is TokenKind.NUMBER:
            self.advance()
            return Literal(tok.text)
        if tok.kind is TokenKind.STRING:
            self.advance()
            return Literal(tok.text)
        if tok.kind is TokenKind.OP and tok.lowered in (".true.", ".false."):
            self.advance()
            return Literal(tok.lowered)
        if tok.kind is TokenKind.LPAREN:
            self.advance()
            inner = self.parse_expr()
            self.expect(TokenKind.RPAREN)
            return inner
        if tok.kind in (TokenKind.IDENT, TokenKind.KEYWORD):
            # Keywords like 'in' can appear as identifiers in expressions
            # only rarely; accept identifiers primarily.
            self.advance()
            subs: tuple[Expr, ...] = ()
            if self.at(TokenKind.LPAREN):
                self.advance()
                subs = self.parse_subscript_list() if not self.at(TokenKind.RPAREN) else ()
                self.expect(TokenKind.RPAREN)
            return VarRef(name=tok.text, subscripts=subs)
        raise FortranSyntaxError(
            f"unexpected token {tok.text!r} in expression", tok.line, tok.column
        )


def parse_source(source: str, path: str = "<memory>") -> SourceFile:
    """Parse one Fortran source file into a :class:`SourceFile`."""
    return _Parser(tokenize(source), path).parse_file()
