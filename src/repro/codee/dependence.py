"""Loop dependence and privatization analysis.

This is the Codee capability the paper actually leaned on (Sec. VI-A):
given the ``kernals_ks`` loops it must conclude that

* no iteration reads what another iteration writes (parallelizable),
* scalars like ``ckern_1`` are privatizable (written before read in
  every iteration),
* the global collision arrays are *fully overwritten* and never read,
  so they map as ``map(from: ...)`` rather than ``tofrom``.

The subscript tests are deliberately conservative (a sound subset of
ZIV/SIV): an array write is independent across iterations only when
its subscripts include every parallel loop variable as a plain index
(possibly in different positions). Anything the analysis cannot prove
is reported as a dependence, with a reason string — like the tool, the
point is actionable diagnostics rather than maximal coverage.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.codee.fast import (
    Assignment,
    BinOp,
    CallStmt,
    Declaration,
    DoLoop,
    Expr,
    IfBlock,
    Literal,
    Module,
    RangeExpr,
    Stmt,
    Subroutine,
    UnaryOp,
    VarRef,
    walk_expr,
    walk_stmts,
)


@dataclass(frozen=True, slots=True)
class ArrayAccess:
    """One subscripted reference inside the loop body."""

    name: str
    subscripts: tuple[Expr, ...]
    is_write: bool
    line: int
    conditional: bool


@dataclass
class DependenceReport:
    """Outcome of analyzing one loop nest."""

    loop: DoLoop
    parallelizable: bool
    #: Scalars private to each iteration.
    private_scalars: tuple[str, ...]
    #: Arrays fully overwritten by the nest and never read: map(from:).
    write_only_arrays: tuple[str, ...]
    #: Arrays both read and written elementwise without cross-iteration
    #: conflicts: map(tofrom:).
    readwrite_arrays: tuple[str, ...]
    #: Arrays only read: map(to:).
    read_only_arrays: tuple[str, ...]
    #: Human-readable reasons when not parallelizable.
    reasons: tuple[str, ...]
    #: Calls inside the nest (opaque to the analysis unless pure).
    calls: tuple[str, ...]
    #: Recognized ``(op, name)`` accumulation patterns — scalars or
    #: array elements updated as ``x = x op expr`` (or ``min``/``max``)
    #: in every write. Parallelization is legal only under the
    #: corresponding ``reduction(op: name)`` clause, which
    #: `repro.codee.rewrite` emits.
    reductions: tuple[tuple[str, str], ...] = ()

    @property
    def globals_overwritten(self) -> tuple[str, ...]:
        """Alias emphasising the paper's observation on kernals_ks."""
        return self.write_only_arrays


def _subscript_vars(expr: Expr) -> set[str]:
    """Loop-variable candidates appearing in one subscript expression."""
    out: set[str] = set()
    for node in walk_expr(expr):
        if isinstance(node, VarRef) and not node.subscripts:
            out.add(node.lowered)
    return out


def _is_plain_index(expr: Expr, var: str) -> bool:
    """True when the subscript is exactly the loop variable."""
    return isinstance(expr, VarRef) and not expr.subscripts and expr.lowered == var


def collect_accesses(
    loop: DoLoop, known_arrays: set[str]
) -> tuple[list[ArrayAccess], list[str], set[str], set[str]]:
    """Accesses, call names, scalar writes, and scalar reads in a nest.

    ``known_arrays`` disambiguates ``f(i)`` between array reference and
    function call: subscripted names not in the set are treated as
    function calls (opaque, pure-by-assumption is NOT made — they are
    returned in the call list).
    """
    accesses: list[ArrayAccess] = []
    calls: list[str] = []
    scalar_writes: set[str] = set()
    scalar_reads: set[str] = set()

    def visit_expr(expr: Expr, conditional: bool) -> None:
        for node in walk_expr(expr):
            if isinstance(node, VarRef):
                if node.subscripts:
                    if node.lowered in known_arrays:
                        accesses.append(
                            ArrayAccess(
                                name=node.lowered,
                                subscripts=node.subscripts,
                                is_write=False,
                                line=0,
                                conditional=conditional,
                            )
                        )
                    else:
                        calls.append(node.lowered)
                else:
                    scalar_reads.add(node.lowered)

    def visit(stmts: list[Stmt], conditional: bool) -> None:
        for s in stmts:
            if isinstance(s, Assignment):
                t = s.target
                if t.subscripts:
                    accesses.append(
                        ArrayAccess(
                            name=t.lowered,
                            subscripts=t.subscripts,
                            is_write=True,
                            line=s.line,
                            conditional=conditional,
                        )
                    )
                    for sub in t.subscripts:
                        visit_expr(sub, conditional)
                else:
                    scalar_writes.add(t.lowered)
                visit_expr(s.value, conditional)
            elif isinstance(s, CallStmt):
                calls.append(s.name.lower())
                for a in s.args:
                    visit_expr(a, conditional)
            elif isinstance(s, IfBlock):
                visit_expr(s.condition, conditional)
                visit(s.body, True)
                for cond, body in s.elifs:
                    visit_expr(cond, conditional)
                    visit(body, True)
                visit(s.orelse, True)
            elif isinstance(s, DoLoop):
                visit_expr(s.start, conditional)
                visit_expr(s.stop, conditional)
                visit(s.body, conditional)

    visit(loop.body, False)
    return accesses, calls, scalar_writes, scalar_reads


#: Binary accumulation operators and the reduction-clause op they need.
_REDUCTION_CLAUSE_OPS = {"+": "+", "-": "+", "*": "*"}
_REDUCTION_INTRINSICS = {"min", "max"}

#: Side-effect-free Fortran intrinsics: calling them never blocks the
#: parallel proof (they are elemental or pure by the standard).
_PURE_INTRINSICS = frozenset(
    {
        "abs", "min", "max", "mod", "modulo", "sign",
        "sqrt", "exp", "log", "log10",
        "sin", "cos", "tan", "asin", "acos", "atan", "atan2",
        "int", "nint", "floor", "ceiling", "real", "dble",
        "merge", "huge", "tiny", "epsilon",
    }
)


def _expr_references(expr: Expr, name: str) -> bool:
    return any(
        isinstance(node, VarRef) and node.lowered == name
        for node in walk_expr(expr)
    )


def _reduction_clause_op(stmt: Assignment) -> str | None:
    """The reduction-clause operator of one accumulation, or ``None``.

    Recognizes ``x = x op expr`` / ``x = expr + x`` / ``x = expr * x``
    (``op`` ∈ +, -, *) and ``x = min(x, ...)`` / ``max``, where ``x``
    is the target reference itself — same name *and* structurally
    identical subscripts — and the rest of the value never mentions it.
    """
    target = stmt.target
    tname = target.lowered
    tsubs = target.subscripts

    def is_self(expr: Expr) -> bool:
        return (
            isinstance(expr, VarRef)
            and expr.lowered == tname
            and expr.subscripts == tsubs
        )

    value = stmt.value
    if isinstance(value, BinOp) and value.op in _REDUCTION_CLAUSE_OPS:
        clause = _REDUCTION_CLAUSE_OPS[value.op]
        if is_self(value.left) and not _expr_references(value.right, tname):
            return clause
        # Commutative forms only: x = expr - x is not an accumulation.
        if (
            value.op in ("+", "*")
            and is_self(value.right)
            and not _expr_references(value.left, tname)
        ):
            return clause
    if (
        isinstance(value, VarRef)
        and value.lowered in _REDUCTION_INTRINSICS
        and value.subscripts
    ):
        self_args = [a for a in value.subscripts if is_self(a)]
        others = [a for a in value.subscripts if not is_self(a)]
        if len(self_args) == 1 and not any(
            _expr_references(a, tname) for a in others
        ):
            return value.lowered
    return None


def analyze_loop(
    loop: DoLoop,
    routine: Subroutine,
    module: Module | None = None,
) -> DependenceReport:
    """Dependence analysis of one (possibly nested) loop."""
    nest_vars = [v.lower() for v in loop.nest_vars()]
    known_arrays: set[str] = set()
    for d in routine.decls:
        for e in d.entities:
            if e.dims:
                known_arrays.add(e.lowered)
    if module is not None:
        for d in module.decls:
            for e in d.entities:
                if e.dims:
                    known_arrays.add(e.lowered)

    accesses, calls, scalar_writes, scalar_reads = collect_accesses(
        loop, known_arrays
    )

    reasons: list[str] = []

    # Opaque calls block the proof unless the callee is pure.
    unknown_calls = sorted(set(calls))
    if unknown_calls:
        pure_names = set()
        if module is not None:
            pure_names = {
                r.name.lower() for r in module.routines if "pure" in r.prefixes
            }
        blocking = [
            c
            for c in unknown_calls
            if c not in pure_names and c not in _PURE_INTRINSICS
        ]
        if blocking:
            reasons.append(
                "calls with unknown side effects inside the nest: "
                + ", ".join(blocking)
            )

    written = {a.name for a in accesses if a.is_write}
    read = {a.name for a in accesses if not a.is_write}

    # Accumulation recognition: group the nest's assignments by target.
    scalar_assigns: dict[str, list[Assignment]] = {}
    array_assigns: dict[str, list[Assignment]] = {}
    for s in walk_stmts(loop.body):
        if isinstance(s, Assignment):
            bucket = array_assigns if s.target.subscripts else scalar_assigns
            bucket.setdefault(s.target.lowered, []).append(s)

    reductions: dict[str, str] = {}

    # A scalar whose every write is the same accumulation pattern is a
    # reduction, not a privatization candidate (it is read before
    # written, so privatizing it would drop partial sums).
    for name, stmts in sorted(scalar_assigns.items()):
        if name in nest_vars:
            continue
        ops = {_reduction_clause_op(s) for s in stmts}
        if None not in ops and len(ops) == 1:
            reductions[name] = ops.pop()

    # An array qualifies only when the plain-index test would otherwise
    # report it (some write misses a loop variable), every write is the
    # same read-modify-write pattern on structurally identical
    # subscripts, and the array is never read outside those updates —
    # then each contested element is a per-element accumulator (the
    # ``total(1) = total(1) + ...`` idiom) and a reduction clause makes
    # the nest legal.
    for name, stmts in sorted(array_assigns.items()):
        w_accesses = [a for a in accesses if a.name == name and a.is_write]
        r_accesses = [a for a in accesses if a.name == name and not a.is_write]
        contested = any(
            any(
                not any(_is_plain_index(s, v) for s in acc.subscripts)
                for v in nest_vars
            )
            for acc in w_accesses
        )
        if not contested:
            continue
        ops = {_reduction_clause_op(s) for s in stmts}
        if None in ops or len(ops) != 1:
            continue
        self_reads = sum(
            1
            for s in stmts
            for node in walk_expr(s.value)
            if isinstance(node, VarRef)
            and node.lowered == name
            and node.subscripts == s.target.subscripts
        )
        if len(r_accesses) != self_reads:
            continue
        reductions[name] = ops.pop()

    # Scalars written each iteration are privatization candidates; a
    # scalar read but never written inside the nest is loop-invariant.
    private = sorted(
        (scalar_writes - set(nest_vars) - set(reductions))
        & (scalar_writes | scalar_reads)
    )

    write_only: list[str] = []
    readwrite: list[str] = []
    for name in sorted(written):
        w_accesses = [a for a in accesses if a.name == name and a.is_write]
        r_accesses = [a for a in accesses if a.name == name and not a.is_write]
        if name in reductions:
            # Every access is part of a recognized accumulation; the
            # reduction clause, not the plain-index test, makes it legal.
            readwrite.append(name)
            continue
        # Each write must be indexed by every parallel loop variable as a
        # plain index (in any subscript position).
        for acc in w_accesses:
            plain_positions = {
                v
                for v in nest_vars
                if any(_is_plain_index(s, v) for s in acc.subscripts)
            }
            missing = [v for v in nest_vars if v not in plain_positions]
            if missing:
                reasons.append(
                    f"write to {name}({', '.join(_fmt(s) for s in acc.subscripts)}) "
                    f"is not indexed by loop variable(s) {', '.join(missing)}: "
                    "different iterations write the same element"
                )
        # Reads must use the same plain indices as writes (no offsets).
        for acc in r_accesses:
            offset_vars = {
                v
                for v in nest_vars
                if any(
                    v in _subscript_vars(s) and not _is_plain_index(s, v)
                    for s in acc.subscripts
                )
            }
            if offset_vars:
                reasons.append(
                    f"read of {name}({', '.join(_fmt(s) for s in acc.subscripts)}) "
                    f"offsets loop variable(s) {', '.join(sorted(offset_vars))}: "
                    "loop-carried flow dependence"
                )
        if r_accesses:
            readwrite.append(name)
        else:
            # Written at every iteration and never read in the nest. If
            # every write is unconditional the array is fully
            # overwritten: map(from:). Conditional writes keep old
            # elements: map(tofrom:).
            if all(not a.conditional for a in w_accesses):
                write_only.append(name)
            else:
                readwrite.append(name)

    read_only = sorted(read - written)

    return DependenceReport(
        loop=loop,
        parallelizable=not reasons,
        private_scalars=tuple(private),
        write_only_arrays=tuple(write_only),
        readwrite_arrays=tuple(sorted(set(readwrite))),
        read_only_arrays=tuple(read_only),
        reasons=tuple(reasons),
        calls=tuple(unknown_calls),
        reductions=tuple(
            (op, name) for name, op in sorted(reductions.items())
        ),
    )


def _fmt(expr: Expr) -> str:
    """Compact textual form of an expression for diagnostics."""
    if isinstance(expr, Literal):
        return expr.value
    if isinstance(expr, VarRef):
        if expr.subscripts:
            return f"{expr.name}({', '.join(_fmt(s) for s in expr.subscripts)})"
        return expr.name
    if isinstance(expr, BinOp):
        return f"{_fmt(expr.left)} {expr.op} {_fmt(expr.right)}"
    if isinstance(expr, UnaryOp):
        return f"{expr.op}{_fmt(expr.operand)}"
    if isinstance(expr, RangeExpr):
        lo = _fmt(expr.lo) if expr.lo is not None else ""
        hi = _fmt(expr.hi) if expr.hi is not None else ""
        return f"{lo}:{hi}"
    return "?"
