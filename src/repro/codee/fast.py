"""AST nodes for the Fortran subset ("fast" = Fortran AST)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Union

# --- expressions ------------------------------------------------------------


@dataclass(frozen=True)
class Literal:
    """Numeric/string/logical literal."""

    value: str


@dataclass(frozen=True)
class VarRef:
    """A variable reference, possibly subscripted: ``a``, ``a(i, j)``.

    In Fortran source, ``f(i)`` is syntactically identical for array
    indexing and function calls; the parser produces VarRef and the
    semantic passes disambiguate against declarations.
    """

    name: str
    subscripts: tuple["Expr", ...] = ()

    @property
    def lowered(self) -> str:
        return self.name.lower()


@dataclass(frozen=True)
class BinOp:
    op: str
    left: "Expr"
    right: "Expr"


@dataclass(frozen=True)
class UnaryOp:
    op: str
    operand: "Expr"


@dataclass(frozen=True)
class RangeExpr:
    """Array-section bound ``lo:hi`` (either side may be None)."""

    lo: "Expr | None"
    hi: "Expr | None"


Expr = Union[Literal, VarRef, BinOp, UnaryOp, RangeExpr]


def walk_expr(expr: Expr) -> Iterator[Expr]:
    """Preorder traversal of one expression."""
    yield expr
    if isinstance(expr, BinOp):
        yield from walk_expr(expr.left)
        yield from walk_expr(expr.right)
    elif isinstance(expr, UnaryOp):
        yield from walk_expr(expr.operand)
    elif isinstance(expr, VarRef):
        for s in expr.subscripts:
            yield from walk_expr(s)
    elif isinstance(expr, RangeExpr):
        if expr.lo is not None:
            yield from walk_expr(expr.lo)
        if expr.hi is not None:
            yield from walk_expr(expr.hi)


# --- statements ------------------------------------------------------------


@dataclass
class Assignment:
    target: VarRef
    value: Expr
    line: int = 0
    #: True for pointer assignment ``p => q`` (Listing 8).
    pointer: bool = False


@dataclass
class CallStmt:
    name: str
    args: tuple[Expr, ...]
    line: int = 0


@dataclass
class AllocateStmt:
    targets: tuple[VarRef, ...]
    line: int = 0
    deallocate: bool = False


@dataclass
class ExitStmt:
    line: int = 0


@dataclass
class CycleStmt:
    line: int = 0


@dataclass
class ReturnStmt:
    line: int = 0


@dataclass
class Directive:
    """An ``!$omp`` sentinel line attached where it appeared."""

    text: str
    line: int = 0

    @property
    def lowered(self) -> str:
        return self.text.lower()


@dataclass
class IfBlock:
    condition: Expr
    body: list["Stmt"] = field(default_factory=list)
    elifs: list[tuple[Expr, list["Stmt"]]] = field(default_factory=list)
    orelse: list["Stmt"] = field(default_factory=list)
    line: int = 0


@dataclass
class DoLoop:
    var: str
    start: Expr
    stop: Expr
    step: Expr | None = None
    body: list["Stmt"] = field(default_factory=list)
    line: int = 0
    #: Directives immediately preceding the loop.
    directives: list[Directive] = field(default_factory=list)

    def nest_depth(self) -> int:
        """How many perfectly nested do-loops start here (>= 1)."""
        depth = 1
        body = [s for s in self.body if not isinstance(s, Directive)]
        while len(body) == 1 and isinstance(body[0], DoLoop):
            depth += 1
            body = [s for s in body[0].body if not isinstance(s, Directive)]
        return depth

    def innermost(self) -> "DoLoop":
        """The innermost loop of a perfect nest."""
        loop = self
        while True:
            body = [s for s in loop.body if not isinstance(s, Directive)]
            if len(body) == 1 and isinstance(body[0], DoLoop):
                loop = body[0]
            else:
                return loop

    def nest_vars(self) -> list[str]:
        """Loop variables of the perfect nest, outermost first."""
        out = [self.var]
        body = [s for s in self.body if not isinstance(s, Directive)]
        while len(body) == 1 and isinstance(body[0], DoLoop):
            out.append(body[0].var)
            body = [s for s in body[0].body if not isinstance(s, Directive)]
        return out


Stmt = Union[
    Assignment,
    CallStmt,
    AllocateStmt,
    IfBlock,
    DoLoop,
    Directive,
    ExitStmt,
    CycleStmt,
    ReturnStmt,
]


def walk_stmts(stmts: list[Stmt]) -> Iterator[Stmt]:
    """Preorder traversal of a statement list."""
    for s in stmts:
        yield s
        if isinstance(s, IfBlock):
            yield from walk_stmts(s.body)
            for _, body in s.elifs:
                yield from walk_stmts(body)
            yield from walk_stmts(s.orelse)
        elif isinstance(s, DoLoop):
            yield from walk_stmts(s.body)


# --- declarations and program units -------------------------------------------


@dataclass
class Entity:
    """One declared name with optional dimensions/initializer."""

    name: str
    dims: tuple[Expr, ...] = ()
    init: Expr | None = None

    @property
    def lowered(self) -> str:
        return self.name.lower()

    @property
    def assumed_size(self) -> bool:
        """True for ``a(*)``-style assumed-size declarations."""
        return any(
            isinstance(d, Literal) and d.value == "*" for d in self.dims
        )


@dataclass
class Declaration:
    """``real, pointer :: fl1(:), fl2(:)`` and friends."""

    base_type: str
    attrs: tuple[str, ...]
    entities: tuple[Entity, ...]
    line: int = 0
    intent: str | None = None

    @property
    def is_pointer(self) -> bool:
        return "pointer" in self.attrs

    @property
    def is_parameter(self) -> bool:
        return "parameter" in self.attrs


@dataclass
class UseStmt:
    module: str
    line: int = 0


@dataclass
class Subroutine:
    """A subroutine or function."""

    name: str
    args: tuple[str, ...]
    decls: list[Declaration] = field(default_factory=list)
    uses: list[UseStmt] = field(default_factory=list)
    body: list[Stmt] = field(default_factory=list)
    implicit_none: bool = False
    is_function: bool = False
    prefixes: tuple[str, ...] = ()  # pure, elemental
    directives: list[Directive] = field(default_factory=list)
    line: int = 0

    def declared_names(self) -> set[str]:
        """All locally declared (or dummy) names, lowercase."""
        names = {a.lower() for a in self.args}
        for d in self.decls:
            names.update(e.lowered for e in d.entities)
        return names

    def declaration_of(self, name: str) -> tuple[Declaration, Entity] | None:
        """Find the declaration for one name."""
        low = name.lower()
        for d in self.decls:
            for e in d.entities:
                if e.lowered == low:
                    return d, e
        return None

    def loops(self) -> list[DoLoop]:
        """Every do-loop in the body, preorder."""
        return [s for s in walk_stmts(self.body) if isinstance(s, DoLoop)]


@dataclass
class Module:
    """A Fortran module: module-level declarations plus routines."""

    name: str
    decls: list[Declaration] = field(default_factory=list)
    routines: list[Subroutine] = field(default_factory=list)
    implicit_none: bool = False
    uses: list[UseStmt] = field(default_factory=list)
    line: int = 0

    def routine(self, name: str) -> Subroutine:
        low = name.lower()
        for r in self.routines:
            if r.name.lower() == low:
                return r
        raise KeyError(name)

    def module_variable_names(self) -> set[str]:
        """Names of module-level (global) variables, lowercase."""
        names: set[str] = set()
        for d in self.decls:
            if not d.is_parameter:
                names.update(e.lowered for e in d.entities)
        return names


@dataclass
class SourceFile:
    """Parsed translation unit: modules plus bare routines."""

    path: str
    modules: list[Module] = field(default_factory=list)
    routines: list[Subroutine] = field(default_factory=list)

    def all_routines(self) -> list[Subroutine]:
        out = list(self.routines)
        for m in self.modules:
            out.extend(m.routines)
        return out
