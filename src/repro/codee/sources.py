"""Embedded Fortran sources: the FSBM fragments the paper analyzes.

These reproduce the structure of ``module_mp_fast_sbm.f90`` at the
points the paper's listings show: the ``kernals_ks`` collision-array
precompute (Listing 3), the main grid loops (Listing 1), the original
``coal_bott_new`` declarations with automatic arrays (Listing 7), and
the pointer-based rewrite (Listing 8). Tests and the experiment harness
parse these, run Codee-style analysis on them, and verify that the
autofix reproduces Listing 4.
"""

from __future__ import annotations

#: Listing 3 — the collision-kernel interpolation loops. All 20 arrays
#: are written at every (i, j); no element is read.
KERNALS_KS_SOURCE = """\
module module_mp_fast_sbm
  implicit none
  integer, parameter :: nkr = 33
  integer, parameter :: icemax = 3
  real :: cwll(nkr,nkr), cwls(nkr,nkr), cwlg(nkr,nkr), cwlh(nkr,nkr)
  real :: cwli1(nkr,nkr), cwli2(nkr,nkr), cwli3(nkr,nkr)
  real :: cwi1i1(nkr,nkr), cwi2i2(nkr,nkr), cwi3i3(nkr,nkr)
  real :: cwsi1(nkr,nkr), cwsi2(nkr,nkr), cwsi3(nkr,nkr)
  real :: cwss(nkr,nkr), cwsg(nkr,nkr), cwsh(nkr,nkr)
  real :: cwgg(nkr,nkr), cwgh(nkr,nkr), cwhh(nkr,nkr), cwgl(nkr,nkr)
  real :: ywll_750mb(nkr,nkr,1), ywll_500mb(nkr,nkr,1)
  real :: ywls_750mb(nkr,nkr,1), ywls_500mb(nkr,nkr,1)
  real :: ywlg_750mb(nkr,nkr,1), ywlg_500mb(nkr,nkr,1)
contains

subroutine kernals_ks(dtime_coal, pressure)
  implicit none
  real, intent(in) :: dtime_coal
  real, intent(in) :: pressure
  integer :: i, j
  real :: ckern_1, ckern_2, scale_p

  scale_p = (pressure - 500.0) / 250.0
  do j = 1, nkr
    do i = 1, nkr
      ckern_1 = ywll_750mb(i,j,1)
      ckern_2 = ywll_500mb(i,j,1)
      cwll(i,j) = (ckern_2 + (ckern_1 - ckern_2) * scale_p) * dtime_coal
      ckern_1 = ywls_750mb(i,j,1)
      ckern_2 = ywls_500mb(i,j,1)
      cwls(i,j) = (ckern_2 + (ckern_1 - ckern_2) * scale_p) * dtime_coal
      ckern_1 = ywlg_750mb(i,j,1)
      ckern_2 = ywlg_500mb(i,j,1)
      cwlg(i,j) = (ckern_2 + (ckern_1 - ckern_2) * scale_p) * dtime_coal
    enddo
  enddo
end subroutine kernals_ks

end module module_mp_fast_sbm
"""

#: Listing 1 — the grid loops calling the microphysics processes. The
#: collision call is fenced by temperature conditionals and shares the
#: loop with nucleation and condensation.
MAIN_LOOP_SOURCE = """\
subroutine fast_sbm(t_old, tt, qv, its, ite, kts, kte, jts, jte)
  implicit none
  integer, intent(in) :: its, ite, kts, kte, jts, jte
  real, intent(inout) :: t_old(its:ite, kts:kte, jts:jte)
  real, intent(inout) :: qv(its:ite, kts:kte, jts:jte)
  real, intent(in) :: tt
  integer :: i, k, j
  real :: sup_w

  do j = jts, jte
    do k = kts, kte
      do i = its, ite
        if (t_old(i,k,j) > 193.15) then
          call jernucl01_ks(i, k, j)
          sup_w = qv(i,k,j) - 1.0
          if (sup_w > 0.0) then
            call onecond1(i, k, j)
          else
            call onecond2(i, k, j)
          endif
          if (tt > 223.15) then
            call coal_bott_new(i, k, j)
          endif
        endif
      enddo
    enddo
  enddo
end subroutine fast_sbm
"""

#: Listing 6 — the fissioned collision loop with the predicate array.
FISSIONED_LOOP_SOURCE = """\
subroutine coal_bott_driver(call_coal_bott_new, its, ite, kts, kte, jts, jte)
  implicit none
  integer, intent(in) :: its, ite, kts, kte, jts, jte
  logical, intent(in) :: call_coal_bott_new(its:ite, kts:kte, jts:jte)
  integer :: i, k, j

  do j = jts, jte
    do k = kts, kte
      do i = its, ite
        if (call_coal_bott_new(i,k,j)) then
          call coal_bott_new(i, k, j)
        endif
      enddo
    enddo
  enddo
end subroutine coal_bott_driver
"""

#: Listing 7 — original coal_bott_new declarations (automatic arrays in
#: a device-resident routine: the collapse(3) stack-overflow source).
COAL_BOTT_ORIGINAL_SOURCE = """\
subroutine coal_bott_new(iin, kin, jin)
  implicit none
!$omp declare target
  integer, intent(in) :: iin, kin, jin
  real :: fl1(33), fl2(33), fl3(33), fl4(33), fl5(33)
  real :: ff1(33), ff2(33), ff3(33), ff4(33), ff5(33)
  real :: g1(33), g2(33,3), g3(33), g4(33), g5(33)
  real :: e1(33,3), e2(33,3)
  real :: xl_d(33), xs_d(33), xg_d(33), xh_d(33)
  real :: vrl(33), vrs(33), vrg(33), vrh(33)
  real :: psi1(33), psi2(33), psi3(33)
  real :: dropradii(33), conc_old(33)
  integer :: i

  do i = 1, 33
    fl1(i) = 0.0
    g1(i) = 0.0
  enddo
end subroutine coal_bott_new
"""

#: Listing 8 — the pointer-based rewrite against the temp_arrays module.
COAL_BOTT_POINTER_SOURCE = """\
module temp_arrays
  implicit none
  real, allocatable, target :: fl1_temp(:,:,:,:)
  real, allocatable, target :: fl2_temp(:,:,:,:)
  real, allocatable, target :: g1_temp(:,:,:,:)
  real, allocatable, target :: g2_temp(:,:,:,:,:)
end module temp_arrays

subroutine coal_bott_new(iin, kin, jin)
  use temp_arrays
  implicit none
!$omp declare target
  integer, intent(in) :: iin, kin, jin
  real, pointer :: fl1(:), fl2(:)
  real, pointer :: g1(:), g2(:,:)
  integer :: i

  fl1 => fl1_temp(:, iin, kin, jin)
  fl2 => fl2_temp(:, iin, kin, jin)
  g1 => g1_temp(:, iin, kin, jin)
  g2 => g2_temp(:, :, iin, kin, jin)

  do i = 1, 33
    fl1(i) = 0.0
    g1(i) = 0.0
  enddo
end subroutine coal_bott_new
"""

#: A legacy-style routine with the modernization smells the paper says
#: Codee's checks flagged in routines like onecond (assumed-size dummy
#: arrays, missing intents, missing implicit none).
LEGACY_ONECOND_SOURCE = """\
subroutine onecond1(tps, qps, fl(*), nkr)
  real tps, qps
  real fl(*)
  integer nkr
  integer kr
  do kr = 1, nkr
    fl(kr) = fl(kr) + tps * 0.001
  enddo
end subroutine onecond1
"""


#: A fuller module in the shape of the original ``module_mp_fast_sbm``:
#: global collision arrays, the main grid loop, the kernel precompute,
#: the collision routine with automatic arrays, a legacy condensation
#: routine, and a melting loop with a genuine vertical recurrence (which
#: must NOT be reported as parallelizable in k).
FULL_MODULE_SOURCE = """\
module module_mp_fast_sbm
  implicit none
  integer, parameter :: nkr = 33
  integer, parameter :: icemax = 3
  real :: cwll(nkr,nkr), cwls(nkr,nkr), cwlg(nkr,nkr)
  real :: ywll_750mb(nkr,nkr,1), ywll_500mb(nkr,nkr,1)
  real :: ywls_750mb(nkr,nkr,1), ywls_500mb(nkr,nkr,1)
  real :: ywlg_750mb(nkr,nkr,1), ywlg_500mb(nkr,nkr,1)
contains

subroutine fast_sbm(t_old, qv, pres, its, ite, kts, kte, jts, jte)
  implicit none
  integer, intent(in) :: its, ite, kts, kte, jts, jte
  real, intent(inout) :: t_old(its:ite, kts:kte, jts:jte)
  real, intent(inout) :: qv(its:ite, kts:kte, jts:jte)
  real, intent(in) :: pres(its:ite, kts:kte, jts:jte)
  integer :: i, k, j
  real :: sup_w, tt

  do j = jts, jte
    do k = kts, kte
      do i = its, ite
        tt = t_old(i,k,j)
        if (tt > 193.15) then
          call jernucl01_ks(i, k, j)
          sup_w = qv(i,k,j) - 1.0
          if (sup_w > 0.0) then
            call onecond1(i, k, j)
          else
            call onecond2(i, k, j)
          endif
          if (tt > 223.15) then
            call kernals_ks(1.0, pres(i,k,j))
            call coal_bott_new(i, k, j)
          endif
        endif
      enddo
    enddo
  enddo
end subroutine fast_sbm

subroutine kernals_ks(dtime_coal, pressure)
  implicit none
  real, intent(in) :: dtime_coal
  real, intent(in) :: pressure
  integer :: i, j
  real :: ckern_1, ckern_2, scale_p

  scale_p = (pressure - 500.0) / 250.0
  do j = 1, nkr
    do i = 1, nkr
      ckern_1 = ywll_750mb(i,j,1)
      ckern_2 = ywll_500mb(i,j,1)
      cwll(i,j) = (ckern_2 + (ckern_1 - ckern_2) * scale_p) * dtime_coal
      ckern_1 = ywls_750mb(i,j,1)
      ckern_2 = ywls_500mb(i,j,1)
      cwls(i,j) = (ckern_2 + (ckern_1 - ckern_2) * scale_p) * dtime_coal
      ckern_1 = ywlg_750mb(i,j,1)
      ckern_2 = ywlg_500mb(i,j,1)
      cwlg(i,j) = (ckern_2 + (ckern_1 - ckern_2) * scale_p) * dtime_coal
    enddo
  enddo
end subroutine kernals_ks

pure real function get_cwll(i, j, pressure)
  integer, intent(in) :: i, j
  real, intent(in) :: pressure
  real :: scale_p
  scale_p = (pressure - 500.0) / 250.0
  get_cwll = ywll_500mb(i,j,1) + (ywll_750mb(i,j,1) - ywll_500mb(i,j,1)) * scale_p
end function get_cwll

subroutine coal_bott_new(iin, kin, jin)
  implicit none
  integer, intent(in) :: iin, kin, jin
  real :: fl1(33), fl2(33), fl3(33)
  real :: g1(33), g2(33,3), g3(33)
  integer :: i, j
  real :: events

  do i = 1, 33
    fl1(i) = 0.0
    g1(i) = 0.0
  enddo
  do i = 1, 33
    do j = 1, 33
      events = cwll(i,j) * fl1(i) * fl1(j)
      g1(i) = g1(i) + events
    enddo
  enddo
end subroutine coal_bott_new

subroutine onecond1(iin, kin, jin)
  integer iin, kin, jin
  real tps
  tps = 0.0
end subroutine onecond1

subroutine onecond2(iin, kin, jin)
  integer iin, kin, jin
  real tps
  tps = 0.0
end subroutine onecond2

subroutine jernucl01_ks(iin, kin, jin)
  implicit none
  integer, intent(in) :: iin, kin, jin
end subroutine jernucl01_ks

subroutine melt_column(fl, t_col, kts, kte)
  implicit none
  integer, intent(in) :: kts, kte
  real, intent(inout) :: fl(kts:kte)
  real, intent(in) :: t_col(kts:kte)
  integer :: k
  do k = kts + 1, kte
    fl(k) = fl(k) + 0.5 * fl(k-1)
  enddo
end subroutine melt_column

end module module_mp_fast_sbm
"""


#: Intentionally-broken offload code for the verifier's lint gate: each
#: region seeds exactly one violation — a shared-scalar race (VFY001), a
#: missing map clause (VFY002), an illegal ``collapse(3)`` over a
#: non-rectangular (triangular) nest (VFY003), an automatic-array
#: stack-budget overflow under full collapse (VFY004), and an unmatched
#: ``target enter data`` (VFY005). Tests assert the verifier reports
#: these and nothing else.
BROKEN_OFFLOAD_SOURCE = """\
module broken_offload
  implicit none
  integer, parameter :: nkr = 33
  real :: acc(nkr,nkr), src(nkr,nkr), unmapped(nkr,nkr)
contains

subroutine race_region()
  implicit none
  integer :: i, j
  real :: shared_tmp
!$omp target teams distribute parallel do collapse(2) &
!$omp map(to: src) map(from: acc)
  do j = 1, nkr
    do i = 1, nkr
      shared_tmp = src(i,j) * 2.0
      acc(i,j) = shared_tmp
    enddo
  enddo
end subroutine race_region

subroutine missing_map_region()
  implicit none
  integer :: i, j
  real :: val
!$omp target teams distribute parallel do collapse(2) private(val) &
!$omp map(to: src)
  do j = 1, nkr
    do i = 1, nkr
      val = src(i,j)
      unmapped(i,j) = val * 0.5
    enddo
  enddo
end subroutine missing_map_region

subroutine triangular_region(out3, n)
  implicit none
  integer, intent(in) :: n
  real, intent(inout) :: out3(n, n, n)
  integer :: i, j, k
!$omp target teams distribute parallel do collapse(3) &
!$omp map(tofrom: out3)
  do k = 1, n
    do j = 1, k
      do i = 1, n
        out3(i, j, k) = 0.0
      enddo
    enddo
  enddo
end subroutine triangular_region

subroutine stack_region()
  implicit none
  integer :: i, j, k
!$omp target teams distribute parallel do collapse(3)
  do k = 1, nkr
    do j = 1, nkr
      do i = 1, nkr
        call big_autos(i, j, k)
      enddo
    enddo
  enddo
end subroutine stack_region

subroutine big_autos(ii, jj, kk)
  implicit none
!$omp declare target
  integer, intent(in) :: ii, jj, kk
  real :: w1(nkr,nkr), w2(nkr,nkr)
  integer :: m
  do m = 1, nkr
    w1(m,1) = 0.0
    w2(m,1) = 0.0
  enddo
end subroutine big_autos

subroutine leaky_setup()
  implicit none
!$omp target enter data map(alloc: acc)
end subroutine leaky_setup

end module broken_offload
"""


def legacy_onecond_source() -> str:
    """Fixed-up variant of the legacy routine that actually parses.

    The raw ``LEGACY_ONECOND_SOURCE`` above intentionally mimics the
    original's argument-list style; this variant is the syntactically
    valid subset our parser accepts, preserving the smells the checkers
    must flag (no ``implicit none``, assumed-size dummy, no intents).
    """
    return """\
subroutine onecond1(tps, qps, fl, nkr)
  real :: tps, qps
  real :: fl(*)
  integer :: nkr
  integer :: kr
  do kr = 1, nkr
    fl(kr) = fl(kr) + tps * 0.001
  enddo
end subroutine onecond1
"""


#: The embedded sources ``codee verify --all`` (and the pytest lint
#: gate) run over. Every entry must verify clean; the intentionally
#: broken :data:`BROKEN_OFFLOAD_SOURCE` is kept out of this registry and
#: exercised separately with its expected seeded violations.
def embedded_sources() -> dict[str, str]:
    """name -> Fortran text of every clean embedded source."""
    return {
        "kernals_ks.f90": KERNALS_KS_SOURCE,
        "main_loop.f90": MAIN_LOOP_SOURCE,
        "fissioned_loop.f90": FISSIONED_LOOP_SOURCE,
        "coal_bott_original.f90": COAL_BOTT_ORIGINAL_SOURCE,
        "coal_bott_pointer.f90": COAL_BOTT_POINTER_SOURCE,
        "full_module.f90": FULL_MODULE_SOURCE,
        "onecond_legacy.f90": legacy_onecond_source(),
    }
