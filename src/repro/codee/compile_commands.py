"""``compile_commands.json`` support (the ``bear`` capture of Listing 2).

The paper's setup intercepts WRF's build with ``bear`` and feeds the
resulting compilation database to Codee. This module reads that format
and selects the Fortran translation units with their include paths and
macro definitions — what a source-level tool needs to reproduce each
compile.
"""

from __future__ import annotations

import json
import shlex
from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import CodeeError

FORTRAN_SUFFIXES = (".f", ".f90", ".f95", ".f03", ".f08", ".F", ".F90")


@dataclass(frozen=True)
class CompileCommand:
    """One entry of the compilation database."""

    file: str
    directory: str
    arguments: tuple[str, ...]

    @property
    def is_fortran(self) -> bool:
        return self.file.endswith(FORTRAN_SUFFIXES)

    @property
    def include_dirs(self) -> tuple[str, ...]:
        out = []
        args = list(self.arguments)
        for i, a in enumerate(args):
            if a == "-I" and i + 1 < len(args):
                out.append(args[i + 1])
            elif a.startswith("-I") and len(a) > 2:
                out.append(a[2:])
        return tuple(out)

    @property
    def defines(self) -> tuple[str, ...]:
        return tuple(
            a[2:] for a in self.arguments if a.startswith("-D") and len(a) > 2
        )

    @property
    def compiler(self) -> str:
        return self.arguments[0] if self.arguments else ""

    def resolved_path(self) -> Path:
        p = Path(self.file)
        return p if p.is_absolute() else Path(self.directory) / p


def load_compile_commands(path: str | Path) -> list[CompileCommand]:
    """Parse a compile_commands.json file."""
    try:
        entries = json.loads(Path(path).read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise CodeeError(f"cannot read compilation database {path}: {exc}") from exc
    if not isinstance(entries, list):
        raise CodeeError("compilation database must be a JSON array")
    out: list[CompileCommand] = []
    for e in entries:
        if "arguments" in e:
            args = tuple(e["arguments"])
        elif "command" in e:
            args = tuple(shlex.split(e["command"]))
        else:
            raise CodeeError("entry needs 'arguments' or 'command'")
        out.append(
            CompileCommand(
                file=e["file"], directory=e.get("directory", "."), arguments=args
            )
        )
    return out


def fortran_units(commands: list[CompileCommand]) -> list[CompileCommand]:
    """The Fortran subset of a compilation database."""
    return [c for c in commands if c.is_fortran]
