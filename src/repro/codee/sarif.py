"""SARIF 2.1.0 output for verifier/checker findings.

SARIF (Static Analysis Results Interchange Format) is the OASIS
standard CI systems ingest; emitting it makes ``codee verify`` a
drop-in gate for code-scanning pipelines. :func:`to_sarif` builds a
minimal-but-valid ``sarifLog``; :data:`SARIF_SCHEMA` is the subset of
the official 2.1.0 JSON Schema the log must satisfy, and
:func:`validate_sarif` checks a document against it (via ``jsonschema``
when available, with an equivalent structural fallback otherwise, so
the validation gate works in dependency-free environments).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.codee.verifier import Violation

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA_URI = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

#: The subset of the official SARIF 2.1.0 schema our logs must satisfy
#: (draft-07 dialect, as the spec uses). Field names, required sets,
#: and enums match the standard.
SARIF_SCHEMA: dict = {
    "$schema": "http://json-schema.org/draft-07/schema#",
    "type": "object",
    "required": ["version", "runs"],
    "properties": {
        "version": {"const": SARIF_VERSION},
        "$schema": {"type": "string"},
        "runs": {
            "type": "array",
            "items": {
                "type": "object",
                "required": ["tool", "results"],
                "properties": {
                    "tool": {
                        "type": "object",
                        "required": ["driver"],
                        "properties": {
                            "driver": {
                                "type": "object",
                                "required": ["name"],
                                "properties": {
                                    "name": {"type": "string"},
                                    "rules": {
                                        "type": "array",
                                        "items": {
                                            "type": "object",
                                            "required": ["id"],
                                            "properties": {
                                                "id": {"type": "string"},
                                            },
                                        },
                                    },
                                },
                            },
                        },
                    },
                    "results": {
                        "type": "array",
                        "items": {
                            "type": "object",
                            "required": ["message"],
                            "properties": {
                                "ruleId": {"type": "string"},
                                "level": {
                                    "enum": [
                                        "none",
                                        "note",
                                        "warning",
                                        "error",
                                    ]
                                },
                                "message": {
                                    "type": "object",
                                    "required": ["text"],
                                    "properties": {
                                        "text": {"type": "string"},
                                    },
                                },
                                "locations": {
                                    "type": "array",
                                    "items": {
                                        "type": "object",
                                        "properties": {
                                            "physicalLocation": {
                                                "type": "object",
                                                "properties": {
                                                    "artifactLocation": {
                                                        "type": "object",
                                                        "properties": {
                                                            "uri": {
                                                                "type": "string"
                                                            },
                                                        },
                                                    },
                                                    "region": {
                                                        "type": "object",
                                                        "properties": {
                                                            "startLine": {
                                                                "type": "integer",
                                                                "minimum": 1,
                                                            },
                                                        },
                                                    },
                                                },
                                            },
                                        },
                                    },
                                },
                            },
                        },
                    },
                },
            },
        },
    },
}


def to_sarif(
    violations: list["Violation"],
    tool_name: str = "codee-verify",
    rules: dict[str, tuple[str, str]] | None = None,
) -> dict:
    """Render findings as a SARIF 2.1.0 ``sarifLog`` object."""
    if rules is None:
        from repro.codee.verifier import CHECK_RULES

        rules = CHECK_RULES
    rule_ids = sorted(rules)
    results = []
    for v in violations:
        results.append(
            {
                "ruleId": v.check_id,
                "ruleIndex": rule_ids.index(v.check_id)
                if v.check_id in rule_ids
                else -1,
                "level": "error" if v.severity == "error" else "warning",
                "message": {"text": f"{v.title}: {v.detail}"},
                "locations": [
                    {
                        "physicalLocation": {
                            "artifactLocation": {"uri": v.path},
                            "region": {"startLine": max(1, v.line)},
                        }
                    }
                ],
                "properties": {
                    "routine": v.routine,
                    "category": v.category,
                },
            }
        )
    return {
        "$schema": SARIF_SCHEMA_URI,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": tool_name,
                        "informationUri": (
                            "https://open-catalog.codee.com/"
                        ),
                        "rules": [
                            {
                                "id": cid,
                                "name": rules[cid][0],
                                "shortDescription": {"text": rules[cid][0]},
                                "fullDescription": {"text": rules[cid][1]},
                            }
                            for cid in rule_ids
                        ],
                    }
                },
                "results": results,
            }
        ],
    }


def _structural_errors(doc: object) -> list[str]:
    """Fallback validator mirroring :data:`SARIF_SCHEMA`."""
    errors: list[str] = []
    if not isinstance(doc, dict):
        return ["sarifLog must be an object"]
    if doc.get("version") != SARIF_VERSION:
        errors.append(f"version must be {SARIF_VERSION!r}")
    runs = doc.get("runs")
    if not isinstance(runs, list):
        return errors + ["runs must be an array"]
    for i, run in enumerate(runs):
        where = f"runs[{i}]"
        if not isinstance(run, dict):
            errors.append(f"{where} must be an object")
            continue
        driver = run.get("tool", {}).get("driver") if isinstance(
            run.get("tool"), dict
        ) else None
        if not isinstance(driver, dict) or not isinstance(
            driver.get("name"), str
        ):
            errors.append(f"{where}.tool.driver.name missing")
        else:
            for j, rule in enumerate(driver.get("rules", [])):
                if not isinstance(rule, dict) or not isinstance(
                    rule.get("id"), str
                ):
                    errors.append(f"{where}.tool.driver.rules[{j}].id missing")
        results = run.get("results")
        if not isinstance(results, list):
            errors.append(f"{where}.results must be an array")
            continue
        for j, res in enumerate(results):
            rwhere = f"{where}.results[{j}]"
            if not isinstance(res, dict):
                errors.append(f"{rwhere} must be an object")
                continue
            message = res.get("message")
            if not isinstance(message, dict) or not isinstance(
                message.get("text"), str
            ):
                errors.append(f"{rwhere}.message.text missing")
            if "level" in res and res["level"] not in (
                "none",
                "note",
                "warning",
                "error",
            ):
                errors.append(f"{rwhere}.level invalid")
            for k, loc in enumerate(res.get("locations", [])):
                phys = loc.get("physicalLocation", {}) if isinstance(
                    loc, dict
                ) else {}
                region = phys.get("region", {})
                start = region.get("startLine")
                if start is not None and (
                    not isinstance(start, int) or start < 1
                ):
                    errors.append(
                        f"{rwhere}.locations[{k}].region.startLine must be "
                        ">= 1"
                    )
    return errors


def validate_sarif(doc: object) -> list[str]:
    """Validation errors for a SARIF 2.1.0 document (empty == valid)."""
    try:
        import jsonschema
    except ImportError:  # pragma: no cover - env without jsonschema
        return _structural_errors(doc)
    validator = jsonschema.Draft7Validator(SARIF_SCHEMA)
    return [
        f"{'/'.join(str(p) for p in e.absolute_path) or '<root>'}: {e.message}"
        for e in validator.iter_errors(doc)
    ]
