"""Open-Catalog-style checkers (the ``codee checks`` report).

Each checker inspects a parsed source file and emits findings with the
catalog identifiers Codee's open catalog uses for the same smells. The
paper specifically mentions using the modernization checks to find
"legacy constructs such as assumed-shape arrays and dummy argument
intents in other subroutines like onecond" (Sec. VIII).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.codee.dependence import analyze_loop
from repro.codee.fast import (
    Assignment,
    DoLoop,
    Module,
    SourceFile,
    Subroutine,
    VarRef,
    walk_stmts,
)


@dataclass(frozen=True, slots=True)
class Finding:
    """One checker hit."""

    check_id: str
    title: str
    path: str
    line: int
    routine: str
    detail: str
    category: str  # "modernization" | "correctness" | "optimization"

    def render(self) -> str:
        return (
            f"[{self.check_id}] {self.path}:{self.line} ({self.routine}): "
            f"{self.title} — {self.detail}"
        )


Checker = Callable[[SourceFile], list[Finding]]


def check_implicit_none(sf: SourceFile) -> list[Finding]:
    """PWR007: add explicit 'implicit none' to every program unit."""
    out = []
    for routine in sf.all_routines():
        if not routine.implicit_none:
            out.append(
                Finding(
                    check_id="PWR007",
                    title="missing 'implicit none'",
                    path=sf.path,
                    line=routine.line,
                    routine=routine.name,
                    detail="implicit typing hides declaration bugs; declare "
                    "all variables explicitly",
                    category="modernization",
                )
            )
    return out


def check_assumed_size(sf: SourceFile) -> list[Finding]:
    """PWR008: declare the intent and shape of dummy arrays explicitly."""
    out = []
    for routine in sf.all_routines():
        for d in routine.decls:
            for e in d.entities:
                if e.assumed_size:
                    out.append(
                        Finding(
                            check_id="PWR008",
                            title="assumed-size dummy array",
                            path=sf.path,
                            line=d.line,
                            routine=routine.name,
                            detail=f"array {e.name}(*) defeats shape checking "
                            "and inlining; use an explicit or assumed shape",
                            category="modernization",
                        )
                    )
    return out


def check_missing_intent(sf: SourceFile) -> list[Finding]:
    """PWR001: declare intent for every dummy argument."""
    out = []
    for routine in sf.all_routines():
        dummies = {a.lower() for a in routine.args}
        with_intent: set[str] = set()
        declared: set[str] = set()
        for d in routine.decls:
            for e in d.entities:
                if e.lowered in dummies:
                    declared.add(e.lowered)
                    if d.intent is not None:
                        with_intent.add(e.lowered)
        for name in sorted(declared - with_intent):
            out.append(
                Finding(
                    check_id="PWR001",
                    title="dummy argument without intent",
                    path=sf.path,
                    line=routine.line,
                    routine=routine.name,
                    detail=f"argument {name} has no intent attribute; the "
                    "compiler cannot diagnose accidental writes",
                    category="modernization",
                )
            )
    return out


def check_global_writes_in_loops(sf: SourceFile) -> list[Finding]:
    """PWR014-style: global variables written inside loops block parallelism.

    This is exactly the situation of the original ``kernals_ks``: the 20
    collision arrays are module globals, so the enclosing grid loops
    cannot be parallelized without restructuring (Sec. VI-A).
    """
    out = []
    for module in sf.modules:
        globals_ = module.module_variable_names()
        for routine in module.routines:
            local = routine.declared_names()
            for loop in routine.loops():
                for stmt in walk_stmts(loop.body):
                    if isinstance(stmt, Assignment):
                        name = stmt.target.lowered
                        if name in globals_ and name not in local:
                            out.append(
                                Finding(
                                    check_id="PWR014",
                                    title="module variable written inside a loop",
                                    path=sf.path,
                                    line=stmt.line or loop.line,
                                    routine=routine.name,
                                    detail=f"{stmt.target.name} is module "
                                    "state; concurrent iterations would race "
                                    "on it — privatize it or compute entries "
                                    "on demand",
                                    category="correctness",
                                )
                            )
                            break
    return out


def check_noncontiguous_access(sf: SourceFile) -> list[Finding]:
    """PWR010-style: innermost loop should move along the first subscript.

    Fortran is column-major; an innermost loop variable appearing in a
    trailing subscript position produces strided accesses (the effect
    the paper's roofline discussion attributes the stage-3 DRAM traffic
    to).
    """
    out = []
    for routine in sf.all_routines():
        for loop in routine.loops():
            inner = loop.innermost()
            var = inner.var.lower()
            for stmt in walk_stmts(inner.body):
                if isinstance(stmt, Assignment) and stmt.target.subscripts:
                    subs = stmt.target.subscripts
                    positions = [
                        i
                        for i, s in enumerate(subs)
                        if isinstance(s, VarRef)
                        and not s.subscripts
                        and s.lowered == var
                    ]
                    if positions and 0 not in positions:
                        out.append(
                            Finding(
                                check_id="PWR010",
                                title="non-contiguous array access in inner loop",
                                path=sf.path,
                                line=stmt.line or inner.line,
                                routine=routine.name,
                                detail=f"{stmt.target.name}: inner index "
                                f"{inner.var} is subscript "
                                f"{positions[0] + 1} (column-major wants 1)",
                                category="optimization",
                            )
                        )
    return out


def check_offload_opportunity(sf: SourceFile) -> list[Finding]:
    """RMK015-style remark: loop nest is provably offloadable."""
    out = []
    for module_or_none, routine in _routines_with_module(sf):
        for loop in routine.loops():
            if loop.nest_depth() < 2:
                continue
            report = analyze_loop(loop, routine, module_or_none)
            if report.parallelizable:
                out.append(
                    Finding(
                        check_id="RMK015",
                        title="loop nest is a GPU offload opportunity",
                        path=sf.path,
                        line=loop.line,
                        routine=routine.name,
                        detail=f"{loop.nest_depth()}-deep nest over "
                        f"({', '.join(loop.nest_vars())}) has no "
                        "loop-carried dependencies; see 'codee rewrite "
                        "--offload omp'",
                        category="optimization",
                    )
                )
    return out


def check_device_automatic_arrays(sf: SourceFile) -> list[Finding]:
    """PWR020-style: automatic arrays in a ``declare target`` routine.

    Exactly the paper's stage-2 -> stage-3 problem: each device thread
    carries the arrays on its stack, overflowing the CUDA stack under a
    full ``collapse``; the fix is pointers into preallocated module
    arrays (Listing 8).
    """
    out = []
    for routine in sf.all_routines():
        on_device = any(
            "declare target" in d.lowered for d in routine.directives
        )
        if not on_device:
            continue
        dummies = {a.lower() for a in routine.args}
        for d in routine.decls:
            if d.is_pointer or d.is_parameter:
                continue
            for e in d.entities:
                if e.dims and e.lowered not in dummies:
                    out.append(
                        Finding(
                            check_id="PWR020",
                            title="automatic array in device routine",
                            path=sf.path,
                            line=d.line,
                            routine=routine.name,
                            detail=f"{e.name} lives on every device "
                            "thread's stack; a full collapse will "
                            "overflow NV_ACC_CUDA_STACKSIZE — point it "
                            "at a preallocated module array instead",
                            category="optimization",
                        )
                    )
    return out


def _routines_with_module(sf: SourceFile):
    for m in sf.modules:
        for r in m.routines:
            yield m, r
    for r in sf.routines:
        yield None, r


#: All registered checkers, in catalog order.
ALL_CHECKERS: tuple[tuple[str, Checker], ...] = (
    ("PWR001", check_missing_intent),
    ("PWR007", check_implicit_none),
    ("PWR008", check_assumed_size),
    ("PWR010", check_noncontiguous_access),
    ("PWR014", check_global_writes_in_loops),
    ("PWR020", check_device_automatic_arrays),
    ("RMK015", check_offload_opportunity),
)


def run_checks(sf: SourceFile) -> list[Finding]:
    """Run every catalog checker over one parsed file."""
    findings: list[Finding] = []
    for _, checker in ALL_CHECKERS:
        findings.extend(checker(sf))
    findings.sort(key=lambda f: (f.path, f.line, f.check_id))
    return findings


def format_checks_report(findings: list[Finding]) -> str:
    """The ``codee checks`` textual report."""
    if not findings:
        return "codee checks: no findings"
    lines = [f"codee checks: {len(findings)} finding(s)"]
    lines.extend(f.render() for f in findings)
    by_cat: dict[str, int] = {}
    for f in findings:
        by_cat[f.category] = by_cat.get(f.category, 0) + 1
    lines.append(
        "summary: "
        + ", ".join(f"{n} {cat}" for cat, n in sorted(by_cat.items()))
    )
    return "\n".join(lines)
