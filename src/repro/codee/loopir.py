"""Typed loop-nest IR for the dependence-driven codegen pipeline.

The hand-written C kernels of PR 3/5 (`repro.wrf.cstencil`,
`repro.fsbm.ckernels`) encode exactly the loop structures the paper's
workflow *derives*: perfectly nested rectangular loops over array
parameters with known layouts, per-iteration scalar temporaries,
guards, stack-local accumulators, and an OpenMP annotation set
(``parallel for collapse(n)`` + inner ``simd``) justified by dependence
analysis. This module gives those structures a first-class
representation so the static machinery of `repro.codee` can analyze,
transform, verify, and finally *emit* them instead of trusting opaque
C strings:

* expressions — :class:`Const`/:class:`Sym`/:class:`Load`/:class:`Bin`/
  :class:`Un`/:class:`Select`, frozen dataclasses with structural
  equality (the dependence tests compare subscript expressions
  directly) and Python operator overloading so kernel definitions read
  like the math they encode;
* statements — :class:`Let` (single-assignment temporary),
  :class:`Decl`/:class:`Assign` (mutable scalar), :class:`Store`
  (array write, plain or ``+=``/``-=`` accumulation),
  :class:`LocalArray` (the C analog of a Fortran automatic array),
  :class:`If`, and :class:`Loop` — whose ``parallel``/``collapse``/
  ``simd`` annotations start empty and are filled in by
  `repro.codee.transform` passes, never by hand (the one exception is
  the seeded-race fixture below, which exists to be refused);
* parameters — :class:`ArrayParam` with per-dimension element-stride
  expressions (symbolic strides like the runtime ``(si, sk, sj)`` of
  the sedimentation superblock views are ordinary :class:`Sym` nodes)
  and pointer-table layouts (``double **``), plus :class:`ScalarParam`;
* a process-wide registry of :class:`KernelSpec` entries so the CLI
  (``codee transform`` / ``codee verify --ir``), the optimization
  pipeline's verify gate, and the ``verify_sources`` lint gate all see
  the same kernels the production modules compile.

The IR is deliberately small: rectangular counted loops, C scalar
types, and affine-or-indirect subscripts cover every kernel this repo
compiles, and anything the transformation engine cannot prove about
them is refused rather than guessed (`repro.codee.irverify`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Union

# --- expressions ------------------------------------------------------------


class _ExprOps:
    """Operator sugar building :class:`Bin`/:class:`Un` trees.

    Arithmetic uses the native Python operators; comparisons use named
    methods (``a.lt(b)``) because dataclass ``__eq__`` is reserved for
    the structural equality the analyses depend on.
    """

    def __add__(self, other: "ExprLike") -> "Bin":
        return Bin("+", self, as_expr(other))

    def __radd__(self, other: "ExprLike") -> "Bin":
        return Bin("+", as_expr(other), self)

    def __sub__(self, other: "ExprLike") -> "Bin":
        return Bin("-", self, as_expr(other))

    def __rsub__(self, other: "ExprLike") -> "Bin":
        return Bin("-", as_expr(other), self)

    def __mul__(self, other: "ExprLike") -> "Bin":
        return Bin("*", self, as_expr(other))

    def __rmul__(self, other: "ExprLike") -> "Bin":
        return Bin("*", as_expr(other), self)

    def __truediv__(self, other: "ExprLike") -> "Bin":
        return Bin("/", self, as_expr(other))

    def __rtruediv__(self, other: "ExprLike") -> "Bin":
        return Bin("/", as_expr(other), self)

    def __neg__(self) -> "Un":
        return Un("-", self)

    def lt(self, other: "ExprLike") -> "Bin":
        return Bin("<", self, as_expr(other))

    def gt(self, other: "ExprLike") -> "Bin":
        return Bin(">", self, as_expr(other))

    def le(self, other: "ExprLike") -> "Bin":
        return Bin("<=", self, as_expr(other))

    def ge(self, other: "ExprLike") -> "Bin":
        return Bin(">=", self, as_expr(other))

    def eq(self, other: "ExprLike") -> "Bin":
        return Bin("==", self, as_expr(other))

    def ne(self, other: "ExprLike") -> "Bin":
        return Bin("!=", self, as_expr(other))

    def logical_and(self, other: "ExprLike") -> "Bin":
        return Bin("&&", self, as_expr(other))

    def logical_or(self, other: "ExprLike") -> "Bin":
        return Bin("||", self, as_expr(other))


@dataclass(frozen=True)
class Const(_ExprOps):
    """Integer or floating literal."""

    value: int | float


@dataclass(frozen=True)
class Sym(_ExprOps):
    """Reference to a scalar: loop variable, parameter, or temporary."""

    name: str


@dataclass(frozen=True)
class Load(_ExprOps):
    """Array element read; ``index`` has one entry per dimension.

    For pointer-table arrays (``double **``) the first index selects
    the table entry and the remaining indices address into that row.
    """

    array: str
    index: tuple["Expr", ...]


@dataclass(frozen=True)
class Bin(_ExprOps):
    """Binary operation (C operator spelling)."""

    op: str
    left: "Expr"
    right: "Expr"


@dataclass(frozen=True)
class Un(_ExprOps):
    """Unary operation (``-`` or ``!``)."""

    op: str
    operand: "Expr"


@dataclass(frozen=True)
class Select(_ExprOps):
    """Ternary ``cond ? if_true : if_false`` (the clamped-edge idiom)."""

    cond: "Expr"
    if_true: "Expr"
    if_false: "Expr"


Expr = Union[Const, Sym, Load, Bin, Un, Select]
ExprLike = Union[Expr, int, float, str]


def as_expr(value: ExprLike) -> Expr:
    """Coerce Python scalars/names into IR expressions."""
    if isinstance(value, (Const, Sym, Load, Bin, Un, Select)):
        return value
    if isinstance(value, bool):  # bool is an int subclass; refuse it
        raise TypeError("bool is not an IR value; use Const(0)/Const(1)")
    if isinstance(value, (int, float)):
        return Const(value)
    if isinstance(value, str):
        return Sym(value)
    raise TypeError(f"cannot coerce {value!r} to an IR expression")


def walk_ir(expr: Expr) -> Iterator[Expr]:
    """Preorder traversal of one expression tree."""
    yield expr
    if isinstance(expr, Load):
        for sub in expr.index:
            yield from walk_ir(sub)
    elif isinstance(expr, Bin):
        yield from walk_ir(expr.left)
        yield from walk_ir(expr.right)
    elif isinstance(expr, Un):
        yield from walk_ir(expr.operand)
    elif isinstance(expr, Select):
        yield from walk_ir(expr.cond)
        yield from walk_ir(expr.if_true)
        yield from walk_ir(expr.if_false)


def expr_syms(expr: Expr) -> set[str]:
    """Every scalar name referenced in the expression."""
    return {n.name for n in walk_ir(expr) if isinstance(n, Sym)}


def expr_loads(expr: Expr) -> list[Load]:
    """Every array read in the expression, in traversal order."""
    return [n for n in walk_ir(expr) if isinstance(n, Load)]


def subst(expr: Expr, mapping: dict[str, Expr]) -> Expr:
    """Expression with :class:`Sym` nodes replaced per ``mapping``."""
    if isinstance(expr, Sym):
        return mapping.get(expr.name, expr)
    if isinstance(expr, Const):
        return expr
    if isinstance(expr, Load):
        return Load(expr.array, tuple(subst(s, mapping) for s in expr.index))
    if isinstance(expr, Bin):
        return Bin(expr.op, subst(expr.left, mapping), subst(expr.right, mapping))
    if isinstance(expr, Un):
        return Un(expr.op, subst(expr.operand, mapping))
    if isinstance(expr, Select):
        return Select(
            subst(expr.cond, mapping),
            subst(expr.if_true, mapping),
            subst(expr.if_false, mapping),
        )
    raise TypeError(f"not an IR expression: {expr!r}")


# --- statements -------------------------------------------------------------


@dataclass
class Let:
    """Single-assignment temporary: ``const <ctype> name = value;``."""

    name: str
    value: Expr
    ctype: str = "double"


@dataclass
class Decl:
    """Mutable scalar declaration, optionally initialized."""

    name: str
    ctype: str = "double"
    init: Expr | None = None


@dataclass
class Assign:
    """Mutable-scalar assignment ``name = value;``."""

    name: str
    value: Expr


@dataclass
class Store:
    """Array element write; ``op`` is ``"="``, ``"+="``, or ``"-="``."""

    array: str
    index: tuple[Expr, ...]
    value: Expr
    op: str = "="


@dataclass
class LocalArray:
    """Fixed-size stack-local array (the automatic-array analog)."""

    name: str
    size: int
    ctype: str = "double"


@dataclass
class If:
    """Guarded block with optional else branch."""

    cond: Expr
    body: list["Stmt"]
    orelse: list["Stmt"] = field(default_factory=list)


@dataclass
class Loop:
    """Counted loop ``for (long var = start; var < stop; var++)``.

    The ``parallel``/``collapse``/``simd`` annotations are the
    transformation engine's output, not input: kernels are defined
    bare and `repro.codee.transform` fills these in only when its
    dependence analysis proves the annotation legal.
    """

    var: str
    start: Expr
    stop: Expr
    body: list["Stmt"]
    parallel: bool = False
    collapse: int = 1
    simd: bool = False
    schedule: str = "static"
    #: Approved ``(op, name)`` reduction clauses for this nest; an
    #: accumulation not covered here is a VFY009 finding.
    reductions: tuple[tuple[str, str], ...] = ()

    def nest_chain(self) -> list["Loop"]:
        """The perfect-nest chain: this loop and each only-child loop."""
        chain = [self]
        while len(chain[-1].body) == 1 and isinstance(chain[-1].body[0], Loop):
            chain.append(chain[-1].body[0])
        return chain

    def nest_vars(self) -> list[str]:
        return [lp.var for lp in self.nest_chain()]

    def nest_depth(self) -> int:
        return len(self.nest_chain())


Stmt = Union[Let, Decl, Assign, Store, LocalArray, If, Loop]


def walk_ir_stmts(stmts: list[Stmt]) -> Iterator[Stmt]:
    """Preorder traversal of a statement list (into ifs and loops)."""
    for s in stmts:
        yield s
        if isinstance(s, If):
            yield from walk_ir_stmts(s.body)
            yield from walk_ir_stmts(s.orelse)
        elif isinstance(s, Loop):
            yield from walk_ir_stmts(s.body)


def stmt_exprs(stmt: Stmt) -> list[Expr]:
    """The expressions owned directly by one statement."""
    if isinstance(stmt, Let):
        return [stmt.value]
    if isinstance(stmt, Decl):
        return [stmt.init] if stmt.init is not None else []
    if isinstance(stmt, Assign):
        return [stmt.value]
    if isinstance(stmt, Store):
        return [*stmt.index, stmt.value]
    if isinstance(stmt, If):
        return [stmt.cond]
    if isinstance(stmt, Loop):
        return [stmt.start, stmt.stop]
    return []


# --- parameters and kernels -------------------------------------------------


@dataclass(frozen=True)
class ScalarParam:
    """Pass-by-value scalar argument."""

    name: str
    ctype: str = "double"


@dataclass(frozen=True)
class ArrayParam:
    """Pointer argument with an explicit element-stride layout.

    ``strides`` gives the element stride of each subscript position;
    entries are expressions, so runtime strides (``Sym("si")``) and
    derived ones (``Sym("nj") * Sym("ns")``) are both representable.
    With ``ptr_table=True`` the parameter is a ``<ctype> **`` whose
    first subscript selects a table row and ``strides`` covers the
    remaining positions (the ``dists[sp]`` layout of ``sed_sweep``).
    ``alias_group`` marks parameters that may refer to overlapping
    storage; a nonempty group suppresses the aliasing assumptions the
    verifier otherwise enforces for ``restrict`` pointers.
    """

    name: str
    strides: tuple[Expr, ...]
    ctype: str = "double"
    intent: str = "in"  # in | out | inout | scratch
    ptr_table: bool = False
    restrict: bool = True
    alias_group: str = ""

    @property
    def rank(self) -> int:
        return len(self.strides) + (1 if self.ptr_table else 0)


Param = Union[ScalarParam, ArrayParam]


@dataclass
class Kernel:
    """One C function: parameters plus a statement body."""

    name: str
    params: tuple[Param, ...]
    body: list[Stmt]
    doc: str = ""

    def arrays(self) -> dict[str, ArrayParam]:
        return {p.name: p for p in self.params if isinstance(p, ArrayParam)}

    def scalars(self) -> dict[str, ScalarParam]:
        return {p.name: p for p in self.params if isinstance(p, ScalarParam)}

    def param(self, name: str) -> Param:
        for p in self.params:
            if p.name == name:
                return p
        raise KeyError(f"kernel {self.name} has no parameter {name!r}")

    def loops(self) -> list[Loop]:
        """Top-level loop nests, in order."""
        return [s for s in self.body if isinstance(s, Loop)]

    def local_arrays(self) -> list[LocalArray]:
        return [s for s in walk_ir_stmts(self.body) if isinstance(s, LocalArray)]

    def statement_lines(self) -> dict[int, int]:
        """``id(stmt) -> 1-based preorder index`` (pseudo line numbers).

        The IR has no source lines; the verifier and its SARIF output
        need deterministic locations, so statements are numbered in
        preorder — stable across runs for a structurally identical
        kernel.
        """
        return {
            id(stmt): i
            for i, stmt in enumerate(walk_ir_stmts(self.body), start=1)
        }


# --- registry ---------------------------------------------------------------


@dataclass(frozen=True)
class KernelSpec:
    """One registered IR kernel: how to build, transform, and gate it.

    ``build`` returns a fresh, unannotated :class:`Kernel`;
    ``transform`` (when set) maps that kernel to a
    ``repro.codee.transform.TransformPlan`` whose annotated kernel is
    what actually gets verified and emitted. ``gate=False`` keeps a
    kernel out of the clean-verification lint gate (the seeded-race
    fixture) while leaving it addressable by name for ``codee verify
    --ir``.
    """

    name: str
    build: Callable[[], Kernel]
    transform: Callable[[Kernel], Any] | None = None
    gate: bool = True

    def plan(self) -> Any | None:
        """A fresh transformation plan, or ``None`` for fixed kernels."""
        if self.transform is None:
            return None
        return self.transform(self.build())

    def final_kernel(self) -> Kernel:
        """The kernel as compiled: transformed when a policy is set."""
        plan = self.plan()
        if plan is None:
            return self.build()
        return plan.kernel


_REGISTRY: dict[str, KernelSpec] = {}

#: Modules whose import registers production IR kernels.
_KERNEL_MODULES = ("repro.wrf.cstencil", "repro.fsbm.ckernels")


def register_kernel(spec: KernelSpec) -> KernelSpec:
    """Register (or re-register, idempotently) one kernel spec."""
    _REGISTRY[spec.name] = spec
    return spec


def registered_kernels(load: bool = True) -> dict[str, KernelSpec]:
    """All registered specs by name.

    With ``load=True`` (the default) the production kernel modules are
    imported first so their registrations are present regardless of
    import order — the CLI and the lint gate rely on this.
    """
    if load:
        import importlib

        for mod in _KERNEL_MODULES:
            importlib.import_module(mod)
    return dict(_REGISTRY)


def gate_kernels() -> dict[str, KernelSpec]:
    """The specs the clean-verification lint gate covers."""
    return {
        name: spec
        for name, spec in registered_kernels().items()
        if spec.gate
    }


# --- the seeded-race fixture ------------------------------------------------


def broken_offload_kernel() -> Kernel:
    """An intentionally illegal kernel: a hand-annotated parallel nest.

    ``out[i][0]`` ignores the collapsed ``j`` loop, so every ``j``
    iteration of one ``i`` races on the same element — the exact
    pattern ``VFY006`` exists to refuse. The annotation is seeded by
    hand (bypassing `repro.codee.transform`, which would never derive
    it); the lint gate asserts the verifier flags it and that
    `repro.codee.cgen` refuses to compile it.
    """
    i, j = Sym("i"), Sym("j")
    nest = Loop(
        "i",
        Const(0),
        Sym("n"),
        [
            Loop(
                "j",
                Const(0),
                Sym("n"),
                [Store("out", (i, Const(0)), Load("src", (i, j)))],
            )
        ],
        parallel=True,
        collapse=2,
    )
    return Kernel(
        name="broken_offload_ir",
        params=(
            ArrayParam("src", strides=(Sym("n"), Const(1))),
            ArrayParam("out", strides=(Sym("n"), Const(1)), intent="out"),
            ScalarParam("n", "long"),
        ),
        body=[nest],
        doc="seeded-race fixture: out[i][0] written by every j iteration",
    )


register_kernel(
    KernelSpec(name="broken_offload_ir", build=broken_offload_kernel, gate=False)
)
