"""Parse ``!$omp`` sentinel text back into `repro.core.directives` objects.

`repro.codee.rewrite` *emits* directive objects as Fortran text; this
module is the inverse: it consumes the sentinel lines the lexer
preserved (continuations already joined into one logical line) and
reconstructs the typed construct so the verifier can reason about the
clauses of directives that already exist in a source file — whether
they came from our own rewriter, from Codee, or from a hand edit.

Only the constructs the paper's workflow uses are recognized; anything
else is returned as :class:`UnknownDirective` so callers can decide
whether unknown sentinels are an error or noise.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.core.directives import (
    DeclareTarget,
    Map,
    MapType,
    Reduction,
    TargetEnterData,
    TargetExitData,
    TargetTeamsDistributeParallelDo,
)
from repro.errors import CodeeError


class DirectiveSyntaxError(CodeeError):
    """An ``!$omp`` sentinel could not be parsed."""

    def __init__(self, message: str, line: int = 0):
        self.line = line
        if line:
            message = f"line {line}: {message}"
        super().__init__(message)


@dataclass(frozen=True, slots=True)
class SimdDirective:
    """``!$omp simd`` on an inner loop (no clauses we act on)."""


@dataclass(frozen=True, slots=True)
class UnknownDirective:
    """A sentinel the parser does not model (kept for diagnostics)."""

    text: str


ParsedDirective = (
    TargetTeamsDistributeParallelDo
    | TargetEnterData
    | TargetExitData
    | DeclareTarget
    | SimdDirective
    | UnknownDirective
)

_SENTINEL_RE = re.compile(r"^!\$omp\s+", re.IGNORECASE)

#: ``clause(...)`` with a balanced single level of nesting inside the
#: parens (enough for ``map(to: a(:, 1:n))``-style sections).
_CLAUSE_RE = re.compile(
    r"(?P<name>[a-z_]+)\s*(?:\((?P<args>(?:[^()]|\([^()]*\))*)\))?",
    re.IGNORECASE,
)

_MAP_TYPES = {t.value: t for t in MapType}
_MAP_MODIFIERS = {"always", "close", "present"}


def _base_names(csv: str) -> tuple[str, ...]:
    """Variable base names from a clause list, array sections stripped."""
    names: list[str] = []
    depth = 0
    current: list[str] = []
    for ch in csv + ",":
        if ch == "(":
            depth += 1
        elif ch == ")":
            depth -= 1
        elif ch == "," and depth == 0:
            item = "".join(current).strip()
            if item:
                names.append(item.split("(")[0].strip())
            current = []
            continue
        current.append(ch)
    return tuple(names)


def _parse_map_clause(args: str, line: int) -> Map:
    """``map([modifier,] [type:] var, ...)`` -> :class:`Map`."""
    map_type = MapType.TOFROM  # OpenMP default when no type is given
    body = args
    if ":" in args:
        head, _, rest = args.partition(":")
        head_words = [w.strip().lower() for w in head.split(",")]
        type_word = head_words[-1]
        if type_word not in _MAP_TYPES:
            raise DirectiveSyntaxError(
                f"unknown map type {type_word!r} in map({args})", line
            )
        for mod in head_words[:-1]:
            if mod not in _MAP_MODIFIERS:
                raise DirectiveSyntaxError(
                    f"unknown map modifier {mod!r} in map({args})", line
                )
        map_type = _MAP_TYPES[type_word]
        body = rest
    names = _base_names(body)
    if not names:
        raise DirectiveSyntaxError(f"empty map clause map({args})", line)
    return Map(map_type, names)


def _parse_reduction_clause(args: str, line: int) -> Reduction:
    if ":" not in args:
        raise DirectiveSyntaxError(
            f"reduction clause needs 'op: vars': reduction({args})", line
        )
    op, _, rest = args.partition(":")
    names = _base_names(rest)
    if not names:
        raise DirectiveSyntaxError(f"empty reduction clause reduction({args})", line)
    try:
        return Reduction(op.strip().lower(), names)
    except Exception as exc:  # ConfigurationError -> parse error with line
        raise DirectiveSyntaxError(str(exc), line) from exc


def _parse_int_clause(name: str, args: str | None, line: int) -> int:
    if args is None or not args.strip().isdigit():
        raise DirectiveSyntaxError(
            f"{name} clause needs an integer argument, got {args!r}", line
        )
    return int(args.strip())


def _strip_construct(body: str, *keywords: str) -> str | None:
    """Remove the leading construct keywords; None when they don't match."""
    rest = body
    for kw in keywords:
        m = re.match(rf"\s*{kw}\b", rest, re.IGNORECASE)
        if m is None:
            return None
        rest = rest[m.end() :]
    return rest


def _parse_combined_construct(
    clause_text: str, line: int
) -> TargetTeamsDistributeParallelDo:
    collapse = 1
    maps: list[Map] = []
    private: tuple[str, ...] = ()
    firstprivate: tuple[str, ...] = ()
    reductions: list[Reduction] = []
    num_teams: int | None = None
    thread_limit: int | None = None
    simd_inner = False
    for m in _CLAUSE_RE.finditer(clause_text):
        name = m.group("name").lower()
        args = m.group("args")
        if name == "collapse":
            collapse = _parse_int_clause("collapse", args, line)
        elif name == "num_teams":
            num_teams = _parse_int_clause("num_teams", args, line)
        elif name == "thread_limit":
            thread_limit = _parse_int_clause("thread_limit", args, line)
        elif name == "private":
            private = private + _base_names(args or "")
        elif name == "firstprivate":
            firstprivate = firstprivate + _base_names(args or "")
        elif name == "reduction":
            reductions.append(_parse_reduction_clause(args or "", line))
        elif name == "map":
            maps.append(_parse_map_clause(args or "", line))
        elif name == "simd":
            simd_inner = True
        else:
            raise DirectiveSyntaxError(
                f"unsupported clause {name!r} on combined target construct", line
            )
    return TargetTeamsDistributeParallelDo(
        collapse=collapse,
        maps=tuple(maps),
        private=private,
        firstprivate=firstprivate,
        reductions=tuple(reductions),
        simd_inner=simd_inner,
        num_teams=num_teams,
        thread_limit=thread_limit,
    )


def _parse_data_maps(clause_text: str, line: int) -> tuple[Map, ...]:
    maps: list[Map] = []
    for m in _CLAUSE_RE.finditer(clause_text):
        name = m.group("name").lower()
        if name != "map":
            raise DirectiveSyntaxError(
                f"unsupported clause {name!r} on target data directive", line
            )
        maps.append(_parse_map_clause(m.group("args") or "", line))
    if not maps:
        raise DirectiveSyntaxError("target data directive without map clauses", line)
    return tuple(maps)


def parse_omp_directive(text: str, line: int = 0) -> ParsedDirective:
    """Parse one joined ``!$omp`` logical line into a directive object."""
    m = _SENTINEL_RE.match(text.strip())
    if m is None:
        raise DirectiveSyntaxError(f"not an !$omp sentinel: {text!r}", line)
    body = text.strip()[m.end() :]
    if body.rstrip().endswith("&"):
        # The lexer only joins continuations onto following '!$omp'
        # sentinel lines; a leftover '&' means the continuation dangled.
        raise DirectiveSyntaxError(
            "dangling '&': the next line does not continue this directive",
            line,
        )

    rest = _strip_construct(body, "target", "teams", "distribute")
    if rest is not None:
        # Optional 'parallel do' tail ('!$omp parallel do' continuation
        # lines are joined by the lexer into this same logical line).
        tail = _strip_construct(rest, "parallel", "do")
        return _parse_combined_construct(tail if tail is not None else rest, line)

    rest = _strip_construct(body, "target", "enter", "data")
    if rest is not None:
        return TargetEnterData(maps=_parse_data_maps(rest, line))

    rest = _strip_construct(body, "target", "exit", "data")
    if rest is not None:
        return TargetExitData(maps=_parse_data_maps(rest, line))

    rest = _strip_construct(body, "declare", "target")
    if rest is not None:
        names = _base_names(rest.strip().lstrip("(").rstrip(")"))
        return DeclareTarget(names=names)

    if _strip_construct(body, "simd") is not None:
        return SimdDirective()

    return UnknownDirective(text=text.strip())
