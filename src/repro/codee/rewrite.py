"""``codee rewrite --offload omp``: the directive-inserting autofix.

Given a loop (located by file line, as in Listing 2's
``module_mp_fast_sbm.f90:6293:4``), the rewriter runs the dependence
analysis and, when the nest is provably parallel, inserts the combined
``!$omp target teams distribute parallel do`` construct with the
``private``/``map`` clauses the analysis derived, plus ``!$omp simd``
on the innermost loop — reproducing Listing 4 from Listing 3.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.codee.dependence import DependenceReport, analyze_loop
from repro.codee.fast import DoLoop, Module, SourceFile, Subroutine, walk_stmts
from repro.codee.fparser import parse_source
from repro.core.directives import (
    Map,
    MapType,
    Reduction,
    TargetTeamsDistributeParallelDo,
)
from repro.errors import RewriteError


@dataclass(frozen=True)
class RewriteResult:
    """Outcome of one autofix."""

    source: str
    directive: TargetTeamsDistributeParallelDo
    report: DependenceReport
    loop_line: int
    #: The input text the rewrite started from (None when the caller
    #: constructed the result without it).
    original: str | None = None

    @property
    def modified(self) -> bool:
        """Whether the emitted source actually differs from the input.

        False when ``original`` is unknown — a result that cannot show
        its input never claims to have changed it.
        """
        return self.original is not None and self.source != self.original


def _locate_loop(
    sf: SourceFile, line: int
) -> tuple[DoLoop, Subroutine, Module | None]:
    """Find the do-loop starting at (or closest above) ``line``."""
    best: tuple[DoLoop, Subroutine, Module | None] | None = None
    routines: list[tuple[Module | None, Subroutine]] = [
        (None, r) for r in sf.routines
    ] + [(m, r) for m in sf.modules for r in m.routines]
    for mod, routine in routines:
        for stmt in walk_stmts(routine.body):
            if isinstance(stmt, DoLoop) and stmt.line <= line:
                if best is None or stmt.line > best[0].line:
                    best = (stmt, routine, mod)
    if best is None:
        raise RewriteError(f"no do-loop found at or before line {line}")
    return best


def _already_annotated(loop: DoLoop) -> bool:
    """Whether an offload construct is already attached to the loop.

    The parser attaches the ``!$omp`` comment block (including ``&``
    continuation lines from a previous rewrite) to the loop it
    precedes, so directive presence — not raw text scanning — decides.
    """
    return any(
        "target" in d.lowered and "distribute" in d.lowered
        for d in loop.directives
    )


def directive_for_report(
    report: DependenceReport, collapse: int | None = None
) -> TargetTeamsDistributeParallelDo:
    """Build the OpenMP construct the analysis justifies.

    The default collapse keeps one serial inner level for ``simd`` and
    never exceeds the paper's ``collapse(3)`` ceiling, however deep the
    nest: ``max(1, min(3, depth - 1))``.
    """
    maps = []
    if report.read_only_arrays:
        maps.append(Map(MapType.TO, report.read_only_arrays))
    if report.write_only_arrays:
        maps.append(Map(MapType.FROM, report.write_only_arrays))
    if report.readwrite_arrays:
        maps.append(Map(MapType.TOFROM, report.readwrite_arrays))
    by_op: dict[str, list[str]] = {}
    for op, name in report.reductions:
        by_op.setdefault(op, []).append(name)
    reductions = tuple(
        Reduction(op, tuple(sorted(names)))
        for op, names in sorted(by_op.items())
    )
    depth = report.loop.nest_depth()
    return TargetTeamsDistributeParallelDo(
        collapse=collapse if collapse is not None else max(1, min(3, depth - 1)),
        maps=tuple(maps),
        private=report.private_scalars,
        reductions=reductions,
    )


def offload_rewrite(
    source: str,
    line: int,
    path: str = "<memory>",
    collapse: int | None = None,
    simd_inner: bool = True,
) -> RewriteResult:
    """Annotate the loop at ``line`` with OpenMP offload directives.

    Raises :class:`RewriteError` (with the analysis reasons) when the
    dependence analysis cannot prove the nest parallel — the tool never
    inserts an unsound directive.
    """
    sf = parse_source(source, path)
    loop, routine, module = _locate_loop(sf, line)
    report = analyze_loop(loop, routine, module)
    if not report.parallelizable:
        raise RewriteError(
            f"{path}:{loop.line}: loop is not provably parallel:\n  "
            + "\n  ".join(report.reasons)
        )
    directive = directive_for_report(report, collapse)

    lines = source.splitlines()
    # Idempotence: rerunning the autofix on already-annotated source is
    # a no-op — never stack a second copy of the construct.
    if _already_annotated(loop):
        return RewriteResult(
            source=source,
            directive=directive,
            report=report,
            loop_line=loop.line,
            original=source,
        )
    indent = " " * (len(lines[loop.line - 1]) - len(lines[loop.line - 1].lstrip()))
    block = ["! Codee: Loop modified"]
    block.extend(directive.render().splitlines())
    out_lines = list(lines[: loop.line - 1])
    out_lines.extend(indent + l for l in block)
    # Insert '!$omp simd' before the innermost loop, if requested and
    # the nest is deeper than the collapsed levels.
    inner = loop.innermost()
    if simd_inner and inner is not loop and inner.line > loop.line:
        for l in lines[loop.line - 1 : inner.line - 1]:
            out_lines.append(l)
        inner_indent = " " * (
            len(lines[inner.line - 1]) - len(lines[inner.line - 1].lstrip())
        )
        out_lines.append(inner_indent + "! Codee: Loop modified")
        out_lines.append(inner_indent + "!$omp simd")
        out_lines.extend(lines[inner.line - 1 :])
    else:
        out_lines.extend(lines[loop.line - 1 :])

    return RewriteResult(
        source="\n".join(out_lines) + ("\n" if source.endswith("\n") else ""),
        directive=directive,
        report=report,
        loop_line=loop.line,
        original=source,
    )
