"""The ``codee screening`` report: a ranked inventory of opportunities.

Screening is the first step of the paper's workflow (Listing 2): it
sizes the codebase, counts loops and routines, and ranks files by the
number of optimization opportunities so the engineer knows where to
look before running the expensive per-file checks.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.codee.checks import run_checks
from repro.codee.fast import DoLoop, SourceFile, walk_stmts
from repro.codee.fparser import parse_source


@dataclass(frozen=True, slots=True)
class FileScreening:
    """Screening metrics for one source file."""

    path: str
    lines_of_code: int
    num_modules: int
    num_routines: int
    num_loops: int
    max_nest_depth: int
    num_findings: int
    num_offload_opportunities: int


@dataclass(frozen=True)
class ScreeningReport:
    """Whole-project screening."""

    files: tuple[FileScreening, ...]

    @property
    def total_loc(self) -> int:
        return sum(f.lines_of_code for f in self.files)

    @property
    def total_opportunities(self) -> int:
        return sum(f.num_offload_opportunities for f in self.files)

    def ranked(self) -> list[FileScreening]:
        """Files ordered by opportunity count (most promising first)."""
        return sorted(
            self.files,
            key=lambda f: (f.num_offload_opportunities, f.num_findings),
            reverse=True,
        )

    def format_table(self) -> str:
        lines = [
            "codee screening report",
            f"{'file':<32} {'LoC':>6} {'routines':>9} {'loops':>6} "
            f"{'findings':>9} {'offload':>8}",
        ]
        for f in self.ranked():
            lines.append(
                f"{f.path:<32} {f.lines_of_code:>6d} {f.num_routines:>9d} "
                f"{f.num_loops:>6d} {f.num_findings:>9d} "
                f"{f.num_offload_opportunities:>8d}"
            )
        lines.append(
            f"total: {self.total_loc} LoC, "
            f"{self.total_opportunities} offload opportunities"
        )
        return "\n".join(lines)


def screen_file(source: str, path: str) -> FileScreening:
    """Screen one source file."""
    sf = parse_source(source, path)
    loops = [
        s
        for r in sf.all_routines()
        for s in walk_stmts(r.body)
        if isinstance(s, DoLoop)
    ]
    findings = run_checks(sf)
    return FileScreening(
        path=path,
        lines_of_code=sum(1 for l in source.splitlines() if l.strip()),
        num_modules=len(sf.modules),
        num_routines=len(sf.all_routines()),
        num_loops=len(loops),
        max_nest_depth=max((l.nest_depth() for l in loops), default=0),
        num_findings=len(findings),
        num_offload_opportunities=sum(
            1 for f in findings if f.check_id == "RMK015"
        ),
    )


def screening_report(sources: dict[str, str]) -> ScreeningReport:
    """Screen a set of ``{path: source}`` files."""
    return ScreeningReport(
        files=tuple(screen_file(text, path) for path, text in sorted(sources.items()))
    )
