"""Lexer for the Fortran subset.

Free-form source: ``!`` comments (with ``!$omp`` sentinels preserved as
directive tokens), ``&`` continuations (joined before tokenizing a
statement), case-insensitive keywords, and the operator set the FSBM
sources use. Tokens carry line/column for diagnostics and for the
rewriter's line-targeted edits.
"""

from __future__ import annotations

import enum
import re
from dataclasses import dataclass

from repro.errors import FortranSyntaxError

KEYWORDS = {
    "module",
    "end",
    "contains",
    "use",
    "implicit",
    "none",
    "subroutine",
    "function",
    "pure",
    "elemental",
    "real",
    "integer",
    "logical",
    "character",
    "parameter",
    "dimension",
    "allocatable",
    "pointer",
    "target",
    "intent",
    "in",
    "out",
    "inout",
    "do",
    "enddo",
    "if",
    "then",
    "else",
    "elseif",
    "endif",
    "call",
    "return",
    "result",
    "save",
    "allocate",
    "deallocate",
    "while",
    "exit",
    "cycle",
}


class TokenKind(enum.Enum):
    IDENT = "ident"
    KEYWORD = "keyword"
    NUMBER = "number"
    STRING = "string"
    OP = "op"
    LPAREN = "("
    RPAREN = ")"
    COMMA = ","
    DCOLON = "::"
    ASSIGN = "="
    POINT_TO = "=>"
    PERCENT = "%"
    DIRECTIVE = "directive"  # whole !$omp line
    NEWLINE = "newline"
    EOF = "eof"


@dataclass(frozen=True, slots=True)
class Token:
    kind: TokenKind
    text: str
    line: int
    column: int

    @property
    def lowered(self) -> str:
        return self.text.lower()


_TOKEN_RE = re.compile(
    r"""
    (?P<string>'[^']*'|"[^"]*")
  | (?P<number>(\d+\.\d*|\.\d+|\d+)([edED][+-]?\d+)?(_\w+)?)
  | (?P<ident>[A-Za-z_]\w*)
  | (?P<point_to>=>)
  | (?P<dcolon>::)
  | (?P<op>\*\*|==|/=|<=|>=|\.\w+\.|[-+*/<>:])
  | (?P<assign>=)
  | (?P<lparen>\()
  | (?P<rparen>\))
  | (?P<comma>,)
  | (?P<percent>%)
  | (?P<ws>[ \t]+)
    """,
    re.VERBOSE,
)


def _logical_lines(source: str) -> list[tuple[int, str]]:
    """Join continuation lines; strip comments; keep directives whole.

    Returns ``(first_line_number, text)`` pairs. A line whose content is
    an OpenMP sentinel is returned with its sentinel intact so the
    parser can attach it to the following construct.
    """
    out: list[tuple[int, str]] = []
    pending: str | None = None
    pending_line = 0
    for lineno, raw in enumerate(source.splitlines(), start=1):
        stripped = raw.strip()
        if stripped.lower().startswith("!$omp"):
            # Directives may continue with a trailing '&'.
            if pending is not None:
                raise FortranSyntaxError(
                    "directive inside a continued statement", lineno
                )
            text = stripped
            if out and out[-1][1].lower().startswith("!$omp") and out[-1][1].endswith(
                "&"
            ):
                prev_line, prev = out.pop()
                body = text[len("!$omp") :].strip()
                out.append((prev_line, prev[:-1].rstrip() + " " + body))
            else:
                out.append((lineno, text))
            continue
        # Strip trailing comment (not inside a string; FSBM sources keep
        # strings simple so a conservative scan suffices).
        in_str: str | None = None
        cut = len(raw)
        for i, ch in enumerate(raw):
            if in_str:
                if ch == in_str:
                    in_str = None
            elif ch in "'\"":
                in_str = ch
            elif ch == "!":
                cut = i
                break
        code = raw[:cut].strip()
        if not code:
            continue
        if pending is not None:
            code = pending + " " + code
            lineno_use = pending_line
            pending = None
        else:
            lineno_use = lineno
        if code.endswith("&"):
            pending = code[:-1].rstrip()
            pending_line = lineno_use
            continue
        out.append((lineno_use, code))
    if pending is not None:
        raise FortranSyntaxError("dangling continuation at end of file", pending_line)
    return out


def tokenize(source: str) -> list[Token]:
    """Tokenize a source file into a flat stream with NEWLINE separators."""
    tokens: list[Token] = []
    for lineno, text in _logical_lines(source):
        if text.lower().startswith("!$omp"):
            tokens.append(Token(TokenKind.DIRECTIVE, text, lineno, 1))
            tokens.append(Token(TokenKind.NEWLINE, "\n", lineno, len(text) + 1))
            continue
        pos = 0
        while pos < len(text):
            m = _TOKEN_RE.match(text, pos)
            if not m:
                raise FortranSyntaxError(
                    f"unexpected character {text[pos]!r}", lineno, pos + 1
                )
            pos = m.end()
            kind = m.lastgroup
            value = m.group()
            if kind == "ws":
                continue
            col = m.start() + 1
            if kind == "ident":
                tk = (
                    TokenKind.KEYWORD
                    if value.lower() in KEYWORDS
                    else TokenKind.IDENT
                )
                tokens.append(Token(tk, value, lineno, col))
            elif kind == "number":
                tokens.append(Token(TokenKind.NUMBER, value, lineno, col))
            elif kind == "string":
                tokens.append(Token(TokenKind.STRING, value, lineno, col))
            elif kind == "op":
                tokens.append(Token(TokenKind.OP, value, lineno, col))
            elif kind == "assign":
                tokens.append(Token(TokenKind.ASSIGN, value, lineno, col))
            elif kind == "point_to":
                tokens.append(Token(TokenKind.POINT_TO, value, lineno, col))
            elif kind == "dcolon":
                tokens.append(Token(TokenKind.DCOLON, value, lineno, col))
            elif kind == "lparen":
                tokens.append(Token(TokenKind.LPAREN, value, lineno, col))
            elif kind == "rparen":
                tokens.append(Token(TokenKind.RPAREN, value, lineno, col))
            elif kind == "comma":
                tokens.append(Token(TokenKind.COMMA, value, lineno, col))
            elif kind == "percent":
                tokens.append(Token(TokenKind.PERCENT, value, lineno, col))
        tokens.append(Token(TokenKind.NEWLINE, "\n", lineno, len(text) + 1))
    tokens.append(
        Token(TokenKind.EOF, "", tokens[-1].line + 1 if tokens else 1, 1)
    )
    return tokens
