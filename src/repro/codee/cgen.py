"""C code generation from the loop IR, through the shared JIT cache.

The final leg of the analyze → transform → verify pipeline: a
transformed :class:`~repro.codee.loopir.Kernel` becomes an OpenMP C
function compiled by `repro.core.cjit` exactly like the hand-written
kernels it replaces (same flags, same source-hash cache, same kill
switches).

Two properties the emitter guarantees:

* **Bit-identical arithmetic.** Every expression is emitted fully
  parenthesized in the IR's association order, and the shared
  ``-ffp-contract=off`` flag forbids FMA contraction — so a kernel
  defined with the reference's operation grouping produces the
  reference's bits, independent of how the addressing code around it
  is optimized. Addressing uses plain ``long`` arithmetic on the
  declared element strides; the compiler's induction-variable
  optimizations recover the hand-written kernels' hoisted row
  pointers.
* **No unverified C.** :func:`build_module` runs the IR static
  verifier (`repro.codee.irverify`) over every kernel first and
  raises :class:`~repro.errors.IRVerificationError` on any blocking
  finding — an illegal annotation is refused before a single line of
  C exists, which is the pipeline's whole point.
"""

from __future__ import annotations

from pathlib import Path
from typing import Callable, Iterable

from repro.codee import irverify
from repro.codee.loopir import (
    ArrayParam,
    Assign,
    Bin,
    Const,
    Decl,
    Expr,
    If,
    Kernel,
    Let,
    Load,
    LocalArray,
    Loop,
    ScalarParam,
    Stmt,
    Store,
    Sym,
    Un,
    Select,
)
from repro.codee.verifier import VerifierConfig
from repro.core import cjit
from repro.errors import IRVerificationError

_INDENT = "    "


def _lit(value: int | float) -> str:
    if isinstance(value, float):
        return repr(value)
    return str(value)


class _Emitter:
    """Renders one kernel; array layouts come from its parameters."""

    def __init__(self, kernel: Kernel):
        self.kernel = kernel
        self.arrays = kernel.arrays()
        self.lines: list[str] = []

    # -- expressions --------------------------------------------------------

    def expr(self, e: Expr) -> str:
        if isinstance(e, Const):
            return _lit(e.value)
        if isinstance(e, Sym):
            return e.name
        if isinstance(e, Load):
            return self.addr(e.array, e.index)
        if isinstance(e, Bin):
            return f"({self.expr(e.left)} {e.op} {self.expr(e.right)})"
        if isinstance(e, Un):
            return f"({e.op}{self.expr(e.operand)})"
        if isinstance(e, Select):
            return (
                f"({self.expr(e.cond)} ? {self.expr(e.if_true)} : "
                f"{self.expr(e.if_false)})"
            )
        raise TypeError(f"not an IR expression: {e!r}")

    def addr(self, array: str, index: tuple[Expr, ...]) -> str:
        param = self.arrays.get(array)
        if param is None:
            # Stack-local array: single subscript, unit stride.
            (elem,) = index
            return f"{array}[{self.expr(elem)}]"
        base = param.name
        subs = index
        if param.ptr_table:
            base = f"{param.name}[{self.expr(index[0])}]"
            subs = index[1:]
        terms = []
        for elem, stride in zip(subs, param.strides, strict=True):
            if stride == Const(1):
                terms.append(self.expr(elem))
            else:
                terms.append(f"{self.expr(elem)} * {self.expr(stride)}")
        return f"{base}[{' + '.join(terms)}]"

    # -- statements ---------------------------------------------------------

    def emit(self, stmt: Stmt, depth: int) -> None:
        pad = _INDENT * depth
        if isinstance(stmt, Let):
            self.lines.append(
                f"{pad}const {stmt.ctype} {stmt.name} = {self.expr(stmt.value)};"
            )
        elif isinstance(stmt, Decl):
            init = f" = {self.expr(stmt.init)}" if stmt.init is not None else ""
            self.lines.append(f"{pad}{stmt.ctype} {stmt.name}{init};")
        elif isinstance(stmt, Assign):
            self.lines.append(f"{pad}{stmt.name} = {self.expr(stmt.value)};")
        elif isinstance(stmt, Store):
            self.lines.append(
                f"{pad}{self.addr(stmt.array, stmt.index)} {stmt.op} "
                f"{self.expr(stmt.value)};"
            )
        elif isinstance(stmt, LocalArray):
            self.lines.append(f"{pad}{stmt.ctype} {stmt.name}[{stmt.size}];")
        elif isinstance(stmt, If):
            self.lines.append(f"{pad}if ({self.expr(stmt.cond)}) {{")
            for s in stmt.body:
                self.emit(s, depth + 1)
            if stmt.orelse:
                self.lines.append(f"{pad}}} else {{")
                for s in stmt.orelse:
                    self.emit(s, depth + 1)
            self.lines.append(f"{pad}}}")
        elif isinstance(stmt, Loop):
            self.loop(stmt, depth)
        else:
            raise TypeError(f"not an IR statement: {stmt!r}")

    def loop(self, loop: Loop, depth: int) -> None:
        pad = _INDENT * depth
        if loop.parallel:
            pragma = "#pragma omp parallel for"
            if loop.collapse >= 2:
                pragma += f" collapse({loop.collapse})"
            pragma += f" schedule({loop.schedule})"
            for op, names in _grouped_reductions(loop.reductions):
                pragma += f" reduction({op}:{', '.join(names)})"
            self.lines.append(f"{pad}{pragma}")
        if loop.simd:
            self.lines.append(f"{pad}#pragma omp simd")
        self.lines.append(
            f"{pad}for (long {loop.var} = {self.expr(loop.start)}; "
            f"{loop.var} < {self.expr(loop.stop)}; {loop.var}++) {{"
        )
        for s in loop.body:
            self.emit(s, depth + 1)
        self.lines.append(f"{pad}}}")

    # -- the function -------------------------------------------------------

    def signature(self) -> str:
        parts = []
        for p in self.kernel.params:
            if isinstance(p, ScalarParam):
                parts.append(f"{p.ctype} {p.name}")
            elif isinstance(p, ArrayParam):
                if p.ptr_table:
                    parts.append(f"{p.ctype} **{p.name}")
                else:
                    const = "const " if p.intent == "in" else ""
                    restrict = "restrict " if p.restrict else ""
                    parts.append(f"{const}{p.ctype} *{restrict}{p.name}")
            else:
                raise TypeError(f"not an IR parameter: {p!r}")
        return f"void {self.kernel.name}({', '.join(parts)})"

    def render(self) -> str:
        self.lines = []
        if self.kernel.doc:
            self.lines.append("/* " + self.kernel.doc.replace("*/", "* /") + " */")
        self.lines.append(self.signature())
        self.lines.append("{")
        for stmt in self.kernel.body:
            self.emit(stmt, 1)
        self.lines.append("}")
        return "\n".join(self.lines)


def _grouped_reductions(
    reductions: tuple[tuple[str, str], ...],
) -> list[tuple[str, list[str]]]:
    groups: dict[str, list[str]] = {}
    for op, name in reductions:
        groups.setdefault(op, []).append(name)
    return [(op, sorted(names)) for op, names in sorted(groups.items())]


def emit_kernel(kernel: Kernel) -> str:
    """The C function for one (already transformed) kernel."""
    return _Emitter(kernel).render()


def emit_module(kernels: Iterable[Kernel], banner: str = "") -> str:
    """A complete translation unit for a set of kernels."""
    parts = ["#include <stddef.h>", ""]
    if banner:
        parts.insert(0, "/* " + banner.replace("*/", "* /") + " */")
    parts.extend(emit_kernel(k) + "\n" for k in kernels)
    return "\n".join(parts)


def verify_kernels(
    kernels: Iterable[Kernel], config: VerifierConfig | None = None
) -> None:
    """Raise :class:`IRVerificationError` on any blocking finding."""
    for kernel in kernels:
        blocking = [
            v
            for v in irverify.verify_kernel(kernel, config)
            if v.severity == "error" and v.category == "correctness"
        ]
        if blocking:
            raise IRVerificationError(kernel.name, blocking)


def build_module(
    name: str,
    kernels: Iterable[Kernel],
    *,
    cflags: tuple[str, ...] = cjit.DEFAULT_CFLAGS,
    disable_env: str | None = None,
    build_dir: str | Path | None = None,
    setup: Callable | None = None,
    config: VerifierConfig | None = None,
    banner: str = "",
) -> cjit.CJitModule:
    """Verify the kernels, emit C, and hand it to the JIT cache.

    The returned :class:`~repro.core.cjit.CJitModule` behaves exactly
    like one wrapping a hand-written source string — same lazy
    compile, on-disk cache, kill switches, and ``load_error``
    reporting — but its source has passed VFY006–VFY010 first.
    """
    kernels = list(kernels)
    verify_kernels(kernels, config)
    return cjit.CJitModule(
        name,
        emit_module(kernels, banner=banner),
        cflags=cflags,
        disable_env=disable_env,
        build_dir=build_dir,
        setup=setup,
    )
