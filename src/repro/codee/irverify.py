"""Static verification of loop-IR kernels (rules VFY006–VFY010).

The Fortran-source verifier (`repro.codee.verifier`) checks the
*annotated source* side of the paper's workflow; this module checks
the *generated kernel* side: after `repro.codee.transform` has
annotated a :class:`~repro.codee.loopir.Kernel`, these rules prove
the annotations safe before `repro.codee.cgen` is allowed to emit C.
Findings reuse the same :class:`~repro.codee.verifier.Violation`
record, severity/category semantics, deterministic ordering, and
SARIF/JSON plumbing — ``codee verify --ir NAME`` reports them through
the identical exit-code contract (0 clean / 2 errors).

Since IR kernels have no source file, ``path`` is the synthetic
``<ir:kernel_name>`` and ``line`` is the statement's 1-based preorder
index (:meth:`~repro.codee.loopir.Kernel.statement_lines`), which the
``codee transform`` listing prints alongside each statement.

Rules:

=======  ============  ====================================================
id       name          what it proves
=======  ============  ====================================================
VFY006   ir-race       plain stores in a parallel nest are indexed by every
                       collapsed variable; mutated scalars are nest-private
VFY007   ir-alias      no write through a ``restrict`` pointer that shares
                       an alias group with another parameter
VFY008   ir-intent     stores respect declared array intents
VFY009   ir-reduction  accumulations missing a collapsed index carry an
                       explicit reduction annotation
VFY010   ir-stack      local arrays of parallel nests fit the stack/heap
                       budgets (the VFY004 model applied to the IR)
=======  ============  ====================================================
"""

from __future__ import annotations

from repro.codee.loopir import (
    Assign,
    Bin,
    Decl,
    Kernel,
    Let,
    Load,
    LocalArray,
    Loop,
    Stmt,
    Store,
    Sym,
    expr_loads,
    expr_syms,
    stmt_exprs,
    walk_ir_stmts,
)
from repro.codee.verifier import (
    CHECK_IR_ALIAS,
    CHECK_IR_INTENT,
    CHECK_IR_RACE,
    CHECK_IR_REDUCTION,
    CHECK_IR_STACK,
    CHECK_RULES,
    VerifierConfig,
    Violation,
    sort_violations,
)

_CTYPE_BYTES = {
    "double": 8,
    "float": 4,
    "long": 8,
    "int": 4,
    "unsigned char": 1,
}

#: Scalar-update operators accepted as reduction patterns.
_SCALAR_REDUCTION_OPS = {"+", "-", "*"}


def _ir_path(kernel: Kernel) -> str:
    return f"<ir:{kernel.name}>"


def _violation(
    kernel: Kernel,
    check_id: str,
    line: int,
    detail: str,
    severity: str = "error",
) -> Violation:
    return Violation(
        check_id=check_id,
        title=CHECK_RULES[check_id][0],
        path=_ir_path(kernel),
        line=line,
        routine=kernel.name,
        detail=detail,
        severity=severity,
    )


def _parallel_nests(kernel: Kernel) -> list[Loop]:
    return [
        s
        for s in walk_ir_stmts(kernel.body)
        if isinstance(s, Loop) and s.parallel
    ]


def _is_plain(elem, var: str) -> bool:
    return isinstance(elem, Sym) and elem.name == var


def _nest_private_names(nest: Loop) -> tuple[set[str], set[str]]:
    """(scalar names, local array names) declared under ``nest``."""
    scalars: set[str] = set()
    arrays: set[str] = set()
    for stmt in walk_ir_stmts(nest.body):
        if isinstance(stmt, (Let, Decl)):
            scalars.add(stmt.name)
        elif isinstance(stmt, LocalArray):
            arrays.add(stmt.name)
        elif isinstance(stmt, Loop):
            scalars.add(stmt.var)
    return scalars, arrays


def _is_scalar_reduction_update(stmt: Assign) -> bool:
    value = stmt.value
    return (
        isinstance(value, Bin)
        and value.op in _SCALAR_REDUCTION_OPS
        and (value.left == Sym(stmt.name) or value.right == Sym(stmt.name))
    )


def _check_ir_races(kernel: Kernel, lines: dict[int, int]) -> list[Violation]:
    out: list[Violation] = []
    for nest in _parallel_nests(kernel):
        chain = nest.nest_chain()
        collapsed = [lp.var for lp in chain[: max(1, nest.collapse)]]
        private_scalars, private_arrays = _nest_private_names(nest)
        reduced = {name for _, name in nest.reductions}

        for stmt in walk_ir_stmts(nest.body):
            if isinstance(stmt, Assign) and stmt.name not in private_scalars:
                if stmt.name in reduced and _is_scalar_reduction_update(stmt):
                    continue
                if _is_scalar_reduction_update(stmt):
                    out.append(
                        _violation(
                            kernel,
                            CHECK_IR_REDUCTION,
                            lines[id(stmt)],
                            f"scalar {stmt.name} accumulates across "
                            "iterations of the parallel nest without a "
                            "reduction annotation",
                        )
                    )
                else:
                    out.append(
                        _violation(
                            kernel,
                            CHECK_IR_RACE,
                            lines[id(stmt)],
                            f"scalar {stmt.name} is written inside the "
                            "parallel nest but declared outside it: every "
                            "thread races on one location",
                        )
                    )
                continue
            if not isinstance(stmt, Store) or stmt.array in private_arrays:
                continue
            missing = [
                v
                for v in collapsed
                if not any(_is_plain(e, v) for e in stmt.index)
            ]
            if not missing:
                continue
            if stmt.op in ("+=", "-="):
                if stmt.array in reduced:
                    continue
                out.append(
                    _violation(
                        kernel,
                        CHECK_IR_REDUCTION,
                        lines[id(stmt)],
                        f"array {stmt.array} accumulates without indexing "
                        f"by collapsed loop variable(s) "
                        f"{', '.join(missing)} and carries no reduction "
                        "annotation",
                    )
                )
            else:
                out.append(
                    _violation(
                        kernel,
                        CHECK_IR_RACE,
                        lines[id(stmt)],
                        f"store to {stmt.array} is not indexed by collapsed "
                        f"loop variable(s) {', '.join(missing)}: different "
                        "threads write the same element",
                    )
                )
    return out


def _check_ir_alias(kernel: Kernel, lines: dict[int, int]) -> list[Violation]:
    out: list[Violation] = []
    arrays = kernel.arrays()
    groups: dict[str, list[str]] = {}
    for param in arrays.values():
        if param.alias_group:
            groups.setdefault(param.alias_group, []).append(param.name)
    suspect = {
        name
        for group in groups.values()
        if len(group) > 1
        for name in group
    }
    if not suspect:
        return out
    reported: set[str] = set()
    for nest in _parallel_nests(kernel):
        for stmt in walk_ir_stmts(nest.body):
            if (
                isinstance(stmt, Store)
                and stmt.array in suspect
                and stmt.array not in reported
            ):
                reported.add(stmt.array)
                group = arrays[stmt.array].alias_group
                others = sorted(
                    n for n in groups[group] if n != stmt.array
                )
                out.append(
                    _violation(
                        kernel,
                        CHECK_IR_ALIAS,
                        lines[id(stmt)],
                        f"{stmt.array} is written in a parallel region but "
                        f"shares alias group {group!r} with "
                        f"{', '.join(others)}: the emitted restrict "
                        "qualifiers would be unsound",
                    )
                )
    return out


def _check_ir_intent(kernel: Kernel, lines: dict[int, int]) -> list[Violation]:
    out: list[Violation] = []
    arrays = kernel.arrays()
    stored: set[str] = set()
    for stmt in walk_ir_stmts(kernel.body):
        if not isinstance(stmt, Store):
            continue
        param = arrays.get(stmt.array)
        if param is None:
            continue  # LocalArray target
        stored.add(param.name)
        if param.intent == "in":
            out.append(
                _violation(
                    kernel,
                    CHECK_IR_INTENT,
                    lines[id(stmt)],
                    f"store to intent(in) array {param.name}: the derived "
                    "map(to:) clause would lose the write",
                )
            )
    for param in arrays.values():
        if param.intent == "out" and param.name not in stored:
            out.append(
                _violation(
                    kernel,
                    CHECK_IR_INTENT,
                    1,
                    f"intent(out) array {param.name} is never stored: "
                    "map(from:) would copy back undefined data",
                    severity="warning",
                )
            )
    return out


def _check_ir_stack(
    kernel: Kernel, lines: dict[int, int], config: VerifierConfig
) -> list[Violation]:
    out: list[Violation] = []
    for nest in _parallel_nests(kernel):
        frame = 0
        first: LocalArray | None = None
        for stmt in walk_ir_stmts(nest.body):
            if isinstance(stmt, LocalArray):
                frame += stmt.size * _CTYPE_BYTES.get(stmt.ctype, 8)
                first = first or stmt
        if first is None or frame <= config.stack_bytes:
            continue
        resident = config.max_resident_threads * frame
        over_heap = resident > config.heap_bytes
        detail = (
            f"local arrays of the parallel nest over {nest.var!r} need "
            f"{frame} B/thread (stack budget {config.stack_bytes} B)"
        )
        if over_heap:
            detail += (
                f"; spilling {config.max_resident_threads} resident "
                f"threads needs {resident} B (heap budget "
                f"{config.heap_bytes} B)"
            )
        out.append(
            _violation(
                kernel,
                CHECK_IR_STACK,
                lines[id(first)],
                detail,
                severity="error" if over_heap else "warning",
            )
        )
    return out


def verify_kernel(
    kernel: Kernel, config: VerifierConfig | None = None
) -> list[Violation]:
    """All VFY006–VFY010 findings for one IR kernel, sorted."""
    config = config or VerifierConfig()
    lines = kernel.statement_lines()
    violations: list[Violation] = []
    violations.extend(_check_ir_races(kernel, lines))
    violations.extend(_check_ir_alias(kernel, lines))
    violations.extend(_check_ir_intent(kernel, lines))
    violations.extend(_check_ir_stack(kernel, lines, config))
    return sort_violations(violations)
