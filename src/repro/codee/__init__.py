"""A Codee-like static analyzer for a Fortran subset.

Reproduces the pieces of Codee's workflow the paper relies on
(Sec. V-A, VI-A):

* ``screening`` — an inventory of files/subroutines/loops and the
  optimization opportunities in them (`repro.codee.screening`),
* ``checks`` — Open-Catalog-style checkers (missing ``implicit none``,
  assumed-size arrays, missing intents, non-contiguous access, global
  state written inside parallelizable loops) (`repro.codee.checkers`),
* dependence analysis — the capability the paper actually used: proving
  the ``kernals_ks`` loops carry no cross-iteration dependencies and
  that the 20 collision arrays are fully overwritten (hence
  ``map(from:)``) (`repro.codee.dependence`),
* ``rewrite --offload omp`` — the autofix that inserts
  ``!$omp target teams distribute parallel do`` directives, emitting
  Listing 4 from Listing 3 (`repro.codee.rewrite`),
* ``verify`` — static validation of directives already in the source:
  data races, map-clause completeness/direction, ``collapse`` legality,
  device stack pressure, and ``enter/exit data`` pairing
  (`repro.codee.verifier`), with SARIF 2.1.0 output
  (`repro.codee.sarif`).

The front end handles the Fortran subset the FSBM sources use:
modules, subroutines/functions, declarations with attributes, ``do``
loops, ``if`` blocks, assignments, calls, and OpenMP sentinels.
"""

from repro.codee.lexer import tokenize, Token, TokenKind
from repro.codee.fparser import parse_source
from repro.codee.fast import (
    Module,
    Subroutine,
    DoLoop,
    Assignment,
    VarRef,
)
from repro.codee.dependence import analyze_loop, DependenceReport
from repro.codee.screening import screening_report, ScreeningReport
from repro.codee.checks import run_checks, Finding
from repro.codee.rewrite import offload_rewrite
from repro.codee.compile_commands import CompileCommand, load_compile_commands
from repro.codee.omp_directives import parse_omp_directive
from repro.codee.verifier import (
    VerifierConfig,
    Violation,
    sort_violations,
    verify_source,
    verify_text,
)
from repro.codee.sarif import to_sarif, validate_sarif

__all__ = [
    "tokenize",
    "Token",
    "TokenKind",
    "parse_source",
    "Module",
    "Subroutine",
    "DoLoop",
    "Assignment",
    "VarRef",
    "analyze_loop",
    "DependenceReport",
    "screening_report",
    "ScreeningReport",
    "run_checks",
    "Finding",
    "offload_rewrite",
    "CompileCommand",
    "load_compile_commands",
    "parse_omp_directive",
    "VerifierConfig",
    "Violation",
    "sort_violations",
    "verify_source",
    "verify_text",
    "to_sarif",
    "validate_sarif",
]
