"""``codee verify``: static race / mapping / collapse / stack validation.

`repro.codee.rewrite` can *generate* offload directives, but until now
nothing could *check* directives that already exist in a source file —
every hand-edited or pipeline-produced offload region was trusted
blindly. This pass closes that gap with five checkers over each
``!$omp target teams distribute parallel do`` region (and the
surrounding data-movement directives):

``VFY001`` **data-race detection**
    A variable written inside the region that is neither a loop
    iteration variable, nor in a ``private``/``firstprivate``/
    ``reduction`` clause, nor a recognized reduction pattern
    (``s = s + expr``) races between device threads. Array writes not
    indexed by every collapsed loop variable race the same way.
``VFY002`` **map-clause completeness and direction**
    Every array referenced in the region must be covered by a ``map``
    clause or by a live ``target enter data`` allocation (the
    ``temp_arrays`` lifecycle). ``map(from:)`` is only legal when the
    dependence analysis proves the array fully overwritten;
    ``map(to:)`` on a written array silently discards results.
``VFY003`` **collapse legality**
    ``collapse(n)`` must not exceed the perfect-nest depth, must not
    span non-rectangular loops (inner bounds depending on outer
    collapsed variables), and must not cross a loop-carried dependence
    (a collapsed variable read at an offset).
``VFY004`` **device stack pressure**
    Estimates the per-thread automatic-array frame of ``declare
    target`` routines called from the region and replays the NVHPC
    stack/heap admission rule statically: a frame that exceeds the
    per-thread stack budget spills to device heap for every resident
    thread, and a full collapse makes that demand exceed the heap —
    the paper's ``collapse(3)`` CUDA stack overflow as a static
    finding (Sec. VI-B).
``VFY005`` **enter/exit data pairing**
    Every ``target enter data`` allocation must have a matching
    ``target exit data`` release somewhere in the translation unit,
    and vice versa.

The checkers are deliberately conservative in the same spirit as
`repro.codee.dependence`: anything not provable is reported with an
actionable reason. Calls inside a region are opaque to the race and
map checkers (the stack checker resolves them for frame accounting);
verifying callee bodies interprocedurally is out of scope.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.codee.dependence import analyze_loop, collect_accesses
from repro.codee.fast import (
    Assignment,
    BinOp,
    CallStmt,
    Directive,
    DoLoop,
    Expr,
    Literal,
    Module,
    RangeExpr,
    SourceFile,
    Subroutine,
    UnaryOp,
    VarRef,
    walk_expr,
    walk_stmts,
)
from repro.codee.omp_directives import (
    DirectiveSyntaxError,
    SimdDirective,
    UnknownDirective,
    parse_omp_directive,
)
from repro.core.directives import (
    DeclareTarget,
    MapType,
    TargetEnterData,
    TargetExitData,
    TargetTeamsDistributeParallelDo,
)
from repro.core.env import OffloadEnv
from repro.hardware.specs import A100_40GB

#: Stable identifiers of the five Fortran-source verifier checks.
CHECK_RACE = "VFY001"
CHECK_MAP = "VFY002"
CHECK_COLLAPSE = "VFY003"
CHECK_STACK = "VFY004"
CHECK_PAIR = "VFY005"

#: Identifiers of the loop-IR verifier checks (`repro.codee.irverify`).
CHECK_IR_RACE = "VFY006"
CHECK_IR_ALIAS = "VFY007"
CHECK_IR_INTENT = "VFY008"
CHECK_IR_REDUCTION = "VFY009"
CHECK_IR_STACK = "VFY010"

#: check_id -> (title, one-line help) for reports and SARIF rules.
CHECK_RULES: dict[str, tuple[str, str]] = {
    CHECK_RACE: (
        "data race in offload region",
        "a variable written in a target region must be private, a "
        "reduction, or indexed by every collapsed loop variable",
    ),
    CHECK_MAP: (
        "incomplete or wrong-direction map clause",
        "every array referenced in a target region needs a map clause "
        "or a live 'target enter data' allocation; map(from:) requires "
        "a proven full overwrite",
    ),
    CHECK_COLLAPSE: (
        "illegal collapse",
        "collapse(n) must cover a rectangular perfect nest with no "
        "dependence carried by a collapsed loop",
    ),
    CHECK_STACK: (
        "device stack pressure",
        "automatic arrays of device routines called under a collapse "
        "must fit the per-thread stack or the device heap across all "
        "resident threads",
    ),
    CHECK_PAIR: (
        "unmatched target enter/exit data",
        "every 'target enter data' allocation needs a matching "
        "'target exit data' release in the translation unit",
    ),
    CHECK_IR_RACE: (
        "data race in IR parallel nest",
        "a store in a parallel IR nest must be indexed by every "
        "collapsed loop variable, and every mutated scalar must be "
        "declared inside the nest",
    ),
    CHECK_IR_ALIAS: (
        "aliasing under restrict in IR kernel",
        "array parameters sharing an alias group may refer to the "
        "same storage; writing one inside a parallel or simd region "
        "contradicts the emitted restrict qualifiers",
    ),
    CHECK_IR_INTENT: (
        "array intent violated in IR kernel",
        "a store to an intent(in) parameter, or an intent(out) "
        "parameter that is never stored, contradicts the declared "
        "dataflow the map clauses are derived from",
    ),
    CHECK_IR_REDUCTION: (
        "unannotated reduction in IR parallel nest",
        "an accumulation (+=/-=/scalar update) that is not indexed by "
        "the collapsed loop variables needs an explicit reduction "
        "annotation before it can run in parallel",
    ),
    CHECK_IR_STACK: (
        "IR local-array stack pressure",
        "per-iteration local arrays of a parallel IR nest must fit "
        "the per-thread stack budget, or the device heap across all "
        "resident threads",
    ),
}

#: Reduction-pattern operators recognized by the race checker.
_REDUCTION_BINOPS = {"+", "-", "*"}
_REDUCTION_INTRINSICS = {"min", "max"}


@dataclass(frozen=True, slots=True)
class Violation:
    """One verifier finding."""

    check_id: str
    title: str
    path: str
    line: int
    routine: str
    detail: str
    #: "error" blocks (nonzero exit / pipeline gate); "warning" reports.
    severity: str = "error"
    category: str = "correctness"

    def render(self) -> str:
        return (
            f"[{self.check_id}] {self.path}:{self.line} ({self.routine}): "
            f"{self.title} — {self.detail}"
        )

    def as_dict(self) -> dict:
        return {
            "check_id": self.check_id,
            "title": self.title,
            "path": self.path,
            "line": self.line,
            "routine": self.routine,
            "detail": self.detail,
            "severity": self.severity,
            "category": self.category,
        }


@dataclass(frozen=True, slots=True)
class VerifierConfig:
    """Budgets for the stack-pressure model (defaults: bare NVHPC env)."""

    #: Per-thread device stack budget (NV_ACC_CUDA_STACKSIZE).
    stack_bytes: int = OffloadEnv().stack_bytes
    #: Device heap budget for spilled frames (NV_ACC_CUDA_HEAPSIZE).
    heap_bytes: int = OffloadEnv().heap_bytes
    #: Trip count assumed for loops whose bounds are not compile-time
    #: constants (one WRF tile dimension is a reasonable scale).
    assumed_trip_count: int = 64
    #: Cap on concurrently resident device threads (A100: 108 SMs x
    #: 2048 threads).
    max_resident_threads: int = A100_40GB.num_sms * A100_40GB.max_threads_per_sm

    @classmethod
    def from_env(cls, env: OffloadEnv) -> "VerifierConfig":
        """Budgets from an offload environment (e.g. ``PAPER_ENV``)."""
        return cls(stack_bytes=env.stack_bytes, heap_bytes=env.heap_bytes)


@dataclass
class OffloadRegion:
    """One combined target construct attached to a loop nest."""

    loop: DoLoop
    directive: TargetTeamsDistributeParallelDo
    directive_line: int
    routine: Subroutine
    module: Module | None


@dataclass
class _Unit:
    """Everything the checkers need from one translation unit."""

    sf: SourceFile
    regions: list[OffloadRegion] = field(default_factory=list)
    enter_data: list[tuple[TargetEnterData, int, Subroutine]] = field(
        default_factory=list
    )
    exit_data: list[tuple[TargetExitData, int, Subroutine]] = field(
        default_factory=list
    )
    #: name (lower) -> routine, for call resolution.
    routines: dict[str, Subroutine] = field(default_factory=dict)
    #: lowercase names of declare-target routines.
    device_routines: set[str] = field(default_factory=set)
    #: integer parameter values visible at module scope.
    parameters: dict[str, int] = field(default_factory=dict)
    syntax_violations: list[Violation] = field(default_factory=list)


# --- expression evaluation (dims and trip counts) --------------------------


def _eval_int(expr: Expr | None, params: dict[str, int]) -> int | None:
    """Compile-time integer value of an expression, or None."""
    if expr is None:
        return None
    if isinstance(expr, Literal):
        try:
            return int(expr.value)
        except ValueError:
            return None
    if isinstance(expr, VarRef) and not expr.subscripts:
        return params.get(expr.lowered)
    if isinstance(expr, UnaryOp):
        v = _eval_int(expr.operand, params)
        if v is None:
            return None
        return -v if expr.op == "-" else v
    if isinstance(expr, BinOp):
        left = _eval_int(expr.left, params)
        right = _eval_int(expr.right, params)
        if left is None or right is None:
            return None
        if expr.op == "+":
            return left + right
        if expr.op == "-":
            return left - right
        if expr.op == "*":
            return left * right
        if expr.op == "/" and right != 0:
            return left // right
        return None
    return None


def _dim_extent(dim: Expr, params: dict[str, int]) -> int | None:
    """Element count along one declared dimension, if statically known."""
    if isinstance(dim, RangeExpr):
        lo = _eval_int(dim.lo, params)
        hi = _eval_int(dim.hi, params)
        if lo is None or hi is None:
            return None
        return max(0, hi - lo + 1)
    return _eval_int(dim, params)


_ELEM_BYTES = {"real": 4, "integer": 4, "logical": 4, "character": 1}


def _automatic_frame_bytes(routine: Subroutine, params: dict[str, int]) -> int:
    """Per-call bytes of automatic (non-pointer, non-dummy) local arrays."""
    dummies = {a.lower() for a in routine.args}
    total = 0
    for d in routine.decls:
        if d.is_pointer or d.is_parameter or "allocatable" in d.attrs:
            continue
        elem = _ELEM_BYTES.get(d.base_type, 4)
        for e in d.entities:
            if not e.dims or e.lowered in dummies:
                continue
            n = 1
            for dim in e.dims:
                extent = _dim_extent(dim, params)
                if extent is None:
                    n = 0  # unknown extent: skip conservatively
                    break
                n *= extent
            total += n * elem
    return total


def _trip_count(loop: DoLoop, params: dict[str, int], assumed: int) -> int:
    start = _eval_int(loop.start, params)
    stop = _eval_int(loop.stop, params)
    step = _eval_int(loop.step, params) if loop.step is not None else 1
    if start is None or stop is None or not step:
        return assumed
    return max(0, (stop - start) // step + 1)


# --- unit construction ------------------------------------------------------


def _gather_parameters(sf: SourceFile) -> dict[str, int]:
    params: dict[str, int] = {}
    decl_scopes = [m.decls for m in sf.modules]
    decl_scopes.extend(r.decls for r in sf.all_routines())
    for decls in decl_scopes:
        for d in decls:
            if not d.is_parameter:
                continue
            for e in d.entities:
                value = _eval_int(e.init, params)
                if value is not None:
                    params[e.lowered] = value
    return params


def _routine_directive_stmts(routine: Subroutine) -> list[Directive]:
    """Spec-part plus executable-part directives, in order."""
    out = list(routine.directives)
    for stmt in walk_stmts(routine.body):
        if isinstance(stmt, Directive):
            out.append(stmt)
        elif isinstance(stmt, DoLoop):
            out.extend(stmt.directives)
    return out


def _build_unit(sf: SourceFile) -> _Unit:
    unit = _Unit(sf=sf, parameters=_gather_parameters(sf))
    pairs: list[tuple[Module | None, Subroutine]] = [(None, r) for r in sf.routines]
    pairs.extend((m, r) for m in sf.modules for r in m.routines)
    for module, routine in pairs:
        unit.routines[routine.name.lower()] = routine
        for d in _routine_directive_stmts(routine):
            try:
                parsed = parse_omp_directive(d.text, d.line)
            except DirectiveSyntaxError as exc:
                unit.syntax_violations.append(
                    Violation(
                        check_id=CHECK_MAP,
                        title="unparseable !$omp directive",
                        path=sf.path,
                        line=d.line,
                        routine=routine.name,
                        detail=str(exc),
                    )
                )
                continue
            if isinstance(parsed, DeclareTarget):
                unit.device_routines.add(routine.name.lower())
            elif isinstance(parsed, TargetEnterData):
                unit.enter_data.append((parsed, d.line, routine))
            elif isinstance(parsed, TargetExitData):
                unit.exit_data.append((parsed, d.line, routine))
        for stmt in walk_stmts(routine.body):
            if not isinstance(stmt, DoLoop) or not stmt.directives:
                continue
            for d in stmt.directives:
                try:
                    parsed = parse_omp_directive(d.text, d.line)
                except DirectiveSyntaxError:
                    continue  # reported above
                if isinstance(parsed, TargetTeamsDistributeParallelDo):
                    unit.regions.append(
                        OffloadRegion(
                            loop=stmt,
                            directive=parsed,
                            directive_line=d.line or stmt.line,
                            routine=routine,
                            module=module,
                        )
                    )
                elif isinstance(parsed, (SimdDirective, UnknownDirective)):
                    pass  # inner simd / unmodeled sentinels are not errors
    return unit


# --- per-region helpers -----------------------------------------------------


def _known_arrays(region: OffloadRegion) -> set[str]:
    arrays: set[str] = set()
    scopes = [region.routine.decls]
    if region.module is not None:
        scopes.append(region.module.decls)
    for decls in scopes:
        for d in decls:
            for e in d.entities:
                if e.dims:
                    arrays.add(e.lowered)
    return arrays


def _collapsed_vars(region: OffloadRegion) -> list[str]:
    nest = [v.lower() for v in region.loop.nest_vars()]
    return nest[: min(region.directive.collapse, len(nest))]


def _all_loop_vars(loop: DoLoop) -> set[str]:
    out = {loop.var.lower()}
    for stmt in walk_stmts(loop.body):
        if isinstance(stmt, DoLoop):
            out.add(stmt.var.lower())
    return out


def _scalar_assignments(loop: DoLoop) -> dict[str, list[Assignment]]:
    """All assignments to unsubscripted variables in the nest body."""
    out: dict[str, list[Assignment]] = {}
    for stmt in walk_stmts(loop.body):
        if isinstance(stmt, Assignment) and not stmt.target.subscripts:
            out.setdefault(stmt.target.lowered, []).append(stmt)
    return out


def _is_reduction_update(stmt: Assignment) -> bool:
    """``s = s + expr`` / ``s = expr * s`` / ``s = min(s, expr)``."""
    name = stmt.target.lowered
    value = stmt.value
    if isinstance(value, BinOp) and value.op in _REDUCTION_BINOPS:
        for side in (value.left, value.right):
            if isinstance(side, VarRef) and not side.subscripts and side.lowered == name:
                return True
        return False
    if (
        isinstance(value, VarRef)
        and value.lowered in _REDUCTION_INTRINSICS
        and value.subscripts
    ):
        return any(
            isinstance(a, VarRef) and not a.subscripts and a.lowered == name
            for a in value.subscripts
        )
    return False


def _clause_names(region: OffloadRegion) -> set[str]:
    d = region.directive
    names = {n.lower() for n in d.private}
    names.update(n.lower() for n in d.firstprivate)
    for red in d.reductions:
        names.update(n.lower() for n in red.names)
    return names


def _subscript_has_offset(sub: Expr, var: str) -> bool:
    """``var`` appears in the subscript but not as a plain index."""
    if isinstance(sub, VarRef) and not sub.subscripts and sub.lowered == var:
        return False
    return any(
        isinstance(node, VarRef) and not node.subscripts and node.lowered == var
        for node in walk_expr(sub)
    )


# --- the five checkers ------------------------------------------------------


def _check_races(unit: _Unit, region: OffloadRegion) -> list[Violation]:
    out: list[Violation] = []
    sf = unit.sf
    loop_vars = _all_loop_vars(region.loop)
    clause_private = _clause_names(region)
    collapsed = _collapsed_vars(region)

    for name, stmts in sorted(_scalar_assignments(region.loop).items()):
        if name in loop_vars or name in clause_private:
            continue
        if all(_is_reduction_update(s) for s in stmts):
            continue  # recognized reduction pattern
        out.append(
            Violation(
                check_id=CHECK_RACE,
                title=CHECK_RULES[CHECK_RACE][0],
                path=sf.path,
                line=stmts[0].line or region.loop.line,
                routine=region.routine.name,
                detail=f"scalar {name} is written by every device thread "
                "but is neither private, firstprivate, a reduction, nor a "
                "loop variable — add it to a private clause",
            )
        )

    accesses, _, _, _ = collect_accesses(region.loop, _known_arrays(region))
    reported: set[str] = set()
    for acc in accesses:
        if not acc.is_write or acc.name in reported:
            continue
        if acc.name in clause_private:
            continue  # privatized or reduced arrays are per-thread
        missing = [
            v
            for v in collapsed
            if not any(
                isinstance(s, VarRef) and not s.subscripts and s.lowered == v
                for s in acc.subscripts
            )
        ]
        if missing:
            reported.add(acc.name)
            out.append(
                Violation(
                    check_id=CHECK_RACE,
                    title=CHECK_RULES[CHECK_RACE][0],
                    path=sf.path,
                    line=acc.line or region.loop.line,
                    routine=region.routine.name,
                    detail=f"array {acc.name} is written without indexing "
                    f"by collapsed loop variable(s) {', '.join(missing)}: "
                    "different device threads write the same element",
                )
            )
    return out


def _check_maps(unit: _Unit, region: OffloadRegion) -> list[Violation]:
    out: list[Violation] = []
    sf = unit.sf
    directive = region.directive
    accesses, _, _, _ = collect_accesses(region.loop, _known_arrays(region))
    referenced = sorted({a.name for a in accesses})
    written = {a.name for a in accesses if a.is_write}

    mapped: set[str] = set()
    for m in directive.maps:
        mapped.update(n.lower() for n in m.names)
    device_resident: set[str] = set()
    for enter, _, _ in unit.enter_data:
        for m in enter.maps:
            if m.map_type in (MapType.ALLOC, MapType.TO, MapType.TOFROM):
                device_resident.update(n.lower() for n in m.names)

    for name in referenced:
        if name in mapped or name in device_resident:
            continue
        out.append(
            Violation(
                check_id=CHECK_MAP,
                title=CHECK_RULES[CHECK_MAP][0],
                path=sf.path,
                line=region.directive_line,
                routine=region.routine.name,
                detail=f"array {name} is referenced in the target region "
                "but has no map clause and no live 'target enter data' "
                "allocation",
            )
        )

    # Direction checks need the full-overwrite proof from the
    # dependence analysis (the paper's map(from:) derivation, Sec. VI-A).
    report = analyze_loop(region.loop, region.routine, region.module)
    proven_overwritten = set(report.write_only_arrays)
    for m in directive.maps:
        for raw in m.names:
            name = raw.lower()
            if m.map_type is MapType.FROM and name not in proven_overwritten:
                out.append(
                    Violation(
                        check_id=CHECK_MAP,
                        title=CHECK_RULES[CHECK_MAP][0],
                        path=sf.path,
                        line=region.directive_line,
                        routine=region.routine.name,
                        detail=f"map(from: {raw}) but the dependence "
                        "analysis cannot prove the region fully overwrites "
                        "it — stale device data would reach the host; use "
                        "map(tofrom:)",
                    )
                )
            elif m.map_type is MapType.TO and name in written:
                out.append(
                    Violation(
                        check_id=CHECK_MAP,
                        title=CHECK_RULES[CHECK_MAP][0],
                        path=sf.path,
                        line=region.directive_line,
                        routine=region.routine.name,
                        detail=f"map(to: {raw}) but the region writes it — "
                        "results are discarded on region exit; use "
                        "map(tofrom:) or map(from:)",
                    )
                )
    return out


def _check_collapse(unit: _Unit, region: OffloadRegion) -> list[Violation]:
    out: list[Violation] = []
    sf = unit.sf
    n = region.directive.collapse
    if n <= 1:
        return out
    depth = region.loop.nest_depth()
    if n > depth:
        out.append(
            Violation(
                check_id=CHECK_COLLAPSE,
                title=CHECK_RULES[CHECK_COLLAPSE][0],
                path=sf.path,
                line=region.directive_line,
                routine=region.routine.name,
                detail=f"collapse({n}) exceeds the perfect-nest depth "
                f"({depth}) at this loop",
            )
        )
        return out

    # Rectangularity: bounds of collapsed levels 2..n must not depend on
    # outer collapsed variables.
    collapsed = _collapsed_vars(region)
    loops = [region.loop]
    for _ in range(n - 1):
        body = [s for s in loops[-1].body if not isinstance(s, Directive)]
        loops.append(body[0])
    for level, inner in enumerate(loops[1:], start=1):
        outer_vars = set(collapsed[:level])
        bound_vars: set[str] = set()
        for expr in (inner.start, inner.stop, inner.step):
            if expr is None:
                continue
            for node in walk_expr(expr):
                if isinstance(node, VarRef) and not node.subscripts:
                    bound_vars.add(node.lowered)
        offenders = sorted(bound_vars & outer_vars)
        if offenders:
            out.append(
                Violation(
                    check_id=CHECK_COLLAPSE,
                    title=CHECK_RULES[CHECK_COLLAPSE][0],
                    path=sf.path,
                    line=inner.line,
                    routine=region.routine.name,
                    detail=f"collapse({n}) spans a non-rectangular nest: "
                    f"bounds of loop over {inner.var} depend on outer "
                    f"collapsed variable(s) {', '.join(offenders)}",
                )
            )

    # Carried dependence: a collapsed variable read at an offset on an
    # array the region also writes.
    accesses, _, _, _ = collect_accesses(region.loop, _known_arrays(region))
    written = {a.name for a in accesses if a.is_write}
    seen: set[tuple[str, str]] = set()
    for acc in accesses:
        if acc.is_write or acc.name not in written:
            continue
        for v in collapsed:
            if (acc.name, v) in seen:
                continue
            if any(_subscript_has_offset(s, v) for s in acc.subscripts):
                seen.add((acc.name, v))
                out.append(
                    Violation(
                        check_id=CHECK_COLLAPSE,
                        title=CHECK_RULES[CHECK_COLLAPSE][0],
                        path=sf.path,
                        line=acc.line or region.loop.line,
                        routine=region.routine.name,
                        detail=f"collapse({n}) crosses a loop-carried "
                        f"dependence: {acc.name} is read with collapsed "
                        f"variable {v} at an offset",
                    )
                )
    return out


def _region_frame_bytes(unit: _Unit, region: OffloadRegion) -> tuple[int, list[str]]:
    """Automatic-array bytes of device routines reachable from the region."""
    called: list[str] = []
    for stmt in walk_stmts(region.loop.body):
        if isinstance(stmt, CallStmt):
            called.append(stmt.name.lower())
    frame = 0
    contributors: list[str] = []
    visited: set[str] = set()
    queue = list(dict.fromkeys(called))
    while queue:
        name = queue.pop(0)
        if name in visited:
            continue
        visited.add(name)
        callee = unit.routines.get(name)
        if callee is None:
            continue
        bytes_here = _automatic_frame_bytes(callee, unit.parameters)
        if bytes_here:
            frame += bytes_here
            contributors.append(callee.name)
        for stmt in walk_stmts(callee.body):
            if isinstance(stmt, CallStmt):
                queue.append(stmt.name.lower())
    return frame, contributors


def _check_stack(
    unit: _Unit, region: OffloadRegion, config: VerifierConfig
) -> list[Violation]:
    frame, contributors = _region_frame_bytes(unit, region)
    if frame == 0 or frame <= config.stack_bytes:
        return []
    # Frame spills to device heap for every resident thread — replay the
    # engine's admission rule with a static thread estimate.
    parallel_iters = 1
    loops = [region.loop]
    for _ in range(min(region.directive.collapse, region.loop.nest_depth()) - 1):
        body = [s for s in loops[-1].body if not isinstance(s, Directive)]
        loops.append(body[0])
    for lp in loops:
        parallel_iters *= _trip_count(
            lp, unit.parameters, config.assumed_trip_count
        )
    resident = min(parallel_iters, config.max_resident_threads)
    demand = resident * frame
    if demand <= config.heap_bytes:
        return []
    return [
        Violation(
            check_id=CHECK_STACK,
            title=CHECK_RULES[CHECK_STACK][0],
            path=unit.sf.path,
            line=region.directive_line,
            routine=region.routine.name,
            detail=(
                f"per-thread frame of {frame} B of automatic arrays "
                f"(in {', '.join(contributors)}) exceeds the "
                f"{config.stack_bytes} B stack budget, and "
                f"collapse({region.directive.collapse}) makes ~{resident} "
                f"resident threads demand {demand / 2**20:.1f} MiB of "
                f"device heap (budget {config.heap_bytes / 2**20:.0f} MiB) "
                "— raise NV_ACC_CUDA_STACKSIZE, reduce the collapse "
                "level, or replace the automatic arrays with preallocated "
                "module arrays (Listing 8)"
            ),
        )
    ]


def _check_pairing(unit: _Unit) -> list[Violation]:
    out: list[Violation] = []
    entered: dict[str, tuple[int, Subroutine]] = {}
    released: set[str] = set()
    for enter, line, routine in unit.enter_data:
        for m in enter.maps:
            for raw in m.names:
                entered.setdefault(raw.lower(), (line, routine))
    for exit_, line, routine in unit.exit_data:
        for m in exit_.maps:
            for raw in m.names:
                name = raw.lower()
                released.add(name)
                if name not in entered:
                    out.append(
                        Violation(
                            check_id=CHECK_PAIR,
                            title=CHECK_RULES[CHECK_PAIR][0],
                            path=unit.sf.path,
                            line=line,
                            routine=routine.name,
                            detail=f"'target exit data' releases {raw} but "
                            "no 'target enter data' in this translation "
                            "unit allocates it",
                        )
                    )
    for name, (line, routine) in entered.items():
        if name not in released:
            out.append(
                Violation(
                    check_id=CHECK_PAIR,
                    title=CHECK_RULES[CHECK_PAIR][0],
                    path=unit.sf.path,
                    line=line,
                    routine=routine.name,
                    detail=f"'target enter data' allocates {name} but no "
                    "'target exit data' in this translation unit releases "
                    "it — device memory leaks across the model run",
                )
            )
    return out


# --- entry points -----------------------------------------------------------


def sort_violations(violations: list[Violation]) -> list[Violation]:
    """Deterministic report order: (path, line, check_id, detail)."""
    return sorted(
        violations, key=lambda v: (v.path, v.line, v.check_id, v.detail)
    )


def verify_source(
    sf: SourceFile, config: VerifierConfig | None = None
) -> list[Violation]:
    """Run all five checkers over one parsed translation unit."""
    config = config or VerifierConfig()
    unit = _build_unit(sf)
    violations: list[Violation] = list(unit.syntax_violations)
    for region in unit.regions:
        violations.extend(_check_races(unit, region))
        violations.extend(_check_maps(unit, region))
        violations.extend(_check_collapse(unit, region))
        violations.extend(_check_stack(unit, region, config))
    violations.extend(_check_pairing(unit))
    return sort_violations(violations)


def verify_text(
    text: str, path: str = "<memory>", config: VerifierConfig | None = None
) -> list[Violation]:
    """Parse Fortran text and verify it."""
    from repro.codee.fparser import parse_source

    return verify_source(parse_source(text, path), config)


def has_errors(violations: list[Violation]) -> bool:
    """True when any violation blocks (correctness at error severity)."""
    return any(
        v.severity == "error" and v.category == "correctness"
        for v in violations
    )


def format_verify_report(violations: list[Violation]) -> str:
    """The ``codee verify`` textual report."""
    if not violations:
        return "codee verify: clean (no violations)"
    lines = [f"codee verify: {len(violations)} violation(s)"]
    lines.extend(v.render() for v in sort_violations(violations))
    by_check: dict[str, int] = {}
    for v in violations:
        by_check[v.check_id] = by_check.get(v.check_id, 0) + 1
    lines.append(
        "summary: "
        + ", ".join(f"{n} {cid}" for cid, n in sorted(by_check.items()))
    )
    return "\n".join(lines)
