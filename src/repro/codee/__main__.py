"""``python -m repro.codee`` entry point (Listing 2 workflow)."""

from repro.codee.cli import main

raise SystemExit(main())
