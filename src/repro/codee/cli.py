"""Command-line front end mirroring Listing 2 of the paper.

::

    python -m repro.codee screening --config compile_commands.json
    python -m repro.codee checks --config compile_commands.json
    python -m repro.codee checks file.f90
    python -m repro.codee rewrite --offload omp --in-place file.f90:LINE:COL
    python -m repro.codee verify file.f90 --format sarif
    python -m repro.codee verify --all

The ``rewrite`` target syntax (``file:line:col``) matches Codee's; the
column is accepted and ignored (our loop locator works per line).

Exit-code contract (CI gates key off it):

* ``0`` — clean, or only advisory findings (modernization/optimization
  for ``checks``; warnings for ``verify``);
* ``1`` — usage, I/O, or Fortran parse error;
* ``2`` — correctness findings/violations present.
"""

from __future__ import annotations

import argparse
import json as _json
import sys
from pathlib import Path

from repro.codee.checks import format_checks_report, run_checks
from repro.codee.compile_commands import fortran_units, load_compile_commands
from repro.codee.fparser import parse_source
from repro.codee.rewrite import offload_rewrite
from repro.codee.screening import screening_report
from repro.errors import (
    CodeeError,
    ConfigurationError,
    FortranSyntaxError,
    RewriteError,
)


def _gather_sources(args: argparse.Namespace) -> dict[str, str]:
    """Collect {path: text} from --config and/or positional files."""
    sources: dict[str, str] = {}
    if args.config:
        for unit in fortran_units(load_compile_commands(args.config)):
            path = unit.resolved_path()
            if path.exists():
                sources[str(path)] = path.read_text()
    for name in getattr(args, "files", []) or []:
        sources[name] = Path(name).read_text()
    if not sources:
        raise CodeeError(
            "no Fortran sources found (pass files or --config with "
            "entries whose paths exist)"
        )
    return sources


def cmd_screening(args: argparse.Namespace) -> int:
    report = screening_report(_gather_sources(args))
    print(report.format_table())
    return 0


def cmd_checks(args: argparse.Namespace) -> int:
    findings = []
    for path, text in sorted(_gather_sources(args).items()):
        findings.extend(run_checks(parse_source(text, path)))
    findings.sort(key=lambda f: (f.path, f.line, f.check_id))
    print(format_checks_report(findings))
    # Exit-code contract: only correctness findings gate CI; advisory
    # modernization/optimization findings still print but exit 0.
    return 2 if any(f.category == "correctness" for f in findings) else 0


def cmd_verify(args: argparse.Namespace) -> int:
    from repro.codee import irverify, loopir
    from repro.codee import sources as embedded
    from repro.codee.sarif import to_sarif
    from repro.codee.verifier import (
        VerifierConfig,
        format_verify_report,
        has_errors,
        sort_violations,
        verify_text,
    )
    from repro.core.env import parse_size

    texts: dict[str, str] = {}
    ir_names: list[str] = list(args.ir or [])
    if args.all:
        texts.update(embedded.embedded_sources())
        # Also verify the directive-bearing source our own rewriter
        # emits (the paper's Listing 4), so --all exercises a real
        # offload region, not just directive-free inputs.
        loop_line = (
            parse_source(embedded.KERNALS_KS_SOURCE)
            .modules[0]
            .routines[0]
            .loops()[0]
            .line
        )
        texts["kernals_ks_offloaded.f90"] = offload_rewrite(
            embedded.KERNALS_KS_SOURCE, line=loop_line
        ).source
        # ... and every registered IR kernel the lint gate covers, as
        # transformed (the same kernels the production modules compile).
        ir_names.extend(
            name for name in sorted(loopir.gate_kernels()) if name not in ir_names
        )
    if args.files or args.config:
        texts.update(_gather_sources(args))
    if not texts and not ir_names:
        raise CodeeError("verify needs files, --config, --ir, or --all")

    config = VerifierConfig(
        stack_bytes=parse_size(args.stack_budget),
        heap_bytes=parse_size(args.heap_budget),
    )
    violations = []
    for path, text in sorted(texts.items()):
        violations.extend(verify_text(text, path, config))
    registry = loopir.registered_kernels() if ir_names else {}
    for name in ir_names:
        spec = registry.get(name)
        if spec is None:
            raise CodeeError(
                f"unknown IR kernel {name!r} (known: "
                f"{', '.join(sorted(registry)) or 'none'})"
            )
        violations.extend(irverify.verify_kernel(spec.final_kernel(), config))
    violations = sort_violations(violations)

    if args.format == "json":
        print(_json.dumps([v.as_dict() for v in violations], indent=2))
    elif args.format == "sarif":
        print(_json.dumps(to_sarif(violations), indent=2))
    else:
        print(format_verify_report(violations))
    return 2 if has_errors(violations) else 0


def cmd_transform(args: argparse.Namespace) -> int:
    from repro.codee import cgen, loopir

    registry = loopir.registered_kernels()
    if args.list:
        for name in sorted(registry):
            spec = registry[name]
            tag = "" if spec.gate else "  [fixture, not gated]"
            print(f"{name}{tag}")
        return 0
    names = args.kernels or sorted(
        name for name, spec in registry.items() if spec.gate
    )
    for name in names:
        spec = registry.get(name)
        if spec is None:
            raise CodeeError(
                f"unknown IR kernel {name!r} (known: "
                f"{', '.join(sorted(registry))})"
            )
        plan = spec.plan()
        if plan is None:
            print(f"kernel {name!r} is fixed (no transformation policy)")
            kernel = spec.build()
        else:
            print(plan.summary())
            kernel = plan.kernel
        if args.emit:
            print()
            print(cgen.emit_kernel(kernel))
            print()
    return 0


def cmd_rewrite(args: argparse.Namespace) -> int:
    parts = args.target.split(":")
    if len(parts) not in (2, 3):
        raise CodeeError("rewrite target must be file:line[:col]")
    path = Path(parts[0])
    line = int(parts[1])
    if args.offload != "omp":
        raise CodeeError(f"unsupported offload model {args.offload!r}")
    result = offload_rewrite(path.read_text(), line=line, path=str(path))
    if args.in_place:
        path.write_text(result.source)
        print(f"{path}: loop at line {result.loop_line} annotated in place")
    else:
        print(result.source)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="codee",
        description="Codee-workflow reproduction (screening/checks/rewrite)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_scr = sub.add_parser("screening", help="rank files by opportunity")
    p_scr.add_argument("files", nargs="*", help="Fortran source files")
    p_scr.add_argument("--config", help="compile_commands.json from bear")
    p_scr.set_defaults(func=cmd_screening)

    p_chk = sub.add_parser(
        "checks",
        help="run the Open-Catalog checkers",
        description="Run the Open-Catalog checkers. Exit codes: 0 = no "
        "correctness findings (advisory modernization/optimization "
        "findings may still print), 1 = usage or parse error, 2 = "
        "correctness findings present (CI gate).",
    )
    p_chk.add_argument("files", nargs="*", help="Fortran source files")
    p_chk.add_argument("--config", help="compile_commands.json from bear")
    p_chk.set_defaults(func=cmd_checks)

    p_ver = sub.add_parser(
        "verify",
        help="statically verify existing OpenMP offload directives",
        description="Race/mapping/collapse/stack/pairing validation of "
        "!$omp offload regions already present in the source. Exit "
        "codes: 0 = clean (or warnings only), 1 = usage or parse error, "
        "2 = correctness violations present (CI gate).",
    )
    p_ver.add_argument("files", nargs="*", help="Fortran source files")
    p_ver.add_argument("--config", help="compile_commands.json from bear")
    p_ver.add_argument(
        "--all",
        action="store_true",
        help="verify every embedded FSBM source and registered IR "
        "kernel (the repo lint gate)",
    )
    p_ver.add_argument(
        "--ir",
        action="append",
        metavar="NAME",
        help="verify a registered loop-IR kernel (VFY006+; repeatable)",
    )
    p_ver.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="report format (sarif = SARIF 2.1.0)",
    )
    p_ver.add_argument(
        "--stack-budget",
        default="1024",
        help="per-thread device stack budget (NV_ACC_CUDA_STACKSIZE, "
        "accepts 64KB-style sizes)",
    )
    p_ver.add_argument(
        "--heap-budget",
        default="32MB",
        help="device heap budget for spilled frames (NV_ACC_CUDA_HEAPSIZE)",
    )
    p_ver.set_defaults(func=cmd_verify)

    p_tr = sub.add_parser(
        "transform",
        help="derive offload transformations for registered IR kernels",
        description="Run the dependence-driven transformation engine on "
        "registered loop-IR kernels and print the per-pass derivation "
        "(and, with --emit, the generated C).",
    )
    p_tr.add_argument(
        "kernels", nargs="*", help="kernel names (default: all gated kernels)"
    )
    p_tr.add_argument(
        "--list", action="store_true", help="list registered IR kernels"
    )
    p_tr.add_argument(
        "--emit", action="store_true", help="also print the generated C"
    )
    p_tr.set_defaults(func=cmd_transform)

    p_rw = sub.add_parser("rewrite", help="insert OpenMP offload directives")
    p_rw.add_argument("target", help="file.f90:line[:col] of the loop")
    p_rw.add_argument("--offload", default="omp", help="offload model (omp)")
    p_rw.add_argument(
        "--in-place", action="store_true", help="modify the file in place"
    )
    p_rw.add_argument("--config", help="compile_commands.json (accepted)")
    p_rw.set_defaults(func=cmd_rewrite)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    try:
        args = parser.parse_args(argv)
    except SystemExit as exc:
        # argparse exits 2 on usage errors; our contract reserves 2 for
        # correctness findings, so remap CLI misuse to 1 (--help stays 0).
        return 1 if exc.code else 0
    try:
        return args.func(args)
    except (
        CodeeError,
        ConfigurationError,
        FortranSyntaxError,
        RewriteError,
        OSError,
    ) as exc:
        print(f"codee: error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover - exercised via main()
    raise SystemExit(main())
