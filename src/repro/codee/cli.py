"""Command-line front end mirroring Listing 2 of the paper.

::

    python -m repro.codee screening --config compile_commands.json
    python -m repro.codee checks --config compile_commands.json
    python -m repro.codee checks file.f90
    python -m repro.codee rewrite --offload omp --in-place file.f90:LINE:COL

The ``rewrite`` target syntax (``file:line:col``) matches Codee's; the
column is accepted and ignored (our loop locator works per line).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.codee.checks import format_checks_report, run_checks
from repro.codee.compile_commands import fortran_units, load_compile_commands
from repro.codee.fparser import parse_source
from repro.codee.rewrite import offload_rewrite
from repro.codee.screening import screening_report
from repro.errors import CodeeError, FortranSyntaxError, RewriteError


def _gather_sources(args: argparse.Namespace) -> dict[str, str]:
    """Collect {path: text} from --config and/or positional files."""
    sources: dict[str, str] = {}
    if args.config:
        for unit in fortran_units(load_compile_commands(args.config)):
            path = unit.resolved_path()
            if path.exists():
                sources[str(path)] = path.read_text()
    for name in getattr(args, "files", []) or []:
        sources[name] = Path(name).read_text()
    if not sources:
        raise CodeeError(
            "no Fortran sources found (pass files or --config with "
            "entries whose paths exist)"
        )
    return sources


def cmd_screening(args: argparse.Namespace) -> int:
    report = screening_report(_gather_sources(args))
    print(report.format_table())
    return 0


def cmd_checks(args: argparse.Namespace) -> int:
    findings = []
    for path, text in sorted(_gather_sources(args).items()):
        findings.extend(run_checks(parse_source(text, path)))
    print(format_checks_report(findings))
    return 0 if not findings else 2


def cmd_rewrite(args: argparse.Namespace) -> int:
    parts = args.target.split(":")
    if len(parts) not in (2, 3):
        raise CodeeError("rewrite target must be file:line[:col]")
    path = Path(parts[0])
    line = int(parts[1])
    if args.offload != "omp":
        raise CodeeError(f"unsupported offload model {args.offload!r}")
    result = offload_rewrite(path.read_text(), line=line, path=str(path))
    if args.in_place:
        path.write_text(result.source)
        print(f"{path}: loop at line {result.loop_line} annotated in place")
    else:
        print(result.source)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="codee",
        description="Codee-workflow reproduction (screening/checks/rewrite)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_scr = sub.add_parser("screening", help="rank files by opportunity")
    p_scr.add_argument("files", nargs="*", help="Fortran source files")
    p_scr.add_argument("--config", help="compile_commands.json from bear")
    p_scr.set_defaults(func=cmd_screening)

    p_chk = sub.add_parser("checks", help="run the Open-Catalog checkers")
    p_chk.add_argument("files", nargs="*", help="Fortran source files")
    p_chk.add_argument("--config", help="compile_commands.json from bear")
    p_chk.set_defaults(func=cmd_checks)

    p_rw = sub.add_parser("rewrite", help="insert OpenMP offload directives")
    p_rw.add_argument("target", help="file.f90:line[:col] of the loop")
    p_rw.add_argument("--offload", default="omp", help="offload model (omp)")
    p_rw.add_argument(
        "--in-place", action="store_true", help="modify the file in place"
    )
    p_rw.add_argument("--config", help="compile_commands.json (accepted)")
    p_rw.set_defaults(func=cmd_rewrite)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except (CodeeError, FortranSyntaxError, RewriteError, OSError) as exc:
        print(f"codee: error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover - exercised via main()
    raise SystemExit(main())
