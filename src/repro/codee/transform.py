"""Dependence-driven transformation passes over the loop IR.

The paper's optimization sequence (`repro.optim.stages`) is a set of
*mechanical consequences* of dependence analysis: fission the
parallelizable work out of a serial driver, ``collapse`` as many
provably independent loops as the locality budget allows, hoist
automatic arrays into preallocated buffers, vectorize the innermost
loop. This module reproduces that derivation for IR kernels: every
pass asks :func:`analyze_nest` (the IR counterpart of
`repro.codee.dependence.analyze_loop`, same report shape) before
touching an annotation, and anything unprovable is refused with the
analysis' reasons rather than applied optimistically.

Pass → stage correspondence (the `repro.optim.stages` names):

==========================  =============================================
pass                        stage whose transformation it mechanizes
==========================  =============================================
``normalize``               ``baseline`` (canonical 0-based loops)
``fission``                 ``offload_collapse2`` (Listing 6's split)
``collapse``                ``offload_collapse2`` / ``offload_collapse3``
``hoist_automatic_arrays``  ``offload_collapse3`` (Listing 8 temp_arrays)
``simd_innermost``          ``offload_collapse2`` (inner ``!$omp simd``)
==========================  =============================================

:func:`plan_offload` drives the sequence under a
:class:`TransformPolicy` and returns a :class:`TransformPlan` whose
annotated kernel is what `repro.codee.cgen` emits. The derivations are
honest about the production kernels: the transport stencil comes out
``parallel for collapse(2)`` + inner ``simd`` (the innermost spatial
loop stays serial per thread for neighbor-row locality, the paper's
collapse(2) stage), while the sedimentation sweep is *refused* a
parallel annotation — its ``k``-carried flux recurrence and the
``active``/``precip`` accumulations are exactly what the analysis is
for — and the KO-remap's depth-1 nest falls under the launch-overhead
floor, so both stay serial like their hand-written predecessors.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.codee.loopir import (
    ArrayParam,
    Assign,
    Bin,
    Const,
    Decl,
    Expr,
    If,
    Kernel,
    Let,
    Load,
    LocalArray,
    Loop,
    Select,
    Stmt,
    Store,
    Sym,
    Un,
    expr_loads,
    expr_syms,
    stmt_exprs,
    subst,
    walk_ir,
    walk_ir_stmts,
)
from repro.errors import TransformError
from repro.optim.stages import Stage

#: Accumulation operators the reduction recognizer accepts.
_REDUCTION_OPS = {"+": "+", "-": "+", "*": "*"}


@dataclass
class NestReport:
    """Dependence analysis of one IR loop nest.

    Field names mirror `repro.codee.dependence.DependenceReport` so
    consumers of either report read the same way; ``parallel_depth``
    is the IR addition: how many leading perfect-nest loops are
    provably independent (the legal ``collapse`` ceiling).
    """

    nest: Loop
    parallelizable: bool
    #: Leading chain loops with no carried dependence (0 = serial).
    parallel_depth: int
    private_scalars: tuple[str, ...]
    #: Stack-local arrays private to each iteration (automatic arrays).
    private_arrays: tuple[str, ...]
    write_only_arrays: tuple[str, ...]
    readwrite_arrays: tuple[str, ...]
    read_only_arrays: tuple[str, ...]
    #: Recognized (op, name) accumulation patterns (reduction clause
    #: candidates; they still block until annotated).
    reductions: tuple[tuple[str, str], ...]
    reasons: tuple[str, ...]
    #: Per-iteration stack bytes of the nest's local arrays.
    local_stack_bytes: int = 0


@dataclass
class PassResult:
    """Outcome of one transformation pass."""

    name: str
    #: `repro.optim.stages.Stage` value this pass mechanizes.
    stage: str
    applied: bool
    detail: str

    def render(self) -> str:
        mark = "applied" if self.applied else "skipped"
        return f"{self.name:<24} [{self.stage:<17}] {mark}: {self.detail}"


@dataclass(frozen=True)
class TransformPolicy:
    """Tunables of the offload derivation (not of its legality).

    The policy can only *restrict* what the analysis allows — request
    a deeper collapse than the dependence analysis proves legal and
    :func:`collapse_nest` raises :class:`~repro.errors.TransformError`
    instead of complying.
    """

    #: Consider parallel annotations at all (False = serial codegen).
    parallel: bool = True
    #: Innermost chain loops kept serial per thread (locality: the
    #: transport stencil's neighbor rows stay cache-resident when the
    #: trailing spatial loop is not collapsed).
    keep_serial_inner: int = 1
    #: Explicit collapse request (None = derive from the analysis).
    collapse: int | None = None
    #: Nests shallower than this stay serial — the parallel-region
    #: overhead floor (a depth-1 scatter loop is not worth a fork).
    min_parallel_depth: int = 2
    #: Vectorize provably independent innermost loops of parallel nests.
    simd: bool = True
    #: Attempt loop fission on multi-statement nest bodies.
    fission: bool = True
    schedule: str = "static"


@dataclass
class TransformPlan:
    """The annotated kernel plus the per-pass derivation record."""

    kernel: Kernel
    policy: TransformPolicy
    passes: list[PassResult] = field(default_factory=list)
    #: Top-level nest variable -> its dependence report.
    reports: dict[str, NestReport] = field(default_factory=dict)

    def summary(self) -> str:
        lines = [f"transform plan for kernel {self.kernel.name!r}:"]
        lines.extend("  " + p.render() for p in self.passes)
        for var, rep in self.reports.items():
            verdict = (
                f"parallel depth {rep.parallel_depth}"
                if rep.parallel_depth
                else "serial (dependence-bound)"
            )
            lines.append(f"  nest over {var!r}: {verdict}")
            lines.extend(f"    - {r}" for r in rep.reasons)
        return "\n".join(lines)


# --- analysis ---------------------------------------------------------------


def _let_bindings(stmts: list[Stmt]) -> dict[str, Expr]:
    """Single-assignment temporaries defined anywhere under ``stmts``."""
    return {
        s.name: s.value for s in walk_ir_stmts(stmts) if isinstance(s, Let)
    }


def _resolve(expr: Expr, lets: dict[str, Expr], depth: int = 8) -> Expr:
    """Expression with Let temporaries substituted (bounded depth).

    Subscripts like ``s[im]`` hide their loop-variable offsets behind
    ``Let im = i > 0 ? i - 1 : i``; the dependence tests must see
    through that or they would treat the offset as independent.
    """
    if depth <= 0:
        return expr
    names = expr_syms(expr) & set(lets)
    if not names:
        return expr
    return _resolve(
        subst(expr, {n: lets[n] for n in names}), lets, depth - 1
    )


def _is_plain(index_elem: Expr, var: str) -> bool:
    return isinstance(index_elem, Sym) and index_elem.name == var


def _fmt_index(index: tuple[Expr, ...]) -> str:
    return "[" + ", ".join(_fmt(e) for e in index) + "]"


def _fmt(expr: Expr) -> str:
    if isinstance(expr, Const):
        return str(expr.value)
    if isinstance(expr, Sym):
        return expr.name
    if isinstance(expr, Load):
        return f"{expr.array}{_fmt_index(expr.index)}"
    if isinstance(expr, Bin):
        return f"{_fmt(expr.left)} {expr.op} {_fmt(expr.right)}"
    if isinstance(expr, Un):  # pragma: no cover - diagnostics only
        return f"{expr.op}{_fmt(expr.operand)}"
    if isinstance(expr, Select):
        return f"({_fmt(expr.cond)} ? {_fmt(expr.if_true)} : {_fmt(expr.if_false)})"
    return "?"


_CTYPE_BYTES = {
    "double": 8,
    "float": 4,
    "long": 8,
    "int": 4,
    "unsigned char": 1,
}


def analyze_nest(kernel: Kernel, nest: Loop) -> NestReport:
    """Dependence analysis of one top-level nest of ``kernel``.

    Same conservative spirit as ``dependence.analyze_loop``: a chain
    loop is independent only when every write to a shared array is
    plainly indexed by its variable and no read of a written array
    offsets it. Accumulation stores missing the index are recorded as
    reduction candidates (they still block the loop — the paper's
    workflow annotates reductions explicitly, it does not guess).
    """
    chain = nest.nest_chain()
    chain_vars = [lp.var for lp in chain]
    arrays = kernel.arrays()
    lets = _let_bindings(nest.body)

    private_scalars: set[str] = set()
    private_arrays: set[str] = set()
    stack_bytes = 0
    for stmt in walk_ir_stmts(nest.body):
        if isinstance(stmt, (Let, Decl)):
            private_scalars.add(stmt.name)
        elif isinstance(stmt, LocalArray):
            private_arrays.add(stmt.name)
            stack_bytes += stmt.size * _CTYPE_BYTES.get(stmt.ctype, 8)

    reasons: list[str] = []
    blocked: dict[str, list[str]] = {v: [] for v in chain_vars}
    reductions: set[tuple[str, str]] = set()

    def block(var: str, why: str) -> None:
        blocked[var].append(why)
        reasons.append(why)

    def block_all(why: str) -> None:
        reasons.append(why)
        for v in chain_vars:
            blocked[v].append(why)

    # Rectangularity: inner chain bounds must not depend on outer
    # chain variables (collapse legality needs a rectangular product).
    for level, lp in enumerate(chain[1:], start=1):
        outer = set(chain_vars[:level])
        bound_vars = expr_syms(lp.start) | expr_syms(lp.stop)
        offenders = sorted(bound_vars & outer)
        if offenders:
            block(
                lp.var,
                f"bounds of loop over {lp.var} depend on outer "
                f"variable(s) {', '.join(offenders)}: non-rectangular nest",
            )

    # Scalar writes must target nest-private temporaries (or be
    # recognized accumulations, which become reduction candidates).
    for stmt in walk_ir_stmts(nest.body):
        if isinstance(stmt, Assign) and stmt.name not in private_scalars:
            value = stmt.value
            if (
                isinstance(value, Bin)
                and value.op in _REDUCTION_OPS
                and (
                    value.left == Sym(stmt.name)
                    or value.right == Sym(stmt.name)
                )
            ):
                reductions.add((_REDUCTION_OPS[value.op], stmt.name))
                block_all(
                    f"scalar {stmt.name} accumulates across iterations "
                    "(reduction candidate)"
                )
            else:
                block_all(
                    f"scalar {stmt.name} is written but not declared "
                    "inside the nest: every iteration races on it"
                )

    stores = [
        s
        for s in walk_ir_stmts(nest.body)
        if isinstance(s, Store) and s.array not in private_arrays
    ]
    loads: list[Load] = []
    for stmt in walk_ir_stmts(nest.body):
        for expr in stmt_exprs(stmt):
            loads.extend(
                ld for ld in expr_loads(expr) if ld.array not in private_arrays
            )
    written = {s.array for s in stores}

    reported: set[tuple[str, str, str]] = set()
    for st in stores:
        resolved = tuple(_resolve(e, lets) for e in st.index)
        if any(expr_loads(e) for e in resolved):
            key = ("indirect", st.array, "")
            if key not in reported:
                reported.add(key)
                block_all(
                    f"store to {st.array}{_fmt_index(st.index)} is "
                    "indirectly indexed: iterations cannot be proven disjoint"
                )
            continue
        for v in chain_vars:
            if any(_is_plain(e, v) for e in resolved):
                continue
            if st.op in ("+=", "-="):
                reductions.add(("+", st.array))
                key = ("accum", st.array, v)
                if key not in reported:
                    reported.add(key)
                    block(
                        v,
                        f"array {st.array}{_fmt_index(st.index)} accumulates "
                        f"without indexing by {v} (reduction candidate)",
                    )
            else:
                key = ("race", st.array, v)
                if key not in reported:
                    reported.add(key)
                    block(
                        v,
                        f"write to {st.array}{_fmt_index(st.index)} is not "
                        f"indexed by loop variable {v}: different iterations "
                        "write the same element",
                    )

    for ld in loads:
        if ld.array not in written:
            continue
        resolved = tuple(_resolve(e, lets) for e in ld.index)
        for v in chain_vars:
            for e in resolved:
                if v in expr_syms(e) and not _is_plain(e, v):
                    key = ("carried", ld.array, v)
                    if key not in reported:
                        reported.add(key)
                        block(
                            v,
                            f"read of {ld.array}{_fmt_index(ld.index)} "
                            f"offsets loop variable {v}: loop-carried flow "
                            "dependence",
                        )

    parallel_depth = 0
    for v in chain_vars:
        if blocked[v]:
            break
        parallel_depth += 1

    read_names = {ld.array for ld in loads}
    write_only = sorted(
        name for name in written if name not in read_names and name in arrays
    )
    readwrite = sorted(written & read_names)
    read_only = sorted(
        name for name in read_names if name not in written and name in arrays
    )

    return NestReport(
        nest=nest,
        parallelizable=parallel_depth == len(chain_vars),
        parallel_depth=parallel_depth,
        private_scalars=tuple(sorted(private_scalars)),
        private_arrays=tuple(sorted(private_arrays)),
        write_only_arrays=tuple(write_only),
        readwrite_arrays=tuple(readwrite),
        read_only_arrays=tuple(read_only),
        reductions=tuple(sorted(reductions)),
        reasons=tuple(dict.fromkeys(reasons)),
        local_stack_bytes=stack_bytes,
    )


# --- passes -----------------------------------------------------------------


def _rewrite_stmt_exprs(stmts: list[Stmt], fn) -> None:
    """Apply ``fn`` to every expression owned by statements in place."""
    for s in stmts:
        if isinstance(s, Let):
            s.value = fn(s.value)
        elif isinstance(s, Decl):
            if s.init is not None:
                s.init = fn(s.init)
        elif isinstance(s, Assign):
            s.value = fn(s.value)
        elif isinstance(s, Store):
            s.index = tuple(fn(e) for e in s.index)
            s.value = fn(s.value)
        elif isinstance(s, If):
            s.cond = fn(s.cond)
            _rewrite_stmt_exprs(s.body, fn)
            _rewrite_stmt_exprs(s.orelse, fn)
        elif isinstance(s, Loop):
            s.start = fn(s.start)
            s.stop = fn(s.stop)
            _rewrite_stmt_exprs(s.body, fn)


def normalize_loops(kernel: Kernel) -> PassResult:
    """Shift every loop to a 0-based iteration space.

    ``for (v = lo; v < hi)`` becomes ``for (v = 0; v < hi - lo)`` with
    ``v`` replaced by ``v + lo`` in the body — the canonical form every
    later pass (and the collapse trip-count product) assumes. Always
    legal: it is a pure reindexing.
    """
    changed: list[str] = []
    for stmt in walk_ir_stmts(kernel.body):
        if not isinstance(stmt, Loop):
            continue
        if stmt.start == Const(0):
            continue
        lo = stmt.start
        var = stmt.var
        shifted = Bin("+", Sym(var), lo)
        _rewrite_stmt_exprs(
            stmt.body, lambda e: subst(e, {var: shifted})
        )
        stmt.stop = Bin("-", stmt.stop, lo)
        stmt.start = Const(0)
        changed.append(var)
    return PassResult(
        name="normalize",
        stage=Stage.BASELINE.value,
        applied=bool(changed),
        detail=(
            f"rebased loop(s) {', '.join(changed)} to 0"
            if changed
            else "all loops already 0-based"
        ),
    )


def _stmt_effects(
    stmt: Stmt,
) -> tuple[set[str], set[str], set[str], set[str]]:
    """(arrays written, arrays read, names defined, names read).

    "Defined" covers Let/Decl/Assign targets, local-array
    declarations, and nested loop variables; "read" is every scalar
    name a subexpression mentions. The split matters: two statements
    *reading* the same scalar (the surrounding loop variable, a shared
    parameter) are independent, while a definition on either side
    orders them.
    """
    writes: set[str] = set()
    reads: set[str] = set()
    defined: set[str] = set()
    read_names: set[str] = set()
    for s in walk_ir_stmts([stmt]):
        if isinstance(s, Store):
            writes.add(s.array)
        elif isinstance(s, (Let, Decl)):
            defined.add(s.name)
        elif isinstance(s, Assign):
            defined.add(s.name)
        elif isinstance(s, LocalArray):
            defined.add(s.name)
        elif isinstance(s, Loop):
            defined.add(s.var)
        for expr in stmt_exprs(s):
            reads.update(ld.array for ld in expr_loads(expr))
            read_names.update(expr_syms(expr))
    return writes, reads, defined, read_names


def _stores_of(stmt: Stmt, array: str) -> list[Store]:
    return [
        s
        for s in walk_ir_stmts([stmt])
        if isinstance(s, Store) and s.array == array
    ]


def _loads_of(stmt: Stmt, array: str) -> list[Load]:
    out: list[Load] = []
    for s in walk_ir_stmts([stmt]):
        for expr in stmt_exprs(s):
            out.extend(ld for ld in expr_loads(expr) if ld.array == array)
    return out


def _fission_conflict(a: Stmt, b: Stmt, param_arrays: set[str]) -> bool:
    """Must ``a`` and ``b`` stay in the same loop?

    Conservative: a name defined on either side that the other touches
    (so a :class:`LocalArray` declaration stays with every statement
    using it, and defined temporaries order their consumers), or a
    shared parameter array with a write on either side whose accesses
    are not all structurally identical (identical indices are
    loop-independent dependences, which fission preserves; anything
    else could be carried either direction). Names both sides merely
    *read* — the fissioned loop's variable, shared scalar parameters —
    do not conflict.
    """
    wa, ra, da, na = _stmt_effects(a)
    wb, rb, db, nb = _stmt_effects(b)
    # Non-parameter (stack-local) arrays live in the name namespace:
    # a store counts as defining, a load as reading.
    da = da | {x for x in wa if x not in param_arrays}
    na = na | {x for x in (wa | ra) if x not in param_arrays}
    db = db | {x for x in wb if x not in param_arrays}
    nb = nb | {x for x in (wb | rb) if x not in param_arrays}
    if (da & (db | nb)) or (db & (da | na)):
        return True
    for array in (wa & (wb | rb)) | (wb & (wa | ra)):
        accesses = [
            *(s.index for s in _stores_of(a, array)),
            *(ld.index for ld in _loads_of(a, array)),
            *(s.index for s in _stores_of(b, array)),
            *(ld.index for ld in _loads_of(b, array)),
        ]
        if any(idx != accesses[0] for idx in accesses[1:]):
            return True
    return False


def fission_loop(kernel: Kernel, loop: Loop) -> PassResult:
    """Split one top-level loop into independent statement groups.

    Mirrors the paper's fission of the collision call out of the big
    microphysics driver (Listing 6): statements that share no data —
    or share arrays only at identical subscripts — are distributed
    into their own copies of the loop, ready for independent offload
    decisions. Refused (not applied) when every statement is entangled.
    """
    if loop not in kernel.body:
        raise TransformError(
            f"fission target must be a top-level loop of {kernel.name}"
        )
    param_arrays = set(kernel.arrays())
    # Connected components of the pairwise conflict graph: statements
    # in different components are proven independent, so distributing
    # the loop over the components (each keeping program order) is
    # legal regardless of how they interleave.
    count = len(loop.body)
    comp = list(range(count))

    def find(x: int) -> int:
        while comp[x] != x:
            comp[x] = comp[comp[x]]
            x = comp[x]
        return x

    for a in range(count):
        for b in range(a + 1, count):
            if _fission_conflict(loop.body[a], loop.body[b], param_arrays):
                comp[find(a)] = find(b)
    by_comp: dict[int, list[Stmt]] = {}
    for idx, stmt in enumerate(loop.body):
        by_comp.setdefault(find(idx), []).append(stmt)
    groups = list(by_comp.values())
    if len(groups) <= 1:
        return PassResult(
            name="fission",
            stage=Stage.OFFLOAD_COLLAPSE2.value,
            applied=False,
            detail="single statement group: nothing to fission",
        )
    at = kernel.body.index(loop)
    new_loops = [
        Loop(loop.var, loop.start, loop.stop, g, schedule=loop.schedule)
        for g in groups
    ]
    kernel.body[at : at + 1] = new_loops
    return PassResult(
        name="fission",
        stage=Stage.OFFLOAD_COLLAPSE2.value,
        applied=True,
        detail=f"split loop over {loop.var} into {len(groups)} loops",
    )


def collapse_nest(
    kernel: Kernel,
    nest: Loop,
    policy: TransformPolicy,
    report: NestReport | None = None,
) -> PassResult:
    """Annotate ``parallel for collapse(n)`` as deep as provably legal.

    The depth is ``min(parallel_depth, chain - keep_serial_inner)``;
    an explicit ``policy.collapse`` deeper than the analysis allows
    raises :class:`~repro.errors.TransformError` with the analysis'
    reasons — the engine never emits an annotation it cannot justify.
    """
    report = report or analyze_nest(kernel, nest)
    chain_len = nest.nest_depth()
    stage = Stage.OFFLOAD_COLLAPSE2.value
    if not policy.parallel:
        return PassResult("collapse", stage, False, "policy: serial codegen")
    if chain_len < policy.min_parallel_depth:
        return PassResult(
            "collapse",
            stage,
            False,
            f"nest depth {chain_len} below the parallel-overhead floor "
            f"({policy.min_parallel_depth})",
        )
    if policy.collapse is not None and policy.collapse > report.parallel_depth:
        raise TransformError(
            f"collapse({policy.collapse}) requested but only "
            f"{report.parallel_depth} loop(s) are provably independent:\n  "
            + "\n  ".join(report.reasons)
        )
    want = (
        policy.collapse
        if policy.collapse is not None
        else max(1, chain_len - policy.keep_serial_inner)
    )
    chosen = min(report.parallel_depth, want)
    if chosen < 1:
        return PassResult(
            "collapse",
            stage,
            False,
            "derived serial: " + "; ".join(report.reasons[:2]),
        )
    nest.parallel = True
    nest.collapse = chosen
    nest.schedule = policy.schedule
    if chosen >= 3:
        stage = Stage.OFFLOAD_COLLAPSE3.value
    return PassResult(
        "collapse",
        stage,
        True,
        f"collapse({chosen}) justified by parallel depth "
        f"{report.parallel_depth} of {chain_len}",
    )


def hoist_automatic_arrays(
    kernel: Kernel, nest: Loop, report: NestReport | None = None
) -> PassResult:
    """Replace nest-local arrays with slices of preallocated buffers.

    The Listing 8 transformation: each :class:`LocalArray` under a
    *parallel* nest becomes a new ``<name>_temp`` array parameter
    indexed by the collapsed loop variables, eliminating the
    per-thread stack frame the paper's ``collapse(3)`` attempt
    overflowed on. Only legal under a parallel annotation (a serial
    nest's local array costs nothing and keeps cache locality).
    """
    if not nest.parallel:
        return PassResult(
            name="hoist_automatic_arrays",
            stage=Stage.OFFLOAD_COLLAPSE3.value,
            applied=False,
            detail="nest is serial: automatic arrays stay on the stack",
        )
    chain = nest.nest_chain()[: nest.collapse]
    chain_vars = [lp.var for lp in chain]
    extents = [lp.stop for lp in chain]
    locals_here = [
        s for s in walk_ir_stmts(nest.body) if isinstance(s, LocalArray)
    ]
    if not locals_here:
        return PassResult(
            name="hoist_automatic_arrays",
            stage=Stage.OFFLOAD_COLLAPSE3.value,
            applied=False,
            detail="no automatic arrays in the parallel nest",
        )
    hoisted: list[str] = []
    for arr in locals_here:
        temp_name = f"{arr.name}_temp"
        strides: list[Expr] = []
        for d in range(len(chain_vars)):
            stride: Expr = Const(arr.size)
            for later in extents[d + 1 :]:
                stride = Bin("*", stride, later)
            strides.append(stride)
        strides.append(Const(1))
        kernel.params = (
            *kernel.params,
            ArrayParam(
                temp_name,
                strides=tuple(strides),
                ctype=arr.ctype,
                intent="scratch",
            ),
        )

        prefix = tuple(Sym(v) for v in chain_vars)

        def remap(expr: Expr, _name=arr.name, _temp=temp_name) -> Expr:
            if isinstance(expr, Load) and expr.array == _name:
                return Load(_temp, (*prefix, *(remap(e) for e in expr.index)))
            if isinstance(expr, Load):
                return Load(expr.array, tuple(remap(e) for e in expr.index))
            if isinstance(expr, Bin):
                return Bin(expr.op, remap(expr.left), remap(expr.right))
            if isinstance(expr, Un):
                return Un(expr.op, remap(expr.operand))
            if isinstance(expr, Select):
                return Select(
                    remap(expr.cond),
                    remap(expr.if_true),
                    remap(expr.if_false),
                )
            return expr

        def retarget(stmts: list[Stmt]) -> None:
            for s in list(stmts):
                if isinstance(s, LocalArray) and s.name == arr.name:
                    stmts.remove(s)
                elif isinstance(s, Store) and s.array == arr.name:
                    s.array = temp_name
                    s.index = (*prefix, *(remap(e) for e in s.index))
                    s.value = remap(s.value)
                elif isinstance(s, Store):
                    s.index = tuple(remap(e) for e in s.index)
                    s.value = remap(s.value)
                elif isinstance(s, (Let, Assign)):
                    s.value = remap(s.value)
                elif isinstance(s, Decl) and s.init is not None:
                    s.init = remap(s.init)
                elif isinstance(s, If):
                    s.cond = remap(s.cond)
                    retarget(s.body)
                    retarget(s.orelse)
                elif isinstance(s, Loop):
                    retarget(s.body)

        retarget(nest.body)
        hoisted.append(arr.name)
    return PassResult(
        name="hoist_automatic_arrays",
        stage=Stage.OFFLOAD_COLLAPSE3.value,
        applied=True,
        detail=(
            f"hoisted {', '.join(hoisted)} into preallocated "
            f"{', '.join(h + '_temp' for h in hoisted)}"
        ),
    )


def _leaf_loops(nest: Loop) -> list[Loop]:
    """Loops under ``nest`` containing no further loops."""
    return [
        s
        for s in walk_ir_stmts([nest])
        if isinstance(s, Loop)
        and not any(isinstance(t, Loop) for t in walk_ir_stmts(s.body))
    ]


def _simd_legal(leaf: Loop) -> tuple[bool, str]:
    var = leaf.var
    stored_arrays: set[str] = set()
    for s in walk_ir_stmts(leaf.body):
        if isinstance(s, Assign):
            return False, f"scalar {s.name} mutates across lanes"
        if isinstance(s, Store):
            stored_arrays.add(s.array)
            if not any(_is_plain(e, var) for e in s.index):
                return (
                    False,
                    f"store to {s.array}{_fmt_index(s.index)} is not "
                    f"plainly indexed by {var}",
                )
            if any(expr_loads(e) for e in s.index):
                return False, f"store to {s.array} is indirectly indexed"
    for s in walk_ir_stmts(leaf.body):
        for expr in stmt_exprs(s):
            for ld in expr_loads(expr):
                if ld.array not in stored_arrays:
                    continue
                for e in ld.index:
                    if var in expr_syms(e) and not _is_plain(e, var):
                        return (
                            False,
                            f"read of {ld.array} offsets {var} across lanes",
                        )
    return True, ""


def simd_innermost(
    kernel: Kernel, nest: Loop, policy: TransformPolicy
) -> PassResult:
    """Mark provably independent innermost loops of a parallel nest.

    The IR analog of the rewriter's inner ``!$omp simd``: a leaf loop
    vectorizes only when every store is plainly indexed by its
    variable (lanes are disjoint), nothing scalar mutates across
    lanes, and no read of a stored array offsets the lane index.
    Serial nests are left alone — matching the hand-written kernels,
    where the compiler auto-vectorizes the serial sweeps.
    """
    stage = Stage.OFFLOAD_COLLAPSE2.value
    if not policy.simd or not nest.parallel:
        return PassResult(
            "simd_innermost",
            stage,
            False,
            "nest is serial" if not nest.parallel else "policy: no simd",
        )
    marked: list[str] = []
    refused: list[str] = []
    for leaf in _leaf_loops(nest):
        ok, why = _simd_legal(leaf)
        if ok:
            leaf.simd = True
            marked.append(leaf.var)
        else:
            refused.append(f"{leaf.var} ({why})")
    detail = []
    if marked:
        detail.append(f"simd on loop(s) {', '.join(marked)}")
    if refused:
        detail.append(f"refused: {'; '.join(refused)}")
    return PassResult(
        "simd_innermost",
        stage,
        bool(marked),
        "; ".join(detail) or "no innermost loops",
    )


def plan_offload(
    kernel: Kernel, policy: TransformPolicy | None = None
) -> TransformPlan:
    """Run the full derivation: normalize → fission → collapse → simd.

    Every annotation on the returned plan's kernel is justified by a
    :class:`NestReport`; the reports and per-pass outcomes are kept on
    the plan so ``codee transform`` can show the derivation and the
    verifier gate can re-check it.
    """
    policy = policy or TransformPolicy()
    plan = TransformPlan(kernel=kernel, policy=policy)
    plan.passes.append(normalize_loops(kernel))
    if policy.fission:
        for loop in list(kernel.loops()):
            plan.passes.append(fission_loop(kernel, loop))
    for nest in kernel.loops():
        report = analyze_nest(kernel, nest)
        plan.reports[nest.var] = report
        plan.passes.append(collapse_nest(kernel, nest, policy, report))
        plan.passes.append(hoist_automatic_arrays(kernel, nest, report))
        plan.passes.append(simd_innermost(kernel, nest, policy))
    return plan
