"""Nsight-Compute-style kernel metrics (Table VI, Fig. 3).

``ncu`` profiles individual kernel launches and reports occupancy,
cache hit rates, and DRAM traffic. The simulated engine records exactly
those quantities per launch; this module aggregates them per kernel
name and renders the paper's Table VI layout, plus roofline points for
Fig. 3.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.engine import KernelRecord
from repro.hardware.roofline import RooflinePoint


@dataclass(frozen=True, slots=True)
class NcuKernelMetrics:
    """Aggregated metrics for one kernel across its launches."""

    name: str
    launches: int
    time_ms: float
    achieved_occupancy_pct: float
    l1_hit_rate_pct: float
    l2_hit_rate_pct: float
    dram_write_gb: float
    dram_read_gb: float
    flops: float
    precision: str

    def roofline_point(self, label: str | None = None) -> RooflinePoint:
        """This kernel as a point on the device roofline."""
        return RooflinePoint(
            label=label or self.name,
            flops=self.flops,
            dram_bytes=(self.dram_read_gb + self.dram_write_gb) * 1e9,
            time=self.time_ms / 1e3,
            precision=self.precision,
        )


@dataclass(frozen=True)
class NcuReport:
    """All kernels of one profiling session."""

    kernels: tuple[NcuKernelMetrics, ...]

    @classmethod
    def from_records(
        cls, records: list[KernelRecord], precision: str = "fp32"
    ) -> "NcuReport":
        """Aggregate launch records by kernel name (time-weighted)."""
        by_name: dict[str, list[KernelRecord]] = {}
        for r in records:
            by_name.setdefault(r.name, []).append(r)
        kernels = []
        for name, recs in sorted(by_name.items()):
            total_time = sum(r.timing.total for r in recs)
            weight = total_time or 1.0
            occ = (
                sum(r.timing.occupancy.achieved * r.timing.total for r in recs)
                / weight
            )
            l1 = (
                sum(r.timing.traffic.l1_hit_rate * r.timing.total for r in recs)
                / weight
            )
            l2 = (
                sum(r.timing.traffic.l2_hit_rate * r.timing.total for r in recs)
                / weight
            )
            kernels.append(
                NcuKernelMetrics(
                    name=name,
                    launches=len(recs),
                    time_ms=total_time * 1e3,
                    achieved_occupancy_pct=occ * 100.0,
                    l1_hit_rate_pct=l1 * 100.0,
                    l2_hit_rate_pct=l2 * 100.0,
                    dram_write_gb=sum(
                        r.timing.traffic.dram_write_bytes for r in recs
                    )
                    / 1e9,
                    dram_read_gb=sum(
                        r.timing.traffic.dram_read_bytes for r in recs
                    )
                    / 1e9,
                    flops=sum(r.timing.effective_flops for r in recs),
                    precision=precision,
                )
            )
        return cls(kernels=tuple(kernels))

    def kernel(self, name: str) -> NcuKernelMetrics:
        """Metrics for one kernel by name."""
        for k in self.kernels:
            if k.name == name:
                return k
        raise KeyError(name)


def format_table6(
    collapse2: NcuKernelMetrics, collapse3: NcuKernelMetrics
) -> str:
    """Render the paper's Table VI comparison of the two offloaded codes."""
    rows = [
        ("Time (ms)", f"{collapse2.time_ms:.2f}", f"{collapse3.time_ms:.2f}"),
        (
            "Achieved occupancy (%)",
            f"{collapse2.achieved_occupancy_pct:.2f}",
            f"{collapse3.achieved_occupancy_pct:.2f}",
        ),
        (
            "L1/TEX hit rate (%)",
            f"{collapse2.l1_hit_rate_pct:.2f}",
            f"{collapse3.l1_hit_rate_pct:.2f}",
        ),
        (
            "L2 hit rate (%)",
            f"{collapse2.l2_hit_rate_pct:.2f}",
            f"{collapse3.l2_hit_rate_pct:.2f}",
        ),
        (
            "Writes to DRAM (GB)",
            f"{collapse2.dram_write_gb:.3f}",
            f"{collapse3.dram_write_gb:.3f}",
        ),
        (
            "Reads from DRAM (GB)",
            f"{collapse2.dram_read_gb:.3f}",
            f"{collapse3.dram_read_gb:.3f}",
        ),
    ]
    lines = [
        f"{'Metric':<24} {'collapse(2)':>14} {'collapse(3) w/ ptrs':>20}"
    ]
    for name, a, b in rows:
        lines.append(f"{name:<24} {a:>14} {b:>20}")
    return "\n".join(lines)
