"""NVTX range shim.

The paper annotates candidate subroutines with NVTX markers so Nsight
Systems can attribute time per rank (Sec. III). Here an NVTX range is a
named region on the rank's simulated clock — the same mechanism the
model driver uses internally, exposed with the NVTX vocabulary so user
code reads like the Fortran (``nvtxRangePush``/``nvtxRangePop``).
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator

from repro.core.clock import SimClock


@contextmanager
def nvtx_range(clock: SimClock, name: str) -> Iterator[None]:
    """Annotate a region of simulated execution (nvtxRangePush/Pop)."""
    with clock.region(name):
        yield


class NvtxDomain:
    """A named collection of ranges (mirrors NVTX domains).

    Keeps the push/pop API for code ported line-by-line from Fortran
    call sites.
    """

    def __init__(self, clock: SimClock, name: str = "repro"):
        self.clock = clock
        self.name = name
        self._stack: list = []

    def range_push(self, label: str) -> None:
        """``nvtxDomainRangePushEx`` equivalent."""
        ctx = self.clock.region(f"{self.name}:{label}")
        ctx.__enter__()
        self._stack.append(ctx)

    def range_pop(self) -> None:
        """``nvtxDomainRangePop`` equivalent."""
        if not self._stack:
            raise RuntimeError("nvtx range pop without matching push")
        self._stack.pop().__exit__(None, None, None)
