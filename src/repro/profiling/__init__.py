"""Profiler shims: gprof, NVTX, Nsight Systems, Nsight Compute.

The paper's optimization workflow starts from profiles (Sec. III, VI):
gprof for a cheap cross-rank hotspot estimate, NVTX ranges + Nsight
Systems for one rank's accurate time contribution, and Nsight Compute
for per-kernel device metrics. These shims produce the same reports
from the simulated clocks and kernel records.
"""

from repro.profiling.gprof import GprofReport, GprofRow
from repro.profiling.nvtx import nvtx_range
from repro.profiling.nsight_systems import NsysReport
from repro.profiling.nsight_compute import NcuReport, NcuKernelMetrics

__all__ = [
    "GprofReport",
    "GprofRow",
    "nvtx_range",
    "NsysReport",
    "NcuReport",
    "NcuKernelMetrics",
]
