"""gprof-style flat profile over all ranks.

The paper "used GNU gprof to quickly gain a rough estimate of the top
few hot spots, aggregating the output from all MPI cores" (Sec. III).
This shim aggregates region times across every rank clock and reports
percentage contributions, reproducing Table I's first column.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.wrf.model import RunResult

#: The routines the paper's Table I tracks.
TABLE1_ROUTINES = ("fast_sbm", "rk_scalar_tend", "rk_update_scalar")


@dataclass(frozen=True, slots=True)
class GprofRow:
    """One line of the flat profile."""

    name: str
    seconds: float
    percent: float
    calls: int


@dataclass(frozen=True)
class GprofReport:
    """Aggregated flat profile."""

    rows: tuple[GprofRow, ...]
    total_seconds: float

    @classmethod
    def from_run(
        cls, result: RunResult, routines: tuple[str, ...] | None = None
    ) -> "GprofReport":
        """Aggregate region times over every rank (gprof's sum mode)."""
        total = sum(c.total for c in result.rank_clocks)
        names = routines
        if names is None:
            seen: set[str] = set()
            for c in result.rank_clocks:
                for full in c.regions:
                    seen.add(full.split("/")[-1])
            names = tuple(sorted(seen))
        rows = []
        for name in names:
            seconds = sum(c.region_total(name) for c in result.rank_clocks)
            rows.append(
                GprofRow(
                    name=name,
                    seconds=seconds,
                    percent=100.0 * seconds / total if total else 0.0,
                    calls=result.steps_run * len(result.rank_clocks),
                )
            )
        rows.sort(key=lambda r: r.seconds, reverse=True)
        return cls(rows=tuple(rows), total_seconds=total)

    def percent_of(self, name: str) -> float:
        """Percentage for one routine (0 when absent)."""
        for row in self.rows:
            if row.name == name:
                return row.percent
        return 0.0

    def format_table(self, top: int = 10) -> str:
        """Flat-profile text in gprof's familiar layout."""
        lines = [
            "Flat profile (aggregated over all MPI ranks):",
            f"{'% time':>8}  {'seconds':>10}  {'calls':>8}  name",
        ]
        for row in self.rows[:top]:
            lines.append(
                f"{row.percent:>7.2f}%  {row.seconds:>10.4f}  "
                f"{row.calls:>8d}  {row.name}"
            )
        return "\n".join(lines)
