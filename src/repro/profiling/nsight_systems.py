"""Nsight-Systems-style single-rank timeline report.

gprof's cross-rank aggregate hides load imbalance, so the paper selects
one heavily loaded MPI task and measures its NVTX ranges with Nsight
Systems (Table I's second column). This report does the same against
one rank's simulated clock.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.wrf.model import RunResult


@dataclass(frozen=True, slots=True)
class NsysRow:
    """One NVTX range's share of the rank timeline."""

    name: str
    seconds: float
    percent: float


@dataclass(frozen=True)
class NsysReport:
    """Per-rank NVTX summary."""

    rank: int
    rows: tuple[NsysRow, ...]
    total_seconds: float

    @classmethod
    def from_run(
        cls,
        result: RunResult,
        rank: int | None = None,
        routines: tuple[str, ...] = ("fast_sbm", "rk_scalar_tend", "rk_update_scalar"),
    ) -> "NsysReport":
        """Summarize one rank (default: the most loaded — the paper picks
        a task with heavy FSBM activity precisely because of imbalance)."""
        if rank is None:
            rank = max(
                range(len(result.rank_clocks)),
                key=lambda r: result.rank_clocks[r].region_total("fast_sbm"),
            )
        clock = result.rank_clocks[rank]
        total = clock.total
        rows = tuple(
            NsysRow(
                name=name,
                seconds=clock.region_total(name),
                percent=100.0 * clock.region_total(name) / total if total else 0.0,
            )
            for name in routines
        )
        return cls(rank=rank, rows=rows, total_seconds=total)

    def percent_of(self, name: str) -> float:
        """Percentage for one range (0 when absent)."""
        for row in self.rows:
            if row.name == name:
                return row.percent
        return 0.0

    def format_table(self) -> str:
        """NVTX range summary text."""
        lines = [
            f"NVTX range summary (rank {self.rank}, "
            f"{self.total_seconds:.3f} s total):",
            f"{'range':<20} {'seconds':>10} {'% of rank':>10}",
        ]
        for row in self.rows:
            lines.append(
                f"{row.name:<20} {row.seconds:>10.4f} {row.percent:>9.2f}%"
            )
        return "\n".join(lines)


#: Timeline lane glyphs: (charge attribute, label, glyph).
_TIMELINE_LANES = (
    ("cpu", "CPU", "#"),
    ("gpu_kernel", "GPU kernels", "%"),
    ("transfers", "H2D/D2H", "~"),
    ("mpi", "MPI", "."),
    ("io", "I/O", "o"),
)


def render_timeline(result: RunResult, rank: int = 0, width: int = 64) -> str:
    """ASCII per-step timeline of one rank (Nsight's lane view).

    Each model step is one row; the bar length is proportional to the
    step's charge on that rank, subdivided into CPU (``#``), GPU
    kernels (``%``), transfers (``~``), MPI (``.``) and I/O (``o``)
    segments.
    """
    steps = result.step_timings
    if not steps:
        return "timeline: no steps recorded"
    totals = [
        sum(getattr(t.charges[rank], attr) for attr, _, _ in _TIMELINE_LANES)
        for t in steps
    ]
    scale = max(totals) or 1.0
    lines = [
        f"Timeline, rank {rank} (one row per step; "
        + ", ".join(f"{g}={label}" for _, label, g in _TIMELINE_LANES)
        + ")"
    ]
    for t, total in zip(steps, totals):
        bar = ""
        for attr, _, glyph in _TIMELINE_LANES:
            seconds = getattr(t.charges[rank], attr)
            bar += glyph * int(round(width * seconds / scale))
        lines.append(f"step {t.step:>3} |{bar:<{width}}| {total * 1e3:8.2f} ms")
    return "\n".join(lines)
