"""Exception hierarchy for the reproduction.

The simulated device faults intentionally mirror the failure modes the
paper encountered on Perlmutter: a CUDA stack overflow from automatic
arrays under ``collapse(3)`` (Sec. VI-B) and a device out-of-memory when
more than 5 MPI ranks share one A100 (Sec. VII-A).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this package."""


class ConfigurationError(ReproError):
    """Invalid namelist, decomposition, or engine configuration."""


class DecompositionError(ConfigurationError):
    """A domain cannot be decomposed into the requested patches/tiles."""


class DeviceError(ReproError):
    """Base class for simulated device faults."""

    #: CUDA-style error string included in the message for familiarity.
    cuda_name = "cudaErrorUnknown"


class CudaStackOverflow(DeviceError):
    """Device thread stack exhausted.

    Raised when a kernel's per-thread stack demand (dominated by Fortran
    automatic arrays) exceeds ``NV_ACC_CUDA_STACKSIZE``. This is the
    error the paper hit when applying ``collapse(3)`` to the collision
    loop while ``coal_bott_new`` still used automatic arrays.
    """

    cuda_name = "CUDA_ERROR_LAUNCH_FAILED: stack overflow"


class CudaOutOfMemory(DeviceError):
    """Device global memory exhausted.

    Raised by the device memory pool when an allocation does not fit;
    the paper saw this beyond 5 MPI ranks per GPU.
    """

    cuda_name = "CUDA_ERROR_OUT_OF_MEMORY"


class MappingError(DeviceError):
    """Host/device data mapping misuse (use-before-map, double-free)."""

    cuda_name = "CUDA_ERROR_ILLEGAL_ADDRESS"


class MpiError(ReproError):
    """Simulated MPI runtime error."""


class ProcPoolError(ReproError):
    """The multiprocess rank pool failed (worker crash, timeout, misuse).

    Raised by :mod:`repro.wrf.procpool` when a worker process dies or
    stops responding mid-step, or when the pool is driven after close.
    The pool tears down every worker and unlinks all shared-memory
    segments before raising, so a crashed run never leaks ``/dev/shm``
    space.
    """


class CodeeError(ReproError):
    """Base class for the static-analysis front end."""


class FortranSyntaxError(CodeeError):
    """The Fortran-subset parser rejected the input."""

    def __init__(self, message: str, line: int = 0, column: int = 0):
        self.line = line
        self.column = column
        if line:
            message = f"line {line}, col {column}: {message}"
        super().__init__(message)


class AnalysisError(CodeeError):
    """Dependence/privatization analysis could not complete."""


class RewriteError(CodeeError):
    """The autofix rewriter could not apply the requested transformation."""


class VerificationError(CodeeError):
    """``codee verify`` found correctness violations."""


class TransformError(CodeeError):
    """A loop-IR transformation was requested that the dependence
    analysis cannot prove legal (e.g. ``collapse`` deeper than the
    nest's provable parallel depth)."""


class IRVerificationError(CodeeError):
    """The IR static verifier found blocking violations in a kernel.

    Raised by ``repro.codee.cgen.build_module`` *before* any C is
    emitted or compiled: an illegal transformation never reaches the
    JIT cache.
    """

    def __init__(self, kernel_name, violations):
        self.kernel_name = kernel_name
        self.violations = list(violations)
        lines = "\n  ".join(v.render() for v in self.violations)
        super().__init__(
            f"IR kernel {kernel_name!r} failed static verification "
            f"({len(self.violations)} violation(s)):\n  {lines}"
        )


class StageVerificationError(ReproError):
    """The optimization pipeline's static verify gate rejected a stage.

    Raised before a stage *runs*: the verifier found race/mapping/
    collapse/stack violations in the stage's offload source, so the
    pipeline refuses to advance — the static equivalent of the paper
    debugging the ``collapse(3)`` launch failure at runtime (Sec. VI-B).
    """

    def __init__(self, stage, violations):
        self.stage = stage
        self.violations = list(violations)
        lines = "\n  ".join(v.render() for v in self.violations)
        super().__init__(
            f"stage {getattr(stage, 'value', stage)} failed static "
            f"verification ({len(self.violations)} violation(s)):\n  {lines}"
        )
