"""Simulated Perlmutter hardware: A100 GPU, EPYC Milan CPU, interconnect.

Everything the cost model knows about the machine lives here. The specs
are public numbers for the Perlmutter node architecture (Sec. IV of the
paper); the efficiency curves are calibrated once against the paper's
measured ratios and then frozen (see DESIGN.md Sec. 2).
"""

from repro.hardware.specs import (
    A100_40GB,
    A100_80GB,
    EPYC_MILAN,
    PCIE_GEN4,
    SLINGSHOT_11,
    PERLMUTTER_GPU_NODE,
    PERLMUTTER_CPU_NODE,
    GpuSpec,
    CpuSpec,
    LinkSpec,
    NodeSpec,
)
from repro.hardware.occupancy import OccupancyCalculator, OccupancyResult
from repro.hardware.memory import CacheModel, MemoryTraffic
from repro.hardware.roofline import RooflineModel, RooflinePoint

__all__ = [
    "A100_40GB",
    "A100_80GB",
    "EPYC_MILAN",
    "PCIE_GEN4",
    "SLINGSHOT_11",
    "PERLMUTTER_GPU_NODE",
    "PERLMUTTER_CPU_NODE",
    "GpuSpec",
    "CpuSpec",
    "LinkSpec",
    "NodeSpec",
    "OccupancyCalculator",
    "OccupancyResult",
    "CacheModel",
    "MemoryTraffic",
    "RooflineModel",
    "RooflinePoint",
]
