"""CUDA occupancy calculator for the simulated A100.

Implements the standard occupancy computation (blocks per SM limited by
registers, thread slots, and block slots) plus an *achieved* occupancy
that also accounts for grids too small to fill the device — the
situation the paper's ``collapse(2)`` kernel is in, where only
``(jte-jts+1) x (kte-kts+1)`` threads exist for 108 SMs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.hardware.specs import GpuSpec


@dataclass(frozen=True, slots=True)
class OccupancyResult:
    """Outcome of an occupancy query for one kernel launch."""

    #: Resident blocks per SM permitted by all static limits.
    blocks_per_sm: int
    #: Which resource bound blocks first: "registers", "threads", "blocks".
    limiter: str
    #: Theoretical occupancy (resident warps / max warps), 0..1.
    theoretical: float
    #: Achieved occupancy including grid-size starvation, 0..1.
    achieved: float
    #: Total resident threads across the device during steady state.
    resident_threads: int


class OccupancyCalculator:
    """Occupancy queries against one GPU spec."""

    def __init__(self, gpu: GpuSpec):
        self.gpu = gpu

    def registers_per_block(self, registers_per_thread: int, block_size: int) -> int:
        """Register file consumption of one block, with warp granularity.

        Registers are allocated per warp in units of
        ``register_allocation_unit``; this mirrors the CUDA occupancy
        calculator's register rounding.
        """
        gpu = self.gpu
        warps = math.ceil(block_size / gpu.warp_size)
        per_warp = registers_per_thread * gpu.warp_size
        unit = gpu.register_allocation_unit
        per_warp = math.ceil(per_warp / unit) * unit
        return warps * per_warp

    def blocks_per_sm(
        self, registers_per_thread: int, block_size: int
    ) -> tuple[int, str]:
        """Resident blocks per SM and the limiting resource."""
        gpu = self.gpu
        if block_size < 1:
            raise ConfigurationError("block size must be positive")
        if registers_per_thread < 1:
            raise ConfigurationError("registers per thread must be positive")
        if registers_per_thread > gpu.max_registers_per_thread:
            registers_per_thread = gpu.max_registers_per_thread

        by_threads = gpu.max_threads_per_sm // block_size
        regs_block = self.registers_per_block(registers_per_thread, block_size)
        by_registers = gpu.registers_per_sm // regs_block if regs_block else gpu.max_blocks_per_sm
        by_slots = gpu.max_blocks_per_sm

        blocks = min(by_threads, by_registers, by_slots)
        if blocks == by_threads:
            limiter = "threads"
        elif blocks == by_registers:
            limiter = "registers"
        else:
            limiter = "blocks"
        return max(blocks, 0), limiter

    def occupancy(
        self,
        registers_per_thread: int,
        block_size: int,
        grid_blocks: int,
    ) -> OccupancyResult:
        """Full occupancy result for a launch of ``grid_blocks`` blocks.

        Theoretical occupancy uses the static per-SM limits; achieved
        occupancy additionally caps resident blocks by what the grid can
        actually supply (``grid_blocks / num_sms``) — a kernel with 30
        blocks on a 108-SM device can never exceed ~1.4 % no matter its
        register budget.
        """
        gpu = self.gpu
        blocks, limiter = self.blocks_per_sm(registers_per_thread, block_size)
        if blocks == 0:
            return OccupancyResult(0, limiter, 0.0, 0.0, 0)
        warps_per_block = math.ceil(block_size / gpu.warp_size)
        max_warps = gpu.max_threads_per_sm // gpu.warp_size
        theoretical = blocks * warps_per_block / max_warps

        # Steady-state resident blocks across the device: limited by both
        # the per-SM cap and the grid itself.
        device_capacity = blocks * gpu.num_sms
        resident_blocks = min(grid_blocks, device_capacity)
        resident_threads = resident_blocks * block_size
        achieved = resident_threads / (gpu.num_sms * gpu.max_threads_per_sm)
        achieved = min(achieved, theoretical)
        return OccupancyResult(
            blocks_per_sm=blocks,
            limiter=limiter,
            theoretical=theoretical,
            achieved=achieved,
            resident_threads=resident_threads,
        )
