"""Analytic cache-hierarchy model for the simulated A100.

The model reproduces the *mechanisms* behind Table VI of the paper:

* The ``collapse(2)`` kernel keeps ``coal_bott_new``'s automatic arrays
  in per-thread local memory, swept sequentially. Few threads are
  resident, so the hot frames fit in L1/L2 and misses are dominated by
  streaming (one miss per cache line, i.e. ``1 - elem/line`` hit rate).
* The ``collapse(3)`` kernel replaces the automatic arrays with slices
  of global ``*_temp`` arrays laid out ``(nkr, i, k, j)``. Each thread's
  bin sweep is strided by the number of grid points, so every element
  lands in its own 32 B sector — an ``line/elem``-fold DRAM traffic
  amplification — and the much higher resident-thread count thrashes
  both caches.

Traffic is described as a list of :class:`TrafficComponent` items, each
tagged with an access pattern; the model folds them into aggregate
L1/L2 hit rates and DRAM read/write bytes.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.hardware.specs import GpuSpec


class AccessPattern(enum.Enum):
    """How a traffic component touches memory."""

    #: Per-thread frame swept sequentially (automatic arrays in local
    #: memory, unit-stride bin loops).
    THREAD_SEQUENTIAL = "thread_sequential"

    #: Global arrays indexed with a grid-point major layout so that the
    #: per-bin sweep is strided by the number of grid points.
    GLOBAL_STRIDED = "global_strided"

    #: Warp-coalesced global access (consecutive threads touch
    #: consecutive elements).
    GLOBAL_COALESCED = "global_coalesced"

    #: Small read-only tables shared by every thread (collision-kernel
    #: lookup tables): near-perfect cache residency.
    BROADCAST = "broadcast"


@dataclass(frozen=True, slots=True)
class TrafficComponent:
    """One logical stream of memory accesses issued by a kernel."""

    name: str
    pattern: AccessPattern
    read_bytes: float
    write_bytes: float
    #: Element size in bytes (4 for the single-precision FSBM fields).
    elem_bytes: int = 4

    @property
    def total_bytes(self) -> float:
        return self.read_bytes + self.write_bytes


@dataclass(frozen=True, slots=True)
class MemoryTraffic:
    """Aggregate result of pushing a kernel's traffic through the model."""

    l1_hit_rate: float  # 0..1
    l2_hit_rate: float  # 0..1 (of L1 misses)
    dram_read_bytes: float
    dram_write_bytes: float
    l2_bytes: float

    @property
    def dram_bytes(self) -> float:
        return self.dram_read_bytes + self.dram_write_bytes


@dataclass(slots=True)
class CacheModel:
    """Folds traffic components into hit rates and DRAM traffic.

    ``working_set_per_thread`` is the bytes of private data one thread
    keeps hot; ``resident_threads`` comes from the occupancy result.
    """

    gpu: GpuSpec
    #: L2 hit rate of a strided stream once the cache is thrashed.
    strided_l2_floor: float = 0.62
    #: L1 hit rate of a strided stream (reuse of neighbouring bins only).
    strided_l1_hit: float = 0.55
    #: Hit rates for broadcast tables.
    broadcast_l1_hit: float = 0.98
    broadcast_l2_hit: float = 0.995

    def _sequential_hits(
        self, elem_bytes: int, resident_threads: int, working_set_per_thread: float
    ) -> tuple[float, float]:
        """(l1_hit, l2_hit) for a sequentially swept per-thread frame."""
        gpu = self.gpu
        # Streaming bound: one compulsory miss per line.
        stream_hit = 1.0 - elem_bytes / gpu.line_bytes
        # Contention: threads resident on one SM share L1.
        threads_per_sm = max(1.0, resident_threads / gpu.num_sms)
        l1_demand = threads_per_sm * working_set_per_thread
        l1_pressure = min(1.0, gpu.l1_bytes_per_sm / max(l1_demand, 1.0))
        # Under low pressure the hit rate approaches the streaming bound;
        # heavy pressure erodes it toward re-fetching whole frames (but a
        # sequential sweep never does worse than ~3/4 of the bound).
        l1_hit = stream_hit * (0.75 + 0.25 * l1_pressure)
        # L2 holds the union of hot frames; even a fully resident set
        # pays compulsory misses, so the hit rate saturates below 1.
        l2_demand = resident_threads * working_set_per_thread
        l2_pressure = min(1.0, gpu.l2_bytes / max(l2_demand, 1.0))
        l2_hit = min(0.55 + 0.45 * l2_pressure, 0.985)
        return l1_hit, l2_hit

    def _strided_hits(
        self, resident_threads: int, working_set_per_thread: float
    ) -> tuple[float, float]:
        """(l1_hit, l2_hit) for grid-point-strided global sweeps."""
        gpu = self.gpu
        l2_demand = resident_threads * working_set_per_thread
        l2_pressure = min(1.0, gpu.l2_bytes / max(l2_demand, 1.0))
        l2_hit = self.strided_l2_floor + (0.98 - self.strided_l2_floor) * l2_pressure
        return self.strided_l1_hit, l2_hit

    def evaluate(
        self,
        components: list[TrafficComponent],
        resident_threads: int,
        working_set_per_thread: float,
    ) -> MemoryTraffic:
        """Run all components through the hierarchy and aggregate."""
        gpu = self.gpu
        tot_access = 0.0
        l1_hit_w = 0.0
        l2_hit_w = 0.0
        l1_misses = 0.0
        dram_read = 0.0
        dram_write = 0.0
        l2_traffic = 0.0

        for c in components:
            if c.pattern is AccessPattern.THREAD_SEQUENTIAL:
                l1, l2 = self._sequential_hits(
                    c.elem_bytes, resident_threads, working_set_per_thread
                )
                amplification = 1.0
            elif c.pattern is AccessPattern.GLOBAL_STRIDED:
                l1, l2 = self._strided_hits(resident_threads, working_set_per_thread)
                # Every miss drags a whole sector for one element.
                amplification = gpu.line_bytes / c.elem_bytes
            elif c.pattern is AccessPattern.GLOBAL_COALESCED:
                l1 = 1.0 - c.elem_bytes / gpu.line_bytes
                l2 = 0.80
                amplification = 1.0
            elif c.pattern is AccessPattern.BROADCAST:
                l1, l2 = self.broadcast_l1_hit, self.broadcast_l2_hit
                amplification = 1.0
            else:  # pragma: no cover - enum is exhaustive
                raise ValueError(f"unknown pattern {c.pattern}")

            tot_access += c.total_bytes
            l1_hit_w += l1 * c.total_bytes
            miss_r = c.read_bytes * (1.0 - l1)
            miss_w = c.write_bytes * (1.0 - l1)
            l1_misses += miss_r + miss_w
            l2_hit_w += l2 * (miss_r + miss_w)
            l2_traffic += (miss_r + miss_w) * amplification
            dram_read += miss_r * (1.0 - l2) * amplification
            # Writes drain to DRAM once evicted from L2; strided writes
            # still waste the rest of the sector.
            dram_write += miss_w * (1.0 - l2 * 0.5) * amplification

        if tot_access <= 0:
            return MemoryTraffic(1.0, 1.0, 0.0, 0.0, 0.0)
        l1_rate = l1_hit_w / tot_access
        l2_rate = l2_hit_w / l1_misses if l1_misses > 0 else 1.0
        return MemoryTraffic(
            l1_hit_rate=l1_rate,
            l2_hit_rate=l2_rate,
            dram_read_bytes=dram_read,
            dram_write_bytes=dram_write,
            l2_bytes=l2_traffic,
        )
