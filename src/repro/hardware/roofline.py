"""Roofline model for the simulated A100 (Fig. 3 of the paper).

A kernel measurement is reduced to an (arithmetic intensity, attained
performance) point; the model supplies the memory and compute ceilings
so the harness can render the same plot as Nsight Compute's roofline
view, in ASCII.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware.specs import GpuSpec


@dataclass(frozen=True, slots=True)
class RooflinePoint:
    """One kernel measurement placed on the roofline."""

    label: str
    #: FLOPs executed by the kernel.
    flops: float
    #: Bytes moved to/from DRAM.
    dram_bytes: float
    #: Kernel wall time [s].
    time: float
    #: "fp32" or "fp64" — selects the compute ceiling.
    precision: str = "fp32"

    @property
    def arithmetic_intensity(self) -> float:
        """FLOP per DRAM byte."""
        if self.dram_bytes <= 0:
            return float("inf")
        return self.flops / self.dram_bytes

    @property
    def performance(self) -> float:
        """Attained FLOP/s."""
        if self.time <= 0:
            return 0.0
        return self.flops / self.time


@dataclass(frozen=True, slots=True)
class RooflineModel:
    """Compute/memory ceilings of one GPU."""

    gpu: GpuSpec

    def ceiling(self, intensity: float, precision: str = "fp32") -> float:
        """Attainable FLOP/s at a given arithmetic intensity."""
        peak = (
            self.gpu.peak_flops_fp32
            if precision == "fp32"
            else self.gpu.peak_flops_fp64
        )
        return min(peak, intensity * self.gpu.dram_bandwidth)

    def ridge_point(self, precision: str = "fp32") -> float:
        """Intensity at which the kernel stops being memory bound."""
        peak = (
            self.gpu.peak_flops_fp32
            if precision == "fp32"
            else self.gpu.peak_flops_fp64
        )
        return peak / self.gpu.dram_bandwidth

    def efficiency(self, point: RooflinePoint) -> float:
        """Fraction of the attainable ceiling the point reaches."""
        ceiling = self.ceiling(point.arithmetic_intensity, point.precision)
        if ceiling <= 0:
            return 0.0
        return point.performance / ceiling

    def render_ascii(
        self, points: list[RooflinePoint], width: int = 72, height: int = 20
    ) -> str:
        """ASCII log-log roofline chart with the points overlaid.

        Axes: x = arithmetic intensity [FLOP/B], y = performance
        [FLOP/s], both log10. Rooflines for fp32 (``=``) and fp64
        (``-``) are drawn; each point is plotted with its 1-based index.
        """
        import math

        xs = [p.arithmetic_intensity for p in points if p.dram_bytes > 0]
        lo_x = min([0.01] + [x / 4 for x in xs])
        hi_x = max([100.0] + [x * 4 for x in xs])
        lo_y = 1e9
        hi_y = self.gpu.peak_flops_fp32 * 2

        def col(x: float) -> int:
            f = (math.log10(x) - math.log10(lo_x)) / (
                math.log10(hi_x) - math.log10(lo_x)
            )
            return min(width - 1, max(0, int(f * (width - 1))))

        def row(y: float) -> int:
            f = (math.log10(max(y, lo_y)) - math.log10(lo_y)) / (
                math.log10(hi_y) - math.log10(lo_y)
            )
            return min(height - 1, max(0, height - 1 - int(f * (height - 1))))

        canvas = [[" "] * width for _ in range(height)]
        for c in range(width):
            x = 10 ** (
                math.log10(lo_x) + c / (width - 1) * (math.log10(hi_x) - math.log10(lo_x))
            )
            canvas[row(self.ceiling(x, "fp32"))][c] = "="
            r64 = row(self.ceiling(x, "fp64"))
            if canvas[r64][c] == " ":
                canvas[r64][c] = "-"
        for idx, p in enumerate(points, start=1):
            if p.dram_bytes <= 0:
                continue
            canvas[row(p.performance)][col(p.arithmetic_intensity)] = str(idx % 10)

        lines = ["".join(r) for r in canvas]
        legend = [
            f"  [{i}] {p.label}: AI={p.arithmetic_intensity:.3f} FLOP/B, "
            f"{p.performance / 1e9:.1f} GFLOP/s ({p.precision})"
            for i, p in enumerate(points, start=1)
        ]
        header = (
            f"Roofline: {self.gpu.name}  "
            f"(fp32 peak {self.gpu.peak_flops_fp32 / 1e12:.1f} TF/s '=', "
            f"fp64 peak {self.gpu.peak_flops_fp64 / 1e12:.1f} TF/s '-', "
            f"HBM {self.gpu.dram_bandwidth / 1e9:.0f} GB/s)"
        )
        return "\n".join([header, *lines, *legend])
