"""Hardware specifications for the simulated Perlmutter node.

Numbers are taken from Sec. IV of the paper and NVIDIA/AMD public
datasheets. ``*_EFFICIENCY`` constants are the only free parameters of
the cost model; they were calibrated once so the baseline CONUS-12km
per-step time and the stage-1 (CPU-only) speedup land near the paper's
values, then frozen. No experiment adjusts them.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True, slots=True)
class GpuSpec:
    """NVIDIA GPU microarchitecture parameters used by the simulator."""

    name: str
    num_sms: int
    #: Peak double-precision throughput [FLOP/s].
    peak_flops_fp64: float
    #: Peak single-precision throughput [FLOP/s].
    peak_flops_fp32: float
    #: HBM bandwidth [B/s].
    dram_bandwidth: float
    #: Total device memory [bytes].
    memory_bytes: int
    #: Registers per SM (32-bit).
    registers_per_sm: int = 65536
    #: Maximum registers addressable per thread.
    max_registers_per_thread: int = 255
    #: Maximum resident threads per SM.
    max_threads_per_sm: int = 2048
    #: Maximum resident thread blocks per SM.
    max_blocks_per_sm: int = 32
    #: Warp width.
    warp_size: int = 32
    #: Register allocation granularity (per warp, in registers).
    register_allocation_unit: int = 256
    #: Unified L1/tex cache per SM [bytes] (A100: 192 KiB).
    l1_bytes_per_sm: int = 192 * 1024
    #: L2 cache size [bytes] (A100: 40 MiB).
    l2_bytes: int = 40 * 1024 * 1024
    #: Cache line / sector size [bytes].
    line_bytes: int = 32
    #: Kernel launch overhead [s] (includes the OpenMP runtime's
    #: target-region entry cost under nvfortran).
    launch_overhead: float = 12.0e-6
    #: Default CUDA per-thread stack size [bytes] (nvfortran default).
    default_stack_bytes: int = 1024
    #: Default device heap size [bytes].
    default_heap_bytes: int = 8 * 1024 * 1024


@dataclass(frozen=True, slots=True)
class CpuSpec:
    """CPU parameters for the host-side cost model."""

    name: str
    cores: int
    clock_hz: float
    #: Sustained scalar FLOP/s per core for compiler-generated Fortran
    #: loops with heavy branching (calibrated; far below vector peak).
    sustained_flops_per_core: float
    #: Per-socket memory bandwidth [B/s].
    mem_bandwidth: float
    #: Per-core share of memory bandwidth when all cores are active [B/s].
    mem_bandwidth_per_core: float


@dataclass(frozen=True, slots=True)
class LinkSpec:
    """A point-to-point transfer link (PCIe, NIC)."""

    name: str
    latency: float  # [s]
    bandwidth: float  # [B/s]

    def transfer_time(self, nbytes: int) -> float:
        """Time to move ``nbytes`` over the link."""
        if nbytes <= 0:
            return 0.0
        return self.latency + nbytes / self.bandwidth


@dataclass(frozen=True, slots=True)
class NodeSpec:
    """One Perlmutter node: a CPU plus zero or more GPUs."""

    name: str
    cpu: CpuSpec
    gpus_per_node: int
    gpu: GpuSpec | None
    pcie: LinkSpec
    nic: LinkSpec

    def __post_init__(self) -> None:
        if self.gpus_per_node and self.gpu is None:
            raise ValueError("node with GPUs needs a GpuSpec")


#: Perlmutter GPU-node accelerator (most nodes carry the 40 GB part).
A100_40GB = GpuSpec(
    name="NVIDIA A100-SXM4-40GB",
    num_sms=108,
    peak_flops_fp64=9.7e12,
    peak_flops_fp32=19.5e12,
    dram_bandwidth=1555.0e9,
    memory_bytes=40 * 1024**3,
)

A100_80GB = GpuSpec(
    name="NVIDIA A100-SXM4-80GB",
    num_sms=108,
    peak_flops_fp64=9.7e12,
    peak_flops_fp32=19.5e12,
    dram_bandwidth=1935.0e9,
    memory_bytes=80 * 1024**3,
)

#: Perlmutter node CPU. The sustained per-core rate is calibrated for
#: branchy single-thread Fortran physics (FSBM-like), not LINPACK.
EPYC_MILAN = CpuSpec(
    name="AMD EPYC 7763 (Milan)",
    cores=64,
    clock_hz=2.45e9,
    sustained_flops_per_core=2.1e9,
    mem_bandwidth=204.8e9,
    mem_bandwidth_per_core=6.4e9,
)

PCIE_GEN4 = LinkSpec(name="PCIe 4.0 x16", latency=8.0e-6, bandwidth=24.0e9)

SLINGSHOT_11 = LinkSpec(name="HPE Slingshot 11", latency=2.0e-6, bandwidth=22.0e9)

PERLMUTTER_GPU_NODE = NodeSpec(
    name="Perlmutter GPU node",
    cpu=EPYC_MILAN,
    gpus_per_node=4,
    gpu=A100_40GB,
    pcie=PCIE_GEN4,
    nic=SLINGSHOT_11,
)

PERLMUTTER_CPU_NODE = NodeSpec(
    name="Perlmutter CPU node",
    cpu=CpuSpec(
        name="2x AMD EPYC 7763 (Milan)",
        cores=128,
        clock_hz=2.45e9,
        sustained_flops_per_core=2.1e9,
        mem_bandwidth=409.6e9,
        mem_bandwidth_per_core=6.4e9,
    ),
    gpus_per_node=0,
    gpu=None,
    pcie=PCIE_GEN4,
    nic=SLINGSHOT_11,
)
