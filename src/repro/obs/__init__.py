"""Wall-clock observability: span tracer, Perfetto export, kernel metrics.

Everything under :mod:`repro.profiling` *simulates* profiler reports
from :class:`~repro.core.clock.SimClock` buckets; this package measures
where the reproduction's real wall-clock goes. The two share region
names (``solve_em``, ``physics``, ``transport``, ...) so a simulated
gprof table and a measured Perfetto timeline can be read side by side.

* :mod:`repro.obs.tracer` — the low-overhead monotonic-clock span
  tracer (off by default; ``REPRO_TRACE=1`` or ``namelist.trace``);
* :mod:`repro.obs.export` — Chrome/Perfetto ``trace_event`` JSON and
  flat JSONL export, plus the top-N self-time text table;
* :mod:`repro.obs.metrics` — per-span achieved GB/s / GFLOP/s and
  roofline-ceiling percentages, and CountingCache counter snapshots.
"""

from repro.obs import export, metrics, tracer

__all__ = ["export", "metrics", "tracer"]
