"""Low-overhead wall-clock span tracer.

One process-wide ring buffer of finished events, fed by ``with
span(...)`` context managers stamped from ``time.monotonic_ns()``
(CLOCK_MONOTONIC — one clock domain shared by every process on the
host, so per-rank worker timestamps merge onto a single timeline
without skew correction).

Off by default. Tracing turns on via the ``REPRO_TRACE`` environment
variable (checked at import), ``namelist.trace``, or :func:`enable`.
While disabled the hot path allocates nothing: :func:`span` returns a
shared no-op context-manager singleton before touching any argument,
so instrumented code pays one function call, one attribute read, and
one identity test per span. Call sites that want to attach attributes
use the returned span::

    with span("transport", rank=rank) as sp:
        do_work()
        if sp is not None:          # tracing is on
            sp.set(bytes=nbytes, flops=nflops)

so attribute dicts are only built when tracing is live.

Thread-safety: events land in a ``collections.deque`` (appends are
atomic under the GIL), each stamped with its recording thread's id;
per-rank batched execution on the model's thread pool needs no extra
locking. Ring buffering (``maxlen``) means a forgotten long trace
degrades to "keeps the newest N events" instead of unbounded memory.

Worker processes (``repro.wrf.procpool``) record into their own copy
of this module (inherited via fork, re-armed by
:func:`configure_worker`) and ship finished events to the driver with
every command reply; see :func:`drain_state` / :func:`ingest`.
"""

from __future__ import annotations

import os
import threading
import time
from collections import deque
from typing import Iterable

#: Environment switch: any non-empty value turns tracing on at import.
ENABLE_ENV = "REPRO_TRACE"

#: Environment override for the ring-buffer capacity (events).
CAPACITY_ENV = "REPRO_TRACE_CAPACITY"

#: Default ring-buffer capacity (events). At ~10 spans per model step
#: per rank this holds hours of tracing; the ring drops oldest first.
DEFAULT_CAPACITY = 65536

#: Rank recorded for events not owned by any model rank (driver-side
#: orchestration: halo copies in serial mode, history I/O, JIT builds).
DRIVER_RANK = -1


def _env_capacity() -> int:
    raw = os.environ.get(CAPACITY_ENV, "")
    try:
        n = int(raw) if raw else DEFAULT_CAPACITY
    except ValueError:
        return DEFAULT_CAPACITY
    return max(1, n)


class Event:
    """One finished trace event.

    ``ph`` follows the Chrome ``trace_event`` phase vocabulary for the
    subset we record: ``"X"`` complete span (``ts``/``dur`` in ns),
    ``"C"`` counter (``attrs`` holds the series values), ``"I"``
    instant.
    """

    __slots__ = ("name", "cat", "ph", "rank", "tid", "ts", "dur", "attrs")

    def __init__(
        self,
        name: str,
        cat: str,
        ph: str,
        rank: int,
        tid: int,
        ts: int,
        dur: int,
        attrs: dict | None,
    ):
        self.name = name
        self.cat = cat
        self.ph = ph
        self.rank = rank
        self.tid = tid
        self.ts = ts
        self.dur = dur
        self.attrs = attrs

    def to_tuple(self) -> tuple:
        """Pickle-friendly form for shipping over the procpool pipes."""
        return (
            self.name, self.cat, self.ph, self.rank,
            self.tid, self.ts, self.dur, self.attrs,
        )

    @classmethod
    def from_tuple(cls, t: tuple) -> "Event":
        return cls(*t)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Event({self.name!r}, ph={self.ph}, rank={self.rank}, "
            f"ts={self.ts}, dur={self.dur})"
        )


class _NoopSpan:
    """The disabled-path context manager: a shared, stateless singleton."""

    __slots__ = ()

    def __enter__(self):
        return None  # `as sp` binds None => call sites skip attribute work

    def __exit__(self, exc_type, exc, tb):
        return False


_NOOP_SPAN = _NoopSpan()


class _Span:
    """A live span: stamps entry/exit and appends the finished event."""

    __slots__ = ("name", "cat", "rank", "attrs", "_ts")

    def __init__(self, name: str, cat: str, rank: int, attrs: dict | None):
        self.name = name
        self.cat = cat
        self.rank = rank
        self.attrs = attrs
        self._ts = 0

    def set(self, **attrs) -> None:
        """Attach (or update) attributes on the span."""
        if self.attrs is None:
            self.attrs = attrs
        else:
            self.attrs.update(attrs)

    def __enter__(self) -> "_Span":
        self._ts = time.monotonic_ns()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        ts = self._ts
        _events.append(
            Event(
                self.name,
                self.cat,
                "X",
                self.rank,
                threading.get_ident(),
                ts,
                time.monotonic_ns() - ts,
                self.attrs,
            )
        )
        return False


class _RankScope:
    """Sets the thread-local rank spans default to inside the block."""

    __slots__ = ("rank", "_prev")

    def __init__(self, rank: int):
        self.rank = rank
        self._prev = None

    def __enter__(self) -> "_RankScope":
        self._prev = getattr(_tls, "rank", None)
        _tls.rank = self.rank
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if self._prev is None:
            del _tls.rank
        else:
            _tls.rank = self._prev
        return False


# --- module state ------------------------------------------------------------

_enabled: bool = bool(os.environ.get(ENABLE_ENV, ""))
_default_rank: int = DRIVER_RANK
_events: deque = deque(maxlen=_env_capacity())
_tls = threading.local()


def enabled() -> bool:
    """Whether spans are currently being recorded."""
    return _enabled


def enable() -> None:
    """Turn tracing on (idempotent)."""
    global _enabled
    _enabled = True


def disable() -> None:
    """Turn tracing off (idempotent; buffered events stay drainable)."""
    global _enabled
    _enabled = False


def configure(
    enabled: bool | None = None,
    rank: int | None = None,
    capacity: int | None = None,
    clear: bool = False,
) -> None:
    """Adjust tracer state in one call (tests, CLI, worker startup)."""
    global _enabled, _default_rank, _events
    if capacity is not None and capacity != _events.maxlen:
        _events = deque(_events, maxlen=max(1, capacity))
    if clear:
        _events.clear()
    if rank is not None:
        _default_rank = rank
    if enabled is not None:
        _enabled = enabled


def configure_worker(rank: int, trace: bool | None = None) -> None:
    """Re-arm the tracer inside a freshly started rank worker.

    Fork inherits the driver's buffered events — cleared here so the
    worker ships only its own spans — and ``spawn`` workers start with
    a fresh module where only ``REPRO_TRACE`` survives, so the
    namelist's ``trace`` flag is applied explicitly.
    """
    configure(rank=rank, clear=True)
    if trace:
        enable()


def default_rank() -> int:
    """The rank stamped on spans that don't pass one explicitly."""
    return _default_rank


def current_rank() -> int:
    """The rank spans record right now (thread scope, else default)."""
    rank = getattr(_tls, "rank", None)
    return _default_rank if rank is None else rank


def rank_scope(rank: int):
    """Attribute spans recorded in this thread's block to ``rank``.

    Used by the model's serial/thread rank batching so instrumented
    code deeper in the per-rank stages (the FSBM physics) needn't
    thread a rank argument through; worker processes instead set the
    module default via :func:`configure_worker`. No-op while disabled.
    """
    if not _enabled:
        return _NOOP_SPAN
    return _RankScope(rank)


def span(
    name: str,
    rank: int | None = None,
    cat: str = "model",
    attrs: dict | None = None,
):
    """A context manager timing the enclosed block (no-op when disabled).

    The disabled path allocates nothing and returns a shared singleton
    whose ``__enter__`` yields ``None`` — so ``with span(...) as sp:``
    call sites can guard attribute construction on ``sp is not None``.
    """
    if not _enabled:
        return _NOOP_SPAN
    if rank is None:
        rank = getattr(_tls, "rank", None)
        if rank is None:
            rank = _default_rank
    return _Span(name, cat, rank, attrs)


def instant(
    name: str,
    rank: int | None = None,
    cat: str = "model",
    attrs: dict | None = None,
) -> None:
    """Record a zero-duration marker event."""
    if not _enabled:
        return
    _events.append(
        Event(
            name,
            cat,
            "I",
            current_rank() if rank is None else rank,
            threading.get_ident(),
            time.monotonic_ns(),
            0,
            attrs,
        )
    )


def counter(name: str, values: dict, rank: int | None = None) -> None:
    """Record a counter sample (one Perfetto counter track per name).

    ``values`` maps series name to a number, e.g.
    ``counter("cache/fsbm.split_tensor", {"hits": 10, "misses": 2})``.
    """
    if not _enabled:
        return
    _events.append(
        Event(
            name,
            "counter",
            "C",
            current_rank() if rank is None else rank,
            threading.get_ident(),
            time.monotonic_ns(),
            0,
            dict(values),
        )
    )


def events() -> list[Event]:
    """A snapshot of the buffered events (oldest first), not drained."""
    return list(_events)


def drain() -> list[Event]:
    """Remove and return every buffered event (oldest first)."""
    out = []
    try:
        while True:
            out.append(_events.popleft())
    except IndexError:
        pass
    return out


def clear() -> None:
    """Drop all buffered events."""
    _events.clear()


def drain_state() -> list[tuple]:
    """Drain as pickle-friendly tuples (worker -> driver shipping)."""
    return [e.to_tuple() for e in drain()]


def ingest(state: Iterable[tuple]) -> int:
    """Adopt events shipped from another process; returns the count.

    Timestamps are CLOCK_MONOTONIC, shared across processes on the
    host, so ingested events interleave correctly with local ones.
    """
    n = 0
    for t in state:
        _events.append(Event.from_tuple(t))
        n += 1
    return n
