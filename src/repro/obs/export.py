"""Trace export: Chrome/Perfetto ``trace_event`` JSON, JSONL, self-time.

The span tracer records flat :class:`~repro.obs.tracer.Event` objects;
this module turns them into

* a Chrome/Perfetto-loadable trace (``{"traceEvents": [...]}`` with
  balanced ``B``/``E`` duration events, ``C`` counters, and process/
  thread metadata — open the file at https://ui.perfetto.dev), one
  Perfetto "process" per model rank plus one for the driver;
* a flat JSONL event log (one JSON object per line, ns timestamps) for
  ad-hoc analysis with standard tools;
* a top-N *self-time* text table (total minus time in child spans),
  the wall-clock analog of the simulated gprof report.

Rank → pid/tid mapping: Perfetto groups tracks by integer pid, so rank
``r`` exports as ``pid == r`` and driver-side events (rank ``-1``) as
``pid == DRIVER_PID``; raw thread idents are renumbered 1..k per pid in
order of first appearance so timelines stay readable.
"""

from __future__ import annotations

import json
from collections import defaultdict
from pathlib import Path
from typing import Iterable

from repro.obs.tracer import DRIVER_RANK, Event

#: Perfetto pid used for driver-side (rank -1) events.
DRIVER_PID = 9999


def pid_for_rank(rank: int) -> int:
    """The Perfetto pid one tracer rank maps to."""
    return DRIVER_PID if rank < 0 else rank


def _process_name(pid: int) -> str:
    return "driver" if pid == DRIVER_PID else f"rank {pid}"


def _tid_map(events: list[Event]) -> dict[tuple[int, int], int]:
    """Renumber raw thread idents to small per-pid tids (1-based)."""
    mapping: dict[tuple[int, int], int] = {}
    nxt: dict[int, int] = defaultdict(lambda: 1)
    for e in sorted(events, key=lambda e: e.ts):
        key = (pid_for_rank(e.rank), e.tid)
        if key not in mapping:
            mapping[key] = nxt[key[0]]
            nxt[key[0]] += 1
    return mapping


def _span_args(e: Event) -> dict:
    return {} if not e.attrs else dict(e.attrs)


def to_trace_events(events: Iterable[Event]) -> list[dict]:
    """Chrome ``trace_event`` dicts (metadata + sorted B/E/C/I events).

    Span events are emitted as balanced ``B``/``E`` pairs per
    ``(pid, tid)`` — spans recorded by context managers nest properly
    per thread, and the stack-based emission below preserves that
    nesting even for zero-duration spans sharing a timestamp. ``ts``
    is microseconds from the earliest event (Perfetto's native unit).
    """
    evs = list(events)
    if not evs:
        return []
    origin = min(e.ts for e in evs)
    tids = _tid_map(evs)

    def us(ts_ns: int) -> float:
        return (ts_ns - origin) / 1000.0

    out: list[dict] = []
    pids = sorted({pid_for_rank(e.rank) for e in evs})
    for pid in pids:
        out.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "args": {"name": _process_name(pid)},
            }
        )
        out.append(
            {
                "name": "process_sort_index",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "args": {"sort_index": pid},
            }
        )

    # Group spans per (pid, tid); other phases pass through directly.
    groups: dict[tuple[int, int], list[Event]] = defaultdict(list)
    timed: list[dict] = []
    for e in evs:
        pid, tid = pid_for_rank(e.rank), tids[(pid_for_rank(e.rank), e.tid)]
        if e.ph == "X":
            groups[(pid, tid)].append(e)
        elif e.ph == "C":
            timed.append(
                {
                    "name": e.name,
                    "ph": "C",
                    "ts": us(e.ts),
                    "pid": pid,
                    "tid": tid,
                    "args": _span_args(e),
                }
            )
        else:  # instant
            timed.append(
                {
                    "name": e.name,
                    "cat": e.cat,
                    "ph": "i",
                    "s": "t",
                    "ts": us(e.ts),
                    "pid": pid,
                    "tid": tid,
                    "args": _span_args(e),
                }
            )

    for (pid, tid), spans in groups.items():
        # Sort children after parents: earlier start first, longer
        # duration first on ties (the parent of a zero-gap child).
        spans.sort(key=lambda e: (e.ts, -e.dur))
        stack: list[Event] = []

        def emit_end(s: Event) -> None:
            timed.append(
                {
                    "name": s.name,
                    "ph": "E",
                    "ts": us(s.ts + s.dur),
                    "pid": pid,
                    "tid": tid,
                }
            )

        for s in spans:
            while stack and stack[-1].ts + stack[-1].dur <= s.ts:
                emit_end(stack.pop())
            timed.append(
                {
                    "name": s.name,
                    "cat": s.cat,
                    "ph": "B",
                    "ts": us(s.ts),
                    "pid": pid,
                    "tid": tid,
                    "args": _span_args(s),
                }
            )
            stack.append(s)
        while stack:
            emit_end(stack.pop())

    # Stable sort keeps each group's internally consistent B/E order
    # while interleaving groups onto one global timeline.
    timed.sort(key=lambda d: d["ts"])
    return out + timed


def write_trace(events: Iterable[Event], path: str | Path) -> Path:
    """Write a Perfetto-loadable ``trace.json``; returns the path."""
    path = Path(path)
    payload = {
        "traceEvents": to_trace_events(events),
        "displayTimeUnit": "ms",
    }
    path.write_text(json.dumps(payload) + "\n")
    return path


def write_jsonl(events: Iterable[Event], path: str | Path) -> Path:
    """Write the flat event log (one JSON object per line, ns units)."""
    path = Path(path)
    with path.open("w") as fh:
        for e in events:
            fh.write(
                json.dumps(
                    {
                        "name": e.name,
                        "cat": e.cat,
                        "ph": e.ph,
                        "rank": e.rank,
                        "tid": e.tid,
                        "ts_ns": e.ts,
                        "dur_ns": e.dur,
                        "attrs": e.attrs or {},
                    }
                )
                + "\n"
            )
    return path


def self_times(events: Iterable[Event]) -> dict[str, dict]:
    """Aggregate span totals and self-times by span name.

    Self-time is a span's duration minus the duration of its direct
    children, reconstructed per ``(rank, tid)`` from the timestamps
    (context-manager spans nest properly per thread). Returns
    ``{name: {count, total_ns, self_ns}}``.
    """
    groups: dict[tuple[int, int], list[Event]] = defaultdict(list)
    for e in events:
        if e.ph == "X":
            groups[(e.rank, e.tid)].append(e)

    agg: dict[str, dict] = defaultdict(
        lambda: {"count": 0, "total_ns": 0, "self_ns": 0}
    )
    for spans in groups.values():
        spans.sort(key=lambda e: (e.ts, -e.dur))
        stack: list[tuple[Event, int]] = []  # (span, child time so far)

        def close(entry: tuple[Event, int]) -> None:
            s, child_ns = entry
            a = agg[s.name]
            a["count"] += 1
            a["total_ns"] += s.dur
            a["self_ns"] += max(0, s.dur - child_ns)
            if stack:
                parent, acc = stack[-1]
                stack[-1] = (parent, acc + s.dur)

        for s in spans:
            while stack and stack[-1][0].ts + stack[-1][0].dur <= s.ts:
                close(stack.pop())
            stack.append((s, 0))
        while stack:
            close(stack.pop())
    return dict(agg)


def self_time_table(events: Iterable[Event], top: int = 12) -> str:
    """The top-N self-time text table (wall-clock gprof analog)."""
    evs = list(events)
    agg = self_times(evs)
    if not agg:
        return "no spans recorded (is tracing enabled?)"
    wall_ns = max(
        (e.ts + e.dur for e in evs if e.ph == "X"), default=0
    ) - min((e.ts for e in evs if e.ph == "X"), default=0)
    rows = sorted(agg.items(), key=lambda kv: kv[1]["self_ns"], reverse=True)
    lines = [
        f"{'span':<28} {'count':>6} {'total ms':>10} {'self ms':>10} {'self %':>7}"
    ]
    for name, a in rows[:top]:
        pct = 100.0 * a["self_ns"] / wall_ns if wall_ns else 0.0
        lines.append(
            f"{name:<28} {a['count']:>6} {a['total_ns'] / 1e6:>10.3f} "
            f"{a['self_ns'] / 1e6:>10.3f} {pct:>6.1f}%"
        )
    return "\n".join(lines)


def rank_ids(events: Iterable[Event]) -> list[int]:
    """Sorted ranks present in a trace (driver rank included as -1)."""
    return sorted({e.rank for e in events})


__all__ = [
    "DRIVER_PID",
    "DRIVER_RANK",
    "pid_for_rank",
    "to_trace_events",
    "write_trace",
    "write_jsonl",
    "self_times",
    "self_time_table",
    "rank_ids",
]
