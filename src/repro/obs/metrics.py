"""Measured per-span kernel metrics against the roofline model.

The engine's instrumented spans carry the work they did (``bytes``
moved, ``flops`` executed — the same accounting the benchmark harness
records in its ``extra`` payloads and the halo plan charges as MPI
bytes); combined with the measured span duration that yields achieved
GB/s and GFLOP/s, which :func:`annotate` places against a
:class:`~repro.hardware.roofline.RooflineModel` ceiling:

* ``gb_s`` / ``gflop_s`` — achieved bandwidth and throughput;
* ``ai`` — arithmetic intensity [FLOP/B];
* ``roofline_pct`` — percent of the attainable ceiling at that
  intensity (compute- and bandwidth-aware);
* ``bw_pct`` — percent of the bandwidth ceiling alone (set for pure
  data-movement spans like halo exchange, where ``flops == 0``).

The default ceiling is :func:`host_roofline` — a *nominal* model of
the paper's host socket (EPYC 7763: sustained FLOP rate x cores, and
the socket's memory bandwidth), reusing the existing
:class:`RooflineModel` machinery. It is a yardstick, not a measurement
of the machine the trace ran on; traces record which model annotated
them.

:func:`emit_cache_counters` snapshots every registered
:class:`~repro.core.cache.CountingCache` into Perfetto counter tracks
(hits / misses / bytes held), so cache behavior lines up with the span
timeline.
"""

from __future__ import annotations

from repro.core.cache import cache_stats
from repro.hardware.roofline import RooflineModel
from repro.hardware.specs import EPYC_MILAN, CpuSpec, GpuSpec
from repro.obs import tracer
from repro.obs.tracer import Event


def host_nominal_spec(cpu: CpuSpec = EPYC_MILAN) -> GpuSpec:
    """A nominal host-socket 'roofline device' built from a CpuSpec.

    :class:`RooflineModel` speaks :class:`GpuSpec`, so the socket is
    expressed in those terms: fp64 peak = sustained scalar rate x
    cores (the calibrated branchy-Fortran rate, not LINPACK), fp32
    twice that, and the socket's memory bandwidth as the 'DRAM'
    ceiling.
    """
    peak64 = cpu.sustained_flops_per_core * cpu.cores
    return GpuSpec(
        name=f"host-nominal ({cpu.name})",
        num_sms=cpu.cores,
        peak_flops_fp64=peak64,
        peak_flops_fp32=2.0 * peak64,
        dram_bandwidth=cpu.mem_bandwidth,
        memory_bytes=256 * 1024**3,
    )


def host_roofline(cpu: CpuSpec = EPYC_MILAN) -> RooflineModel:
    """The default (nominal host-socket) roofline for trace annotation."""
    return RooflineModel(gpu=host_nominal_spec(cpu))


def annotate(
    events: list[Event],
    model: RooflineModel | None = None,
    precision: str = "fp64",
) -> int:
    """Derive achieved-rate/roofline attributes on work-carrying spans.

    Mutates the ``attrs`` of every span event that recorded ``bytes``
    or ``flops``; returns how many spans were annotated. Idempotent
    (re-annotation overwrites the derived keys).
    """
    if model is None:
        model = host_roofline()
    n = 0
    for e in events:
        if e.ph != "X" or not e.attrs or e.dur <= 0:
            continue
        nbytes = float(e.attrs.get("bytes", 0.0) or 0.0)
        flops = float(e.attrs.get("flops", 0.0) or 0.0)
        if nbytes <= 0.0 and flops <= 0.0:
            continue
        dur_s = e.dur * 1e-9
        if nbytes > 0.0:
            gb_s = nbytes / dur_s / 1e9
            e.attrs["gb_s"] = round(gb_s, 3)
            e.attrs["bw_pct"] = round(
                100.0 * nbytes / dur_s / model.gpu.dram_bandwidth, 3
            )
        if flops > 0.0:
            e.attrs["gflop_s"] = round(flops / dur_s / 1e9, 3)
        if flops > 0.0 and nbytes > 0.0:
            ai = flops / nbytes
            ceiling = model.ceiling(ai, precision)
            e.attrs["ai"] = round(ai, 4)
            if ceiling > 0.0:
                e.attrs["roofline_pct"] = round(
                    100.0 * (flops / dur_s) / ceiling, 3
                )
        e.attrs["roofline_model"] = model.gpu.name
        n += 1
    return n


def emit_cache_counters(rank: int | None = None, prefix: str = "cache/") -> int:
    """Snapshot every registered CountingCache as trace counters.

    One counter track per cache (``cache/<name>``) carrying hits,
    misses and bytes held. No-op (returns 0) while tracing is off.
    """
    if not tracer.enabled():
        return 0
    n = 0
    for name, info in sorted(cache_stats().items()):
        tracer.counter(f"{prefix}{name}", info.counter_values(), rank=rank)
        n += 1
    return n


__all__ = [
    "annotate",
    "emit_cache_counters",
    "host_nominal_spec",
    "host_roofline",
]
