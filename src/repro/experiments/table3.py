"""Table III — speedups from removing ``kernals_ks`` (lookup optimization).

Paper values: fast_sbm 1.83x current/cumulative; Overall 1.42x.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.common import (
    BenchConfig,
    PaperValue,
    comparison_lines,
    config_for,
    sequence_for,
)
from repro.optim.speedup import SpeedupRow, format_speedup_table

PAPER = {"fast_sbm": 1.83, "Overall": 1.42}


@dataclass(frozen=True)
class Table3Result:
    rows: list[SpeedupRow]

    def format_table(self) -> str:
        return format_speedup_table(
            self.rows,
            "Table III — speedups from removal of kernals_ks",
        )

    def speedup_of(self, name: str) -> float:
        for r in self.rows:
            if r.name == name:
                return r.current_speedup
        raise KeyError(name)

    def compare_to_paper(self) -> str:
        values = [
            PaperValue(name, paper, self.speedup_of(name), "x")
            for name, paper in PAPER.items()
        ]
        return comparison_lines(values, "Table III: paper vs measured")


def run(quick: bool = True, config: BenchConfig | None = None) -> Table3Result:
    """Run baseline + lookup stages and form the speedup rows."""
    cfg = config or config_for(quick)
    sequence = sequence_for(cfg)
    return Table3Result(rows=sequence.table3())
