"""Table II — the WRF build/runtime configuration on Perlmutter.

Not a measurement: the paper's Table II records compilers, flags, and
the NVHPC runtime environment. This module renders the simulated
equivalent so harness output carries the same provenance block, and
checks that our :data:`repro.core.env.PAPER_ENV` matches it.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.env import PAPER_ENV, OffloadEnv
from repro.hardware.specs import A100_40GB, EPYC_MILAN

PAPER_ROWS = (
    ("Compilers", "NVHPC 23.9"),
    ("Compiler flags", "-pg -mp=gpu -target-accel=nvidia80 -lvhpcwrapnvtx"),
    ("NV_ACC_CUDA_STACKSIZE", "65536 (Table II prints the typo'd 63336)"),
    ("NV_ACC_CUDA_HEAPSIZE", "64MB"),
)


@dataclass(frozen=True)
class Table2Result:
    env: OffloadEnv

    def format_table(self) -> str:
        lines = ["Table II — configuration of WRF on Perlmutter (simulated)"]
        for k, v in PAPER_ROWS:
            lines.append(f"{k:<24} {v}")
        lines.append("")
        lines.append("simulated equivalents:")
        lines.append(f"{'GPU':<24} {A100_40GB.name}")
        lines.append(f"{'CPU':<24} {EPYC_MILAN.name}")
        lines.append(f"{'stack_bytes':<24} {self.env.stack_bytes}")
        lines.append(f"{'heap_bytes':<24} {self.env.heap_bytes}")
        lines.append(f"{'block size':<24} {self.env.block_size}")
        return "\n".join(lines)

    def compare_to_paper(self) -> str:
        ok_stack = self.env.stack_bytes == 65536
        ok_heap = self.env.heap_bytes == 64 * 1024**2
        return (
            "Table II: environment "
            + ("matches" if ok_stack and ok_heap else "DIFFERS from")
            + " the paper's NVHPC settings"
        )


def run(quick: bool = True) -> Table2Result:
    """Return the configured environment block."""
    return Table2Result(env=PAPER_ENV)
