"""Shared configuration and paper-vs-measured helpers for experiments."""

from __future__ import annotations

import functools
from dataclasses import dataclass

from repro.optim.pipeline import OptimizationRun, run_optimization_sequence
from repro.optim.projection import WorkRates
from repro.wrf.namelist import Namelist, conus12km_namelist


@dataclass(frozen=True)
class BenchConfig:
    """The standard reduced configuration behind the live experiments.

    The paper runs the full 425 x 300 x 50 CONUS-12km grid with 16
    ranks for 120 steps; live Python physics runs the same case at
    reduced horizontal extents and step counts. ``quick`` (default for
    tests) is smaller still.
    """

    scale: float = 0.12
    num_ranks: int = 4
    num_steps: int = 4
    seed: int = 2024

    @classmethod
    def quick(cls) -> "BenchConfig":
        return cls(scale=0.06, num_ranks=4, num_steps=2)

    @classmethod
    def full(cls) -> "BenchConfig":
        return cls(scale=0.12, num_ranks=4, num_steps=6)

    def namelist(self, **overrides) -> Namelist:
        kw = dict(num_ranks=self.num_ranks, seed=self.seed)
        kw.update(overrides)
        return conus12km_namelist(scale=self.scale, **kw)


def config_for(quick: bool) -> BenchConfig:
    return BenchConfig.quick() if quick else BenchConfig.full()


@dataclass(frozen=True, slots=True)
class PaperValue:
    """One paper-reported number next to our measurement."""

    name: str
    paper: float
    measured: float
    unit: str = ""

    @property
    def ratio(self) -> float:
        if self.paper == 0:
            return float("inf")
        return self.measured / self.paper


def comparison_lines(values: list[PaperValue], title: str = "") -> str:
    """Readable paper-vs-measured block."""
    lines = []
    if title:
        lines.append(title)
    width = max((len(v.name) for v in values), default=8)
    lines.append(
        f"{'':{width}}  {'paper':>10}  {'measured':>10}  {'ratio':>7}"
    )
    for v in values:
        lines.append(
            f"{v.name:{width}}  {v.paper:>10.3f}  {v.measured:>10.3f}  "
            f"{v.ratio:>6.2f}x {v.unit}"
        )
    return "\n".join(lines)


@functools.lru_cache(maxsize=4)
def cached_sequence(
    scale: float, num_ranks: int, num_steps: int, seed: int
) -> OptimizationRun:
    """Run (once) the four-stage optimization sequence for a config.

    Tables III, IV and V all read from the same sequence; caching keeps
    the benchmark suite from rerunning the physics three times.
    """
    cfg = BenchConfig(
        scale=scale, num_ranks=num_ranks, num_steps=num_steps, seed=seed
    )
    return run_optimization_sequence(cfg.namelist(), num_steps=cfg.num_steps)


def sequence_for(config: BenchConfig) -> OptimizationRun:
    return cached_sequence(
        config.scale, config.num_ranks, config.num_steps, config.seed
    )


@functools.lru_cache(maxsize=2)
def cached_rates(scale: float, num_ranks: int, num_steps: int) -> WorkRates:
    """Measure (once) the projection work rates."""
    return WorkRates.measure(
        scale=scale, num_ranks=num_ranks, num_steps=num_steps
    )
