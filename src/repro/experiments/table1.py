"""Table I — hotspot time contribution, gprof vs Nsight Systems.

Paper values (CONUS-12km, baseline code, 16 MPI tasks):

=================  ======  ===============
Routine            gprof   Nsight Systems
=================  ======  ===============
fast_sbm           51.39   77.07
rk_scalar_tend     28.07   10.15
rk_update_scalar    6.361   1.504
=================  ======  ===============

gprof aggregates across ranks; the Nsight column profiles a single,
heavily loaded task — the spread between the two is load imbalance.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.common import BenchConfig, PaperValue, comparison_lines, config_for
from repro.optim.stages import Stage
from repro.profiling.gprof import TABLE1_ROUTINES, GprofReport
from repro.profiling.nsight_systems import NsysReport
from repro.wrf.model import WrfModel

PAPER_GPROF = {
    "fast_sbm": 51.39,
    "rk_scalar_tend": 28.07,
    "rk_update_scalar": 6.361,
}
PAPER_NSYS = {
    "fast_sbm": 77.07,
    "rk_scalar_tend": 10.15,
    "rk_update_scalar": 1.504,
}


@dataclass(frozen=True)
class Table1Result:
    gprof: GprofReport
    nsys: NsysReport

    def format_table(self) -> str:
        lines = [
            "Table I — time contribution (%) of the top hotspots",
            f"{'Routine':<18} {'gprof':>8} {'Nsight Systems':>15}",
        ]
        for name in TABLE1_ROUTINES:
            lines.append(
                f"{name:<18} {self.gprof.percent_of(name):>8.2f} "
                f"{self.nsys.percent_of(name):>15.2f}"
            )
        return "\n".join(lines)

    def compare_to_paper(self) -> str:
        values = []
        for name in TABLE1_ROUTINES:
            values.append(
                PaperValue(
                    f"{name} (gprof)", PAPER_GPROF[name], self.gprof.percent_of(name), "%"
                )
            )
            values.append(
                PaperValue(
                    f"{name} (nsys)", PAPER_NSYS[name], self.nsys.percent_of(name), "%"
                )
            )
        return comparison_lines(values, "Table I: paper vs measured")


def run(quick: bool = True, config: BenchConfig | None = None) -> Table1Result:
    """Profile the baseline code and build both reports."""
    cfg = config or config_for(quick)
    model = WrfModel(cfg.namelist(stage=Stage.BASELINE))
    try:
        result = model.run(num_steps=cfg.num_steps)
    finally:
        model.close()
    return Table1Result(
        gprof=GprofReport.from_run(result, TABLE1_ROUTINES),
        nsys=NsysReport.from_run(result),
    )
