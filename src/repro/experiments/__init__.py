"""Experiment harness: one module per table/figure of the paper.

Every experiment exposes a ``run(quick: bool = True)`` function that
returns a result object with a ``format_table()`` rendering and a
``compare_to_paper()`` summary. ``repro.experiments.runner`` drives the
full set and writes EXPERIMENTS-style output.
"""

from repro.experiments.common import BenchConfig, PaperValue, comparison_lines
from repro.experiments import (
    table1,
    table2,
    table3,
    table4,
    table5,
    table6,
    table7,
    figure3,
    figure4,
    verification,
)
from repro.experiments.runner import run_all, ExperimentOutcome

__all__ = [
    "BenchConfig",
    "PaperValue",
    "comparison_lines",
    "table1",
    "table2",
    "table3",
    "table4",
    "table5",
    "table6",
    "table7",
    "figure3",
    "figure4",
    "verification",
    "run_all",
    "ExperimentOutcome",
]
