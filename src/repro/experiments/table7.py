"""Table VII — total speedups, baseline vs fully optimized.

Paper values:

==============  =============  ====================  =============
Configuration   baseline [s]   all optimizations [s]  total speedup
==============  =============  ====================  =============
16 ranks        1211.45        581.2                 2.08x
32 ranks        655.1          360.1                 1.82x
64 ranks        471.7          303.03                1.56x
2 nodes         379.8          397.1                 0.956x
==============  =============  ====================  =============
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments import figure4
from repro.experiments.common import BenchConfig, PaperValue, comparison_lines

PAPER_SPEEDUPS = {"16 ranks": 2.08, "32 ranks": 1.82, "64 ranks": 1.56, "2 nodes": 0.956}


@dataclass(frozen=True)
class Table7Result:
    figure4_result: "figure4.Figure4Result"

    def speedup(self, group: str) -> float:
        base = self.figure4_result.seconds(group, "baseline")
        final = self.figure4_result.seconds(group, "gpu")
        return base / final if final else float("inf")

    def format_table(self) -> str:
        lines = [
            "Table VII — timing and speedup, baseline vs final GPU version",
            f"{'Configuration':<14} {'baseline (s)':>13} "
            f"{'all opts (s)':>13} {'speedup':>9}",
        ]
        for label, *_ in figure4.GROUPS:
            lines.append(
                f"{label:<14} "
                f"{self.figure4_result.seconds(label, 'baseline'):>13.1f} "
                f"{self.figure4_result.seconds(label, 'gpu'):>13.1f} "
                f"{self.speedup(label):>8.2f}x"
            )
        return "\n".join(lines)

    def compare_to_paper(self) -> str:
        values = [
            PaperValue(label, paper, self.speedup(label), "x")
            for label, paper in PAPER_SPEEDUPS.items()
        ]
        return comparison_lines(values, "Table VII: paper vs measured")


def run(quick: bool = True, config: BenchConfig | None = None) -> Table7Result:
    """Reuse the Fig. 4 projections to form the speedup table."""
    return Table7Result(figure4_result=figure4.run(quick=quick, config=config))
