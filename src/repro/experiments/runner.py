"""Drive every experiment and render a combined report.

``python -m repro.experiments.runner [--quick]`` regenerates every
table and figure with paper-vs-measured blocks — the content of
EXPERIMENTS.md.
"""

from __future__ import annotations

import sys
import time
from dataclasses import dataclass

from repro.experiments import (
    figure3,
    figure4,
    table1,
    table2,
    table3,
    table4,
    table5,
    table6,
    table7,
    verification,
)

ALL_EXPERIMENTS = (
    ("Table I", table1),
    ("Table II", table2),
    ("Table III", table3),
    ("Table IV", table4),
    ("Table V", table5),
    ("Table VI", table6),
    ("Figure 3", figure3),
    ("Figure 4", figure4),
    ("Table VII", table7),
    ("Verification (Sec. VII-B)", verification),
)


@dataclass(frozen=True)
class ExperimentOutcome:
    """One experiment's rendered output."""

    name: str
    table: str
    comparison: str
    seconds: float

    def render(self) -> str:
        return (
            f"{'=' * 72}\n{self.name}  (ran in {self.seconds:.1f} s)\n"
            f"{'-' * 72}\n{self.table}\n\n{self.comparison}\n"
        )


def run_all(quick: bool = True) -> list[ExperimentOutcome]:
    """Run every experiment; exceptions propagate (nothing is skipped)."""
    outcomes = []
    for name, mod in ALL_EXPERIMENTS:
        start = time.perf_counter()
        result = mod.run(quick=quick)
        elapsed = time.perf_counter() - start
        outcomes.append(
            ExperimentOutcome(
                name=name,
                table=result.format_table(),
                comparison=result.compare_to_paper(),
                seconds=elapsed,
            )
        )
    return outcomes


def main(argv: list[str] | None = None) -> int:
    args = argv if argv is not None else sys.argv[1:]
    quick = "--quick" in args
    for outcome in run_all(quick=quick):
        print(outcome.render())
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
