"""Table IV — speedups from offloading the collision loop, collapse(2).

Paper values: coal_bott_new loop 6.47x, fast_sbm 1.54x (2.67x
cumulative), Overall 1.33x (2.09x cumulative).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.common import (
    BenchConfig,
    PaperValue,
    comparison_lines,
    config_for,
    sequence_for,
)
from repro.optim.speedup import SpeedupRow, format_speedup_table

PAPER_CURRENT = {"coal_bott_new loop": 6.47, "fast_sbm": 1.54, "Overall": 1.33}
PAPER_CUMULATIVE = {"coal_bott_new loop": 6.47, "fast_sbm": 2.67, "Overall": 2.09}


@dataclass(frozen=True)
class Table4Result:
    rows: list[SpeedupRow]

    def format_table(self) -> str:
        return format_speedup_table(
            self.rows,
            "Table IV — speedups from offloading the outer 2 grid-level loops",
        )

    def row(self, name: str) -> SpeedupRow:
        for r in self.rows:
            if r.name == name:
                return r
        raise KeyError(name)

    def compare_to_paper(self) -> str:
        values = []
        for name in PAPER_CURRENT:
            r = self.row(name)
            values.append(
                PaperValue(f"{name} (cur)", PAPER_CURRENT[name], r.current_speedup, "x")
            )
            values.append(
                PaperValue(
                    f"{name} (cum)", PAPER_CUMULATIVE[name], r.cumulative_speedup, "x"
                )
            )
        return comparison_lines(values, "Table IV: paper vs measured")


def run(quick: bool = True, config: BenchConfig | None = None) -> Table4Result:
    """Run through the collapse(2) stage and form the speedup rows."""
    cfg = config or config_for(quick)
    return Table4Result(rows=sequence_for(cfg).table4())
