"""Table V — speedups from the full collapse(3) with temp_arrays pointers.

Paper values: coal_bott_new loop 10.3x (66.6x cumulative), fast_sbm
1.12x (2.99x cumulative), Overall 1.05x (2.20x cumulative).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.common import (
    BenchConfig,
    PaperValue,
    comparison_lines,
    config_for,
    sequence_for,
)
from repro.optim.speedup import SpeedupRow, format_speedup_table

PAPER_CURRENT = {"coal_bott_new loop": 10.3, "fast_sbm": 1.12, "Overall": 1.05}
PAPER_CUMULATIVE = {"coal_bott_new loop": 66.6, "fast_sbm": 2.99, "Overall": 2.20}


@dataclass(frozen=True)
class Table5Result:
    rows: list[SpeedupRow]

    def format_table(self) -> str:
        return format_speedup_table(
            self.rows,
            "Table V — speedups from the full collapse via removal of "
            "automatic arrays",
        )

    def row(self, name: str) -> SpeedupRow:
        for r in self.rows:
            if r.name == name:
                return r
        raise KeyError(name)

    def compare_to_paper(self) -> str:
        values = []
        for name in PAPER_CURRENT:
            r = self.row(name)
            values.append(
                PaperValue(f"{name} (cur)", PAPER_CURRENT[name], r.current_speedup, "x")
            )
            values.append(
                PaperValue(
                    f"{name} (cum)", PAPER_CUMULATIVE[name], r.cumulative_speedup, "x"
                )
            )
        return comparison_lines(values, "Table V: paper vs measured")


def run(quick: bool = True, config: BenchConfig | None = None) -> Table5Result:
    """Run through the collapse(3) stage and form the speedup rows."""
    cfg = config or config_for(quick)
    return Table5Result(rows=sequence_for(cfg).table5())
