"""Figure 4 — total elapsed time across versions and rank counts.

Paper setup: 16 GPUs fixed on 4 nodes while CPU ranks grow 16 -> 32 ->
64; the rightmost group compares 2 CPU nodes (256 ranks) against 2 GPU
nodes (40 ranks + 8 GPUs). Three code versions per group: CPU baseline,
CPU + lookup optimization, and the final GPU collapse(3) code. I/O is
included.

This experiment uses the cost projection (full 425 x 300 x 50 extents,
exact per-patch activity census, live-measured work rates) — see
`repro.optim.projection` for what is measured versus modeled.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.common import BenchConfig, PaperValue, comparison_lines, config_for, cached_rates
from repro.optim.projection import ProjectedRun, WorkRates, project_run
from repro.optim.stages import Stage
from repro.wrf.namelist import conus12km_namelist

#: Paper's Fig. 4 elapsed times [s] where stated in the text/Table VII.
PAPER_SECONDS = {
    ("baseline", 16): 1211.45,
    ("gpu", 16): 581.2,
    ("baseline", 32): 655.1,
    ("gpu", 32): 360.1,
    ("baseline", 64): 471.7,
    ("gpu", 64): 303.03,
    ("baseline", 256): 379.8,
    ("gpu", 40): 397.1,
}

#: The Fig. 4 groups: (label, cpu ranks, gpu ranks, gpus).
GROUPS = (
    ("16 ranks", 16, 16, 16),
    ("32 ranks", 32, 32, 16),
    ("64 ranks", 64, 64, 16),
    ("2 nodes", 256, 40, 8),
)


@dataclass(frozen=True)
class Figure4Result:
    #: runs[group_label][version] -> ProjectedRun; versions are
    #: "baseline", "lookup", "gpu".
    runs: dict[str, dict[str, ProjectedRun]]

    def seconds(self, group: str, version: str) -> float:
        return self.runs[group][version].total_seconds

    def format_table(self) -> str:
        lines = [
            "Figure 4 — total elapsed time [s] for the 10-minute CONUS-12km run",
            f"{'group':<10} {'CPU baseline':>13} {'CPU lookup':>11} {'GPU (c3)':>10}",
        ]
        for label, *_ in GROUPS:
            lines.append(
                f"{label:<10} {self.seconds(label, 'baseline'):>13.1f} "
                f"{self.seconds(label, 'lookup'):>11.1f} "
                f"{self.seconds(label, 'gpu'):>10.1f}"
            )
        return "\n".join(lines)

    def compare_to_paper(self) -> str:
        values = []
        for label, cpu_ranks, gpu_ranks, _ in GROUPS:
            values.append(
                PaperValue(
                    f"{label} baseline",
                    PAPER_SECONDS[("baseline", cpu_ranks)],
                    self.seconds(label, "baseline"),
                    "s",
                )
            )
            values.append(
                PaperValue(
                    f"{label} gpu",
                    PAPER_SECONDS[("gpu", gpu_ranks)],
                    self.seconds(label, "gpu"),
                    "s",
                )
            )
        return comparison_lines(values, "Figure 4: paper vs measured")


def run(
    quick: bool = True,
    config: BenchConfig | None = None,
    rates: WorkRates | None = None,
) -> Figure4Result:
    """Project every Fig. 4 configuration."""
    cfg = config or config_for(quick)
    if rates is None:
        rates = cached_rates(cfg.scale, cfg.num_ranks, cfg.num_steps)
    runs: dict[str, dict[str, ProjectedRun]] = {}
    for label, cpu_ranks, gpu_ranks, gpus in GROUPS:
        group: dict[str, ProjectedRun] = {}
        group["baseline"] = project_run(
            conus12km_namelist(num_ranks=cpu_ranks, stage=Stage.BASELINE), rates
        )
        group["lookup"] = project_run(
            conus12km_namelist(num_ranks=cpu_ranks, stage=Stage.LOOKUP), rates
        )
        group["gpu"] = project_run(
            conus12km_namelist(
                num_ranks=gpu_ranks,
                stage=Stage.OFFLOAD_COLLAPSE3,
                num_gpus=gpus,
            ),
            rates,
        )
        runs[label] = group
    return Figure4Result(runs=runs)
