"""Figure 3 — roofline placement of the offloaded collision kernels.

The paper's roofline shows four points: the collapse(2) and collapse(3)
kernels in single and double precision. The collapse(3) pair sits
higher (closer to the memory roofline) and to the *left* (lower
arithmetic intensity, from the strided ``*_temp`` traffic); all points
sit far below the compute ceilings.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.common import BenchConfig, config_for
from repro.experiments.table6 import collect_kernel_metrics
from repro.hardware.roofline import RooflineModel, RooflinePoint
from repro.hardware.specs import A100_40GB
from repro.optim.stages import Stage


@dataclass(frozen=True)
class Figure3Result:
    model: RooflineModel
    points: list[RooflinePoint]

    def format_table(self) -> str:
        header = (
            "Figure 3 — GPU roofline for the collision kernel "
            "(collapse(2)/collapse(3), SP/DP)\n"
        )
        return header + self.model.render_ascii(self.points)

    def point(self, label: str) -> RooflinePoint:
        for p in self.points:
            if p.label == label:
                return p
        raise KeyError(label)

    def compare_to_paper(self) -> str:
        c2 = self.point("collapse(2) fp32")
        c3 = self.point("collapse(3) fp32")
        checks = [
            (
                "collapse(3) attains higher GFLOP/s than collapse(2)",
                c3.performance > c2.performance,
            ),
            (
                "collapse(3) has lower arithmetic intensity (more DRAM traffic)",
                c3.arithmetic_intensity < c2.arithmetic_intensity,
            ),
            (
                "both kernels sit well below the compute roofline",
                all(
                    self.model.efficiency(p) < 0.5
                    for p in self.points
                ),
            ),
            (
                "collapse(3) approaches the memory roofline (>10% of ceiling)",
                self.model.efficiency(c3) > 0.10,
            ),
        ]
        lines = ["Figure 3: qualitative checks against the paper"]
        for name, ok in checks:
            lines.append(f"  [{'ok' if ok else 'MISS'}] {name}")
        return "\n".join(lines)


def run(quick: bool = True, config: BenchConfig | None = None) -> Figure3Result:
    """Collect the four roofline points (SP and DP, both collapses)."""
    cfg = config or config_for(quick)
    points: list[RooflinePoint] = []
    for stage, tag in (
        (Stage.OFFLOAD_COLLAPSE2, "collapse(2)"),
        (Stage.OFFLOAD_COLLAPSE3, "collapse(3)"),
    ):
        for precision in ("fp32", "fp64"):
            metrics = collect_kernel_metrics(stage, cfg, precision=precision)
            points.append(metrics.roofline_point(f"{tag} {precision}"))
    return Figure3Result(model=RooflineModel(gpu=A100_40GB), points=points)
