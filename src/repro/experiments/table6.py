"""Table VI — Nsight Compute metrics for the two offloaded kernels.

Paper values (collision kernel, single rank):

========================  ===========  =======================
Metric                    collapse(2)  collapse(3) w/ pointers
========================  ===========  =======================
Time (ms)                 335.85       29.11
Achieved occupancy (%)    4.63         35.67
L1/TEX hit rate (%)       84.82        61.43
L2 hit rate (%)           95.84        69.28
Writes to DRAM (GB)       0.785        4.290
Reads from DRAM (GB)      0.654        10.24
========================  ===========  =======================

The *directions* are the reproduction target: the full collapse slashes
kernel time and multiplies occupancy while cache hit rates fall and
DRAM traffic rises (strided ``*_temp`` accesses).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from repro.core.env import PAPER_ENV
from repro.experiments.common import BenchConfig, PaperValue, comparison_lines, config_for
from repro.optim.stages import Stage
from repro.profiling.nsight_compute import NcuKernelMetrics, NcuReport, format_table6
from repro.wrf.model import WrfModel

PAPER = {
    "time_ratio_c2_over_c3": 335.85 / 29.11,
    "occupancy_c2": 4.63,
    "occupancy_c3": 35.67,
    "l1_c2": 84.82,
    "l1_c3": 61.43,
    "l2_c2": 95.84,
    "l2_c3": 69.28,
    "dram_write_ratio": 4.290 / 0.785,
    "dram_read_ratio": 10.24 / 0.654,
}


@dataclass(frozen=True)
class Table6Result:
    collapse2: NcuKernelMetrics
    collapse3: NcuKernelMetrics

    def format_table(self) -> str:
        return (
            "Table VI — Nsight Compute metrics for the two offloaded codes\n"
            + format_table6(self.collapse2, self.collapse3)
        )

    def compare_to_paper(self) -> str:
        c2, c3 = self.collapse2, self.collapse3
        values = [
            PaperValue(
                "time c2/c3",
                PAPER["time_ratio_c2_over_c3"],
                c2.time_ms / c3.time_ms if c3.time_ms else float("inf"),
                "x",
            ),
            PaperValue("occupancy c2", PAPER["occupancy_c2"], c2.achieved_occupancy_pct, "%"),
            PaperValue("occupancy c3", PAPER["occupancy_c3"], c3.achieved_occupancy_pct, "%"),
            PaperValue("L1 hit c2", PAPER["l1_c2"], c2.l1_hit_rate_pct, "%"),
            PaperValue("L1 hit c3", PAPER["l1_c3"], c3.l1_hit_rate_pct, "%"),
            PaperValue("L2 hit c2", PAPER["l2_c2"], c2.l2_hit_rate_pct, "%"),
            PaperValue("L2 hit c3", PAPER["l2_c3"], c3.l2_hit_rate_pct, "%"),
            PaperValue(
                "DRAM W c3/c2",
                PAPER["dram_write_ratio"],
                c3.dram_write_gb / c2.dram_write_gb if c2.dram_write_gb else float("inf"),
                "x",
            ),
            PaperValue(
                "DRAM R c3/c2",
                PAPER["dram_read_ratio"],
                c3.dram_read_gb / c2.dram_read_gb if c2.dram_read_gb else float("inf"),
                "x",
            ),
        ]
        return comparison_lines(values, "Table VI: paper vs measured")


def collect_kernel_metrics(
    stage: Stage,
    cfg: BenchConfig,
    precision: str = "fp32",
    num_steps: int | None = None,
) -> NcuKernelMetrics:
    """Profile the collision kernel at the paper's launch geometry.

    ncu profiled one full-size CONUS-12km rank (a ~107 x 50 x 75 patch),
    so the launch geometry — which sets occupancy — must use the full
    extents. The kernel's work content comes from the activity census
    and live-measured work rates (the same machinery as Fig. 4); the
    engine then launches it once per model step on a fresh device and
    the records aggregate exactly as ``ncu --launch-count`` would.
    """
    from repro.core.device import Device
    from repro.core.directives import TargetTeamsDistributeParallelDo
    from repro.core.engine import OffloadEngine
    from repro.core.clock import SimClock
    from repro.core.kernel import Kernel
    from repro.experiments.common import cached_rates
    from repro.fsbm.coal_bott import CoalWorkStats
    from repro.fsbm.collision_kernels import get_tables
    from repro.fsbm.fast_sbm import coal_kernel_resources
    from repro.fsbm.temp_arrays import TempArrays
    from repro.constants import NKR
    from repro.grid.decomposition import decompose_domain
    from repro.optim.projection import domain_activity_census
    from repro.optim.stages import STAGE_SPECS
    from repro.wrf.namelist import conus12km_namelist

    steps = num_steps if num_steps is not None else cfg.num_steps
    rates = cached_rates(cfg.scale, cfg.num_ranks, cfg.num_steps)
    nl = conus12km_namelist(num_ranks=16, stage=stage, num_gpus=16, env=PAPER_ENV)
    dec = decompose_domain(nl.domain, nl.num_ranks)
    census = domain_activity_census(nl)
    # The rank ncu attaches to: the busiest one.
    rank = max(range(len(census)), key=lambda r: census[r])
    patch = dec.patches[rank]
    coal_cells = int(census[rank] * rates.coal_growth)

    spec = STAGE_SPECS[stage]
    work = CoalWorkStats(
        active_points=coal_cells,
        kernel_entries=coal_cells * rates.ondemand_entries_per_coal_cell,
        pair_entries=coal_cells * rates.pair_entries_per_coal_cell,
    )
    resources = coal_kernel_resources(
        spec, work, coal_cells, NKR, precision=precision
    )
    kernel = Kernel(
        name="coal_bott_new_loop",
        loop_extents=(patch.j.size, patch.k.size, patch.i.size),
        resources=resources,
        body=None,
    )
    engine = OffloadEngine(device=Device(), env=PAPER_ENV, clock=SimClock())
    try:
        if stage is Stage.OFFLOAD_COLLAPSE3:
            TempArrays(patch.shape).allocate(engine)
        directive = TargetTeamsDistributeParallelDo(collapse=spec.collapse)
        for _ in range(max(1, steps)):
            engine.launch(kernel, directive)
        report = NcuReport.from_records(list(engine.records), precision=precision)
        return report.kernel("coal_bott_new_loop")
    finally:
        engine.close()


def run(quick: bool = True, config: BenchConfig | None = None) -> Table6Result:
    """Profile the collapse(2) and collapse(3) collision kernels."""
    cfg = config or config_for(quick)
    return Table6Result(
        collapse2=collect_kernel_metrics(Stage.OFFLOAD_COLLAPSE2, cfg),
        collapse3=collect_kernel_metrics(Stage.OFFLOAD_COLLAPSE3, cfg),
    )
