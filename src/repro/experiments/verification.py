"""Sec. VII-B — output verification with ``diffwrf``.

The paper compares CPU and GPU runs of the same case: state variables
(velocities, temperature, pressure) retain 3-6 significant digits of
agreement and microphysics variables 1-5 digits (the GPU's fused
multiply-adds, square-root implementation, and single precision move
the bits).

Here the baseline (float64 host arithmetic) and the collapse(3) version
(float32 device arithmetic for the collision step) run the identical
case; ``diffwrf`` measures the agreement of the final output frames.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.env import PAPER_ENV
from repro.experiments.common import BenchConfig, config_for
from repro.optim.stages import Stage
from repro.wrf.diffwrf import DiffField, diffwrf, format_diff_report
from repro.wrf.model import WrfModel

#: Paper digit bands per field class.
PAPER_STATE_DIGITS = (3.0, 6.0)
PAPER_MICRO_DIGITS = (1.0, 5.0)

STATE_FIELDS = ("T", "QVAPOR", "W")
MICRO_FIELDS = ("QCLOUD_TOTAL", "RAINNC")


@dataclass(frozen=True)
class VerificationResult:
    diffs: list[DiffField]

    def field(self, name: str) -> DiffField:
        for d in self.diffs:
            if d.name == name:
                return d
        raise KeyError(name)

    def format_table(self) -> str:
        return (
            "Sec. VII-B — diffwrf comparison, CPU baseline vs GPU collapse(3)\n"
            + format_diff_report(self.diffs)
        )

    def compare_to_paper(self) -> str:
        lines = ["Verification: digits of agreement (paper: state 3-6, micro 1-5)"]
        for name in STATE_FIELDS:
            d = self.field(name)
            lines.append(f"  {name:<14} {d.digits:5.2f} digits")
        for name in MICRO_FIELDS:
            d = self.field(name)
            lines.append(f"  {name:<14} {d.digits:5.2f} digits")
        return "\n".join(lines)


def run(quick: bool = True, config: BenchConfig | None = None) -> VerificationResult:
    """Run the same case under both codes and diff the outputs."""
    cfg = config or config_for(quick)
    frames = {}
    for tag, stage in (("cpu", Stage.BASELINE), ("gpu", Stage.OFFLOAD_COLLAPSE3)):
        if stage.uses_gpu:
            nl = cfg.namelist(stage=stage, num_gpus=cfg.num_ranks, env=PAPER_ENV)
        else:
            nl = cfg.namelist(stage=stage)
        model = WrfModel(nl)
        try:
            model.run(num_steps=cfg.num_steps)
            frames[tag] = model.gather_output()
        finally:
            model.close()
    return VerificationResult(diffs=diffwrf(frames["cpu"], frames["gpu"]))
