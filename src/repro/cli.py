"""Top-level command line: run the model, stages, or experiments.

::

    python -m repro run --stage baseline --scale 0.1 --ranks 4 --steps 4
    python -m repro stages --scale 0.1 --ranks 4 --steps 4
    python -m repro experiments [--quick]
    python -m repro scaling
    python -m repro bench [--quick] [--gate] [--workers N ...] [--members N ...]

``run`` executes one configuration and prints the profile; ``stages``
walks the four optimization stages and prints Tables III-V;
``experiments`` regenerates every table/figure; ``scaling`` projects
the Fig. 4 / Table VII configurations; ``bench`` times the repo's own
wall-clock hot kernels and gates them against the committed
``BENCH_*.json`` baseline.
"""

from __future__ import annotations

import argparse
import sys

from repro.optim.stages import Stage


def cmd_run(args: argparse.Namespace) -> int:
    from repro.core.env import PAPER_ENV
    from repro.profiling.gprof import TABLE1_ROUTINES, GprofReport
    from repro.profiling.nsight_systems import NsysReport
    from repro.wrf.model import WrfModel
    from repro.wrf.namelist import conus12km_namelist

    stage = Stage(args.stage)
    kw = dict(scale=args.scale, num_ranks=args.ranks, stage=stage)
    if stage.uses_gpu:
        kw.update(num_gpus=args.gpus or args.ranks, env=PAPER_ENV)
        if args.offload_condensation:
            kw["offload_condensation"] = True
        if args.offload_advection:
            kw["offload_advection"] = True
    nl = conus12km_namelist(**kw)
    print(
        f"running {stage.value} on a {nl.domain.nx}x{nl.domain.ny}x"
        f"{nl.domain.nz} grid, {nl.num_ranks} ranks, {args.steps} steps"
    )
    model = WrfModel(nl)
    try:
        result = model.run(num_steps=args.steps)
    finally:
        model.close()
    print(f"\nsimulated per-step elapsed: {result.per_step_elapsed * 1e3:.2f} ms")
    print(
        f"projected 10-minute run:    {result.projected_total():.1f} s "
        "(paper's Fig. 4 axis)"
    )
    print()
    print(GprofReport.from_run(result, TABLE1_ROUTINES).format_table())
    print()
    print(NsysReport.from_run(result).format_table())
    return 0


def cmd_stages(args: argparse.Namespace) -> int:
    from repro.optim.pipeline import run_optimization_sequence
    from repro.optim.speedup import format_speedup_table
    from repro.wrf.namelist import conus12km_namelist

    nl = conus12km_namelist(scale=args.scale, num_ranks=args.ranks)
    sequence = run_optimization_sequence(nl, num_steps=args.steps)
    print(format_speedup_table(sequence.table3(), "Table III (lookup):"))
    print()
    print(format_speedup_table(sequence.table4(), "Table IV (collapse(2)):"))
    print()
    print(format_speedup_table(sequence.table5(), "Table V (collapse(3)):"))
    return 0


def cmd_experiments(args: argparse.Namespace) -> int:
    from repro.experiments.runner import run_all

    for outcome in run_all(quick=args.quick):
        print(outcome.render())
    return 0


def cmd_scaling(args: argparse.Namespace) -> int:
    from repro.experiments import figure4, table7

    result = table7.run(quick=args.quick)
    print(result.figure4_result.format_table())
    print()
    print(result.format_table())
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    """Run a few steps with the wall-clock tracer on; export the trace.

    Writes a Chrome/Perfetto-loadable ``trace.json`` (open it at
    https://ui.perfetto.dev) with one process timeline per model rank,
    roofline-annotated kernel spans, and cache counter tracks, then
    prints the top-N self-time table. ``--overhead`` additionally times
    the same run with tracing off and reports the tracer's wall-clock
    cost.
    """
    import json
    import time
    from pathlib import Path

    from repro.obs import export, metrics, tracer
    from repro.wrf.model import WrfModel
    from repro.wrf.namelist import conus12km_namelist

    cfg = {}
    if args.config:
        cfg = json.loads(Path(args.config).read_text())

    def pick(cli_value, key, default):
        if cli_value is not None:
            return cli_value
        return cfg.get(key, default)

    scale = pick(args.scale, "scale", 0.12)
    ranks = pick(args.ranks, "ranks", 2)
    steps = pick(args.steps, "steps", 3)
    stage = Stage(pick(args.stage, "stage", "lookup"))
    procs = bool(pick(
        False if args.serial else None, "process_ranks", True
    ))

    def build(trace: bool) -> "WrfModel":
        kw = dict(
            scale=scale,
            num_ranks=ranks,
            stage=stage,
            trace=trace,
            use_process_ranks=procs,
        )
        if stage.uses_gpu:
            kw["num_gpus"] = ranks
        return WrfModel(conus12km_namelist(**kw))

    def timed_run(trace: bool) -> float:
        model = build(trace)
        try:
            model.step()  # warm JIT/caches outside the timed window
            t0 = time.perf_counter()
            for _ in range(steps):
                model.step()
            return (time.perf_counter() - t0) / steps
        finally:
            model.close()

    print(
        f"tracing {stage.value} at scale {scale}, {ranks} "
        f"{'process' if procs else 'thread'} ranks, {steps} steps"
    )
    tracer.configure(clear=True)
    model = build(trace=True)
    try:
        model.run(num_steps=steps)
    finally:
        model.close()  # flushes worker-side spans through the pool
    metrics.emit_cache_counters(tracer.DRIVER_RANK)
    events = tracer.drain()
    annotated = metrics.annotate(events)

    out = Path(args.output)
    export.write_trace(events, out)
    spans = sum(1 for e in events if e.ph == "X")
    counters = sum(1 for e in events if e.ph == "C")
    print(
        f"wrote {out}: {spans} spans / {counters} counter samples, "
        f"ranks {export.rank_ids(events)}, {annotated} spans "
        "roofline-annotated (load in https://ui.perfetto.dev)"
    )
    if args.jsonl:
        print(f"wrote {export.write_jsonl(events, args.jsonl)}")
    print()
    print(export.self_time_table(events, top=args.top))

    if args.overhead:
        tracer.configure(enabled=False, clear=True)
        base = timed_run(trace=False)
        traced = timed_run(trace=True)
        tracer.configure(enabled=False, clear=True)
        pct = 100.0 * (traced - base) / base if base > 0 else 0.0
        print(
            f"\ntracing overhead: {base * 1e3:.2f} ms/step off vs "
            f"{traced * 1e3:.2f} ms/step on ({pct:+.2f}%)"
        )
    return 0


def _load_harness():
    """Import ``benchmarks.harness`` from an installed or in-tree layout."""
    import importlib

    try:
        return importlib.import_module("benchmarks.harness")
    except ModuleNotFoundError:
        from pathlib import Path

        root = Path(__file__).resolve().parents[2]
        if str(root) not in sys.path:
            sys.path.insert(0, str(root))
        return importlib.import_module("benchmarks.harness")


def cmd_bench(args: argparse.Namespace) -> int:
    """Wall-clock benchmarks of the repo's real hot kernels.

    Exit codes follow the ``codee verify`` contract: 0 = ok,
    1 = could not run (e.g. no baseline), 2 = a tracked kernel
    regressed past the threshold.
    """
    harness = _load_harness()
    trace_path = getattr(args, "trace", None)
    if trace_path:
        from repro.obs import tracer

        tracer.configure(enabled=True, clear=True)
    payload = harness.collect(
        quick=args.quick,
        kernels=args.kernel or None,
        workers=getattr(args, "workers", None) or None,
        members=getattr(args, "members", None) or None,
    )
    if trace_path:
        from repro.obs import export, metrics, tracer

        metrics.emit_cache_counters(tracer.DRIVER_RANK)
        events = tracer.drain()
        tracer.disable()
        metrics.annotate(events)
        print(f"wrote {export.write_trace(events, trace_path)}")
    for name, k in sorted(payload["kernels"].items()):
        line = f"{name:<20} median {k['median_s'] * 1e3:9.3f} ms   reps {k['reps']}"
        extra = k.get("extra", {})
        speedup = extra.get("speedup_vs_w1", extra.get("speedup_vs_solo"))
        if speedup is not None:
            line += f"   speedup x{speedup:.2f}"
        print(line)

    out = None
    if not args.no_write:
        out = harness.default_output_path(args.rev)
        harness.write_payload(payload, out)
        print(f"wrote {out}")

    if not args.gate:
        return 0
    if args.baseline:
        baseline_path = args.baseline
    else:
        baseline_path = harness.find_baseline(exclude=out)
    if baseline_path is None:
        print("bench gate: no committed BENCH_*.json baseline found")
        return 1
    baseline = harness.load_payload(baseline_path)
    print(f"gating against {baseline_path} (rev {baseline.get('revision')})")
    findings = harness.compare_payloads(payload, baseline, threshold=args.threshold)
    for f in findings:
        print(f.render(args.threshold))
    if not findings:
        print("bench gate: no tracked kernels shared with the baseline")
        return 1
    return harness.gate_exit_code(findings)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description=sys.modules["repro"].PAPER
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_run = sub.add_parser("run", help="run one configuration")
    p_run.add_argument(
        "--stage",
        default="baseline",
        choices=[s.value for s in Stage],
    )
    p_run.add_argument("--scale", type=float, default=0.1)
    p_run.add_argument("--ranks", type=int, default=4)
    p_run.add_argument("--gpus", type=int, default=0)
    p_run.add_argument("--steps", type=int, default=4)
    p_run.add_argument("--offload-condensation", action="store_true")
    p_run.add_argument("--offload-advection", action="store_true")
    p_run.set_defaults(func=cmd_run)

    p_st = sub.add_parser("stages", help="walk the optimization sequence")
    p_st.add_argument("--scale", type=float, default=0.1)
    p_st.add_argument("--ranks", type=int, default=4)
    p_st.add_argument("--steps", type=int, default=4)
    p_st.set_defaults(func=cmd_stages)

    p_ex = sub.add_parser("experiments", help="regenerate every table/figure")
    p_ex.add_argument("--quick", action="store_true")
    p_ex.set_defaults(func=cmd_experiments)

    p_sc = sub.add_parser("scaling", help="Fig. 4 / Table VII projection")
    p_sc.add_argument("--quick", action="store_true")
    p_sc.set_defaults(func=cmd_scaling)

    p_bm = sub.add_parser(
        "bench", help="time the repo's real hot kernels / regression gate"
    )
    p_bm.add_argument("--quick", action="store_true")
    p_bm.add_argument(
        "--gate",
        action="store_true",
        help="compare against the committed baseline (exit 2 on regression)",
    )
    p_bm.add_argument("--rev", help="revision label for the BENCH_<rev>.json name")
    p_bm.add_argument("--baseline", help="explicit baseline JSON to gate against")
    p_bm.add_argument("--threshold", type=float, default=0.15)
    p_bm.add_argument(
        "--kernel",
        action="append",
        help="benchmark only this kernel (repeatable)",
    )
    p_bm.add_argument(
        "--no-write", action="store_true", help="don't write BENCH_<rev>.json"
    )
    p_bm.add_argument(
        "--workers",
        action="append",
        type=int,
        help="also run the multiprocess strong-scaling sweep at this "
        "worker count (repeatable, e.g. --workers 1 --workers 4)",
    )
    p_bm.add_argument(
        "--members",
        action="append",
        type=int,
        help="also run the member-batched ensemble bench at this member "
        "count (repeatable, e.g. --members 2 --members 8)",
    )
    p_bm.add_argument(
        "--trace",
        metavar="PATH",
        help="record the benchmark run with the wall-clock tracer and "
        "write a Perfetto trace.json to PATH",
    )
    p_bm.set_defaults(func=cmd_bench)

    p_tr = sub.add_parser(
        "trace",
        help="run a few traced steps; export a Perfetto trace + self-times",
    )
    p_tr.add_argument(
        "config",
        nargs="?",
        help="JSON config (e.g. examples/trace_smoke.json) with "
        "scale/ranks/steps/stage/process_ranks; flags override it",
    )
    p_tr.add_argument("--scale", type=float)
    p_tr.add_argument("--ranks", type=int)
    p_tr.add_argument("--steps", type=int)
    p_tr.add_argument("--stage", choices=[s.value for s in Stage])
    p_tr.add_argument(
        "--serial",
        action="store_true",
        help="keep ranks in-process (thread batching) instead of the "
        "multiprocess pool",
    )
    p_tr.add_argument("-o", "--output", default="trace.json")
    p_tr.add_argument("--jsonl", metavar="PATH", help="also write flat JSONL")
    p_tr.add_argument("--top", type=int, default=12)
    p_tr.add_argument(
        "--overhead",
        action="store_true",
        help="also time the identical run untraced and report the delta",
    )
    p_tr.set_defaults(func=cmd_trace)
    return parser


def main(argv: list[str] | None = None) -> int:
    import repro  # noqa: F401  (PAPER used in the parser description)

    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via main()
    raise SystemExit(main())
