"""Microphysics state: binned size distributions on a patch.

Number concentrations are stored per species as ``(ni, nk, nj, nkr)``
arrays in units of cm^-3 per bin, plus a CCN reservoir. The canonical
host copy is float64; offloaded stages compute on float32 device
mirrors, which is what produces the genuine digit differences that the
``diffwrf`` verification (Sec. VII-B) measures.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.constants import NKR
from repro.errors import ConfigurationError
from repro.fsbm.bins import BinGrid
from repro.fsbm.species import Species, species_bins

#: Number concentrations below this are treated as empty bins [cm^-3].
N_EPS = 1.0e-12


@dataclass
class MicroState:
    """All hydrometeor distributions on one patch (i, k, j, bin)."""

    shape: tuple[int, int, int]
    nkr: int = NKR
    dists: dict[Species, np.ndarray] = field(default_factory=dict)
    #: Available cloud condensation nuclei [cm^-3].
    ccn: np.ndarray = field(default=None)  # type: ignore[assignment]
    #: Accumulated surface precipitation mass [g/cm^2] (diagnostic).
    precip: np.ndarray = field(default=None)  # type: ignore[assignment]
    #: Optional ``(ni, nk, nj, nsp * nkr)`` view covering every species'
    #: bins contiguously (set by :meth:`bind_packed` when the dists live
    #: in a superblock); lets moment reductions run as one contraction.
    packed: np.ndarray | None = None
    #: Concatenated per-species bin masses matching ``packed``'s layout.
    packed_masses: np.ndarray | None = None

    def __post_init__(self) -> None:
        if len(self.shape) != 3 or min(self.shape) < 1:
            raise ConfigurationError("state shape must be a positive 3-tuple")
        full = (*self.shape, self.nkr)
        for sp in Species:
            if sp not in self.dists:
                self.dists[sp] = np.zeros(full)
            elif self.dists[sp].shape != full:
                raise ConfigurationError(
                    f"distribution for {sp} has shape {self.dists[sp].shape}, "
                    f"expected {full}"
                )
        if self.ccn is None:
            self.ccn = np.full(self.shape, 100.0)  # continental background
        if self.precip is None:
            self.precip = np.zeros((self.shape[0], self.shape[2]))

    # --- moments -------------------------------------------------------------

    def number(self, sp: Species) -> np.ndarray:
        """Total number concentration [cm^-3], shape (ni, nk, nj)."""
        return self.dists[sp].sum(axis=-1)

    def mass(self, sp: Species, bins: BinGrid | None = None) -> np.ndarray:
        """Mass content [g/cm^3], shape (ni, nk, nj)."""
        grid = bins or species_bins()[sp]
        return self.dists[sp] @ grid.masses

    def bind_packed(self, packed: np.ndarray) -> None:
        """Register a packed all-species bin view (superblock storage).

        ``packed`` must cover exactly the species distributions in
        :class:`Species` order, each ``dists[sp]`` being the matching
        ``nkr``-wide slice of it. Callers that lay the dists out inside
        a superblock (:meth:`repro.wrf.state.WrfFields.bind_block`) call
        this so :meth:`total_condensate_mass` can contract all species
        in one pass.
        """
        nsp = len(Species)
        if packed.shape != (*self.shape, nsp * self.nkr):
            raise ConfigurationError(
                f"packed view has shape {packed.shape}, expected "
                f"{(*self.shape, nsp * self.nkr)}"
            )
        grids = species_bins()
        self.packed = packed
        self.packed_masses = np.concatenate(
            [grids[sp].masses for sp in Species]
        )

    def total_condensate_mass(self) -> np.ndarray:
        """Summed mass content over all species [g/cm^3].

        With a packed view bound this is a single matvec over the
        concatenated bins (same values as the per-species loop to
        float-summation-order differences, ~1e-15 relative).
        """
        if self.packed is not None:
            return self.packed @ self.packed_masses
        grids = species_bins()
        out = np.zeros(self.shape)
        for sp in Species:
            out += self.mass(sp, grids[sp])
        return out

    def occupied_bins(self, sp: Species) -> np.ndarray:
        """Highest occupied bin index + 1 per cell (0 = species absent).

        This is the loop bound a scalar implementation would discover,
        and it drives the on-demand kernel-entry count of the lookup
        optimization.
        """
        present = self.dists[sp] > N_EPS
        # Highest True along the bin axis, +1; 0 when none.
        rev = present[..., ::-1]
        first = np.argmax(rev, axis=-1)
        any_present = present.any(axis=-1)
        return np.where(any_present, self.nkr - first, 0)

    # --- bookkeeping ----------------------------------------------------------

    def copy(self) -> "MicroState":
        """Deep copy (used by stage-equivalence tests)."""
        return MicroState(
            shape=self.shape,
            nkr=self.nkr,
            dists={sp: d.copy() for sp, d in self.dists.items()},
            ccn=self.ccn.copy(),
            precip=self.precip.copy(),
        )

    def view(self, slices: tuple[slice, slice, slice]) -> "MicroState":
        """A sub-region view sharing memory with this state.

        Used by the model driver to run microphysics on the owned
        (non-halo) region of a halo-extended allocation: mutations
        through the view land in the parent arrays.
        """
        i_sl, k_sl, j_sl = slices
        dists = {sp: d[i_sl, k_sl, j_sl] for sp, d in self.dists.items()}
        shape = next(iter(dists.values())).shape[:3]
        sub = MicroState(
            shape=shape,
            nkr=self.nkr,
            dists=dists,
            ccn=self.ccn[slices],
            precip=self.precip[i_sl, j_sl],
        )
        if self.packed is not None:
            sub.packed = self.packed[i_sl, k_sl, j_sl]
            sub.packed_masses = self.packed_masses
        return sub

    def clip_negatives(self) -> float:
        """Zero tiny negative concentrations; returns the mass removed."""
        grids = species_bins()
        removed = 0.0
        for sp, d in self.dists.items():
            neg = d < 0.0
            if neg.any():
                neg_vals = np.where(neg, d, 0.0)
                removed -= float(
                    neg_vals.reshape(-1, self.nkr).sum(axis=0) @ grids[sp].masses
                )
                d[neg] = 0.0
        return removed

    def seed_cloud(
        self,
        mask: np.ndarray,
        lwc: float = 1.0e-6,
        mean_bin: int = 8,
        spread: float = 3.0,
    ) -> None:
        """Insert a lognormal-ish droplet spectrum where ``mask`` is True.

        ``lwc`` is the liquid water content [g/cm^3] (1e-6 = 1 g/m^3).
        Used by test cases to create spatially heterogeneous activity.
        """
        grid = species_bins()[Species.LIQUID]
        k = np.arange(self.nkr)
        shape = np.exp(-0.5 * ((k - mean_bin) / spread) ** 2)
        mass_of_shape = shape @ grid.masses
        spectrum = shape * (lwc / mass_of_shape)
        self.dists[Species.LIQUID][mask] += spectrum
