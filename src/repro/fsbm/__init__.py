"""Fast Spectral-Bin Microphysics (FSBM) — the paper's hot routine.

A real 33-bin spectral bin microphysics scheme with the same
computational structure as WRF's ``module_mp_fast_sbm``:

* a mass-doubling bin grid (`repro.fsbm.bins`),
* analytic collision-kernel lookup tables at 750/500 mb with linear
  pressure interpolation (`repro.fsbm.collision_kernels`), both as the
  baseline ``kernals_ks`` full precompute and as the paper's on-demand
  ``get_cw*`` accessor functions,
* a Bott-style mass-conserving collision–coalescence step
  (`repro.fsbm.coal_bott`),
* nucleation (``jernucl01_ks``), condensation (``onecond1/2``),
  sedimentation, and freezing/melting,
* the staged ``fast_sbm`` driver whose variants differ exactly as the
  paper's code versions do (`repro.fsbm.fast_sbm`).
"""

from repro.fsbm.bins import BinGrid, LIQUID_BINS, ICE_BINS
from repro.fsbm.species import (
    Species,
    Interaction,
    INTERACTIONS,
    interactions_for_regime,
)
from repro.fsbm.coal_bott import CoalSelection, CoalWorkStats
from repro.fsbm.collision_kernels import KernelTables, get_tables
from repro.fsbm.state import MicroState
from repro.fsbm.fast_sbm import FastSBM, SbmStepStats

__all__ = [
    "BinGrid",
    "LIQUID_BINS",
    "ICE_BINS",
    "Species",
    "Interaction",
    "INTERACTIONS",
    "interactions_for_regime",
    "CoalSelection",
    "CoalWorkStats",
    "KernelTables",
    "get_tables",
    "MicroState",
    "FastSBM",
    "SbmStepStats",
]
