"""The ``temp_arrays`` module of the paper's Listing 8.

Authoritative registry of the Fortran automatic arrays inside
``coal_bott_new`` (Listing 7). Two numbers fall out of it:

* :func:`automatic_frame_bytes` — the per-call stack frame those arrays
  occupy, which is what overflows the device stack under ``collapse(3)``;
* :class:`TempArrays` — the stage-3 replacement: one preallocated
  device array per temporary, shaped ``(nkr[, icemax], ni, nk, nj)`` so
  each grid point's thread points at its own slice. Its total footprint
  is the "uses more space overall" cost the paper accepts, and (with
  the stack reservation) what limits ranks-per-GPU.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.constants import ICEMAX, NKR
from repro.core.directives import Map, MapType, TargetEnterData, TargetExitData
from repro.core.engine import OffloadEngine

#: (name, per-point shape) of every automatic array in coal_bott_new.
#: Names follow the Fortran: drop/ice size-distribution work arrays
#: (fl*, ff*), growth integrals (g*), per-species mass/velocity ladders,
#: and collision accumulators (psi*).
AUTOMATIC_ARRAYS: tuple[tuple[str, tuple[int, ...]], ...] = (
    ("fl1", (NKR,)),
    ("fl2", (NKR,)),
    ("fl3", (NKR,)),
    ("fl4", (NKR,)),
    ("fl5", (NKR,)),
    ("ff1", (NKR,)),
    ("ff2", (NKR,)),
    ("ff3", (NKR,)),
    ("ff4", (NKR,)),
    ("ff5", (NKR,)),
    ("g1", (NKR,)),
    ("g2", (NKR, ICEMAX)),
    ("g3", (NKR,)),
    ("g4", (NKR,)),
    ("g5", (NKR,)),
    ("e1", (NKR, ICEMAX)),
    ("e2", (NKR, ICEMAX)),
    ("xl_d", (NKR,)),
    ("xs_d", (NKR,)),
    ("xg_d", (NKR,)),
    ("xh_d", (NKR,)),
    ("vrl", (NKR,)),
    ("vrs", (NKR,)),
    ("vrg", (NKR,)),
    ("vrh", (NKR,)),
    ("psi1", (NKR,)),
    ("psi2", (NKR,)),
    ("psi3", (NKR,)),
    ("dropradii", (NKR,)),
    ("conc_old", (NKR,)),
)

#: Element size of the single-precision Fortran reals.
ELEM_BYTES = 4

#: Number of full sweeps over the frame one coal_bott_new call makes
#: (fill, collide, accumulate back) — drives the frame traffic model.
FRAME_SWEEPS = 6


def automatic_frame_bytes() -> int:
    """Bytes of automatic arrays in one ``coal_bott_new`` call frame."""
    total = 0
    for _, shape in AUTOMATIC_ARRAYS:
        n = 1
        for s in shape:
            n *= s
        total += n * ELEM_BYTES
    return total


def per_point_temp_bytes() -> int:
    """Device bytes per grid point of the stage-3 ``*_temp`` arrays."""
    return automatic_frame_bytes()


@dataclass
class TempArrays:
    """Stage-3 preallocated device temporaries (``fl1_temp`` etc.).

    Allocated once per rank at model start via
    ``!$omp target enter data map(alloc: ...)`` and released at the end,
    exactly as the paper's ``temp_arrays`` module does.
    """

    shape: tuple[int, int, int]
    allocated: bool = False

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(f"{name}_temp" for name, _ in AUTOMATIC_ARRAYS)

    def enter_data_directive(self) -> TargetEnterData:
        """The allocation directive of the Listing 8 module."""
        return TargetEnterData(maps=(Map(MapType.ALLOC, self.names),))

    def exit_data_directive(self) -> TargetExitData:
        return TargetExitData(maps=(Map(MapType.RELEASE, self.names),))

    def device_shapes(self) -> dict[str, tuple[int, ...]]:
        """Full device shapes ``(bin dims..., ni, nk, nj)`` per array."""
        ni, nk, nj = self.shape
        return {
            f"{name}_temp": (*per_point, ni, nk, nj)
            for name, per_point in AUTOMATIC_ARRAYS
        }

    def total_bytes(self) -> int:
        """Device memory the module pins for the whole patch."""
        ni, nk, nj = self.shape
        return per_point_temp_bytes() * ni * nk * nj

    def allocate(self, engine: OffloadEngine) -> None:
        """Run the enter-data allocation on a rank's engine."""
        if self.allocated:
            return
        engine.enter_data(self.enter_data_directive(), shapes=self.device_shapes())
        self.allocated = True

    def release(self, engine: OffloadEngine) -> None:
        """Release the module arrays (model shutdown)."""
        if not self.allocated:
            return
        for name in self.names:
            engine.ctx.free_array(name)
        self.allocated = False
