"""Pure-Python scalar reference for the collision step.

This is the Fortran-shaped implementation: explicit loops over grid
points, collision pairs ``(i, j)``, and on-demand ``get_cw**`` calls —
exactly the control flow of ``coal_bott_new`` after the paper's stage-1
rewrite, without any vectorization. It is far too slow for production
but serves as the ground truth the vectorized `repro.fsbm.coal_bott`
is validated against, and as executable documentation of the
algorithm.
"""

from __future__ import annotations

import numpy as np

from repro.fsbm.bins import BinGrid
from repro.fsbm.coal_bott import COAL_N_MIN
from repro.fsbm.collision_kernels import KernelTables
from repro.fsbm.species import Interaction, Species


def coal_bott_reference_point(
    n: dict[Species, np.ndarray],
    temperature: float,
    pressure_mb: float,
    dt: float,
    tables: KernelTables,
    interactions: tuple[Interaction, ...],
) -> dict[Species, np.ndarray]:
    """One grid point's collision step, scalar loops throughout.

    ``n`` maps species to 1-D ``(nkr,)`` number concentrations; a new
    dict of updated concentrations is returned. Mirrors the vectorized
    implementation's event/limiter/split algorithm term by term.
    """
    nkr = len(next(iter(n.values())))
    grid = BinGrid(nkr=nkr)
    out = {sp: arr.astype(float).copy() for sp, arr in n.items()}

    for ix in interactions:
        if not ix.active_at(temperature):
            continue
        a = out[ix.collector]
        b = out[ix.collected]
        if a.sum() <= COAL_N_MIN or b.sum() <= COAL_N_MIN:
            continue

        # Unordered pair-event rates with on-demand kernel entries.
        events = np.zeros((nkr, nkr))
        for i in range(nkr):
            if a[i] <= 0.0:
                continue
            for j in range(nkr):
                if b[j] <= 0.0:
                    continue
                kern = tables.get_cw(ix.name, i + 1, j + 1, pressure_mb)
                events[i, j] = kern * a[i] * b[j]
        if ix.self_collection:
            events *= 0.5

        # Limiter: no bin loses more than it holds.
        if ix.self_collection:
            loss = events.sum(axis=1) + events.sum(axis=0)
            f = np.minimum(1.0, a / np.maximum(loss * dt, 1e-30))
            for i in range(nkr):
                for j in range(nkr):
                    events[i, j] *= f[i] * f[j]
        else:
            loss_a = events.sum(axis=1)
            loss_b = events.sum(axis=0)
            f_a = np.minimum(1.0, a / np.maximum(loss_a * dt, 1e-30))
            f_b = np.minimum(1.0, b / np.maximum(loss_b * dt, 1e-30))
            for i in range(nkr):
                for j in range(nkr):
                    events[i, j] *= f_a[i] * f_b[j]

        # Losses and the Kovetz-Olund gain split.
        gain = np.zeros(nkr)
        for i in range(nkr):
            for j in range(nkr):
                e = events[i, j] * dt
                if e == 0.0:
                    continue
                k_lo, k_hi, w_lo, w_hi = grid.split_mass(
                    grid.masses[i] + grid.masses[j]
                )
                gain[k_lo] += e * w_lo
                gain[k_hi] += e * w_hi

        if ix.self_collection:
            loss = (events.sum(axis=1) + events.sum(axis=0)) * dt
            a_new = np.maximum(a - loss, 0.0)
            if ix.product is ix.collector:
                out[ix.collector] = np.maximum(a_new + gain, 0.0)
            else:
                out[ix.collector] = a_new
                out[ix.product] = out[ix.product] + gain
        else:
            a_new = np.maximum(a - events.sum(axis=1) * dt, 0.0)
            b_new = np.maximum(b - events.sum(axis=0) * dt, 0.0)
            out[ix.collector] = a_new
            out[ix.collected] = b_new
            if ix.product is ix.collector:
                out[ix.collector] = a_new + gain
            elif ix.product is ix.collected:
                out[ix.collected] = b_new + gain
            else:
                out[ix.product] = out[ix.product] + gain

    return out


def droplet_growth_reference(
    n: np.ndarray,
    temperature: float,
    pressure_mb: float,
    qv: float,
    rho_air: float,
    dt: float,
    grid: BinGrid | None = None,
) -> tuple[np.ndarray, float]:
    """Scalar reference of one point's liquid condensational growth.

    Returns ``(n_new, dqv)``. Mirrors `repro.fsbm.condensation` without
    vectorization or the saturation limiter (callers compare against
    the unlimited inner step).
    """
    from repro.fsbm.thermo import (
        condensational_growth_coefficient,
        saturation_mixing_ratio,
    )

    grid = grid or BinGrid()
    nkr = grid.nkr
    qs = float(saturation_mixing_ratio(np.array(temperature), np.array(pressure_mb)))
    s = qv / qs - 1.0
    g_coeff = float(
        condensational_growth_coefficient(
            np.array(temperature), np.array(pressure_mb)
        )
    )

    n_new = np.zeros(nkr)
    old_mass = float(n @ grid.masses)
    for k in range(nkr):
        if n[k] <= 0.0:
            continue
        dm = 4.0 * np.pi * grid.density * grid.radii[k] * g_coeff * s * dt
        m_new = grid.masses[k] + dm
        if m_new < 0.5 * grid.masses[0]:
            continue  # evaporated entirely
        k_lo, k_hi, w_lo, w_hi = grid.split_mass(float(m_new))
        n_new[k_lo] += n[k] * w_lo
        n_new[k_hi] += n[k] * w_hi
    dmass = float(n_new @ grid.masses) - old_mass
    return n_new, -dmass / rho_air
