"""Collision–coalescence: the ``coal_bott_new`` hot loop.

Solves the stochastic collection equation on the mass-doubling grid
with a Bott/Kovetz–Olund flux remap. For each active interaction the
unordered pair-event rate

    E[i, j] = K(i, j; p) * n_A[i] * n_B[j]        (A != B)
    E[i, j] = 0.5 * K(i, j; p) * n_A[i] * n_A[j]  (A == B)

removes one particle from each source bin per event and deposits the
coalesced mass ``x_i + x_j`` on the product grid, split over two bins
so number and mass are conserved exactly. A per-bin limiter scales the
event tensor so no bin loses more than it holds.

The numerics are vectorized over grid points; the pressure dependence
of the kernel is handled with the rank-2 identity
``K(p) = K500 + w(p) * (K750 - K500)`` so per-point kernel tables are
never materialized — the same values the Fortran obtains per point,
computed once per (entry, point).

Work accounting is separate from the numerics: :func:`predict_coal_work`
counts the operations a scalar Fortran implementation performs per
stage (full 20-table ``kernals_ks`` precompute for the baseline versus
occupied-bin on-demand entries after the lookup optimization). The GPU
stages call it *before* launching so the cost model can price the
kernel; :func:`coal_bott_step` calls the same function so reported
stats always match what was charged.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from repro.constants import KERNEL_P_HIGH_MB, KERNEL_P_LOW_MB
from repro.fsbm.bins import BinGrid
from repro.fsbm.collision_kernels import FLOPS_PER_ENTRY, KernelTables
from repro.fsbm.species import Interaction, Species
from repro.fsbm.state import N_EPS

#: FLOPs per pair entry of the collection update itself (event rate,
#: limiter, two losses, two gain scatters).
FLOPS_PER_PAIR = 10.0


@lru_cache(maxsize=4)
def _split_tensor(nkr: int) -> np.ndarray:
    """``G[k, i, j]``: number-fraction of pair (i, j) landing in bin k.

    Slices of the tensor sum to 1 over ``k`` inside the grid; top-bin
    overflow conserves mass with a reduced number weight. Shared by all
    interactions because every species grid uses the same mass ladder.
    """
    grid = BinGrid(nkr=nkr)
    k_lo, k_hi, w_lo, w_hi = grid.pair_coalescence_table(grid, grid)
    g = np.zeros((nkr, nkr * nkr))
    flat = np.arange(nkr * nkr)
    np.add.at(g, (k_lo.ravel(), flat), w_lo.ravel())
    np.add.at(g, (k_hi.ravel(), flat), w_hi.ravel())
    return g.reshape(nkr, nkr, nkr)


@dataclass
class CoalWorkStats:
    """Scalar-code work counts for one collision call (cost-model input)."""

    active_points: int = 0
    #: Kernel-table entries evaluated (differs between stages).
    kernel_entries: float = 0.0
    #: Pair-update entries processed by the collection loops.
    pair_entries: float = 0.0
    #: (interaction, point) pairs actually exercised, for reports.
    interactions_used: float = 0.0

    @property
    def flops(self) -> float:
        """Total FLOPs the scalar loops would execute."""
        return (
            self.kernel_entries * FLOPS_PER_ENTRY + self.pair_entries * FLOPS_PER_PAIR
        )

    @property
    def bytes_moved(self) -> float:
        """Logical bytes touched (three 4 B accesses per entry)."""
        return 4.0 * 3.0 * (self.kernel_entries + self.pair_entries)

    def merge(self, other: "CoalWorkStats") -> None:
        self.active_points += other.active_points
        self.kernel_entries += other.kernel_entries
        self.pair_entries += other.pair_entries
        self.interactions_used += other.interactions_used


#: Number concentration below which a species does not participate in
#: collisions at a point [cm^-3] — the scalar code's significance test.
COAL_N_MIN = 1.0e-8


def _interaction_selection(
    dists: dict[Species, np.ndarray],
    temperature: np.ndarray,
    ix: Interaction,
) -> np.ndarray:
    """Points where an interaction fires: temperature gate + presence."""
    gate = ix.active_at_array(temperature)
    has_a = dists[ix.collector].sum(axis=1) > COAL_N_MIN
    has_b = dists[ix.collected].sum(axis=1) > COAL_N_MIN
    return gate & has_a & has_b


def predict_coal_work(
    dists: dict[Species, np.ndarray],
    temperature: np.ndarray,
    tables: KernelTables,
    interactions: tuple[Interaction, ...],
    occupied: dict[Species, np.ndarray] | None,
    on_demand: bool,
) -> CoalWorkStats:
    """Count the scalar-code work one collision call performs.

    Baseline: ``kernals_ks`` fills all 20 full tables at every active
    point up front. On-demand: one interpolated entry per pair the
    collection loops actually touch (bounded by occupied bins).
    """
    npts = temperature.shape[0]
    nkr = next(iter(dists.values())).shape[1]
    stats = CoalWorkStats(active_points=npts)
    if npts == 0:
        return stats
    if not on_demand:
        stats.kernel_entries += float(npts) * tables.baseline_entry_count()
    for ix in interactions:
        sel = _interaction_selection(dists, temperature, ix)
        count = int(sel.sum())
        if count == 0:
            continue
        if occupied is not None:
            occ_a = occupied[ix.collector][sel]
            occ_b = occupied[ix.collected][sel]
            touched = float((occ_a * occ_b).sum())
        else:
            touched = float(count) * nkr * nkr
        stats.pair_entries += touched
        stats.interactions_used += float(count)
        if on_demand:
            stats.kernel_entries += touched
    return stats


def coal_bott_step(
    dists: dict[Species, np.ndarray],
    temperature: np.ndarray,
    pressure_mb: np.ndarray,
    dt: float,
    tables: KernelTables,
    interactions: tuple[Interaction, ...],
    occupied: dict[Species, np.ndarray] | None = None,
    on_demand: bool = False,
    dtype: np.dtype | type = np.float64,
) -> CoalWorkStats:
    """Advance all distributions by one collision step, in place.

    ``dists`` maps species to ``(npts, nkr)`` arrays (already gathered
    to active points). ``dtype`` selects the arithmetic precision: the
    offloaded stages pass ``float32`` to reproduce device arithmetic,
    which is what the Sec. VII-B digit comparison measures.
    """
    npts = temperature.shape[0]
    stats = predict_coal_work(
        dists, temperature, tables, interactions, occupied, on_demand
    )
    if npts == 0:
        return stats

    nkr = next(iter(dists.values())).shape[1]
    dtype = np.dtype(dtype)
    w_full = (
        (np.asarray(pressure_mb) - KERNEL_P_LOW_MB)
        / (KERNEL_P_HIGH_MB - KERNEL_P_LOW_MB)
    ).astype(dtype)
    g_split = _split_tensor(nkr)

    for ix in interactions:
        sel = _interaction_selection(dists, temperature, ix)
        if not sel.any():
            continue
        idx = np.flatnonzero(sel)
        n_a = dists[ix.collector]
        n_b = dists[ix.collected]
        a_full = n_a[idx]
        b_full = n_b[idx]

        # Restrict the pair loops to occupied bins: empty bins contribute
        # exact zeros, so the result is bitwise identical while the work
        # shrinks to what the scalar code's occupied-bin bounds would do.
        if occupied is not None:
            na = max(1, int(occupied[ix.collector][idx].max()))
            nb = max(1, int(occupied[ix.collected][idx].max()))
        else:
            na = nb = nkr
        a = a_full[:, :na].astype(dtype)
        b = b_full[:, :nb].astype(dtype)
        ws = w_full[idx]

        k500 = tables.tables_500[ix.name][:na, :nb].ravel().astype(dtype)
        kdel = (
            (tables.tables_750[ix.name] - tables.tables_500[ix.name])[:na, :nb]
            .ravel()
            .astype(dtype)
        )
        g_sub = g_split[:, :na, :nb].reshape(nkr, na * nb).astype(dtype)

        # Pair-event rates E[p, i*nb+j] at each point's pressure.
        outer = (a[:, :, None] * b[:, None, :]).reshape(len(idx), na * nb)
        events = outer * k500[None, :] + (outer * ws[:, None]) * kdel[None, :]
        if ix.self_collection:
            events *= dtype.type(0.5)

        ev = events.reshape(len(idx), na, nb)
        if ix.self_collection:
            loss = ev.sum(axis=2) * dt
            loss = loss + ev.sum(axis=1) * dt
            f_a = np.minimum(1.0, a / np.maximum(loss, 1e-30)).astype(dtype)
            ev = ev * (f_a[:, :, None] * f_a[:, None, :])
            loss = (ev.sum(axis=2) + ev.sum(axis=1)) * dt
            gain = (ev.reshape(len(idx), na * nb) @ g_sub.T) * dt
            a_new = a_full.copy()
            a_new[:, :na] = np.maximum(a - loss, 0.0)
            if ix.product is ix.collector:
                n_a[idx] = np.maximum(a_new + gain, 0.0)
            else:
                n_a[idx] = a_new
                dists[ix.product][idx] += gain
        else:
            loss_a = ev.sum(axis=2) * dt
            loss_b = ev.sum(axis=1) * dt
            f_a = np.minimum(1.0, a / np.maximum(loss_a, 1e-30)).astype(dtype)
            f_b = np.minimum(1.0, b / np.maximum(loss_b, 1e-30)).astype(dtype)
            ev = ev * (f_a[:, :, None] * f_b[:, None, :])
            gain = (ev.reshape(len(idx), na * nb) @ g_sub.T) * dt
            a_new = a_full.copy()
            b_new = b_full.copy()
            a_new[:, :na] = np.maximum(a - ev.sum(axis=2) * dt, 0.0)
            b_new[:, :nb] = np.maximum(b - ev.sum(axis=1) * dt, 0.0)
            if ix.product is ix.collector:
                n_a[idx] = a_new + gain
                n_b[idx] = b_new
            elif ix.product is ix.collected:
                n_a[idx] = a_new
                n_b[idx] = b_new + gain
            else:
                n_a[idx] = a_new
                n_b[idx] = b_new
                dists[ix.product][idx] += gain

    return stats
