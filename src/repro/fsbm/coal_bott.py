"""Collision–coalescence: the ``coal_bott_new`` hot loop.

Solves the stochastic collection equation on the mass-doubling grid
with a Bott/Kovetz–Olund flux remap. For each active interaction the
unordered pair-event rate

    E[i, j] = K(i, j; p) * n_A[i] * n_B[j]        (A != B)
    E[i, j] = 0.5 * K(i, j; p) * n_A[i] * n_A[j]  (A == B)

removes one particle from each source bin per event and deposits the
coalesced mass ``x_i + x_j`` on the product grid, split over two bins
so number and mass are conserved exactly. A per-bin limiter scales the
event tensor so no bin loses more than it holds.

Two contraction engines share these semantics:

* The **dense** engine (``use_sparse=False``) materializes the pair
  tensor ``E[p, i, j]`` per point and contracts it against the dense
  ``(nkr, nkr, nkr)`` Kovetz–Olund split tensor — a direct vectorized
  transcription of the scalar triple loop.
* The **sparse** engine (the default) never materializes ``E``. Because
  the split weights are separable from the limiter
  (``E' = Kp * (f_a a) x (f_b b)``) and every pair's destination bins
  follow the triangular structure of the mass-doubling ladder
  (``k_lo = max(i, j)`` off the diagonal, ``k_lo = i + 1`` on it, and
  ``k_hi = k_lo + 1`` wherever its weight is nonzero), the losses and
  the gain both collapse into a handful of ``(npts, na) @ (na, nb)``
  matmuls against precomputed operators that fold the split weights
  into the kernel tables. The operators are sliced to the occupied
  rectangle, so the work scales with ``na * nb`` like the scalar
  code's occupied-bin bounds. :func:`_pair_split` verifies the
  triangular structure and the step silently falls back to the dense
  engine if a grid ever violates it.

The pressure dependence of the kernel is handled with the rank-2
identity ``K(p) = K500 + w(p) * (K750 - K500)`` so per-point kernel
tables are never materialized — the same values the Fortran obtains per
point, computed once per (entry, point).

Work accounting is separate from the numerics: :func:`predict_coal_work`
counts the operations a scalar Fortran implementation performs per
stage (full 20-table ``kernals_ks`` precompute for the baseline versus
occupied-bin on-demand entries after the lookup optimization). The GPU
stages call it *before* launching so the cost model can price the
kernel; :func:`coal_bott_step` calls the same function so reported
stats always match what was charged. Both engines report identical
stats: they model the *scalar* code's work, not the vectorized form.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

import numpy as np

from repro.constants import KERNEL_P_HIGH_MB, KERNEL_P_LOW_MB
from repro.core.cache import cached, get_cache
from repro.fsbm.bins import BinGrid
from repro.fsbm.collision_kernels import FLOPS_PER_ENTRY, KernelTables, tables_token
from repro.fsbm.species import Interaction, Species

#: FLOPs per pair entry of the collection update itself (event rate,
#: limiter, two losses, two gain scatters).
FLOPS_PER_PAIR = 10.0


@dataclass(frozen=True)
class PairSplit:
    """Kovetz–Olund two-bin split of every pair mass on one grid.

    Pair ``(i, j)`` deposits number fraction ``w_lo[i, j]`` in bin
    ``k_lo[i, j]`` and ``w_hi[i, j]`` in ``k_hi[i, j]``.
    ``triangular`` records whether the destinations follow the
    mass-doubling-ladder structure the sparse engine relies on.
    """

    k_lo: np.ndarray
    k_hi: np.ndarray
    w_lo: np.ndarray
    w_hi: np.ndarray
    triangular: bool


@cached("fsbm.pair_split", maxsize=4)
def _pair_split(nkr: int) -> PairSplit:
    """Split table for the shared ``nkr``-bin grid, structure-checked.

    On the mass-doubling ladder ``x_{k+1} = 2 x_k`` the coalesced mass
    ``x_i + x_j`` always lands between ``x_max(i,j)`` and
    ``x_max(i,j)+1`` (equal bins land exactly on ``x_{i+1}``), which
    gives the triangular destination structure the sparse operators
    exploit. The check is cheap and cached; any grid that breaks it
    simply routes through the dense engine.
    """
    grid = BinGrid(nkr=nkr)
    k_lo, k_hi, w_lo, w_hi = grid.pair_coalescence_table(grid, grid)
    ii = np.broadcast_to(np.arange(nkr)[:, None], (nkr, nkr))
    jj = np.broadcast_to(np.arange(nkr)[None, :], (nkr, nkr))
    low = ii > jj
    up = ii < jj
    nz = w_hi != 0.0
    triangular = bool(
        np.array_equal(k_lo[low], ii[low])
        and np.array_equal(k_lo[up], jj[up])
        and np.array_equal(
            np.diagonal(k_lo), np.minimum(np.arange(nkr) + 1, nkr - 1)
        )
        and not np.any(nz & ~(low | up))
        and np.array_equal(k_hi[nz], k_lo[nz] + 1)
        and not w_hi[nkr - 1, :].any()
        and not w_hi[:, nkr - 1].any()
    )
    return PairSplit(k_lo=k_lo, k_hi=k_hi, w_lo=w_lo, w_hi=w_hi, triangular=triangular)


@cached("fsbm.split_tensor", maxsize=4)
def _split_tensor(nkr: int) -> np.ndarray:
    """``G[k, i, j]``: number-fraction of pair (i, j) landing in bin k.

    Slices of the tensor sum to 1 over ``k`` inside the grid; top-bin
    overflow conserves mass with a reduced number weight. Shared by all
    interactions because every species grid uses the same mass ladder.
    Only the dense engine contracts against this tensor; the sparse
    engine uses the factored operators of :func:`_coal_operators`.
    """
    ps = _pair_split(nkr)
    g = np.zeros((nkr, nkr * nkr))
    flat = np.arange(nkr * nkr)
    np.add.at(g, (ps.k_lo.ravel(), flat), ps.w_lo.ravel())
    np.add.at(g, (ps.k_hi.ravel(), flat), ps.w_hi.ravel())
    return g.reshape(nkr, nkr, nkr)


def _build_coal_operators(
    tables: KernelTables, name: str, nkr: int, na: int, nb: int, dtype: np.dtype
) -> tuple:
    """Fold split weights into one interaction's kernel rectangle.

    Returns ``(ops_500, ops_del)`` — one operator set per pressure
    level (the delta set carries ``K750 - K500`` for the rank-2
    pressure interpolation). Each set is::

        (K^T, K, L^T, Lh^T, U, Uh, d)

    where for pair weights ``w`` and destinations of the triangular
    ladder: ``L = w_lo K`` on the strict lower triangle (gain lands in
    row bin ``i``), ``Lh = w_hi K`` there (lands in ``i + 1``), ``U`` /
    ``Uh`` the upper-triangle analogues (column bin ``j`` / ``j + 1``),
    and ``d`` the diagonal ``w_lo K`` vector (lands in
    ``min(i + 1, nkr - 1)``). Everything is sliced to the occupied
    ``(na, nb)`` rectangle and laid out contiguous for the matmuls.
    """
    ps = _pair_split(nkr)
    ii = np.arange(nkr)[:, None]
    jj = np.arange(nkr)[None, :]
    low = ii > jj
    up = ii < jj
    nd = min(na, nb)
    k500 = tables.tables_500[name]
    kdel = tables.tables_750[name] - k500

    def carve(k: np.ndarray) -> tuple:
        def cut(m: np.ndarray) -> np.ndarray:
            return np.ascontiguousarray(m[:na, :nb].astype(dtype))

        def cut_t(m: np.ndarray) -> np.ndarray:
            return np.ascontiguousarray(m[:na, :nb].T.astype(dtype))

        return (
            cut_t(k),
            cut(k),
            cut_t(np.where(low, ps.w_lo * k, 0.0)),
            cut_t(np.where(low, ps.w_hi * k, 0.0)),
            cut(np.where(up, ps.w_lo * k, 0.0)),
            cut(np.where(up, ps.w_hi * k, 0.0)),
            np.ascontiguousarray(np.diagonal(ps.w_lo * k)[:nd].astype(dtype)),
        )

    return carve(k500), carve(kdel)


def _coal_operators(
    tables: KernelTables, name: str, nkr: int, na: int, nb: int, dtype: np.dtype
) -> tuple:
    """Cached sparse operators for one (interaction, rectangle, dtype).

    Keyed on the tables' content fingerprint rather than object
    identity, so independently built but identical tables share
    entries and changed physics invalidates them.
    """
    cache = get_cache("fsbm.coal_operators", maxsize=256)
    key = (tables_token(tables), name, nkr, na, nb, dtype.str)
    return cache.get_or_build(
        key, lambda: _build_coal_operators(tables, name, nkr, na, nb, dtype)
    )


@dataclass
class CoalWorkStats:
    """Scalar-code work counts for one collision call (cost-model input)."""

    active_points: int = 0
    #: Kernel-table entries evaluated (differs between stages).
    kernel_entries: float = 0.0
    #: Pair-update entries processed by the collection loops.
    pair_entries: float = 0.0
    #: (interaction, point) pairs actually exercised, for reports.
    interactions_used: float = 0.0

    @property
    def flops(self) -> float:
        """Total FLOPs the scalar loops would execute."""
        return (
            self.kernel_entries * FLOPS_PER_ENTRY + self.pair_entries * FLOPS_PER_PAIR
        )

    @property
    def bytes_moved(self) -> float:
        """Logical bytes touched (three 4 B accesses per entry)."""
        return 4.0 * 3.0 * (self.kernel_entries + self.pair_entries)

    def merge(self, other: "CoalWorkStats") -> None:
        self.active_points += other.active_points
        self.kernel_entries += other.kernel_entries
        self.pair_entries += other.pair_entries
        self.interactions_used += other.interactions_used


#: Number concentration below which a species does not participate in
#: collisions at a point [cm^-3] — the scalar code's significance test.
COAL_N_MIN = 1.0e-8


def _interaction_selection(
    dists: dict[Species, np.ndarray],
    temperature: np.ndarray,
    ix: Interaction,
) -> np.ndarray:
    """Points where an interaction fires: temperature gate + presence."""
    gate = ix.active_at_array(temperature)
    has_a = dists[ix.collector].sum(axis=1) > COAL_N_MIN
    has_b = dists[ix.collected].sum(axis=1) > COAL_N_MIN
    return gate & has_a & has_b


class CoalSelection:
    """Shared per-step interaction selection state.

    The scalar code re-tests, per interaction per point, a temperature
    gate and the presence of both species. Recomputing that from the
    distributions costs two full reductions per interaction; this
    object computes the per-species sums once, caches the temperature
    gates by their ``(t_max, t_min)`` regime (several interactions
    share a regime), and serves every interaction's mask from them.

    Selection is *sequential*: earlier interactions mutate the
    distributions that later interactions test. ``coal_bott_step``
    therefore works on a :meth:`fork` whose sums it refreshes for the
    rows each interaction touched, which reproduces the scalar loop's
    cascade bit-for-bit, while :func:`predict_coal_work` keeps the
    pristine pre-step instance.
    """

    __slots__ = ("temperature", "_sums", "_gates")

    def __init__(
        self,
        temperature: np.ndarray,
        sums: dict[Species, np.ndarray],
        gates: dict[tuple, np.ndarray],
    ):
        self.temperature = temperature
        self._sums = sums
        self._gates = gates

    @classmethod
    def build(
        cls, dists: dict[Species, np.ndarray], temperature: np.ndarray
    ) -> "CoalSelection":
        """Selection state for the current distributions."""
        sums = {sp: d.sum(axis=1) for sp, d in dists.items()}
        return cls(temperature, sums, {})

    def gate(self, ix: Interaction) -> np.ndarray:
        """Temperature gate of ``ix``, cached per thermal regime."""
        key = (ix.t_max, ix.t_min)
        g = self._gates.get(key)
        if g is None:
            g = ix.active_at_array(self.temperature)
            self._gates[key] = g
        return g

    def mask(self, ix: Interaction) -> np.ndarray:
        """Points where ``ix`` fires — equals :func:`_interaction_selection`."""
        return (
            self.gate(ix)
            & (self._sums[ix.collector] > COAL_N_MIN)
            & (self._sums[ix.collected] > COAL_N_MIN)
        )

    def fork(self) -> "CoalSelection":
        """A mutable copy for the step loop.

        Sums are copied (the loop refreshes them as species mutate);
        temperature gates are shared, since temperature is constant
        over a collision step.
        """
        return CoalSelection(
            self.temperature,
            {sp: s.copy() for sp, s in self._sums.items()},
            self._gates,
        )

    def refresh(
        self,
        dists: dict[Species, np.ndarray],
        species: set[Species],
        rows: np.ndarray,
    ) -> None:
        """Recompute sums of ``species`` at ``rows`` after a mutation.

        Row sums are independent, so refreshing only the touched rows
        is bitwise identical to a full recompute.
        """
        for sp in species:
            self._sums[sp][rows] = dists[sp][rows].sum(axis=1)


def predict_coal_work(
    dists: dict[Species, np.ndarray],
    temperature: np.ndarray,
    tables: KernelTables,
    interactions: tuple[Interaction, ...],
    occupied: dict[Species, np.ndarray] | None,
    on_demand: bool,
    selection: CoalSelection | None = None,
) -> CoalWorkStats:
    """Count the scalar-code work one collision call performs.

    Baseline: ``kernals_ks`` fills all 20 full tables at every active
    point up front. On-demand: one interpolated entry per pair the
    collection loops actually touch (bounded by occupied bins).

    ``selection`` lets a caller that already built the per-step
    :class:`CoalSelection` (the collision stage predicts work and then
    runs the step on the same state) share it instead of recomputing
    every mask.
    """
    npts = temperature.shape[0]
    nkr = next(iter(dists.values())).shape[1]
    stats = CoalWorkStats(active_points=npts)
    if npts == 0:
        return stats
    if selection is None:
        selection = CoalSelection.build(dists, temperature)
    if not on_demand:
        stats.kernel_entries += float(npts) * tables.baseline_entry_count()
    for ix in interactions:
        sel = selection.mask(ix)
        count = int(sel.sum())
        if count == 0:
            continue
        if occupied is not None:
            occ_a = occupied[ix.collector][sel]
            occ_b = occupied[ix.collected][sel]
            touched = float((occ_a * occ_b).sum())
        else:
            touched = float(count) * nkr * nkr
        stats.pair_entries += touched
        stats.interactions_used += float(count)
        if on_demand:
            stats.kernel_entries += touched
    return stats


def predict_coal_work_members(
    dists: dict[Species, np.ndarray],
    temperature: np.ndarray,
    tables: KernelTables,
    interactions: tuple[Interaction, ...],
    occupied: dict[Species, np.ndarray] | None,
    on_demand: bool,
    segments: list[tuple[int, int]],
    selection: CoalSelection | None = None,
) -> list[CoalWorkStats]:
    """Per-member work counts for one member-concatenated collision call.

    ``segments[m]`` is member ``m``'s row range in the concatenated
    point arrays. Masks are row-local (temperature gate and per-row
    sums), so slicing the shared mask to a member's segment equals the
    mask a solo :func:`predict_coal_work` of that member computes; the
    per-member sums and counts below therefore accumulate exactly the
    solo numbers, in the solo interaction order.
    """
    nkr = next(iter(dists.values())).shape[1]
    out = [
        CoalWorkStats(active_points=(e - s)) for (s, e) in segments
    ]
    if temperature.shape[0] == 0:
        return out
    if selection is None:
        selection = CoalSelection.build(dists, temperature)
    if not on_demand:
        for st, (s, e) in zip(out, segments):
            if e > s:
                st.kernel_entries += float(e - s) * tables.baseline_entry_count()
    for ix in interactions:
        sel = selection.mask(ix)
        for st, (s, e) in zip(out, segments):
            if e == s:
                continue
            sub = sel[s:e]
            count = int(sub.sum())
            if count == 0:
                continue
            if occupied is not None:
                occ_a = occupied[ix.collector][s:e][sub]
                occ_b = occupied[ix.collected][s:e][sub]
                touched = float((occ_a * occ_b).sum())
            else:
                touched = float(count) * nkr * nkr
            st.pair_entries += touched
            st.interactions_used += float(count)
            if on_demand:
                st.kernel_entries += touched
    return out


def _apply_dense(
    dists: dict[Species, np.ndarray],
    ix: Interaction,
    idx: np.ndarray,
    a_full: np.ndarray,
    b_full: np.ndarray,
    na: int,
    nb: int,
    ws: np.ndarray,
    dt: float,
    dtype: np.dtype,
    tables: KernelTables,
    nkr: int,
    g_split: np.ndarray,
) -> None:
    """One interaction's update via the dense pair-tensor contraction."""
    n_a = dists[ix.collector]
    n_b = dists[ix.collected]
    a = a_full[:, :na].astype(dtype)
    b = b_full[:, :nb].astype(dtype)

    k500 = tables.tables_500[ix.name][:na, :nb].ravel().astype(dtype)
    kdel = (
        (tables.tables_750[ix.name] - tables.tables_500[ix.name])[:na, :nb]
        .ravel()
        .astype(dtype)
    )
    g_sub = g_split[:, :na, :nb].reshape(nkr, na * nb).astype(dtype)

    # Pair-event rates E[p, i*nb+j] at each point's pressure.
    outer = (a[:, :, None] * b[:, None, :]).reshape(len(idx), na * nb)
    events = outer * k500[None, :] + (outer * ws[:, None]) * kdel[None, :]
    if ix.self_collection:
        events *= dtype.type(0.5)

    ev = events.reshape(len(idx), na, nb)
    if ix.self_collection:
        loss = ev.sum(axis=2) * dt
        loss = loss + ev.sum(axis=1) * dt
        f_a = np.minimum(1.0, a / np.maximum(loss, 1e-30)).astype(dtype)
        ev = ev * (f_a[:, :, None] * f_a[:, None, :])
        loss = (ev.sum(axis=2) + ev.sum(axis=1)) * dt
        gain = (ev.reshape(len(idx), na * nb) @ g_sub.T) * dt
        a_new = a_full.copy()
        a_new[:, :na] = np.maximum(a - loss, 0.0)
        if ix.product is ix.collector:
            n_a[idx] = np.maximum(a_new + gain, 0.0)
        else:
            n_a[idx] = a_new
            dists[ix.product][idx] += gain
    else:
        loss_a = ev.sum(axis=2) * dt
        loss_b = ev.sum(axis=1) * dt
        f_a = np.minimum(1.0, a / np.maximum(loss_a, 1e-30)).astype(dtype)
        f_b = np.minimum(1.0, b / np.maximum(loss_b, 1e-30)).astype(dtype)
        ev = ev * (f_a[:, :, None] * f_b[:, None, :])
        gain = (ev.reshape(len(idx), na * nb) @ g_sub.T) * dt
        a_new = a_full.copy()
        b_new = b_full.copy()
        a_new[:, :na] = np.maximum(a - ev.sum(axis=2) * dt, 0.0)
        b_new[:, :nb] = np.maximum(b - ev.sum(axis=1) * dt, 0.0)
        if ix.product is ix.collector:
            n_a[idx] = a_new + gain
            n_b[idx] = b_new
        elif ix.product is ix.collected:
            n_a[idx] = a_new
            n_b[idx] = b_new + gain
        else:
            n_a[idx] = a_new
            n_b[idx] = b_new
            dists[ix.product][idx] += gain


def _apply_sparse(
    dists: dict[Species, np.ndarray],
    ix: Interaction,
    idx: np.ndarray,
    a_full: np.ndarray,
    b_full: np.ndarray,
    na: int,
    nb: int,
    ws: np.ndarray,
    dt: float,
    dtype: np.dtype,
    tables: KernelTables,
    nkr: int,
) -> None:
    """One interaction's update via the factored sparse operators.

    Losses: with the limiter separable, the post-limit row loss is
    ``0.5^s * a' * (Kp b') * dt`` — a matvec per point, done as one
    matmul per pressure level. Gain: each pair's deposit goes to one of
    four destination families (row bin, row + 1, column bin,
    column + 1, diagonal + 1), each of which is again a matmul against
    an operator with the split weight folded in, followed by cheap
    column shifts. Nothing of size ``na * nb`` is ever materialized
    per point.
    """
    n_a = dists[ix.collector]
    n_b = dists[ix.collected]
    a = a_full[:, :na].astype(dtype)
    b = b_full[:, :nb].astype(dtype)
    ops_500, ops_del = _coal_operators(tables, ix.name, nkr, na, nb, dtype)
    k5t, k5, l5t, lh5t, u5, uh5, d5 = ops_500
    kdt, kd, ldt, lhdt, ud, uhd, dd = ops_del
    half = dtype.type(0.5) if ix.self_collection else dtype.type(1.0)
    wsc = ws[:, None]

    rs = half * a * (b @ k5t + wsc * (b @ kdt)) * dt
    if ix.self_collection:
        cs = half * a * (b @ k5 + wsc * (b @ kd)) * dt
        loss = rs + cs
        if np.all(loss <= a):
            # Limiter never binds: a' == a exactly (zero bins have zero
            # loss), so the pre-limit losses are already final.
            ap = a
            bp = a
        else:
            f = np.minimum(1.0, a / np.maximum(loss, 1e-30)).astype(dtype)
            ap = a * f
            bp = ap
            rs = half * ap * (bp @ k5t + wsc * (bp @ kdt)) * dt
            cs = half * bp * (ap @ k5 + wsc * (ap @ kd)) * dt
    else:
        cs = half * b * (a @ k5 + wsc * (a @ kd)) * dt
        if np.all(rs <= a) and np.all(cs <= b):
            ap = a
            bp = b
        else:
            f_a = np.minimum(1.0, a / np.maximum(rs, 1e-30)).astype(dtype)
            f_b = np.minimum(1.0, b / np.maximum(cs, 1e-30)).astype(dtype)
            ap = a * f_a
            bp = b * f_b
            rs = half * ap * (bp @ k5t + wsc * (bp @ kdt)) * dt
            cs = half * bp * (ap @ k5 + wsc * (ap @ kd)) * dt

    nd = min(na, nb)
    g = np.zeros((len(idx), nkr), dtype=dtype)
    g[:, :na] += ap * (bp @ l5t + wsc * (bp @ ldt))
    g[:, :nb] += bp * (ap @ u5 + wsc * (ap @ ud))
    rhi = ap * (bp @ lh5t + wsc * (bp @ lhdt))
    uhi = bp * (ap @ uh5 + wsc * (ap @ uhd))
    dig = (ap[:, :nd] * bp[:, :nd]) * (d5 + wsc * dd)
    ha = min(na, nkr - 1)
    hb = min(nb, nkr - 1)
    hd = min(nd, nkr - 1)
    g[:, 1 : ha + 1] += rhi[:, :ha]
    g[:, 1 : hb + 1] += uhi[:, :hb]
    g[:, 1 : hd + 1] += dig[:, :hd]
    if nd == nkr:
        # Top diagonal pair overflows into the top bin itself.
        g[:, nkr - 1] += dig[:, nkr - 1]
    g *= half * dt
    gain = g

    if ix.self_collection:
        a_new = a_full.copy()
        a_new[:, :na] = np.maximum(a - rs - cs, 0.0)
        if ix.product is ix.collector:
            n_a[idx] = np.maximum(a_new + gain, 0.0)
        else:
            n_a[idx] = a_new
            dists[ix.product][idx] += gain
    else:
        a_new = a_full.copy()
        b_new = b_full.copy()
        a_new[:, :na] = np.maximum(a - rs, 0.0)
        b_new[:, :nb] = np.maximum(b - cs, 0.0)
        if ix.product is ix.collector:
            n_a[idx] = a_new + gain
            n_b[idx] = b_new
        elif ix.product is ix.collected:
            n_a[idx] = a_new
            n_b[idx] = b_new + gain
        else:
            n_a[idx] = a_new
            n_b[idx] = b_new
            dists[ix.product][idx] += gain


class CoalWorkspace:
    """Persistent buffers for the batched collision engine.

    The per-interaction apply used to allocate its matmul results and
    the gain accumulator fresh on every call — at 56 interaction
    applications per three-step collision cadence, allocator traffic
    showed up in the profile. This is the collision analog of the
    Fortran ``*_temp`` preallocation (and of
    :class:`repro.wrf.transport.TransportWorkspace`): named buffers
    grow to the high-water mark during warm-up and are reused
    thereafter, so steady-state steps perform **zero** workspace
    allocations (asserted by the native-kernel tests via
    :attr:`allocations`).
    """

    def __init__(self, dtype: np.dtype | type = np.float64):
        self.dtype = np.dtype(dtype)
        self._pools: dict[str, np.ndarray] = {}
        #: Buffer (re)allocations performed so far; stable after warm-up.
        self.allocations = 0

    def buffer(self, name: str, shape: tuple[int, ...]) -> np.ndarray:
        """A ``shape`` view of the named pool, grown if needed."""
        size = int(np.prod(shape))
        pool = self._pools.get(name)
        if pool is None or pool.size < size:
            pool = np.empty(size, dtype=self.dtype)
            self._pools[name] = pool
            self.allocations += 1
        return pool[:size].reshape(shape)

    @property
    def nbytes(self) -> int:
        return sum(p.nbytes for p in self._pools.values())


_coal_ws_cache = get_cache(
    "fsbm.coal_workspace", maxsize=32, sizeof=lambda ws: ws.nbytes
)


def get_coal_workspace(
    dtype: np.dtype | type = np.float64, owner: object | None = None
) -> CoalWorkspace:
    """The registered workspace for ``(dtype, owner)``.

    ``owner`` defaults to the calling thread, so batched rank execution
    (which runs per-rank physics on a thread pool) never shares scratch
    buffers between concurrently executing ranks.
    """
    key = (np.dtype(dtype).str, owner if owner is not None else threading.get_ident())
    return _coal_ws_cache.get_or_build(key, lambda: CoalWorkspace(dtype))


def _batched_operators(
    tables: KernelTables, name: str, nkr: int, na: int, nb: int, dtype: np.dtype
) -> tuple:
    """Stacked sparse operators for the batched engine.

    The per-point pressure interpolation ``M @ Op500 + ws * (M @ OpDel)``
    is folded into the GEMM itself by stacking the 500-mb and delta
    operators vertically and widening the point matrix to
    ``[m | ws * m]``: one GEMM per (side, role) instead of two GEMMs
    plus three elementwise passes. The two gain operators of each side
    (low deposit, high deposit) are additionally stacked horizontally,
    so a full interaction needs four GEMMs — loss and gain per side —
    against:

    * ``BT = [[K5^T], [Kd^T]]``      (2 nb, na)   row losses
    * ``AT = [[K5], [Kd]]``          (2 na, nb)   column losses
    * ``BG = [[L5^T | Lh5^T], [Ld^T | Lhd^T]]``  (2 nb, 2 na) row gains
    * ``AG = [[U5 | Uh5], [Ud | Uhd]]``          (2 na, 2 nb) col gains

    The fused inner dimension reorders the interpolation dot products
    (~1e-15 relative vs the reference's add-after-matmul), which is why
    the batched engine is property tested at ≤1e-12 rather than
    bitwise.
    """
    cache = get_cache("fsbm.coal_batched_operators", maxsize=256)
    key = (tables_token(tables), name, nkr, na, nb, dtype.str)

    def build() -> tuple:
        ops_500, ops_del = _coal_operators(tables, name, nkr, na, nb, dtype)
        k5t, k5, l5t, lh5t, u5, uh5, d5 = ops_500
        kdt, kd, ldt, lhdt, ud, uhd, dd = ops_del
        return (
            np.ascontiguousarray(np.vstack([k5t, kdt])),
            np.ascontiguousarray(np.vstack([k5, kd])),
            np.ascontiguousarray(
                np.vstack([np.hstack([l5t, lh5t]), np.hstack([ldt, lhdt])])
            ),
            np.ascontiguousarray(
                np.vstack([np.hstack([u5, uh5]), np.hstack([ud, uhd])])
            ),
            d5,
            dd,
        )

    return cache.get_or_build(key, build)


def _apply_sparse_batched(
    dists: dict[Species, np.ndarray],
    ix: Interaction,
    idx: np.ndarray,
    a_full: np.ndarray,
    b_full: np.ndarray,
    na: int,
    nb: int,
    ws: np.ndarray,
    dt: float,
    dtype: np.dtype,
    tables: KernelTables,
    nkr: int,
    work: CoalWorkspace,
) -> None:
    """One interaction's update via batched GEMMs over the workspace.

    Numerically this follows :func:`_apply_sparse` operation for
    operation — same loss/limiter/gain sequence, with the pressure
    interpolation fused into the GEMM inner dimension (see
    :func:`_batched_operators`, agreement ~1e-15) and the scalar
    prefactor applied as one ``half * dt`` product (``half`` is a power
    of two, so the reordering is exact). All matmul outputs, the
    widened point matrices, and the gain accumulator live in the
    persistent ``work`` buffers, so steady-state calls perform no
    workspace allocations. In self-collection ``a`` and ``b`` hold the
    same values, so the ``a``-side GEMM serves the reference's
    ``b @ K`` column losses verbatim.
    """
    n_a = dists[ix.collector]
    n_b = dists[ix.collected]
    if a_full.dtype == dtype:
        a = a_full[:, :na]
        b = b_full[:, :nb]
    else:
        a = a_full[:, :na].astype(dtype)
        b = b_full[:, :nb].astype(dtype)
    bt, at, bg, ag, d5, dd = _batched_operators(tables, ix.name, nkr, na, nb, dtype)
    half = dtype.type(0.5) if ix.self_collection else dtype.type(1.0)
    scale = half * dtype.type(dt)
    wsc = ws[:, None]
    npts = len(idx)

    def widen(name: str, m: np.ndarray, n: int) -> np.ndarray:
        """``[m | ws * m]`` in a persistent buffer (the GEMM left side)."""
        m2 = work.buffer(name, (npts, 2 * n))
        m2[:, :n] = m
        np.multiply(m, wsc, out=m2[:, n:])
        return m2

    a2 = widen("a2", a, na)
    b2 = widen("b2", b, nb)
    lb = work.buffer("lb", (npts, na))
    la = work.buffer("la", (npts, nb))
    rs = work.buffer("rs", (npts, na))
    cs = work.buffer("cs", (npts, nb))

    def losses(ap_: np.ndarray, bp_: np.ndarray) -> None:
        np.matmul(b2, bt, out=lb)
        np.multiply(ap_, lb, out=rs)
        np.multiply(rs, scale, out=rs)
        np.matmul(a2, at, out=la)
        np.multiply(bp_, la, out=cs)
        np.multiply(cs, scale, out=cs)

    losses(a, b if not ix.self_collection else a)
    if ix.self_collection:
        loss = rs + cs
        if np.all(loss <= a):
            # Limiter never binds: a' == a exactly (zero bins have zero
            # loss), so the pre-limit losses are already final.
            ap = a
            bp = a
        else:
            f = np.minimum(1.0, a / np.maximum(loss, 1e-30)).astype(dtype)
            ap = a * f
            bp = ap
            widen("a2", ap, na)
            widen("b2", bp, nb)
            losses(ap, bp)
    else:
        if np.all(rs <= a) and np.all(cs <= b):
            ap = a
            bp = b
        else:
            f_a = np.minimum(1.0, a / np.maximum(rs, 1e-30)).astype(dtype)
            f_b = np.minimum(1.0, b / np.maximum(cs, 1e-30)).astype(dtype)
            ap = a * f_a
            bp = b * f_b
            widen("a2", ap, na)
            widen("b2", bp, nb)
            losses(ap, bp)

    nd = min(na, nb)
    gb = work.buffer("gb", (npts, 2 * na))
    ga = work.buffer("ga", (npts, 2 * nb))
    np.matmul(b2, bg, out=gb)
    np.matmul(a2, ag, out=ga)
    g = work.buffer("g", (npts, nkr))
    g[:] = 0.0
    t = work.buffer("t", (npts, max(na, nb)))
    ta = t[:, :na]
    tb = t[:, :nb]
    ha = min(na, nkr - 1)
    hb = min(nb, nkr - 1)
    hd = min(nd, nkr - 1)
    np.multiply(ap, gb[:, :na], out=ta)
    g[:, :na] += ta
    np.multiply(bp, ga[:, :nb], out=tb)
    g[:, :nb] += tb
    np.multiply(ap, gb[:, na:], out=ta)
    g[:, 1 : ha + 1] += ta[:, :ha]
    np.multiply(bp, ga[:, nb:], out=tb)
    g[:, 1 : hb + 1] += tb[:, :hb]
    dg = work.buffer("dg", (npts, nd))
    dw = work.buffer("dw", (npts, nd))
    np.multiply(ap[:, :nd], bp[:, :nd], out=dg)
    np.multiply(dd, wsc, out=dw)
    dw += d5
    dg *= dw
    g[:, 1 : hd + 1] += dg[:, :hd]
    if nd == nkr:
        # Top diagonal pair overflows into the top bin itself.
        g[:, nkr - 1] += dg[:, nkr - 1]
    g *= scale
    gain = g

    if ix.self_collection:
        a_new = a_full.copy()
        a_new[:, :na] = np.maximum(a - rs - cs, 0.0)
        if ix.product is ix.collector:
            n_a[idx] = np.maximum(a_new + gain, 0.0)
        else:
            n_a[idx] = a_new
            dists[ix.product][idx] += gain
    else:
        a_new = a_full.copy()
        b_new = b_full.copy()
        a_new[:, :na] = np.maximum(a - rs, 0.0)
        b_new[:, :nb] = np.maximum(b - cs, 0.0)
        if ix.product is ix.collector:
            n_a[idx] = a_new + gain
            n_b[idx] = b_new
        elif ix.product is ix.collected:
            n_a[idx] = a_new
            n_b[idx] = b_new + gain
        else:
            n_a[idx] = a_new
            n_b[idx] = b_new
            dists[ix.product][idx] += gain


def coal_bott_step(
    dists: dict[Species, np.ndarray],
    temperature: np.ndarray,
    pressure_mb: np.ndarray,
    dt: float,
    tables: KernelTables,
    interactions: tuple[Interaction, ...],
    occupied: dict[Species, np.ndarray] | None = None,
    on_demand: bool = False,
    dtype: np.dtype | type = np.float64,
    selection: CoalSelection | None = None,
    use_sparse: bool = True,
    use_batched: bool = False,
    workspace: CoalWorkspace | None = None,
) -> CoalWorkStats:
    """Advance all distributions by one collision step, in place.

    ``dists`` maps species to ``(npts, nkr)`` arrays (already gathered
    to active points). ``dtype`` selects the arithmetic precision: the
    offloaded stages pass ``float32`` to reproduce device arithmetic,
    which is what the Sec. VII-B digit comparison measures.

    ``selection`` shares a pre-built :class:`CoalSelection` (the
    collision stage builds it once per step for both the work
    prediction and the update). ``use_sparse`` picks the contraction
    engine; both produce the same physics, with relative differences
    only at the float-associativity level (~1e-14 in float64).
    ``use_batched`` (sparse engine only) runs each interaction through
    the stacked-GEMM apply over a persistent :class:`CoalWorkspace`
    (``workspace``, defaulting to the calling thread's registered
    instance) — same physics to ≤1e-12.
    """
    npts = temperature.shape[0]
    if selection is None and npts:
        selection = CoalSelection.build(dists, temperature)
    stats = predict_coal_work(
        dists, temperature, tables, interactions, occupied, on_demand,
        selection=selection,
    )
    if npts == 0:
        return stats

    nkr = next(iter(dists.values())).shape[1]
    dtype = np.dtype(dtype)
    w_full = (
        (np.asarray(pressure_mb) - KERNEL_P_LOW_MB)
        / (KERNEL_P_HIGH_MB - KERNEL_P_LOW_MB)
    ).astype(dtype)
    use_sparse = use_sparse and _pair_split(nkr).triangular
    g_split = None if use_sparse else _split_tensor(nkr)
    if use_sparse and use_batched and workspace is None:
        workspace = get_coal_workspace(dtype)
    live = selection.fork()

    for ix in interactions:
        sel = live.mask(ix)
        if not sel.any():
            continue
        idx = np.flatnonzero(sel)
        a_full = dists[ix.collector][idx]
        b_full = dists[ix.collected][idx]

        # Restrict the pair loops to occupied bins: empty bins contribute
        # exact zeros, so the result is bitwise identical while the work
        # shrinks to what the scalar code's occupied-bin bounds would do.
        if occupied is not None:
            na = max(1, int(occupied[ix.collector][idx].max()))
            nb = max(1, int(occupied[ix.collected][idx].max()))
        else:
            na = nb = nkr
        ws = w_full[idx]

        if use_sparse and use_batched:
            _apply_sparse_batched(
                dists, ix, idx, a_full, b_full, na, nb, ws, dt, dtype, tables,
                nkr, workspace,
            )
        elif use_sparse:
            _apply_sparse(
                dists, ix, idx, a_full, b_full, na, nb, ws, dt, dtype, tables, nkr
            )
        else:
            _apply_dense(
                dists, ix, idx, a_full, b_full, na, nb, ws, dt, dtype, tables,
                nkr, g_split,
            )
        live.refresh(dists, {ix.collector, ix.collected, ix.product}, idx)

    return stats


def coal_bott_step_members(
    dists: dict[Species, np.ndarray],
    temperature: np.ndarray,
    pressure_mb: np.ndarray,
    dt: float,
    tables: KernelTables,
    interactions: tuple[Interaction, ...],
    segments: list[tuple[int, int]],
    occupied: dict[Species, np.ndarray] | None = None,
    on_demand: bool = False,
    dtype: np.dtype | type = np.float64,
    selection: CoalSelection | None = None,
    use_sparse: bool = True,
    use_batched: bool = False,
    workspace: CoalWorkspace | None = None,
) -> list[CoalWorkStats]:
    """One collision step over member-concatenated points, in place.

    ``dists`` holds every member's active points concatenated
    member-major; ``segments[m]`` is member ``m``'s row range. Returns
    the per-member work stats a solo :func:`coal_bott_step` of each
    member would report.

    What is shared across members is everything row-local: the
    temperature-gate cache, the per-row sums, the interaction masks,
    ``flatnonzero``, the pressure weights, and the post-apply
    ``refresh`` — one Python sweep over the interaction list instead of
    N. The operator applications themselves stay per member: BLAS
    GEMM/GEMV results for a given row depend on the call's total row
    count (kernel/blocking selection), so concatenating members' rows
    into one apply would perturb rows at the ulp level — and the
    occupied-bin rectangle ``(na, nb)`` is member-specific anyway (the
    solo step takes the *member's* max, and the rectangle sets the BLAS
    inner dimension). Each member's apply therefore runs on exactly its
    own rows at exactly its solo rectangle, which reproduces the solo
    update bit-for-bit; members write disjoint row sets, so their order
    is immaterial.
    """
    npts = temperature.shape[0]
    if selection is None and npts:
        selection = CoalSelection.build(dists, temperature)
    stats = predict_coal_work_members(
        dists, temperature, tables, interactions, occupied, on_demand,
        segments, selection=selection,
    )
    if npts == 0:
        return stats

    nkr = next(iter(dists.values())).shape[1]
    dtype = np.dtype(dtype)
    w_full = (
        (np.asarray(pressure_mb) - KERNEL_P_LOW_MB)
        / (KERNEL_P_HIGH_MB - KERNEL_P_LOW_MB)
    ).astype(dtype)
    use_sparse = use_sparse and _pair_split(nkr).triangular
    g_split = None if use_sparse else _split_tensor(nkr)
    if use_sparse and use_batched and workspace is None:
        workspace = get_coal_workspace(dtype)
    live = selection.fork()
    starts = np.asarray([s for s, _ in segments])
    stops = np.asarray([e for _, e in segments])

    for ix in interactions:
        sel = live.mask(ix)
        if not sel.any():
            continue
        idx = np.flatnonzero(sel)
        occ_a = occupied[ix.collector] if occupied is not None else None
        occ_b = occupied[ix.collected] if occupied is not None else None
        los = np.searchsorted(idx, starts)
        his = np.searchsorted(idx, stops)

        for lo, hi in zip(los, his):
            if hi == lo:
                continue
            rows = idx[lo:hi]
            if occ_a is not None:
                na = max(1, int(occ_a[rows].max()))
                nb = max(1, int(occ_b[rows].max()))
            else:
                na = nb = nkr
            a_full = dists[ix.collector][rows]
            b_full = dists[ix.collected][rows]
            ws = w_full[rows]
            if use_sparse and use_batched:
                _apply_sparse_batched(
                    dists, ix, rows, a_full, b_full, na, nb, ws, dt, dtype,
                    tables, nkr, workspace,
                )
            elif use_sparse:
                _apply_sparse(
                    dists, ix, rows, a_full, b_full, na, nb, ws, dt, dtype,
                    tables, nkr,
                )
            else:
                _apply_dense(
                    dists, ix, rows, a_full, b_full, na, nb, ws, dt, dtype,
                    tables, nkr, g_split,
                )
        live.refresh(dists, {ix.collector, ix.collected, ix.product}, idx)

    return stats
