"""The baseline ``kernals_ks`` precompute (deleted by stage 1).

In the unmodified FSBM, every call to ``coal_bott_new`` first invokes
``kernals_ks``, which fills all 20 global collision arrays
(``cwll .. cwgl``) by pressure-interpolating the 750/500 mb reference
tables for the current grid point — ``20 * nkr * nkr`` entries per
point, whether or not they are later read (Listing 3).

This module reproduces that precompute both as runnable numerics (used
by tests to show the on-demand path reads identical values) and as the
work count the baseline stage charges to the cost model.
"""

from __future__ import annotations

import numpy as np

from repro.fsbm.collision_kernels import FLOPS_PER_ENTRY, KernelTables
from repro.fsbm.species import INTERACTIONS


def kernals_ks(
    tables: KernelTables, pressure_mb: float
) -> dict[str, np.ndarray]:
    """Fill all 20 collision arrays for one grid point's pressure.

    Returns the ``cw**`` arrays exactly as the global-variable version
    would leave them. Note these are *overwritten on every call and
    never read across calls* — the property Codee's dependence analysis
    surfaces (``map(from:)`` in Listing 4) and the justification for
    deleting this routine.
    """
    return {
        ix.name: tables.interpolate_table(ix.name, pressure_mb)
        for ix in INTERACTIONS
    }


def kernals_ks_levels(
    tables: KernelTables, pressures_mb: np.ndarray
) -> dict[str, np.ndarray]:
    """Vectorized precompute for a column of pressures: (nlev, nkr, nkr)."""
    return {
        ix.name: tables.interpolate_levels(ix.name, pressures_mb)
        for ix in INTERACTIONS
    }


def baseline_flops_per_point(tables: KernelTables) -> float:
    """FLOPs one ``kernals_ks`` call performs."""
    return tables.baseline_entry_count() * FLOPS_PER_ENTRY


def baseline_bytes_per_point(tables: KernelTables) -> float:
    """Logical bytes one call moves (two table reads, one store)."""
    return tables.baseline_entry_count() * 4.0 * 3.0
