"""Freezing and melting phase transitions between the bin species.

* Homogeneous freezing: below -38 C all liquid freezes instantly —
  small bins become plate crystals, large drops become hail.
* Immersion freezing: between -38 C and -5 C, large drops freeze with a
  Bigg-style exponential rate in supercooling.
* Melting: above 0 C, ice habits and snow melt within one step; graupel
  and hail melt with a finite relaxation time (they survive a fall
  through the melting layer, as in the full FSBM).

All transfers move number between equal-mass bins of different species,
so condensate mass is conserved exactly; latent heat of fusion feeds
back on temperature.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.constants import T_0
from repro.fsbm.species import ICE_HABITS, Species, species_bins
from repro.fsbm.thermo import latent_heating

#: Homogeneous-freezing threshold [K].
T_HOMOGENEOUS = T_0 - 38.0

#: Drops at or above this bin index freeze to hail (smaller ones to
#: plates): roughly the 100 um radius boundary of drop freezing.
HAIL_BIN_THRESHOLD = 14

#: Bigg immersion-freezing rate coefficient [s^-1].
BIGG_A = 1.0e-4
BIGG_B = 0.66  # [K^-1]

#: Melting relaxation times [s].
TAU_MELT_FAST = 1.0  # ice habits, snow
TAU_MELT_SLOW = 600.0  # graupel, hail

#: FLOPs per (point, bin) of the phase-change sweep.
FLOPS_PER_BIN = 8.0


@dataclass
class FreezeWorkStats:
    """Work counts for one freezing/melting call."""

    bin_updates: float = 0.0

    @property
    def flops(self) -> float:
        return self.bin_updates * FLOPS_PER_BIN

    @property
    def bytes_moved(self) -> float:
        return self.bin_updates * 4.0 * 3.0

    def merge(self, other: "FreezeWorkStats") -> None:
        self.bin_updates += other.bin_updates


def freezing_melting_step(
    dists: dict[Species, np.ndarray],
    temperature: np.ndarray,
    rho_air: np.ndarray,
    dt: float,
) -> FreezeWorkStats:
    """Apply freezing and melting to ``(npts, nkr)`` distributions."""
    npts = temperature.shape[0]
    stats = FreezeWorkStats()
    if npts == 0:
        return stats
    grids = species_bins()
    liq = dists[Species.LIQUID]
    nkr = liq.shape[1]
    masses = grids[Species.LIQUID].masses

    # --- freezing ----------------------------------------------------------
    supercool = np.maximum(T_0 - temperature, 0.0)
    frac = np.where(
        temperature <= T_HOMOGENEOUS,
        1.0,
        1.0 - np.exp(-BIGG_A * np.exp(BIGG_B * supercool) * dt),
    )
    frac = np.where(supercool > 5.0, frac, 0.0)[:, None]
    if frac.any():
        frozen = liq * frac
        # Small drops -> plate crystals; large drops -> hail embryos.
        small = frozen[:, :HAIL_BIN_THRESHOLD]
        large = frozen[:, HAIL_BIN_THRESHOLD:]
        dists[Species.ICE_PLA][:, :HAIL_BIN_THRESHOLD] += small
        dists[Species.HAIL][:, HAIL_BIN_THRESHOLD:] += large
        liq -= frozen
        dq = (frozen @ masses) / rho_air
        temperature += latent_heating(dq, "freezing")
        stats.bin_updates += float(npts * nkr)

    # --- melting -----------------------------------------------------------
    warm = temperature > T_0
    if warm.any():
        for sp in (*ICE_HABITS, Species.SNOW, Species.GRAUPEL, Species.HAIL):
            tau = (
                TAU_MELT_FAST
                if sp in (*ICE_HABITS, Species.SNOW)
                else TAU_MELT_SLOW
            )
            melt_frac = np.where(warm, 1.0 - np.exp(-dt / tau), 0.0)[:, None]
            melted = dists[sp] * melt_frac
            if not melted.any():
                continue
            dists[sp] -= melted
            liq += melted
            dq = (melted @ masses) / rho_air
            temperature -= latent_heating(dq, "freezing")
            stats.bin_updates += float(npts * nkr)

    return stats
