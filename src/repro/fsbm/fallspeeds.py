"""Terminal fall speeds per hydrometeor species (CGS units).

Smooth analytic laws standing in for the tabulated fall speeds of the
original FSBM. Each species blends a Stokes-regime quadratic with a
saturating large-particle limit; ice-phase particles are slower than
drops of equal size, snow the slowest. A pressure (air-density) factor
``(p_ref / p)^0.4`` speeds particles up aloft, which is what makes the
750 mb and 500 mb collision-kernel tables differ.
"""

from __future__ import annotations

import numpy as np

from repro.fsbm.species import Species

#: Reference pressure for the base fall-speed laws [mb].
P_REF_MB = 1000.0

#: Exponent of the air-density correction.
DENSITY_EXPONENT = 0.4

#: Cap on the density correction (drag physics saturates it well below
#: the bare power law in the thin upper troposphere).
DENSITY_FACTOR_MAX = 1.9

#: (stokes coefficient [cm^-1 s^-1], terminal limit [cm/s]) per species.
_LAWS: dict[Species, tuple[float, float]] = {
    Species.LIQUID: (1.19e6, 920.0),
    Species.ICE_COL: (5.0e5, 70.0),
    Species.ICE_PLA: (4.0e5, 100.0),
    Species.ICE_DEN: (2.0e5, 60.0),
    Species.SNOW: (1.2e5, 130.0),
    Species.GRAUPEL: (6.0e5, 1300.0),
    Species.HAIL: (8.0e5, 3300.0),
}


def terminal_velocity(
    species: Species, radii: np.ndarray, pressure_mb: float | np.ndarray = P_REF_MB
) -> np.ndarray:
    """Fall speed [cm/s] for particle radii [cm] at a given pressure.

    The blend ``v = v_stokes / sqrt(1 + (v_stokes / v_inf)^2)`` is
    smooth, monotone in radius, and approaches the Stokes law for small
    particles and ``v_inf`` for large ones.
    """
    stokes_coeff, v_inf = _LAWS[species]
    r = np.asarray(radii, dtype=np.float64)
    v_stokes = stokes_coeff * r * r
    v = v_stokes / np.sqrt(1.0 + (v_stokes / v_inf) ** 2)
    factor = (P_REF_MB / np.asarray(pressure_mb, dtype=np.float64)) ** DENSITY_EXPONENT
    factor = np.minimum(factor, DENSITY_FACTOR_MAX)
    return v * factor
