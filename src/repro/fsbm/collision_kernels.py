"""Collision-kernel lookup tables and their two access paths.

The original ``kernals_ks`` keeps, for each of the 20 interactions, two
precomputed ``(nkr, nkr)`` tables at 750 mb and 500 mb (``ywls_750mb``,
``ywls_500mb``, ...) and fills a global ``cw**`` array per grid point by
linear pressure interpolation (Listing 3). The paper's first
optimization deletes that precompute and evaluates single entries on
demand through pure ``get_cw**(i, j, ...)`` functions (Listing 5).

Both paths are implemented here against the *same* underlying tables,
so their numerics agree bit-for-bit while their operation counts differ
— which is exactly the paper's stage-1 claim.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.constants import KERNEL_P_HIGH_MB, KERNEL_P_LOW_MB
from repro.core.cache import cached
from repro.fsbm.fallspeeds import terminal_velocity
from repro.fsbm.species import INTERACTIONS, INTERACTIONS_BY_NAME, Interaction, Species, species_bins

#: FLOPs charged per interpolated kernel entry (load-scale-add of
#: Listing 3: two table reads, one subtract, one multiply, one add).
FLOPS_PER_ENTRY = 4.0

#: FLOPs to *build* one table entry from the physics (geometric sweep
#: kernel: radii sum, squares, velocity difference, efficiency).
FLOPS_PER_TABLE_ENTRY = 12.0

#: Capture-efficiency scale radius [cm]: droplets much smaller than
#: this are swept around the collector.
EFFICIENCY_R0 = 10.0e-4

#: Long (1974)-style small-drop enhancement coefficient [cm^3 g^-2 s^-1];
#: keeps the drop-drop kernel nonzero where fall speeds are equal.
LONG_COEFF = 9.44e9


def _collection_efficiency(r_small: np.ndarray, r_large: np.ndarray) -> np.ndarray:
    """Geometric-sweep capture efficiency in [0, 1]."""
    e = (r_small**2) / (r_small**2 + EFFICIENCY_R0**2)
    return 0.9 * e * (r_large / (r_large + 2.0e-4))


def _geometric_kernel(
    ix: Interaction, pressure_mb: float, bins: dict[Species, "object"]
) -> np.ndarray:
    """Gravitational collection kernel K(i, j) [cm^3/s] at one pressure.

    ``K = pi (r_i + r_j)^2 |v_i - v_j| E`` plus, for drop-drop pairs, a
    Long-style term proportional to the squared masses so equal-fall-
    speed pairs still coalesce (turbulence/Brownian stand-in).
    """
    ga = bins[ix.collector]
    gb = bins[ix.collected]
    ri = ga.radii[:, None]
    rj = gb.radii[None, :]
    vi = terminal_velocity(ix.collector, ga.radii, pressure_mb)[:, None]
    vj = terminal_velocity(ix.collected, gb.radii, pressure_mb)[None, :]
    r_small = np.minimum(ri, rj)
    r_large = np.maximum(ri, rj)
    eff = _collection_efficiency(r_small, r_large)
    kern = np.pi * (ri + rj) ** 2 * np.abs(vi - vj) * eff
    if ix.collector is Species.LIQUID and ix.collected is Species.LIQUID:
        mi = ga.masses[:, None]
        mj = gb.masses[None, :]
        kern = kern + LONG_COEFF * (mi * mi + mj * mj) * np.exp(
            -((r_large / 50.0e-4) ** 2)
        )
    return kern


@dataclass(frozen=True)
class KernelTables:
    """All 40 reference tables (20 interactions x 2 pressure levels).

    ``tables_750[name]`` / ``tables_500[name]`` are ``(nkr, nkr)``
    float64 arrays — the ``yw**_750mb`` / ``yw**_500mb`` module data of
    the Fortran.
    """

    tables_750: dict[str, np.ndarray]
    tables_500: dict[str, np.ndarray]
    nkr: int

    @classmethod
    def build(cls) -> "KernelTables":
        """Construct the tables from the fall-speed physics."""
        bins = species_bins()
        t750: dict[str, np.ndarray] = {}
        t500: dict[str, np.ndarray] = {}
        for ix in INTERACTIONS:
            t750[ix.name] = _geometric_kernel(ix, KERNEL_P_HIGH_MB, bins)
            t500[ix.name] = _geometric_kernel(ix, KERNEL_P_LOW_MB, bins)
        nkr = next(iter(t750.values())).shape[0]
        return cls(tables_750=t750, tables_500=t500, nkr=nkr)

    # --- baseline path: full-table interpolation (kernals_ks) -------------

    def interpolate_table(self, name: str, pressure_mb: float) -> np.ndarray:
        """Full ``(nkr, nkr)`` table at one pressure (Listing 3 math)."""
        k750 = self.tables_750[name]
        k500 = self.tables_500[name]
        w = (pressure_mb - KERNEL_P_LOW_MB) / (KERNEL_P_HIGH_MB - KERNEL_P_LOW_MB)
        return k500 + (k750 - k500) * w

    def interpolate_levels(self, name: str, pressures_mb: np.ndarray) -> np.ndarray:
        """Tables for a column of pressures: shape ``(nlev, nkr, nkr)``."""
        k750 = self.tables_750[name]
        k500 = self.tables_500[name]
        w = (np.asarray(pressures_mb) - KERNEL_P_LOW_MB) / (
            KERNEL_P_HIGH_MB - KERNEL_P_LOW_MB
        )
        return k500[None, :, :] + (k750 - k500)[None, :, :] * w[:, None, None]

    # --- lookup path: on-demand entries (Listing 5) ------------------------

    def get_cw(self, name: str, i: int, j: int, pressure_mb: float) -> float:
        """One kernel entry on demand — the pure ``get_cw**`` function.

        ``i``/``j`` are 1-based bin indices, as in the Fortran call
        sites (``get_cwlg(i, j, ...)``).
        """
        k1 = self.tables_750[name][i - 1, j - 1]
        k2 = self.tables_500[name][i - 1, j - 1]
        w = (pressure_mb - KERNEL_P_LOW_MB) / (KERNEL_P_HIGH_MB - KERNEL_P_LOW_MB)
        return float(k2 + (k1 - k2) * w)

    def __getattr__(self, attr: str):
        # get_cwlg(i, j, p) style accessors for every interaction name.
        if attr.startswith("get_cw"):
            name = attr[len("get_") :]
            if name in INTERACTIONS_BY_NAME:
                return lambda i, j, pressure_mb: self.get_cw(name, i, j, pressure_mb)
        raise AttributeError(attr)

    # --- work accounting ----------------------------------------------------

    def baseline_entry_count(self) -> int:
        """Entries ``kernals_ks`` fills per call: all 20 full tables."""
        return len(INTERACTIONS) * self.nkr * self.nkr

    def ondemand_entry_count(
        self, interactions: tuple[Interaction, ...], occupied: dict[Species, int]
    ) -> int:
        """Entries the lookup-optimized code touches.

        Only active interactions are evaluated, and only up to the
        highest occupied bin of each participating species — the
        paper's "not every entry of an array is used".
        """
        total = 0
        for ix in interactions:
            na = occupied.get(ix.collector, 0)
            nb = occupied.get(ix.collected, 0)
            total += na * nb
        return total


@cached("fsbm.kernel_tables", maxsize=1)
def get_tables() -> KernelTables:
    """Shared singleton of the reference tables (expensive to build)."""
    return KernelTables.build()


def tables_token(tables: KernelTables) -> tuple:
    """A cheap content fingerprint of a tables object.

    Caches deriving data *from* a :class:`KernelTables` (the sparse
    collision operators) key on this instead of object identity, so two
    independently built but identical tables share entries and a
    physics change invalidates them. Computed once per instance.
    """
    tok = tables.__dict__.get("_content_token")
    if tok is None:
        tok = (
            tables.nkr,
            len(tables.tables_500),
            float(sum(t.sum() for t in tables.tables_500.values())),
            float(sum(t.sum() for t in tables.tables_750.values())),
        )
        object.__setattr__(tables, "_content_token", tok)
    return tok
