"""Gravitational sedimentation of binned hydrometeors.

First-order upwind flux in the vertical, one pass per species. Operates
on the full patch arrays ``(ni, nk, nj, nkr)`` with ``k = 0`` at the
surface; mass leaving the lowest level accumulates as surface
precipitation. Fall speeds take the level-pressure density correction.

The CFL number ``v dt / dz`` stays below one for every species at the
CONUS-12km time step (hail ~33 m/s, dt = 5 s, dz = 500 m), so the
explicit scheme is stable; an assertion guards this.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.fsbm.fallspeeds import terminal_velocity
from repro.fsbm.species import Species, species_bins
from repro.fsbm.state import MicroState

#: FLOPs per (cell, bin) of the upwind update (flux build, two
#: updates, precipitation accumulation).
FLOPS_PER_BIN = 12.0


@dataclass
class SedWorkStats:
    """Work counts for one sedimentation sweep."""

    cell_bins: float = 0.0

    @property
    def flops(self) -> float:
        return self.cell_bins * FLOPS_PER_BIN

    @property
    def bytes_moved(self) -> float:
        return self.cell_bins * 4.0 * 3.0

    def merge(self, other: "SedWorkStats") -> None:
        self.cell_bins += other.cell_bins


def sedimentation_step(
    state: MicroState,
    pressure_mb_levels: np.ndarray,
    dz_cm: float,
    dt: float,
) -> SedWorkStats:
    """Advance all species by one upwind sedimentation step, in place.

    ``pressure_mb_levels`` has shape ``(nk,)`` (base-state column) and
    sets the fall-speed density correction per level.
    """
    ni, nk, nj = state.shape
    stats = SedWorkStats()
    grids = species_bins()
    for sp in Species:
        n = state.dists[sp]
        if not n.any():
            continue
        # v[k, bin]: fall speed per level and bin [cm/s] (one broadcast
        # evaluation instead of a per-level loop).
        v = terminal_velocity(
            sp,
            grids[sp].radii[None, :],
            np.asarray(pressure_mb_levels)[:, None],
        )
        courant = v * dt / dz_cm
        assert courant.max() <= 1.0, (
            f"sedimentation CFL violated for {sp}: {courant.max():.2f} "
            "(reduce dt or increase dz)"
        )
        flux = n * courant[None, :, None, :]  # number leaving each cell downward
        n -= flux
        n[:, :-1, :, :] += flux[:, 1:, :, :]
        # Lowest level's flux reaches the ground as precipitation mass.
        state.precip += flux[:, 0, :, :] @ grids[sp].masses
        stats.cell_bins += float(n.size)
    return stats
