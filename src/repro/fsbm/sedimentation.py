"""Gravitational sedimentation of binned hydrometeors.

First-order upwind flux in the vertical, one pass per species. Operates
on the full patch arrays ``(ni, nk, nj, nkr)`` with ``k = 0`` at the
surface; mass leaving the lowest level accumulates as surface
precipitation. Fall speeds take the level-pressure density correction.

The CFL number ``v dt / dz`` stays below one for every species at the
CONUS-12km time step (hail ~33 m/s, dt = 5 s, dz = 500 m), so the
explicit scheme is stable; an assertion guards this.

Two step-invariant costs are hoisted out of the loop:

* the per-species courant table depends only on the base-state pressure
  column and ``dt/dz``, so it is memoized in the
  ``fsbm.sed_courant`` :class:`~repro.core.cache.CountingCache` rather
  than re-deriving ~4k ``terminal_velocity`` evaluations per step;
* with the compiled path (:mod:`repro.fsbm.ckernels`, default on) the
  whole sweep — all species, flux build, shifted carry, precipitation
  dot — runs as one C loop nest with no full-field temporaries,
  bit-identical to the numpy reference (see the kernel module's
  equivalence notes). ``native=False`` or ``REPRO_DISABLE_CPHYS=1``
  forces the numpy path.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.cache import get_cache
from repro.fsbm import ckernels
from repro.fsbm.fallspeeds import terminal_velocity
from repro.fsbm.species import Species, species_bins
from repro.fsbm.state import MicroState

#: FLOPs per (cell, bin) of the upwind update (flux build, two
#: updates, precipitation accumulation).
FLOPS_PER_BIN = 12.0

_courant_cache = get_cache("fsbm.sed_courant", maxsize=16)


@dataclass
class SedWorkStats:
    """Work counts for one sedimentation sweep."""

    cell_bins: float = 0.0

    @property
    def flops(self) -> float:
        return self.cell_bins * FLOPS_PER_BIN

    @property
    def bytes_moved(self) -> float:
        return self.cell_bins * 4.0 * 3.0

    def merge(self, other: "SedWorkStats") -> None:
        self.cell_bins += other.cell_bins


def _courant_tables(
    pressure_mb_levels: np.ndarray, dz_cm: float, dt: float
) -> dict:
    """Step-invariant sedimentation tables for one base-state column.

    Keyed by the pressure column and ``dt``/``dz``; holds the stacked
    ``(nsp, nk, nkr)`` courant table, the stacked bin masses, the
    per-species CFL maxima, and the per-species courant rows used by
    the numpy path (bitwise the same arrays either path reads).
    """
    p = np.ascontiguousarray(pressure_mb_levels, dtype=np.float64)
    key = (float(dt), float(dz_cm), p.shape[0], p.tobytes())

    def build() -> dict:
        grids = species_bins()
        splist = list(Species)
        courant = {}
        for sp in splist:
            # v[k, bin]: fall speed per level and bin [cm/s] (one
            # broadcast evaluation instead of a per-level loop).
            v = terminal_velocity(sp, grids[sp].radii[None, :], p[:, None])
            courant[sp] = v * dt / dz_cm
        nkr = max(c.shape[1] for c in courant.values())
        stack = np.zeros((len(splist), p.shape[0], nkr))
        masses = np.zeros((len(splist), nkr))
        for isp, sp in enumerate(splist):
            nb = courant[sp].shape[1]
            stack[isp, :, :nb] = courant[sp]
            masses[isp, :nb] = grids[sp].masses
        return {
            "species": splist,
            "courant": courant,
            "cmax": {sp: float(courant[sp].max()) for sp in splist},
            "stack": np.ascontiguousarray(stack),
            "masses": np.ascontiguousarray(masses),
        }

    return _courant_cache.get_or_build(key, build)


def _check_cfl(sp: Species, cmax: float) -> None:
    assert cmax <= 1.0, (
        f"sedimentation CFL violated for {sp}: {cmax:.2f} "
        "(reduce dt or increase dz)"
    )


def sedimentation_step(
    state: MicroState,
    pressure_mb_levels: np.ndarray,
    dz_cm: float,
    dt: float,
    native: bool = True,
) -> SedWorkStats:
    """Advance all species by one upwind sedimentation step, in place.

    ``pressure_mb_levels`` has shape ``(nk,)`` (base-state column) and
    sets the fall-speed density correction per level. ``native``
    selects the compiled fused sweep when available (transparently
    falling back to numpy otherwise).
    """
    stats = SedWorkStats()
    tables = _courant_tables(pressure_mb_levels, dz_cm, dt)

    lib = ckernels.load_kernels() if native else None
    if lib is not None and tables["stack"].shape[2] == state.nkr:
        # The kernel touches only rows with nonzero number, so the CFL
        # guard need only fire for species that are both violating and
        # present — same observable behavior as the per-species loop.
        for sp in tables["species"]:
            if tables["cmax"][sp] > 1.0 and state.dists[sp].any():
                _check_cfl(sp, tables["cmax"][sp])
        dists = [state.dists[sp] for sp in tables["species"]]
        active = ckernels.sed_sweep(
            lib, dists, tables["stack"], tables["masses"], state.precip
        )
        if active is not None:
            for isp, sp in enumerate(tables["species"]):
                if active[isp]:
                    stats.cell_bins += float(state.dists[sp].size)
            return stats
        # Unsupported layout (dtype/stride mismatch): numpy path below.

    for sp in tables["species"]:
        n = state.dists[sp]
        if not n.any():
            continue
        _check_cfl(sp, tables["cmax"][sp])
        courant = tables["courant"][sp]
        flux = n * courant[None, :, None, :]  # number leaving each cell downward
        n -= flux
        n[:, :-1, :, :] += flux[:, 1:, :, :]
        # Lowest level's flux reaches the ground as precipitation mass.
        state.precip += flux[:, 0, :, :] @ species_bins()[sp].masses
        stats.cell_bins += float(n.size)
    return stats


def sedimentation_step_members(
    states: list[MicroState],
    dists_stacked: dict[Species, np.ndarray],
    precip_stacked: np.ndarray,
    pressure_mb_levels: np.ndarray,
    dz_cm: float,
    dt: float,
    native: bool = True,
) -> list[SedWorkStats]:
    """One sedimentation sweep over every ensemble member, in place.

    ``dists_stacked[sp]`` is the member-stacked ``(nm, ni, nk, nj,
    nkr)`` view of each species (all members resident in one
    superblock) and ``precip_stacked`` the ``(nm, ni, nj)`` surface
    accumulator whose member rows are the states' ``precip`` arrays.
    The courant/fall-speed tables are step-invariant and shared across
    members through the ``fsbm.sed_courant`` cache, so N members pay
    for one table build. Per-member stats come from the kernel's
    per-(member, species) ``active`` flags and are identical to what a
    solo :func:`sedimentation_step` of each member reports; the sweep
    itself is bit-identical per member (the member loop only changes
    the base pointer). Falls back to per-member solo sweeps when the
    compiled kernel is unavailable or the stacked layout is
    unsupported.
    """
    nm = len(states)
    tables = _courant_tables(pressure_mb_levels, dz_cm, dt)

    lib = ckernels.load_kernels() if native else None
    if lib is not None and tables["stack"].shape[2] == states[0].nkr:
        for sp in tables["species"]:
            if tables["cmax"][sp] > 1.0 and any(
                st.dists[sp].any() for st in states
            ):
                _check_cfl(sp, tables["cmax"][sp])
        dists = [dists_stacked[sp] for sp in tables["species"]]
        active = ckernels.sed_sweep_members(
            lib, dists, tables["stack"], tables["masses"], precip_stacked
        )
        if active is not None:
            out = []
            for m, state in enumerate(states):
                stats = SedWorkStats()
                for isp, sp in enumerate(tables["species"]):
                    if active[m, isp]:
                        stats.cell_bins += float(state.dists[sp].size)
                out.append(stats)
            return out
        # Unsupported stacked layout: per-member solo sweeps below.

    return [
        sedimentation_step(
            state, pressure_mb_levels, dz_cm, dt, native=native
        )
        for state in states
    ]
