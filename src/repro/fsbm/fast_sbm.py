"""The ``fast_sbm`` driver: Listing 1's grid loops, stage by stage.

One :class:`FastSBM` instance advances a patch's microphysics by one
model step: nucleation -> condensation (``onecond1``/``onecond2``) ->
freezing/melting -> collision–coalescence -> sedimentation, with the
collision part dispatched per optimization stage:

* CPU stages charge the scalar-loop work to the rank clock through the
  Milan cost model;
* offload stages fission the collision loop out (the paper's predicate
  array ``call_coal_bott_new``), move the gathered bin data through
  ``map`` clauses, and launch the kernel on the simulated A100 — in
  float32, so device results genuinely differ from host float64.
"""

from __future__ import annotations

from contextlib import ExitStack
from dataclasses import dataclass, field

import numpy as np

from repro.constants import T_COAL_CUTOFF, T_FREEZE_CUTOFF, T_0
from repro.core.clock import SimClock, TimeBucket
from repro.core.costmodel import CpuCostModel
from repro.core.directives import (
    Map,
    MapType,
    TargetTeamsDistributeParallelDo,
)
from repro.core.engine import KernelRecord, OffloadEngine
from repro.core.kernel import Kernel, KernelResources, estimate_registers
from repro.errors import ConfigurationError
from repro.fsbm.coal_bott import (
    CoalSelection,
    CoalWorkStats,
    coal_bott_step,
    coal_bott_step_members,
    predict_coal_work,
)
from repro.fsbm.collision_kernels import KernelTables, get_tables
from repro.fsbm.condensation import (
    CondWorkStats,
    onecond1,
    onecond1_members,
    onecond2,
    onecond2_members,
)
from repro.fsbm.freezing import FreezeWorkStats, freezing_melting_step
from repro.fsbm.nucleation import NuclWorkStats, jernucl01_ks
from repro.fsbm.sedimentation import (
    SedWorkStats,
    sedimentation_step,
    sedimentation_step_members,
)
from repro.fsbm.species import INTERACTIONS, Species
from repro.fsbm.state import MicroState, N_EPS
from repro.fsbm.temp_arrays import (
    FRAME_SWEEPS,
    TempArrays,
    automatic_frame_bytes,
    per_point_temp_bytes,
)
from repro.hardware.memory import AccessPattern, TrafficComponent
from repro.optim.stages import STAGE_SPECS, Stage, StageSpec


@dataclass
class SbmStepStats:
    """Per-step accounting returned by :meth:`FastSBM.step`."""

    mp_points: int = 0
    coal_points: int = 0
    coal: CoalWorkStats = field(default_factory=CoalWorkStats)
    cond: CondWorkStats = field(default_factory=CondWorkStats)
    nucl: NuclWorkStats = field(default_factory=NuclWorkStats)
    sed: SedWorkStats = field(default_factory=SedWorkStats)
    freeze: FreezeWorkStats = field(default_factory=FreezeWorkStats)
    coal_record: KernelRecord | None = None
    #: Simulated seconds spent in the collision part this step.
    coal_seconds: float = 0.0
    #: Simulated seconds spent in fast_sbm in total this step.
    fast_sbm_seconds: float = 0.0


def _gather(arrays: dict[Species, np.ndarray], mask: np.ndarray):
    """Gather per-species patch arrays to (npts, nkr) working copies.

    Boolean-mask indexing is used (rather than flat indices) so the
    patch arrays may be views into halo-extended allocations.
    """
    return {sp: arr[mask] for sp, arr in arrays.items()}


def _scatter(
    arrays: dict[Species, np.ndarray],
    gathered: dict[Species, np.ndarray],
    mask: np.ndarray,
) -> None:
    """Write gathered working copies back into the patch arrays."""
    for sp, arr in arrays.items():
        arr[mask] = gathered[sp]


class FastSBM:
    """Stage-dispatching FSBM microphysics for one rank's patch."""

    def __init__(
        self,
        stage: Stage,
        dt: float,
        clock: SimClock,
        cpu_cost: CpuCostModel,
        engine: OffloadEngine | None = None,
        tables: KernelTables | None = None,
        precision: str = "fp32",
        offload_condensation: bool = False,
        autocompare: bool = False,
        use_native_physics: bool = True,
        use_batched_coal: bool = False,
    ):
        self.stage = stage
        self.spec: StageSpec = STAGE_SPECS[stage]
        self.dt = dt
        self.clock = clock
        self.cpu_cost = cpu_cost
        self.engine = engine
        self.tables = tables or get_tables()
        self.precision = precision
        #: Sec. VIII's in-progress extension: offload the loops calling
        #: the condensation routines "using a similar approach".
        self.offload_condensation = offload_condensation
        #: ``-gpu=autocompare``: shadow every offloaded collision region
        #: on the host in fp64 and record the per-step agreement.
        self.autocompare = autocompare
        self.autocompare_reports: list = []
        #: Route sedimentation/condensation through the compiled kernels
        #: of :mod:`repro.fsbm.ckernels` (numpy fallback is automatic).
        self.use_native_physics = use_native_physics
        #: Route collisions through the batched-GEMM workspace engine.
        self.use_batched_coal = use_batched_coal
        self.temp_arrays: TempArrays | None = None
        if stage.uses_gpu and engine is None:
            raise ConfigurationError(f"stage {stage} requires an offload engine")
        if offload_condensation and not stage.uses_gpu:
            raise ConfigurationError(
                "condensation offload requires a GPU stage"
            )

    # --- cost charging -------------------------------------------------------

    def _charge_cpu(self, flops: float, nbytes: float, iterations: int = 0) -> None:
        self.clock.advance(
            TimeBucket.CPU_COMPUTE, self.cpu_cost.time(flops, nbytes, iterations)
        )

    # --- the step -------------------------------------------------------------

    def step(
        self,
        state: MicroState,
        temperature: np.ndarray,
        pressure_mb: np.ndarray,
        qv: np.ndarray,
        rho_air: np.ndarray,
        dz_cm: float,
    ) -> SbmStepStats:
        """Advance the patch microphysics by ``dt`` (all arrays in place)."""
        stats = SbmStepStats()
        ni, nk, nj = state.shape
        nkr = state.nkr
        npatch = ni * nk * nj
        step_start = self.clock.total

        with self.clock.region("fast_sbm"):
            # The i,k,j scan of Listing 1 (conditional tests at every cell).
            self._charge_cpu(2.0 * npatch, 8.0 * npatch, iterations=npatch)

            # Cells the microphysics touches: warm enough, and either
            # carrying condensate or saturated enough to form some. (The
            # Fortran scans every cell — charged above — but only these
            # do real work inside the conditionals.)
            from repro.fsbm.thermo import saturation_mixing_ratio

            qs = saturation_mixing_ratio(temperature, pressure_mb)
            condensate = state.total_condensate_mass()
            mp_mask = (temperature > T_FREEZE_CUTOFF) & (
                (condensate > N_EPS) | (qv > 0.98 * qs)
            )
            stats.mp_points = int(mp_mask.sum())
            if stats.mp_points:
                g_dists = _gather(state.dists, mp_mask)
                g_t = temperature[mp_mask]
                g_p = pressure_mb[mp_mask]
                g_qv = qv[mp_mask]
                g_rho = rho_air[mp_mask]
                g_ccn = state.ccn[mp_mask]

                # --- nucleation (jernucl01_ks) ------------------------------
                with self.clock.region("jernucl01_ks"):
                    stats.nucl = jernucl01_ks(
                        g_dists, g_t, g_p, g_qv, g_rho, g_ccn, self.dt
                    )
                    self._charge_cpu(stats.nucl.flops, stats.nucl.bytes_moved)

                # --- condensation (onecond1 / onecond2) ----------------------
                with self.clock.region("onecond"):
                    # One cheap presence scan per species (post-
                    # nucleation): an all-zero species contributes
                    # nothing to the ice gate and can skip every
                    # per-subset occupancy probe inside the
                    # condensation core, exactly.
                    sp_present = {sp: bool(g_dists[sp].any()) for sp in Species}
                    ice_present = np.zeros(g_t.shape[0], dtype=bool)
                    for sp in Species:
                        if sp is not Species.LIQUID and sp_present[sp]:
                            ice_present |= g_dists[sp].sum(axis=1) > N_EPS
                    warm = (g_t > T_0 - 5.0) & ~ice_present
                    if self.offload_condensation:
                        stats.cond = self._condensation_offloaded(
                            state, g_dists, g_t, g_p, g_qv, g_rho, g_ccn, warm
                        )
                    else:
                        stats.cond = self._condensation(
                            g_dists, g_t, g_p, g_qv, g_rho, g_ccn, warm,
                            species_present=sp_present,
                        )
                        self._charge_cpu(stats.cond.flops, stats.cond.bytes_moved)

                # --- freezing / melting --------------------------------------
                with self.clock.region("freezing"):
                    stats.freeze = freezing_melting_step(
                        g_dists, g_t, g_rho, self.dt
                    )
                    self._charge_cpu(stats.freeze.flops, stats.freeze.bytes_moved)

                # --- collision–coalescence (coal_bott_new) --------------------
                with self.clock.region("coal_bott_new"):
                    before = self.clock.total
                    stats.coal, stats.coal_points, stats.coal_record = (
                        self._collisions(state, g_dists, g_t, g_p)
                    )
                    stats.coal_seconds = self.clock.total - before

                _scatter(state.dists, g_dists, mp_mask)
                temperature[mp_mask] = g_t
                qv[mp_mask] = g_qv
                state.ccn[mp_mask] = g_ccn

            # --- sedimentation (full field) ----------------------------------
            with self.clock.region("sedimentation"):
                p_levels = pressure_mb.mean(axis=(0, 2))
                stats.sed = sedimentation_step(
                    state, p_levels, dz_cm, self.dt,
                    native=self.use_native_physics,
                )
                self._charge_cpu(stats.sed.flops, stats.sed.bytes_moved)

        stats.fast_sbm_seconds = self.clock.total - step_start
        return stats

    # --- condensation dispatch ------------------------------------------------

    def _condensation(
        self,
        g_dists: dict[Species, np.ndarray],
        g_t: np.ndarray,
        g_p: np.ndarray,
        g_qv: np.ndarray,
        g_rho: np.ndarray,
        g_ccn: np.ndarray,
        warm: np.ndarray,
        species_present: dict[Species, bool] | None = None,
    ) -> CondWorkStats:
        """Route warm points to onecond1 and mixed-phase to onecond2."""
        total = CondWorkStats()
        for mask, routine in ((warm, onecond1), (~warm, onecond2)):
            idx = np.flatnonzero(mask)
            if idx.size == 0:
                continue
            sub = {sp: d[idx] for sp, d in g_dists.items()}
            st, sp_, sq, sr, sc = (
                g_t[idx],
                g_p[idx],
                g_qv[idx],
                g_rho[idx],
                g_ccn[idx],
            )
            total.merge(
                routine(
                    sub, st, sp_, sq, sr, sc, self.dt,
                    native=self.use_native_physics,
                    species_present=species_present,
                )
            )
            for sp in g_dists:
                g_dists[sp][idx] = sub[sp]
            g_t[idx], g_qv[idx], g_ccn[idx] = st, sq, sc
        return total

    def _condensation_offloaded(
        self,
        state: MicroState,
        g_dists: dict[Species, np.ndarray],
        g_t: np.ndarray,
        g_p: np.ndarray,
        g_qv: np.ndarray,
        g_rho: np.ndarray,
        g_ccn: np.ndarray,
        warm: np.ndarray,
    ) -> CondWorkStats:
        """Offload the condensation loops (the Sec. VIII extension).

        Same recipe as the collision loop: predict the work, describe
        the kernel (onecond's working arrays are modest — a handful of
        per-bin temporaries — so the frame fits even default stacks),
        launch, run the real numerics in the body.
        """
        assert self.engine is not None
        from repro.fsbm.condensation import FLOPS_PER_BIN

        npts = int(g_t.shape[0])
        ni, nk, nj = state.shape
        nkr = state.nkr
        species_active = 1 + sum(
            1
            for sp in Species
            if sp is not Species.LIQUID and (g_dists[sp].sum(axis=1) > N_EPS).any()
        )
        predicted_updates = float(npts * nkr * species_active)
        flops = predicted_updates * FLOPS_PER_BIN
        result: list[CondWorkStats] = []

        resources = KernelResources(
            registers_per_thread=estimate_registers(24, 8),
            automatic_array_bytes=8 * nkr * 4,  # growth/remap temporaries
            working_set_per_thread=float(8 * nkr * 4),
            flops=flops,
            traffic=(
                TrafficComponent(
                    name="bin-distributions",
                    pattern=AccessPattern.GLOBAL_COALESCED,
                    read_bytes=predicted_updates * 4.0,
                    write_bytes=predicted_updates * 4.0,
                ),
                TrafficComponent(
                    name="thermo-fields",
                    pattern=AccessPattern.GLOBAL_COALESCED,
                    read_bytes=npts * 4.0 * 5,
                    write_bytes=npts * 4.0 * 2,
                ),
            ),
            active_iterations=npts,
            compute_efficiency=0.10,
            precision=self.precision,
        )
        kernel = Kernel(
            name="onecond_loop",
            loop_extents=(nj, nk, ni),
            resources=resources,
            body=lambda: result.append(
                self._condensation(g_dists, g_t, g_p, g_qv, g_rho, g_ccn, warm)
            ),
        )
        directive = TargetTeamsDistributeParallelDo(
            collapse=self.spec.collapse or 3,
            maps=(
                Map(
                    MapType.TOFROM,
                    tuple(f"fsbm_{sp.value}" for sp in Species)
                    + ("t_old", "qv", "ccn"),
                ),
            ),
        )
        to_arrays = {
            f"fsbm_{sp.value}": g_dists[sp] for sp in Species
        }
        to_arrays["t_old"] = g_t
        to_arrays["qv"] = g_qv
        to_arrays["ccn"] = g_ccn
        self.engine.launch(
            kernel,
            directive,
            to_arrays=to_arrays,
            from_names=tuple(to_arrays),
        )
        return result[0] if result else CondWorkStats()

    # --- collision dispatch ------------------------------------------------------

    def _collisions(
        self,
        state: MicroState,
        g_dists: dict[Species, np.ndarray],
        g_t: np.ndarray,
        g_p: np.ndarray,
    ) -> tuple[CoalWorkStats, int, KernelRecord | None]:
        """Run coal_bott_new per the active stage."""
        # Per-species row sums serve both the condensate predicate and
        # the interaction selection below — row sums are row-independent
        # so slicing them to the called points is bitwise identical to
        # CoalSelection.build on the gathered copies.
        sums = {sp: d.sum(axis=1) for sp, d in g_dists.items()}
        condensate = np.zeros(g_t.shape)
        for s in sums.values():
            condensate += s
        # The paper's predicate array call_coal_bott_new(i,k,j).
        call_coal = (g_t > T_COAL_CUTOFF) & (condensate > N_EPS)
        cidx = np.flatnonzero(call_coal)
        if cidx.size == 0:
            return CoalWorkStats(), 0, None

        c_dists = {sp: d[cidx] for sp, d in g_dists.items()}
        c_t = g_t[cidx]
        c_p = g_p[cidx]
        occupied = self._occupied(c_dists)
        # One selection for the whole step: the work prediction and the
        # update (and its fp64 shadow) all test the same pre-step state.
        selection = CoalSelection(c_t, {sp: s[cidx] for sp, s in sums.items()}, {})

        if not self.stage.uses_gpu:
            work = coal_bott_step(
                c_dists,
                c_t,
                c_p,
                self.dt,
                self.tables,
                INTERACTIONS,
                occupied=occupied,
                on_demand=self.stage.on_demand_kernels,
                selection=selection,
                use_batched=self.use_batched_coal,
            )
            self._charge_cpu(
                work.flops, work.bytes_moved, iterations=int(work.pair_entries)
            )
            record = None
        else:
            work, record = self._collisions_offloaded(
                state, c_dists, c_t, c_p, occupied, selection
            )
        for sp in g_dists:
            g_dists[sp][cidx] = c_dists[sp]
        return work, int(cidx.size), record

    def _occupied(
        self, dists: dict[Species, np.ndarray]
    ) -> dict[Species, np.ndarray]:
        """Occupied-bin counts per species for the gathered points."""
        out: dict[Species, np.ndarray] = {}
        for sp, d in dists.items():
            present = d > N_EPS
            rev = present[:, ::-1]
            first = np.argmax(rev, axis=1)
            out[sp] = np.where(present.any(axis=1), d.shape[1] - first, 0)
        return out

    def _collisions_offloaded(
        self,
        state: MicroState,
        c_dists: dict[Species, np.ndarray],
        c_t: np.ndarray,
        c_p: np.ndarray,
        occupied: dict[Species, np.ndarray],
        selection: CoalSelection,
    ) -> tuple[CoalWorkStats, KernelRecord]:
        """Stage 2/3: launch the fissioned collision loop on the device."""
        assert self.engine is not None
        spec = self.spec
        ni, nk, nj = state.shape
        nkr = state.nkr

        if spec.stage is Stage.OFFLOAD_COLLAPSE3 and self.temp_arrays is None:
            self.temp_arrays = TempArrays(state.shape)
            self.temp_arrays.allocate(self.engine)

        work = predict_coal_work(
            c_dists, c_t, self.tables, INTERACTIONS, occupied, on_demand=True,
            selection=selection,
        )
        npts = int(c_t.shape[0])
        resources = self._coal_resources(work, npts, nkr)
        device_dtype = np.float32 if self.precision == "fp32" else np.float64

        def body() -> None:
            shadow = None
            if self.autocompare:
                shadow = {sp: d.copy() for sp, d in c_dists.items()}
                coal_bott_step(
                    shadow,
                    c_t,
                    c_p,
                    self.dt,
                    self.tables,
                    INTERACTIONS,
                    occupied=occupied,
                    on_demand=True,
                    dtype=np.float64,
                    selection=selection,
                    use_batched=self.use_batched_coal,
                )
            coal_bott_step(
                c_dists,
                c_t,
                c_p,
                self.dt,
                self.tables,
                INTERACTIONS,
                occupied=occupied,
                on_demand=True,
                dtype=device_dtype,
                selection=selection,
                use_batched=self.use_batched_coal,
            )
            if shadow is not None:
                from repro.core.autocompare import autocompare_region

                self.autocompare_reports.append(
                    autocompare_region(
                        "coal_bott_new_loop",
                        host_outputs={sp.value: d for sp, d in shadow.items()},
                        device_outputs={
                            sp.value: d for sp, d in c_dists.items()
                        },
                    )
                )

        kernel = Kernel(
            name="coal_bott_new_loop",
            loop_extents=(nj, nk, ni),
            resources=resources,
            body=body,
        )
        field_names = tuple(f"fsbm_{sp.value}" for sp in Species)
        directive = TargetTeamsDistributeParallelDo(
            collapse=spec.collapse,
            maps=(
                Map(MapType.TOFROM, field_names),
                Map(MapType.TO, ("t_old", "p_mb", "call_coal_bott_new")),
            ),
            private=("i", "k", "j"),
        )
        to_arrays = {
            name: c_dists[sp] for name, sp in zip(field_names, Species)
        }
        to_arrays["t_old"] = c_t
        to_arrays["p_mb"] = c_p
        to_arrays["call_coal_bott_new"] = np.ones(npts)
        record = self.engine.launch(
            kernel, directive, to_arrays=to_arrays, from_names=field_names
        )
        return work, record

    def _coal_resources(
        self, work: CoalWorkStats, npts: int, nkr: int
    ) -> KernelResources:
        """Resource descriptor for the collision kernel at this stage."""
        return coal_kernel_resources(
            self.spec, work, npts, nkr, precision=self.precision
        )


def coal_kernel_resources(
    spec: StageSpec,
    work: CoalWorkStats,
    npts: int,
    nkr: int,
    precision: str = "fp32",
) -> KernelResources:
    """Resource/traffic descriptor for one collision-loop launch.

    Shared by the live driver and the cost-projection harness so both
    price the kernel identically. ``npts`` is the number of grid points
    the predicate actually admits.
    """
    frame = automatic_frame_bytes() if spec.automatic_arrays else 0
    registers = estimate_registers(
        spec.n_scalars, spec.n_array_vars, pointer_based=spec.pointer_based
    )
    frame_traffic = float(npts) * per_point_temp_bytes() * FRAME_SWEEPS
    if spec.automatic_arrays:
        frame_pattern = AccessPattern.THREAD_SEQUENTIAL
    else:
        # Stage 3's *_temp arrays are global and grid-point strided.
        frame_pattern = AccessPattern.GLOBAL_STRIDED
    traffic = (
        TrafficComponent(
            name="work-arrays",
            pattern=frame_pattern,
            read_bytes=frame_traffic * 0.6,
            write_bytes=frame_traffic * 0.4,
        ),
        TrafficComponent(
            name="kernel-tables",
            pattern=AccessPattern.BROADCAST,
            read_bytes=work.kernel_entries * 8.0,
            write_bytes=0.0,
        ),
        TrafficComponent(
            name="bin-distributions",
            pattern=AccessPattern.GLOBAL_COALESCED,
            read_bytes=float(npts) * nkr * len(Species) * 4.0,
            write_bytes=float(npts) * nkr * len(Species) * 4.0,
        ),
    )
    return KernelResources(
        registers_per_thread=registers,
        automatic_array_bytes=frame,
        working_set_per_thread=float(per_point_temp_bytes()),
        flops=work.flops,
        traffic=traffic,
        active_iterations=npts,
        compute_efficiency=0.10,
        precision=precision,
    )


# --- ensemble member batching -------------------------------------------------
#
# One fused microphysics sweep over N members resident in one stacked
# block. The batching discipline, derived from what is and is not
# bitwise row-stable on this host:
#
# * elementwise ufuncs, boolean-mask gathers/scatters in C order, and
#   per-row ``sum(axis=1)`` reductions run once over the member
#   concatenation (each member's rows come out bit-for-bit);
# * anything BLAS (`@`) and any branch whose predicate spans rows runs
#   per member (see ``coal_bott_step_members`` /
#   ``_condensation_core_members`` for the per-phase argument);
# * the compiled C kernels (sedimentation sweep) carry an explicit
#   member loop, which only moves the base pointer per member.
#
# Per-member ``SimClock`` charges replicate the solo step's region keys
# and amounts exactly: a ``region`` context that charges nothing leaves
# no trace, so only charge placement matters.


def _occupied_rows(dists: dict[Species, np.ndarray]) -> dict[Species, np.ndarray]:
    """Occupied-bin counts per species (row-local; any member mix)."""
    out: dict[Species, np.ndarray] = {}
    for sp, d in dists.items():
        present = d > N_EPS
        rev = present[:, ::-1]
        first = np.argmax(rev, axis=1)
        out[sp] = np.where(present.any(axis=1), d.shape[1] - first, 0)
    return out


def _condensation_members(
    sbms: list[FastSBM],
    g_dists: dict[Species, np.ndarray],
    g_t: np.ndarray,
    g_p: np.ndarray,
    g_qv: np.ndarray,
    g_rho: np.ndarray,
    g_ccn: np.ndarray,
    warm: np.ndarray,
    segments: list[tuple[int, int]],
    sp_present: list[dict[Species, bool]],
) -> list[CondWorkStats]:
    """Warm/mixed-phase routing over the member concatenation.

    Mirrors :meth:`FastSBM._condensation`: the warm and cold subsets
    are gathered over all members at once (member-major order is
    preserved by ``flatnonzero``), and the member-batched onecond cores
    handle the per-member gates and BLAS splits.
    """
    nm = len(segments)
    totals = [CondWorkStats() for _ in range(nm)]
    starts = [s for s, _ in segments]
    stops = [e for _, e in segments]
    for mask, routine in ((warm, onecond1_members), (~warm, onecond2_members)):
        idx = np.flatnonzero(mask)
        if idx.size == 0:
            continue
        los = np.searchsorted(idx, starts)
        his = np.searchsorted(idx, stops)
        sub_segments = [(int(lo), int(hi)) for lo, hi in zip(los, his)]
        sub = {sp: d[idx] for sp, d in g_dists.items()}
        st, sp_, sq, sr, sc = (
            g_t[idx],
            g_p[idx],
            g_qv[idx],
            g_rho[idx],
            g_ccn[idx],
        )
        part = routine(
            sub, st, sp_, sq, sr, sc, sbms[0].dt, sub_segments,
            species_present=sp_present,
            native=sbms[0].use_native_physics,
        )
        for m in range(nm):
            totals[m].merge(part[m])
        for sp in g_dists:
            g_dists[sp][idx] = sub[sp]
        g_t[idx], g_qv[idx], g_ccn[idx] = st, sq, sc
    return totals


def step_members(
    sbms: list[FastSBM],
    states: list[MicroState],
    dists_stacked: dict[Species, np.ndarray],
    ccn_stacked: np.ndarray,
    precip_stacked: np.ndarray,
    temperature: np.ndarray,
    pressure_mb: np.ndarray,
    qv: np.ndarray,
    rho_air: np.ndarray,
    dz_cm: float,
    pressure_levels: list[np.ndarray] | None = None,
) -> list[SbmStepStats]:
    """Advance N ensemble members' microphysics in one fused sweep.

    ``sbms[m]``/``states[m]`` are member ``m``'s driver (own clock) and
    micro state; the stacked arrays are ``(nm, ...)`` member-major
    views whose slice ``[m]`` aliases that member's patch arrays.
    ``pressure_levels`` optionally supplies each member's base-state
    pressure column exactly as the solo step derives it (callers whose
    stacked ``pressure_mb`` is a materialized copy should pass it so
    the column mean is taken over the member's own layout).

    Member ``m``'s fields, work stats, and per-rank clock charges are
    bit-identical to a solo :meth:`FastSBM.step` of that member.
    """
    nm = len(sbms)
    lead = sbms[0]
    if any(s.stage.uses_gpu or s.offload_condensation for s in sbms):
        raise ConfigurationError(
            "ensemble member batching supports CPU stages only"
        )
    ni, nk, nj = states[0].shape
    npatch = ni * nk * nj
    dt = lead.dt
    stats_list = [SbmStepStats() for _ in range(nm)]
    step_start = [sbm.clock.total for sbm in sbms]

    from repro.fsbm.thermo import saturation_mixing_ratio

    with ExitStack() as stack:
        for sbm in sbms:
            stack.enter_context(sbm.clock.region("fast_sbm"))
        for sbm in sbms:
            sbm._charge_cpu(2.0 * npatch, 8.0 * npatch, iterations=npatch)

        qs = saturation_mixing_ratio(temperature, pressure_mb)
        condensate = np.empty(temperature.shape)
        for m, state in enumerate(states):
            condensate[m] = state.total_condensate_mass()
        mp_mask = (temperature > T_FREEZE_CUTOFF) & (
            (condensate > N_EPS) | (qv > 0.98 * qs)
        )
        counts = mp_mask.reshape(nm, -1).sum(axis=1)
        offs = np.zeros(nm + 1, dtype=np.int64)
        np.cumsum(counts, out=offs[1:])
        segments = [(int(offs[m]), int(offs[m + 1])) for m in range(nm)]
        total_pts = int(offs[-1])
        for m in range(nm):
            stats_list[m].mp_points = int(counts[m])

        if total_pts:
            # Integer-tuple indexing: one np.nonzero, then every gather and
            # scatter fans out from the precomputed coordinate arrays.  On
            # the strided superblock views this measures ~1.3x faster than
            # repeated boolean masking (which re-scans the mask per field)
            # and yields bit-identical results: same elements, same
            # member-major C order.
            midx = np.nonzero(mp_mask)
            g_dists = {
                sp: dists_stacked[sp][midx] for sp in states[0].dists
            }
            g_t = temperature[midx]
            g_p = pressure_mb[midx]
            g_qv = qv[midx]
            g_rho = rho_air[midx]
            g_ccn = ccn_stacked[midx]

            # --- nucleation (one elementwise pass over all members) ----
            jernucl01_ks(g_dists, g_t, g_p, g_qv, g_rho, g_ccn, dt)
            for m, (s, e) in enumerate(segments):
                if e == s:
                    continue
                stats_list[m].nucl = NuclWorkStats(points=e - s)
                with sbms[m].clock.region("jernucl01_ks"):
                    sbms[m]._charge_cpu(
                        stats_list[m].nucl.flops,
                        stats_list[m].nucl.bytes_moved,
                    )

            # --- condensation ------------------------------------------
            sp_present = [
                {sp: bool(g_dists[sp][s:e].any()) for sp in Species}
                for (s, e) in segments
            ]
            ice_present = np.zeros(total_pts, dtype=bool)
            for sp in Species:
                if sp is Species.LIQUID:
                    continue
                hot = None
                for m, (s, e) in enumerate(segments):
                    if e > s and sp_present[m][sp]:
                        if hot is None:
                            hot = g_dists[sp].sum(axis=1) > N_EPS
                        ice_present[s:e] |= hot[s:e]
            warm = (g_t > T_0 - 5.0) & ~ice_present
            cond_list = _condensation_members(
                sbms, g_dists, g_t, g_p, g_qv, g_rho, g_ccn, warm,
                segments, sp_present,
            )
            for m, (s, e) in enumerate(segments):
                if e == s:
                    continue
                stats_list[m].cond = cond_list[m]
                with sbms[m].clock.region("onecond"):
                    sbms[m]._charge_cpu(
                        cond_list[m].flops, cond_list[m].bytes_moved
                    )

            # --- freezing / melting (cross-row gates: per member) ------
            for m, (s, e) in enumerate(segments):
                if e == s:
                    continue
                seg_dists = {sp: d[s:e] for sp, d in g_dists.items()}
                with sbms[m].clock.region("freezing"):
                    stats_list[m].freeze = freezing_melting_step(
                        seg_dists, g_t[s:e], g_rho[s:e], dt
                    )
                    sbms[m]._charge_cpu(
                        stats_list[m].freeze.flops,
                        stats_list[m].freeze.bytes_moved,
                    )

            # --- collision–coalescence ---------------------------------
            sums = {sp: d.sum(axis=1) for sp, d in g_dists.items()}
            condensate_g = np.zeros(total_pts)
            for s_arr in sums.values():
                condensate_g += s_arr
            call_coal = (g_t > T_COAL_CUTOFF) & (condensate_g > N_EPS)
            cidx = np.flatnonzero(call_coal)
            clos = np.searchsorted(cidx, [s for s, _ in segments])
            chis = np.searchsorted(cidx, [e for _, e in segments])
            works = None
            if cidx.size:
                c_dists = {sp: d[cidx] for sp, d in g_dists.items()}
                c_t = g_t[cidx]
                c_p = g_p[cidx]
                occupied = _occupied_rows(c_dists)
                selection = CoalSelection(
                    c_t, {sp: s_arr[cidx] for sp, s_arr in sums.items()}, {}
                )
                coal_segments = [
                    (int(lo), int(hi)) for lo, hi in zip(clos, chis)
                ]
                works = coal_bott_step_members(
                    c_dists, c_t, c_p, dt, lead.tables, INTERACTIONS,
                    coal_segments, occupied=occupied,
                    on_demand=lead.stage.on_demand_kernels,
                    selection=selection, use_batched=lead.use_batched_coal,
                )
                for sp in g_dists:
                    g_dists[sp][cidx] = c_dists[sp]
            for m, (s, e) in enumerate(segments):
                if e == s:
                    continue
                clock = sbms[m].clock
                with clock.region("coal_bott_new"):
                    before = clock.total
                    if works is not None and chis[m] > clos[m]:
                        w = works[m]
                        stats_list[m].coal = w
                        stats_list[m].coal_points = int(chis[m] - clos[m])
                        sbms[m]._charge_cpu(
                            w.flops, w.bytes_moved,
                            iterations=int(w.pair_entries),
                        )
                    stats_list[m].coal_seconds = clock.total - before

            for sp in g_dists:
                dists_stacked[sp][midx] = g_dists[sp]
            temperature[midx] = g_t
            qv[midx] = g_qv
            ccn_stacked[midx] = g_ccn

        # --- sedimentation (full field, compiled member loop) ----------
        if pressure_levels is None:
            pressure_levels = [
                pressure_mb[m].mean(axis=(0, 2)) for m in range(nm)
            ]
        shared_col = all(
            np.array_equal(pressure_levels[0], pl)
            for pl in pressure_levels[1:]
        )
        if shared_col and lead.use_native_physics:
            with ExitStack() as sed_stack:
                for sbm in sbms:
                    sed_stack.enter_context(sbm.clock.region("sedimentation"))
                sed_list = sedimentation_step_members(
                    states, dists_stacked, precip_stacked,
                    pressure_levels[0], dz_cm, dt, native=True,
                )
                for m, sbm in enumerate(sbms):
                    stats_list[m].sed = sed_list[m]
                    sbm._charge_cpu(
                        sed_list[m].flops, sed_list[m].bytes_moved
                    )
        else:
            # Divergent base-state columns: per-member solo sweeps (the
            # courant table is column-specific).
            for m, sbm in enumerate(sbms):
                with sbm.clock.region("sedimentation"):
                    stats_list[m].sed = sedimentation_step(
                        states[m], pressure_levels[m], dz_cm, dt,
                        native=sbm.use_native_physics,
                    )
                    sbm._charge_cpu(
                        stats_list[m].sed.flops, stats_list[m].sed.bytes_moved
                    )

    for m, sbm in enumerate(sbms):
        stats_list[m].fast_sbm_seconds = sbm.clock.total - step_start[m]
    return stats_list
