"""Diffusional growth/evaporation: the ``onecond1`` / ``onecond2`` pair.

``onecond1`` treats liquid-only grid points (warm cloud); ``onecond2``
treats mixed-phase points, growing liquid against water saturation and
ice species against ice saturation. Bin masses grow by
``dm = 4 pi rho_p r G S dt`` and the spectrum is remapped onto the mass
ladder with the Kovetz–Olund two-bin split (vectorized scatter). Vapor
and temperature are updated from the exact remapped mass change, so
water mass and moist enthalpy are conserved to rounding.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.fsbm import ckernels
from repro.fsbm.bins import BinGrid
from repro.fsbm.species import ICE_HABITS, Species, species_bins
from repro.fsbm.state import N_EPS
from repro.fsbm.thermo import (
    condensational_growth_coefficient,
    latent_heating,
    saturation_mixing_ratio,
)

#: Habit shape factor multiplying the growth rate (capacitance of
#: columns/plates/dendrites relative to spheres), plus snow/graupel/hail.
_HABIT_FACTOR = {
    Species.ICE_COL: 0.7,
    Species.ICE_PLA: 0.9,
    Species.ICE_DEN: 1.2,
    Species.SNOW: 0.8,
    Species.GRAUPEL: 0.6,
    Species.HAIL: 0.5,
}

#: Internal sub-cycles the Fortran onecond1/2 take per model step (the
#: growth ODE is integrated on a supersaturation-limited sub-time-step,
#: ~15 sub-cycles in active cloud; calibrated once, see DESIGN.md).
COND_SUBSTEPS = 15

#: FLOPs per (point, bin, substep) of the growth + remap loop, including
#: the psychrometric exponentials evaluated per bin.
FLOPS_PER_BIN = 25.0 * COND_SUBSTEPS


@dataclass
class CondWorkStats:
    """Work counts for one condensation call."""

    points: int = 0
    bin_updates: float = 0.0

    @property
    def flops(self) -> float:
        return self.bin_updates * FLOPS_PER_BIN

    @property
    def bytes_moved(self) -> float:
        return self.bin_updates * 4.0 * 4.0

    def merge(self, other: "CondWorkStats") -> None:
        self.points += other.points
        self.bin_updates += other.bin_updates


def _remap_spectrum(
    n: np.ndarray, new_mass: np.ndarray, grid: BinGrid, native: bool = True
) -> tuple[np.ndarray, np.ndarray]:
    """KO-remap numbers ``n`` at perturbed masses onto the mass ladder.

    Returns ``(n_new, evaporated_number)`` where particles shrinking
    below half the smallest bin mass evaporate completely (their number
    is returned so callers can credit the CCN reservoir).

    The ladder indices and split weights are always derived in numpy
    (``log2`` rounding must not depend on the libm in play); with
    ``native`` the two full-size ``bincount`` deposits are replaced by
    the compiled per-point scatter of
    :func:`repro.fsbm.ckernels.remap_scatter`, which is bit-identical
    (bincount accumulates in the same flat order).
    """
    npts, nkr = n.shape
    x = grid.masses
    evap_mask = new_mass < 0.5 * x[0]
    evap_number = np.where(evap_mask, n, 0.0).sum(axis=1)

    live = ~evap_mask & (n > 0.0)
    m = np.clip(new_mass, x[0], x[-1])
    k = np.clip(np.floor(np.log2(m / grid.x_min)).astype(int), 0, nkr - 2)
    w_hi = np.clip((m - x[k]) / (x[k + 1] - x[k]), 0.0, 1.0)

    n_live = np.where(live, n, 0.0)
    lib = ckernels.load_kernels() if native else None
    if lib is not None and nkr <= ckernels.MAX_NKR:
        acc = np.empty((npts, nkr))
        ckernels.remap_scatter(lib, n_live, w_hi, k, acc)
        return acc, evap_number
    rows = np.arange(npts)[:, None] * nkr
    flat_lo = (rows + k).ravel()
    flat_hi = (rows + k + 1).ravel()
    acc = np.bincount(
        flat_lo, weights=(n_live * (1.0 - w_hi)).ravel(), minlength=npts * nkr
    )
    acc += np.bincount(
        flat_hi, weights=(n_live * w_hi).ravel(), minlength=npts * nkr
    )
    return acc.reshape(npts, nkr), evap_number


def _segmented_rowdot(
    a: np.ndarray, v: np.ndarray, segments: list[tuple[int, int]] | None
) -> np.ndarray:
    """Row-wise ``a @ v``, issued one BLAS call per row segment.

    BLAS matvec results for a given row are *not* independent of how
    many other rows share the call (kernel/blocking selection depends on
    the row count), so batching several members' rows into one ``a @ v``
    can perturb single rows at the ulp level. Splitting the call at
    member boundaries reproduces each member's solo contraction
    bit-for-bit; with ``segments=None`` this is exactly ``a @ v``.
    """
    if segments is None:
        return a @ v
    out = np.empty(a.shape[0], dtype=np.result_type(a, v))
    for s, e in segments:
        if e > s:
            out[s:e] = a[s:e] @ v
    return out


def _grow_species(
    n: np.ndarray,
    sp: Species,
    supersat: np.ndarray,
    growth_coeff: np.ndarray,
    dt: float,
    grid: BinGrid,
    native: bool = True,
    row_segments: list[tuple[int, int]] | None = None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """One species' growth step.

    Returns ``(n_new, dmass_per_point, evaporated_number)`` with
    ``dmass`` the condensate mass change [g/cm^3] (positive while
    condensing). ``row_segments`` splits the mass contractions at
    member boundaries when the rows are an ensemble concatenation (see
    :func:`_segmented_rowdot`).
    """
    r = grid.radii
    factor = _HABIT_FACTOR.get(sp, 1.0)
    # dm/dt = 4 pi rho_p r^2 dr/dt = 4 pi rho_p r G S
    dm = (
        4.0
        * np.pi
        * grid.density
        * factor
        * r[None, :]
        * growth_coeff[:, None]
        * supersat[:, None]
        * dt
    )
    old_mass_content = _segmented_rowdot(n, grid.masses, row_segments)
    new_mass = grid.masses[None, :] + dm
    n_new, evap = _remap_spectrum(n, new_mass, grid, native=native)
    dmass = _segmented_rowdot(n_new, grid.masses, row_segments) - old_mass_content
    return n_new, dmass, evap


def _condensation_core(
    dists: dict[Species, np.ndarray],
    species: tuple[Species, ...],
    over: dict[Species, str],
    temperature: np.ndarray,
    pressure_mb: np.ndarray,
    qv: np.ndarray,
    rho_air: np.ndarray,
    ccn: np.ndarray,
    dt: float,
    native: bool = True,
    species_present: dict[Species, bool] | None = None,
) -> CondWorkStats:
    """Shared growth driver for onecond1/onecond2 (updates in place).

    ``species_present`` lets the caller pass a conservative per-species
    presence flag (False only when the species is identically zero in
    the parent arrays); absent species then skip their occupancy probe
    entirely — the probe would have been False anyway, so the result is
    unchanged.
    """
    npts = temperature.shape[0]
    stats = CondWorkStats(points=npts)
    if npts == 0:
        return stats
    grids = species_bins()
    g_coeff = condensational_growth_coefficient(temperature, pressure_mb)

    for sp in species:
        n = dists[sp]
        if species_present is not None and not species_present.get(sp, True):
            continue
        if not (n.sum(axis=1) > N_EPS).any():
            continue
        qs = saturation_mixing_ratio(temperature, pressure_mb, over[sp])
        s = qv / qs - 1.0
        # Limit condensation so vapor cannot be driven below saturation
        # (nor evaporation above it) in a single explicit step.
        n_new, dmass, evap = _grow_species(
            n, sp, s, g_coeff, dt, grids[sp], native=native
        )
        dq = dmass / rho_air  # condensate increment in mixing ratio
        room = np.where(dq >= 0.0, np.maximum(qv - qs, 0.0), np.maximum(qs - qv, 0.0))
        scale = np.where(np.abs(dq) > room, room / np.maximum(np.abs(dq), 1e-300), 1.0)
        scale = np.clip(scale, 0.0, 1.0)
        blended = n + scale[:, None] * (n_new - n)
        dmass = (blended - n) @ grids[sp].masses
        dq = dmass / rho_air
        dists[sp][...] = blended
        qv -= dq
        process = "condensation" if sp is Species.LIQUID else "deposition"
        temperature += latent_heating(dq, process)
        ccn += scale * evap if sp is Species.LIQUID else 0.0
        stats.bin_updates += float(npts * n.shape[1])
    return stats


def _condensation_core_members(
    dists: dict[Species, np.ndarray],
    species: tuple[Species, ...],
    over: dict[Species, str],
    temperature: np.ndarray,
    pressure_mb: np.ndarray,
    qv: np.ndarray,
    rho_air: np.ndarray,
    ccn: np.ndarray,
    dt: float,
    segments: list[tuple[int, int]],
    species_present: list[dict[Species, bool]] | None = None,
    native: bool = True,
) -> list[CondWorkStats]:
    """Member-batched growth driver; per-member bit-identical to solo.

    The call arrays are per-member gathers concatenated member-major;
    ``segments[m]`` is member ``m``'s ``(start, stop)`` row range (empty
    ranges allowed). Elementwise thermodynamics and the per-point
    KO-remap scatter are row-local, so they run once over the
    concatenation and produce each member's rows bit-for-bit. The
    ``n @ masses`` contractions are the exception — BLAS matvec results
    depend on the call's row count — so those are issued one BLAS call
    per member segment (:func:`_segmented_rowdot`), matching each solo
    contraction exactly.

    The one member-sensitive part is the per-species skip logic: solo
    runs skip a species when the member's presence flag is off or none
    of its rows exceed ``N_EPS``, and a skipped species must not touch
    that member's rows (they may hold tiny sub-threshold values a grow
    step would perturb) nor its work stats. Each species therefore
    processes only the row ranges of members that pass their own gates,
    and per-member ``bin_updates`` accumulate only for those members —
    exactly the solo accounting.
    """
    nm = len(segments)
    stats = [
        CondWorkStats(points=(e - s)) if e > s else CondWorkStats()
        for (s, e) in segments
    ]
    npts = temperature.shape[0]
    if npts == 0:
        return stats
    grids = species_bins()
    g_coeff = condensational_growth_coefficient(temperature, pressure_mb)

    for sp in species:
        n = dists[sp]
        nkr = n.shape[1]
        rowsum_hot = n.sum(axis=1) > N_EPS
        passing = []
        for m, (s, e) in enumerate(segments):
            if e == s:
                continue
            if species_present is not None and not species_present[m].get(
                sp, True
            ):
                continue
            if not rowsum_hot[s:e].any():
                continue
            passing.append(m)
        if not passing:
            continue
        seg_pass = [segments[m] for m in passing]
        # Segment boundaries within the subset rows (for the per-member
        # BLAS splits below).
        sub_segments, off = [], 0
        for s, e in seg_pass:
            sub_segments.append((off, off + (e - s)))
            off += e - s
        if off == npts:
            idx = None
            nn, t_s, p_s = n, temperature, pressure_mb
            qv_s, rho_s, ccn_s, gc_s = qv, rho_air, ccn, g_coeff
        else:
            idx = np.concatenate([np.arange(s, e) for s, e in seg_pass])
            nn, t_s, p_s = n[idx], temperature[idx], pressure_mb[idx]
            qv_s, rho_s, ccn_s = qv[idx], rho_air[idx], ccn[idx]
            gc_s = g_coeff[idx]

        qs = saturation_mixing_ratio(t_s, p_s, over[sp])
        s_sat = qv_s / qs - 1.0
        n_new, dmass, evap = _grow_species(
            nn, sp, s_sat, gc_s, dt, grids[sp], native=native,
            row_segments=sub_segments,
        )
        dq = dmass / rho_s
        room = np.where(
            dq >= 0.0, np.maximum(qv_s - qs, 0.0), np.maximum(qs - qv_s, 0.0)
        )
        scale = np.where(
            np.abs(dq) > room, room / np.maximum(np.abs(dq), 1e-300), 1.0
        )
        scale = np.clip(scale, 0.0, 1.0)
        blended = nn + scale[:, None] * (n_new - nn)
        dmass = _segmented_rowdot(blended - nn, grids[sp].masses, sub_segments)
        dq = dmass / rho_s
        process = "condensation" if sp is Species.LIQUID else "deposition"
        if idx is None:
            dists[sp][...] = blended
            qv -= dq
            temperature += latent_heating(dq, process)
            ccn += scale * evap if sp is Species.LIQUID else 0.0
        else:
            dists[sp][idx] = blended
            qv_s -= dq
            qv[idx] = qv_s
            t_s += latent_heating(dq, process)
            temperature[idx] = t_s
            if sp is Species.LIQUID:
                ccn_s += scale * evap
                ccn[idx] = ccn_s
            # Non-liquid species add an exact scalar 0.0 to ccn in the
            # reference — a bitwise no-op on the non-negative reservoir.
        for m in passing:
            s, e = segments[m]
            stats[m].bin_updates += float((e - s) * nkr)
    return stats


def onecond1(
    dists: dict[Species, np.ndarray],
    temperature: np.ndarray,
    pressure_mb: np.ndarray,
    qv: np.ndarray,
    rho_air: np.ndarray,
    ccn: np.ndarray,
    dt: float,
    native: bool = True,
    species_present: dict[Species, bool] | None = None,
) -> CondWorkStats:
    """Liquid-only condensation/evaporation (warm grid points)."""
    return _condensation_core(
        dists,
        (Species.LIQUID,),
        {Species.LIQUID: "water"},
        temperature,
        pressure_mb,
        qv,
        rho_air,
        ccn,
        dt,
        native=native,
        species_present=species_present,
    )


def onecond2(
    dists: dict[Species, np.ndarray],
    temperature: np.ndarray,
    pressure_mb: np.ndarray,
    qv: np.ndarray,
    rho_air: np.ndarray,
    ccn: np.ndarray,
    dt: float,
    native: bool = True,
    species_present: dict[Species, bool] | None = None,
) -> CondWorkStats:
    """Mixed-phase condensation/deposition (liquid + all ice species)."""
    species = (Species.LIQUID, *ICE_HABITS, Species.SNOW, Species.GRAUPEL, Species.HAIL)
    over = {sp: ("water" if sp is Species.LIQUID else "ice") for sp in species}
    return _condensation_core(
        dists, species, over, temperature, pressure_mb, qv, rho_air, ccn, dt,
        native=native, species_present=species_present,
    )


def onecond1_members(
    dists: dict[Species, np.ndarray],
    temperature: np.ndarray,
    pressure_mb: np.ndarray,
    qv: np.ndarray,
    rho_air: np.ndarray,
    ccn: np.ndarray,
    dt: float,
    segments: list[tuple[int, int]],
    species_present: list[dict[Species, bool]] | None = None,
    native: bool = True,
) -> list[CondWorkStats]:
    """Member-batched :func:`onecond1` (liquid-only, warm points)."""
    return _condensation_core_members(
        dists,
        (Species.LIQUID,),
        {Species.LIQUID: "water"},
        temperature,
        pressure_mb,
        qv,
        rho_air,
        ccn,
        dt,
        segments,
        species_present=species_present,
        native=native,
    )


def onecond2_members(
    dists: dict[Species, np.ndarray],
    temperature: np.ndarray,
    pressure_mb: np.ndarray,
    qv: np.ndarray,
    rho_air: np.ndarray,
    ccn: np.ndarray,
    dt: float,
    segments: list[tuple[int, int]],
    species_present: list[dict[Species, bool]] | None = None,
    native: bool = True,
) -> list[CondWorkStats]:
    """Member-batched :func:`onecond2` (mixed-phase points)."""
    species = (Species.LIQUID, *ICE_HABITS, Species.SNOW, Species.GRAUPEL, Species.HAIL)
    over = {sp: ("water" if sp is Species.LIQUID else "ice") for sp in species}
    return _condensation_core_members(
        dists, species, over, temperature, pressure_mb, qv, rho_air, ccn, dt,
        segments, species_present=species_present, native=native,
    )
