
#include <stddef.h>

#define MAX_NKR 64

/* Fused all-species upwind sedimentation sweep.
 *
 * dists[sp] points at that species' (ni, nk, nj, nkr) view; all
 * species share the element strides (si, sk, sj) and a unit bin
 * stride. courant is (nsp, nk, nkr) and masses (nsp, nkr), both
 * contiguous. precip is a strided (ni, nj) view with element strides
 * (psi, psj).
 *
 * The loops run in memory-layout order (i, k, j, species): when the
 * species views are slices of one (i, k, j, scalar) superblock, the
 * inner j/species loops walk the block's trailing axis contiguously —
 * streaming with hardware prefetch instead of the 45 KB column jumps
 * of a per-(species, column) k sweep. The k recurrence is preserved
 * because each row's update is local: level k's flux is computed from
 * its pre-update row, the row is decremented, and the flux is carried
 * to level k - 1 (already decremented during the previous k
 * iteration, one k-stride back and still cache-resident) — or, at
 * k == 0, its mass is accumulated into precip. Every element sees
 * subtract-then-add, the exact operation order of the numpy
 * reference, and per-element/per-precip accumulation order is
 * independent of the loop interchange. Rows with all-zero flux skip
 * their stores (identical up to signed zeros), so absent species are
 * read-only. active[sp] reports whether any pre-update value of the
 * species was nonzero.
 */
void sed_sweep(double **dists,
               const double *restrict courant,
               const double *restrict masses,
               double *restrict precip,
               long nsp, long ni, long nk, long nj, long nkr,
               long si, long sk, long sj,
               long psi, long psj,
               unsigned char *restrict active)
{
    for (long sp = 0; sp < nsp; sp++)
        active[sp] = 0;
    for (long i = 0; i < ni; i++) {
        for (long k = 0; k < nk; k++) {
            for (long j = 0; j < nj; j++) {
                const size_t cell = (size_t)i * si + (size_t)k * sk
                                  + (size_t)j * sj;
                for (long sp = 0; sp < nsp; sp++) {
                    double *row = dists[sp] + cell;
                    const double *cr = courant
                        + ((size_t)sp * nk + (size_t)k) * nkr;
                    double flux[MAX_NKR];
                    int rownz = 0;
                    for (long b = 0; b < nkr; b++) {
                        const double nv = row[b];
                        flux[b] = nv * cr[b];
                        if (nv != 0.0) rownz = 1;
                    }
                    if (!rownz)
                        continue;
                    active[sp] = 1;
                    for (long b = 0; b < nkr; b++)
                        row[b] -= flux[b];
                    if (k == 0) {
                        const double *mass_sp = masses + (size_t)sp * nkr;
                        double acc = 0.0;
                        for (long b = 0; b < nkr; b++)
                            acc += flux[b] * mass_sp[b];
                        precip[(size_t)i * psi + (size_t)j * psj] += acc;
                    } else {
                        double *below = row - sk;
                        for (long b = 0; b < nkr; b++)
                            below[b] += flux[b];
                    }
                }
            }
        }
    }
}

/* Kovetz-Olund remap scatter: deposit n_live[p, b] split between
 * ladder bins k[p, b] (weight 1 - w_hi) and k[p, b] + 1 (weight
 * w_hi), writing the (npts, nkr) result to acc. Matches the
 * two-bincount numpy reference bit for bit: bincount accumulates
 * sequentially in flat order (here: b ascending per point), and the
 * final acc is the elementwise lo + hi sum, exactly as the
 * reference's `acc += bincount(...)` second pass.
 */
void remap_scatter(const double *restrict n_live,
                   const double *restrict w_hi,
                   const long *restrict k_idx,
                   double *restrict acc,
                   long npts, long nkr)
{
    for (long p = 0; p < npts; p++) {
        const double *nl = n_live + (size_t)p * nkr;
        const double *wh = w_hi + (size_t)p * nkr;
        const long *kk = k_idx + (size_t)p * nkr;
        double lo[MAX_NKR];
        double hi[MAX_NKR];
        for (long b = 0; b < nkr; b++) { lo[b] = 0.0; hi[b] = 0.0; }
        for (long b = 0; b < nkr; b++) {
            const long k = kk[b];
            lo[k] += nl[b] * (1.0 - wh[b]);
            hi[k + 1] += nl[b] * wh[b];
        }
        double *ap = acc + (size_t)p * nkr;
        for (long b = 0; b < nkr; b++)
            ap[b] = lo[b] + hi[b];
    }
}
