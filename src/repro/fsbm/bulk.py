"""A Thompson-like two-moment *bulk* microphysics comparator.

The paper's Fig. 2 contrasts bulk schemes (an assumed analytic size
distribution evolved through a few moments) with bin schemes like FSBM
(explicit equations per size bin) and names the Thompson scheme as the
next offload target. This module implements a compact bulk scheme with
the standard process set so the repository can quantify the paper's
motivating claim: bin microphysics costs orders of magnitude more per
grid cell (O(b^2) collision work versus a handful of power laws), which
is what makes it worth a GPU.

Species: cloud water ``qc``, rain ``qr``/``nr``, cloud ice ``qi``/``ni``,
snow ``qs``, graupel ``qg`` — mixing ratios [g/g], numbers [cm^-3].
Process formulations are simplified Kessler/Thompson-style power laws;
each conserves water mass against ``qv`` and feeds latent heat back.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.constants import T_0
from repro.errors import ConfigurationError
from repro.fsbm.thermo import latent_heating, saturation_mixing_ratio

#: Autoconversion threshold [g/g] and rate [s^-1] (Kessler).
QC_AUTO_THRESHOLD = 0.5e-3
AUTO_RATE = 1.0e-3

#: Accretion rate coefficient (rain collecting cloud water).
ACCR_COEFF = 2.2

#: Snow/graupel collection rates [s^-1] (aggregation/riming timescales
#: of tens of minutes).
SNOW_COLLECTION = 1.0e-3
RIMING_TO_GRAUPEL = 0.5

#: Ice initiation number per step in cold supersaturated cells [cm^-3].
ICE_INIT_NUMBER = 0.05

#: Mass-weighted fall speeds [m/s] (Thompson-like magnitudes).
VT_RAIN = 6.0
VT_SNOW = 1.2
VT_GRAUPEL = 3.5

#: Mean raindrop mass at formation [g] (~0.25 mm drop).
RAIN_EMBRYO_MASS = 6.5e-8

#: Ice crystal embryo mass [g].
ICE_EMBRYO_MASS = 1.0e-9

#: FLOPs per (cell, process sweep): the bulk scheme touches each cell a
#: fixed number of times — no bin loops (this is the whole point).
FLOPS_PER_CELL = 220.0


@dataclass
class BulkState:
    """Bulk-scheme prognostic fields on a patch."""

    shape: tuple[int, int, int]
    qc: np.ndarray = field(default=None)  # type: ignore[assignment]
    qr: np.ndarray = field(default=None)  # type: ignore[assignment]
    nr: np.ndarray = field(default=None)  # type: ignore[assignment]
    qi: np.ndarray = field(default=None)  # type: ignore[assignment]
    ni: np.ndarray = field(default=None)  # type: ignore[assignment]
    qs: np.ndarray = field(default=None)  # type: ignore[assignment]
    qg: np.ndarray = field(default=None)  # type: ignore[assignment]
    precip: np.ndarray = field(default=None)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if len(self.shape) != 3 or min(self.shape) < 1:
            raise ConfigurationError("bulk state needs a positive 3-D shape")
        for name in ("qc", "qr", "nr", "qi", "ni", "qs", "qg"):
            if getattr(self, name) is None:
                setattr(self, name, np.zeros(self.shape))
        if self.precip is None:
            self.precip = np.zeros((self.shape[0], self.shape[2]))

    @property
    def total_condensate(self) -> np.ndarray:
        """Total condensate mixing ratio [g/g]."""
        return self.qc + self.qr + self.qi + self.qs + self.qg


@dataclass
class BulkWorkStats:
    """Work counts for one bulk step (cost-model input)."""

    cells: int = 0

    @property
    def flops(self) -> float:
        return self.cells * FLOPS_PER_CELL

    @property
    def bytes_moved(self) -> float:
        return self.cells * 4.0 * 9.0 * 3.0  # 9 fields, ~3 touches


class BulkMicrophysics:
    """Driver with the same call shape as :class:`~repro.fsbm.fast_sbm.FastSBM`."""

    def __init__(self, dt: float):
        if dt <= 0:
            raise ConfigurationError("dt must be positive")
        self.dt = dt

    def step(
        self,
        state: BulkState,
        temperature: np.ndarray,
        pressure_mb: np.ndarray,
        qv: np.ndarray,
        rho_air: np.ndarray,
        dz_cm: float,
    ) -> BulkWorkStats:
        """Advance the bulk microphysics by ``dt`` (arrays in place)."""
        dt = self.dt
        stats = BulkWorkStats(cells=int(np.prod(state.shape)))

        # --- saturation adjustment (condensation/evaporation of qc) ----
        qs_w = saturation_mixing_ratio(temperature, pressure_mb)
        excess = qv - qs_w
        cond = np.where(excess > 0.0, excess * 0.5, np.maximum(excess, -state.qc))
        state.qc += cond
        qv -= cond
        temperature += latent_heating(cond, "condensation")

        # --- warm rain: autoconversion + accretion ----------------------
        auto = AUTO_RATE * np.maximum(state.qc - QC_AUTO_THRESHOLD, 0.0) * dt
        auto = np.minimum(auto, state.qc)
        state.qc -= auto
        state.qr += auto
        state.nr += auto * rho_air / RAIN_EMBRYO_MASS

        accr = ACCR_COEFF * state.qc * np.power(state.qr, 0.875) * dt
        accr = np.minimum(accr, state.qc)
        state.qc -= accr
        state.qr += accr

        # --- ice initiation and depositional growth ---------------------
        qs_i = saturation_mixing_ratio(temperature, pressure_mb, over="ice")
        cold = temperature < T_0 - 5.0
        dep_excess = np.where(cold, np.maximum(qv - qs_i, 0.0), 0.0)
        initiating = (state.qi < 1e-9) & (dep_excess > 0.0)
        init_n = np.where(initiating, ICE_INIT_NUMBER, 0.0)
        state.ni += init_n
        state.qi += init_n * ICE_EMBRYO_MASS / rho_air
        # Deposition relaxes a fraction of the excess per step, bounded
        # by the available vapor.
        dep = np.minimum(dep_excess * 0.3, np.maximum(qv, 0.0))
        dep = np.where(state.qi + init_n > 0.0, dep, 0.0)
        state.qi += dep
        qv -= dep
        temperature += latent_heating(dep, "deposition")

        # --- aggregation and riming -------------------------------------
        to_snow = state.qi * min(1.0, SNOW_COLLECTION * dt)
        state.qi -= to_snow
        state.qs += to_snow
        rime_frac = np.where(cold, RIMING_TO_GRAUPEL * state.qs * dt, 0.0)
        rime = state.qc * np.minimum(rime_frac, 1.0)
        state.qc -= rime
        state.qg += rime
        temperature += latent_heating(rime, "freezing")

        # --- melting ------------------------------------------------------
        warm = temperature > T_0
        for name in ("qi", "qs", "qg"):
            q = getattr(state, name)
            melt = np.where(warm, q * min(1.0, dt / 120.0), 0.0)
            q -= melt
            state.qr += melt
            temperature -= latent_heating(melt, "freezing")
        state.ni[warm] = 0.0

        # --- sedimentation (upwind, mass-weighted fall speeds) -----------
        dz_m = dz_cm / 100.0
        for name, vt in (("qr", VT_RAIN), ("qs", VT_SNOW), ("qg", VT_GRAUPEL)):
            q = getattr(state, name)
            courant = vt * dt / dz_m
            assert courant <= 1.0, f"bulk sedimentation CFL violated for {name}"
            flux = q * courant
            q -= flux
            q[:, :-1, :] += flux[:, 1:, :]
            state.precip += flux[:, 0, :] * rho_air[:, 0, :]
        # Rain number follows its mass.
        nr_flux = state.nr * (VT_RAIN * dt / dz_m)
        state.nr -= nr_flux
        state.nr[:, :-1, :] += nr_flux[:, 1:, :]

        np.maximum(state.qc, 0.0, out=state.qc)
        np.maximum(state.qr, 0.0, out=state.qr)
        return stats


def bulk_vs_bin_cost_ratio(nkr: int = 33, interactions_used: int = 8) -> float:
    """Analytic per-cell cost ratio of the bin scheme over this bulk one.

    Bin collision work alone is ``interactions * nkr^2 * ~10`` FLOPs per
    active cell; the bulk scheme is a fixed ~220. This is the paper's
    quantitative motivation for the GPU port (Sec. I).
    """
    from repro.fsbm.coal_bott import FLOPS_PER_PAIR

    bin_flops = interactions_used * nkr * nkr * FLOPS_PER_PAIR
    return bin_flops / FLOPS_PER_CELL
