"""Runtime-compiled C kernels for the FSBM physics column hot spots.

After the fused transport engine (PR 3), profiling shows the numpy
physics path dominating the model step: the per-species sedimentation
sweep materializes a full-field ``flux`` temporary per species, and the
condensation KO-remap runs two full-size ``np.bincount`` passes per
growth call. Both are the kind of fragmented, temporary-heavy loop the
paper's stage-3 transformation collapses; this module is their
host-side analog, built on the shared :mod:`repro.core.cjit`
infrastructure (source-hash-cached ``.so``, ``-ffp-contract=off``,
transparent numpy fallback).

Equivalence to the numpy references (asserted by
``tests/fsbm/test_native_kernels.py``):

* ``sed_sweep`` — the fused all-species sedimentation loop nest over
  ``(species, i, j, k, bin)``. Per element it performs exactly the
  reference's ``flux = n*c``; ``n -= flux``; ``n[:, :-1] += flux[:, 1:]``
  sequence (flux of a level is always computed before that level
  receives the carry from above), so the distributions match **bit for
  bit** up to the sign of floating-point zeros. Only the surface
  precipitation dot product accumulates left-to-right instead of
  through BLAS, which agrees to <1e-12 relative. Rows whose flux is
  entirely zero skip their writes, so absent species cost one read
  pass and no stores — this is what lets the caller drop its
  per-species ``n.any()`` prescan on the compiled path (the kernel
  reports per-species presence in ``active``).
* ``remap_scatter`` — the Kovetz–Olund two-bin deposit. numpy's
  ``bincount`` accumulates sequentially in flat index order, which the
  per-point ``lo``/``hi`` accumulators reproduce exactly, so the remap
  is **bit-identical** to the double-``bincount`` reference.

``REPRO_DISABLE_CPHYS=1`` (this module) or ``REPRO_DISABLE_CJIT=1``
(all compiled kernels) forces the numpy fallback.
"""

from __future__ import annotations

import ctypes
from pathlib import Path

import numpy as np

from repro.core import cjit

#: Environment switch forcing the numpy physics fallback.
DISABLE_ENV = "REPRO_DISABLE_CPHYS"

#: Stack-buffer capacity of the per-row/per-point accumulators below;
#: wrappers fall back to numpy for larger bin counts.
MAX_NKR = 64

C_SOURCE = r"""
#include <stddef.h>

#define MAX_NKR 64

/* Fused all-species upwind sedimentation sweep.
 *
 * dists[sp] points at that species' (ni, nk, nj, nkr) view; all
 * species share the element strides (si, sk, sj) and a unit bin
 * stride. courant is (nsp, nk, nkr) and masses (nsp, nkr), both
 * contiguous. precip is a strided (ni, nj) view with element strides
 * (psi, psj).
 *
 * The loops run in memory-layout order (i, k, j, species): when the
 * species views are slices of one (i, k, j, scalar) superblock, the
 * inner j/species loops walk the block's trailing axis contiguously —
 * streaming with hardware prefetch instead of the 45 KB column jumps
 * of a per-(species, column) k sweep. The k recurrence is preserved
 * because each row's update is local: level k's flux is computed from
 * its pre-update row, the row is decremented, and the flux is carried
 * to level k - 1 (already decremented during the previous k
 * iteration, one k-stride back and still cache-resident) — or, at
 * k == 0, its mass is accumulated into precip. Every element sees
 * subtract-then-add, the exact operation order of the numpy
 * reference, and per-element/per-precip accumulation order is
 * independent of the loop interchange. Rows with all-zero flux skip
 * their stores (identical up to signed zeros), so absent species are
 * read-only. active[sp] reports whether any pre-update value of the
 * species was nonzero.
 */
void sed_sweep(double **dists,
               const double *restrict courant,
               const double *restrict masses,
               double *restrict precip,
               long nsp, long ni, long nk, long nj, long nkr,
               long si, long sk, long sj,
               long psi, long psj,
               unsigned char *restrict active)
{
    for (long sp = 0; sp < nsp; sp++)
        active[sp] = 0;
    for (long i = 0; i < ni; i++) {
        for (long k = 0; k < nk; k++) {
            for (long j = 0; j < nj; j++) {
                const size_t cell = (size_t)i * si + (size_t)k * sk
                                  + (size_t)j * sj;
                for (long sp = 0; sp < nsp; sp++) {
                    double *row = dists[sp] + cell;
                    const double *cr = courant
                        + ((size_t)sp * nk + (size_t)k) * nkr;
                    double flux[MAX_NKR];
                    int rownz = 0;
                    for (long b = 0; b < nkr; b++) {
                        const double nv = row[b];
                        flux[b] = nv * cr[b];
                        if (nv != 0.0) rownz = 1;
                    }
                    if (!rownz)
                        continue;
                    active[sp] = 1;
                    for (long b = 0; b < nkr; b++)
                        row[b] -= flux[b];
                    if (k == 0) {
                        const double *mass_sp = masses + (size_t)sp * nkr;
                        double acc = 0.0;
                        for (long b = 0; b < nkr; b++)
                            acc += flux[b] * mass_sp[b];
                        precip[(size_t)i * psi + (size_t)j * psj] += acc;
                    } else {
                        double *below = row - sk;
                        for (long b = 0; b < nkr; b++)
                            below[b] += flux[b];
                    }
                }
            }
        }
    }
}

/* Kovetz-Olund remap scatter: deposit n_live[p, b] split between
 * ladder bins k[p, b] (weight 1 - w_hi) and k[p, b] + 1 (weight
 * w_hi), writing the (npts, nkr) result to acc. Matches the
 * two-bincount numpy reference bit for bit: bincount accumulates
 * sequentially in flat order (here: b ascending per point), and the
 * final acc is the elementwise lo + hi sum, exactly as the
 * reference's `acc += bincount(...)` second pass.
 */
void remap_scatter(const double *restrict n_live,
                   const double *restrict w_hi,
                   const long *restrict k_idx,
                   double *restrict acc,
                   long npts, long nkr)
{
    for (long p = 0; p < npts; p++) {
        const double *nl = n_live + (size_t)p * nkr;
        const double *wh = w_hi + (size_t)p * nkr;
        const long *kk = k_idx + (size_t)p * nkr;
        double lo[MAX_NKR];
        double hi[MAX_NKR];
        for (long b = 0; b < nkr; b++) { lo[b] = 0.0; hi[b] = 0.0; }
        for (long b = 0; b < nkr; b++) {
            const long k = kk[b];
            lo[k] += nl[b] * (1.0 - wh[b]);
            hi[k + 1] += nl[b] * wh[b];
        }
        double *ap = acc + (size_t)p * nkr;
        for (long b = 0; b < nkr; b++)
            ap[b] = lo[b] + hi[b];
    }
}
"""

_c_double_p = ctypes.POINTER(ctypes.c_double)


def _declare(lib: ctypes.CDLL) -> None:
    lib.sed_sweep.restype = None
    lib.sed_sweep.argtypes = [
        ctypes.POINTER(_c_double_p),  # dists
        _c_double_p,  # courant
        _c_double_p,  # masses
        _c_double_p,  # precip
        ctypes.c_long, ctypes.c_long, ctypes.c_long, ctypes.c_long,
        ctypes.c_long,  # nsp, ni, nk, nj, nkr
        ctypes.c_long, ctypes.c_long, ctypes.c_long,  # si, sk, sj
        ctypes.c_long, ctypes.c_long,  # psi, psj
        ctypes.POINTER(ctypes.c_ubyte),  # active
    ]
    lib.remap_scatter.restype = None
    lib.remap_scatter.argtypes = [
        _c_double_p, _c_double_p,
        ctypes.POINTER(ctypes.c_long),
        _c_double_p,
        ctypes.c_long, ctypes.c_long,
    ]


_module = cjit.CJitModule(
    "fsbm_kernels",
    C_SOURCE,
    disable_env=DISABLE_ENV,
    build_dir=Path(__file__).resolve().parent / "_cbuild",
    setup=_declare,
)

#: Why the kernels are unavailable ("" while they are); diagnostics.
load_error: str = ""


def load_kernels() -> ctypes.CDLL | None:
    """The compiled physics kernels, or ``None`` (use numpy)."""
    global load_error
    lib = _module.load()
    load_error = _module.load_error
    return lib


def _dptr(arr: np.ndarray) -> ctypes.POINTER(ctypes.c_double):
    return arr.ctypes.data_as(_c_double_p)


def sed_sweep(
    lib: ctypes.CDLL,
    dists: list[np.ndarray],
    courant: np.ndarray,
    masses: np.ndarray,
    precip: np.ndarray,
) -> np.ndarray | None:
    """Run the fused sedimentation sweep in place; per-species presence.

    ``dists`` holds every species' ``(ni, nk, nj, nkr)`` array (views
    are fine as long as the bin axis is unit-stride and all species
    share strides); ``courant`` is ``(nsp, nk, nkr)`` and ``masses``
    ``(nsp, nkr)``, both C-contiguous float64. Returns the per-species
    ``active`` flags, or ``None`` when the layout is unsupported and
    the caller must take the numpy path.
    """
    nsp = len(dists)
    ref = dists[0]
    ni, nk, nj, nkr = ref.shape
    itemsize = ref.itemsize
    if (
        nkr > MAX_NKR
        or ref.dtype != np.float64
        or precip.dtype != np.float64
        or ref.strides[3] != itemsize
        or any(d.shape != ref.shape or d.strides != ref.strides for d in dists)
    ):
        return None
    ptrs = (_c_double_p * nsp)(*[_dptr(d) for d in dists])
    active = np.zeros(nsp, dtype=np.uint8)
    lib.sed_sweep(
        ptrs,
        _dptr(courant),
        _dptr(masses),
        _dptr(precip),
        nsp, ni, nk, nj, nkr,
        ref.strides[0] // itemsize,
        ref.strides[1] // itemsize,
        ref.strides[2] // itemsize,
        precip.strides[0] // itemsize,
        precip.strides[1] // itemsize,
        active.ctypes.data_as(ctypes.POINTER(ctypes.c_ubyte)),
    )
    return active


def remap_scatter(
    lib: ctypes.CDLL,
    n_live: np.ndarray,
    w_hi: np.ndarray,
    k_idx: np.ndarray,
    out: np.ndarray,
) -> None:
    """KO-remap deposit of ``(npts, nkr)`` spectra into ``out``."""
    npts, nkr = n_live.shape
    n_live = np.ascontiguousarray(n_live, dtype=np.float64)
    w_hi = np.ascontiguousarray(w_hi, dtype=np.float64)
    k_idx = np.ascontiguousarray(k_idx, dtype=np.int64)
    lib.remap_scatter(
        _dptr(n_live),
        _dptr(w_hi),
        k_idx.ctypes.data_as(ctypes.POINTER(ctypes.c_long)),
        _dptr(out),
        npts, nkr,
    )
