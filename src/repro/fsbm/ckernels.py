"""Runtime-compiled C kernels for the FSBM physics column hot spots.

After the fused transport engine (PR 3), profiling shows the numpy
physics path dominating the model step: the per-species sedimentation
sweep materializes a full-field ``flux`` temporary per species, and the
condensation KO-remap runs two full-size ``np.bincount`` passes per
growth call. Both are the kind of fragmented, temporary-heavy loop the
paper's stage-3 transformation collapses; this module is their
host-side analog, built on the shared :mod:`repro.core.cjit`
infrastructure (source-hash-cached ``.so``, ``-ffp-contract=off``,
transparent numpy fallback).

Since PR 6 both kernels are defined as `repro.codee.loopir` kernels
(:func:`build_sed_sweep_ir`, :func:`build_remap_scatter_ir`) rather
than hand-written C strings: the transformation engine
(`repro.codee.transform`) analyzes them, the static verifier
(`repro.codee.irverify`) checks the result, and `repro.codee.cgen`
emits the C that :mod:`repro.core.cjit` compiles. The analysis is
honest about these loops — the sedimentation nest's ``k``-carried flux
recurrence and its ``active``/``precip`` accumulations make it
provably *non*-parallelizable, and the remap's depth-1 nest is below
the parallel-overhead floor — so both are emitted serial, exactly like
their hand-written predecessors, and their arithmetic (expressed in
the IR with the reference's operation order) stays bit-identical. The
member-batched ``sed_sweep_members`` (PR 10) has a provably
independent member loop but is *policy*-serial (`_plan_serial`):
rank-level threads/processes own the cores, so every fsbm kernel
stays an `omp`-free translation unit.

Equivalence to the numpy references (asserted by
``tests/fsbm/test_native_kernels.py``):

* ``sed_sweep`` — the fused all-species sedimentation loop nest over
  ``(species, i, j, k, bin)``. Per element it performs exactly the
  reference's ``flux = n*c``; ``n -= flux``; ``n[:, :-1] += flux[:, 1:]``
  sequence (flux of a level is always computed before that level
  receives the carry from above), so the distributions match **bit for
  bit** up to the sign of floating-point zeros. Only the surface
  precipitation dot product accumulates left-to-right instead of
  through BLAS, which agrees to <1e-12 relative. Rows whose flux is
  entirely zero skip their writes, so absent species cost one read
  pass and no stores — this is what lets the caller drop its
  per-species ``n.any()`` prescan on the compiled path (the kernel
  reports per-species presence in ``active``).
* ``remap_scatter`` — the Kovetz–Olund two-bin deposit. numpy's
  ``bincount`` accumulates sequentially in flat index order, which the
  per-point ``lo``/``hi`` accumulators reproduce exactly, so the remap
  is **bit-identical** to the double-``bincount`` reference.

``REPRO_DISABLE_CPHYS=1`` (this module) or ``REPRO_DISABLE_CJIT=1``
(all compiled kernels) forces the numpy fallback.
"""

from __future__ import annotations

import ctypes
from pathlib import Path

import numpy as np

from repro.codee import cgen, loopir, transform
from repro.codee.loopir import (
    ArrayParam,
    Assign,
    Const,
    Decl,
    If,
    Kernel,
    Let,
    Load,
    LocalArray,
    Loop,
    ScalarParam,
    Store,
    Sym,
)
from repro.core import cjit
from repro.obs import tracer

#: Environment switch forcing the numpy physics fallback.
DISABLE_ENV = "REPRO_DISABLE_CPHYS"

#: Stack-buffer capacity of the per-row/per-point accumulators below;
#: wrappers fall back to numpy for larger bin counts.
MAX_NKR = 64

def build_sed_sweep_ir() -> Kernel:
    """The fused all-species upwind sedimentation sweep as loop IR.

    ``dists`` is a pointer table: ``dists[sp]`` points at that
    species' ``(ni, nk, nj, nkr)`` view; all species share the element
    strides ``(si, sk, sj)`` and a unit bin stride. ``courant`` is
    ``(nsp, nk, nkr)`` and ``masses`` ``(nsp, nkr)``, both contiguous;
    ``precip`` is a strided ``(ni, nj)`` view with element strides
    ``(psi, psj)``.

    The loops run in memory-layout order (i, k, j, species): when the
    species views are slices of one (i, k, j, scalar) superblock, the
    inner j/species loops walk the block's trailing axis contiguously.
    The k recurrence is preserved because each row's update is local:
    level k's flux is computed from its pre-update row, the row is
    decremented, and the flux is carried to level k - 1 (already
    decremented during the previous k iteration) — or, at k == 0, its
    mass is accumulated into precip. Every element sees
    subtract-then-add, the exact operation order of the numpy
    reference. Rows with all-zero flux skip their stores, so absent
    species are read-only; ``active[sp]`` reports whether any
    pre-update value of the species was nonzero.

    That recurrence is precisely what the dependence analysis sees:
    the ``k - 1`` accumulation, the ``active``/``precip`` updates, and
    the conditional row writes each carry a dependence, so
    `repro.codee.transform` derives ``parallel depth 0`` and the
    emitted nest is serial — matching the hand-written kernel, which
    relied on streaming memory order rather than threads.
    """
    i, k, j, sp, b = Sym("i"), Sym("k"), Sym("j"), Sym("sp"), Sym("b")
    nkr = Sym("nkr")

    def dist_at(kk):
        return (sp, i, kk, j, b)

    bin_loop = lambda body: Loop("b", Const(0), nkr, body)

    flux_fill = bin_loop(
        [
            Let("nv", Load("dists", dist_at(k))),
            Store("flux", (b,), Sym("nv") * Load("courant", (sp, k, b))),
            If(Sym("nv").ne(Const(0.0)), [Assign("rownz", Const(1))]),
        ]
    )
    subtract = bin_loop([Store("dists", dist_at(k), Load("flux", (b,)), "-=")])
    to_precip = [
        Decl("acc", "double", Const(0.0)),
        bin_loop(
            [
                Assign(
                    "acc",
                    Sym("acc") + Load("flux", (b,)) * Load("masses", (sp, b)),
                )
            ]
        ),
        Store("precip", (i, j), Sym("acc"), "+="),
    ]
    to_below = [
        bin_loop([Store("dists", dist_at(k - 1), Load("flux", (b,)), "+=")])
    ]

    per_row = [
        LocalArray("flux", MAX_NKR),
        Decl("rownz", "int", Const(0)),
        flux_fill,
        If(
            Sym("rownz"),
            [
                Store("active", (sp,), Const(1)),
                subtract,
                If(k.eq(Const(0)), to_precip, to_below),
            ],
        ),
    ]

    main = Loop(
        "i",
        Const(0),
        Sym("ni"),
        [
            Loop(
                "k",
                Const(0),
                Sym("nk"),
                [
                    Loop(
                        "j",
                        Const(0),
                        Sym("nj"),
                        [Loop("sp", Const(0), Sym("nsp"), per_row)],
                    )
                ],
            )
        ],
    )

    return Kernel(
        name="sed_sweep",
        params=(
            ArrayParam(
                "dists",
                strides=(Sym("si"), Sym("sk"), Sym("sj"), Const(1)),
                intent="inout",
                ptr_table=True,
            ),
            ArrayParam("courant", strides=(Sym("nk") * nkr, nkr, Const(1))),
            ArrayParam("masses", strides=(nkr, Const(1))),
            ArrayParam("precip", strides=(Sym("psi"), Sym("psj")), intent="inout"),
            ScalarParam("nsp", "long"),
            ScalarParam("ni", "long"),
            ScalarParam("nk", "long"),
            ScalarParam("nj", "long"),
            ScalarParam("nkr", "long"),
            ScalarParam("si", "long"),
            ScalarParam("sk", "long"),
            ScalarParam("sj", "long"),
            ScalarParam("psi", "long"),
            ScalarParam("psj", "long"),
            ArrayParam(
                "active",
                strides=(Const(1),),
                ctype="unsigned char",
                intent="out",
            ),
        ),
        body=[
            Loop("sp", Const(0), Sym("nsp"), [Store("active", (sp,), Const(0))]),
            main,
        ],
        doc=(
            "Fused all-species upwind sedimentation sweep in memory-layout "
            "order (i, k, j, species); level k's flux is subtracted from "
            "its row then carried to k - 1 (or precip at the surface), the "
            "reference's exact operation order."
        ),
    )


def build_sed_sweep_members_ir() -> Kernel:
    """The sedimentation sweep batched over ensemble members.

    Identical arithmetic to :func:`build_sed_sweep_ir` wrapped in one
    outer member loop: ``dists[sp]`` now points at a
    ``(nm, ni, nk, nj, nkr)`` view (member element stride ``sm``),
    ``precip`` is ``(nm, ni, nj)``, and the presence flags become
    per-member — ``active[m, sp]`` — which is what keeps the per-member
    work stats (and therefore the per-member clock charges) identical
    to a solo run of each member. The k-carried flux recurrence is
    member-local, so the member loop adds no new dependences; the nest
    stays serial for the same reasons the solo kernel does.
    """
    m, i, k, j, sp, b = Sym("m"), Sym("i"), Sym("k"), Sym("j"), Sym("sp"), Sym("b")
    nkr = Sym("nkr")

    def dist_at(kk):
        return (sp, m, i, kk, j, b)

    bin_loop = lambda body: Loop("b", Const(0), nkr, body)

    flux_fill = bin_loop(
        [
            Let("nv", Load("dists", dist_at(k))),
            Store("flux", (b,), Sym("nv") * Load("courant", (sp, k, b))),
            If(Sym("nv").ne(Const(0.0)), [Assign("rownz", Const(1))]),
        ]
    )
    subtract = bin_loop([Store("dists", dist_at(k), Load("flux", (b,)), "-=")])
    to_precip = [
        Decl("acc", "double", Const(0.0)),
        bin_loop(
            [
                Assign(
                    "acc",
                    Sym("acc") + Load("flux", (b,)) * Load("masses", (sp, b)),
                )
            ]
        ),
        Store("precip", (m, i, j), Sym("acc"), "+="),
    ]
    to_below = [
        bin_loop([Store("dists", dist_at(k - 1), Load("flux", (b,)), "+=")])
    ]

    per_row = [
        LocalArray("flux", MAX_NKR),
        Decl("rownz", "int", Const(0)),
        flux_fill,
        If(
            Sym("rownz"),
            [
                Store("active", (m, sp), Const(1)),
                subtract,
                If(k.eq(Const(0)), to_precip, to_below),
            ],
        ),
    ]

    main = Loop(
        "m",
        Const(0),
        Sym("nm"),
        [
            Loop(
                "i",
                Const(0),
                Sym("ni"),
                [
                    Loop(
                        "k",
                        Const(0),
                        Sym("nk"),
                        [
                            Loop(
                                "j",
                                Const(0),
                                Sym("nj"),
                                [Loop("sp", Const(0), Sym("nsp"), per_row)],
                            )
                        ],
                    )
                ],
            )
        ],
    )

    return Kernel(
        name="sed_sweep_members",
        params=(
            ArrayParam(
                "dists",
                strides=(Sym("sm"), Sym("si"), Sym("sk"), Sym("sj"), Const(1)),
                intent="inout",
                ptr_table=True,
            ),
            ArrayParam("courant", strides=(Sym("nk") * nkr, nkr, Const(1))),
            ArrayParam("masses", strides=(nkr, Const(1))),
            ArrayParam(
                "precip",
                strides=(Sym("pm"), Sym("psi"), Sym("psj")),
                intent="inout",
            ),
            ScalarParam("nm", "long"),
            ScalarParam("nsp", "long"),
            ScalarParam("ni", "long"),
            ScalarParam("nk", "long"),
            ScalarParam("nj", "long"),
            ScalarParam("nkr", "long"),
            ScalarParam("sm", "long"),
            ScalarParam("si", "long"),
            ScalarParam("sk", "long"),
            ScalarParam("sj", "long"),
            ScalarParam("pm", "long"),
            ScalarParam("psi", "long"),
            ScalarParam("psj", "long"),
            ArrayParam(
                "active",
                strides=(Sym("nsp"), Const(1)),
                ctype="unsigned char",
                intent="out",
            ),
        ),
        body=[
            Loop(
                "m",
                Const(0),
                Sym("nm"),
                [
                    Loop(
                        "sp",
                        Const(0),
                        Sym("nsp"),
                        [Store("active", (m, sp), Const(0))],
                    )
                ],
            ),
            main,
        ],
        doc=(
            "Fused sedimentation sweep over a member-stacked superblock "
            "(m, i, k, j, species); arithmetic identical to sed_sweep per "
            "member, with per-member active flags."
        ),
    )


def build_remap_scatter_ir() -> Kernel:
    """The Kovetz-Olund two-bin deposit as loop IR.

    Deposits ``n_live[p, b]`` split between ladder bins ``k_idx[p, b]``
    (weight ``1 - w_hi``) and ``k_idx[p, b] + 1`` (weight ``w_hi``),
    writing the ``(npts, nkr)`` result to ``acc``. Matches the
    two-bincount numpy reference bit for bit: bincount accumulates
    sequentially in flat order (here: b ascending per point), and the
    final ``acc`` is the elementwise ``lo + hi`` sum, exactly as the
    reference's second ``bincount`` pass.

    The analysis keeps it serial twice over: the scatter through
    ``k_idx`` is an indirect store (iterations cannot be proven
    disjoint bin-wise), and the point nest is depth 1 — below the
    parallel-overhead floor even though the ``p`` loop itself is
    independent.
    """
    p, b = Sym("p"), Sym("b")
    nkr = Sym("nkr")

    body_p = [
        LocalArray("lo", MAX_NKR),
        LocalArray("hi", MAX_NKR),
        Loop(
            "b",
            Const(0),
            nkr,
            [Store("lo", (b,), Const(0.0)), Store("hi", (b,), Const(0.0))],
        ),
        Loop(
            "b",
            Const(0),
            nkr,
            [
                Let("kk", Load("k_idx", (p, b)), ctype="long"),
                Store(
                    "lo",
                    (Sym("kk"),),
                    Load("n_live", (p, b)) * (Const(1.0) - Load("w_hi", (p, b))),
                    "+=",
                ),
                Store(
                    "hi",
                    (Sym("kk") + 1,),
                    Load("n_live", (p, b)) * Load("w_hi", (p, b)),
                    "+=",
                ),
            ],
        ),
        Loop(
            "b",
            Const(0),
            nkr,
            [Store("acc", (p, b), Load("lo", (b,)) + Load("hi", (b,)))],
        ),
    ]

    return Kernel(
        name="remap_scatter",
        params=(
            ArrayParam("n_live", strides=(nkr, Const(1))),
            ArrayParam("w_hi", strides=(nkr, Const(1))),
            ArrayParam("k_idx", strides=(nkr, Const(1)), ctype="long"),
            ArrayParam("acc", strides=(nkr, Const(1)), intent="out"),
            ScalarParam("npts", "long"),
            ScalarParam("nkr", "long"),
        ),
        body=[Loop("p", Const(0), Sym("npts"), body_p)],
        doc=(
            "Kovetz-Olund remap scatter: two-bin deposit of n_live between "
            "ladder bins k_idx and k_idx + 1, accumulated in the reference "
            "bincount's flat order."
        ),
    )


loopir.register_kernel(
    loopir.KernelSpec(
        name="sed_sweep",
        build=build_sed_sweep_ir,
        transform=transform.plan_offload,
    )
)
def _plan_serial(kernel):
    """Offload derivation with parallel annotations off.

    The member loop of ``sed_sweep_members`` is provably independent,
    but fsbm physics kernels are emitted serial by convention: the
    model's parallelism lives at the rank level (threads in 8.3,
    processes in 8.8), and an ``omp parallel`` region inside every
    rank's physics would oversubscribe the very cores the ranks own.
    The rest of the derivation (normalize, fission, automatic-array
    hoisting) still runs.
    """
    return transform.plan_offload(
        kernel, transform.TransformPolicy(parallel=False)
    )


loopir.register_kernel(
    loopir.KernelSpec(
        name="sed_sweep_members",
        build=build_sed_sweep_members_ir,
        transform=_plan_serial,
    )
)
loopir.register_kernel(
    loopir.KernelSpec(
        name="remap_scatter",
        build=build_remap_scatter_ir,
        transform=transform.plan_offload,
    )
)

_c_double_p = ctypes.POINTER(ctypes.c_double)


def _declare(lib: ctypes.CDLL) -> None:
    lib.sed_sweep.restype = None
    lib.sed_sweep.argtypes = [
        ctypes.POINTER(_c_double_p),  # dists
        _c_double_p,  # courant
        _c_double_p,  # masses
        _c_double_p,  # precip
        ctypes.c_long, ctypes.c_long, ctypes.c_long, ctypes.c_long,
        ctypes.c_long,  # nsp, ni, nk, nj, nkr
        ctypes.c_long, ctypes.c_long, ctypes.c_long,  # si, sk, sj
        ctypes.c_long, ctypes.c_long,  # psi, psj
        ctypes.POINTER(ctypes.c_ubyte),  # active
    ]
    lib.sed_sweep_members.restype = None
    lib.sed_sweep_members.argtypes = [
        ctypes.POINTER(_c_double_p),  # dists
        _c_double_p,  # courant
        _c_double_p,  # masses
        _c_double_p,  # precip
        ctypes.c_long, ctypes.c_long,  # nm, nsp
        ctypes.c_long, ctypes.c_long, ctypes.c_long, ctypes.c_long,
        # ni, nk, nj, nkr
        ctypes.c_long, ctypes.c_long, ctypes.c_long, ctypes.c_long,
        # sm, si, sk, sj
        ctypes.c_long, ctypes.c_long, ctypes.c_long,  # pm, psi, psj
        ctypes.POINTER(ctypes.c_ubyte),  # active
    ]
    lib.remap_scatter.restype = None
    lib.remap_scatter.argtypes = [
        _c_double_p, _c_double_p,
        ctypes.POINTER(ctypes.c_long),
        _c_double_p,
        ctypes.c_long, ctypes.c_long,
    ]


# Derive annotations, verify, and emit the C source; an illegal
# transformation raises IRVerificationError here, at import, before
# any C exists — loud by design.
_module = cgen.build_module(
    "fsbm_kernels",
    [
        transform.plan_offload(build_sed_sweep_ir()).kernel,
        _plan_serial(build_sed_sweep_members_ir()).kernel,
        transform.plan_offload(build_remap_scatter_ir()).kernel,
    ],
    disable_env=DISABLE_ENV,
    build_dir=Path(__file__).resolve().parent / "_cbuild",
    setup=_declare,
    banner=(
        "Generated by repro.codee.cgen from the sed_sweep/remap_scatter "
        "loop IR; annotations derived by repro.codee.transform. Do not "
        "edit."
    ),
)

#: The generated translation unit (kept for introspection/diagnostics).
C_SOURCE = _module.source

#: Why the kernels are unavailable ("" while they are); diagnostics.
load_error: str = ""

_path_traced = False


def load_kernels() -> ctypes.CDLL | None:
    """The compiled physics kernels, or ``None`` (use numpy).

    The underlying :class:`~repro.core.cjit.CJitModule` records the
    one-time ``cjit.compile``/``cjit.load`` spans; this wrapper adds a
    single instant event marking which path (compiled vs numpy
    fallback) the physics resolved to, so traces are self-describing.
    """
    global load_error, _path_traced
    lib = _module.load()
    load_error = _module.load_error
    if not _path_traced and tracer.enabled():
        _path_traced = True
        tracer.instant(
            "fsbm_kernels.path",
            cat="jit",
            attrs={"compiled": lib is not None, "error": load_error},
        )
    return lib


def _dptr(arr: np.ndarray) -> ctypes.POINTER(ctypes.c_double):
    return arr.ctypes.data_as(_c_double_p)


def sed_sweep(
    lib: ctypes.CDLL,
    dists: list[np.ndarray],
    courant: np.ndarray,
    masses: np.ndarray,
    precip: np.ndarray,
) -> np.ndarray | None:
    """Run the fused sedimentation sweep in place; per-species presence.

    ``dists`` holds every species' ``(ni, nk, nj, nkr)`` array (views
    are fine as long as the bin axis is unit-stride and all species
    share strides); ``courant`` is ``(nsp, nk, nkr)`` and ``masses``
    ``(nsp, nkr)``, both C-contiguous float64. Returns the per-species
    ``active`` flags, or ``None`` when the layout is unsupported and
    the caller must take the numpy path.
    """
    nsp = len(dists)
    ref = dists[0]
    ni, nk, nj, nkr = ref.shape
    itemsize = ref.itemsize
    if (
        nkr > MAX_NKR
        or ref.dtype != np.float64
        or precip.dtype != np.float64
        or ref.strides[3] != itemsize
        or any(d.shape != ref.shape or d.strides != ref.strides for d in dists)
    ):
        return None
    ptrs = (_c_double_p * nsp)(*[_dptr(d) for d in dists])
    active = np.zeros(nsp, dtype=np.uint8)
    lib.sed_sweep(
        ptrs,
        _dptr(courant),
        _dptr(masses),
        _dptr(precip),
        nsp, ni, nk, nj, nkr,
        ref.strides[0] // itemsize,
        ref.strides[1] // itemsize,
        ref.strides[2] // itemsize,
        precip.strides[0] // itemsize,
        precip.strides[1] // itemsize,
        active.ctypes.data_as(ctypes.POINTER(ctypes.c_ubyte)),
    )
    return active


def sed_sweep_members(
    lib: ctypes.CDLL,
    dists: list[np.ndarray],
    courant: np.ndarray,
    masses: np.ndarray,
    precip: np.ndarray,
) -> np.ndarray | None:
    """Member-batched sedimentation sweep; per-(member, species) flags.

    ``dists`` holds every species' ``(nm, ni, nk, nj, nkr)`` view into
    the member-stacked superblock (all species must share shapes and
    strides, bin axis unit-stride); ``precip`` is ``(nm, ni, nj)``
    float64. Tables are the same step-invariant ``(nsp, nk, nkr)`` /
    ``(nsp, nkr)`` stacks the solo sweep uses — shared across members.
    Returns the ``(nm, nsp)`` ``active`` flags, or ``None`` when the
    layout is unsupported and the caller must fall back to per-member
    sweeps.
    """
    nsp = len(dists)
    ref = dists[0]
    nm, ni, nk, nj, nkr = ref.shape
    itemsize = ref.itemsize
    if (
        nkr > MAX_NKR
        or ref.dtype != np.float64
        or precip.dtype != np.float64
        or precip.shape != (nm, ni, nj)
        or ref.strides[4] != itemsize
        or any(d.shape != ref.shape or d.strides != ref.strides for d in dists)
    ):
        return None
    ptrs = (_c_double_p * nsp)(*[_dptr(d) for d in dists])
    active = np.zeros((nm, nsp), dtype=np.uint8)
    # Policy-serial emission (_plan_serial) keeps the per-row flux
    # LocalArray on the stack — no hoisted scratch param.
    lib.sed_sweep_members(
        ptrs,
        _dptr(courant),
        _dptr(masses),
        _dptr(precip),
        nm, nsp, ni, nk, nj, nkr,
        ref.strides[0] // itemsize,
        ref.strides[1] // itemsize,
        ref.strides[2] // itemsize,
        ref.strides[3] // itemsize,
        precip.strides[0] // itemsize,
        precip.strides[1] // itemsize,
        precip.strides[2] // itemsize,
        active.ctypes.data_as(ctypes.POINTER(ctypes.c_ubyte)),
    )
    return active


def remap_scatter(
    lib: ctypes.CDLL,
    n_live: np.ndarray,
    w_hi: np.ndarray,
    k_idx: np.ndarray,
    out: np.ndarray,
) -> None:
    """KO-remap deposit of ``(npts, nkr)`` spectra into ``out``."""
    npts, nkr = n_live.shape
    n_live = np.ascontiguousarray(n_live, dtype=np.float64)
    w_hi = np.ascontiguousarray(w_hi, dtype=np.float64)
    k_idx = np.ascontiguousarray(k_idx, dtype=np.int64)
    lib.remap_scatter(
        _dptr(n_live),
        _dptr(w_hi),
        k_idx.ctypes.data_as(ctypes.POINTER(ctypes.c_long)),
        _dptr(out),
        npts, nkr,
    )
