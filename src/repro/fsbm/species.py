"""Hydrometeor species and the 20-interaction collision registry.

FSBM carries liquid drops, three ice-crystal habits (``icemax = 3``),
snow, graupel, and hail. ``kernals_ks`` in the original Fortran fills
20 collision arrays (``cwll``, ``cwls``, ``cwlg``, ...), one per
(collector, collected) pairing; this module is the authoritative list
of those pairings, their coalescence products, and the temperature
regimes in which each is active — the conditionals that make "not all
20 collision arrays used" at any given grid point (Sec. VI-A).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.constants import T_0


class Species(enum.Enum):
    """Hydrometeor categories carried by the scheme."""

    LIQUID = "liquid"
    ICE_COL = "ice_columns"
    ICE_PLA = "ice_plates"
    ICE_DEN = "ice_dendrites"
    SNOW = "snow"
    GRAUPEL = "graupel"
    HAIL = "hail"

    @property
    def short(self) -> str:
        """One/two-letter tag used in collision-array names."""
        return _SHORT[self]

    @property
    def is_ice(self) -> bool:
        return self is not Species.LIQUID


_SHORT = {
    Species.LIQUID: "l",
    Species.ICE_COL: "i1",
    Species.ICE_PLA: "i2",
    Species.ICE_DEN: "i3",
    Species.SNOW: "s",
    Species.GRAUPEL: "g",
    Species.HAIL: "h",
}

#: The three crystal habits.
ICE_HABITS = (Species.ICE_COL, Species.ICE_PLA, Species.ICE_DEN)


@dataclass(frozen=True, slots=True)
class Interaction:
    """One collision pairing with its kernel table and product species."""

    collector: Species
    collected: Species
    product: Species
    #: Interaction active only below this temperature [K] (None = always).
    t_max: float | None = None
    #: Interaction active only above this temperature [K] (None = always).
    t_min: float | None = None

    @property
    def name(self) -> str:
        """The ``cw**`` collision-array name (e.g. ``cwlg``)."""
        return f"cw{self.collector.short}{self.collected.short}"

    def active_at(self, temperature: float) -> bool:
        """Whether this pairing participates at the given temperature."""
        if self.t_max is not None and temperature >= self.t_max:
            return False
        if self.t_min is not None and temperature <= self.t_min:
            return False
        return True

    def active_at_array(self, temperature) -> "np.ndarray":
        """Vectorized :meth:`active_at` for a temperature array."""
        import numpy as np

        t = np.asarray(temperature)
        ok = np.ones(t.shape, dtype=bool)
        if self.t_max is not None:
            ok &= t < self.t_max
        if self.t_min is not None:
            ok &= t > self.t_min
        return ok

    @property
    def self_collection(self) -> bool:
        return self.collector is self.collected


def _ix(
    a: Species,
    b: Species,
    prod: Species,
    t_max: float | None = None,
    t_min: float | None = None,
) -> Interaction:
    return Interaction(collector=a, collected=b, product=prod, t_max=t_max, t_min=t_min)


#: The 20 collision interactions of ``kernals_ks``, in the order the
#: Fortran fills its arrays. Ice-involving pairings are gated to
#: sub-freezing temperatures; drop-drop coalescence runs everywhere the
#: coal routine is called.
INTERACTIONS: tuple[Interaction, ...] = (
    _ix(Species.LIQUID, Species.LIQUID, Species.LIQUID),  # cwll
    _ix(Species.LIQUID, Species.ICE_COL, Species.GRAUPEL, t_max=T_0),  # cwli1
    _ix(Species.LIQUID, Species.ICE_PLA, Species.GRAUPEL, t_max=T_0),  # cwli2
    _ix(Species.LIQUID, Species.ICE_DEN, Species.GRAUPEL, t_max=T_0),  # cwli3
    _ix(Species.LIQUID, Species.SNOW, Species.SNOW, t_max=T_0),  # cwls
    _ix(Species.LIQUID, Species.GRAUPEL, Species.GRAUPEL, t_max=T_0),  # cwlg
    _ix(Species.LIQUID, Species.HAIL, Species.HAIL, t_max=T_0),  # cwlh
    _ix(Species.ICE_COL, Species.ICE_COL, Species.SNOW, t_max=T_0 - 5.0),  # cwi1i1
    _ix(Species.ICE_PLA, Species.ICE_PLA, Species.SNOW, t_max=T_0 - 5.0),  # cwi2i2
    _ix(Species.ICE_DEN, Species.ICE_DEN, Species.SNOW, t_max=T_0 - 5.0),  # cwi3i3
    _ix(Species.SNOW, Species.ICE_COL, Species.SNOW, t_max=T_0 - 5.0),  # cwsi1
    _ix(Species.SNOW, Species.ICE_PLA, Species.SNOW, t_max=T_0 - 5.0),  # cwsi2
    _ix(Species.SNOW, Species.ICE_DEN, Species.SNOW, t_max=T_0 - 5.0),  # cwsi3
    _ix(Species.SNOW, Species.SNOW, Species.SNOW, t_max=T_0 - 5.0),  # cwss
    _ix(Species.SNOW, Species.GRAUPEL, Species.GRAUPEL, t_max=T_0 - 5.0),  # cwsg
    _ix(Species.SNOW, Species.HAIL, Species.HAIL, t_max=T_0 - 5.0),  # cwsh
    _ix(Species.GRAUPEL, Species.GRAUPEL, Species.GRAUPEL, t_max=T_0 - 10.0),  # cwgg
    _ix(Species.GRAUPEL, Species.HAIL, Species.HAIL, t_max=T_0 - 10.0),  # cwgh
    _ix(Species.HAIL, Species.HAIL, Species.HAIL, t_max=T_0 - 10.0),  # cwhh
    _ix(Species.GRAUPEL, Species.LIQUID, Species.GRAUPEL, t_max=T_0),  # cwgl
)

#: Name -> interaction lookup (``cwlg`` etc.).
INTERACTIONS_BY_NAME = {ix.name: ix for ix in INTERACTIONS}

assert len(INTERACTIONS) == 20, "the Fortran fills exactly 20 collision arrays"
assert len(INTERACTIONS_BY_NAME) == 20, "collision-array names must be unique"


def interactions_for_regime(temperature: float) -> tuple[Interaction, ...]:
    """Interactions active at ``temperature`` — the on-demand subset.

    The baseline ``kernals_ks`` computes *all twenty* tables regardless;
    the lookup-optimized code only evaluates this subset, which is the
    first of the paper's two sources of the stage-1 speedup.
    """
    return tuple(ix for ix in INTERACTIONS if ix.active_at(temperature))


def species_bins() -> dict[Species, "BinGrid"]:
    """Bin grid per species (bulk density sets the mass-radius map)."""
    from repro.fsbm.bins import BinGrid

    return {
        Species.LIQUID: BinGrid(density=1.0),
        Species.ICE_COL: BinGrid(density=0.9),
        Species.ICE_PLA: BinGrid(density=0.9),
        Species.ICE_DEN: BinGrid(density=0.5),
        Species.SNOW: BinGrid(density=0.1),
        Species.GRAUPEL: BinGrid(density=0.4),
        Species.HAIL: BinGrid(density=0.9),
    }
