"""Nucleation: the ``jernucl01_ks`` droplet/ice activation routine.

Drop activation draws on a prognostic CCN reservoir with a Twomey-style
power law in supersaturation; ice nucleation follows a Fletcher-type
exponential in supercooling, gated on ice supersaturation. Newly formed
particles enter the smallest bin of their species, with vapor and
latent-heat feedback applied.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.constants import T_0
from repro.fsbm.species import Species, species_bins
from repro.fsbm.thermo import latent_heating, supersaturation

#: Twomey exponent for CCN activation.
TWOMEY_K = 0.5

#: Supersaturation [fraction] that activates the whole CCN reservoir.
S_FULL_ACTIVATION = 0.02

#: Fletcher ice-nucleation parameters: N = A * exp(B * supercooling).
FLETCHER_A = 1.0e-8  # [cm^-3]
FLETCHER_B = 0.4  # [K^-1]

#: Cap on ice crystals nucleated per step [cm^-3].
ICE_NUCLEATION_CAP = 0.1

#: FLOPs per grid point of the activation logic (supersaturation,
#: Twomey power law, Fletcher exponential, habit partition).
FLOPS_PER_POINT = 80.0


@dataclass
class NuclWorkStats:
    """Work counts for one nucleation call."""

    points: int = 0

    @property
    def flops(self) -> float:
        return self.points * FLOPS_PER_POINT

    @property
    def bytes_moved(self) -> float:
        return self.points * 4.0 * 8.0

    def merge(self, other: "NuclWorkStats") -> None:
        self.points += other.points


def jernucl01_ks(
    dists: dict[Species, np.ndarray],
    temperature: np.ndarray,
    pressure_mb: np.ndarray,
    qv: np.ndarray,
    rho_air: np.ndarray,
    ccn: np.ndarray,
    dt: float,
) -> NuclWorkStats:
    """Activate droplets and nucleate ice crystals, in place.

    ``dists`` maps species to ``(npts, nkr)`` bin arrays; thermodynamic
    arrays are per point.
    """
    npts = temperature.shape[0]
    stats = NuclWorkStats(points=npts)
    if npts == 0:
        return stats
    grids = species_bins()

    # --- droplet activation ---------------------------------------------------
    s_w = supersaturation(qv, temperature, pressure_mb, over="water")
    frac = np.clip(s_w / S_FULL_ACTIVATION, 0.0, 1.0) ** TWOMEY_K
    n_act = np.where(s_w > 0.0, ccn * frac, 0.0)
    # Don't activate more than the vapor excess can supply as bin-0 mass.
    x0 = grids[Species.LIQUID].masses[0]
    max_by_vapor = np.maximum(qv * rho_air, 0.0) * 1.0e-3 / x0
    n_act = np.minimum(n_act, max_by_vapor)
    dists[Species.LIQUID][:, 0] += n_act
    ccn -= n_act
    dq = n_act * x0 / rho_air
    qv -= dq
    temperature += latent_heating(dq, "condensation")

    # --- ice nucleation ---------------------------------------------------------
    s_i = supersaturation(qv, temperature, pressure_mb, over="ice")
    supercool = np.maximum(T_0 - temperature, 0.0)
    n_ice = np.where(
        (temperature < T_0 - 5.0) & (s_i > 0.0),
        np.minimum(FLETCHER_A * np.exp(FLETCHER_B * supercool), ICE_NUCLEATION_CAP),
        0.0,
    )
    # Split over the three habits by temperature regime (columns cold,
    # plates mid, dendrites near -15 C), mirroring habit diagrams.
    w_den = np.exp(-0.5 * ((temperature - (T_0 - 15.0)) / 4.0) ** 2)
    w_col = np.clip((T_0 - 20.0 - temperature) / 10.0, 0.0, 1.0)
    w_pla = np.maximum(1.0 - w_den - w_col, 0.0)
    total = np.maximum(w_den + w_col + w_pla, 1e-12)
    xi0 = grids[Species.ICE_PLA].masses[0]
    for sp, wgt in (
        (Species.ICE_DEN, w_den),
        (Species.ICE_COL, w_col),
        (Species.ICE_PLA, w_pla),
    ):
        n_sp = n_ice * wgt / total
        dists[sp][:, 0] += n_sp
        dqi = n_sp * xi0 / rho_air
        qv -= dqi
        temperature += latent_heating(dqi, "deposition")

    return stats
