"""Moist-thermodynamic helpers shared by the microphysics processes.

Saturation formulas follow the Magnus/Tetens fits WRF's physics use;
units: temperature [K], pressure [mb], mixing ratios [g/g] (i.e. kg/kg
numerically), densities [g/cm^3].
"""

from __future__ import annotations

import numpy as np

from repro.constants import C_P, EPS, L_F, L_S, L_V, T_0


def saturation_vapor_pressure_water(temperature: np.ndarray) -> np.ndarray:
    """Saturation vapor pressure over liquid water [mb] (Tetens)."""
    t = np.asarray(temperature, dtype=np.float64)
    tc = t - T_0
    return 6.112 * np.exp(17.67 * tc / (tc + 243.5))


def saturation_vapor_pressure_ice(temperature: np.ndarray) -> np.ndarray:
    """Saturation vapor pressure over ice [mb] (Magnus, ice branch)."""
    t = np.asarray(temperature, dtype=np.float64)
    tc = t - T_0
    return 6.112 * np.exp(21.8745584 * tc / (tc + 265.5))


def saturation_mixing_ratio(
    temperature: np.ndarray, pressure_mb: np.ndarray, over: str = "water"
) -> np.ndarray:
    """Saturation mixing ratio q_s [g/g]."""
    if over == "water":
        es = saturation_vapor_pressure_water(temperature)
    elif over == "ice":
        es = saturation_vapor_pressure_ice(temperature)
    else:
        raise ValueError("over must be 'water' or 'ice'")
    p = np.asarray(pressure_mb, dtype=np.float64)
    es = np.minimum(es, 0.5 * p)  # keep the denominator sane at extremes
    return EPS * es / (p - es)


def supersaturation(
    qv: np.ndarray, temperature: np.ndarray, pressure_mb: np.ndarray, over: str = "water"
) -> np.ndarray:
    """Fractional supersaturation S = q_v / q_s - 1."""
    qs = saturation_mixing_ratio(temperature, pressure_mb, over)
    return qv / qs - 1.0


def condensational_growth_coefficient(
    temperature: np.ndarray, pressure_mb: np.ndarray
) -> np.ndarray:
    """Diffusional growth coefficient G [cm^2/s] in ``r dr/dt = G S``.

    Combines the vapor-diffusion and heat-conduction resistances; the
    magnitude (~1e-6 cm^2/s at 1 % supersaturation and 0 C) matches the
    classic droplet-growth value.
    """
    t = np.asarray(temperature, dtype=np.float64)
    p = np.asarray(pressure_mb, dtype=np.float64)
    # Vapor diffusivity grows with T and falls with p.
    diff = 1.0e-6 * (t / T_0) ** 1.94 * (1000.0 / p)
    # Heat-conduction resistance strengthens at cold temperatures.
    heat = 1.0 + 6.0e-3 * np.maximum(T_0 - t, 0.0)
    return diff / heat


def latent_heating(
    dq_cond: np.ndarray, process: str = "condensation"
) -> np.ndarray:
    """Temperature increment [K] from a condensate increment [g/g]."""
    if process == "condensation":
        latent = L_V
    elif process == "deposition":
        latent = L_S
    elif process == "freezing":
        latent = L_F
    else:
        raise ValueError(f"unknown process {process!r}")
    return (latent / C_P) * np.asarray(dq_cond)
