"""Mass-doubling bin grids for hydrometeor size distributions.

FSBM discretizes each particle type onto ``nkr = 33`` bins whose masses
double between neighbours: ``x_{k+1} = 2 x_k`` (Khain et al. 2004).
This module also provides the Kovetz–Olund two-bin split used by both
the collision and condensation remaps: a particle of mass ``m`` landing
between grid masses ``x_k`` and ``x_{k+1}`` is assigned to the two bins
with weights that conserve number *and* mass exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

import numpy as np

from repro.constants import NKR, RHO_ICE_CGS, RHO_WATER_CGS, XL_MIN_G
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class BinGrid:
    """A mass-doubling bin grid for one particle density.

    Masses are in grams, radii in centimetres (the CGS convention of
    the FSBM Fortran).
    """

    nkr: int = NKR
    x_min: float = XL_MIN_G
    density: float = RHO_WATER_CGS

    def __post_init__(self) -> None:
        if self.nkr < 2:
            raise ConfigurationError("bin grid needs at least two bins")
        if self.x_min <= 0 or self.density <= 0:
            raise ConfigurationError("x_min and density must be positive")

    @cached_property
    def masses(self) -> np.ndarray:
        """Bin centre masses ``x_k = x_min * 2**k`` [g], shape (nkr,)."""
        return self.x_min * np.power(2.0, np.arange(self.nkr))

    @cached_property
    def radii(self) -> np.ndarray:
        """Equivalent-sphere radii [cm], shape (nkr,)."""
        return (3.0 * self.masses / (4.0 * np.pi * self.density)) ** (1.0 / 3.0)

    @cached_property
    def log_masses(self) -> np.ndarray:
        """Natural log of bin masses (uniform spacing ln 2)."""
        return np.log(self.masses)

    def bin_of_mass(self, m: float | np.ndarray) -> np.ndarray:
        """Index of the largest bin with ``x_k <= m`` (clipped to range)."""
        idx = np.floor(np.log2(np.asarray(m) / self.x_min)).astype(int)
        return np.clip(idx, 0, self.nkr - 1)

    def split_mass(self, m: float) -> tuple[int, int, float, float]:
        """Kovetz–Olund split of unit number at mass ``m``.

        Returns ``(k_lo, k_hi, w_lo, w_hi)`` such that placing ``w_lo``
        particles in bin ``k_lo`` and ``w_hi`` in ``k_hi`` conserves
        both number (``w_lo + w_hi = 1``) and mass
        (``w_lo x_lo + w_hi x_hi = m``). Masses beyond the top bin are
        assigned there with a reduced number weight so mass (the
        physically conserved quantity here) is still exact.
        """
        x = self.masses
        if m <= x[0]:
            # Below the grid: conserve mass, shed number.
            return 0, 0, m / x[0], 0.0
        if m >= x[-1]:
            return self.nkr - 1, self.nkr - 1, m / x[-1], 0.0
        k = int(np.floor(np.log2(m / self.x_min)))
        k = max(0, min(k, self.nkr - 2))
        # Clamp against log2/floor rounding at bin boundaries.
        w_hi = float(np.clip((m - x[k]) / (x[k + 1] - x[k]), 0.0, 1.0))
        return k, k + 1, 1.0 - w_hi, w_hi

    def pair_coalescence_table(
        self, other: "BinGrid", product: "BinGrid"
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Precomputed KO split for every ``(i, j)`` collision pair.

        For source bins ``i`` (this grid) and ``j`` (``other``) the
        coalesced mass ``m_ij = x_i + y_j`` is split on the ``product``
        grid. Returns ``(k_lo, k_hi, w_lo, w_hi)`` arrays of shape
        ``(nkr, nkr)``.
        """
        mi = self.masses[:, None]
        mj = other.masses[None, :]
        m = np.broadcast_to(mi + mj, (self.nkr, other.nkr))
        k_lo = np.empty(m.shape, dtype=np.int64)
        k_hi = np.empty(m.shape, dtype=np.int64)
        w_lo = np.empty(m.shape)
        w_hi = np.empty(m.shape)
        for i in range(m.shape[0]):
            for j in range(m.shape[1]):
                k_lo[i, j], k_hi[i, j], w_lo[i, j], w_hi[i, j] = product.split_mass(
                    float(m[i, j])
                )
        return k_lo, k_hi, w_lo, w_hi

    def mass_content(self, number: np.ndarray) -> np.ndarray:
        """Total mass per point for a ``(..., nkr)`` number array [g/cm^3]."""
        return np.asarray(number) @ self.masses


#: Grid for liquid drops (2 um .. ~4 mm radius over 33 doublings).
LIQUID_BINS = BinGrid(density=RHO_WATER_CGS)

#: Grid for ice-phase particles (lower bulk density).
ICE_BINS = BinGrid(density=RHO_ICE_CGS)
