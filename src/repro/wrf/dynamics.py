"""RK3 scalar transport: ``rk_scalar_tend`` and ``rk_update_scalar``.

These are the second and third hotspots of the paper's Table I. The
tendencies are donor-cell (first-order upwind) flux divergences on the
collocated grid, applied to 3D scalars and, crucially, to every bin of
every hydrometeor (233 advected scalars for the 7-species, 33-bin
configuration) — which is what gives the routine its share of runtime.

A buoyancy update provides the vertical velocity: ``dw/dt = g (T' / T0
- q_cond)`` with Rayleigh drag, replacing WRF's acoustic/pressure solver
(documented substitution; the transported fields and their cost
structure are the point here).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.constants import GRAVITY

#: FLOPs per (cell, scalar, RK stage) of the donor-cell tendency.
FLOPS_PER_CELL_TEND = 11.0

#: FLOPs per (cell, scalar, RK stage) of the update.
FLOPS_PER_CELL_UPDATE = 2.0

#: RK3 stage fractions used by WRF's ARW solver.
RK3_FRACTIONS = (1.0 / 3.0, 0.5, 1.0)


@dataclass(frozen=True)
class WindSplit:
    """Upwind-decomposed winds, hoisted out of the per-scalar loop.

    ``pos``/``neg`` hold ``max(vel, 0)/spacing`` and ``min(vel, 0)/
    spacing`` per axis, computed once per step and reused by every
    advected scalar (233 of them), which is where the donor-cell
    tendency spends its time otherwise.
    """

    pos: tuple[np.ndarray, np.ndarray, np.ndarray]
    neg: tuple[np.ndarray, np.ndarray, np.ndarray]

    @classmethod
    def build(
        cls, u: np.ndarray, v: np.ndarray, w: np.ndarray, dx: float, dz: float
    ) -> "WindSplit":
        vels = (u, w, v)  # axis order: i, k, j
        spacings = (dx, dz, dx)
        pos = tuple(np.maximum(vel, 0.0) / sp for vel, sp in zip(vels, spacings))
        neg = tuple(np.minimum(vel, 0.0) / sp for vel, sp in zip(vels, spacings))
        return cls(pos=pos, neg=neg)  # type: ignore[arg-type]


def _upwind_tend(s: np.ndarray, axis: int, pos: np.ndarray, neg: np.ndarray) -> np.ndarray:
    """Donor-cell flux divergence along one axis (zero-gradient edges)."""
    fwd = np.roll(s, -1, axis=axis)
    bwd = np.roll(s, 1, axis=axis)
    sl_first = [slice(None)] * s.ndim
    sl_last = [slice(None)] * s.ndim
    sl_first[axis] = slice(0, 1)
    sl_last[axis] = slice(-1, None)
    fwd[tuple(sl_last)] = s[tuple(sl_last)]
    bwd[tuple(sl_first)] = s[tuple(sl_first)]
    if s.ndim == 4:
        pos = pos[..., None]
        neg = neg[..., None]
    return -(pos * (s - bwd) + neg * (fwd - s))


def rk_scalar_tend(
    scalar: np.ndarray,
    u: np.ndarray | WindSplit,
    v: np.ndarray | None = None,
    w: np.ndarray | None = None,
    dx: float | None = None,
    dz: float | None = None,
) -> np.ndarray:
    """Donor-cell advective tendency of one scalar (any trailing dims).

    ``scalar`` is ``(ni, nk, nj)`` or ``(ni, nk, nj, nkr)``. Either a
    prebuilt :class:`WindSplit` or raw wind components may be passed;
    the driver prebuilds one split per step and shares it across all
    233 scalars. Zero-gradient boundaries (patch halos carry real
    neighbor data, so only true domain edges see the clamp).
    """
    if isinstance(u, WindSplit):
        split = u
    else:
        assert v is not None and w is not None and dx and dz
        split = WindSplit.build(u, v, w, dx, dz)
    tend = _upwind_tend(scalar, 0, split.pos[0], split.neg[0])  # i
    tend += _upwind_tend(scalar, 1, split.pos[1], split.neg[1])  # k
    tend += _upwind_tend(scalar, 2, split.pos[2], split.neg[2])  # j
    return tend


def rk3_advect(
    scalar: np.ndarray,
    split: WindSplit,
    dt: float,
    clip_negative: bool = False,
    workspace=None,
) -> None:
    """WRF-ARW's three-stage Runge-Kutta advection update, in place.

    ``phi* = phi0 + dt/3 L(phi0)``; ``phi** = phi0 + dt/2 L(phi*)``;
    ``phi = phi0 + dt L(phi**)`` — the exact stage fractions of
    ``RK3_FRACTIONS``. The default model driver integrates with a
    single Euler stage for speed (the *cost* charged is always the full
    RK3); ``Namelist(use_rk3_numerics=True)`` switches the numerics to
    this function.

    With a :class:`repro.wrf.transport.TransportWorkspace` passed as
    ``workspace``, the ``phi0`` snapshot and the per-stage state reuse
    the workspace's preallocated ``phi0``/``stage`` buffers instead of
    allocating fresh arrays every call; the arithmetic (and hence the
    result, bit for bit) is identical.
    """
    if workspace is None:
        phi0 = scalar.copy()
        stage = scalar
        for frac in RK3_FRACTIONS:
            tend = rk_scalar_tend(stage, split)
            stage = phi0 + (dt * frac) * tend
        scalar[...] = stage
    else:
        phi0 = workspace.buffer("phi0", scalar.shape)
        phi0[...] = scalar
        stage_buf = workspace.buffer("stage", scalar.shape)
        stage = scalar
        for frac in RK3_FRACTIONS:
            tend = rk_scalar_tend(stage, split)
            np.multiply(tend, dt * frac, out=stage_buf)
            stage_buf += phi0
            stage = stage_buf
        scalar[...] = stage
    if clip_negative:
        np.maximum(scalar, 0.0, out=scalar)


def rk_update_scalar(
    scalar: np.ndarray,
    scalar0: np.ndarray,
    tend: np.ndarray,
    dt_stage: float,
    clip_negative: bool = False,
) -> None:
    """RK stage update ``scalar = scalar0 + dt_stage * tend`` (in place)."""
    np.multiply(tend, dt_stage, out=scalar)
    scalar += scalar0
    if clip_negative:
        np.maximum(scalar, 0.0, out=scalar)


@dataclass
class DynWorkStats:
    """Work counts for one RK3 transport step on one patch."""

    cell_scalar_stages: float = 0.0

    @property
    def tend_flops(self) -> float:
        return self.cell_scalar_stages * FLOPS_PER_CELL_TEND

    @property
    def update_flops(self) -> float:
        return self.cell_scalar_stages * FLOPS_PER_CELL_UPDATE

    @property
    def tend_bytes(self) -> float:
        return self.cell_scalar_stages * 4.0 * 8.0

    @property
    def update_bytes(self) -> float:
        return self.cell_scalar_stages * 4.0 * 3.0


def buoyancy_w_update(
    w: np.ndarray,
    temperature: np.ndarray,
    t_base_col: np.ndarray,
    condensate_mass: np.ndarray,
    rho: np.ndarray,
    dt: float,
    drag: float = 5.0e-3,
) -> None:
    """Advance vertical velocity from buoyancy and loading (in place).

    ``dw/dt = g (T'/T_base - q_cond) - drag * w``; the top and bottom
    levels are pinned to zero (rigid lid / ground).
    """
    t_base = t_base_col[None, :, None]
    q_cond = condensate_mass / rho  # mixing ratio of condensate
    accel = GRAVITY * ((temperature - t_base) / t_base - q_cond)
    w += dt * (accel - drag * w)
    w[:, 0, :] = 0.0
    w[:, -1, :] = 0.0
    np.clip(w, -25.0, 25.0, out=w)
