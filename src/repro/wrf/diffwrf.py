"""``diffwrf``: digit-agreement comparison of two output files.

WRF ships a ``diffwrf`` utility that reports, per state variable, how
many significant digits two runs agree to. Sec. VII-B uses it to verify
the GPU port: 3-6 digits for state variables (velocity, temperature,
pressure), 1-5 for microphysics variables. This module reproduces the
metric: per-field RMS digit agreement

    digits = -log10( rms(a - b) / rms(reference) )

plus max absolute difference and the count of differing points.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True, slots=True)
class DiffField:
    """Comparison result for one field."""

    name: str
    ndiff: int
    max_abs_diff: float
    rms_ref: float
    rms_diff: float

    @property
    def digits(self) -> float:
        """Matching significant digits (capped at 16 for identical fields)."""
        if self.rms_diff == 0.0:
            return 16.0
        if self.rms_ref == 0.0:
            return 0.0
        return float(
            np.clip(-np.log10(self.rms_diff / self.rms_ref), 0.0, 16.0)
        )

    @property
    def bitwise_identical(self) -> bool:
        return self.ndiff == 0


def diff_field(name: str, a: np.ndarray, b: np.ndarray) -> DiffField:
    """Compare two arrays of one variable."""
    if a.shape != b.shape:
        raise ValueError(f"{name}: shapes differ {a.shape} vs {b.shape}")
    d = np.asarray(a, dtype=np.float64) - np.asarray(b, dtype=np.float64)
    return DiffField(
        name=name,
        ndiff=int(np.count_nonzero(d)),
        max_abs_diff=float(np.abs(d).max(initial=0.0)),
        rms_ref=float(np.sqrt(np.mean(np.square(a, dtype=np.float64)))),
        rms_diff=float(np.sqrt(np.mean(np.square(d)))),
    )


def diffwrf(
    run_a: dict[str, np.ndarray], run_b: dict[str, np.ndarray]
) -> list[DiffField]:
    """Compare every shared field of two output frames."""
    names = sorted(set(run_a) & set(run_b))
    return [diff_field(n, run_a[n], run_b[n]) for n in names]


def format_diff_report(diffs: list[DiffField]) -> str:
    """Render the comparison in diffwrf's tabular style."""
    lines = [
        f"{'Field':<16} {'ndiff':>9} {'max diff':>12} {'rms ref':>12} "
        f"{'rms diff':>12} {'digits':>7}"
    ]
    for d in diffs:
        lines.append(
            f"{d.name:<16} {d.ndiff:>9d} {d.max_abs_diff:>12.4e} "
            f"{d.rms_ref:>12.4e} {d.rms_diff:>12.4e} {d.digits:>7.2f}"
        )
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    """``python -m repro.wrf.diffwrf run_a.npz run_b.npz``.

    Compares two wrfout files as WRF's bundled ``diffwrf`` utility does.
    Exit status 0 when every field is bitwise identical, 1 otherwise
    (matching the original's convention of signalling differences).
    """
    import argparse
    import sys

    from repro.wrf.io import read_wrfout

    parser = argparse.ArgumentParser(
        prog="diffwrf", description="compare two wrfout history files"
    )
    parser.add_argument("file_a")
    parser.add_argument("file_b")
    args = parser.parse_args(argv)
    fields_a, _ = read_wrfout(args.file_a)
    fields_b, _ = read_wrfout(args.file_b)
    diffs = diffwrf(fields_a, fields_b)
    print(format_diff_report(diffs))
    identical = all(d.bitwise_identical for d in diffs)
    print(
        "Files are bitwise identical."
        if identical
        else "Files differ (see digits column)."
    )
    return 0 if identical else 1


if __name__ == "__main__":  # pragma: no cover - exercised via main()
    import sys

    sys.exit(main())
