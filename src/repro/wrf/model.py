"""The WRF model driver: ranks, time loop, transport, physics, history.

One :class:`WrfModel` owns the whole simulated job: the decomposition,
one set of fields + FSBM driver per rank, the per-rank clocks, devices
for offloaded stages, and the BSP step scheduler. Within a step, the
per-rank CPU stages (physics, transport) are independent between halo
exchanges and by default execute batched on a thread pool
(``namelist.rank_batching``); GPU stages run ranks sequentially because
they contend for the shared simulated GPU pool. Either way the
*simulated* times overlap per the scheduler's rules and the per-rank
charges are identical.

Numerics note (documented substitution): transport integrates donor-
cell upwind with a single Euler stage, while the *cost* charged to
``rk_scalar_tend`` / ``rk_update_scalar`` is WRF's full three-stage RK3
over every advected scalar (233 of them with 7 species x 33 bins) plus
the acoustic-substep halo traffic — the loops the paper's Table I
profiles.
"""

from __future__ import annotations

import os
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field

import numpy as np

from repro.core.clock import SimClock, TimeBucket
from repro.core.costmodel import CpuCostModel
from repro.core.engine import OffloadEngine
from repro.obs import tracer
from repro.fsbm.fast_sbm import FastSBM, SbmStepStats
from repro.grid.decomposition import Decomposition, decompose_domain
from repro.grid.halo import HaloExchangePlan, build_halo_plan
from repro.hardware.specs import EPYC_MILAN, PERLMUTTER_CPU_NODE
from repro.mpi.costmodel import CommCostModel
from repro.mpi.gpu_sharing import GpuPool
from repro.mpi.scheduler import RankStepCharge, StepScheduler
from repro.wrf.cases import conus12km_case
from repro.wrf.dynamics import (
    DynWorkStats,
    FLOPS_PER_CELL_TEND,
    FLOPS_PER_CELL_UPDATE,
    RK3_FRACTIONS,
    WindSplit,
    buoyancy_w_update,
    rk3_advect,
    rk_scalar_tend,
)
from repro.wrf.namelist import Namelist
from repro.wrf.state import WrfFields
from repro.wrf.transport import (
    TransportWorkspace,
    fused_euler_advect,
    fused_rk3_advect,
    get_workspace,
    pack_superblock,
    unpack_superblock,
)

#: Acoustic substeps per RK3 stage in WRF's split-explicit solver —
#: only their halo traffic is charged (we have no pressure solver).
ACOUSTIC_SUBSTEPS = 6

#: Fields exchanged per acoustic substep (u, v, w, t, p').
ACOUSTIC_FIELDS = 5

#: History write bandwidth to scratch [B/s] (serial netCDF through the
#: I/O rank, well below raw filesystem speed).
IO_BANDWIDTH = 0.5e9


# --- per-rank stage functions -------------------------------------------------
#
# Each stage below touches exactly one rank's state, so the same code
# runs in three execution modes: serial, batched on the thread pool,
# and inside a persistent worker process (repro.wrf.procpool). Keeping
# them module-level (not methods) is what lets the process workers
# reuse them verbatim — the bit-exactness of the multiprocess path
# against the thread path rests on all modes running these exact
# functions in the same per-rank order.


def cost_models(namelist: Namelist) -> tuple[CommCostModel, CpuCostModel]:
    """The (comm, cpu) cost models one namelist implies.

    Deterministic in the namelist alone, so driver and worker
    processes construct bit-identical models independently.
    """
    if namelist.stage.uses_gpu:
        ranks_per_node = min(namelist.num_ranks, 4 * 4)  # 4 GPUs, <=4 ranks each
        cpu = EPYC_MILAN
    else:
        ranks_per_node = min(namelist.num_ranks, PERLMUTTER_CPU_NODE.cpu.cores)
        cpu = PERLMUTTER_CPU_NODE.cpu
    comm_cost = CommCostModel(ranks_per_node=ranks_per_node)
    active_cores = min(namelist.num_ranks, ranks_per_node)
    cpu_cost = CpuCostModel(
        cpu=cpu,
        active_cores_on_socket=active_cores,
        threads=namelist.numtiles,
    )
    return comm_cost, cpu_cost


def build_rank_fields(
    namelist: Namelist, rank: int, patch, member: int = 0
) -> WrfFields:
    """Construct one rank's initial fields (deterministic per seed).

    ``member`` selects which ensemble member's perturbed scenario to
    build (``namelist.member_deltas``); the default — member 0 of a
    delta-free namelist — is the unperturbed base case, bit-identical
    to what this function always built.
    """
    from repro.wrf.cases import member_case_config
    from repro.wrf.namelist import deltas_for_member

    cfg, seed_offset = member_case_config(deltas_for_member(namelist, member))
    return conus12km_case(
        namelist.domain,
        patch,
        namelist.domain.dz,
        seed=namelist.seed + seed_offset,
        cfg=cfg,
    )


def build_rank_sbm(
    namelist: Namelist,
    clock: SimClock,
    cpu_cost: CpuCostModel,
    engine: OffloadEngine | None = None,
) -> FastSBM:
    """Construct one rank's FSBM driver with the namelist's switches."""
    return FastSBM(
        stage=namelist.stage,
        dt=namelist.dt,
        clock=clock,
        cpu_cost=cpu_cost,
        engine=engine,
        precision=namelist.device_precision,
        offload_condensation=namelist.offload_condensation,
        use_native_physics=namelist.use_native_physics,
        use_batched_coal=namelist.use_batched_coal,
    )


def physics_rank(namelist: Namelist, fields: WrfFields, sbm: FastSBM) -> SbmStepStats:
    """Run the microphysics on one rank's *owned* cells (the tile).

    Halo cells are excluded — WRF's physics run on tiles inside the
    patch; halos are refreshed by the exchange afterwards.
    """
    from repro.grid.indexing import owned_slice

    f = fields
    sl = owned_slice(f.patch)
    with tracer.span("physics", cat="physics") as sp:
        stats = sbm.step(
            state=f.micro.view(sl),
            temperature=f.t[sl],
            pressure_mb=f.pressure_mb[sl],
            qv=f.qv[sl],
            rho_air=f.rho[sl],
            dz_cm=namelist.domain.dz * 100.0,
        )
        if sp is not None:
            sp.set(mp_points=stats.mp_points, coal_points=stats.coal_points)
    return stats


def pack_rank(
    fields: WrfFields,
    workspace: TransportWorkspace,
    out: np.ndarray | None = None,
) -> np.ndarray:
    """Pack one rank's advected fields into its superblock buffer.

    Runs batched after physics; the halo exchange and the fused
    transport then operate on the packed block, which is unpacked back
    into the per-field arrays at the end of transport. With resident
    fields (``bind_block``) packing is handing out the block; ``out``
    targets an explicit buffer (the worker processes pass their
    shared-memory block so non-resident runs still exchange halos
    through shared memory).
    """
    if fields.block is not None:
        # Fields are resident in the persistent superblock; physics
        # already wrote into it, so packing is handing out the block.
        return fields.block
    with tracer.span("pack") as sp:
        block = pack_superblock(
            fields.advected_fields(), fields.layout, workspace, out=out
        )
        if sp is not None:
            sp.set(bytes=block.nbytes)
    return block


def charge_halo_mpi(
    plan: HaloExchangePlan,
    comm_cost: CommCostModel,
    clock: SimClock,
    rank: int,
    nscalars: int,
    itemsize: int,
    num_ranks: int,
) -> None:
    """Charge one rank's MPI time for a full halo refresh.

    Walks the plan in global segment order charging every segment the
    rank participates in (either end pays the p2p time), then the
    acoustic-substep traffic WRF's split-explicit solver would add plus
    per-step sync noise. The per-clock advance sequence is identical
    whether the driver charges all ranks in one pass (thread path) or
    each worker process charges only itself, so the accumulated floats
    are bit-equal across execution modes.
    """
    for seg in plan.segments:
        if seg.src != rank and seg.dst != rank:
            continue
        nbytes = seg.num_points * nscalars * itemsize
        t = comm_cost.p2p_time(seg.src, seg.dst, nbytes)
        clock.advance(TimeBucket.MPI, t)
    # Acoustic-substep halo traffic and per-step sync noise
    # (charged, not simulated).
    noise = comm_cost.step_sync_noise(num_ranks)
    per_exchange = sum(
        comm_cost.p2p_time(s.src, s.dst, s.num_points * 4)
        for s in plan.segments_from(rank)
    )
    n_exchanges = len(RK3_FRACTIONS) * ACOUSTIC_SUBSTEPS * ACOUSTIC_FIELDS
    clock.advance(TimeBucket.MPI, per_exchange * n_exchanges + noise)


def transport_charges(
    namelist: Namelist,
    cpu_cost: CpuCostModel,
    fields: WrfFields,
    clock: SimClock,
) -> DynWorkStats:
    """Charge the CPU-path RK3 scalar-loop cost for one rank's patch."""
    ni, nk, nj = fields.shape
    cells = ni * nk * nj
    nscalars = fields.scalar_count()
    work = DynWorkStats(
        cell_scalar_stages=float(cells * nscalars * len(RK3_FRACTIONS))
    )
    with clock.region("rk_scalar_tend"):
        clock.advance(
            TimeBucket.CPU_COMPUTE,
            cpu_cost.time(
                work.tend_flops,
                work.tend_bytes,
                iterations=int(work.cell_scalar_stages),
            ),
        )
    with clock.region("rk_update_scalar"):
        clock.advance(
            TimeBucket.CPU_COMPUTE,
            cpu_cost.time(work.update_flops, work.update_bytes),
        )
    return work


def transport_numerics(
    namelist: Namelist,
    fields: WrfFields,
    workspace: TransportWorkspace,
    block: np.ndarray,
) -> None:
    """Traced wrapper over :func:`_transport_numerics`.

    The span mirrors the ``rk_scalar_tend``/``rk_update_scalar`` clock
    regions' work under one measured name; ``flops`` counts the single
    Euler donor-cell stage actually executed (tendency + update per
    cell-scalar) and ``bytes`` the superblock's minimum traffic (one
    read + one write), the same accounting the benchmark harness
    records for ``transport_fused``.
    """
    with tracer.span("transport", cat="transport") as sp:
        _transport_numerics(namelist, fields, workspace, block)
        if sp is not None:
            ni, nk, nj = fields.shape
            cell_scalars = float(ni * nk * nj * block.shape[-1])
            stages = len(RK3_FRACTIONS) if namelist.use_rk3_numerics else 1
            sp.set(
                flops=cell_scalars
                * stages
                * (FLOPS_PER_CELL_TEND + FLOPS_PER_CELL_UPDATE),
                bytes=2.0 * stages * cell_scalars * block.itemsize,
                fused=namelist.use_fused_transport,
            )


def _transport_numerics(
    namelist: Namelist,
    fields: WrfFields,
    workspace: TransportWorkspace,
    block: np.ndarray,
) -> None:
    """Advect one rank's scalars and apply the buoyancy update.

    Numerics: donor-cell update of every field, with the wind
    decomposition hoisted out of the scalar loop. The namelist selects
    single-Euler-stage (default, fast) or full RK3, and fused
    superblock advection (default) or the per-field reference loop; all
    four combinations agree to ~1e-14. The exchanged halos live in the
    packed superblock, so both paths start from it: the fused kernels
    advect the block directly and unpack the result, while the
    reference path unpacks first and then walks the per-field dict
    exactly as the seed did.
    """
    f = fields
    ws = workspace
    dt = namelist.dt
    dx = namelist.domain.dx
    dz = namelist.domain.dz
    if namelist.use_fused_transport:
        # The freshly exchanged w halo lives in the block; advect
        # with that wind, exactly as the reference path sees it.
        w_col = block[..., f.layout.slices()["w"].start]
        split = WindSplit.build(f.u, f.v, w_col, dx, dz)
        clip_slices = f.layout.clip_slices(no_clip=("t", "w"))
        if namelist.use_rk3_numerics:
            result = fused_rk3_advect(block, split, dt, ws, clip_slices)
        else:
            result = fused_euler_advect(block, split, dt, ws, clip_slices)
        if f.block is block:
            # Resident fields: one block-to-block copy replaces the
            # per-field unpack (no-op when the numpy fallback
            # already advected the block in place).
            if result is not block:
                block[...] = result
        else:
            unpack_superblock(result, f.advected_fields(), f.layout)
    else:
        if f.block is not block:
            unpack_superblock(block, f.advected_fields(), f.layout)
        split = WindSplit.build(f.u, f.v, f.w, dx, dz)
        for name, arr in f.advected_fields().items():
            clip = name != "t" and name != "w"
            if namelist.use_rk3_numerics:
                rk3_advect(arr, split, dt, clip_negative=clip, workspace=ws)
            else:
                tend = rk_scalar_tend(arr, split)
                arr += dt * tend
                if clip:
                    np.maximum(arr, 0.0, out=arr)

    condensate = f.micro.total_condensate_mass()
    buoyancy_w_update(f.w, f.t, f.t_base_col, condensate, f.rho, dt)


def rank_output_frame(fields: WrfFields) -> dict[str, np.ndarray]:
    """One rank's owned contribution to the domain-wide output frame.

    Contiguous copies, so worker processes can ship frames over the
    command pipe without dragging whole memory-extent arrays along.
    """
    f = fields
    patch = f.patch
    precip_owned = f.micro.precip[
        patch.i.to_slice(patch.im.start), patch.j.to_slice(patch.jm.start)
    ]
    return {
        "T": np.ascontiguousarray(f.owned(f.t)),
        "QVAPOR": np.ascontiguousarray(f.owned(f.qv)),
        "W": np.ascontiguousarray(f.owned(f.w)),
        "QCLOUD_TOTAL": np.ascontiguousarray(
            f.owned(f.micro.total_condensate_mass())
        ),
        "RAINNC": np.ascontiguousarray(precip_owned),
    }


@dataclass
class StepTiming:
    """Timing of one committed model step."""

    step: int
    elapsed: float
    charges: list[RankStepCharge]
    sbm_stats: list[SbmStepStats]


@dataclass
class RunResult:
    """Everything a completed run exposes to experiments and profilers."""

    namelist: Namelist
    decomposition: Decomposition
    steps_run: int
    elapsed: float
    step_timings: list[StepTiming]
    rank_clocks: list[SimClock]
    scheduler: StepScheduler
    kernel_records: list[list]
    history: list[dict[str, np.ndarray]]

    @property
    def per_step_elapsed(self) -> float:
        """Mean simulated seconds per model step."""
        return self.elapsed / max(1, self.steps_run)

    def projected_total(self, run_seconds: float | None = None) -> float:
        """Elapsed time scaled to the full run length (paper: 600 s)."""
        seconds = run_seconds or self.namelist.run_seconds
        steps = max(1, round(seconds / self.namelist.dt))
        return self.per_step_elapsed * steps

    def region_seconds(self, region: str) -> float:
        """Simulated seconds charged to a clock region, summed over ranks."""
        return sum(c.region_total(region) for c in self.rank_clocks)

    def rank_region_seconds(self, region: str, rank: int) -> float:
        """One rank's seconds in a region (the Nsight-Systems view)."""
        return self.rank_clocks[rank].region_total(region)

    def coal_loop_seconds(self) -> float:
        """Per-step seconds of the isolated collision loop (max over ranks)."""
        per_rank = [c.region_total("coal_bott_new") for c in self.rank_clocks]
        return max(per_rank) / max(1, self.steps_run)


class WrfModel:
    """A configured, runnable WRF job."""

    def __init__(self, namelist: Namelist):
        if namelist.members > 1:
            from repro.errors import ConfigurationError

            raise ConfigurationError(
                "members > 1 runs through repro.wrf.ensemble.EnsembleModel"
            )
        self.namelist = namelist
        if namelist.trace:
            # Before the worker fork below, so driver-side spans from
            # construction (JIT builds, cache warms) are captured too.
            tracer.enable()
        self.decomposition = decompose_domain(namelist.domain, namelist.num_ranks)
        self.halo_plan: HaloExchangePlan = build_halo_plan(self.decomposition)
        self.clocks = [SimClock() for _ in range(namelist.num_ranks)]
        self.comm_cost, self.cpu_cost = cost_models(namelist)

        # Multiprocess rank execution: forked before any heavyweight
        # driver-side state exists, so workers stay lean. Falls back to
        # the thread pool for GPU/offload stages (ranks contend for the
        # shared simulated GPU pool) and under REPRO_DISABLE_PROCPOOL.
        self._pool = None
        if (
            namelist.use_process_ranks
            and not namelist.stage.uses_gpu
            and not namelist.offload_advection
        ):
            from repro.wrf import procpool

            if procpool.procpool_disabled() is None:
                self._pool = procpool.ProcRankPool(
                    namelist, self.decomposition
                )

        self.gpu_pool: GpuPool | None = None
        self.engines: list[OffloadEngine | None] = [None] * namelist.num_ranks
        if namelist.stage.uses_gpu:
            self.gpu_pool = GpuPool(num_gpus=namelist.num_gpus)
            devices = self.gpu_pool.bind(namelist.num_ranks)
            dev_dtype = np.dtype(
                np.float32 if namelist.device_precision == "fp32" else np.float64
            )
            self.engines = [
                OffloadEngine(
                    device=dev,
                    env=namelist.env,
                    clock=clk,
                    device_dtype=dev_dtype,
                )
                for dev, clk in zip(devices, self.clocks)
            ]

        self.scheduler = StepScheduler(
            nranks=namelist.num_ranks, gpu_pool=self.gpu_pool
        )

        self.fields: list[WrfFields] = [
            build_rank_fields(namelist, patch.rank, patch)
            for patch in self.decomposition.patches
        ]
        if namelist.use_superblock_fields:
            # Persistent residency: the advected fields become views
            # into one per-rank superblock, so the per-step pack below
            # degenerates to handing out that block. Under process
            # ranks the block is the rank's shared-memory segment, so
            # the driver's views stay live mirrors of worker state.
            for rank, f in enumerate(self.fields):
                f.bind_block(
                    buffer=self._pool.block_view(rank)
                    if self._pool is not None
                    else None
                )
        # Transport workspaces: preallocated once per rank (the host
        # analog of `target enter data map(alloc:)`), keyed by (shape,
        # nscalars, dtype, rank) so batched ranks never share buffers
        # while same-shaped models reuse them across instantiations.
        # Each rank's packed superblock lives in its workspace; the
        # per-step pack stage fills it and records it here.
        self.workspaces: list[TransportWorkspace] = [
            get_workspace(f.shape, f.scalar_count(), f.t.dtype, owner=rank)
            for rank, f in enumerate(self.fields)
        ]
        self._blocks: list[np.ndarray | None] = [None] * namelist.num_ranks
        self.sbm: list[FastSBM] = [
            build_rank_sbm(
                namelist, self.clocks[r], self.cpu_cost, self.engines[r]
            )
            for r in range(namelist.num_ranks)
        ]
        # Batched rank execution: per-rank CPU stages share nothing
        # mutable (fields, FSBM driver, and clock are all per-rank, and
        # the precompute caches are thread-safe), so they can run
        # concurrently between the halo-exchange barriers. GPU stages
        # must stay serial — ranks contend for the shared GpuPool.
        self._executor: ThreadPoolExecutor | None = None
        if (
            self._pool is None
            and namelist.rank_batching
            and namelist.num_ranks > 1
            and not namelist.stage.uses_gpu
            and not namelist.offload_advection
        ):
            self._executor = ThreadPoolExecutor(
                max_workers=min(namelist.num_ranks, os.cpu_count() or 1),
                thread_name_prefix="rank",
            )

        self.steps_done = 0
        self._sim_time = 0.0
        self._last_history = 0.0

    # --- pieces of one step ------------------------------------------------------

    def _pack(self, rank: int) -> None:
        """Pack one rank's advected fields into its superblock buffer."""
        with tracer.rank_scope(rank):
            self._blocks[rank] = pack_rank(
                self.fields[rank], self.workspaces[rank]
            )

    def _exchange_halos(self) -> None:
        """Refresh halos of every advected field; charge MPI per rank.

        Performs the real copies through the halo plan and charges each
        rank the p2p time of the segments it sends plus the acoustic-
        substep traffic WRF's split-explicit solver would add.

        Every advected scalar sits in the rank's packed superblock, so
        each segment is one strided ``(di, dk, dj, nscalar)`` copy
        instead of a walk over per-field dicts rebuilt on every call;
        the byte count (points x scalars x itemsize) is identical to
        the old per-field sum, so the MPI charges are unchanged bit
        for bit.
        """
        patches = self.decomposition.patches
        blocks = self._blocks
        nscalars = blocks[0].shape[-1]
        itemsize = blocks[0].itemsize
        # Segments are grouped by destination rank: halo writes are
        # disjoint (owned regions partition the domain, so each halo
        # point has exactly one source) and reads touch only owned
        # regions, making per-rank grouping bit-identical to plan
        # order — while attributing each rank's halo fill to its own
        # trace timeline, exactly like the worker processes' pull loops.
        for rank in range(self.namelist.num_ranks):
            incoming = self.halo_plan.segments_to(rank)
            with tracer.rank_scope(rank):
                with tracer.span("halo_exchange", cat="mpi") as sp:
                    for seg in incoming:
                        src_sl = seg.src_slices(patches[seg.src])
                        dst_sl = seg.dst_slices(patches[rank])
                        blocks[rank][dst_sl] = blocks[seg.src][src_sl]
                    if sp is not None:
                        sp.set(
                            bytes=sum(
                                s.num_points * nscalars * itemsize
                                for s in incoming
                            ),
                            segments=len(incoming),
                        )
        for rank in range(self.namelist.num_ranks):
            charge_halo_mpi(
                self.halo_plan,
                self.comm_cost,
                self.clocks[rank],
                rank,
                nscalars,
                itemsize,
                self.namelist.num_ranks,
            )

    def _transport(self, rank: int) -> None:
        """Advect all scalars on one rank's patch; charge RK3 cost."""
        f = self.fields[rank]
        with tracer.rank_scope(rank):
            if (
                self.namelist.offload_advection
                and self.engines[rank] is not None
            ):
                ni, nk, nj = f.shape
                nscalars = f.scalar_count()
                work = DynWorkStats(
                    cell_scalar_stages=float(
                        ni * nk * nj * nscalars * len(RK3_FRACTIONS)
                    )
                )
                self._transport_offloaded(rank, work, nscalars)
            else:
                transport_charges(
                    self.namelist, self.cpu_cost, f, self.clocks[rank]
                )
            transport_numerics(
                self.namelist, f, self.workspaces[rank], self._blocks[rank]
            )

    def _transport_offloaded(
        self, rank: int, work: DynWorkStats, nscalars: int
    ) -> None:
        """Offload the RK3 scalar loops (the Sec. VIII 'next target').

        Advection is regular and coalesced: one thread per cell sweeping
        all scalars — high occupancy, bandwidth-bound, no automatic
        arrays. The bin fields already live on the device (mapped once
        by ``target enter data``), so only winds move per step.
        """
        from repro.core.directives import (
            Map,
            MapType,
            TargetTeamsDistributeParallelDo,
        )
        from repro.core.kernel import Kernel, KernelResources
        from repro.hardware.memory import AccessPattern, TrafficComponent

        engine = self.engines[rank]
        assert engine is not None
        f = self.fields[rank]
        ni, nk, nj = f.shape
        clock = self.clocks[rank]
        resources = KernelResources(
            registers_per_thread=48,
            automatic_array_bytes=0,
            working_set_per_thread=64.0,
            flops=work.tend_flops + work.update_flops,
            traffic=(
                TrafficComponent(
                    name="scalars",
                    pattern=AccessPattern.GLOBAL_COALESCED,
                    read_bytes=work.tend_bytes,
                    write_bytes=work.update_bytes,
                ),
            ),
            active_iterations=ni * nk * nj,
            compute_efficiency=0.25,  # regular stencil, decent ILP
        )
        kernel = Kernel(
            name="rk_scalar_tend_loop",
            loop_extents=(nj, nk, ni),
            resources=resources,
            body=None,  # numerics run below on the host path as usual
        )
        directive = TargetTeamsDistributeParallelDo(
            collapse=3, maps=(Map(MapType.TO, ("u", "v", "w")),)
        )
        with clock.region("rk_scalar_tend"):
            engine.launch(
                kernel,
                directive,
                to_arrays={"u": f.u, "v": f.v, "w": f.w},
            )

    def _physics(self, rank: int) -> SbmStepStats:
        """Run the microphysics on one rank's *owned* cells (the tile).

        Delegates to the shared :func:`physics_rank` stage — the same
        function the worker processes run — inside this rank's tracer
        scope, so all three execution modes record identical spans.
        """
        with tracer.rank_scope(rank):
            return physics_rank(
                self.namelist, self.fields[rank], self.sbm[rank]
            )

    def _charge_io(self, charges: list[list[float]]) -> None:
        """Apply per-rank ordered I/O charges on the authoritative clocks.

        ``charges[rank]`` is the ordered list of seconds to advance that
        rank's ``IO`` bucket by. Under process ranks the workers own the
        clocks, so the charges ship over the command pipe, each worker
        applies its list in order, and the driver mirrors re-adopt the
        totals — the per-clock advance sequence (and therefore the float
        accumulation) is identical to applying them locally.
        """
        if self._pool is not None:
            states = self._pool.charge_io(charges)
            for clock, state in zip(self.clocks, states):
                clock.restore(*state)
            return
        for clock, rank_charges in zip(self.clocks, charges):
            for seconds in rank_charges:
                clock.advance(TimeBucket.IO, seconds)

    def _maybe_history(self, force: bool = False) -> dict[str, np.ndarray] | None:
        """Write history if due; charges I/O time and returns the frame."""
        interval = self.namelist.history_interval
        due = force or (
            interval > 0.0 and self._sim_time - self._last_history >= interval
        )
        if not due:
            return None
        self._last_history = self._sim_time
        with tracer.span("history_io", cat="io") as sp:
            frame = self.gather_output()
            if self.namelist.history_path is not None:
                from repro.wrf.io import write_wrfout

                write_wrfout(
                    f"{self.namelist.history_path}/wrfout_d01_{self.steps_done:06d}",
                    frame,
                    attrs={
                        "title": "repro CONUS-12km",
                        "sim_seconds": self._sim_time,
                        "stage": self.namelist.stage.value,
                        "dx": self.namelist.domain.dx,
                    },
                )
            nbytes = sum(a.nbytes for a in frame.values())
            if sp is not None:
                sp.set(
                    bytes=nbytes,
                    on_disk=self.namelist.history_path is not None,
                )
        # Patches funnel to rank 0, which writes.
        local = int(nbytes / self.namelist.num_ranks)
        charges = [
            [self.comm_cost.p2p_time(rank, 0, local)]
            for rank in range(self.namelist.num_ranks)
        ]
        charges[0].append(nbytes / IO_BANDWIDTH)
        self._charge_io(charges)
        return frame

    def gather_output(self) -> dict[str, np.ndarray]:
        """Assemble domain-wide output fields from the patches."""
        dom = self.namelist.domain
        out = {
            "T": np.zeros((dom.nx, dom.nz, dom.ny)),
            "QVAPOR": np.zeros((dom.nx, dom.nz, dom.ny)),
            "W": np.zeros((dom.nx, dom.nz, dom.ny)),
            "QCLOUD_TOTAL": np.zeros((dom.nx, dom.nz, dom.ny)),
            "RAINNC": np.zeros((dom.nx, dom.ny)),
        }
        if self._pool is not None:
            # Workers own the authoritative state (precip accumulates in
            # their address space); they ship owned-region frames back.
            frames = self._pool.gather()
        else:
            frames = [rank_output_frame(f) for f in self.fields]
        for patch, frame in zip(self.decomposition.patches, frames):
            sl = (
                patch.i.to_slice(1),
                patch.k.to_slice(1),
                patch.j.to_slice(1),
            )
            for name in ("T", "QVAPOR", "W", "QCLOUD_TOTAL"):
                out[name][sl] = frame[name]
            out["RAINNC"][patch.i.to_slice(1), patch.j.to_slice(1)] = frame[
                "RAINNC"
            ]
        return out

    # --- the loop -------------------------------------------------------------

    def _run_ranks(self, stage_fn) -> list:
        """Apply a per-rank stage to every rank, batched when enabled.

        Results come back in rank order either way, and each worker
        touches only its own rank's state, so serial and batched
        execution are interchangeable.
        """
        ranks = range(self.namelist.num_ranks)
        if self._executor is None:
            return [stage_fn(rank) for rank in ranks]
        return list(self._executor.map(stage_fn, ranks))

    def step(self) -> StepTiming:
        """Advance the whole job by one model step."""
        before = [c.snapshot() for c in self.clocks]
        with tracer.span("solve_em", attrs=None) as sp:
            if sp is not None:
                sp.set(step=self.steps_done + 1)
            if self._pool is not None:
                sbm_stats = self._step_procs()
            else:
                with_regions = [c.region("solve_em") for c in self.clocks]
                for ctx in with_regions:
                    ctx.__enter__()
                try:
                    sbm_stats = self._run_ranks(self._physics)
                    self._run_ranks(self._pack)
                    self._exchange_halos()
                    self._run_ranks(self._transport)
                finally:
                    for ctx in reversed(with_regions):
                        ctx.__exit__(None, None, None)
        self._sim_time += self.namelist.dt
        self.steps_done += 1
        self._maybe_history()

        after = [c.snapshot() for c in self.clocks]
        charges = [
            RankStepCharge.from_clock_delta(b, a) for b, a in zip(before, after)
        ]
        elapsed = self.scheduler.commit_step(charges)
        return StepTiming(
            step=self.steps_done, elapsed=elapsed, charges=charges, sbm_stats=sbm_stats
        )

    def _step_procs(self) -> list[SbmStepStats]:
        """One step across the worker processes (the multiprocess path).

        Each worker runs the identical per-rank stage sequence
        (physics, pack, pull-model halo exchange through the shared
        superblocks, transport) under its authoritative clock, then
        ships back its step stats and clock totals; the driver-side
        mirror clocks adopt the totals verbatim, so every downstream
        consumer (scheduler charges, profilers, history I/O) sees
        bit-identical simulated time.
        """
        assert self._pool is not None
        results = self._pool.step()
        stats: list[SbmStepStats] = []
        for clock, (rank_stats, buckets, regions) in zip(self.clocks, results):
            clock.restore(buckets, regions)
            stats.append(rank_stats)
        return stats

    def run(
        self, num_steps: int | None = None, final_history: bool = False
    ) -> RunResult:
        """Run ``num_steps`` (default: the namelist's full count)."""
        steps = num_steps if num_steps is not None else self.namelist.num_steps
        timings: list[StepTiming] = []
        history: list[dict[str, np.ndarray]] = []
        for _ in range(steps):
            timings.append(self.step())
        if final_history:
            frame = self._maybe_history(force=True)
            if frame is not None:
                history.append(frame)
        return RunResult(
            namelist=self.namelist,
            decomposition=self.decomposition,
            steps_run=steps,
            elapsed=self.scheduler.elapsed,
            step_timings=timings,
            rank_clocks=self.clocks,
            scheduler=self.scheduler,
            kernel_records=[
                e.records if e is not None else [] for e in self.engines
            ],
            history=history,
        )

    def close(self) -> None:
        """Release device contexts, the rank executor, and the worker pool."""
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None
        if self._pool is not None:
            self._pool.close()
            self._pool = None
        for e in self.engines:
            if e is not None:
                e.close()
