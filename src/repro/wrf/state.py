"""Prognostic fields on one rank's patch (Registry-style).

Arrays are allocated at *memory* extents ``(ims:ime, kms:kme, jms:jme)``
— the owned patch plus halo — in i-k-j order, as WRF stores microphysics
fields. Scalar advection reads the halo; microphysics operates on the
owned interior through views.

Each named field keeps its own contiguous array (physics kernels sweep
them flat); the fused transport engine packs them into a per-rank
``(ni, nk, nj, nscalar)`` *superblock* workspace buffer once per step
(see :mod:`repro.wrf.transport`). :attr:`WrfFields.layout` records the
trailing-axis packing, and :meth:`advected_fields` hands out a dict
built once at construction — the entries are the live arrays, so the
halo exchange and the pack/unpack never rebuild it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.constants import GRAVITY, NKR, R_D, T_0
from repro.errors import ConfigurationError
from repro.fsbm.species import Species
from repro.fsbm.state import MicroState
from repro.grid.domain import Patch
from repro.grid.indexing import owned_slice
from repro.wrf.transport import ScalarLayout


def superblock_scalar_count(nkr: int = NKR) -> int:
    """Scalars in one transport superblock (t, qv, w + all species bins).

    Matches ``WrfFields.layout.nscalars`` without constructing fields —
    the multiprocess rank engine sizes its shared-memory segments from
    this before any rank state exists.
    """
    return 3 + len(Species) * nkr


def base_state_column(nz: int, dz: float) -> dict[str, np.ndarray]:
    """Hydrostatic base-state profiles on ``nz`` levels of thickness ``dz``.

    Returns ``z`` [m], ``pressure_mb``, ``temperature`` [K], ``rho``
    [g/cm^3] and a 70 %-RH-shaped ``qv`` [g/g] reference profile —
    a standard continental summer sounding shape (conditionally
    unstable below the tropopause), which is what lets warm bubbles in
    the CONUS case grow into storms.
    """
    z = (np.arange(nz) + 0.5) * dz
    t_surface = 302.0
    lapse = 6.5e-3  # K/m in the troposphere
    z_trop = 11_000.0
    t_trop = t_surface - lapse * z_trop
    temperature = np.where(z < z_trop, t_surface - lapse * z, t_trop)
    # Hydrostatic pressure by midpoint integration.
    pressure = np.empty(nz)
    p = 1000.0e2  # Pa at the surface
    for k in range(nz):
        t_mid = temperature[k]
        p = p * np.exp(-GRAVITY * dz / (R_D * t_mid))
        pressure[k] = p
    pressure_mb = pressure / 100.0
    rho_si = pressure / (R_D * temperature)  # kg/m^3
    rho_cgs = rho_si * 1.0e-3  # g/cm^3
    # Relative humidity tapering from 0.75 at the surface to dry aloft.
    from repro.fsbm.thermo import saturation_mixing_ratio

    rh = 0.75 * np.exp(-z / 4500.0) + 0.05
    qv = rh * saturation_mixing_ratio(temperature, pressure_mb)
    return {
        "z": z,
        "pressure_mb": pressure_mb,
        "temperature": temperature,
        "rho": rho_cgs,
        "qv": qv,
    }


@dataclass
class WrfFields:
    """One rank's prognostic and diagnostic fields."""

    patch: Patch
    dz: float
    #: Temperature [K], memory extents (ni_mem, nk, nj_mem).
    t: np.ndarray = field(default=None)  # type: ignore[assignment]
    #: Water-vapor mixing ratio [g/g].
    qv: np.ndarray = field(default=None)  # type: ignore[assignment]
    #: Winds [m/s] (collocated A-grid).
    u: np.ndarray = field(default=None)  # type: ignore[assignment]
    v: np.ndarray = field(default=None)  # type: ignore[assignment]
    w: np.ndarray = field(default=None)  # type: ignore[assignment]
    #: Static base state (k-profiles broadcast to 3D on demand).
    p_mb_col: np.ndarray = field(default=None)  # type: ignore[assignment]
    rho_col: np.ndarray = field(default=None)  # type: ignore[assignment]
    t_base_col: np.ndarray = field(default=None)  # type: ignore[assignment]
    #: Binned microphysics state at memory extents.
    micro: MicroState = field(default=None)  # type: ignore[assignment]
    #: Trailing-axis packing of the transport superblock.
    layout: ScalarLayout = field(init=False, repr=False, default=None)  # type: ignore[assignment]
    #: Persistent superblock the advected fields live in after
    #: :meth:`bind_block` (``None`` = per-field storage).
    block: np.ndarray = field(init=False, repr=False, default=None)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        shape = self.patch.shape
        base = base_state_column(shape[1], self.dz)
        self.p_mb_col = base["pressure_mb"]
        self.rho_col = base["rho"]
        self.t_base_col = base["temperature"]
        if self.t is None:
            self.t = np.broadcast_to(
                base["temperature"][None, :, None], shape
            ).copy()
        if self.qv is None:
            self.qv = np.broadcast_to(base["qv"][None, :, None], shape).copy()
        for name in ("u", "v", "w"):
            if getattr(self, name) is None:
                setattr(self, name, np.zeros(shape))
        if self.micro is None:
            self.micro = MicroState(shape=shape)

        self.layout = ScalarLayout(
            entries=(
                ("t", 1),
                ("qv", 1),
                ("w", 1),
                *(
                    (f"bin_{sp.value}", d.shape[-1])
                    for sp, d in self.micro.dists.items()
                ),
            )
        )
        # Built once; the entries are the live arrays (physics mutates
        # them in place, never rebinds), so every later consumer — halo
        # exchange, superblock pack/unpack, per-field transport — walks
        # this same dict instead of rebuilding it per call.
        self._advected: dict[str, np.ndarray] = {
            "t": self.t,
            "qv": self.qv,
            "w": self.w,
        }
        for sp, dist in self.micro.dists.items():
            self._advected[f"bin_{sp.value}"] = dist

    def bind_block(self, buffer: np.ndarray | None = None) -> np.ndarray:
        """Move the advected fields into one persistent superblock.

        Allocates a dedicated ``(ni, nk, nj, nscalar)`` block (NOT a
        shared workspace buffer — two live models of the same shape must
        never alias storage), copies the current field values in, and
        rebinds ``t``/``qv``/``w``/all bin distributions as views into
        it. From then on the transport pack step is a no-op: the fields
        *are* the superblock columns, so physics writes land directly in
        transport's input (the resident-data analog of keeping fields
        mapped on the device between kernels). The contiguous bin region
        is also registered with :meth:`MicroState.bind_packed` so moment
        reductions contract all species at once. Idempotent.

        ``buffer`` supplies external storage of the exact block shape
        instead of a fresh allocation — the multiprocess rank engine
        passes a view over the rank's ``multiprocessing.shared_memory``
        segment here, so the resident fields live directly in shared
        memory and neighboring worker processes can pull halos out of
        them without any serialization.
        """
        shape = self.patch.shape
        expected = (*shape, self.layout.nscalars)
        if self.block is not None:
            if buffer is not None and buffer is not self.block:
                raise ConfigurationError(
                    "fields are already bound to a different superblock"
                )
            return self.block
        if buffer is None:
            block = np.empty(expected)
        else:
            if buffer.shape != expected or buffer.dtype != np.float64:
                raise ConfigurationError(
                    f"superblock buffer must be float64 {expected}, got "
                    f"{buffer.dtype} {buffer.shape}"
                )
            block = buffer
        slices = self.layout.slices()
        for name, arr in list(self._advected.items()):
            sl = slices[name]
            view = block[..., sl.start] if arr.ndim == 3 else block[..., sl]
            view[...] = arr
            self._advected[name] = view
        self.t = self._advected["t"]
        self.qv = self._advected["qv"]
        self.w = self._advected["w"]
        bin_names = []
        for sp in self.micro.dists:
            name = f"bin_{sp.value}"
            self.micro.dists[sp] = self._advected[name]
            bin_names.append(name)
        start = slices[bin_names[0]].start
        stop = slices[bin_names[-1]].stop
        self.micro.bind_packed(block[..., start:stop])
        self.block = block
        return block

    @property
    def shape(self) -> tuple[int, int, int]:
        return self.patch.shape

    @property
    def pressure_mb(self) -> np.ndarray:
        """Base-state pressure broadcast to the 3D memory shape."""
        return np.broadcast_to(self.p_mb_col[None, :, None], self.shape)

    @property
    def rho(self) -> np.ndarray:
        """Base-state density [g/cm^3] broadcast to 3D."""
        return np.broadcast_to(self.rho_col[None, :, None], self.shape)

    def owned(self, arr: np.ndarray) -> np.ndarray:
        """View of the owned (non-halo) region of a memory-extent array."""
        return arr[owned_slice(self.patch)]

    def advected_fields(self) -> dict[str, np.ndarray]:
        """Every scalar the RK3 transport advects (incl. all bins).

        WRF advects each bin of each hydrometeor as its own 3D scalar —
        this is why ``rk_scalar_tend`` is the second hotspot of Table I.
        The returned dict is built once at construction (the entries
        are the live per-field arrays); treat it as read-only.
        """
        return self._advected

    def scalar_count(self) -> int:
        """Number of advected 3D scalars (bins count individually)."""
        return self.layout.nscalars
