"""Runtime-compiled C stencil for the fused transport superblock.

The fused numpy path (:func:`repro.wrf.transport.fused_upwind_tend`)
still materializes every stencil intermediate — about forty full-block
memory passes per step — so on one core it stays bandwidth-bound the
same way the paper's unfused Fortran loops were. This module is the
host-side version of the paper's final step: collapse the whole
donor-cell update into *one* loop nest with no temporaries, so each
advected value is read once and written once.

Since PR 6 the kernel is no longer a hand-written C string: it is
defined as a `repro.codee.loopir` kernel (:func:`build_advect_ir`),
annotated by the dependence-driven transformation engine
(`repro.codee.transform` derives the ``parallel for collapse(2)`` +
inner ``simd`` that used to be typed by hand), statically verified
(`repro.codee.irverify` — an illegal annotation refuses to compile),
and emitted by `repro.codee.cgen`. The arithmetic is expressed in the
IR with the reference's exact operation grouping and emitted fully
parenthesized, which — together with the shared ``-ffp-contract=off``
flag — keeps the compiled kernel bitwise identical to the per-field
numpy path up to the sign of floating-point zeros, exactly as the
hand-written source was.

Build, caching, and fallback behavior are unchanged: the generated
source goes through :mod:`repro.core.cjit` (source-hash-cached ``.so``
under ``_cbuild/``, loaded through :mod:`ctypes`). If no compiler is
available — or ``REPRO_DISABLE_CSTENCIL=1`` (this module) /
``REPRO_DISABLE_CJIT=1`` (every compiled kernel) is set —
:func:`load_stencil` returns ``None`` and callers fall back to the
sliced numpy kernels. Nothing outside this module needs to know which
path ran.
"""

from __future__ import annotations

import ctypes
from pathlib import Path

import numpy as np

from repro.codee import cgen, loopir, transform
from repro.codee.loopir import (
    ArrayParam,
    Const,
    If,
    Kernel,
    Let,
    Load,
    Loop,
    ScalarParam,
    Store,
    Sym,
)
from repro.core import cjit
from repro.obs import tracer

#: Environment switch forcing the numpy fallback (used by the
#: equivalence tests to exercise both paths, and as an escape hatch).
DISABLE_ENV = "REPRO_DISABLE_CSTENCIL"


def build_advect_ir() -> Kernel:
    """The donor-cell stage ``out = base + f * tend(s)`` as loop IR.

    One stage over the whole ``(ni, nk, nj, ns)`` superblock with
    zero-gradient edges: each neighbor index is clamped, so the
    clamped term is ``s - s = 0``, reproducing the reference's edge
    handling exactly. Euler passes ``base == s`` and ``f == dt``; an
    RK3 stage passes ``base == phi0`` and ``f == dt * frac``.
    ``clip[n]`` marks scalars clamped at zero after the update (only
    on the stage that ``do_clip`` enables).

    The tendency accumulates axis i, then k, then j with the same
    expression grouping as the numpy reference (three negated upwind
    pairs summed left to right), so results match it bit for bit
    modulo signed zeros. The loop nest is defined *bare* — every
    OpenMP annotation on the compiled kernel is derived by
    `repro.codee.transform` from its dependence analysis.
    """
    ni, nk, nj, ns = Sym("ni"), Sym("nk"), Sym("nj"), Sym("ns")
    i, k, j, n = Sym("i"), Sym("k"), Sym("j"), Sym("n")
    sv = Sym("sv")

    s4 = (nk * nj * ns, nj * ns, ns, Const(1))
    c3 = (nk * nj, nj, Const(1))

    def s_at(ii, kk, jj):
        return Load("s", (ii, kk, jj, n))

    # One negated upwind pair per axis: -(pos*(sv - s[lo]) + neg*(s[hi] - sv)),
    # accumulated i, then k, then j — the reference's grouping.
    tend = None
    for pos, neg, lo, hi in (
        ("up", "un", s_at(Sym("im"), k, j), s_at(Sym("ip"), k, j)),
        ("wp", "wn", s_at(i, Sym("km"), j), s_at(i, Sym("kp"), j)),
        ("vp", "vn", s_at(i, k, Sym("jm")), s_at(i, k, Sym("jp"))),
    ):
        pair = -(Sym(pos) * (sv - lo) + Sym(neg) * (hi - sv))
        tend = pair if tend is None else tend + pair

    clamp = loopir.Select
    body_j = [
        Let("up", Load("pos_i", (i, k, j))),
        Let("un", Load("neg_i", (i, k, j))),
        Let("wp", Load("pos_k", (i, k, j))),
        Let("wn", Load("neg_k", (i, k, j))),
        Let("vp", Load("pos_j", (i, k, j))),
        Let("vn", Load("neg_j", (i, k, j))),
        Let("im", clamp(i.gt(0), i - 1, i), ctype="long"),
        Let("ip", clamp(i.lt(ni - 1), i + 1, i), ctype="long"),
        Let("km", clamp(k.gt(0), k - 1, k), ctype="long"),
        Let("kp", clamp(k.lt(nk - 1), k + 1, k), ctype="long"),
        Let("jm", clamp(j.gt(0), j - 1, j), ctype="long"),
        Let("jp", clamp(j.lt(nj - 1), j + 1, j), ctype="long"),
        Loop(
            "n",
            Const(0),
            ns,
            [
                Let("sv", s_at(i, k, j)),
                Let("t", tend),
                Store(
                    "out",
                    (i, k, j, n),
                    Sym("f") * Sym("t") + Load("base", (i, k, j, n)),
                ),
            ],
        ),
        If(
            Sym("do_clip"),
            [
                Loop(
                    "n",
                    Const(0),
                    ns,
                    [
                        If(
                            Load("clip", (n,)).logical_and(
                                Load("out", (i, k, j, n)).lt(Const(0.0))
                            ),
                            [Store("out", (i, k, j, n), Const(0.0))],
                        )
                    ],
                )
            ],
        ),
    ]

    nest = Loop(
        "i",
        Const(0),
        ni,
        [Loop("k", Const(0), nk, [Loop("j", Const(0), nj, body_j)])],
    )

    return Kernel(
        name="advect_stage",
        params=(
            ArrayParam("s", strides=s4),
            ArrayParam("base", strides=s4),
            ArrayParam("out", strides=s4, intent="out"),
            ArrayParam("pos_i", strides=c3),
            ArrayParam("neg_i", strides=c3),
            ArrayParam("pos_k", strides=c3),
            ArrayParam("neg_k", strides=c3),
            ArrayParam("pos_j", strides=c3),
            ArrayParam("neg_j", strides=c3),
            ScalarParam("f", "double"),
            ScalarParam("ni", "long"),
            ScalarParam("nk", "long"),
            ScalarParam("nj", "long"),
            ScalarParam("ns", "long"),
            ArrayParam("clip", strides=(Const(1),), ctype="unsigned char"),
            ScalarParam("do_clip", "int"),
        ),
        body=[nest],
        doc=(
            "One donor-cell stage out = base + f * tend(s) over the "
            "(ni, nk, nj, ns) superblock with zero-gradient (clamped) "
            "edges; tendency accumulated axis i, then k, then j in the "
            "reference's grouping."
        ),
    )


def build_advect_members_ir() -> Kernel:
    """The donor-cell stage over an ensemble-stacked superblock.

    Identical per-point arithmetic to :func:`build_advect_ir` wrapped
    in an explicit outer member loop: the block is ``(nm, ni, nk, nj,
    ns)`` member-major and the winds ``(nm, ni, nk, nj)``, so iteration
    ``m`` reads and writes exactly member ``m``'s arrays with member-
    local edge clamps (the i/k/j Select clamps never cross a member
    boundary because ``m`` is a separate index, not folded into ``i``).
    Every output element is written exactly once by a deterministic
    scalar expression, so each member's slice is bit-identical to a
    solo :func:`build_advect_ir` sweep of that member — regardless of
    how the derived OpenMP annotations schedule the loops.
    """
    nm, ni, nk, nj, ns = (
        Sym("nm"), Sym("ni"), Sym("nk"), Sym("nj"), Sym("ns")
    )
    m, i, k, j, n = Sym("m"), Sym("i"), Sym("k"), Sym("j"), Sym("n")
    sv = Sym("sv")

    s5 = (ni * nk * nj * ns, nk * nj * ns, nj * ns, ns, Const(1))
    c4 = (ni * nk * nj, nk * nj, nj, Const(1))

    def s_at(ii, kk, jj):
        return Load("s", (m, ii, kk, jj, n))

    tend = None
    for pos, neg, lo, hi in (
        ("up", "un", s_at(Sym("im"), k, j), s_at(Sym("ip"), k, j)),
        ("wp", "wn", s_at(i, Sym("km"), j), s_at(i, Sym("kp"), j)),
        ("vp", "vn", s_at(i, k, Sym("jm")), s_at(i, k, Sym("jp"))),
    ):
        pair = -(Sym(pos) * (sv - lo) + Sym(neg) * (hi - sv))
        tend = pair if tend is None else tend + pair

    clamp = loopir.Select
    body_j = [
        Let("up", Load("pos_i", (m, i, k, j))),
        Let("un", Load("neg_i", (m, i, k, j))),
        Let("wp", Load("pos_k", (m, i, k, j))),
        Let("wn", Load("neg_k", (m, i, k, j))),
        Let("vp", Load("pos_j", (m, i, k, j))),
        Let("vn", Load("neg_j", (m, i, k, j))),
        Let("im", clamp(i.gt(0), i - 1, i), ctype="long"),
        Let("ip", clamp(i.lt(ni - 1), i + 1, i), ctype="long"),
        Let("km", clamp(k.gt(0), k - 1, k), ctype="long"),
        Let("kp", clamp(k.lt(nk - 1), k + 1, k), ctype="long"),
        Let("jm", clamp(j.gt(0), j - 1, j), ctype="long"),
        Let("jp", clamp(j.lt(nj - 1), j + 1, j), ctype="long"),
        Loop(
            "n",
            Const(0),
            ns,
            [
                Let("sv", s_at(i, k, j)),
                Let("t", tend),
                Store(
                    "out",
                    (m, i, k, j, n),
                    Sym("f") * Sym("t") + Load("base", (m, i, k, j, n)),
                ),
            ],
        ),
        If(
            Sym("do_clip"),
            [
                Loop(
                    "n",
                    Const(0),
                    ns,
                    [
                        If(
                            Load("clip", (n,)).logical_and(
                                Load("out", (m, i, k, j, n)).lt(Const(0.0))
                            ),
                            [Store("out", (m, i, k, j, n), Const(0.0))],
                        )
                    ],
                )
            ],
        ),
    ]

    nest = Loop(
        "m",
        Const(0),
        nm,
        [
            Loop(
                "i",
                Const(0),
                ni,
                [Loop("k", Const(0), nk, [Loop("j", Const(0), nj, body_j)])],
            )
        ],
    )

    return Kernel(
        name="advect_stage_members",
        params=(
            ArrayParam("s", strides=s5),
            ArrayParam("base", strides=s5),
            ArrayParam("out", strides=s5, intent="out"),
            ArrayParam("pos_i", strides=c4),
            ArrayParam("neg_i", strides=c4),
            ArrayParam("pos_k", strides=c4),
            ArrayParam("neg_k", strides=c4),
            ArrayParam("pos_j", strides=c4),
            ArrayParam("neg_j", strides=c4),
            ScalarParam("f", "double"),
            ScalarParam("nm", "long"),
            ScalarParam("ni", "long"),
            ScalarParam("nk", "long"),
            ScalarParam("nj", "long"),
            ScalarParam("ns", "long"),
            ArrayParam("clip", strides=(Const(1),), ctype="unsigned char"),
            ScalarParam("do_clip", "int"),
        ),
        body=[nest],
        doc=(
            "One donor-cell stage out = base + f * tend(s) over an "
            "ensemble-stacked (nm, ni, nk, nj, ns) superblock; the "
            "member loop only rebases the pointers, so each member's "
            "slice matches a solo advect_stage sweep bit for bit."
        ),
    )


loopir.register_kernel(
    loopir.KernelSpec(
        name="advect_stage",
        build=build_advect_ir,
        transform=transform.plan_offload,
    )
)

loopir.register_kernel(
    loopir.KernelSpec(
        name="advect_stage_members",
        build=build_advect_members_ir,
        transform=transform.plan_offload,
    )
)

#: Compile flags (the shared defaults; see :mod:`repro.core.cjit` for
#: why ``-ffp-contract=off`` is load-bearing).
CFLAGS = cjit.DEFAULT_CFLAGS

#: Why the stencil is unavailable ("" while it is); for diagnostics.
load_error: str = ""


def _declare(lib: ctypes.CDLL) -> None:
    dp = np.ctypeslib.ndpointer(dtype=np.float64, flags="C_CONTIGUOUS")
    bp = np.ctypeslib.ndpointer(dtype=np.uint8, flags="C_CONTIGUOUS")
    lib.advect_stage.restype = None
    lib.advect_stage.argtypes = [
        dp, dp, dp,  # s, base, out
        dp, dp, dp, dp, dp, dp,  # pos/neg per axis
        ctypes.c_double,
        ctypes.c_long, ctypes.c_long, ctypes.c_long, ctypes.c_long,
        bp, ctypes.c_int,
    ]
    lib.advect_stage_members.restype = None
    lib.advect_stage_members.argtypes = [
        dp, dp, dp,  # s, base, out (member-stacked)
        dp, dp, dp, dp, dp, dp,  # pos/neg per axis (member-stacked)
        ctypes.c_double,
        ctypes.c_long,  # nm
        ctypes.c_long, ctypes.c_long, ctypes.c_long, ctypes.c_long,
        bp, ctypes.c_int,
    ]


# Derive the OpenMP annotations, verify them, and emit the C source.
# An illegal transformation raises IRVerificationError here, at import,
# before any C exists — loud by design.
_module = cgen.build_module(
    "stencil",
    [
        transform.plan_offload(build_advect_ir()).kernel,
        transform.plan_offload(build_advect_members_ir()).kernel,
    ],
    cflags=CFLAGS,
    disable_env=DISABLE_ENV,
    build_dir=Path(__file__).resolve().parent / "_cbuild",
    setup=_declare,
    banner=(
        "Generated by repro.codee.cgen from the advect_stage loop IR; "
        "annotations derived by repro.codee.transform. Do not edit."
    ),
)

#: The generated translation unit (kept for introspection/diagnostics).
C_SOURCE = _module.source


_path_traced = False


def load_stencil() -> ctypes.CDLL | None:
    """The compiled stencil library, or ``None`` when unavailable.

    Compilation happens once per process (and the shared object is
    cached on disk across processes); every failure mode — no
    compiler, sandboxed filesystem, missing OpenMP runtime — degrades
    to ``None`` so callers take the numpy path. The underlying
    :class:`~repro.core.cjit.CJitModule` records the one-time
    ``cjit.compile``/``cjit.load`` spans; a single instant event here
    marks which path (compiled vs numpy) the transport resolved to.
    """
    global load_error, _path_traced
    lib = _module.load()
    load_error = _module.load_error
    if not _path_traced and tracer.enabled():
        _path_traced = True
        tracer.instant(
            "advect_stencil.path",
            cat="jit",
            attrs={"compiled": lib is not None, "error": load_error},
        )
    return lib


def advect_stage(
    lib: ctypes.CDLL,
    s: np.ndarray,
    base: np.ndarray,
    out: np.ndarray,
    pos: tuple[np.ndarray, np.ndarray, np.ndarray],
    neg: tuple[np.ndarray, np.ndarray, np.ndarray],
    f: float,
    clip_mask: np.ndarray,
    do_clip: bool,
) -> None:
    """One fused stage ``out = base + f * tend(s)`` on the superblock."""
    ni, nk, nj, ns = s.shape
    lib.advect_stage(
        s, base, out,
        pos[0], neg[0], pos[1], neg[1], pos[2], neg[2],
        float(f), ni, nk, nj, ns,
        clip_mask, 1 if do_clip else 0,
    )


def advect_stage_members(
    lib: ctypes.CDLL,
    s: np.ndarray,
    base: np.ndarray,
    out: np.ndarray,
    pos: tuple[np.ndarray, np.ndarray, np.ndarray],
    neg: tuple[np.ndarray, np.ndarray, np.ndarray],
    f: float,
    clip_mask: np.ndarray,
    do_clip: bool,
) -> None:
    """One fused stage over the ``(nm, ni, nk, nj, ns)`` member stack.

    ``pos``/``neg`` are the member-stacked ``(nm, ni, nk, nj)`` wind
    decompositions. One C call advances every member; each member's
    slice of ``out`` equals a solo :func:`advect_stage` call bit for
    bit.
    """
    nm, ni, nk, nj, ns = s.shape
    lib.advect_stage_members(
        s, base, out,
        pos[0], neg[0], pos[1], neg[1], pos[2], neg[2],
        float(f), nm, ni, nk, nj, ns,
        clip_mask, 1 if do_clip else 0,
    )
