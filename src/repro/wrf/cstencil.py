"""Runtime-compiled C stencil for the fused transport superblock.

The fused numpy path (:func:`repro.wrf.transport.fused_upwind_tend`)
still materializes every stencil intermediate — about forty full-block
memory passes per step — so on one core it stays bandwidth-bound the
same way the paper's unfused Fortran loops were. This module is the
host-side version of the paper's final step: collapse the whole
donor-cell update into *one* loop nest with no temporaries, so each
advected value is read once and written once.

Build, caching, and fallback behavior live in the shared
:mod:`repro.core.cjit` infrastructure: at first use the C source below
is compiled with the system C compiler (``cc``/``gcc``/``clang``) into
a shared object cached under ``_cbuild/`` next to this file, keyed by
a hash of the source and flags, and loaded through :mod:`ctypes`. The
kernel's arithmetic mirrors the reference operation-for-operation
(same per-axis grouping, compiled with ``-ffp-contract=off`` so no FMA
contraction reorders the rounding), which keeps it bitwise identical
to the per-field numpy path up to the sign of floating-point zeros.

If no compiler is available — or ``REPRO_DISABLE_CSTENCIL=1`` (this
module) / ``REPRO_DISABLE_CJIT=1`` (every compiled kernel) is set —
:func:`load_stencil` returns ``None`` and callers fall back to the
sliced numpy kernels. Nothing outside this module needs to know which
path ran.
"""

from __future__ import annotations

import ctypes
from pathlib import Path

import numpy as np

from repro.core import cjit

#: Environment switch forcing the numpy fallback (used by the
#: equivalence tests to exercise both paths, and as an escape hatch).
DISABLE_ENV = "REPRO_DISABLE_CSTENCIL"

C_SOURCE = r"""
#include <stddef.h>

/* One donor-cell stage over the whole (ni, nk, nj, ns) superblock:
 *
 *     out = base + f * tend(s),        tend as in rk_scalar_tend
 *
 * with zero-gradient edges (clamped neighbor rows reproduce the
 * reference's edge handling exactly: the clamped term is s - s = 0).
 * Euler passes base == s and f == dt; an RK3 stage passes base == phi0
 * and f == dt * frac. `clip[n]` marks scalars clamped at zero after
 * the update (only on the stage that `do_clip` enables).
 *
 * The tendency is accumulated axis i, then k, then j with the same
 * expression grouping as the numpy reference, so results match it
 * bit for bit (modulo signed zeros); see the module docstring.
 */
void advect_stage(const double *restrict s,
                  const double *restrict base,
                  double *restrict out,
                  const double *restrict pos_i, const double *restrict neg_i,
                  const double *restrict pos_k, const double *restrict neg_k,
                  const double *restrict pos_j, const double *restrict neg_j,
                  double f,
                  long ni, long nk, long nj, long ns,
                  const unsigned char *restrict clip, int do_clip)
{
    const size_t si = (size_t)nk * nj * ns;   /* element stride, axis i */
    const size_t sk = (size_t)nj * ns;        /* element stride, axis k */
    const size_t sj = (size_t)ns;             /* element stride, axis j */
    #pragma omp parallel for collapse(2) schedule(static)
    for (long i = 0; i < ni; i++) {
        for (long k = 0; k < nk; k++) {
            for (long j = 0; j < nj; j++) {
                const size_t c = ((size_t)i * nk + k) * nj + j;
                const double up = pos_i[c], un = neg_i[c];
                const double wp = pos_k[c], wn = neg_k[c];
                const double vp = pos_j[c], vn = neg_j[c];
                const double *row = s + c * ns;
                const double *rim = (i > 0)      ? row - si : row;
                const double *rip = (i < ni - 1) ? row + si : row;
                const double *rkm = (k > 0)      ? row - sk : row;
                const double *rkp = (k < nk - 1) ? row + sk : row;
                const double *rjm = (j > 0)      ? row - sj : row;
                const double *rjp = (j < nj - 1) ? row + sj : row;
                const double *brow = base + c * ns;
                double *orow = out + c * ns;
                #pragma omp simd
                for (long n = 0; n < ns; n++) {
                    const double sv = row[n];
                    double t = -(up * (sv - rim[n]) + un * (rip[n] - sv));
                    t += -(wp * (sv - rkm[n]) + wn * (rkp[n] - sv));
                    t += -(vp * (sv - rjm[n]) + vn * (rjp[n] - sv));
                    orow[n] = f * t + brow[n];
                }
                if (do_clip) {
                    #pragma omp simd
                    for (long n = 0; n < ns; n++) {
                        if (clip[n] && orow[n] < 0.0) orow[n] = 0.0;
                    }
                }
            }
        }
    }
}
"""

#: Compile flags (the shared defaults; see :mod:`repro.core.cjit` for
#: why ``-ffp-contract=off`` is load-bearing).
CFLAGS = cjit.DEFAULT_CFLAGS

#: Why the stencil is unavailable ("" while it is); for diagnostics.
load_error: str = ""


def _declare(lib: ctypes.CDLL) -> None:
    dp = np.ctypeslib.ndpointer(dtype=np.float64, flags="C_CONTIGUOUS")
    bp = np.ctypeslib.ndpointer(dtype=np.uint8, flags="C_CONTIGUOUS")
    lib.advect_stage.restype = None
    lib.advect_stage.argtypes = [
        dp, dp, dp,  # s, base, out
        dp, dp, dp, dp, dp, dp,  # pos/neg per axis
        ctypes.c_double,
        ctypes.c_long, ctypes.c_long, ctypes.c_long, ctypes.c_long,
        bp, ctypes.c_int,
    ]


_module = cjit.CJitModule(
    "stencil",
    C_SOURCE,
    cflags=CFLAGS,
    disable_env=DISABLE_ENV,
    build_dir=Path(__file__).resolve().parent / "_cbuild",
    setup=_declare,
)


def load_stencil() -> ctypes.CDLL | None:
    """The compiled stencil library, or ``None`` when unavailable.

    Compilation happens once per process (and the shared object is
    cached on disk across processes); every failure mode — no
    compiler, sandboxed filesystem, missing OpenMP runtime — degrades
    to ``None`` so callers take the numpy path.
    """
    global load_error
    lib = _module.load()
    load_error = _module.load_error
    return lib


def advect_stage(
    lib: ctypes.CDLL,
    s: np.ndarray,
    base: np.ndarray,
    out: np.ndarray,
    pos: tuple[np.ndarray, np.ndarray, np.ndarray],
    neg: tuple[np.ndarray, np.ndarray, np.ndarray],
    f: float,
    clip_mask: np.ndarray,
    do_clip: bool,
) -> None:
    """One fused stage ``out = base + f * tend(s)`` on the superblock."""
    ni, nk, nj, ns = s.shape
    lib.advect_stage(
        s, base, out,
        pos[0], neg[0], pos[1], neg[1], pos[2], neg[2],
        float(f), ni, nk, nj, ns,
        clip_mask, 1 if do_clip else 0,
    )
