"""Meteorological diagnostics over model output.

Utilities a forecaster (or a verification script) would run on the
wrfout fields: parcel CAPE from the model sounding, precipitation
rates, updraft/condensate statistics, and a storm-cell census. Used by
the examples and by tests that sanity-check the synthetic CONUS case
against thunderstorm climatology.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.constants import GRAVITY, T_0
from repro.fsbm.thermo import saturation_mixing_ratio
from repro.wrf.state import WrfFields


def parcel_cape(
    temperature_col: np.ndarray,
    qv_col: np.ndarray,
    pressure_mb_col: np.ndarray,
    dz: float,
) -> float:
    """Surface-parcel CAPE [J/kg] from one model column.

    Lifts the lowest-level parcel dry-adiabatically to saturation, then
    pseudo-adiabatically (approximated with a constant 6 K/km saturated
    lapse rate), integrating positive buoyancy. Deliberately simple —
    the point is a physically meaningful instability scalar, not an
    operational sounding package.
    """
    nz = temperature_col.shape[0]
    t_parcel = float(temperature_col[0])
    qv_parcel = float(qv_col[0])
    cape = 0.0
    saturated = False
    for k in range(1, nz):
        if not saturated:
            t_parcel -= 9.8e-3 * dz  # dry adiabat
            qs = float(
                saturation_mixing_ratio(
                    np.array(t_parcel), np.array(pressure_mb_col[k])
                )
            )
            if qv_parcel >= qs:
                saturated = True
        else:
            t_parcel -= 6.0e-3 * dz  # moist pseudo-adiabat
        buoyancy = GRAVITY * (t_parcel - temperature_col[k]) / temperature_col[k]
        if buoyancy > 0:
            cape += buoyancy * dz
    return cape


def cape_field(fields: WrfFields, dz: float) -> np.ndarray:
    """CAPE per owned column, shape ``(ni, nj)`` of the memory extents."""
    t = fields.t
    qv = fields.qv
    p = fields.p_mb_col
    ni, nk, nj = t.shape
    out = np.zeros((ni, nj))
    for i in range(ni):
        for j in range(nj):
            out[i, j] = parcel_cape(t[i, :, j], qv[i, :, j], p, dz)
    return out


@dataclass(frozen=True, slots=True)
class StormCensus:
    """Domain-wide convection statistics from one output frame."""

    n_cells: int
    cloudy_fraction: float
    max_updraft: float
    max_condensate: float
    total_precip: float

    def format_report(self) -> str:
        return (
            f"storm census: {self.n_cells} cells, "
            f"{self.cloudy_fraction * 100:.1f}% cloudy columns, "
            f"w_max {self.max_updraft:.1f} m/s, "
            f"q_max {self.max_condensate:.2e} g/cm^3, "
            f"precip {self.total_precip:.3e}"
        )


def storm_census(
    output: dict[str, np.ndarray], condensate_threshold: float = 1.0e-12
) -> StormCensus:
    """Count convective cells in a gathered output frame.

    A *cell* is a connected cloudy region in the column-maximum
    condensate field (4-connected flood fill).
    """
    qc = output["QCLOUD_TOTAL"]
    col_max = qc.max(axis=1)  # (nx, ny)
    cloudy = col_max > condensate_threshold

    # Connected-component count, iterative flood fill.
    visited = np.zeros_like(cloudy, dtype=bool)
    n_cells = 0
    nx, ny = cloudy.shape
    for i0 in range(nx):
        for j0 in range(ny):
            if not cloudy[i0, j0] or visited[i0, j0]:
                continue
            n_cells += 1
            stack = [(i0, j0)]
            visited[i0, j0] = True
            while stack:
                i, j = stack.pop()
                for di, dj in ((1, 0), (-1, 0), (0, 1), (0, -1)):
                    ii, jj = i + di, j + dj
                    if (
                        0 <= ii < nx
                        and 0 <= jj < ny
                        and cloudy[ii, jj]
                        and not visited[ii, jj]
                    ):
                        visited[ii, jj] = True
                        stack.append((ii, jj))

    return StormCensus(
        n_cells=n_cells,
        cloudy_fraction=float(cloudy.mean()),
        max_updraft=float(output["W"].max()),
        max_condensate=float(qc.max()),
        total_precip=float(output["RAINNC"].sum()),
    )


def precipitation_rate(
    precip_before: np.ndarray, precip_after: np.ndarray, dt: float
) -> np.ndarray:
    """Instantaneous surface precipitation rate from two RAINNC frames.

    Returned in the accumulation unit per second (the synthetic case
    tracks column mass density; real WRF uses mm).
    """
    if precip_before.shape != precip_after.shape:
        raise ValueError("precipitation frames must share a shape")
    if dt <= 0:
        raise ValueError("dt must be positive")
    return np.maximum(precip_after - precip_before, 0.0) / dt
