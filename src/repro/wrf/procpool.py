"""True multiprocess rank execution over shared-memory superblocks.

The thread-pool rank batching in :mod:`repro.wrf.model` time-slices one
interpreter: numpy releases the GIL in the hot kernels, but the pure-
Python glue between them serializes, so host wall-clock barely improves
past two ranks. This module promotes ranks to real OS processes:

* each rank's transport superblock lives in a
  ``multiprocessing.shared_memory`` segment created (and later
  unlinked) by the driver — one ``(ni, nk, nj, nscalar)`` float64 block
  per rank, registered with the ``"wrf.shared_superblocks"``
  :class:`~repro.core.cache.CountingCache` so its footprint is
  observable like every other pinned buffer;
* each rank is a persistent worker process (forked before any
  heavyweight driver state exists) that builds its own fields, FSBM
  driver, and authoritative :class:`~repro.core.clock.SimClock`, binds
  its resident fields directly into its shared segment, and then steps
  in lockstep with its peers;
* the per-step halo exchange is the pull half of the
  :class:`~repro.grid.halo.HaloExchangePlan` executed as direct strided
  copies between neighboring ranks' shared blocks — no serialization,
  no driver round-trip — barriered before (all owners packed) and
  after (all halos filled);
* the driver talks to workers over one command pipe per rank
  (``step`` / ``charge_io`` / ``gather`` / ``close``) and mirrors each
  worker's clock totals wholesale after every command, so scheduler
  charges, profilers, and history I/O see simulated time bit-identical
  to the thread path.

Bit-exactness: workers run the *same* module-level per-rank stage
functions as the serial and thread paths (physics, pack, halo-MPI
charging, transport), in the same per-rank order, against
deterministically reconstructed cost models — so both the numerics and
every per-clock float accumulation sequence are identical across all
three execution modes.

Failure containment: any worker crash, timeout, or protocol error
tears down the whole pool — remaining workers are terminated and every
shared segment is unlinked — before :class:`~repro.errors.ProcPoolError`
reaches the caller. Segments that somehow survive (e.g. the driver was
SIGKILLed between create and unlink) are reaped by an ``atexit`` hook,
and ``REPRO_DISABLE_PROCPOOL=1`` disables the pool entirely (the model
falls back to thread batching).
"""

from __future__ import annotations

import atexit
import math
import os
import time
import traceback
from multiprocessing import get_context
from multiprocessing.shared_memory import SharedMemory
from threading import BrokenBarrierError

import numpy as np

from repro.core.cache import get_cache
from repro.core.clock import SimClock, TimeBucket
from repro.errors import ProcPoolError
from repro.fsbm import ckernels
from repro.fsbm.collision_kernels import get_tables
from repro.grid.decomposition import Decomposition
from repro.grid.halo import build_halo_plan
from repro.obs import metrics, tracer
from repro.wrf import cstencil
from repro.wrf.model import (
    build_rank_fields,
    build_rank_sbm,
    charge_halo_mpi,
    cost_models,
    pack_rank,
    physics_rank,
    rank_output_frame,
    transport_charges,
    transport_numerics,
)
from repro.wrf.namelist import Namelist
from repro.wrf.state import superblock_scalar_count
from repro.wrf.transport import get_workspace

#: Default seconds a pool waits on a worker reply or a halo barrier
#: before declaring the step dead (``REPRO_PROCPOOL_TIMEOUT`` overrides).
DEFAULT_TIMEOUT = 120.0

#: Cache registering the live shared segments (value = SharedMemory, so
#: ``cache_stats()`` reports the pool's /dev/shm footprint in bytes).
SEGMENT_CACHE = "wrf.shared_superblocks"


def procpool_disabled() -> str | None:
    """Why process ranks are disabled in this environment, or ``None``.

    ``REPRO_DISABLE_PROCPOOL`` is the kill switch: any non-empty value
    makes every model fall back to the thread-pool rank path (numerics
    and simulated time are identical either way).
    """
    if os.environ.get("REPRO_DISABLE_PROCPOOL", ""):
        return "REPRO_DISABLE_PROCPOOL is set"
    return None


def _pool_timeout() -> float:
    raw = os.environ.get("REPRO_PROCPOOL_TIMEOUT", "")
    try:
        return float(raw) if raw else DEFAULT_TIMEOUT
    except ValueError:
        return DEFAULT_TIMEOUT


# --- leak protection ---------------------------------------------------------
#
# Every segment the driver creates is recorded here until it is
# unlinked. Normal teardown (pool.close(), or any pool failure) empties
# the registry; the atexit hook is the last line of defense for drivers
# that die between create and unlink, so a crashed run never strands
# blocks in /dev/shm.

_live_segments: dict[str, SharedMemory] = {}


def leaked_segments() -> list[str]:
    """Names of shared segments created but not yet unlinked."""
    return sorted(_live_segments)


def _reap_leaked() -> None:
    """Unlink every still-live segment (atexit; also test-invokable)."""
    for name in list(_live_segments):
        shm = _live_segments.pop(name)
        get_cache(SEGMENT_CACHE).discard(name)
        try:
            shm.close()
        except BufferError:
            pass  # live numpy views keep the mapping; unlink still works
        try:
            shm.unlink()
        except FileNotFoundError:
            pass


atexit.register(_reap_leaked)


class SharedSuperblocks:
    """Driver-owned pool of per-rank shared-memory superblock segments.

    One float64 ``(ni, nk, nj, nscalar)`` segment per rank, created at
    construction and destroyed by :meth:`unlink` (idempotent — double
    unlink and unlink-after-reap are no-ops). Workers attach by name
    and only ever ``close()`` their mapping; the driver is the sole
    owner of segment lifetime. ``members > 1`` sizes each segment for
    an ensemble's member-stacked ``(members, ni, nk, nj, nscalar)``
    block instead (the solo shape is unchanged at ``members=1``).
    """

    def __init__(
        self,
        decomposition: Decomposition,
        nscalars: int,
        dtype=np.float64,
        members: int = 1,
    ):
        self.nscalars = nscalars
        self.members = members
        self.dtype = np.dtype(dtype)
        self.names: list[str] = []
        self._shms: list[SharedMemory] = []
        self._views: list[np.ndarray] = []
        cache = get_cache(SEGMENT_CACHE, sizeof=lambda shm: shm.size)
        try:
            for patch in decomposition.patches:
                shape = (*patch.shape, nscalars)
                if members > 1:
                    shape = (members, *shape)
                size = math.prod(shape) * self.dtype.itemsize
                shm = SharedMemory(create=True, size=size)
                self._shms.append(shm)
                self.names.append(shm.name)
                _live_segments[shm.name] = shm
                cache.get_or_build(shm.name, lambda s=shm: s)
                view = np.ndarray(shape, dtype=self.dtype, buffer=shm.buf)
                view[...] = 0.0
                self._views.append(view)
        except Exception:
            self.unlink()
            raise

    def view(self, rank: int) -> np.ndarray:
        """The driver-side numpy view over one rank's segment."""
        return self._views[rank]

    def unlink(self) -> None:
        """Destroy every segment (idempotent)."""
        cache = get_cache(SEGMENT_CACHE)
        self._views = []
        shms, self._shms = self._shms, []
        self.names = []
        for shm in shms:
            _live_segments.pop(shm.name, None)
            cache.discard(shm.name)
            try:
                shm.close()
            except BufferError:
                # Model fields may still view the block; the mapping
                # stays valid until they are garbage collected, and
                # unlink below removes the name regardless.
                pass
            try:
                shm.unlink()
            except FileNotFoundError:
                pass


def _preload_compiled(namelist: Namelist) -> None:
    """Build the compiled kernels and lookup tables before forking.

    Workers inherit the loaded shared objects and warm caches through
    fork instead of racing to compile them (the cjit build is atomic,
    so a race is safe — just slow).
    """
    if namelist.use_fused_transport:
        cstencil.load_stencil()
    if namelist.use_native_physics:
        ckernels.load_kernels()
    get_tables()


# --- worker side -------------------------------------------------------------


class _RankContext:
    """Everything one worker process owns for its rank."""

    def __init__(
        self,
        rank: int,
        namelist: Namelist,
        decomposition: Decomposition,
        seg_names: list[str],
        nscalars: int,
        barrier,
        timeout: float,
    ):
        self.rank = rank
        self.namelist = namelist
        self.barrier = barrier
        self.timeout = timeout
        self.num_ranks = namelist.num_ranks
        # Re-arm the tracer for this process: clear fork-inherited
        # driver events, stamp this rank on everything recorded here.
        tracer.configure_worker(rank, trace=namelist.trace)
        self.clock = SimClock()
        self.comm_cost, self.cpu_cost = cost_models(namelist)
        self.plan = build_halo_plan(decomposition)
        # Attach (never create, never unlink) every rank's segment: the
        # pull-model exchange reads neighbors' owned boxes directly.
        self._shms = [SharedMemory(name=n) for n in seg_names]
        self.blocks = [
            np.ndarray(
                (*patch.shape, nscalars), dtype=np.float64, buffer=shm.buf
            )
            for patch, shm in zip(decomposition.patches, self._shms)
        ]
        self.fields = build_rank_fields(
            namelist, rank, decomposition.patches[rank]
        )
        if namelist.use_superblock_fields:
            self.fields.bind_block(buffer=self.blocks[rank])
        self.workspace = get_workspace(
            self.fields.shape, nscalars, np.dtype(np.float64), owner=rank
        )
        self.sbm = build_rank_sbm(namelist, self.clock, self.cpu_cost)

    def step(self):
        """One model step for this rank; peers step concurrently.

        Identical stage sequence (and so identical per-clock charge
        order) to the serial/thread paths: physics, pack, halo MPI
        charges, transport. The two barriers bracket the shared-memory
        exchange: the first guarantees every owner finished packing its
        owned box before anyone pulls, the second that every halo is
        filled before anyone's transport starts mutating its block.
        """
        with self.clock.region("solve_em"):
            stats = physics_rank(self.namelist, self.fields, self.sbm)
            block = pack_rank(
                self.fields, self.workspace, out=self.blocks[self.rank]
            )
            self.barrier.wait(self.timeout)
            with tracer.span("halo_exchange", cat="mpi") as sp:
                points = self.plan.apply_pull(self.rank, self.blocks)
                if sp is not None:
                    sp.set(
                        bytes=points * block.shape[-1] * block.itemsize,
                        pull=True,
                    )
            charge_halo_mpi(
                self.plan,
                self.comm_cost,
                self.clock,
                self.rank,
                nscalars=block.shape[-1],
                itemsize=block.itemsize,
                num_ranks=self.num_ranks,
            )
            self.barrier.wait(self.timeout)
            transport_charges(
                self.namelist, self.cpu_cost, self.fields, self.clock
            )
            transport_numerics(
                self.namelist, self.fields, self.workspace, block
            )
        # Per-step cache snapshots ride the trace as counter tracks
        # (no-op while tracing is off).
        metrics.emit_cache_counters(self.rank)
        return (stats, *self.clock.state())

    def charge_io(self, charges: list[float]):
        """Apply ordered I/O charges; return the updated clock totals."""
        for seconds in charges:
            self.clock.advance(TimeBucket.IO, seconds)
        return self.clock.state()

    def gather(self) -> dict[str, np.ndarray]:
        return rank_output_frame(self.fields)

    def close(self) -> None:
        for shm in self._shms:
            try:
                shm.close()
            except BufferError:  # views die with the process anyway
                pass


def _worker_main(
    rank: int,
    namelist: Namelist,
    decomposition: Decomposition,
    seg_names: list[str],
    nscalars: int,
    barrier,
    conn,
    timeout: float,
) -> None:
    """Worker process entry: build rank state, then serve commands.

    Replies are ``("ok", payload, spans)`` or
    ``("error", traceback_text, spans)`` — every reply piggybacks the
    worker's drained tracer events (the empty list while tracing is
    off), so rank-local spans reach the driver on the same pipe and
    cadence as the clock mirror, and the containment path flushes a
    failing worker's spans with its traceback. Any error (including a
    broken halo barrier when a peer died) is fatal to the worker — the
    driver treats it as a pool failure and tears everything down.
    """
    ctx = None
    try:
        if namelist.members > 1:
            # Ensemble runs: the rank's segment holds the member-
            # stacked block and the worker steps all members batched.
            from repro.wrf.ensemble import EnsembleRankContext as ctx_cls
        else:
            ctx_cls = _RankContext
        ctx = ctx_cls(
            rank, namelist, decomposition, seg_names, nscalars, barrier, timeout
        )
        conn.send(("ready", rank, tracer.drain_state()))
        while True:
            cmd = conn.recv()
            op = cmd[0]
            if op == "close":
                conn.send(("ok", None, tracer.drain_state()))
                break
            if op == "crash":  # test hook: die without cleanup
                os._exit(1)
            if op == "raise":  # test hook: fail through containment
                raise RuntimeError(f"rank {rank}: induced worker error")
            if op == "step":
                conn.send(("ok", ctx.step(), tracer.drain_state()))
            elif op == "charge_io":
                conn.send(
                    ("ok", ctx.charge_io(*cmd[1:]), tracer.drain_state())
                )
            elif op == "gather":
                conn.send(("ok", ctx.gather(*cmd[1:]), tracer.drain_state()))
            else:
                conn.send(("error", f"unknown command {op!r}", []))
                break
    except (EOFError, KeyboardInterrupt):
        pass  # driver went away; exit quietly
    except BrokenBarrierError:
        _try_send(
            conn,
            (
                "error",
                f"rank {rank}: halo barrier broken (peer died or timed out)",
                tracer.drain_state(),
            ),
        )
    except BaseException:
        _try_send(conn, ("error", traceback.format_exc(), tracer.drain_state()))
    finally:
        if ctx is not None:
            ctx.close()
        conn.close()


def _try_send(conn, payload) -> None:
    try:
        conn.send(payload)
    except OSError:
        pass


# --- driver side -------------------------------------------------------------


class ProcRankPool:
    """Persistent worker processes, one per rank, stepped in lockstep.

    Created by :class:`~repro.wrf.model.WrfModel` when
    ``namelist.use_process_ranks`` holds (CPU stages only). Fork happens
    at construction — before the driver builds its own heavyweight
    state — so workers start lean and inherit the preloaded compiled
    kernels and lookup tables.
    """

    def __init__(
        self,
        namelist: Namelist,
        decomposition: Decomposition,
        timeout: float | None = None,
    ):
        self.namelist = namelist
        self.num_ranks = namelist.num_ranks
        self.timeout = _pool_timeout() if timeout is None else float(timeout)
        self._closed = False
        self._procs: list = []
        self._conns: list = []
        nscalars = superblock_scalar_count()
        _preload_compiled(namelist)
        self.blocks = SharedSuperblocks(
            decomposition, nscalars, members=namelist.members
        )
        start = os.environ.get("REPRO_PROCPOOL_START", "") or "fork"
        ctx = get_context(start)
        self._barrier = ctx.Barrier(self.num_ranks)
        try:
            for rank in range(self.num_ranks):
                parent_conn, child_conn = ctx.Pipe()
                proc = ctx.Process(
                    target=_worker_main,
                    args=(
                        rank,
                        namelist,
                        decomposition,
                        self.blocks.names,
                        nscalars,
                        self._barrier,
                        child_conn,
                        self.timeout,
                    ),
                    name=f"wrf-rank-{rank}",
                    daemon=True,
                )
                proc.start()
                child_conn.close()
                self._procs.append(proc)
                self._conns.append(parent_conn)
            # Workers build their rank state concurrently; wait for all.
            for rank in range(self.num_ranks):
                reply = self._recv(rank)
                if reply[0] != "ready":
                    raise ProcPoolError(
                        f"rank {rank} worker sent {reply[0]!r} during startup"
                    )
        except Exception:
            self._teardown()
            raise

    # -- plumbing --

    def block_view(self, rank: int) -> np.ndarray:
        """Driver-side live view over one rank's shared superblock."""
        return self.blocks.view(rank)

    def _recv(self, rank: int):
        """One reply from one worker, with liveness + timeout checks."""
        conn, proc = self._conns[rank], self._procs[rank]
        deadline = time.monotonic() + self.timeout
        while not conn.poll(0.05):
            if not proc.is_alive():
                raise ProcPoolError(
                    f"rank {rank} worker died (exit code {proc.exitcode})"
                )
            if time.monotonic() > deadline:
                raise ProcPoolError(
                    f"rank {rank} worker unresponsive after "
                    f"{self.timeout:.0f}s"
                )
        try:
            reply = conn.recv()
        except EOFError:
            raise ProcPoolError(
                f"rank {rank} worker died mid-reply "
                f"(exit code {proc.exitcode})"
            ) from None
        # Every reply piggybacks the worker's drained spans; adopt them
        # before any error propagates so a failing worker's trace
        # survives the teardown.
        if len(reply) > 2 and reply[2]:
            tracer.ingest(reply[2])
        if reply[0] == "error":
            raise ProcPoolError(f"rank {rank} worker failed:\n{reply[1]}")
        return reply

    def _command(self, payloads: list) -> list:
        """Broadcast one command per rank; collect replies in rank order.

        Any failure — dead worker, timeout, error reply, broken pipe —
        tears the whole pool down (workers terminated, segments
        unlinked) before the :class:`ProcPoolError` propagates.
        """
        if self._closed:
            raise ProcPoolError("pool is closed")
        try:
            for conn, payload in zip(self._conns, payloads):
                conn.send(payload)
            return [self._recv(rank) for rank in range(self.num_ranks)]
        except (ProcPoolError, OSError) as err:
            self._teardown()
            if isinstance(err, ProcPoolError):
                raise
            raise ProcPoolError(f"pool command failed: {err}") from err

    # -- commands --

    def step(self) -> list:
        """Step every rank once; returns per-rank
        ``(SbmStepStats, clock_buckets, clock_regions)``."""
        replies = self._command([("step",)] * self.num_ranks)
        return [r[1] for r in replies]

    def charge_io(
        self, charges: list[list[float]], member: int | None = None
    ) -> list:
        """Apply per-rank ordered I/O charges on the worker clocks;
        returns every rank's updated ``(buckets, regions)`` totals.
        ``member`` selects which ensemble member's clock to charge
        (ensemble pools only)."""
        extra = () if member is None else (member,)
        replies = self._command(
            [("charge_io", charges[r], *extra) for r in range(self.num_ranks)]
        )
        return [r[1] for r in replies]

    def gather(self, member: int | None = None) -> list[dict[str, np.ndarray]]:
        """Every rank's owned-region output frame, in rank order.

        ``member`` slices one ensemble member's frames out of the
        workers' stacked state over the same pipes (ensemble pools
        only; solo pools take no member argument)."""
        payload = ("gather",) if member is None else ("gather", member)
        replies = self._command([payload] * self.num_ranks)
        return [r[1] for r in replies]

    def crash(self, rank: int) -> None:
        """Test hook: make one worker exit hard mid-protocol."""
        self._conns[rank].send(("crash",))

    def induce_error(self, rank: int) -> None:
        """Test hook: make one worker fail through its containment path.

        Unlike :meth:`crash` (``os._exit``, nothing flushed), the
        worker raises inside its command loop, so the error reply
        carries its buffered trace spans back before the pool tears
        down.
        """
        self._conns[rank].send(("raise",))
        try:
            self._recv(rank)  # error reply: spans ingested, then raises
        except ProcPoolError:
            self._teardown()
            raise

    # -- lifecycle --

    def close(self) -> None:
        """Orderly shutdown: drain workers, join, unlink segments.

        Idempotent; also safe after a failure already tore the pool
        down.
        """
        if self._closed:
            self.blocks.unlink()  # double-close/unlink stays a no-op
            return
        self._closed = True
        for conn in self._conns:
            try:
                conn.send(("close",))
            except OSError:
                pass
        self._join_and_unlink(grace=5.0)

    def _teardown(self) -> None:
        """Failure-path shutdown: terminate everything, unlink segments."""
        self._closed = True
        for proc in self._procs:
            if proc.is_alive():
                proc.terminate()
        self._join_and_unlink(grace=5.0)

    def _join_and_unlink(self, grace: float) -> None:
        for proc in self._procs:
            proc.join(timeout=grace)
            if proc.is_alive():
                proc.kill()
                proc.join(timeout=grace)
        for conn in self._conns:
            try:
                conn.close()
            except OSError:
                pass
        self.blocks.unlink()
