"""Fused batched scalar transport (the Sec. VIII "next target").

WRF advects every bin of every hydrometeor as its own 3D scalar — 234
of them here (7 species x 33 bins + t, qv, w) — and the per-field
Python loop in the model driver paid for that the same way the
Fortran baseline paid for ``coal_bott_new``'s automatic arrays: six
full-array temporaries per scalar per axis (two ``np.roll`` copies
plus the intermediate products), reallocated on every call.

This module is the Python analog of the paper's stage-3 transformation:

* :class:`TransportWorkspace` plays the role of the ``temp_arrays``
  module — every tendency/stage buffer is preallocated once per
  ``(shape, nscalars, dtype)`` and reused for the life of the run, the
  host-side ``target enter data map(alloc:)``;
* the fused kernels below play the role of the fully ``collapse``d
  device loop — all scalars are packed into one contiguous
  ``(ni, nk, nj, nscalar)`` superblock (a persistent workspace buffer)
  and advected in a single sweep. When the system C compiler is
  available the sweep is one truly fused loop nest
  (:mod:`repro.wrf.cstencil`): every value read once, written once, no
  temporaries — otherwise a sliced in-place numpy stencil runs through
  preallocated buffers instead of rolled copies.

Workspaces are registered in the :mod:`repro.core.cache` registry
(cache ``"wrf.transport_workspace"``), so tests and the benchmark
harness can observe that repeated steps hit the same buffers instead
of allocating.

The arithmetic is grouped exactly as the per-field reference
(:func:`repro.wrf.dynamics.rk_scalar_tend` /
:func:`repro.wrf.dynamics.rk3_advect`), so the fused path matches the
per-field path bit-for-bit (modulo the sign of floating-point zeros).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from repro.core.cache import get_cache
from repro.obs import tracer
from repro.wrf import cstencil
from repro.wrf.dynamics import RK3_FRACTIONS, WindSplit

#: Buffers a full fused RK3 step needs; Euler uses fewer. ``block`` is
#: the packed superblock itself, ``tend`` accumulates the tendency,
#: ``diff``/``hi``/``lo`` hold the numpy path's per-axis stencil
#: pieces, ``phi0``/``stage`` the RK3 stage state.
WORKSPACE_BUFFERS = ("block", "tend", "diff", "hi", "lo", "phi0", "stage")


@dataclass(frozen=True)
class ScalarLayout:
    """Packing of named scalars into the superblock's trailing axis.

    ``entries`` is an ordered ``(name, width)`` tuple — width 1 for
    plain 3D scalars, ``nkr`` for a binned species distribution, whose
    bins occupy consecutive slots so each field view keeps a
    contiguous trailing axis.
    """

    entries: tuple[tuple[str, int], ...]

    @property
    def nscalars(self) -> int:
        return sum(width for _, width in self.entries)

    @lru_cache(maxsize=None)
    def slices(self) -> dict[str, slice]:
        """Trailing-axis slice of every named field, in entry order.

        Computed once per layout (the class is frozen/hashable) and
        shared — treat the returned dict as read-only.
        """
        out: dict[str, slice] = {}
        offset = 0
        for name, width in self.entries:
            out[name] = slice(offset, offset + width)
            offset += width
        return out

    def clip_slices(self, no_clip: tuple[str, ...] = ("t", "w")) -> tuple[slice, ...]:
        """Trailing-axis slices covering every clipped scalar.

        Adjacent clipped fields are merged into one slice so the
        vectorized ``np.maximum`` touches as few regions as possible
        (two for the standard layout: ``qv`` and all bins).
        """
        runs: list[list[int]] = []
        offset = 0
        for name, width in self.entries:
            if name not in no_clip:
                if runs and runs[-1][1] == offset:
                    runs[-1][1] = offset + width
                else:
                    runs.append([offset, offset + width])
            offset += width
        return tuple(slice(lo, hi) for lo, hi in runs)

    @lru_cache(maxsize=None)
    def clip_mask(self, no_clip: tuple[str, ...] = ("t", "w")) -> np.ndarray:
        """Per-scalar uint8 mask (1 = clamp at zero), for the C kernel."""
        mask = np.ones(self.nscalars, dtype=np.uint8)
        for name in no_clip:
            sl = self.slices().get(name)
            if sl is not None:
                mask[sl] = 0
        return mask


class TransportWorkspace:
    """Preallocated per-rank buffers for the fused transport kernels.

    The Python analog of the paper's Listing-8 ``temp_arrays`` module:
    one flat float pool per buffer name, allocated on first use at the
    superblock size and handed out as shaped views, so repeated steps
    perform zero heap allocations. ``allocations`` counts pool
    (re)allocations — a reuse test can assert it stays flat across
    steps the same way the paper checks ``map(alloc:)`` happens once.
    """

    def __init__(
        self,
        shape: tuple[int, int, int],
        nscalars: int,
        dtype: np.dtype | type = np.float64,
    ):
        self.shape = tuple(int(s) for s in shape)
        self.nscalars = int(nscalars)
        self.dtype = np.dtype(dtype)
        self._pools: dict[str, np.ndarray] = {}
        self.allocations = 0

    @property
    def block_elems(self) -> int:
        """Elements in one full superblock-shaped buffer."""
        n = self.nscalars
        for s in self.shape:
            n *= s
        return n

    def buffer(self, name: str, shape: tuple[int, ...]) -> np.ndarray:
        """A shaped view of the named pool (allocated on first use).

        Contents are unspecified — callers fully overwrite the view.
        Requests never exceed the superblock size for this workspace's
        ``(shape, nscalars)``, so each pool is allocated exactly once.
        """
        n = int(np.prod(shape, dtype=np.int64))
        pool = self._pools.get(name)
        if pool is None or pool.size < n:
            self._pools[name] = pool = np.empty(
                max(n, self.block_elems), dtype=self.dtype
            )
            self.allocations += 1
        return pool[:n].reshape(shape)

    @property
    def nbytes(self) -> int:
        """Bytes currently pinned by the allocated pools."""
        return sum(p.nbytes for p in self._pools.values())


_workspace_cache = get_cache(
    "wrf.transport_workspace",
    maxsize=16,
    sizeof=lambda ws: ws.nbytes,
)


def get_workspace(
    shape: tuple[int, int, int],
    nscalars: int,
    dtype: np.dtype | type = np.float64,
    owner: int | str = 0,
) -> TransportWorkspace:
    """The registered workspace for ``(shape, nscalars, dtype, owner)``.

    ``owner`` (typically the rank index) keeps concurrently executing
    ranks on distinct buffer sets under batched rank execution;
    same-shaped models reuse each other's workspaces across
    instantiations, which is what the reuse counters observe.
    """
    key = (tuple(shape), int(nscalars), np.dtype(dtype).str, owner)
    return _workspace_cache.get_or_build(
        key, lambda: TransportWorkspace(shape, nscalars, dtype=dtype)
    )


def pack_superblock(
    fields_map: dict[str, np.ndarray],
    layout: ScalarLayout,
    ws: TransportWorkspace,
    out: np.ndarray | None = None,
) -> np.ndarray:
    """Pack the advected fields into the workspace superblock.

    Returns the persistent ``(ni, nk, nj, nscalar)`` buffer with every
    field copied into its layout slot — one strided copy per field,
    once per step. The halo exchange and the fused kernels then see
    all 234 scalars as a single contiguous block. ``out`` substitutes
    an explicit destination for the workspace buffer — the multiprocess
    rank engine packs straight into its shared-memory segment so
    neighbor processes can pull halos from it.
    """
    shape3 = next(iter(fields_map.values())).shape[:3]
    block = (
        out
        if out is not None
        else ws.buffer("block", (*shape3, layout.nscalars))
    )
    for name, sl in layout.slices().items():
        arr = fields_map[name]
        if arr.ndim == 3:
            block[..., sl.start] = arr
        else:
            block[..., sl] = arr
    return block


def unpack_superblock(
    block: np.ndarray,
    fields_map: dict[str, np.ndarray],
    layout: ScalarLayout,
) -> None:
    """Copy the superblock's columns back into the per-field arrays."""
    for name, sl in layout.slices().items():
        arr = fields_map[name]
        if arr.ndim == 3:
            arr[...] = block[..., sl.start]
        else:
            arr[...] = block[..., sl]


def _axis_slice(ndim: int, axis: int, sl: slice) -> tuple[slice, ...]:
    out = [slice(None)] * ndim
    out[axis] = sl
    return tuple(out)


def fused_upwind_tend(
    block: np.ndarray,
    split: WindSplit,
    out: np.ndarray,
    ws: TransportWorkspace,
) -> np.ndarray:
    """Donor-cell tendency of a stacked scalar block, written to ``out``.

    ``block`` is ``(ni, nk, nj, nscalar)``; the wind decomposition
    broadcasts over the trailing scalar axis, so one sweep covers all
    234 scalars — the host-side ``collapse`` of the per-scalar loop.

    The stencil is evaluated through sliced differences into workspace
    buffers (no rolled copies): along each axis, with
    ``d[j] = s[j+1] - s[j]``, the zero-gradient-edge donor-cell
    tendency is

    * first cell:    ``-(neg * d[0])``
    * interior ``i``: ``-(pos[i] * d[i-1] + neg[i] * d[i])``
    * last cell:     ``-(pos * d[-1])``

    which reproduces the reference ``-(pos*(s-bwd) + neg*(fwd-s))``
    term-for-term (the edge terms the reference clamps to zero are
    simply never formed). Per-axis contributions are accumulated in
    the reference's axis order, so results are bitwise identical to
    the per-field path up to the sign of zeros.
    """
    ndim = block.ndim
    wrote = False
    for axis, (pos, neg) in enumerate(zip(split.pos, split.neg)):
        n = block.shape[axis]
        if n == 1:
            # Rolled == original under the edge clamp: zero tendency.
            continue
        if ndim == 4:
            pos = pos[..., None]
            neg = neg[..., None]
        hi = _axis_slice(ndim, axis, slice(1, None))
        lo = _axis_slice(ndim, axis, slice(0, n - 1))
        red_shape = tuple(
            n - 1 if ax == axis else s for ax, s in enumerate(block.shape)
        )
        d = ws.buffer("diff", red_shape)
        np.subtract(block[hi], block[lo], out=d)
        # pos-term at cells 1..n-1 and neg-term at cells 0..n-2, both
        # over the shared difference.
        p = ws.buffer("hi", red_shape)
        np.multiply(pos[hi], d, out=p)
        q = ws.buffer("lo", red_shape)
        np.multiply(neg[lo], d, out=q)
        # Combine region-wise; the diff pool is dead and hosts the sum.
        first = _axis_slice(ndim, axis, slice(0, 1))
        last = _axis_slice(ndim, axis, slice(n - 1, n))
        interior = _axis_slice(ndim, axis, slice(1, n - 1))
        red_head = _axis_slice(ndim, axis, slice(0, 1))
        red_tail = _axis_slice(ndim, axis, slice(n - 2, n - 1))
        red_lo = _axis_slice(ndim, axis, slice(0, n - 2))
        red_hi = _axis_slice(ndim, axis, slice(1, n - 1))
        if not wrote:
            np.negative(q[red_head], out=out[first])
            np.negative(p[red_tail], out=out[last])
            both = d[red_lo]
            np.add(p[red_lo], q[red_hi], out=both)
            np.negative(both, out=out[interior])
            wrote = True
        else:
            out[first] -= q[red_head]
            out[last] -= p[red_tail]
            both = d[red_lo]
            np.add(p[red_lo], q[red_hi], out=both)
            out[interior] -= both
    if not wrote:  # degenerate 1x1x1 patch: uniform field, zero tendency
        out[...] = 0.0
    return out


def _clip(block: np.ndarray, clip_slices: tuple[slice, ...]) -> None:
    for sl in clip_slices:
        view = block[..., sl]
        np.maximum(view, 0.0, out=view)


def _mask_from_slices(
    nscalars: int, clip_slices: tuple[slice, ...]
) -> np.ndarray:
    mask = np.zeros(nscalars, dtype=np.uint8)
    for sl in clip_slices:
        mask[sl] = 1
    return mask


def fused_euler_advect(
    block: np.ndarray,
    split: WindSplit,
    dt: float,
    ws: TransportWorkspace,
    clip_slices: tuple[slice, ...] = (),
) -> np.ndarray:
    """Single-Euler-stage donor-cell update of the superblock.

    Mirrors the per-field ``arr += dt * rk_scalar_tend(arr, split)``
    (then per-field clipping) for every packed scalar at once, and
    returns the advected block. With the compiled stencil available
    the update is one fused out-of-place loop nest and the returned
    array is the workspace's ``tend`` buffer; the numpy fallback
    updates ``block`` in place and returns it. Either way the caller
    unpacks from the returned array.
    """
    lib = cstencil.load_stencil()
    with tracer.span("advect_euler", cat="kernel") as sp:
        if sp is not None:
            sp.set(compiled=lib is not None, nscalars=block.shape[-1])
        if lib is not None:
            out = ws.buffer("tend", block.shape)
            mask = _mask_from_slices(block.shape[-1], clip_slices)
            cstencil.advect_stage(
                lib, block, block, out, split.pos, split.neg, dt, mask,
                do_clip=bool(clip_slices),
            )
            return out
        tend = ws.buffer("tend", block.shape)
        fused_upwind_tend(block, split, tend, ws)
        np.multiply(tend, dt, out=tend)
        block += tend
        _clip(block, clip_slices)
        return block


def _member_split(split: WindSplit, m: int) -> WindSplit:
    """Member ``m``'s view of a member-stacked wind decomposition."""
    return WindSplit(
        pos=tuple(p[m] for p in split.pos),  # type: ignore[arg-type]
        neg=tuple(n[m] for n in split.neg),  # type: ignore[arg-type]
    )


def fused_euler_advect_members(
    block: np.ndarray,
    split: WindSplit,
    dt: float,
    ws: TransportWorkspace,
    clip_slices: tuple[slice, ...] = (),
) -> np.ndarray:
    """Euler donor-cell update of an ``(nm, ni, nk, nj, ns)`` stack.

    ``split`` holds member-stacked ``(nm, ni, nk, nj)`` wind
    decompositions (``WindSplit.build`` is elementwise, so building it
    on stacked winds equals the per-member builds bit for bit). With
    the compiled stencil this is ONE C call for all members; member
    ``m`` of the returned stack equals a solo
    :func:`fused_euler_advect` of that member exactly. The numpy
    fallback loops members over the solo path (same arrays, same ops).
    ``ws`` must be the ensemble workspace sized for the stacked block.
    """
    lib = cstencil.load_stencil()
    nm = block.shape[0]
    with tracer.span("advect_euler_members", cat="kernel") as sp:
        if sp is not None:
            sp.set(
                compiled=lib is not None,
                nscalars=block.shape[-1],
                members=nm,
            )
        if lib is not None:
            out = ws.buffer("tend", block.shape)
            mask = _mask_from_slices(block.shape[-1], clip_slices)
            cstencil.advect_stage_members(
                lib, block, block, out, split.pos, split.neg, dt, mask,
                do_clip=bool(clip_slices),
            )
            return out
        for m in range(nm):
            fused_euler_advect(
                block[m], _member_split(split, m), dt,
                _member_fallback_workspace(ws, m), clip_slices,
            )
        return block


def fused_rk3_advect_members(
    block: np.ndarray,
    split: WindSplit,
    dt: float,
    ws: TransportWorkspace,
    clip_slices: tuple[slice, ...] = (),
) -> np.ndarray:
    """RK3 update of an ensemble-stacked superblock (see Euler variant)."""
    lib = cstencil.load_stencil()
    nm = block.shape[0]
    with tracer.span("advect_rk3_members", cat="kernel") as sp:
        if sp is not None:
            sp.set(
                compiled=lib is not None,
                nscalars=block.shape[-1],
                members=nm,
            )
        if lib is not None:
            mask = _mask_from_slices(block.shape[-1], clip_slices)
            bufs = (
                ws.buffer("stage", block.shape),
                ws.buffer("tend", block.shape),
            )
            stage: np.ndarray = block
            for idx, frac in enumerate(RK3_FRACTIONS):
                out = bufs[idx % 2]
                last = idx == len(RK3_FRACTIONS) - 1
                cstencil.advect_stage_members(
                    lib, stage, block, out, split.pos, split.neg, dt * frac,
                    mask, do_clip=last and bool(clip_slices),
                )
                stage = out
            return stage
        for m in range(nm):
            fused_rk3_advect(
                block[m], _member_split(split, m), dt,
                _member_fallback_workspace(ws, m), clip_slices,
            )
        return block


def _member_fallback_workspace(
    ws: TransportWorkspace, m: int
) -> TransportWorkspace:
    """A per-member workspace for the numpy fallback of the member path.

    The fallback must run the exact solo numpy kernels per member;
    giving each member its own registered workspace (keyed off the
    ensemble workspace's identity) keeps the buffer handling identical
    to a solo run.
    """
    shape3 = ws.shape[1:] if len(ws.shape) == 4 else ws.shape
    return get_workspace(
        shape3, ws.nscalars, dtype=ws.dtype, owner=("member", id(ws), m)
    )


def fused_rk3_advect(
    block: np.ndarray,
    split: WindSplit,
    dt: float,
    ws: TransportWorkspace,
    clip_slices: tuple[slice, ...] = (),
) -> np.ndarray:
    """WRF-ARW's three-stage RK3 update of the superblock.

    The stage recurrence ``phi* = phi0 + (dt*frac) L(stage)`` runs on
    the workspace's buffers — no per-stage allocations — with the same
    stage fractions and operation order as
    :func:`repro.wrf.dynamics.rk3_advect`, returning the advected
    block (a workspace buffer on the compiled path, ``block`` itself
    on the numpy fallback).
    """
    lib = cstencil.load_stencil()
    with tracer.span("advect_rk3", cat="kernel") as sp:
        if sp is not None:
            sp.set(compiled=lib is not None, nscalars=block.shape[-1])
        if lib is not None:
            # `block` stays untouched and serves as phi0; the two stage
            # outputs ping-pong between the stage/tend buffers.
            mask = _mask_from_slices(block.shape[-1], clip_slices)
            bufs = (
                ws.buffer("stage", block.shape),
                ws.buffer("tend", block.shape),
            )
            stage: np.ndarray = block
            for idx, frac in enumerate(RK3_FRACTIONS):
                out = bufs[idx % 2]
                last = idx == len(RK3_FRACTIONS) - 1
                cstencil.advect_stage(
                    lib, stage, block, out, split.pos, split.neg, dt * frac,
                    mask, do_clip=last and bool(clip_slices),
                )
                stage = out
            return stage
        phi0 = ws.buffer("phi0", block.shape)
        phi0[...] = block
        stage_buf = ws.buffer("stage", block.shape)
        tend = ws.buffer("tend", block.shape)
        stage = block
        for frac in RK3_FRACTIONS:
            fused_upwind_tend(stage, split, tend, ws)
            np.multiply(tend, dt * frac, out=stage_buf)
            stage_buf += phi0
            stage = stage_buf
        block[...] = stage
        _clip(block, clip_slices)
        return block
