"""Synthetic CONUS-12km thunderstorm case (the paper's test input).

We have no access to the real CONUS-12km wrfinput; this builder creates
a statistically similar situation on the same index extents: a
conditionally unstable continental sounding with a population of warm,
moist bubbles (incipient thunderstorms) scattered over a CONUS-like
band of the domain, plus initial cloud water where the bubbles are
strongest. The bubbles are seeded from the *global* grid coordinates,
so every rank reconstructs the identical case regardless of the
decomposition — decompositions of the same seed are bitwise consistent.

The spatial clustering is what produces the FSBM load imbalance the
paper discusses (Sec. VIII): patches over the storm band have many
active cells, others few.
"""

from __future__ import annotations

from dataclasses import dataclass, fields as dataclass_fields, replace

import numpy as np

from repro.errors import ConfigurationError

from repro.fsbm.state import MicroState
from repro.grid.domain import DomainSpec, Patch
from repro.wrf.state import WrfFields


@dataclass(frozen=True)
class CaseConfig:
    """Tunable parameters of the synthetic thunderstorm case."""

    #: Storm (bubble) count per 10^4 horizontal cells.
    bubbles_per_1e4_cells: float = 24.0
    #: Peak potential-temperature excess of a bubble [K].
    bubble_dtheta: float = 3.0
    #: Bubble horizontal radius [cells].
    bubble_radius: float = 8.0
    #: Bubble vertical center/extent [levels].
    bubble_k_center: float = 7.0
    bubble_k_radius: float = 6.0
    #: Moisture enhancement factor inside bubbles.
    moisture_boost: float = 1.35
    #: Initial liquid water content at bubble cores [g/cm^3].
    cloud_lwc: float = 1.5e-6
    #: Bubble strength above which initial cloud water is seeded.
    cloud_threshold: float = 0.12
    #: Mesoscale convective systems the bubbles cluster into.
    systems_per_1e5_cells: float = 6.0
    #: Cluster radius [cells].
    system_spread_cells: float = 22.0
    #: Fraction of the j-extent covered by the storm band.
    band_lo: float = 0.2
    band_hi: float = 0.8
    #: Background westerlies [m/s] and vertical shear [m/s per level].
    u_base: float = 8.0
    u_shear: float = 0.25
    #: Background CCN reservoir [cm^-3] (continental default; ensemble
    #: members perturb it to explore aerosol sensitivity).
    ccn_background: float = 100.0


def member_case_config(deltas: tuple) -> tuple["CaseConfig", int]:
    """Resolve one ensemble member's ``(CaseConfig, seed_offset)``.

    ``deltas`` is a tuple of ``(name, value)`` pairs: names are
    :class:`CaseConfig` fields (sounding/bubble/moisture/CCN knobs) or
    the special ``seed_offset`` key, which shifts the namelist seed so
    the member draws a different storm population. An empty tuple is
    the unperturbed base case — bit-identical to passing no config.
    """
    valid = {f.name for f in dataclass_fields(CaseConfig)}
    kwargs: dict[str, float] = {}
    seed_offset = 0
    for name, value in deltas:
        if name == "seed_offset":
            seed_offset = int(value)
        elif name in valid:
            kwargs[name] = value
        else:
            raise ConfigurationError(
                f"unknown member delta {name!r} (CaseConfig fields or "
                f"'seed_offset')"
            )
    cfg = replace(CaseConfig(), **kwargs) if kwargs else CaseConfig()
    return cfg, seed_offset


def _bubble_centers(
    domain: DomainSpec, cfg: CaseConfig, seed: int
) -> np.ndarray:
    """Global bubble centers (i, j) — identical on every rank.

    Bubbles cluster around a handful of mesoscale convective systems
    (as on a real CONUS thunderstorm day) rather than spreading
    uniformly: that clustering is the source of the strong per-patch
    load imbalance the paper discusses in Sec. VIII.
    """
    rng = np.random.default_rng(seed)
    n_cells = domain.nx * domain.ny
    n_bubbles = max(1, round(cfg.bubbles_per_1e4_cells * n_cells / 1.0e4))
    n_systems = max(1, round(cfg.systems_per_1e5_cells * n_cells / 1.0e5))
    sys_i = rng.uniform(0.1 * domain.nx, 0.9 * domain.nx, size=n_systems)
    sys_j = rng.uniform(
        cfg.band_lo * domain.ny, cfg.band_hi * domain.ny, size=n_systems
    )
    which = rng.integers(0, n_systems, size=n_bubbles)
    spread = cfg.system_spread_cells
    ci = np.clip(sys_i[which] + rng.normal(0.0, spread, n_bubbles), 1, domain.nx)
    cj = np.clip(sys_j[which] + rng.normal(0.0, spread, n_bubbles), 1, domain.ny)
    amp = rng.uniform(0.5, 1.0, size=n_bubbles)
    return np.stack([ci, cj, amp], axis=1)


def conus12km_case(
    domain: DomainSpec,
    patch: Patch,
    dz: float,
    seed: int = 2024,
    cfg: CaseConfig | None = None,
) -> WrfFields:
    """Build one rank's initial fields for the synthetic CONUS case."""
    cfg = cfg or CaseConfig()
    fields = WrfFields(patch=patch, dz=dz)
    ni, nk, nj = fields.shape

    # Global coordinates of this patch's memory extents.
    gi = np.arange(patch.im.start, patch.im.end + 1, dtype=float)
    gj = np.arange(patch.jm.start, patch.jm.end + 1, dtype=float)
    kk = np.arange(nk, dtype=float)

    centers = _bubble_centers(domain, cfg, seed)
    # Thermal perturbation field: sum of Gaussian bubbles.
    dtheta = np.zeros((ni, nj))
    for ci, cj, amp in centers:
        r2 = ((gi[:, None] - ci) ** 2 + (gj[None, :] - cj) ** 2) / cfg.bubble_radius**2
        dtheta += amp * np.exp(-r2)
    vert = np.exp(-((kk - cfg.bubble_k_center) ** 2) / cfg.bubble_k_radius**2)

    perturb = cfg.bubble_dtheta * dtheta[:, None, :] * vert[None, :, None]
    fields.t += perturb
    fields.qv *= 1.0 + (cfg.moisture_boost - 1.0) * np.minimum(
        dtheta[:, None, :] * vert[None, :, None], 1.0
    )

    # Background flow: sheared westerlies, weak southerly drift.
    fields.u += cfg.u_base + cfg.u_shear * kk[None, :, None]
    fields.v += 2.0

    # Seed cloud droplets where bubbles are strong (incipient cells).
    cloud_mask = (dtheta[:, None, :] * vert[None, :, None]) > cfg.cloud_threshold
    fields.micro.seed_cloud(cloud_mask, lwc=cfg.cloud_lwc)
    fields.micro.ccn[...] = cfg.ccn_background

    # Give the strongest cores an initial updraft so collisions begin
    # within the short timing runs, as in the mature-storm restart the
    # paper times.
    fields.w += 4.0 * dtheta[:, None, :] * vert[None, :, None]
    return fields


def activity_fraction(fields: WrfFields) -> float:
    """Fraction of owned cells carrying condensate (load-imbalance probe)."""
    owned = fields.owned(fields.micro.total_condensate_mass())
    return float((owned > 1.0e-12).mean())
