"""wrfout-style history files.

Real WRF writes netCDF through its I/O API; offline we serialize the
same field dictionary as a compressed ``.npz`` with a small attribute
header. ``diffwrf`` (Sec. VII-B) compares two of these files.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.errors import ConfigurationError


def write_wrfout(
    path: str | Path,
    fields: dict[str, np.ndarray],
    attrs: dict[str, object] | None = None,
) -> Path:
    """Write one history frame.

    ``attrs`` (title, simulated time, grid spacing, ...) is stored as a
    JSON side-array so the file stays a single artifact.
    """
    path = Path(path)
    if not fields:
        raise ConfigurationError("refusing to write an empty wrfout")
    payload = dict(fields)
    payload["__attrs__"] = np.frombuffer(
        json.dumps(attrs or {}).encode(), dtype=np.uint8
    )
    path.parent.mkdir(parents=True, exist_ok=True)
    np.savez_compressed(path, **payload)
    return path if path.suffix == ".npz" else path.with_suffix(path.suffix + ".npz")


def read_wrfout(path: str | Path) -> tuple[dict[str, np.ndarray], dict[str, object]]:
    """Read a history frame back as ``(fields, attrs)``."""
    path = Path(path)
    if not path.exists() and path.with_suffix(path.suffix + ".npz").exists():
        path = path.with_suffix(path.suffix + ".npz")
    with np.load(path) as data:
        attrs: dict[str, object] = {}
        fields: dict[str, np.ndarray] = {}
        for name in data.files:
            if name == "__attrs__":
                attrs = json.loads(bytes(data[name]).decode())
            else:
                fields[name] = data[name]
    return fields, attrs
