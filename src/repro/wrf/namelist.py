"""Run configuration, in the spirit of WRF's ``namelist.input``."""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.constants import (
    CONUS12KM_DT,
    CONUS12KM_DX,
    CONUS12KM_EXTENTS,
    CONUS12KM_RUN_SECONDS,
)
from repro.core.env import OffloadEnv
from repro.errors import ConfigurationError
from repro.grid.domain import DomainSpec
from repro.optim.stages import Stage


@dataclass(frozen=True)
class Namelist:
    """Everything needed to configure one WRF run."""

    domain: DomainSpec
    dt: float = CONUS12KM_DT
    run_seconds: float = CONUS12KM_RUN_SECONDS
    #: MPI ranks (``nproc_x * nproc_y``); factored automatically.
    num_ranks: int = 16
    #: OpenMP tiles per patch (threads per rank; the paper runs 1).
    numtiles: int = 1
    #: Optimization stage (code version) to run.
    stage: Stage = Stage.BASELINE
    #: GPUs available to the job (ranks round-robin onto them).
    num_gpus: int = 0
    #: Offload runtime environment (Table II).
    env: OffloadEnv = field(default_factory=OffloadEnv)
    #: Device arithmetic precision: "fp32" (WRF's default) or "fp64"
    #: (the paper's double-precision roofline points in Fig. 3).
    device_precision: str = "fp32"
    #: Also offload the condensation loops (Sec. VIII's in-progress
    #: extension). Requires a GPU stage.
    offload_condensation: bool = False
    #: Also offload the scalar-advection loops (the other "next target"
    #: of Sec. VIII). Requires a GPU stage.
    offload_advection: bool = False
    #: Integrate transport with the full three-stage RK3 (WRF's scheme)
    #: instead of the default single-Euler-stage numerics. The charged
    #: cost is RK3 either way; this flag affects only the numerics.
    use_rk3_numerics: bool = False
    #: Advect all scalars through the fused superblock engine
    #: (:mod:`repro.wrf.transport`): one sliced in-place stencil sweep
    #: over the stacked ``(ni, nk, nj, nscalar)`` block using
    #: preallocated workspace buffers — the host analog of the paper's
    #: stage-3 ``map(alloc:)`` + full-``collapse`` transformation.
    #: ``False`` keeps the per-field reference loop; the two agree to
    #: ~1e-14 and charge identical simulated cost.
    use_fused_transport: bool = True
    #: Keep the advected scalars resident in one persistent per-rank
    #: superblock (:meth:`repro.wrf.state.WrfFields.bind_block`): the
    #: fields become views into the ``(ni, nk, nj, nscalar)`` block, so
    #: the per-step transport pack is a no-op and moment reductions
    #: contract all species at once — the host analog of keeping data
    #: mapped on the device between kernels. ``False`` keeps per-field
    #: storage with an explicit pack/unpack each step.
    use_superblock_fields: bool = True
    #: Run the physics hot loops through the compiled C kernels of
    #: :mod:`repro.fsbm.ckernels` (fused sedimentation sweep, remap
    #: scatter) when a C compiler is available; falls back to the numpy
    #: reference transparently (also forced by ``REPRO_DISABLE_CPHYS``
    #: or ``REPRO_DISABLE_CJIT``). Results are bit-identical.
    use_native_physics: bool = True
    #: Batch the sparse collision interactions into stacked GEMMs over
    #: a persistent :class:`repro.fsbm.coal_bott.CoalWorkspace` instead
    #: of per-operator matvecs. Agrees with the unbatched path to BLAS
    #: blocking differences (~1e-12 relative after the cascade).
    #: Measured neutral-to-slightly-slower on a single core at CONUS
    #: scale (the widened-operand traffic offsets the dispatch savings)
    #: so it defaults off; threaded BLAS favors the fewer, wider GEMMs.
    use_batched_coal: bool = False
    #: Execute per-rank CPU stages on a thread pool between halo
    #: exchanges. Ranks are independent within a stage (physics and
    #: transport each touch only their own patch, clock, and FSBM
    #: driver, and numpy releases the GIL in the hot kernels), so the
    #: numerics and the per-rank simulated-time charges are identical
    #: to serial execution — only host wall-clock changes. GPU stages
    #: always run serial because ranks share the simulated GPU pool.
    rank_batching: bool = True
    #: Promote ranks to real OS processes: each rank becomes a
    #: persistent worker owning its patch of a shared-memory superblock
    #: pool (:mod:`repro.wrf.procpool`), stepped in lockstep over a
    #: command-pipe/barrier protocol, with halo exchange performed as
    #: strided copies directly between neighboring ranks' shared
    #: blocks. Numerics and per-rank simulated-clock charges are
    #: bit-identical to the thread-pool path; only host wall-clock
    #: changes (CPU stages actually run concurrently across cores
    #: instead of time-slicing one interpreter). GPU/offload stages
    #: fall back to the thread path (ranks share the simulated GPU
    #: pool), as does ``REPRO_DISABLE_PROCPOOL=1``.
    use_process_ranks: bool = False
    #: Record wall-clock spans into the :mod:`repro.obs` tracer
    #: (physics/pack/halo/transport per rank, JIT builds, history I/O),
    #: mirroring the SimClock region names so simulated and measured
    #: time line up. Off by default; ``REPRO_TRACE=1`` also enables it
    #: process-wide. Tracing never touches numerics or simulated
    #: clocks — the exact-equality suites pass with it on.
    trace: bool = False
    #: History write interval [s] (0 disables history).
    history_interval: float = 0.0
    #: Directory for on-disk wrfout files (None keeps frames in memory).
    history_path: str | None = None
    #: Random seed for the synthetic case (shared by all ranks).
    seed: int = 2024
    #: Ensemble members stepped together. ``1`` is a plain run;
    #: ``N > 1`` runs through :class:`repro.wrf.ensemble.EnsembleModel`,
    #: which stacks all members into one per-rank ``(N, ni, nk, nj,
    #: nscalar)`` superblock and sweeps them in fused member-batched
    #: kernels. Member ``m`` of a batched run is bit-identical to a
    #: solo run of :func:`member_namelist`\ ``(nl, m)``.
    members: int = 1
    #: Per-member scenario perturbations: entry ``m`` is a tuple of
    #: ``(name, value)`` pairs applied to member ``m``'s synthetic case
    #: (:class:`repro.wrf.cases.CaseConfig` fields such as
    #: ``bubble_dtheta``/``moisture_boost``/``ccn_background``, or the
    #: special key ``seed_offset`` added to :attr:`seed`). Members past
    #: the end of the tuple run the unperturbed base case. Tuples (not
    #: dicts) keep the namelist hashable.
    member_deltas: tuple = ()

    def __post_init__(self) -> None:
        if self.dt <= 0 or self.run_seconds <= 0:
            raise ConfigurationError("dt and run_seconds must be positive")
        if self.num_ranks < 1:
            raise ConfigurationError("need at least one rank")
        if self.members < 1:
            raise ConfigurationError("need at least one ensemble member")
        if len(self.member_deltas) > self.members:
            raise ConfigurationError(
                f"{len(self.member_deltas)} member_deltas entries for "
                f"{self.members} members"
            )
        for deltas in self.member_deltas:
            for pair in deltas:
                if len(pair) != 2 or not isinstance(pair[0], str):
                    raise ConfigurationError(
                        "member_deltas entries must be (name, value) pairs"
                    )
        if self.stage.uses_gpu and self.num_gpus < 1:
            raise ConfigurationError(
                f"stage {self.stage.value} needs at least one GPU"
            )
        if self.device_precision not in ("fp32", "fp64"):
            raise ConfigurationError("device_precision must be fp32 or fp64")
        if (self.offload_condensation or self.offload_advection) and (
            not self.stage.uses_gpu
        ):
            raise ConfigurationError(
                "condensation/advection offload requires a GPU stage"
            )

    @property
    def num_steps(self) -> int:
        """Model steps in the run."""
        return max(1, round(self.run_seconds / self.dt))

    def with_stage(self, stage: Stage, num_gpus: int | None = None) -> "Namelist":
        """Copy with a different code version (and GPU count)."""
        gpus = self.num_gpus if num_gpus is None else num_gpus
        if stage.uses_gpu and gpus == 0:
            gpus = self.num_ranks
        return replace(self, stage=stage, num_gpus=gpus)

    def with_ranks(self, num_ranks: int, num_gpus: int | None = None) -> "Namelist":
        """Copy with a different rank/GPU layout (Sec. VII-A sweeps)."""
        return replace(
            self,
            num_ranks=num_ranks,
            num_gpus=self.num_gpus if num_gpus is None else num_gpus,
        )


def deltas_for_member(namelist: Namelist, member: int) -> tuple:
    """Member ``member``'s case perturbations (empty past the tuple)."""
    if member < 0 or member >= namelist.members:
        raise ConfigurationError(
            f"member {member} out of range for {namelist.members} members"
        )
    if member < len(namelist.member_deltas):
        return tuple(namelist.member_deltas[member])
    return ()


def member_namelist(base: Namelist, member: int) -> Namelist:
    """The solo (``members=1``) namelist equivalent to one member.

    A plain :class:`repro.wrf.model.WrfModel` run of the returned
    namelist is the bitwise reference for member ``member`` of the
    batched ensemble — same perturbed case, same switches, same
    charges.
    """
    deltas = deltas_for_member(base, member)
    return replace(
        base,
        members=1,
        member_deltas=(deltas,) if deltas else (),
    )


def conus12km_namelist(scale: float = 1.0, **overrides) -> Namelist:
    """The paper's CONUS-12km configuration, optionally shrunk.

    ``scale`` reduces the horizontal extents (see
    ``DomainSpec.scaled``); the full case is ``scale=1`` with extents
    425 x 300 x 50.
    """
    nx, ny, nz = CONUS12KM_EXTENTS
    domain = DomainSpec(nx=nx, nz=nz, ny=ny, dx=CONUS12KM_DX).scaled(scale)
    return Namelist(domain=domain, **overrides)
