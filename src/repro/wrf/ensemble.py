"""Member-batched ensemble execution over stacked superblocks.

One :class:`EnsembleModel` steps N perturbed scenarios (ensemble
members) of the same domain together. Each rank's transport superblock
grows a leading member axis — ``(N, ni, nk, nj, nscalar)``,
C-contiguous, so ``block[m]`` has exactly the layout a solo run's
resident block has — and the fused engines sweep all members in one
kernel invocation per stage:

* transport runs the member-batched stencil
  (:func:`repro.wrf.transport.fused_euler_advect_members` /
  ``fused_rk3_advect_members`` over one stacked
  :class:`~repro.wrf.dynamics.WindSplit`),
* microphysics runs :func:`repro.fsbm.fast_sbm.step_members` (stacked
  gathers, one nucleation call, member-segmented condensation and
  collisions, one fused sedimentation sweep),
* the halo exchange is the same per-segment strided copy with the
  member axis riding along.

Step-invariant precompute — courant ladders, coal operators, pair
splits, lookup tables — is shared across members automatically through
the existing :class:`~repro.core.cache.CountingCache` registries: every
member hits the same keys, so N members warm each cache once.

Per-member correctness is non-negotiable and exact: member ``m`` of a
batched run is **bit-identical** — fields, per-rank
:class:`~repro.core.clock.SimClock` charges, history frames — to a solo
:class:`~repro.wrf.model.WrfModel` run of
:func:`repro.wrf.namelist.member_namelist`\\ ``(nl, m)``. The batching
discipline that guarantees this (shared elementwise ops and gathers,
per-member BLAS calls — see :mod:`repro.fsbm.fast_sbm`) is enforced by
the exact-equality suite in ``tests/wrf/test_ensemble.py``.

``REPRO_DISABLE_ENSEMBLE=1`` is the kill switch: the model degenerates
to N independent solo models stepped sequentially (identical results,
no batching). Under ``namelist.use_process_ranks`` the stacked blocks
live in the shared-memory segments of :mod:`repro.wrf.procpool` and
each worker steps all members of its rank, with member-sliced gathers
over the existing command pipes.
"""

from __future__ import annotations

import os
from concurrent.futures import ThreadPoolExecutor
from contextlib import ExitStack
from dataclasses import dataclass, field

import numpy as np

from repro.core.clock import SimClock, TimeBucket
from repro.errors import ConfigurationError
from repro.fsbm.fast_sbm import FastSBM, SbmStepStats, step_members
from repro.fsbm.species import Species
from repro.fsbm.state import MicroState
from repro.grid.decomposition import Decomposition, decompose_domain
from repro.grid.halo import HaloExchangePlan, build_halo_plan
from repro.grid.indexing import owned_slice
from repro.mpi.scheduler import RankStepCharge, StepScheduler
from repro.obs import metrics, tracer
from repro.wrf.dynamics import (
    FLOPS_PER_CELL_TEND,
    FLOPS_PER_CELL_UPDATE,
    RK3_FRACTIONS,
    WindSplit,
    buoyancy_w_update,
)
from repro.wrf.model import (
    IO_BANDWIDTH,
    RunResult,
    StepTiming,
    WrfModel,
    build_rank_fields,
    build_rank_sbm,
    charge_halo_mpi,
    cost_models,
    rank_output_frame,
    transport_charges,
    _transport_numerics,
)
from repro.wrf.namelist import Namelist, member_namelist
from repro.wrf.state import WrfFields, superblock_scalar_count
from repro.wrf.transport import (
    TransportWorkspace,
    fused_euler_advect_members,
    fused_rk3_advect_members,
    get_workspace,
)


def ensemble_disabled() -> str | None:
    """Why member batching is disabled in this environment, or ``None``.

    ``REPRO_DISABLE_ENSEMBLE`` is the kill switch: any non-empty value
    makes :class:`EnsembleModel` fall back to stepping N independent
    solo models sequentially (bit-identical results, no batching).
    """
    if os.environ.get("REPRO_DISABLE_ENSEMBLE", ""):
        return "REPRO_DISABLE_ENSEMBLE is set"
    return None


# --- per-rank ensemble state --------------------------------------------------


@dataclass
class RankEnsemble:
    """One rank's stacked member state and its cached owned views.

    The stacked ``block`` is the only storage for the advected scalars;
    each member's :class:`~repro.wrf.state.WrfFields` is bound into its
    ``block[m]`` slab, so the per-member views a solo run would see are
    exactly the slab's columns. Non-advected per-member arrays (winds,
    CCN, precip) live in member-stacked side arrays with the member
    fields rebound as views, which is what lets transport build one
    stacked :class:`~repro.wrf.dynamics.WindSplit` and microphysics
    gather all members with one boolean mask.
    """

    rank: int
    patch: object
    block: np.ndarray
    fields: list[WrfFields]
    clocks: list[SimClock]
    sbms: list[FastSBM]
    workspace: TransportWorkspace
    u: np.ndarray
    v: np.ndarray
    ccn: np.ndarray
    precip: np.ndarray
    #: Owned-region views for the member-batched physics call.
    states: list[MicroState] = field(default_factory=list)
    dists_o: dict = field(default_factory=dict)
    t_o: np.ndarray = None  # type: ignore[assignment]
    qv_o: np.ndarray = None  # type: ignore[assignment]
    ccn_o: np.ndarray = None  # type: ignore[assignment]
    precip_o: np.ndarray = None  # type: ignore[assignment]
    p_o: np.ndarray = None  # type: ignore[assignment]
    rho_o: np.ndarray = None  # type: ignore[assignment]
    pressure_levels: list = field(default_factory=list)
    w_start: int = 0
    clip_slices: tuple = ()


def build_rank_ensemble(
    namelist: Namelist,
    rank: int,
    patch,
    block: np.ndarray,
    clocks: list[SimClock],
    cpu_cost,
) -> RankEnsemble:
    """Construct one rank's member-stacked state inside ``block``.

    ``block`` is the rank's ``(N, ni, nk, nj, nscalar)`` stacked
    superblock (driver-allocated, or a view over the rank's shared-
    memory segment under process ranks). Member ``m``'s fields are
    built from its perturbed case and bound into ``block[m]`` — the
    same values, layout, and strides a solo resident run of that member
    would hold.
    """
    nm = namelist.members
    shape = patch.shape
    fields: list[WrfFields] = []
    u = np.empty((nm, *shape))
    v = np.empty((nm, *shape))
    ccn = np.empty((nm, *shape))
    precip = np.empty((nm, shape[0], shape[2]))
    for m in range(nm):
        f = build_rank_fields(namelist, rank, patch, member=m)
        f.bind_block(buffer=block[m])
        # Rebind the non-advected per-member arrays as views into the
        # member-stacked side arrays (values unchanged — plain copies).
        u[m] = f.u
        f.u = u[m]
        v[m] = f.v
        f.v = v[m]
        ccn[m] = f.micro.ccn
        f.micro.ccn = ccn[m]
        precip[m] = f.micro.precip
        f.micro.precip = precip[m]
        fields.append(f)
    sbms = [build_rank_sbm(namelist, clocks[m], cpu_cost) for m in range(nm)]
    workspace = get_workspace(
        (nm, *shape),
        fields[0].scalar_count(),
        fields[0].t.dtype,
        owner=("ensemble", rank),
    )
    sl = owned_slice(patch)
    slices = fields[0].layout.slices()
    ens = RankEnsemble(
        rank=rank,
        patch=patch,
        block=block,
        fields=fields,
        clocks=clocks,
        sbms=sbms,
        workspace=workspace,
        u=u,
        v=v,
        ccn=ccn,
        precip=precip,
    )
    ens.states = [f.micro.view(sl) for f in fields]
    ens.dists_o = {
        sp: block[(slice(None), *sl, slices[f"bin_{sp.value}"])]
        for sp in Species
    }
    ens.t_o = block[(slice(None), *sl, slices["t"].start)]
    ens.qv_o = block[(slice(None), *sl, slices["qv"].start)]
    ens.ccn_o = ccn[(slice(None), *sl)]
    ens.precip_o = precip[:, sl[0], sl[2]]
    p_one = fields[0].pressure_mb[sl]
    ens.p_o = np.broadcast_to(p_one[None], (nm, *p_one.shape))
    rho_one = fields[0].rho[sl]
    ens.rho_o = np.broadcast_to(rho_one[None], (nm, *rho_one.shape))
    # Static base state: the per-member column a solo run recomputes
    # every step, precomputed once (identical floats).
    ens.pressure_levels = [f.pressure_mb[sl].mean(axis=(0, 2)) for f in fields]
    ens.w_start = slices["w"].start
    ens.clip_slices = fields[0].layout.clip_slices(no_clip=("t", "w"))
    return ens


# --- per-rank ensemble stages -------------------------------------------------
#
# Module-level like the solo stages in repro.wrf.model, and for the
# same reason: the driver's serial/thread paths and the procpool
# workers run these exact functions in the same per-rank order, which
# is what keeps all execution modes bit-identical.


def physics_rank_members(
    namelist: Namelist, ens: RankEnsemble
) -> list[SbmStepStats]:
    """Member-batched microphysics on one rank's owned cells."""
    with tracer.span("physics", cat="physics") as sp:
        stats = step_members(
            ens.sbms,
            ens.states,
            ens.dists_o,
            ens.ccn_o,
            ens.precip_o,
            ens.t_o,
            ens.p_o,
            ens.qv_o,
            ens.rho_o,
            namelist.domain.dz * 100.0,
            pressure_levels=ens.pressure_levels,
        )
        if sp is not None:
            sp.set(
                members=len(stats),
                mp_points=sum(s.mp_points for s in stats),
                coal_points=sum(s.coal_points for s in stats),
            )
    return stats


def transport_rank_members(
    namelist: Namelist, cpu_cost, ens: RankEnsemble
) -> None:
    """Charge per-member RK3 cost, then run the batched numerics."""
    for f, clock in zip(ens.fields, ens.clocks):
        transport_charges(namelist, cpu_cost, f, clock)
    transport_numerics_members(namelist, ens)


def transport_numerics_members(namelist: Namelist, ens: RankEnsemble) -> None:
    """Traced member-batched transport numerics for one rank."""
    with tracer.span("transport", cat="transport") as sp:
        _transport_numerics_members(namelist, ens)
        if sp is not None:
            nm, ni, nk, nj, ns = ens.block.shape
            cell_scalars = float(nm * ni * nk * nj * ns)
            stages = len(RK3_FRACTIONS) if namelist.use_rk3_numerics else 1
            sp.set(
                flops=cell_scalars
                * stages
                * (FLOPS_PER_CELL_TEND + FLOPS_PER_CELL_UPDATE),
                bytes=2.0 * stages * cell_scalars * ens.block.itemsize,
                fused=namelist.use_fused_transport,
                members=nm,
            )


def _transport_numerics_members(namelist: Namelist, ens: RankEnsemble) -> None:
    """Advect all members' scalars; apply per-member buoyancy updates.

    The fused path advects the whole stacked block in one member-
    batched stencil call over one stacked wind decomposition (both
    elementwise in the member axis, so member ``m``'s result is
    bitwise the solo fused result). The reference path falls back to
    the solo per-member numerics verbatim. The trailing buoyancy update
    stays per member either way — it contracts each member's packed
    bins (a BLAS call, which must not see other members' rows).
    """
    block = ens.block
    dt = namelist.dt
    if namelist.use_fused_transport:
        dx = namelist.domain.dx
        dz = namelist.domain.dz
        w_col = block[..., ens.w_start]
        split = WindSplit.build(ens.u, ens.v, w_col, dx, dz)
        if namelist.use_rk3_numerics:
            result = fused_rk3_advect_members(
                block, split, dt, ens.workspace, ens.clip_slices
            )
        else:
            result = fused_euler_advect_members(
                block, split, dt, ens.workspace, ens.clip_slices
            )
        if result is not block:
            block[...] = result
        for f in ens.fields:
            condensate = f.micro.total_condensate_mass()
            buoyancy_w_update(f.w, f.t, f.t_base_col, condensate, f.rho, dt)
    else:
        for m, f in enumerate(ens.fields):
            member_ws = get_workspace(
                f.shape,
                f.scalar_count(),
                f.t.dtype,
                owner=("ensemble-member", ens.rank, m),
            )
            _transport_numerics(namelist, f, member_ws, f.block)


# --- procpool worker context --------------------------------------------------


class EnsembleRankContext:
    """Everything one worker process owns for its rank's members.

    The ensemble analog of :class:`repro.wrf.procpool._RankContext`,
    constructed by the same worker entry when ``namelist.members > 1``:
    the rank's shared segment holds the stacked ``(N, ni, nk, nj,
    nscalar)`` block, all members step together through the batched
    stages above, and the gather command is member-sliced — the driver
    asks for one member's frame at a time over the existing pipe.
    """

    def __init__(
        self,
        rank: int,
        namelist: Namelist,
        decomposition: Decomposition,
        seg_names: list[str],
        nscalars: int,
        barrier,
        timeout: float,
    ):
        from multiprocessing.shared_memory import SharedMemory

        self.rank = rank
        self.namelist = namelist
        self.barrier = barrier
        self.timeout = timeout
        self.num_ranks = namelist.num_ranks
        self.nscalars = nscalars
        tracer.configure_worker(rank, trace=namelist.trace)
        nm = namelist.members
        self.clocks = [SimClock() for _ in range(nm)]
        self.comm_cost, self.cpu_cost = cost_models(namelist)
        self.plan: HaloExchangePlan = build_halo_plan(decomposition)
        self._shms = [SharedMemory(name=n) for n in seg_names]
        self.blocks = [
            np.ndarray(
                (nm, *patch.shape, nscalars), dtype=np.float64, buffer=shm.buf
            )
            for patch, shm in zip(decomposition.patches, self._shms)
        ]
        self.ens = build_rank_ensemble(
            namelist,
            rank,
            decomposition.patches[rank],
            self.blocks[rank],
            self.clocks,
            self.cpu_cost,
        )

    def step(self):
        """One member-batched step for this rank; peers step concurrently.

        Identical per-member stage sequence (and so identical per-clock
        charge order) to the solo worker: physics, halo MPI charges,
        transport, with the two barriers bracketing the shared-memory
        pull exchange exactly as in the solo path.
        """
        nm = self.namelist.members
        with ExitStack() as stack:
            for clock in self.clocks:
                stack.enter_context(clock.region("solve_em"))
            stats = physics_rank_members(self.namelist, self.ens)
            self.barrier.wait(self.timeout)
            with tracer.span("halo_exchange", cat="mpi") as sp:
                points = 0
                for m in range(nm):
                    points += self.plan.apply_pull(
                        self.rank, [b[m] for b in self.blocks]
                    )
                if sp is not None:
                    sp.set(
                        bytes=points * self.nscalars * 8,
                        pull=True,
                        members=nm,
                    )
            for clock in self.clocks:
                charge_halo_mpi(
                    self.plan,
                    self.comm_cost,
                    clock,
                    self.rank,
                    nscalars=self.nscalars,
                    itemsize=8,
                    num_ranks=self.num_ranks,
                )
            self.barrier.wait(self.timeout)
            transport_rank_members(self.namelist, self.cpu_cost, self.ens)
        metrics.emit_cache_counters(self.rank)
        return [(stats[m], *self.clocks[m].state()) for m in range(nm)]

    def charge_io(self, charges: list[float], member: int = 0):
        """Apply one member's ordered I/O charges; return its totals."""
        for seconds in charges:
            self.clocks[member].advance(TimeBucket.IO, seconds)
        return self.clocks[member].state()

    def gather(self, member: int = 0) -> dict[str, np.ndarray]:
        """Member-sliced gather: one member's owned output frame."""
        return rank_output_frame(self.ens.fields[member])

    def close(self) -> None:
        for shm in self._shms:
            try:
                shm.close()
            except BufferError:
                pass


# --- the driver ---------------------------------------------------------------


class EnsembleModel:
    """N perturbed scenarios of one configured WRF job, batched.

    The ensemble counterpart of :class:`~repro.wrf.model.WrfModel`:
    ``namelist.members`` scenarios step together through member-batched
    kernels, and every per-member observable — fields, per-rank clock
    charges, history frames, step timings — is bit-identical to a solo
    run of that member's :func:`~repro.wrf.namelist.member_namelist`.

    CPU-only (GPU stages contend for the shared simulated pool and are
    out of scope for member batching) and requires resident superblock
    fields. :meth:`step` and :meth:`run` return per-member lists.
    """

    def __init__(self, namelist: Namelist):
        if (
            namelist.stage.uses_gpu
            or namelist.offload_condensation
            or namelist.offload_advection
        ):
            raise ConfigurationError(
                "ensemble member batching supports CPU stages only"
            )
        if not namelist.use_superblock_fields:
            raise ConfigurationError(
                "ensemble member batching requires use_superblock_fields"
            )
        self.namelist = namelist
        nm = namelist.members
        self._solo: list[WrfModel] | None = None
        if ensemble_disabled() is not None:
            # Kill switch: N independent solo models, stepped
            # sequentially — same results, no batching.
            self._solo = [
                WrfModel(member_namelist(namelist, m)) for m in range(nm)
            ]
            self.decomposition = self._solo[0].decomposition
            self.clocks = [mdl.clocks for mdl in self._solo]
            self.schedulers = [mdl.scheduler for mdl in self._solo]
            self.steps_done = 0
            return
        if namelist.trace:
            tracer.enable()
        self.decomposition: Decomposition = decompose_domain(
            namelist.domain, namelist.num_ranks
        )
        self.halo_plan: HaloExchangePlan = build_halo_plan(self.decomposition)
        #: ``clocks[m][rank]`` — one authoritative clock per (member, rank).
        self.clocks = [
            [SimClock() for _ in range(namelist.num_ranks)] for _ in range(nm)
        ]
        self.comm_cost, self.cpu_cost = cost_models(namelist)
        self.schedulers = [
            StepScheduler(nranks=namelist.num_ranks, gpu_pool=None)
            for _ in range(nm)
        ]

        # Multiprocess rank execution: the pool's shared segments are
        # sized for the stacked blocks, and each worker steps all of
        # its rank's members (fork happens before the driver builds
        # its mirror state, exactly as in the solo model).
        self._pool = None
        if namelist.use_process_ranks:
            from repro.wrf import procpool

            if procpool.procpool_disabled() is None:
                self._pool = procpool.ProcRankPool(
                    namelist, self.decomposition
                )

        nscalars = superblock_scalar_count()
        self.ranks: list[RankEnsemble] = []
        for rank, patch in enumerate(self.decomposition.patches):
            if self._pool is not None:
                block = self._pool.block_view(rank)
            else:
                block = np.empty((nm, *patch.shape, nscalars))
            self.ranks.append(
                build_rank_ensemble(
                    namelist,
                    rank,
                    patch,
                    block,
                    [self.clocks[m][rank] for m in range(nm)],
                    self.cpu_cost,
                )
            )

        self._executor: ThreadPoolExecutor | None = None
        if (
            self._pool is None
            and namelist.rank_batching
            and namelist.num_ranks > 1
        ):
            self._executor = ThreadPoolExecutor(
                max_workers=min(namelist.num_ranks, os.cpu_count() or 1),
                thread_name_prefix="rank",
            )

        self.steps_done = 0
        self._sim_time = 0.0
        self._last_history = 0.0

    # --- pieces of one step ---------------------------------------------------

    def _physics(self, rank: int) -> list[SbmStepStats]:
        with tracer.rank_scope(rank):
            return physics_rank_members(self.namelist, self.ranks[rank])

    def _transport(self, rank: int) -> None:
        with tracer.rank_scope(rank):
            transport_rank_members(
                self.namelist, self.cpu_cost, self.ranks[rank]
            )

    def _exchange_halos(self) -> None:
        """Refresh every member's halos; charge MPI per (member, rank).

        The same per-segment strided copies as the solo model with the
        member axis prepended — one copy moves a segment for all
        members — and the same per-rank charge walk applied to each
        member's clock, so each clock's advance sequence matches its
        solo run exactly.
        """
        patches = self.decomposition.patches
        blocks = [ens.block for ens in self.ranks]
        nm = self.namelist.members
        nscalars = blocks[0].shape[-1]
        itemsize = blocks[0].itemsize
        for rank in range(self.namelist.num_ranks):
            incoming = self.halo_plan.segments_to(rank)
            with tracer.rank_scope(rank):
                with tracer.span("halo_exchange", cat="mpi") as sp:
                    for seg in incoming:
                        src_sl = seg.src_slices(patches[seg.src])
                        dst_sl = seg.dst_slices(patches[rank])
                        blocks[rank][(slice(None), *dst_sl)] = blocks[
                            seg.src
                        ][(slice(None), *src_sl)]
                    if sp is not None:
                        sp.set(
                            bytes=nm
                            * sum(
                                s.num_points * nscalars * itemsize
                                for s in incoming
                            ),
                            segments=len(incoming),
                            members=nm,
                        )
        for rank in range(self.namelist.num_ranks):
            for m in range(nm):
                charge_halo_mpi(
                    self.halo_plan,
                    self.comm_cost,
                    self.clocks[m][rank],
                    rank,
                    nscalars,
                    itemsize,
                    self.namelist.num_ranks,
                )

    def _charge_io(self, member: int, charges: list[list[float]]) -> None:
        """Apply one member's per-rank ordered I/O charges."""
        if self._pool is not None:
            states = self._pool.charge_io(charges, member=member)
            for clock, state in zip(self.clocks[member], states):
                clock.restore(*state)
            return
        for clock, rank_charges in zip(self.clocks[member], charges):
            for seconds in rank_charges:
                clock.advance(TimeBucket.IO, seconds)

    def _maybe_history(
        self, force: bool = False
    ) -> list[dict[str, np.ndarray]] | None:
        """Write history for every member if due; charges per-member I/O."""
        interval = self.namelist.history_interval
        due = force or (
            interval > 0.0 and self._sim_time - self._last_history >= interval
        )
        if not due:
            return None
        self._last_history = self._sim_time
        frames: list[dict[str, np.ndarray]] = []
        for m in range(self.namelist.members):
            with tracer.span("history_io", cat="io") as sp:
                frame = self.gather_output(m)
                if self.namelist.history_path is not None:
                    from repro.wrf.io import write_wrfout

                    write_wrfout(
                        f"{self.namelist.history_path}/"
                        f"wrfout_d01_{self.steps_done:06d}_mem{m:02d}",
                        frame,
                        attrs={
                            "title": "repro CONUS-12km",
                            "sim_seconds": self._sim_time,
                            "stage": self.namelist.stage.value,
                            "dx": self.namelist.domain.dx,
                            "member": m,
                        },
                    )
                nbytes = sum(a.nbytes for a in frame.values())
                if sp is not None:
                    sp.set(
                        bytes=nbytes,
                        on_disk=self.namelist.history_path is not None,
                        member=m,
                    )
            local = int(nbytes / self.namelist.num_ranks)
            charges = [
                [self.comm_cost.p2p_time(rank, 0, local)]
                for rank in range(self.namelist.num_ranks)
            ]
            charges[0].append(nbytes / IO_BANDWIDTH)
            self._charge_io(m, charges)
            frames.append(frame)
        return frames

    def gather_output(self, member: int = 0) -> dict[str, np.ndarray]:
        """Assemble one member's domain-wide output fields."""
        dom = self.namelist.domain
        out = {
            "T": np.zeros((dom.nx, dom.nz, dom.ny)),
            "QVAPOR": np.zeros((dom.nx, dom.nz, dom.ny)),
            "W": np.zeros((dom.nx, dom.nz, dom.ny)),
            "QCLOUD_TOTAL": np.zeros((dom.nx, dom.nz, dom.ny)),
            "RAINNC": np.zeros((dom.nx, dom.ny)),
        }
        if self._solo is not None:
            return self._solo[member].gather_output()
        if self._pool is not None:
            frames = self._pool.gather(member=member)
        else:
            frames = [
                rank_output_frame(ens.fields[member]) for ens in self.ranks
            ]
        for patch, frame in zip(self.decomposition.patches, frames):
            sl = (
                patch.i.to_slice(1),
                patch.k.to_slice(1),
                patch.j.to_slice(1),
            )
            for name in ("T", "QVAPOR", "W", "QCLOUD_TOTAL"):
                out[name][sl] = frame[name]
            out["RAINNC"][patch.i.to_slice(1), patch.j.to_slice(1)] = frame[
                "RAINNC"
            ]
        return out

    # --- the loop -------------------------------------------------------------

    def _run_ranks(self, stage_fn) -> list:
        ranks = range(self.namelist.num_ranks)
        if self._executor is None:
            return [stage_fn(rank) for rank in ranks]
        return list(self._executor.map(stage_fn, ranks))

    def step(self) -> list[StepTiming]:
        """Advance all members by one model step; per-member timings."""
        if self._solo is not None:
            timings = [mdl.step() for mdl in self._solo]
            self.steps_done += 1
            return timings
        nm = self.namelist.members
        num_ranks = self.namelist.num_ranks
        before = [[c.snapshot() for c in row] for row in self.clocks]
        with tracer.span("solve_em", attrs=None) as sp:
            if sp is not None:
                sp.set(step=self.steps_done + 1, members=nm)
            if self._pool is not None:
                sbm_stats = self._step_procs()
            else:
                with ExitStack() as stack:
                    for row in self.clocks:
                        for clock in row:
                            stack.enter_context(clock.region("solve_em"))
                    stats_by_rank = self._run_ranks(self._physics)
                    self._exchange_halos()
                    self._run_ranks(self._transport)
                sbm_stats = [
                    [stats_by_rank[r][m] for r in range(num_ranks)]
                    for m in range(nm)
                ]
        self._sim_time += self.namelist.dt
        self.steps_done += 1
        self._maybe_history()

        timings: list[StepTiming] = []
        for m in range(nm):
            after = [c.snapshot() for c in self.clocks[m]]
            charges = [
                RankStepCharge.from_clock_delta(b, a)
                for b, a in zip(before[m], after)
            ]
            elapsed = self.schedulers[m].commit_step(charges)
            timings.append(
                StepTiming(
                    step=self.steps_done,
                    elapsed=elapsed,
                    charges=charges,
                    sbm_stats=sbm_stats[m],
                )
            )
        return timings

    def _step_procs(self) -> list[list[SbmStepStats]]:
        """One step across the worker processes; mirror all clocks."""
        assert self._pool is not None
        nm = self.namelist.members
        results = self._pool.step()
        sbm_stats: list[list[SbmStepStats]] = [[] for _ in range(nm)]
        for rank, member_payloads in enumerate(results):
            for m, (stats, buckets, regions) in enumerate(member_payloads):
                self.clocks[m][rank].restore(buckets, regions)
                sbm_stats[m].append(stats)
        return sbm_stats

    def run(
        self, num_steps: int | None = None, final_history: bool = False
    ) -> list[RunResult]:
        """Run all members; returns one :class:`RunResult` per member."""
        if self._solo is not None:
            return [
                mdl.run(num_steps, final_history) for mdl in self._solo
            ]
        steps = num_steps if num_steps is not None else self.namelist.num_steps
        nm = self.namelist.members
        timings: list[list[StepTiming]] = [[] for _ in range(nm)]
        histories: list[list[dict[str, np.ndarray]]] = [[] for _ in range(nm)]
        for _ in range(steps):
            for m, timing in enumerate(self.step()):
                timings[m].append(timing)
        if final_history:
            frames = self._maybe_history(force=True)
            if frames is not None:
                for m, frame in enumerate(frames):
                    histories[m].append(frame)
        return [
            RunResult(
                namelist=member_namelist(self.namelist, m),
                decomposition=self.decomposition,
                steps_run=steps,
                elapsed=self.schedulers[m].elapsed,
                step_timings=timings[m],
                rank_clocks=self.clocks[m],
                scheduler=self.schedulers[m],
                kernel_records=[
                    [] for _ in range(self.namelist.num_ranks)
                ],
                history=histories[m],
            )
            for m in range(nm)
        ]

    def close(self) -> None:
        """Release the rank executor, worker pool, or solo models."""
        if self._solo is not None:
            for mdl in self._solo:
                mdl.close()
            return
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None
        if self._pool is not None:
            self._pool.close()
            self._pool = None
