"""A WRF-ARW-shaped mini dynamical core hosting the FSBM scheme.

Reproduces the *computational* structure the paper's optimizations live
in: the domain/patch/tile decomposition of Fig. 1, an RK3 scalar
transport step built from ``rk_scalar_tend`` / ``rk_update_scalar``
(the other Table I hotspots), per-step halo exchanges for every
advected bin variable, microphysics calls per patch, and wrfout-style
history output with a ``diffwrf`` comparison tool (Sec. VII-B).

The momentum/pressure solver is replaced by a buoyancy-driven vertical
velocity and prescribed horizontal winds (documented substitution in
DESIGN.md): the paper's hot loops are transport and microphysics, both
of which are real here.
"""

from repro.wrf.namelist import Namelist
from repro.wrf.state import WrfFields, base_state_column
from repro.wrf.cases import conus12km_case, CaseConfig
from repro.wrf.model import WrfModel, StepTiming, RunResult
from repro.wrf.diffwrf import diffwrf, DiffField
from repro.wrf.diagnostics import storm_census, cape_field, StormCensus

__all__ = [
    "Namelist",
    "WrfFields",
    "base_state_column",
    "conus12km_case",
    "CaseConfig",
    "WrfModel",
    "StepTiming",
    "RunResult",
    "diffwrf",
    "DiffField",
    "storm_census",
    "cape_field",
    "StormCensus",
]
