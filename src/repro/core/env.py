"""Offload environment configuration (Table II of the paper).

Models the NVHPC runtime knobs the paper tuned:

* ``NV_ACC_CUDA_STACKSIZE`` — per-thread device stack (bytes). Raising
  it to 65536 was step one of fixing the ``collapse(3)`` launch failure.
* ``NV_ACC_CUDA_HEAPSIZE`` — device malloc heap. Automatic arrays in
  device subroutines draw from it.
* ``maxregcount`` — compiler register cap per thread (the paper's
  register-limiting ablation).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, replace
from typing import Mapping

from repro.errors import ConfigurationError

_SIZE_RE = re.compile(r"^\s*(\d+)\s*([KMG]i?B?)?\s*$", re.IGNORECASE)

_UNITS = {
    None: 1,
    "K": 1024,
    "KB": 1024,
    "KIB": 1024,
    "M": 1024**2,
    "MB": 1024**2,
    "MIB": 1024**2,
    "G": 1024**3,
    "GB": 1024**3,
    "GIB": 1024**3,
}


def parse_size(text: str | int) -> int:
    """Parse ``"64MB"``-style size strings the NVHPC runtime accepts."""
    if isinstance(text, int):
        return text
    m = _SIZE_RE.match(text)
    if not m:
        raise ConfigurationError(f"cannot parse size {text!r}")
    value = int(m.group(1))
    unit = m.group(2).upper() if m.group(2) else None
    return value * _UNITS[unit]


@dataclass(frozen=True, slots=True)
class OffloadEnv:
    """Runtime configuration for one rank's device context."""

    #: Per-thread device stack [bytes]. nvfortran default is small; the
    #: paper sets 65536 (Table II shows the typo'd 63336 — we keep the
    #: intended power of two and note the discrepancy in EXPERIMENTS.md).
    stack_bytes: int = 1024
    #: Device heap for in-kernel allocation [bytes]. Automatic arrays
    #: whose frame exceeds the stack draw from here; 32 MB is this
    #: model's default carve-out (Table II raises it to 64 MB).
    heap_bytes: int = 32 * 1024**2
    #: Compiler register cap per thread (None = uncapped).
    max_registers: int | None = None
    #: Default OpenMP target block size (nvfortran uses 128 threads).
    block_size: int = 128

    def __post_init__(self) -> None:
        if self.stack_bytes <= 0 or self.heap_bytes <= 0:
            raise ConfigurationError("stack/heap sizes must be positive")
        if self.block_size <= 0 or self.block_size % 32:
            raise ConfigurationError("block size must be a positive multiple of 32")
        if self.max_registers is not None and not 16 <= self.max_registers <= 255:
            raise ConfigurationError("maxregcount must be in [16, 255]")

    @classmethod
    def from_env(cls, env: Mapping[str, str]) -> "OffloadEnv":
        """Build from NVHPC-style environment variables."""
        kwargs: dict = {}
        if "NV_ACC_CUDA_STACKSIZE" in env:
            kwargs["stack_bytes"] = parse_size(env["NV_ACC_CUDA_STACKSIZE"])
        if "NV_ACC_CUDA_HEAPSIZE" in env:
            kwargs["heap_bytes"] = parse_size(env["NV_ACC_CUDA_HEAPSIZE"])
        if "MAXREGCOUNT" in env:
            kwargs["max_registers"] = int(env["MAXREGCOUNT"])
        return cls(**kwargs)

    def with_stack(self, stack_bytes: int | str) -> "OffloadEnv":
        """Copy with a different stack size."""
        return replace(self, stack_bytes=parse_size(stack_bytes))

    def with_registers(self, max_registers: int | None) -> "OffloadEnv":
        """Copy with a register cap (the -maxregcount ablation)."""
        return replace(self, max_registers=max_registers)


#: The configuration from Table II of the paper.
PAPER_ENV = OffloadEnv(stack_bytes=65536, heap_bytes=64 * 1024**2)
