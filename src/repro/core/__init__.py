"""The OpenMP-offload execution engine (the paper's porting substrate).

This package models what the NVHPC OpenMP runtime did for the paper's
Fortran: directive-driven kernel launches on a simulated A100 with data
mapping, occupancy, per-thread stack/heap accounting, and a calibrated
cost model that charges simulated time to per-rank clocks.

The FSBM optimization stages (`repro.optim.stages`) differ only in the
kernels and directives they hand to this engine, exactly as the paper's
code versions differ only in their directives and array layout.
"""

from repro.core.cache import (
    CacheInfo,
    CountingCache,
    cache_stats,
    cached,
    clear_all_caches,
    get_cache,
)
from repro.core.clock import SimClock, TimeBucket
from repro.core.env import OffloadEnv
from repro.core.directives import (
    MapType,
    Map,
    TargetTeamsDistributeParallelDo,
    TargetEnterData,
    TargetExitData,
    DeclareTarget,
)
from repro.core.device import Device, DeviceArray, DeviceContext
from repro.core.kernel import (
    Kernel,
    KernelResources,
    estimate_registers,
    warp_rounded,
)
from repro.core.launch import LaunchConfig, plan_launch
from repro.core.costmodel import GpuCostModel, CpuCostModel, KernelTiming
from repro.core.engine import OffloadEngine, KernelRecord

__all__ = [
    "SimClock",
    "TimeBucket",
    "OffloadEnv",
    "MapType",
    "Map",
    "TargetTeamsDistributeParallelDo",
    "TargetEnterData",
    "TargetExitData",
    "DeclareTarget",
    "Device",
    "DeviceArray",
    "DeviceContext",
    "Kernel",
    "KernelResources",
    "estimate_registers",
    "warp_rounded",
    "LaunchConfig",
    "plan_launch",
    "GpuCostModel",
    "CpuCostModel",
    "KernelTiming",
    "OffloadEngine",
    "KernelRecord",
    "CacheInfo",
    "CountingCache",
    "cache_stats",
    "cached",
    "clear_all_caches",
    "get_cache",
]
