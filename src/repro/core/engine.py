"""The offload engine: executes kernels under OpenMP directive semantics.

One engine per MPI rank. It owns the rank's device context, performs
mapped data movement (charging PCIe time), plans launches, enforces the
device stack/heap rules that produced the paper's ``collapse(3)``
failure, runs the kernel's real NumPy body, and charges simulated
kernel time to the rank clock. Every launch leaves a
:class:`KernelRecord` behind for the Nsight-Compute-style profiler.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.clock import SimClock, TimeBucket
from repro.core.costmodel import GpuCostModel, KernelTiming
from repro.core.device import Device, DeviceArray, DeviceContext
from repro.core.directives import (
    Map,
    MapType,
    TargetEnterData,
    TargetExitData,
    TargetTeamsDistributeParallelDo,
)
from repro.core.env import OffloadEnv
from repro.core.kernel import Kernel
from repro.core.launch import LaunchConfig, plan_launch
from repro.errors import CudaStackOverflow, MappingError
from repro.hardware.specs import PCIE_GEN4, LinkSpec


@dataclass(frozen=True, slots=True)
class KernelRecord:
    """Everything the profilers need about one completed launch."""

    name: str
    launch: LaunchConfig
    timing: KernelTiming
    collapse: int
    h2d_bytes: int
    d2h_bytes: int

    @property
    def time(self) -> float:
        """Simulated kernel time including launch overhead [s]."""
        return self.timing.total


@dataclass
class OffloadEngine:
    """Directive interpreter bound to one rank's clock and device."""

    device: Device
    env: OffloadEnv
    clock: SimClock
    pcie: LinkSpec = field(default_factory=lambda: PCIE_GEN4)
    #: Device working precision (most of WRF is single precision).
    device_dtype: np.dtype = np.dtype(np.float32)
    records: list[KernelRecord] = field(default_factory=list)
    ctx: DeviceContext = field(init=False)
    cost: GpuCostModel = field(init=False)

    def __post_init__(self) -> None:
        self.ctx = self.device.open_context(self.env)
        self.cost = GpuCostModel(self.device.spec)

    # --- data environment -------------------------------------------------

    def enter_data(
        self,
        directive: TargetEnterData,
        shapes: dict[str, tuple[int, ...]] | None = None,
        arrays: dict[str, np.ndarray] | None = None,
    ) -> dict[str, DeviceArray]:
        """Apply ``target enter data``: allocate and/or upload arrays.

        ``map(alloc:)`` names take their shapes from ``shapes``;
        ``map(to:)`` names take data (and shape) from ``arrays`` and
        charge an H2D transfer.
        """
        shapes = shapes or {}
        arrays = arrays or {}
        out: dict[str, DeviceArray] = {}
        for m in directive.maps:
            for name in m.names:
                if m.map_type is MapType.ALLOC:
                    if name not in shapes:
                        raise MappingError(f"no shape supplied for alloc of {name!r}")
                    out[name] = self.ctx.alloc_array(
                        name, shapes[name], dtype=self.device_dtype
                    )
                elif m.map_type in (MapType.TO, MapType.TOFROM):
                    if name not in arrays:
                        raise MappingError(f"no host array supplied for {name!r}")
                    host = arrays[name]
                    arr = self.ctx.alloc_array(
                        name, host.shape, dtype=self.device_dtype, init=host
                    )
                    self._charge_transfer(TimeBucket.H2D, arr.nbytes)
                    out[name] = arr
                else:
                    raise MappingError(
                        f"map({m.map_type.value}:) is not valid on enter data"
                    )
        return out

    def exit_data(self, directive: TargetExitData) -> None:
        """Apply ``target exit data``: release (and download tofrom) data."""
        for m in directive.maps:
            for name in m.names:
                if m.map_type in (MapType.FROM, MapType.TOFROM):
                    arr = self.ctx.get(name)
                    self._charge_transfer(TimeBucket.D2H, arr.nbytes)
                self.ctx.free_array(name)

    def update_to(self, name: str, host: np.ndarray) -> None:
        """``target update to``: refresh a mapped array from the host."""
        arr = self.ctx.get(name)
        if arr.shape != host.shape:
            raise MappingError(
                f"update to {name!r}: host shape {host.shape} != device {arr.shape}"
            )
        arr.data[...] = host.astype(self.device_dtype, copy=False)
        self._charge_transfer(TimeBucket.H2D, arr.nbytes)

    def update_from(self, name: str) -> np.ndarray:
        """``target update from``: download a device array as float64."""
        arr = self.ctx.get(name)
        self._charge_transfer(TimeBucket.D2H, arr.nbytes)
        arr.device_dirty = False
        return arr.data.astype(np.float64)

    # --- kernel launch ------------------------------------------------------

    def launch(
        self,
        kernel: Kernel,
        directive: TargetTeamsDistributeParallelDo,
        to_arrays: dict[str, np.ndarray] | None = None,
        from_names: tuple[str, ...] = (),
        referenced: dict[str, np.ndarray] | None = None,
    ) -> KernelRecord:
        """Execute one target region.

        ``to_arrays`` supplies host data for the directive's
        ``map(to:)`` clauses (transient mappings live only for this
        region, as OpenMP specifies); ``from_names`` must be a subset of
        the ``map(from:)``/``map(tofrom:)`` names and selects which
        results the caller wants counted as downloads.

        ``referenced`` models OpenMP's *implicit* mapping (Sec. V-B of
        the paper): any array the region references without an explicit
        map clause and without a persistent device mapping is treated as
        ``map(tofrom:)`` — uploaded on entry and downloaded on exit
        whether or not that movement was necessary. Passing precise map
        clauses instead is exactly the optimization the paper calls
        "essential in ensuring the least amount of data transfers".
        """
        to_arrays = dict(to_arrays or {})
        declared_to = set(directive.maps_of(MapType.TO)) | set(
            directive.maps_of(MapType.TOFROM)
        )
        declared_from = set(directive.maps_of(MapType.FROM)) | set(
            directive.maps_of(MapType.TOFROM)
        )
        extra = set(to_arrays) - declared_to
        if extra:
            raise MappingError(
                f"host arrays supplied without map(to:) clauses: {sorted(extra)}"
            )
        missing = set(from_names) - declared_from
        if missing:
            raise MappingError(
                f"download requested without map(from:) clauses: {sorted(missing)}"
            )

        # Implicit tofrom mappings for referenced-but-unmapped arrays.
        implicit: list[str] = []
        all_mapped = (
            declared_to
            | declared_from
            | set(directive.maps_of(MapType.ALLOC))
            | set(self.ctx.arrays)
        )
        for name, host in (referenced or {}).items():
            if name in all_mapped or name in to_arrays:
                continue
            to_arrays[name] = host
            implicit.append(name)

        # Transient uploads for this region.
        transient: list[str] = []
        h2d_bytes = 0
        for name, host in to_arrays.items():
            if name in self.ctx.arrays:
                self.update_to(name, host)
            else:
                arr = self.ctx.alloc_array(
                    name, host.shape, dtype=self.device_dtype, init=host
                )
                transient.append(name)
                self._charge_transfer(TimeBucket.H2D, arr.nbytes)
            h2d_bytes += self.ctx.get(name).nbytes

        launch_cfg = plan_launch(kernel, directive, self.env)
        self._check_device_stack(kernel, launch_cfg)

        timing = self.cost.time(kernel, launch_cfg)
        if kernel.body is not None:
            kernel.body()
        self.clock.advance(TimeBucket.GPU_KERNEL, timing.total)

        d2h_bytes = 0
        # Implicit tofrom mappings download on region exit regardless of
        # necessity — the waste precise map clauses eliminate.
        for name in tuple(from_names) + tuple(implicit):
            arr = self.ctx.get(name)
            d2h_bytes += arr.nbytes
            self._charge_transfer(TimeBucket.D2H, arr.nbytes)

        for name in transient:
            self.ctx.free_array(name)

        record = KernelRecord(
            name=kernel.name,
            launch=launch_cfg,
            timing=timing,
            collapse=directive.collapse,
            h2d_bytes=h2d_bytes,
            d2h_bytes=d2h_bytes,
        )
        self.records.append(record)
        return record

    # --- internals ---------------------------------------------------------

    def _check_device_stack(self, kernel: Kernel, launch: LaunchConfig) -> None:
        """Enforce the automatic-array stack/heap rules.

        A device frame that fits ``NV_ACC_CUDA_STACKSIZE`` lives on the
        per-thread stack (whose reservation was charged when the context
        opened). A larger frame falls back to device-heap allocation for
        every resident thread — the path that blew up the paper's first
        ``collapse(3)`` attempt.
        """
        frame = kernel.resources.frame_bytes
        if frame <= self.env.stack_bytes:
            return
        occ = self.cost.occupancy.occupancy(
            registers_per_thread=launch.registers_per_thread,
            block_size=launch.block_size,
            grid_blocks=launch.grid_blocks,
        )
        demand = occ.resident_threads * frame
        if demand > self.env.heap_bytes:
            raise CudaStackOverflow(
                f"kernel {kernel.name!r}: per-thread frame of {frame} B "
                f"(automatic arrays: {kernel.resources.automatic_array_bytes} B) "
                f"exceeds NV_ACC_CUDA_STACKSIZE={self.env.stack_bytes} and "
                f"{occ.resident_threads} resident threads need "
                f"{demand / 2**20:.1f} MiB of device heap "
                f"(NV_ACC_CUDA_HEAPSIZE={self.env.heap_bytes / 2**20:.0f} MiB). "
                "Increase NV_ACC_CUDA_STACKSIZE, reduce the collapse level, "
                "or replace the automatic arrays with preallocated module "
                "arrays (Listing 8)."
            )

    def _charge_transfer(self, bucket: TimeBucket, nbytes: int) -> None:
        self.clock.advance(bucket, self.pcie.transfer_time(nbytes))

    @property
    def kernel_time(self) -> float:
        """Total simulated kernel seconds so far."""
        return sum(r.time for r in self.records)

    def close(self) -> None:
        """Tear down the rank's device context."""
        self.ctx.close()
