"""The ``-gpu=autocompare`` diagnostic (Sec. VII-B).

NVHPC's autocompare mode executes each offloaded region on both the
host and the device and reports where (and by how much) the results
diverge, letting developers bound the per-step perturbation the GPU
introduces — the paper saw 6-7 digits of agreement per time step.

Here the "device" result is the float32 kernel output and the "host"
shadow is the float64 evaluation of the same region; execution
continues with the device result, exactly as the real flag behaves.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True, slots=True)
class ArrayComparison:
    """Agreement report for one compared array."""

    name: str
    n_compared: int
    n_diff: int
    max_abs_diff: float
    max_rel_diff: float

    @property
    def digits(self) -> float:
        """Matching significant digits at the worst element."""
        if self.max_rel_diff == 0.0:
            return 16.0
        return float(np.clip(-np.log10(self.max_rel_diff), 0.0, 16.0))


@dataclass(frozen=True)
class AutocompareReport:
    """One offloaded region's host-vs-device comparison."""

    region: str
    arrays: tuple[ArrayComparison, ...]

    @property
    def min_digits(self) -> float:
        """The headline number the paper quotes (6-7 digits per step)."""
        diffs = [a.digits for a in self.arrays if a.n_diff > 0]
        if not diffs:
            return 16.0
        return min(diffs)

    def format_report(self) -> str:
        """PCAST-style textual report."""
        lines = [
            f"autocompare: region {self.region!r} "
            f"({len(self.arrays)} arrays compared)"
        ]
        for a in self.arrays:
            lines.append(
                f"  {a.name:<24} {a.n_diff:>8}/{a.n_compared:<8} differ  "
                f"max abs {a.max_abs_diff:.3e}  max rel {a.max_rel_diff:.3e}  "
                f"({a.digits:.1f} digits)"
            )
        lines.append(f"  minimum agreement: {self.min_digits:.1f} digits")
        return "\n".join(lines)


def compare_arrays(
    name: str,
    host: np.ndarray,
    device: np.ndarray,
    significance: float = 1e-12,
) -> ArrayComparison:
    """Compare one array pair elementwise (host is the fp64 reference).

    Relative differences are only assessed where the values are
    *significant* — at least ``significance`` times the array's largest
    magnitude. Below that, an element that is denormal-noise on one
    side and exactly zero on the other would otherwise report a 100 %
    relative error; PCAST applies the same magnitude filter.
    """
    h = np.asarray(host, dtype=np.float64)
    d = np.asarray(device, dtype=np.float64)
    if h.shape != d.shape:
        raise ValueError(f"{name}: shape mismatch {h.shape} vs {d.shape}")
    diff = np.abs(h - d)
    denom = np.maximum(np.abs(h), np.abs(d))
    scale = float(denom.max(initial=0.0))
    floor = max(scale * significance, 1e-300)
    rel = np.where(denom > floor, diff / np.maximum(denom, floor), 0.0)
    return ArrayComparison(
        name=name,
        n_compared=h.size,
        n_diff=int(np.count_nonzero(diff)),
        max_abs_diff=float(diff.max(initial=0.0)),
        max_rel_diff=float(rel.max(initial=0.0)),
    )


def autocompare_region(
    region: str,
    host_outputs: dict[str, np.ndarray],
    device_outputs: dict[str, np.ndarray],
) -> AutocompareReport:
    """Build the report for one offloaded region's outputs."""
    names = sorted(set(host_outputs) & set(device_outputs))
    return AutocompareReport(
        region=region,
        arrays=tuple(
            compare_arrays(n, host_outputs[n], device_outputs[n]) for n in names
        ),
    )
