"""Kernel descriptors: what the engine needs to know about a loop nest.

A kernel is the unit the OpenMP runtime launches for one ``target``
region: its (possibly collapsed) iteration space, the real NumPy
computation to perform, and the resource/work footprint the cost model
charges for. Stage code counts FLOPs/bytes from actual array sizes and
activity masks, so the work genuinely differs between optimization
stages (see DESIGN.md Sec. 2).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Callable

from repro.errors import ConfigurationError
from repro.hardware.memory import TrafficComponent

#: Bytes of stack every device frame consumes beyond its automatic
#: arrays (spilled scalars, return addresses, ABI padding).
BASE_FRAME_BYTES = 512


def warp_rounded(active: int, total: int, warp: int = 32) -> float:
    """Expected warp-effective iteration count for scattered activity.

    A warp runs as long as any lane is active. For ``active`` busy
    iterations scattered uniformly among ``total``, the expected number
    of lanes the hardware *pays for* is ``warps_with_work * warp``
    where a warp has work with probability ``1 - (1 - p)^warp``.
    """
    if total <= 0 or active <= 0:
        return 0.0
    active = min(active, total)
    p = active / total
    warps = total / warp
    busy_warps = warps * (1.0 - (1.0 - p) ** warp)
    return busy_warps * warp


def estimate_registers(
    n_scalars: int, n_array_vars: int, pointer_based: bool = False
) -> int:
    """Heuristic register estimate for a Fortran device routine.

    Mirrors how nvfortran's register pressure scales with live scalars
    and array descriptors: each live scalar costs ~1 register, each
    array variable ~6 (base pointer, extents, strides), with a fixed
    overhead for the ABI. Pointer-slice locals (the paper's Listing 8
    rewrite) carry their descriptors in memory, costing only ~1 each.
    """
    per_array = 1 if pointer_based else 6
    regs = 24 + n_scalars + per_array * n_array_vars
    return max(32, min(255, regs))


@dataclass(frozen=True, slots=True)
class KernelResources:
    """Resource and work footprint of one kernel launch."""

    #: Registers per thread before any ``maxregcount`` cap.
    registers_per_thread: int
    #: Bytes of Fortran automatic arrays in one call frame (0 after the
    #: Listing 8 rewrite).
    automatic_array_bytes: int
    #: Hot private bytes one thread keeps resident (cache model input).
    working_set_per_thread: float
    #: Total useful FLOPs this launch performs.
    flops: float
    #: Logical memory streams (pre-cache), see `repro.hardware.memory`.
    traffic: tuple[TrafficComponent, ...]
    #: Iterations that do heavy work (others fail the activity predicate
    #: and exit immediately); drives the warp-divergence penalty.
    active_iterations: int
    #: Fraction of peak FLOP rate this kernel's instruction mix can
    #: reach even at full occupancy (branchy, latency-bound bin physics
    #: sits far below FMA peak). Fixed per kernel, shared by every
    #: experiment.
    compute_efficiency: float = 0.10
    precision: str = "fp32"

    def __post_init__(self) -> None:
        if not 1 <= self.registers_per_thread <= 255:
            raise ConfigurationError("registers_per_thread must be in [1, 255]")
        if self.automatic_array_bytes < 0 or self.flops < 0:
            raise ConfigurationError("resource quantities must be non-negative")
        if self.precision not in ("fp32", "fp64"):
            raise ConfigurationError("precision must be fp32 or fp64")

    @property
    def frame_bytes(self) -> int:
        """Per-thread stack demand of one device call frame."""
        return self.automatic_array_bytes + BASE_FRAME_BYTES


@dataclass(frozen=True)
class Kernel:
    """One offloadable loop nest.

    ``loop_extents`` is ordered outermost-first, matching the Fortran
    loop order (``j``, ``k``, ``i`` for the grid loops of Listing 1).
    ``body`` performs the actual NumPy computation when the engine
    executes the kernel; it runs exactly once per launch, regardless of
    how the iteration space is decomposed, because the numerics are
    vectorized over the whole space.
    """

    name: str
    loop_extents: tuple[int, ...]
    resources: KernelResources
    body: Callable[[], None] | None = None

    def __post_init__(self) -> None:
        if not self.loop_extents or any(e < 0 for e in self.loop_extents):
            raise ConfigurationError("loop extents must be non-negative")

    @property
    def total_iterations(self) -> int:
        return math.prod(self.loop_extents)

    def parallel_iterations(self, collapse: int) -> int:
        """Iterations exposed to the device when collapsing ``collapse`` loops."""
        collapse = min(collapse, len(self.loop_extents))
        return math.prod(self.loop_extents[:collapse])

    def serial_iterations_per_thread(self, collapse: int) -> int:
        """Loop trips each device thread executes sequentially inside."""
        collapse = min(collapse, len(self.loop_extents))
        return math.prod(self.loop_extents[collapse:])

    def with_resources(self, **changes) -> "Kernel":
        """Copy with modified resource fields (used by ablations)."""
        return replace(self, resources=replace(self.resources, **changes))
