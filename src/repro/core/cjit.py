"""Shared native-kernel infrastructure: runtime C JIT with numpy fallback.

PR 3 introduced a runtime-compiled C stencil for the fused transport
sweep (:mod:`repro.wrf.cstencil`); this module promotes its build
machinery into shared infrastructure so the FSBM physics hot spots
(sedimentation, the condensation KO-remap, see
:mod:`repro.fsbm.ckernels`) can ride the same path. The design mirrors
the paper's stage-3 discipline:

* kernels are compiled **once** and cached on disk — a shared object
  under a ``_cbuild/`` directory next to the owning module, keyed by a
  hash of the C source and the compile flags, so rebuilds happen only
  when the kernel text changes (the build-system analog of
  ``target enter data map(alloc:)``: pay setup once, reuse forever);
* every kernel is compiled with ``-ffp-contract=off`` so no FMA
  contraction reorders the rounding — compiled paths stay bit-stable
  against their numpy references (see each module's equivalence notes);
* every failure mode — no compiler, read-only filesystem, missing
  OpenMP runtime — degrades to ``None`` and callers take their numpy
  fallback; nothing outside the owning module needs to know which path
  ran.

Kill switches: ``REPRO_DISABLE_CJIT=1`` disables **every** compiled
kernel in the process; each :class:`CJitModule` may additionally name
its own switch (``REPRO_DISABLE_CSTENCIL``, ``REPRO_DISABLE_CPHYS``)
so tests and operators can force one subsystem onto numpy without
touching the others. The switches are consulted on every load call, so
setting them mid-process takes effect immediately.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import subprocess
import threading
from pathlib import Path
from typing import Callable

from repro.obs import tracer

#: Environment switch disabling every runtime-compiled kernel at once.
DISABLE_ALL_ENV = "REPRO_DISABLE_CJIT"

#: Default compile flags. ``-ffp-contract=off`` keeps the compiler from
#: fusing multiply-adds, which would change rounding relative to the
#: numpy references. -O3 alone never reassociates floating-point math
#: in gcc/clang; ``-fopenmp`` enables the ``omp simd`` pragmas.
DEFAULT_CFLAGS = (
    "-O3",
    "-march=native",
    "-std=c99",
    "-fPIC",
    "-shared",
    "-fopenmp",
    "-ffp-contract=off",
)

#: Registered modules by name, for diagnostics (``cjit.modules()``).
_registry: dict[str, "CJitModule"] = {}


def modules() -> dict[str, "CJitModule"]:
    """Every registered JIT module by name (read-only snapshot)."""
    return dict(_registry)


def compiler_candidates() -> list[str]:
    """Compilers tried in order (``$CC`` first, then the system ones)."""
    return [c for c in (os.environ.get("CC"), "cc", "gcc", "clang") if c]


def source_tag(source: str, cflags: tuple[str, ...]) -> str:
    """Content hash keying the on-disk shared object."""
    return hashlib.sha256((source + " ".join(cflags)).encode()).hexdigest()[:16]


class CJitModule:
    """One runtime-compiled C kernel library with a numpy escape hatch.

    ``name`` doubles as the shared object's basename (``<name>_<tag>.so``
    under ``build_dir``); ``setup`` is called once on the freshly loaded
    :class:`ctypes.CDLL` to declare argument/return types. ``load``
    returns the library, or ``None`` with :attr:`load_error` explaining
    why (disabled via environment, no compiler, compile failure) —
    callers treat ``None`` as "take the numpy path".
    """

    def __init__(
        self,
        name: str,
        source: str,
        *,
        cflags: tuple[str, ...] = DEFAULT_CFLAGS,
        disable_env: str | None = None,
        build_dir: str | Path | None = None,
        setup: Callable[[ctypes.CDLL], None] | None = None,
    ):
        self.name = name
        self.source = source
        self.cflags = tuple(cflags)
        self.disable_env = disable_env
        self.build_dir = Path(build_dir) if build_dir is not None else (
            Path(__file__).resolve().parent / "_cbuild"
        )
        self._setup = setup
        self._lock = threading.Lock()
        self._lib: ctypes.CDLL | None = None
        self._attempted = False
        #: Why the library is unavailable ("" while it is loaded).
        self.load_error: str = ""
        _registry[name] = self

    @property
    def tag(self) -> str:
        return source_tag(self.source, self.cflags)

    @property
    def so_path(self) -> Path:
        return self.build_dir / f"{self.name}_{self.tag}.so"

    def disabled_reason(self) -> str | None:
        """The active kill switch, or ``None`` when enabled."""
        if os.environ.get(DISABLE_ALL_ENV):
            return f"disabled via {DISABLE_ALL_ENV}"
        if self.disable_env and os.environ.get(self.disable_env):
            return f"disabled via {self.disable_env}"
        return None

    def _compile(self) -> ctypes.CDLL:
        so_path = self.so_path
        if not so_path.exists():
            build = self.build_dir
            build.mkdir(parents=True, exist_ok=True)
            src_path = build / f"{self.name}_{self.tag}.c"
            src_path.write_text(self.source)
            last_err: Exception | None = None
            tmp_path = build / f".{self.name}_{self.tag}.{os.getpid()}.so"
            with tracer.span("cjit.compile", cat="jit") as sp:
                if sp is not None:
                    sp.set(module=self.name, tag=self.tag)
                for cc in compiler_candidates():
                    try:
                        subprocess.run(
                            [cc, *self.cflags, str(src_path), "-o", str(tmp_path)],
                            check=True,
                            capture_output=True,
                            timeout=120,
                        )
                        os.replace(tmp_path, so_path)  # atomic vs. others
                        last_err = None
                        break
                    except Exception as exc:  # noqa: BLE001 - any cc failure
                        last_err = exc
            if last_err is not None:
                raise RuntimeError(f"no working C compiler: {last_err}")
        lib = ctypes.CDLL(str(so_path))
        if self._setup is not None:
            self._setup(lib)
        return lib

    def load(self) -> ctypes.CDLL | None:
        """The compiled library, or ``None`` when unavailable.

        Compilation happens once per process (and the shared object is
        cached on disk across processes). The kill switches are checked
        on every call, so disabling a module mid-process sticks even if
        the library loaded earlier.
        """
        reason = self.disabled_reason()
        if reason is not None:
            self.load_error = reason
            return None
        with self._lock:
            if not self._attempted:
                self._attempted = True
                # The one-time build/dlopen is the only load() call worth
                # a span; the steady-state calls return the cached lib.
                with tracer.span("cjit.load", cat="jit") as sp:
                    try:
                        self._lib = self._compile()
                        self.load_error = ""
                    except Exception as exc:  # noqa: BLE001 - use numpy
                        self._lib = None
                        self.load_error = str(exc)
                    if sp is not None:
                        sp.set(
                            module=self.name,
                            ok=self._lib is not None,
                            error=self.load_error,
                        )
            return self._lib
