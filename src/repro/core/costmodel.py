"""Calibrated timing models for simulated kernels and host loops.

The GPU model charges ``launch_overhead + max(compute, memory)`` where
both terms degrade at low occupancy: few resident warps can neither
hide instruction latency nor keep HBM busy. This is the mechanism that
makes the paper's ``collapse(2)`` kernel (a handful of blocks, serial
inner ``i`` loop) an order of magnitude slower than ``collapse(3)``
despite executing the same FLOPs.

Free constants (``WARPS_HALF_*``) were calibrated once against the
paper's stage-speedup ratios and are never touched by experiments.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.kernel import Kernel, warp_rounded
from repro.core.launch import LaunchConfig
from repro.hardware.memory import (
    AccessPattern,
    CacheModel,
    MemoryTraffic,
    TrafficComponent,
)
from repro.hardware.occupancy import OccupancyCalculator, OccupancyResult
from repro.hardware.specs import CpuSpec, GpuSpec

#: Resident warps per SM at which latency hiding reaches 50 %. The
#: FSBM collision kernel is a long dependency chain per thread, so it
#: needs far more resident warps than a streaming kernel to stay busy.
WARPS_HALF_COMPUTE = 12.0

#: Resident warps per SM at which HBM bandwidth reaches 50 %.
WARPS_HALF_MEMORY = 3.0

#: Effective L2 bandwidth of the A100 [B/s].
L2_BANDWIDTH = 4.0e12

#: Host-side per-iteration loop overhead [s] (branches, index math of
#: branchy Fortran physics loops).
CPU_LOOP_OVERHEAD = 1.5e-9


@dataclass(frozen=True, slots=True)
class KernelTiming:
    """Cost breakdown of one launch."""

    compute_time: float
    memory_time: float
    launch_overhead: float
    occupancy: OccupancyResult
    traffic: MemoryTraffic
    #: Warp-effective FLOPs actually issued (includes divergence waste).
    effective_flops: float

    @property
    def total(self) -> float:
        return self.launch_overhead + max(self.compute_time, self.memory_time)


def _saturation(x: float, half: float) -> float:
    """Monotone saturating curve in [0, 1): x / (x + half)."""
    if x <= 0:
        return 0.0
    return x / (x + half)


@dataclass
class GpuCostModel:
    """Timing for device kernels on one GPU spec."""

    gpu: GpuSpec
    cache: CacheModel = None  # type: ignore[assignment]
    occupancy: OccupancyCalculator = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.cache is None:
            self.cache = CacheModel(self.gpu)
        if self.occupancy is None:
            self.occupancy = OccupancyCalculator(self.gpu)

    def _effective_flops(self, kernel: Kernel, launch: LaunchConfig) -> float:
        """FLOPs the hardware pays for, including warp-divergence waste.

        Active iterations are scattered among all iterations; inactive
        lanes in a busy warp still occupy issue slots for the duration
        of the slowest lane.
        """
        res = kernel.resources
        total_iters = kernel.total_iterations
        if res.active_iterations <= 0 or total_iters <= 0:
            return res.flops
        # Divergence is assessed over the *parallel* iteration space:
        # with a serial inner loop (collapse(2)), a thread is busy if any
        # of its serial trips is active, so coherence is higher but each
        # busy thread is charged its full serial sweep.
        par = max(1, launch.parallel_iterations)
        serial = max(1, launch.serial_iterations_per_thread)
        active_threads = min(
            par, max(1.0, res.active_iterations / serial)
        )
        paid_threads = warp_rounded(int(round(active_threads)), par, self.gpu.warp_size)
        if active_threads <= 0:
            return res.flops
        waste = paid_threads / active_threads
        return res.flops * max(1.0, waste)

    def time(self, kernel: Kernel, launch: LaunchConfig) -> KernelTiming:
        """Full timing of one kernel launch."""
        res = kernel.resources
        occ = self.occupancy.occupancy(
            registers_per_thread=launch.registers_per_thread,
            block_size=launch.block_size,
            grid_blocks=launch.grid_blocks,
        )
        warps_per_sm = occ.resident_threads / self.gpu.num_sms / self.gpu.warp_size

        # --- compute term -------------------------------------------------
        peak = (
            self.gpu.peak_flops_fp32
            if res.precision == "fp32"
            else self.gpu.peak_flops_fp64
        )
        latency_hiding = _saturation(warps_per_sm, WARPS_HALF_COMPUTE)
        eff_rate = peak * latency_hiding * res.compute_efficiency
        eff_flops = self._effective_flops(kernel, launch)
        compute_time = eff_flops / eff_rate if eff_rate > 0 else 0.0

        # --- memory term --------------------------------------------------
        components = list(res.traffic)
        spill = launch.spill_traffic_bytes()
        if spill > 0:
            components.append(
                TrafficComponent(
                    name="register-spill",
                    pattern=AccessPattern.THREAD_SEQUENTIAL,
                    read_bytes=spill * 0.5,
                    write_bytes=spill * 0.5,
                )
            )
        traffic = self.cache.evaluate(
            components,
            resident_threads=occ.resident_threads,
            working_set_per_thread=res.working_set_per_thread,
        )
        bw_eff = _saturation(warps_per_sm, WARPS_HALF_MEMORY)
        dram_time = (
            traffic.dram_bytes / (self.gpu.dram_bandwidth * bw_eff)
            if bw_eff > 0
            else 0.0
        )
        l2_time = traffic.l2_bytes / (L2_BANDWIDTH * max(bw_eff, 1e-9))
        memory_time = max(dram_time, l2_time)

        return KernelTiming(
            compute_time=compute_time,
            memory_time=memory_time,
            launch_overhead=self.gpu.launch_overhead,
            occupancy=occ,
            traffic=traffic,
            effective_flops=eff_flops,
        )


#: Parallel efficiency lost per doubling of OpenMP threads (tile-loop
#: scheduling overhead and tile-boundary imbalance in WRF).
TILE_EFFICIENCY_PER_DOUBLING = 0.94


@dataclass
class CpuCostModel:
    """Timing for host-side (per-rank) loop execution.

    ``threads`` models WRF's shared-memory tiling (Fig. 1): tile loops
    split over OpenMP threads with imperfect efficiency; the paper runs
    1 thread per rank, which is the default here.
    """

    cpu: CpuSpec
    #: Cores concurrently active on the socket; per-core bandwidth
    #: shrinks when the socket is saturated.
    active_cores_on_socket: int = 1
    #: OpenMP threads per rank (WRF tiles; numtiles in the namelist).
    threads: int = 1

    def thread_speedup(self) -> float:
        """Effective speedup of the tile loops from ``threads`` threads."""
        if self.threads <= 1:
            return 1.0
        import math

        doublings = math.log2(self.threads)
        return self.threads * TILE_EFFICIENCY_PER_DOUBLING**doublings

    def time(
        self,
        flops: float,
        bytes_moved: float,
        iterations: int = 0,
    ) -> float:
        """Seconds for one rank's (possibly tiled) loop execution."""
        compute = flops / (
            self.cpu.sustained_flops_per_core * self.thread_speedup()
        )
        # A rank's threads share the socket's bandwidth alongside every
        # other active core.
        per_rank_bw = min(
            self.cpu.mem_bandwidth_per_core * max(1, self.threads),
            self.cpu.mem_bandwidth / max(1, self.active_cores_on_socket),
        )
        memory = bytes_moved / per_rank_bw
        overhead = iterations * CPU_LOOP_OVERHEAD / self.thread_speedup()
        return max(compute, memory) + overhead
