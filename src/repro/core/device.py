"""Simulated GPU device, per-rank contexts, and device arrays.

A :class:`Device` is one A100 with finite memory; each MPI rank that
uses it opens a :class:`DeviceContext`, which carves out a local-memory
(stack) reservation sized by ``NV_ACC_CUDA_STACKSIZE`` — the mechanism
that limited the paper to 5 MPI ranks per GPU (Sec. VII-A). Device
arrays hold a real NumPy buffer in the device's working precision so
host/device numerics genuinely differ (Sec. VII-B verification).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.env import OffloadEnv
from repro.errors import CudaOutOfMemory, MappingError
from repro.hardware.specs import A100_40GB, GpuSpec

#: Fraction of the worst-case per-thread stack carve-out
#: (SMs x max threads x stack bytes) the driver actually reserves.
#: Calibrated so a 65536-byte stack admits 5 contexts on a 40 GB A100
#: and rejects the 6th, matching the paper's observed rank limit.
STACK_RESERVATION_FACTOR = 0.5


@dataclass
class DeviceArray:
    """A named allocation on the device holding real data.

    The buffer is materialized in ``dtype`` (float32 by default — most
    of WRF is single precision), so arithmetic performed "on device"
    genuinely rounds differently from float64 host arithmetic.
    """

    name: str
    data: np.ndarray
    #: True once the device copy is newer than the host copy.
    device_dirty: bool = False

    @property
    def nbytes(self) -> int:
        return self.data.nbytes

    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def dtype(self) -> np.dtype:
        return self.data.dtype


@dataclass
class Device:
    """One simulated GPU shared by any number of rank contexts."""

    spec: GpuSpec = field(default_factory=lambda: A100_40GB)
    device_id: int = 0
    allocated_bytes: int = 0
    #: Simulated timestamp at which the device's FIFO queue drains; used
    #: by the MPI simulator to serialize kernels from co-resident ranks.
    busy_until: float = 0.0
    contexts: list["DeviceContext"] = field(default_factory=list)

    @property
    def free_bytes(self) -> int:
        return self.spec.memory_bytes - self.allocated_bytes

    def allocate(self, nbytes: int, what: str = "array") -> None:
        """Account a device allocation, raising on exhaustion."""
        if nbytes < 0:
            raise MappingError("negative allocation")
        if nbytes > self.free_bytes:
            raise CudaOutOfMemory(
                f"out of memory allocating {nbytes / 2**20:.1f} MiB for {what} "
                f"on GPU {self.device_id} "
                f"({self.allocated_bytes / 2**30:.2f} GiB in use of "
                f"{self.spec.memory_bytes / 2**30:.0f} GiB; "
                f"{len(self.contexts)} rank contexts resident)"
            )
        self.allocated_bytes += nbytes

    def free(self, nbytes: int) -> None:
        """Return memory to the pool."""
        self.allocated_bytes = max(0, self.allocated_bytes - nbytes)

    def open_context(self, env: OffloadEnv) -> "DeviceContext":
        """Create a rank context, charging its stack reservation."""
        ctx = DeviceContext(device=self, env=env)
        self.contexts.append(ctx)
        return ctx

    def stack_reservation(self, env: OffloadEnv) -> int:
        """Bytes the driver reserves for one context's thread stacks."""
        spec = self.spec
        worst_case = spec.num_sms * spec.max_threads_per_sm * env.stack_bytes
        return int(worst_case * STACK_RESERVATION_FACTOR)


@dataclass
class DeviceContext:
    """One rank's view of a device: its allocations and env settings."""

    device: Device
    env: OffloadEnv
    arrays: dict[str, DeviceArray] = field(default_factory=dict)
    _reserved: int = 0
    closed: bool = False

    def __post_init__(self) -> None:
        self._reserved = self.device.stack_reservation(self.env)
        self.device.allocate(self._reserved, what="thread-stack reservation")

    def alloc_array(
        self,
        name: str,
        shape: tuple[int, ...],
        dtype: np.dtype | type = np.float32,
        init: np.ndarray | None = None,
    ) -> DeviceArray:
        """Allocate a named device array (``map(alloc:)`` semantics)."""
        if name in self.arrays:
            raise MappingError(f"device array {name!r} already mapped")
        # Account against device capacity before materializing the host
        # buffer, so a too-large request raises the CUDA-style OOM.
        itemsize = np.dtype(dtype).itemsize
        nbytes = itemsize * int(np.prod(shape, dtype=np.int64))
        self.device.allocate(nbytes, what=name)
        try:
            if init is not None:
                data = np.ascontiguousarray(init, dtype=dtype)
                if data.shape != tuple(shape):
                    raise MappingError(
                        f"init shape {data.shape} != requested {tuple(shape)}"
                    )
            else:
                data = np.zeros(shape, dtype=dtype)
        except Exception:
            self.device.free(nbytes)
            raise
        arr = DeviceArray(name=name, data=data)
        self.arrays[name] = arr
        return arr

    def get(self, name: str) -> DeviceArray:
        """Look up a mapped array, raising the CUDA-style error if absent."""
        try:
            return self.arrays[name]
        except KeyError:
            raise MappingError(
                f"device array {name!r} used before being mapped "
                "(missing map/enter-data clause)"
            ) from None

    def free_array(self, name: str) -> None:
        """Release one named array (``map(release:)``/exit-data)."""
        arr = self.arrays.pop(name, None)
        if arr is None:
            raise MappingError(f"cannot release unmapped array {name!r}")
        self.device.free(arr.nbytes)

    @property
    def mapped_bytes(self) -> int:
        """Bytes held in named arrays (excluding the stack reservation)."""
        return sum(a.nbytes for a in self.arrays.values())

    @property
    def footprint_bytes(self) -> int:
        """Total device memory charged to this context."""
        return self.mapped_bytes + self._reserved

    def close(self) -> None:
        """Release everything this context holds."""
        if self.closed:
            return
        for name in list(self.arrays):
            self.free_array(name)
        self.device.free(self._reserved)
        if self in self.device.contexts:
            self.device.contexts.remove(self)
        self.closed = True
