"""OpenMP device-offload directive objects.

These are the programmatic equivalent of the ``!$omp`` lines in the
paper's listings. The engine interprets them to plan launches and data
movement; the Codee rewriter (`repro.codee.rewrite`) *emits* them as
Fortran directive text, so both halves of the workflow share one
vocabulary.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.errors import ConfigurationError


class MapType(enum.Enum):
    """OpenMP ``map`` clause kinds."""

    TO = "to"
    FROM = "from"
    TOFROM = "tofrom"
    ALLOC = "alloc"
    RELEASE = "release"
    DELETE = "delete"


@dataclass(frozen=True, slots=True)
class Map:
    """One ``map(<type>: var, ...)`` clause."""

    map_type: MapType
    names: tuple[str, ...]

    def __post_init__(self) -> None:
        if not self.names:
            raise ConfigurationError("map clause needs at least one variable")

    def render(self) -> str:
        """OpenMP source text of the clause."""
        return f"map({self.map_type.value}: {', '.join(self.names)})"


def map_to(*names: str) -> Map:
    """Shorthand for ``map(to: ...)``."""
    return Map(MapType.TO, tuple(names))


def map_from(*names: str) -> Map:
    """Shorthand for ``map(from: ...)``."""
    return Map(MapType.FROM, tuple(names))


def map_tofrom(*names: str) -> Map:
    """Shorthand for ``map(tofrom: ...)``."""
    return Map(MapType.TOFROM, tuple(names))


def map_alloc(*names: str) -> Map:
    """Shorthand for ``map(alloc: ...)``."""
    return Map(MapType.ALLOC, tuple(names))


#: Reduction operators OpenMP accepts (the subset the verifier knows).
REDUCTION_OPS = ("+", "-", "*", "min", "max", ".and.", ".or.")


@dataclass(frozen=True, slots=True)
class Reduction:
    """One ``reduction(<op>: var, ...)`` clause."""

    op: str
    names: tuple[str, ...]

    def __post_init__(self) -> None:
        if self.op not in REDUCTION_OPS:
            raise ConfigurationError(f"unsupported reduction operator {self.op!r}")
        if not self.names:
            raise ConfigurationError("reduction clause needs at least one variable")

    def render(self) -> str:
        """OpenMP source text of the clause."""
        return f"reduction({self.op}: {', '.join(self.names)})"


@dataclass(frozen=True, slots=True)
class TargetTeamsDistributeParallelDo:
    """``!$omp target teams distribute parallel do`` combined construct.

    ``collapse`` merges the outermost ``collapse`` loops into the
    parallel iteration space; any deeper loops run sequentially inside
    each device thread (this is exactly the distinction between the
    paper's Listing 6 ``collapse(2)`` and the final ``collapse(3)``).
    """

    collapse: int = 1
    maps: tuple[Map, ...] = ()
    private: tuple[str, ...] = ()
    firstprivate: tuple[str, ...] = ()
    reductions: tuple[Reduction, ...] = ()
    #: Inner ``!$omp simd`` on the innermost loop (Codee adds this on
    #: CPU targets; ignored for GPU launch planning).
    simd_inner: bool = False
    num_teams: int | None = None
    thread_limit: int | None = None

    def __post_init__(self) -> None:
        if self.collapse < 1:
            raise ConfigurationError("collapse level must be >= 1")

    def render(self, width: int = 60) -> str:
        """Fortran directive text (continuation-line style of Listing 4)."""
        parts = ["!$omp target teams distribute", "!$omp parallel do"]
        clauses: list[str] = []
        if self.collapse > 1:
            clauses.append(f"collapse({self.collapse})")
        if self.num_teams:
            clauses.append(f"num_teams({self.num_teams})")
        if self.thread_limit:
            clauses.append(f"thread_limit({self.thread_limit})")
        if self.private:
            clauses.append(f"private({', '.join(self.private)})")
        if self.firstprivate:
            clauses.append(f"firstprivate({', '.join(self.firstprivate)})")
        clauses.extend(r.render() for r in self.reductions)
        clauses.extend(m.render() for m in self.maps)
        lines = parts + [f"!$omp {c}" for c in clauses]
        return " &\n".join(lines)

    def maps_of(self, map_type: MapType) -> tuple[str, ...]:
        """All variable names mapped with ``map_type``."""
        names: list[str] = []
        for m in self.maps:
            if m.map_type is map_type:
                names.extend(m.names)
        return tuple(names)


@dataclass(frozen=True, slots=True)
class TargetEnterData:
    """``!$omp target enter data`` — persistent device allocation.

    The paper's ``temp_arrays`` module issues
    ``map(alloc: fl1_temp, ...)`` once at model start (Listing 8
    discussion).
    """

    maps: tuple[Map, ...]

    def render(self) -> str:
        clauses = " ".join(m.render() for m in self.maps)
        return f"!$omp target enter data {clauses}"


@dataclass(frozen=True, slots=True)
class TargetExitData:
    """``!$omp target exit data`` — release persistent device data."""

    maps: tuple[Map, ...]

    def render(self) -> str:
        clauses = " ".join(m.render() for m in self.maps)
        return f"!$omp target exit data {clauses}"


@dataclass(frozen=True, slots=True)
class DeclareTarget:
    """``!$omp declare target`` on a device-callable routine or module var."""

    names: tuple[str, ...] = ()

    def render(self) -> str:
        if not self.names:
            return "!$omp declare target"
        return f"!$omp declare target ({', '.join(self.names)})"
