"""Launch planning: directives + kernel -> grid/block configuration.

Reproduces how nvfortran maps
``target teams distribute parallel do collapse(n)`` onto CUDA: the
``n`` collapsed loops form the parallel iteration space, distributed
over thread blocks of 128 threads (Sec. V-B of the paper); any deeper
loops execute sequentially inside each thread.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.directives import TargetTeamsDistributeParallelDo
from repro.core.env import OffloadEnv
from repro.core.kernel import Kernel

#: Bytes one spilled register re-reads/writes per serial iteration when
#: ``maxregcount`` forces spills (drives the register-cap ablation).
SPILL_BYTES_PER_REGISTER = 8.0


@dataclass(frozen=True, slots=True)
class LaunchConfig:
    """Resolved CUDA launch parameters for one kernel."""

    block_size: int
    grid_blocks: int
    parallel_iterations: int
    serial_iterations_per_thread: int
    #: Registers per thread after applying any ``maxregcount`` cap.
    registers_per_thread: int
    #: Registers the cap spilled to local memory (0 when uncapped).
    spilled_registers: int

    @property
    def total_threads(self) -> int:
        return self.block_size * self.grid_blocks

    def spill_traffic_bytes(self) -> float:
        """Extra local-memory bytes the spills cost over the launch."""
        if not self.spilled_registers:
            return 0.0
        per_thread = (
            self.spilled_registers
            * SPILL_BYTES_PER_REGISTER
            * max(1, self.serial_iterations_per_thread)
        )
        return per_thread * self.parallel_iterations


def plan_launch(
    kernel: Kernel,
    directive: TargetTeamsDistributeParallelDo,
    env: OffloadEnv,
) -> LaunchConfig:
    """Compute the launch configuration nvfortran would choose."""
    collapse = min(directive.collapse, len(kernel.loop_extents))
    parallel = kernel.parallel_iterations(collapse)
    serial = kernel.serial_iterations_per_thread(collapse)

    block = directive.thread_limit or env.block_size
    block = min(block, max(32, env.block_size))
    grid = max(1, math.ceil(parallel / block)) if parallel else 0
    if directive.num_teams:
        grid = min(grid, directive.num_teams) if parallel else 0

    regs = kernel.resources.registers_per_thread
    spilled = 0
    if env.max_registers is not None and regs > env.max_registers:
        spilled = regs - env.max_registers
        regs = env.max_registers

    return LaunchConfig(
        block_size=block,
        grid_blocks=grid,
        parallel_iterations=parallel,
        serial_iterations_per_thread=serial,
        registers_per_thread=regs,
        spilled_registers=spilled,
    )
