"""Simulated clocks.

Every MPI rank owns a :class:`SimClock`. Engine operations charge time
into named buckets (kernel, transfer, CPU compute, MPI, I/O); the
profilers and the experiment harness read totals and per-bucket splits
from here. Wall-clock (pytest-benchmark) timing is entirely separate —
see DESIGN.md Sec. 5.
"""

from __future__ import annotations

import enum
from collections import defaultdict
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator


class TimeBucket(enum.Enum):
    """Categories of simulated time."""

    CPU_COMPUTE = "cpu_compute"
    GPU_KERNEL = "gpu_kernel"
    H2D = "h2d"
    D2H = "d2h"
    MPI = "mpi"
    GPU_WAIT = "gpu_wait"  # waiting for a shared GPU's queue
    IO = "io"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass
class SimClock:
    """Accumulates simulated seconds into buckets and named regions."""

    buckets: dict[TimeBucket, float] = field(
        default_factory=lambda: defaultdict(float)
    )
    #: Time attributed to user-named regions (NVTX-style), nested names
    #: joined with "/".
    regions: dict[str, float] = field(default_factory=lambda: defaultdict(float))
    _region_stack: list[str] = field(default_factory=list)

    def advance(self, bucket: TimeBucket, seconds: float) -> None:
        """Charge ``seconds`` of simulated time."""
        if seconds < 0:
            raise ValueError("cannot charge negative time")
        self.buckets[bucket] += seconds
        if self._region_stack:
            self.regions["/".join(self._region_stack)] += seconds

    @property
    def total(self) -> float:
        """Total simulated seconds across all buckets."""
        return sum(self.buckets.values())

    def bucket(self, bucket: TimeBucket) -> float:
        """Seconds accumulated in one bucket."""
        return self.buckets.get(bucket, 0.0)

    @contextmanager
    def region(self, name: str) -> Iterator[None]:
        """Attribute time charged inside the block to region ``name``.

        Regions nest; a charge inside ``a``/``b`` lands in region
        ``"a/b"``. This is what the NVTX shim hooks into.
        """
        self._region_stack.append(name)
        try:
            yield
        finally:
            self._region_stack.pop()

    def region_total(self, name: str) -> float:
        """Seconds charged while ``name`` was anywhere on the region stack."""
        return sum(
            t
            for full, t in self.regions.items()
            if full == name
            or full.startswith(name + "/")
            or ("/" + name + "/") in ("/" + full + "/")
        )

    def merge(self, other: "SimClock") -> None:
        """Fold another clock's accumulations into this one."""
        for b, t in other.buckets.items():
            self.buckets[b] += t
        for r, t in other.regions.items():
            self.regions[r] += t

    def snapshot(self) -> dict[str, float]:
        """Bucket totals keyed by bucket value (stable for reports)."""
        return {b.value: self.buckets.get(b, 0.0) for b in TimeBucket}

    def restore(
        self, buckets: dict[str, float], regions: dict[str, float]
    ) -> None:
        """Replace all accumulations with externally recorded totals.

        Used by the multiprocess rank engine: each worker process owns
        the authoritative clock for its rank and ships bucket/region
        totals back after every step; the driver-side mirror adopts them
        verbatim (no arithmetic, so the mirror is bit-identical to the
        worker's accumulation).
        """
        self.buckets = defaultdict(
            float, {TimeBucket(k): float(v) for k, v in buckets.items()}
        )
        self.regions = defaultdict(
            float, {k: float(v) for k, v in regions.items()}
        )

    def state(self) -> tuple[dict[str, float], dict[str, float]]:
        """Pickleable totals for :meth:`restore` (buckets by value)."""
        return (
            {b.value: t for b, t in self.buckets.items()},
            dict(self.regions),
        )

    def reset(self) -> None:
        """Zero all accumulations."""
        self.buckets.clear()
        self.regions.clear()
        self._region_stack.clear()
