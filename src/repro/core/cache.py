"""Explicit, inspectable caches for precomputed hot-path data.

The FSBM hot loops lean on precomputed lookup data — the collision
kernel tables, the Kovetz–Olund split tensor, and the sparse collision
operators derived from both. These used to hide behind anonymous
``functools.lru_cache`` wrappers; this module replaces them with named
:class:`CountingCache` instances collected in a process-wide registry,
so tests and the benchmark harness can ask *which* caches exist, how
often they hit, and what they hold (the memoization analogue of the
paper's "know what the lookup actually touches" argument).

All caches are thread-safe: batched rank execution
(:mod:`repro.wrf.model`) runs per-rank physics on a thread pool, and
the first step of a run populates these caches from several threads at
once.

Usage::

    from repro.core.cache import cached, cache_stats

    @cached("fsbm.split_tensor", maxsize=4)
    def _split_tensor(nkr): ...

    cache_stats()["fsbm.split_tensor"].hits
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Callable


@dataclass(frozen=True)
class CacheInfo:
    """A snapshot of one cache's counters (hit/miss/eviction totals)."""

    name: str
    hits: int
    misses: int
    evictions: int
    currsize: int
    maxsize: int | None
    #: Bytes held by current entries (0 unless the cache has a sizer).
    nbytes: int = 0

    @property
    def hit_rate(self) -> float:
        """Hits per lookup (0.0 when the cache was never consulted)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def counter_values(self) -> dict[str, int]:
        """The numeric series a trace counter track samples per cache.

        Consumed by :func:`repro.obs.metrics.emit_cache_counters`, which
        snapshots every registered cache onto the span timeline.
        """
        return {"hits": self.hits, "misses": self.misses, "nbytes": self.nbytes}


class CountingCache:
    """A named, bounded, thread-safe memo table with hit/miss counters.

    Keys must be hashable; eviction is least-recently-used when
    ``maxsize`` is set. Unlike ``lru_cache`` the builder runs under the
    cache lock, so concurrent first lookups of the same key build the
    value exactly once — important for the expensive kernel tables when
    ranks execute batched on threads.
    """

    def __init__(
        self,
        name: str,
        maxsize: int | None = None,
        sizeof: Callable[[Any], int] | None = None,
    ):
        self.name = name
        self.maxsize = maxsize
        #: Optional value sizer; when set, :meth:`info` reports the
        #: total bytes of live entries (used by the transport-workspace
        #: registry to expose its pinned-buffer footprint).
        self.sizeof = sizeof
        self._data: OrderedDict[Any, Any] = OrderedDict()
        self._lock = threading.RLock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    def get_or_build(self, key: Any, builder: Callable[[], Any]) -> Any:
        """Return the cached value for ``key``, building it on a miss."""
        with self._lock:
            if key in self._data:
                self._hits += 1
                self._data.move_to_end(key)
                return self._data[key]
            self._misses += 1
            value = builder()
            self._data[key] = value
            if self.maxsize is not None:
                while len(self._data) > self.maxsize:
                    self._data.popitem(last=False)
                    self._evictions += 1
            return value

    def clear(self) -> None:
        """Drop all entries (counters keep their totals)."""
        with self._lock:
            self._data.clear()

    def discard(self, key: Any) -> bool:
        """Drop one entry if present; returns whether it existed.

        Used by registries whose values own external resources (e.g.
        the shared-memory superblock segments) and must leave the cache
        when the resource is released, without clearing unrelated
        entries. Not counted as an eviction.
        """
        with self._lock:
            if key in self._data:
                del self._data[key]
                return True
            return False

    def info(self) -> CacheInfo:
        with self._lock:
            nbytes = 0
            if self.sizeof is not None:
                nbytes = sum(int(self.sizeof(v)) for v in self._data.values())
            return CacheInfo(
                name=self.name,
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
                currsize=len(self._data),
                maxsize=self.maxsize,
                nbytes=nbytes,
            )

    def keys(self) -> list:
        """Current keys, oldest first (inspection helper)."""
        with self._lock:
            return list(self._data.keys())

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    def __contains__(self, key: Any) -> bool:
        with self._lock:
            return key in self._data


_registry: dict[str, CountingCache] = {}
_registry_lock = threading.Lock()


def get_cache(
    name: str,
    maxsize: int | None = None,
    sizeof: Callable[[Any], int] | None = None,
) -> CountingCache:
    """The registered cache called ``name``, created on first use.

    The ``maxsize`` and ``sizeof`` of the first registration win;
    later callers get the same instance regardless of what they pass.
    """
    with _registry_lock:
        cache = _registry.get(name)
        if cache is None:
            cache = CountingCache(name, maxsize=maxsize, sizeof=sizeof)
            _registry[name] = cache
        return cache


def cache_stats() -> dict[str, CacheInfo]:
    """Counters of every registered cache, keyed by cache name."""
    with _registry_lock:
        caches = list(_registry.values())
    return {c.name: c.info() for c in caches}


def clear_all_caches() -> None:
    """Empty every registered cache (test isolation helper)."""
    with _registry_lock:
        caches = list(_registry.values())
    for c in caches:
        c.clear()


def cached(name: str, maxsize: int | None = None) -> Callable:
    """Decorator memoizing a function through a registered cache.

    Drop-in for ``functools.lru_cache`` (``cache_clear``/``cache_info``
    are provided), but the cache is named, registered, thread-safe, and
    its counters are visible via :func:`cache_stats`. Arguments must be
    hashable; keyword arguments participate in the key.
    """

    def decorate(fn: Callable) -> Callable:
        cache = get_cache(name, maxsize=maxsize)

        def wrapper(*args, **kwargs):
            key = (args, tuple(sorted(kwargs.items()))) if kwargs else args
            return cache.get_or_build(key, lambda: fn(*args, **kwargs))

        wrapper.__name__ = getattr(fn, "__name__", "cached")
        wrapper.__doc__ = fn.__doc__
        wrapper.__wrapped__ = fn
        wrapper.cache = cache
        wrapper.cache_clear = cache.clear
        wrapper.cache_info = cache.info
        return wrapper

    return decorate
