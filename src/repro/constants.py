"""Physical and numerical constants shared across the reproduction.

Values follow the WRF/FSBM conventions (CGS for microphysics internals,
SI for the dynamical core), matching the unit split in the original
``module_mp_fast_sbm`` Fortran.
"""

from __future__ import annotations

# --- Thermodynamics (SI) ---------------------------------------------------

#: Gas constant for dry air [J kg^-1 K^-1].
R_D = 287.04

#: Gas constant for water vapor [J kg^-1 K^-1].
R_V = 461.6

#: Specific heat of dry air at constant pressure [J kg^-1 K^-1].
C_P = 1004.5

#: Specific heat of dry air at constant volume [J kg^-1 K^-1].
C_V = C_P - R_D

#: Ratio of gas constants (epsilon) used in mixing-ratio conversions.
EPS = R_D / R_V

#: Latent heat of vaporization at 0 C [J kg^-1].
L_V = 2.501e6

#: Latent heat of fusion at 0 C [J kg^-1].
L_F = 3.34e5

#: Latent heat of sublimation at 0 C [J kg^-1].
L_S = L_V + L_F

#: Reference surface pressure [Pa].
P_1000MB = 1.0e5

#: Gravitational acceleration [m s^-2].
GRAVITY = 9.81

#: Triple-point temperature [K].
T_0 = 273.15

#: FSBM activity threshold: microphysics is skipped entirely below this
#: temperature (Listing 1: ``if (T_OLD(i,k,j) > 193.15)``).
T_FREEZE_CUTOFF = 193.15

#: Collision processes are skipped below this temperature
#: (Listing 1: ``if (TT > 223.15) call coal_bott_new``).
T_COAL_CUTOFF = 223.15

# --- Microphysics (CGS, as in the FSBM Fortran) -----------------------------

#: Density of liquid water [g cm^-3].
RHO_WATER_CGS = 1.0

#: Density of bulk ice [g cm^-3].
RHO_ICE_CGS = 0.9

#: Air density at reference conditions [g cm^-3].
RHO_AIR_CGS = 1.225e-3

#: Number of mass-doubling bins used by FSBM (``nkr`` in the Fortran).
NKR = 33

#: Number of ice crystal habit categories (``icemax``).
ICEMAX = 3

#: Number of distinct collision-interaction arrays produced by
#: ``kernals_ks`` (``cwls``, ``cwlg``, ... — 20 in the original code).
N_COLLISION_ARRAYS = 20

#: Smallest drop mass in the bin grid [g] (~2 um radius droplet).
XL_MIN_G = 3.35e-11

#: Reference pressure levels [mb] between which the collision-kernel
#: lookup tables are interpolated (Listing 3: ``ywls_750mb``/``ywls_500mb``).
KERNEL_P_HIGH_MB = 750.0
KERNEL_P_LOW_MB = 500.0

# --- CONUS-12km test case ----------------------------------------------------

#: Full CONUS-12km horizontal/vertical extents (west-east, south-north, top).
CONUS12KM_EXTENTS = (425, 300, 50)

#: CONUS-12km horizontal grid spacing [m].
CONUS12KM_DX = 12_000.0

#: Model time step used in the paper's runs [s].
CONUS12KM_DT = 5.0

#: Simulated duration of the paper's timing runs [s] (10 minutes).
CONUS12KM_RUN_SECONDS = 600.0
