"""Regenerates the Sec. VII-B output verification (diffwrf digits)."""

from benchmarks.conftest import run_once
from repro.experiments import verification


def test_verification_digit_agreement(benchmark, bench_config):
    result = run_once(benchmark, lambda: verification.run(config=bench_config))
    print()
    print(result.format_table())
    print()
    print(result.compare_to_paper())

    for d in result.diffs:
        benchmark.extra_info[f"{d.name}_digits"] = d.digits

    # Paper bands (3-hr run): state 3-6 digits, microphysics 1-5. Our
    # much shorter run sits at or above the upper ends; the essential
    # shape is that results differ (not bitwise) but agree to several
    # digits, with microphysics fields at or below the state fields.
    for name in verification.STATE_FIELDS:
        assert result.field(name).digits >= 3.0
    for name in verification.MICRO_FIELDS:
        assert result.field(name).digits >= 1.0
    assert any(not d.bitwise_identical for d in result.diffs)
    micro = min(result.field(n).digits for n in verification.MICRO_FIELDS)
    state = max(result.field(n).digits for n in verification.STATE_FIELDS)
    assert micro <= state
