"""Regenerates Figure 4: elapsed times across versions and rank counts."""

from benchmarks.conftest import run_once
from repro.experiments import figure4


def test_figure4_scaling(benchmark, bench_config, work_rates):
    result = run_once(
        benchmark,
        lambda: figure4.run(config=bench_config, rates=work_rates),
    )
    print()
    print(result.format_table())
    print()
    print(result.compare_to_paper())

    for label, cpu_ranks, gpu_ranks, _ in figure4.GROUPS:
        benchmark.extra_info[f"{label}/baseline_s"] = result.seconds(
            label, "baseline"
        )
        benchmark.extra_info[f"{label}/gpu_s"] = result.seconds(label, "gpu")

    # Ordering within each fixed-GPU group: baseline > lookup > gpu.
    for group in ("16 ranks", "32 ranks", "64 ranks"):
        assert (
            result.seconds(group, "baseline")
            > result.seconds(group, "lookup")
            > result.seconds(group, "gpu")
        )
    # Elapsed decreases as CPU ranks grow with GPUs fixed.
    assert (
        result.seconds("16 ranks", "gpu")
        > result.seconds("32 ranks", "gpu")
        > result.seconds("64 ranks", "gpu")
    )
    # Equal-resource comparison collapses toward parity (paper: 0.956x).
    ratio = result.seconds("2 nodes", "baseline") / result.seconds("2 nodes", "gpu")
    assert 0.7 < ratio < 1.6
    # Absolute 16-rank times land near the paper's (1211 s / 581 s).
    assert 900 < result.seconds("16 ranks", "baseline") < 1600
    assert 450 < result.seconds("16 ranks", "gpu") < 800
