"""Regenerates Table VII: total speedups, baseline vs final version."""

from benchmarks.conftest import run_once
from repro.experiments import table7

PAPER = {"16 ranks": 2.08, "32 ranks": 1.82, "64 ranks": 1.56, "2 nodes": 0.956}


def test_table7_total_speedups(benchmark, bench_config):
    result = run_once(benchmark, lambda: table7.run(config=bench_config))
    print()
    print(result.format_table())
    print()
    print(result.compare_to_paper())

    for label, paper in PAPER.items():
        benchmark.extra_info[label.replace(" ", "_")] = result.speedup(label)
        benchmark.extra_info["paper_" + label.replace(" ", "_")] = paper

    # Headline: ~2x at 16 ranks (paper 2.08x).
    assert 1.8 < result.speedup("16 ranks") < 2.5
    # The GPU advantage shrinks (or vanishes) at equal resources.
    assert result.speedup("2 nodes") < result.speedup("16 ranks") - 0.5
    assert result.speedup("2 nodes") < 1.4
