"""Ablation: O(b^2) cost scaling with the number of mass bins.

Sec. I motivates the GPU port with exactly this: refining FSBM from 33
toward hundreds of bins scales the collision cost quadratically. The
sweep measures real wall-clock of the collision step at growing bin
counts and checks the quadratic shape.
"""

import numpy as np
import pytest

from benchmarks.conftest import run_once
from repro.fsbm.coal_bott import predict_coal_work
from repro.fsbm.collision_kernels import get_tables
from repro.fsbm.species import INTERACTIONS, Species

BIN_COUNTS = (17, 33, 66, 132)


def _synthetic_tables(nkr):
    """Kernel tables resized to nkr bins (nearest-sample upsampling)."""
    import dataclasses

    base = get_tables()
    idx = np.minimum(
        (np.arange(nkr) * base.nkr // nkr), base.nkr - 1
    )
    t750 = {n: k[np.ix_(idx, idx)] for n, k in base.tables_750.items()}
    t500 = {n: k[np.ix_(idx, idx)] for n, k in base.tables_500.items()}
    return dataclasses.replace(base, tables_750=t750, tables_500=t500, nkr=nkr)


def test_bin_count_scaling(benchmark):
    import time

    from repro.fsbm.coal_bott import coal_bott_step

    npts = 400

    def sweep():
        out = {}
        for nkr in BIN_COUNTS:
            tables = _synthetic_tables(nkr)
            rng = np.random.default_rng(0)
            dists = {sp: np.zeros((npts, nkr)) for sp in Species}
            dists[Species.LIQUID][:, nkr // 6 : nkr // 2] = rng.uniform(
                0, 5, (npts, nkr // 2 - nkr // 6)
            )
            t = np.full(npts, 280.0)
            p = np.full(npts, 700.0)
            start = time.perf_counter()
            stats = coal_bott_step(
                dists, t, p, 5.0, tables, INTERACTIONS, on_demand=True
            )
            wall = time.perf_counter() - start
            out[nkr] = (wall, stats.pair_entries)
        return out

    results = run_once(benchmark, sweep)
    print()
    print("Bin-count scaling of the collision step (O(b^2) expected):")
    print(f"{'bins':>6} {'wall (ms)':>10} {'pair entries':>14}")
    for nkr, (wall, entries) in results.items():
        print(f"{nkr:>6} {wall * 1e3:>10.2f} {entries:>14.0f}")
        benchmark.extra_info[f"wall_ms_{nkr}_bins"] = wall * 1e3

    # The counted work scales quadratically with bin count.
    e33 = results[33][1]
    e66 = results[66][1]
    e132 = results[132][1]
    assert e66 / e33 == pytest.approx(4.0, rel=0.3)
    assert e132 / e66 == pytest.approx(4.0, rel=0.3)
    # Wall time grows superlinearly too (allowing vectorization slack).
    assert results[132][0] > 2.0 * results[33][0]
