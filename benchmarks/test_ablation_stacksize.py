"""Ablation: NV_ACC_CUDA_STACKSIZE and the automatic-array failure.

Reproduces Sec. VI-B/C as a sweep: with coal_bott_new's automatic
arrays in place, collapse(3) launches fail until the stack setting
accommodates the frame; removing the automatic arrays (stage 3) makes
every setting work. Also shows the cost of the bigger setting: the
per-context stack reservation that later limits ranks per GPU.
"""

import pytest

from benchmarks.conftest import run_once
from repro.core.clock import SimClock
from repro.core.device import Device
from repro.core.directives import TargetTeamsDistributeParallelDo
from repro.core.engine import OffloadEngine
from repro.core.env import OffloadEnv
from repro.core.kernel import Kernel, KernelResources
from repro.errors import CudaStackOverflow
from repro.fsbm.temp_arrays import automatic_frame_bytes

STACK_SIZES = (1024, 2048, 8192, 65536)


def _kernel(frame):
    return Kernel(
        name="coal_bott_new_loop",
        loop_extents=(75, 50, 107),
        resources=KernelResources(
            registers_per_thread=234,
            automatic_array_bytes=frame,
            working_set_per_thread=4752.0,
            flops=1e8,
            traffic=(),
            active_iterations=10_000,
        ),
    )


def test_stacksize_sweep(benchmark):
    frame = automatic_frame_bytes()

    def sweep():
        out = {}
        for stack in STACK_SIZES:
            for autos, label in ((frame, "automatic"), (0, "temp_arrays")):
                device = Device()
                engine = OffloadEngine(
                    device=device, env=OffloadEnv(stack_bytes=stack), clock=SimClock()
                )
                try:
                    engine.launch(
                        _kernel(autos), TargetTeamsDistributeParallelDo(collapse=3)
                    )
                    out[(stack, label)] = "ok"
                except CudaStackOverflow:
                    out[(stack, label)] = "stack overflow"
                finally:
                    engine.close()
        return out

    results = run_once(benchmark, sweep)
    print()
    print("NV_ACC_CUDA_STACKSIZE sweep (collapse(3) launch):")
    print(f"{'stack':>8} {'automatic arrays':>18} {'temp_arrays ptrs':>18}")
    for stack in STACK_SIZES:
        print(
            f"{stack:>8} {results[(stack, 'automatic')]:>18} "
            f"{results[(stack, 'temp_arrays')]:>18}"
        )

    # The paper's failure: default stack + automatic arrays.
    assert results[(1024, "automatic")] == "stack overflow"
    # Remedy 1: raise NV_ACC_CUDA_STACKSIZE to 65536.
    assert results[(65536, "automatic")] == "ok"
    # Remedy 2: the pointer rewrite works at every setting.
    assert all(results[(s, "temp_arrays")] == "ok" for s in STACK_SIZES)

    # The hidden cost of remedy 1: a 64x larger per-rank reservation.
    small = Device().stack_reservation(OffloadEnv(stack_bytes=1024))
    large = Device().stack_reservation(OffloadEnv(stack_bytes=65536))
    benchmark.extra_info["reservation_1k_mb"] = small / 2**20
    benchmark.extra_info["reservation_64k_mb"] = large / 2**20
    assert large == 64 * small
