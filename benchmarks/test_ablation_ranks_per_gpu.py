"""Ablation: MPI ranks sharing one GPU (Sec. VII-A).

Sweeps 1-6 ranks per GPU at fixed total GPUs. Elapsed time keeps
improving through 4 ranks/GPU (underutilized devices absorb the extra
kernels while the CPU share shrinks), and the 6th rank cannot even
open a context — the paper's hard memory limit.
"""

import pytest

from benchmarks.conftest import run_once
from repro.optim.projection import project_run
from repro.optim.stages import Stage
from repro.wrf.namelist import conus12km_namelist

RANKS_PER_GPU = (1, 2, 4, 5, 6)
NUM_GPUS = 8


def test_ranks_per_gpu_sweep(benchmark, work_rates):
    def sweep():
        out = {}
        for rpg in RANKS_PER_GPU:
            nl = conus12km_namelist(
                num_ranks=rpg * NUM_GPUS,
                stage=Stage.OFFLOAD_COLLAPSE3,
                num_gpus=NUM_GPUS,
            )
            out[rpg] = project_run(nl, work_rates)
        return out

    results = run_once(benchmark, sweep)
    print()
    print(f"Ranks-per-GPU sweep ({NUM_GPUS} GPUs, final GPU code):")
    print(f"{'ranks/GPU':>10} {'ranks':>6} {'elapsed (s)':>12}")
    for rpg, pr in results.items():
        status = f"{pr.total_seconds:12.1f}" if not pr.failed else "  OOM"
        print(f"{rpg:>10} {rpg * NUM_GPUS:>6} {status}")
        if not pr.failed:
            benchmark.extra_info[f"elapsed_s_{rpg}rpg"] = pr.total_seconds

    # More ranks per GPU keep helping through 4 (paper's Fig. 4 trend).
    assert results[2].total_seconds < results[1].total_seconds
    assert results[4].total_seconds < results[2].total_seconds
    # 5 ranks/GPU still runs (the paper's observed maximum)...
    assert not results[5].failed
    # ...and the 6th hits the device-memory wall.
    assert results[6].failed
    assert "CudaOutOfMemory" in results[6].error
