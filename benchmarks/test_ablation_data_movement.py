"""Ablation: explicit map clauses vs OpenMP's default data movement.

Sec. V-B: "map clauses ... are essential in ensuring the least amount
of data transfers, since by default OpenMP always performs data
transfers when entering or exiting an offloading region regardless of
necessity." This bench launches the collision kernel per step with (a)
implicit tofrom mapping of everything it references, (b) precise
to/from clauses, and (c) persistent device residency (the temp_arrays
pattern), and reports the simulated PCIe seconds of each.
"""

import numpy as np
import pytest

from benchmarks.conftest import run_once
from repro.core.clock import SimClock, TimeBucket
from repro.core.device import Device
from repro.core.directives import (
    Map,
    MapType,
    TargetEnterData,
    TargetTeamsDistributeParallelDo,
    map_alloc,
    map_from,
    map_to,
)
from repro.core.engine import OffloadEngine
from repro.core.env import PAPER_ENV
from repro.core.kernel import Kernel, KernelResources

STEPS = 24
NPTS = 40_000  # collision-eligible cells on one rank
NKR = 33
NSPECIES = 7


def _kernel():
    return Kernel(
        name="coal_bott_new_loop",
        loop_extents=(75, 50, 107),
        resources=KernelResources(
            registers_per_thread=74,
            automatic_array_bytes=0,
            working_set_per_thread=4752.0,
            flops=5e8,
            traffic=(),
            active_iterations=NPTS,
        ),
    )


def _arrays():
    dists = {
        f"fsbm_{i}": np.zeros((NPTS, NKR), dtype=np.float32)
        for i in range(NSPECIES)
    }
    dists["t_old"] = np.zeros(NPTS, dtype=np.float32)
    dists["kernel_tables"] = np.zeros((20, NKR, NKR), dtype=np.float32)
    return dists


def test_data_movement_strategies(benchmark):
    def sweep():
        results = {}
        kernel = _kernel()

        # (a) implicit: everything referenced moves both ways per step.
        eng = OffloadEngine(device=Device(), env=PAPER_ENV, clock=SimClock())
        arrays = _arrays()
        for _ in range(STEPS):
            eng.launch(
                kernel,
                TargetTeamsDistributeParallelDo(collapse=3),
                referenced=arrays,
            )
        results["implicit tofrom"] = (
            eng.clock.bucket(TimeBucket.H2D) + eng.clock.bucket(TimeBucket.D2H)
        )
        eng.close()

        # (b) explicit: distributions to+from, inputs to-only.
        eng = OffloadEngine(device=Device(), env=PAPER_ENV, clock=SimClock())
        arrays = _arrays()
        dist_names = tuple(n for n in arrays if n.startswith("fsbm_"))
        directive = TargetTeamsDistributeParallelDo(
            collapse=3,
            maps=(
                Map(MapType.TOFROM, dist_names),
                map_to("t_old", "kernel_tables"),
            ),
        )
        for _ in range(STEPS):
            eng.launch(
                kernel,
                directive,
                to_arrays=arrays,
                from_names=dist_names,
            )
        results["explicit to/from"] = (
            eng.clock.bucket(TimeBucket.H2D) + eng.clock.bucket(TimeBucket.D2H)
        )
        eng.close()

        # (c) resident: tables + distributions live on the device; only
        # the per-step thermodynamic input moves.
        eng = OffloadEngine(device=Device(), env=PAPER_ENV, clock=SimClock())
        arrays = _arrays()
        eng.enter_data(
            TargetEnterData(
                maps=(map_alloc(*[n for n in arrays if n != "t_old"]),)
            ),
            shapes={
                n: a.shape for n, a in arrays.items() if n != "t_old"
            },
        )
        directive = TargetTeamsDistributeParallelDo(
            collapse=3, maps=(map_to("t_old"),)
        )
        for _ in range(STEPS):
            eng.launch(
                kernel,
                directive,
                to_arrays={"t_old": arrays["t_old"]},
                referenced=arrays,
            )
        results["device resident"] = (
            eng.clock.bucket(TimeBucket.H2D) + eng.clock.bucket(TimeBucket.D2H)
        )
        eng.close()
        return results

    results = run_once(benchmark, sweep)
    print()
    print(f"Data-movement ablation ({STEPS} steps, {NPTS} cells/rank):")
    for label, seconds in results.items():
        print(f"  {label:<18} {seconds * 1e3:10.2f} ms of PCIe time")
        benchmark.extra_info[label.replace(" ", "_")] = seconds * 1e3

    assert results["explicit to/from"] < results["implicit tofrom"]
    assert results["device resident"] < 0.2 * results["explicit to/from"]
