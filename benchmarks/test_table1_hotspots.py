"""Regenerates Table I: hotspot time contribution, gprof vs Nsight."""

from benchmarks.conftest import run_once
from repro.experiments import table1


def test_table1_hotspots(benchmark, bench_config):
    result = run_once(benchmark, lambda: table1.run(config=bench_config))
    print()
    print(result.format_table())
    print()
    print(result.compare_to_paper())

    benchmark.extra_info["fast_sbm_gprof_pct"] = result.gprof.percent_of("fast_sbm")
    benchmark.extra_info["fast_sbm_nsys_pct"] = result.nsys.percent_of("fast_sbm")
    benchmark.extra_info["paper_fast_sbm_gprof_pct"] = 51.39
    benchmark.extra_info["paper_fast_sbm_nsys_pct"] = 77.07

    # Shape assertions: fast_sbm dominates, and the single-task view
    # exceeds the cross-rank aggregate (load imbalance).
    assert result.gprof.percent_of("fast_sbm") > 30.0
    assert result.nsys.percent_of("fast_sbm") > result.gprof.percent_of("fast_sbm")
    assert result.gprof.percent_of("rk_scalar_tend") > result.gprof.percent_of(
        "rk_update_scalar"
    )
