"""Regenerates Table IV: collapse(2) offload of the collision loop."""

from benchmarks.conftest import run_once
from repro.experiments import table4


def test_table4_collapse2_offload(benchmark, bench_config):
    result = run_once(benchmark, lambda: table4.run(config=bench_config))
    print()
    print(result.format_table())
    print()
    print(result.compare_to_paper())

    coal = result.row("coal_bott_new loop")
    overall = result.row("Overall")
    benchmark.extra_info["coal_loop_speedup"] = coal.current_speedup
    benchmark.extra_info["overall_cumulative"] = overall.cumulative_speedup
    benchmark.extra_info["paper_coal_loop_speedup"] = 6.47
    benchmark.extra_info["paper_overall_cumulative"] = 2.09

    # Paper: loop 6.47x, overall cumulative 2.09x.
    assert 4.0 < coal.current_speedup < 11.0
    assert 1.5 < overall.cumulative_speedup < 2.6
    assert result.row("fast_sbm").cumulative_speedup > 2.0
