"""Comparison: bulk (Thompson-like) vs bin (FSBM) microphysics cost.

The paper's Sec. I motivation in numbers: bin schemes solve explicit
equations for every size bin, so their per-cell cost dwarfs a bulk
scheme's few power laws — and grows quadratically with bin count. Both
schemes here are real implementations run on the same thermodynamic
column; the wall-clock ratio is measured, not modeled.
"""

import time

import numpy as np
import pytest

from benchmarks.conftest import run_once
from repro.fsbm.bulk import BulkMicrophysics, BulkState, bulk_vs_bin_cost_ratio
from repro.fsbm.coal_bott import coal_bott_step
from repro.fsbm.collision_kernels import get_tables
from repro.fsbm.species import INTERACTIONS, Species
from repro.fsbm.thermo import saturation_mixing_ratio


def test_bulk_vs_bin_cost(benchmark):
    shape = (12, 20, 12)
    ncells = int(np.prod(shape))
    nk = shape[1]
    t_col = np.linspace(300.0, 230.0, nk)
    temperature = np.broadcast_to(t_col[None, :, None], shape).copy()
    p_col = np.linspace(950.0, 300.0, nk)
    pressure = np.broadcast_to(p_col[None, :, None], shape).copy()
    qv = 1.05 * saturation_mixing_ratio(temperature, pressure)
    rho = np.full(shape, 1.0e-3)

    def measure():
        # --- bulk ---------------------------------------------------------
        bulk_state = BulkState(shape=shape)
        bulk_state.qc[...] = 1.5e-3
        bulk = BulkMicrophysics(dt=5.0)
        start = time.perf_counter()
        for _ in range(5):
            bulk.step(
                bulk_state, temperature.copy(), pressure, qv.copy(), rho, 50_000.0
            )
        bulk_wall = (time.perf_counter() - start) / 5

        # --- bin (the collision step on the same cells) ---------------------
        rng = np.random.default_rng(0)
        dists = {sp: np.zeros((ncells, 33)) for sp in Species}
        dists[Species.LIQUID][:, 5:18] = rng.uniform(0, 5, (ncells, 13))
        dists[Species.SNOW][:, 8:16] = rng.uniform(0, 1, (ncells, 8))
        tables = get_tables()
        t_flat = temperature.reshape(-1)
        p_flat = pressure.reshape(-1)
        start = time.perf_counter()
        for _ in range(5):
            working = {sp: d.copy() for sp, d in dists.items()}
            coal_bott_step(
                working, t_flat, p_flat, 5.0, tables, INTERACTIONS, on_demand=True
            )
        bin_wall = (time.perf_counter() - start) / 5
        return bulk_wall, bin_wall

    bulk_wall, bin_wall = run_once(benchmark, measure)
    measured_ratio = bin_wall / bulk_wall
    analytic_ratio = bulk_vs_bin_cost_ratio()

    print()
    print("Bulk vs bin microphysics, same cells (wall clock, this machine):")
    print(f"  bulk step:            {bulk_wall * 1e3:8.2f} ms")
    print(f"  bin collision step:   {bin_wall * 1e3:8.2f} ms")
    print(f"  measured ratio:       {measured_ratio:8.1f}x")
    print(f"  analytic FLOP ratio:  {analytic_ratio:8.1f}x  (O(b^2) collision work)")
    benchmark.extra_info["measured_ratio"] = measured_ratio
    benchmark.extra_info["analytic_ratio"] = analytic_ratio

    # The bin scheme is at least an order of magnitude dearer even with
    # full vectorization (the scalar Fortran gap is the analytic one).
    assert measured_ratio > 10.0
    assert analytic_ratio > 100.0
