"""Ablation: offloading the condensation loops (Sec. VIII extension).

"The loops calling condensation routines are currently being offloaded
using a similar approach." This bench runs the final collapse(3) code
with and without the condensation offload and reports the additional
whole-program gain.
"""

import dataclasses

import pytest

from benchmarks.conftest import run_once
from repro.core.env import PAPER_ENV
from repro.optim.pipeline import timings_from_result
from repro.optim.stages import Stage
from repro.wrf.model import WrfModel
from repro.wrf.namelist import conus12km_namelist


def test_condensation_offload(benchmark, bench_config):
    def sweep():
        out = {}
        for offload_cond in (False, True):
            nl = conus12km_namelist(
                scale=bench_config.scale,
                num_ranks=bench_config.num_ranks,
                stage=Stage.OFFLOAD_COLLAPSE3,
                num_gpus=bench_config.num_ranks,
                env=PAPER_ENV,
                offload_condensation=offload_cond,
            )
            model = WrfModel(nl)
            try:
                result = model.run(num_steps=bench_config.num_steps)
                kernels = {
                    r.name for recs in result.kernel_records for r in recs
                }
                out[offload_cond] = (timings_from_result(result), kernels)
            finally:
                model.close()
        return out

    results = run_once(benchmark, sweep)
    base, base_kernels = results[False]
    cond, cond_kernels = results[True]

    print()
    print("Condensation-offload ablation (final GPU code +/- onecond offload):")
    print(f"{'version':<26} {'per-step (ms)':>14} {'fast_sbm (ms)':>14}")
    print(
        f"{'collision only':<26} {base.overall * 1e3:>14.2f} "
        f"{base.fast_sbm * 1e3:>14.2f}"
    )
    print(
        f"{'+ condensation offload':<26} {cond.overall * 1e3:>14.2f} "
        f"{cond.fast_sbm * 1e3:>14.2f}"
    )
    gain = base.overall / cond.overall
    print(f"additional whole-program speedup: {gain:.3f}x")
    benchmark.extra_info["additional_speedup"] = gain

    # The extension launches its own kernel and helps (modestly —
    # condensation is a minority of fast_sbm after the collision fix).
    assert "onecond_loop" in cond_kernels
    assert "onecond_loop" not in base_kernels
    assert 1.02 < gain < 1.8
    # fast_sbm itself improves more than the whole program (Amdahl).
    assert base.fast_sbm / cond.fast_sbm > gain
