"""Regenerates Table VI: Nsight Compute metrics of the two kernels."""

from benchmarks.conftest import run_once
from repro.experiments import table6


def test_table6_kernel_metrics(benchmark, bench_config):
    result = run_once(benchmark, lambda: table6.run(config=bench_config))
    print()
    print(result.format_table())
    print()
    print(result.compare_to_paper())

    c2, c3 = result.collapse2, result.collapse3
    benchmark.extra_info["time_ms_c2"] = c2.time_ms
    benchmark.extra_info["time_ms_c3"] = c3.time_ms
    benchmark.extra_info["occupancy_c2_pct"] = c2.achieved_occupancy_pct
    benchmark.extra_info["occupancy_c3_pct"] = c3.achieved_occupancy_pct
    benchmark.extra_info["paper_occupancy_c2_pct"] = 4.63
    benchmark.extra_info["paper_occupancy_c3_pct"] = 35.67

    # Every direction of the paper's table must hold.
    assert c3.time_ms < c2.time_ms / 4  # paper: 11.5x
    assert c2.achieved_occupancy_pct < 6.0  # paper: 4.63
    assert 25.0 < c3.achieved_occupancy_pct < 50.0  # paper: 35.67
    assert c3.l1_hit_rate_pct < c2.l1_hit_rate_pct  # paper: 61 < 85
    assert c3.l2_hit_rate_pct < c2.l2_hit_rate_pct  # paper: 69 < 96
    assert c3.dram_write_gb > 3 * c2.dram_write_gb  # paper: 5.5x
    assert c3.dram_read_gb > 3 * c2.dram_read_gb  # paper: 15.7x
