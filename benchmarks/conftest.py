"""Shared fixtures for the benchmark harness.

Run with::

    pytest benchmarks/ --benchmark-only -s

Each benchmark regenerates one table or figure of the paper at the
standard reduced configuration (DESIGN.md Sec. 5), prints the
reproduction next to the paper's values, and records the key measured
numbers in ``benchmark.extra_info`` so the JSON artifact carries them.
"""

from __future__ import annotations

import pytest

from repro.experiments.common import BenchConfig, cached_rates, sequence_for


@pytest.fixture(scope="session")
def bench_config() -> BenchConfig:
    """The benchmark-grade configuration (larger than the test quick one)."""
    return BenchConfig.full()


@pytest.fixture(scope="session")
def optimization_sequence(bench_config):
    """The four-stage live run shared by Tables III/IV/V."""
    return sequence_for(bench_config)


@pytest.fixture(scope="session")
def work_rates(bench_config):
    """Projection work rates shared by Fig. 4 / Table VII."""
    return cached_rates(
        bench_config.scale, bench_config.num_ranks, bench_config.num_steps
    )


def run_once(benchmark, fn):
    """Time one expensive experiment exactly once."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
