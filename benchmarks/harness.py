"""Wall-clock benchmark harness for the repo's *executed* hot paths.

Everything else under ``benchmarks/`` times the paper's *simulated*
seconds (Tables III-V etc.); this module times the real Python/numpy
kernels the reproduction itself spends wall-clock in, so the repo's own
performance is checkable:

* ``coal_bott`` — one :func:`repro.fsbm.coal_bott.coal_bott_step` call
  on a realistic mixed-phase state (the repo's hot loop, mirroring the
  paper's ``coal_bott_new``), in its default, dense-contraction, and
  sparse-scatter variants;
* ``model_step_rN`` — one full :meth:`repro.wrf.model.WrfModel.step`
  at N ranks (physics + halo exchange + transport);
* ``model_step_multirank`` — the same full step with ranks as real
  worker processes (``use_process_ranks``: shared-memory superblocks,
  pull-model halo exchange), at a fixed 2-worker workload so quick and
  full gate runs compare like with like;
* ``rank_scaling_wN`` — the strong-scaling sweep of the multiprocess
  engine (``repro bench --workers N ...``), informational: fixed
  CONUS-like domain split across 1/2/4/8 workers with ``cpu_count``
  and ``speedup_vs_w1`` recorded per entry;
* ``model_step_membersN`` / ``transport_membersN`` — the member-batched
  ensemble engine (PR 10): N perturbed scenarios stepped in one fused
  sweep over a ``(N, ni, nk, nj, nscalar)`` superblock, compared
  against N sequential solo runs (``per_member_ms``,
  ``speedup_vs_solo`` in the extras). ``model_step_members4`` and
  ``transport_members4`` are gated; ``repro bench --members N`` adds
  informational sweep entries at other member counts;
* ``transport_fused`` / ``transport_per_field`` — the scalar-advection
  engine in isolation on a fixed-size 234-scalar superblock: the fused
  path (pack + single fused kernel + unpack) against the per-field
  reference loop, at the same shape in quick and full mode so the
  numbers stay comparable;
* ``sedimentation`` / ``cond_remap`` / ``coal_apply_batched`` — the
  native physics layer (PR 5): the fused compiled sedimentation sweep,
  the compiled condensation KO-remap scatter, and the batched-GEMM
  collision engine, each at fixed workload shapes in quick and full
  mode.

Since PR 6 the compiled transport stencil and fsbm kernels are emitted
from the loop IR (``repro.codee.loopir`` → ``cgen``) rather than
handwritten; ``transport_fused``, ``sedimentation`` and ``cond_remap``
therefore gate the IR-emitted C, and their payload ``extra`` records
the generating IR kernel (``ir_kernel``) and whether it is registered.
Gate them individually with ``scripts/bench_gate.py --kernel
transport_fused --kernel sedimentation``.

``collect`` produces a JSON-serializable payload with per-kernel median
seconds and work stats; ``compare_payloads`` implements the regression
gate used by ``scripts/bench_gate.py`` and ``repro bench --gate``.

Usage::

    PYTHONPATH=src python -m repro bench --quick          # smoke run
    PYTHONPATH=src python -m repro bench --rev seed       # write BENCH_seed.json
    PYTHONPATH=src python -m repro bench --gate           # compare vs baseline

Baselines are committed at the repo root as ``BENCH_<rev>.json``;
``BENCH_seed.json`` is the pre-optimization state and stays fixed, the
newest ``BENCH_<rev>.json`` is the gate's reference. Refresh a baseline
by re-running ``repro bench`` on a quiet machine and committing the new
file.
"""

from __future__ import annotations

import inspect
import json
import os
import socket
import statistics
import subprocess
import time
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

#: Kernels the regression gate tracks (others are informational).
TRACKED_KERNELS = (
    "coal_bott",
    "model_step_r1",
    "model_step_r4",
    "model_step_multirank",
    "model_step_members4",
    "transport_fused",
    "transport_members4",
    "sedimentation",
    "cond_remap",
    "coal_apply_batched",
)

#: Relative slowdown above which the gate fails (0.15 == 15%).
DEFAULT_THRESHOLD = 0.15

#: Schema version of the BENCH_*.json payload.
SCHEMA = 1

REPO_ROOT = Path(__file__).resolve().parents[1]


@dataclass
class KernelBench:
    """Timing result for one benchmarked kernel."""

    name: str
    median_s: float
    mean_s: float
    min_s: float
    max_s: float
    reps: int
    #: Work stats / configuration details carried into the JSON.
    extra: dict = field(default_factory=dict)

    def to_json(self) -> dict:
        return {
            "median_s": self.median_s,
            "mean_s": self.mean_s,
            "min_s": self.min_s,
            "max_s": self.max_s,
            "reps": self.reps,
            "extra": self.extra,
        }


def _summarize(name: str, samples: list[float], extra: dict) -> KernelBench:
    return KernelBench(
        name=name,
        median_s=statistics.median(samples),
        mean_s=statistics.fmean(samples),
        min_s=min(samples),
        max_s=max(samples),
        reps=len(samples),
        extra=extra,
    )


def _ir_registered(name: str) -> bool:
    """Whether the loop-IR registry knows this kernel (False on code
    that predates the IR layer, so payloads stay comparable)."""
    try:
        from repro.codee import loopir
    except ImportError:
        return False
    return name in loopir.registered_kernels()


# --- workloads ---------------------------------------------------------------


def make_coal_state(
    npts: int = 1024, nkr: int = 33, seed: int = 2024
) -> tuple[dict, np.ndarray, np.ndarray]:
    """A realistic mixed-phase collision workload.

    Warm points carry liquid across the mid bins; cold points add snow,
    graupel and plate ice so the ice-phase interactions fire too —
    about the bin occupancy a convective CONUS column produces.
    """
    from repro.fsbm.species import Species

    rng = np.random.default_rng(seed)
    dists = {sp: np.zeros((npts, nkr)) for sp in Species}
    dists[Species.LIQUID][:, 3:22] = rng.uniform(0.0, 4.0, (npts, 19))
    cold = np.arange(npts) % 2 == 1
    ncold = int(cold.sum())
    dists[Species.SNOW][cold, 6:20] = rng.uniform(0.0, 1.5, (ncold, 14))
    dists[Species.GRAUPEL][cold, 8:18] = rng.uniform(0.0, 1.0, (ncold, 10))
    dists[Species.ICE_PLA][cold, 4:14] = rng.uniform(0.0, 0.8, (ncold, 10))
    temperature = np.where(cold, 258.0, 283.0) + rng.uniform(-3.0, 3.0, npts)
    pressure_mb = rng.uniform(520.0, 980.0, npts)
    return dists, temperature, pressure_mb


def _occupied_counts(dists: dict) -> dict:
    from repro.fsbm.state import N_EPS

    out = {}
    for sp, d in dists.items():
        present = d > N_EPS
        rev = present[:, ::-1]
        first = np.argmax(rev, axis=1)
        out[sp] = np.where(present.any(axis=1), d.shape[1] - first, 0)
    return out


def bench_coal_bott(
    mode: str = "default",
    npts: int = 1024,
    reps: int = 7,
    dt: float = 5.0,
    seed: int = 2024,
) -> KernelBench:
    """Time one collision step; ``mode`` selects the contraction path.

    ``"dense"``/``"sparse"`` force the split-tensor contraction variant
    through ``coal_bott_step``'s ``use_sparse`` flag when the installed
    code has one; on code that predates the flag (the seed) both fall
    back to the default path and record ``mode_supported: false``.
    """
    from repro.fsbm.coal_bott import coal_bott_step
    from repro.fsbm.collision_kernels import get_tables
    from repro.fsbm.species import INTERACTIONS

    dists, temperature, pressure_mb = make_coal_state(npts=npts, seed=seed)
    occupied = _occupied_counts(dists)
    tables = get_tables()

    kwargs = dict(occupied=occupied, on_demand=True)
    supported = True
    if mode != "default":
        if "use_sparse" in inspect.signature(coal_bott_step).parameters:
            kwargs["use_sparse"] = mode == "sparse"
        else:
            supported = False

    stats_holder = {}

    def run_once() -> float:
        work = {sp: d.copy() for sp, d in dists.items()}
        t0 = time.perf_counter()
        stats = coal_bott_step(
            work, temperature, pressure_mb, dt, tables, INTERACTIONS, **kwargs
        )
        elapsed = time.perf_counter() - t0
        stats_holder["stats"] = stats
        return elapsed

    run_once()  # warmup: builds tables/split caches outside the timing
    samples = [run_once() for _ in range(reps)]
    stats = stats_holder["stats"]
    return _summarize(
        f"coal_bott_{mode}" if mode != "default" else "coal_bott",
        samples,
        extra={
            "npts": npts,
            "mode": mode,
            "mode_supported": supported,
            "pair_entries": stats.pair_entries,
            "kernel_entries": stats.kernel_entries,
            "interactions_used": stats.interactions_used,
            "flops": stats.flops,
        },
    )


def bench_model_step(
    num_ranks: int,
    scale: float = 0.08,
    reps: int = 5,
    seed: int = 2024,
    rank_batching: str | None = None,
) -> KernelBench:
    """Time full ``WrfModel.step`` calls at one rank count.

    One warmup step builds all lazy tables; each subsequent step is one
    timing sample (the state evolves, but per-step cost is stable at
    these sizes).
    """
    from repro.optim.stages import Stage
    from repro.wrf.model import WrfModel
    from repro.wrf.namelist import conus12km_namelist

    kw: dict = dict(num_ranks=num_ranks, stage=Stage.LOOKUP, seed=seed)
    if rank_batching is not None:
        try:
            nl = conus12km_namelist(
                scale=scale, rank_batching=rank_batching, **kw
            )
        except TypeError:  # seed code has no rank_batching field
            nl = conus12km_namelist(scale=scale, **kw)
    else:
        nl = conus12km_namelist(scale=scale, **kw)

    model = WrfModel(nl)
    try:
        model.step()  # warmup
        samples = []
        for _ in range(reps):
            t0 = time.perf_counter()
            model.step()
            samples.append(time.perf_counter() - t0)
    finally:
        model.close()
    return _summarize(
        f"model_step_r{num_ranks}",
        samples,
        extra={
            "num_ranks": num_ranks,
            "scale": scale,
            # Always (ni, nk, nj) — DomainSpec has no `extents` attr, and
            # the old hasattr fallback would have emitted a different
            # axis order if one were ever added.
            "grid": [nl.domain.nx, nl.domain.nz, nl.domain.ny],
            "rank_batching": getattr(nl, "rank_batching", "serial"),
        },
    )


def bench_model_step_multirank(
    workers: int = 2,
    scale: float = 0.05,
    reps: int = 3,
    seed: int = 2024,
    name: str | None = None,
) -> KernelBench:
    """Time full steps with ranks as real worker processes.

    Exercises the multiprocess rank engine (``use_process_ranks``):
    shared-memory superblocks, pull-model halo exchange, command-pipe
    lockstep. The workload shape and rep count are fixed regardless of
    ``--quick`` so quick and full gate runs compare like with like. On
    code that predates the engine (or under ``REPRO_DISABLE_PROCPOOL``)
    the model falls back to thread batching and ``process_ranks`` in
    the extras records which path actually ran.
    """
    import os

    from repro.optim.stages import Stage
    from repro.wrf.model import WrfModel
    from repro.wrf.namelist import conus12km_namelist

    kw: dict = dict(
        num_ranks=workers, stage=Stage.LOOKUP, seed=seed
    )
    try:
        nl = conus12km_namelist(scale=scale, use_process_ranks=True, **kw)
    except TypeError:  # code predating process ranks: thread fallback
        nl = conus12km_namelist(scale=scale, **kw)

    model = WrfModel(nl)
    used_procs = getattr(model, "_pool", None) is not None
    try:
        model.step()  # warmup: worker startup cost stays out of samples
        samples = []
        for _ in range(reps):
            t0 = time.perf_counter()
            model.step()
            samples.append(time.perf_counter() - t0)
    finally:
        model.close()
    return _summarize(
        name or "model_step_multirank",
        samples,
        extra={
            "workers": workers,
            "scale": scale,
            "grid": [nl.domain.nx, nl.domain.nz, nl.domain.ny],
            "process_ranks": used_procs,
            "cpu_count": os.cpu_count(),
        },
    )


def _member_deltas(members: int) -> tuple:
    """Distinct-but-cheap scenario deltas: member 0 is the control run,
    member m>0 perturbs the warm-bubble amplitude and RNG stream so the
    batched sweep sees genuinely divergent states."""
    out = [()]
    for m in range(1, members):
        out.append(
            (("bubble_dtheta", 3.0 + 0.25 * m), ("seed_offset", m))
        )
    return tuple(out)


def bench_model_step_members(
    members: int = 4,
    scale: float = 0.05,
    reps: int = 3,
    seed: int = 2024,
    name: str | None = None,
) -> KernelBench:
    """Time member-batched ensemble steps against sequential solo runs.

    One ``EnsembleModel`` holds ``members`` perturbed scenarios in a
    single ``(N, ni, nk, nj, nscalar)`` superblock and steps them in one
    fused sweep; the reference is the same scenarios run one after
    another through solo ``WrfModel`` instances. Extras record
    ``per_member_ms`` for both paths and ``speedup_vs_solo`` (batched
    step vs the summed solo steps) — the amortization the member axis
    buys from shared tables, one transport kernel invocation, and one
    pass over the step machinery. The workload is fixed regardless of
    ``--quick`` so quick and full gate runs compare like with like.
    """
    from repro.optim.stages import Stage
    from repro.wrf.ensemble import EnsembleModel
    from repro.wrf.model import WrfModel
    from repro.wrf.namelist import conus12km_namelist, member_namelist

    nl = conus12km_namelist(
        scale=scale,
        num_ranks=1,
        stage=Stage.LOOKUP,
        seed=seed,
        members=members,
        member_deltas=_member_deltas(members),
    )

    ens = EnsembleModel(nl)
    batched = getattr(ens, "_solo", None) is None
    solos = [WrfModel(member_namelist(nl, m)) for m in range(members)]
    try:
        # Interleave batched and solo reps: on a shared host, frequency
        # and cache state drift over seconds, so timing one path first
        # and the other after biases whichever ran during the quieter
        # window. Alternating reps exposes both paths to the same drift.
        ens.step()  # warmup: tables, compiled kernels, workspaces
        for solo in solos:
            solo.step()
        samples = []
        solo_totals = []
        for _ in range(reps):
            t0 = time.perf_counter()
            ens.step()
            samples.append(time.perf_counter() - t0)
            t0 = time.perf_counter()
            for solo in solos:
                solo.step()
            solo_totals.append(time.perf_counter() - t0)
    finally:
        ens.close()
        for solo in solos:
            solo.close()
    solo_total = statistics.median(solo_totals)

    bench = _summarize(name or f"model_step_members{members}", samples, {})
    bench.extra = {
        "members": members,
        "scale": scale,
        "grid": [nl.domain.nx, nl.domain.nz, nl.domain.ny],
        "batched": batched,
        "per_member_ms": bench.median_s / members * 1e3,
        "solo_per_member_ms": solo_total / members * 1e3,
        "solo_total_s": solo_total,
        "speedup_vs_solo": (
            solo_total / bench.median_s
            if bench.median_s > 0
            else float("inf")
        ),
    }
    return bench


def bench_transport_members(
    members: int = 4,
    shape: tuple[int, int, int] = (36, 50, 26),
    reps: int = 5,
    seed: int = 2024,
    name: str | None = None,
) -> KernelBench:
    """Time the member-batched advection kernel against a member loop.

    One stacked ``(N, ni, nk, nj, nscalar)`` superblock advected by
    ``fused_euler_advect_members`` (single kernel invocation, member
    loop inside the compiled stencil) versus the same work issued as
    ``N`` separate ``fused_euler_advect`` calls. Fixed shape regardless
    of ``--quick``.
    """
    from repro.fsbm.species import Species
    from repro.wrf.dynamics import (
        FLOPS_PER_CELL_TEND,
        FLOPS_PER_CELL_UPDATE,
        WindSplit,
    )
    from repro.wrf.transport import (
        ScalarLayout,
        fused_euler_advect,
        fused_euler_advect_members,
        get_workspace,
    )

    nkr = 33
    ni, nk, nj = shape
    rng = np.random.default_rng(seed)
    layout = ScalarLayout(
        entries=(
            ("t", 1),
            ("qv", 1),
            ("w", 1),
            *((f"bin_{sp.value}", nkr) for sp in Species),
        )
    )
    ns = layout.nscalars
    slices = layout.slices()
    block = np.zeros((members, *shape, ns))
    block[..., slices["t"]] = rng.uniform(
        230.0, 300.0, (members, *shape, 1)
    )
    block[..., slices["qv"]] = rng.uniform(
        0.0, 0.02, (members, *shape, 1)
    )
    block[..., slices["w"]] = rng.uniform(
        -8.0, 8.0, (members, *shape, 1)
    )
    for sp in Species:
        block[..., slices[f"bin_{sp.value}"]] = rng.uniform(
            0.0, 2.0, (members, *shape, nkr)
        )
    u = rng.uniform(-20.0, 20.0, (members, *shape))
    v = rng.uniform(-20.0, 20.0, (members, *shape))
    w = np.ascontiguousarray(block[..., slices["w"].start])
    dt = 30.0
    clip_slices = layout.clip_slices(no_clip=("t", "w"))
    split = WindSplit.build(u, v, w, 12000.0, 500.0)
    member_splits = [
        WindSplit.build(u[m], v[m], w[m], 12000.0, 500.0)
        for m in range(members)
    ]
    ws = get_workspace(
        (members, *shape), ns, owner="bench_transport_members"
    )
    member_ws = get_workspace(
        shape, ns, owner="bench_transport_members_solo"
    )

    batched_block = block.copy()
    solo_block = block.copy()

    def run_batched() -> float:
        t0 = time.perf_counter()
        result = fused_euler_advect_members(
            batched_block, split, dt, ws, clip_slices
        )
        if result is not batched_block:
            batched_block[...] = result
        return time.perf_counter() - t0

    def run_solo() -> float:
        t0 = time.perf_counter()
        for m in range(members):
            result = fused_euler_advect(
                solo_block[m], member_splits[m], dt, member_ws, clip_slices
            )
            if result is not solo_block[m]:
                solo_block[m][...] = result
        return time.perf_counter() - t0

    run_batched()  # warmup: compiled stencil, workspace pools
    run_solo()
    samples = [run_batched() for _ in range(reps)]
    solo_samples = [run_solo() for _ in range(reps)]
    solo_median = statistics.median(solo_samples)

    from repro.wrf.cstencil import load_stencil

    cell_scalars = float(members * ni * nk * nj * ns)
    bench = _summarize(name or f"transport_members{members}", samples, {})
    bench.extra = {
        "members": members,
        "shape": list(shape),
        "nscalars": ns,
        "compiled_stencil": load_stencil() is not None,
        "ir_kernel": "advect_stage_members",
        "ir_registered": _ir_registered("advect_stage_members"),
        "per_member_ms": bench.median_s / members * 1e3,
        "solo_per_member_ms": solo_median / members * 1e3,
        "speedup_vs_solo": (
            solo_median / bench.median_s
            if bench.median_s > 0
            else float("inf")
        ),
        "flops": cell_scalars
        * (FLOPS_PER_CELL_TEND + FLOPS_PER_CELL_UPDATE),
        "superblock_bytes": int(cell_scalars * 8),
    }
    return bench


def bench_rank_scaling(
    worker_counts: tuple[int, ...] = (1, 2, 4, 8),
    scale: float = 0.12,
    reps: int = 3,
    seed: int = 2024,
) -> list[KernelBench]:
    """Strong-scaling sweep of the multiprocess rank engine.

    One ``rank_scaling_wN`` entry per worker count at a fixed
    CONUS-like domain (``scale=0.12`` ~ 51x36x50, split across
    workers), so the per-step medians measure strong scaling: same
    global work, more processes. Counts above ``os.cpu_count()``
    deliberately probe the contention regime — every entry records
    ``cpu_count`` and ``speedup_vs_w1`` so the numbers are honest about
    the host they ran on. Informational (not gated): wall-clock scaling
    is host-dependent.
    """
    results = [
        bench_model_step_multirank(
            workers=n,
            scale=scale,
            reps=reps,
            seed=seed,
            name=f"rank_scaling_w{n}",
        )
        for n in worker_counts
    ]
    base = results[0].median_s if results else 0.0
    for r in results:
        r.extra["speedup_vs_w1"] = (
            base / r.median_s if r.median_s > 0 else float("inf")
        )
    return results


def bench_transport(
    mode: str = "fused",
    shape: tuple[int, int, int] = (36, 50, 26),
    reps: int = 5,
    seed: int = 2024,
) -> KernelBench:
    """Time the scalar-transport engine in isolation at a fixed shape.

    ``mode="fused"`` measures what the model's default path pays end to
    end — packing all 234 scalars into the workspace superblock, one
    fused Euler advection, unpacking — while ``mode="per_field"``
    measures the reference loop (one ``rk_scalar_tend`` + update per
    field). The shape is fixed regardless of ``--quick`` so quick and
    full runs of the gate compare like with like.
    """
    from repro.fsbm.species import Species
    from repro.wrf.dynamics import (
        FLOPS_PER_CELL_TEND,
        FLOPS_PER_CELL_UPDATE,
        WindSplit,
        rk_scalar_tend,
    )
    from repro.wrf.transport import (
        ScalarLayout,
        fused_euler_advect,
        get_workspace,
        pack_superblock,
        unpack_superblock,
    )

    nkr = 33
    ni, nk, nj = shape
    rng = np.random.default_rng(seed)
    layout = ScalarLayout(
        entries=(
            ("t", 1),
            ("qv", 1),
            ("w", 1),
            *((f"bin_{sp.value}", nkr) for sp in Species),
        )
    )
    fields = {
        "t": rng.uniform(230.0, 300.0, shape),
        "qv": rng.uniform(0.0, 0.02, shape),
        "w": rng.uniform(-8.0, 8.0, shape),
    }
    for sp in Species:
        fields[f"bin_{sp.value}"] = rng.uniform(0.0, 2.0, (*shape, nkr))
    u = rng.uniform(-20.0, 20.0, shape)
    v = rng.uniform(-20.0, 20.0, shape)
    split = WindSplit.build(u, v, fields["w"], 12000.0, 500.0)
    dt = 30.0
    ws = get_workspace(shape, layout.nscalars, owner="bench_transport")
    clip_slices = layout.clip_slices(no_clip=("t", "w"))

    def run_once() -> float:
        if mode == "fused":
            t0 = time.perf_counter()
            block = pack_superblock(fields, layout, ws)
            result = fused_euler_advect(block, split, dt, ws, clip_slices)
            unpack_superblock(result, fields, layout)
            return time.perf_counter() - t0
        t0 = time.perf_counter()
        for name, arr in fields.items():
            tend = rk_scalar_tend(arr, split)
            arr += dt * tend
            if name != "t" and name != "w":
                np.maximum(arr, 0.0, out=arr)
        return time.perf_counter() - t0

    run_once()  # warmup: workspace pools, compiled stencil, caches
    samples = [run_once() for _ in range(reps)]
    cell_scalars = float(ni * nk * nj * layout.nscalars)
    from repro.wrf.cstencil import load_stencil

    return _summarize(
        f"transport_{mode}",
        samples,
        extra={
            "shape": list(shape),
            "nscalars": layout.nscalars,
            "mode": mode,
            "compiled_stencil": load_stencil() is not None,
            "ir_kernel": "advect_stage",
            "ir_registered": _ir_registered("advect_stage"),
            # One Euler stage of donor-cell tendency + update.
            "flops": cell_scalars
            * (FLOPS_PER_CELL_TEND + FLOPS_PER_CELL_UPDATE),
            "superblock_bytes": int(cell_scalars * 8),
            "min_traffic_bytes": int(cell_scalars * 8 * 2),  # 1R + 1W
        },
    )


def bench_sedimentation(
    shape: tuple[int, int, int] = (16, 50, 12),
    reps: int = 7,
    dt: float = 5.0,
    seed: int = 2024,
) -> KernelBench:
    """Time one full-state sedimentation step at a fixed shape.

    Every species is seeded so the sweep has no absent-species
    shortcuts; the shape is fixed regardless of ``--quick`` so quick
    and full gate runs compare like with like. Records whether the
    compiled ``sed_sweep`` kernel (vs the numpy fallback) ran.
    """
    from repro.fsbm import ckernels
    from repro.fsbm.sedimentation import sedimentation_step
    from repro.fsbm.species import Species
    from repro.fsbm.state import MicroState
    from repro.wrf.state import base_state_column

    rng = np.random.default_rng(seed)
    state = MicroState(shape=shape)
    nkr = state.nkr
    for sp in Species:
        occ = rng.uniform(size=(*shape, nkr)) > 0.5
        state.dists[sp][...] = np.where(
            occ, rng.uniform(0.0, 2.0, (*shape, nkr)), 0.0
        )
    base = base_state_column(shape[1], 500.0)
    p_levels = base["pressure_mb"]
    dz_cm = 500.0 * 100.0

    stats_holder = {}

    def run_once() -> float:
        work = state.copy()
        t0 = time.perf_counter()
        stats_holder["stats"] = sedimentation_step(work, p_levels, dz_cm, dt)
        return time.perf_counter() - t0

    run_once()  # warmup: courant cache, compiled kernel
    samples = [run_once() for _ in range(reps)]
    stats = stats_holder["stats"]
    return _summarize(
        "sedimentation",
        samples,
        extra={
            "shape": list(shape),
            "nkr": nkr,
            "compiled": ckernels.load_kernels() is not None,
            "ir_kernel": "sed_sweep",
            "ir_registered": _ir_registered("sed_sweep"),
            "cell_bins": stats.cell_bins,
            "flops": stats.flops,
        },
    )


def bench_cond_remap(
    npts: int = 2048,
    reps: int = 7,
    seed: int = 2024,
) -> KernelBench:
    """Time the condensation KO-remap at a fixed point count.

    Perturbs a seeded liquid spectrum by a smooth growth increment and
    times ``_remap_spectrum`` (compiled scatter by default, two-pass
    ``bincount`` fallback under the kill switches). Fixed ``npts``
    regardless of ``--quick``.
    """
    from repro.fsbm import ckernels
    from repro.fsbm.condensation import _remap_spectrum
    from repro.fsbm.species import Species, species_bins

    grid = species_bins()[Species.LIQUID]
    nkr = grid.masses.shape[0]
    rng = np.random.default_rng(seed)
    n = np.where(
        rng.uniform(size=(npts, nkr)) > 0.4,
        rng.uniform(0.0, 3.0, (npts, nkr)),
        0.0,
    )
    # Mixed growth/evaporation perturbation, a few points off-ladder.
    factor = rng.uniform(0.45, 2.2, (npts, 1))
    new_mass = grid.masses[None, :] * factor

    def run_once() -> float:
        t0 = time.perf_counter()
        _remap_spectrum(n, new_mass, grid)
        return time.perf_counter() - t0

    run_once()  # warmup
    samples = [run_once() for _ in range(reps)]
    return _summarize(
        "cond_remap",
        samples,
        extra={
            "npts": npts,
            "nkr": nkr,
            "compiled": ckernels.load_kernels() is not None,
            "ir_kernel": "remap_scatter",
            "ir_registered": _ir_registered("remap_scatter"),
        },
    )


def bench_coal_apply(
    npts: int = 1024,
    reps: int = 7,
    dt: float = 5.0,
    seed: int = 2024,
) -> KernelBench:
    """Time the batched-GEMM collision engine at a fixed point count.

    Same workload as ``coal_bott`` but forced through
    ``use_batched=True`` (stacked operators + persistent
    :class:`repro.fsbm.coal_bott.CoalWorkspace`), so the tracked pair
    ``coal_bott`` / ``coal_apply_batched`` compares the two sparse
    engines directly. Fixed ``npts`` regardless of ``--quick``.
    """
    from repro.fsbm.coal_bott import coal_bott_step, get_coal_workspace
    from repro.fsbm.collision_kernels import get_tables
    from repro.fsbm.species import INTERACTIONS

    dists, temperature, pressure_mb = make_coal_state(npts=npts, seed=seed)
    occupied = _occupied_counts(dists)
    tables = get_tables()
    workspace = get_coal_workspace(owner="bench_coal_apply")

    def run_once() -> float:
        work = {sp: d.copy() for sp, d in dists.items()}
        t0 = time.perf_counter()
        coal_bott_step(
            work,
            temperature,
            pressure_mb,
            dt,
            tables,
            INTERACTIONS,
            occupied=occupied,
            on_demand=True,
            use_batched=True,
            workspace=workspace,
        )
        return time.perf_counter() - t0

    run_once()  # warmup: operators, workspace high-water marks
    samples = [run_once() for _ in range(reps)]
    return _summarize(
        "coal_apply_batched",
        samples,
        extra={
            "npts": npts,
            "workspace_bytes": workspace.nbytes,
            "workspace_allocations": workspace.allocations,
        },
    )


# --- collection --------------------------------------------------------------


def git_revision(short: bool = True) -> str:
    """Current git revision, or ``"local"`` outside a repo."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short" if short else "HEAD", "HEAD"],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
            check=True,
        )
        return out.stdout.strip()
    except (OSError, subprocess.CalledProcessError):
        return "local"


def collect(
    quick: bool = False,
    kernels: list[str] | None = None,
    workers: list[int] | None = None,
    members: list[int] | None = None,
) -> dict:
    """Run the benchmark suite and return the BENCH payload.

    ``workers`` adds a strong-scaling sweep of the multiprocess rank
    engine at those worker counts (``repro bench --workers N``); the
    sweep is expensive and host-dependent, so it only runs when asked
    for explicitly (or when ``kernels`` names ``rank_scaling``).
    ``members`` likewise adds an ensemble-batching sweep: one
    ``model_step_membersN`` entry per requested member count, each with
    ``per_member_ms`` and ``speedup_vs_solo`` in its extras.
    """
    npts = 256 if quick else 1024
    reps = 3 if quick else 7
    model_reps = 2 if quick else 5
    scale = 0.05 if quick else 0.08

    results: list[KernelBench] = []
    wanted = set(kernels) if kernels else None

    def want(name: str) -> bool:
        return wanted is None or name in wanted

    if want("coal_bott"):
        results.append(bench_coal_bott("default", npts=npts, reps=reps))
    if want("coal_bott_dense"):
        results.append(bench_coal_bott("dense", npts=npts, reps=reps))
    if want("coal_bott_sparse"):
        results.append(bench_coal_bott("sparse", npts=npts, reps=reps))
    for ranks in (1, 4):
        name = f"model_step_r{ranks}"
        if want(name):
            results.append(
                bench_model_step(ranks, scale=scale, reps=model_reps)
            )
    for mode in ("fused", "per_field"):
        name = f"transport_{mode}"
        if want(name):
            results.append(bench_transport(mode, reps=reps))
    if want("model_step_multirank"):
        results.append(bench_model_step_multirank())
    ran_members: set[int] = set()
    if want("model_step_members4"):
        results.append(bench_model_step_members(4, reps=model_reps))
        ran_members.add(4)
    if want("transport_members4"):
        results.append(bench_transport_members(4, reps=reps))
    if members:
        for n in members:
            if n in ran_members:
                continue
            results.append(bench_model_step_members(n, reps=model_reps))
            ran_members.add(n)
    if want("sedimentation"):
        results.append(bench_sedimentation(reps=reps))
    if want("cond_remap"):
        results.append(bench_cond_remap(reps=reps))
    if want("coal_apply_batched"):
        results.append(bench_coal_apply(reps=reps))
    if workers or (wanted is not None and "rank_scaling" in wanted):
        results.extend(
            bench_rank_scaling(
                worker_counts=tuple(workers) if workers else (1, 2, 4, 8),
                scale=0.08 if quick else 0.12,
                reps=2 if quick else 3,
            )
        )

    return {
        "schema": SCHEMA,
        "revision": git_revision(),
        "hostname": socket.gethostname(),
        "cpu_count": os.cpu_count(),
        "quick": quick,
        "config": {"npts": npts, "reps": reps, "scale": scale},
        "kernels": {r.name: r.to_json() for r in results},
    }


def write_payload(payload: dict, path: Path | str) -> Path:
    path = Path(path)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def load_payload(path: Path | str) -> dict:
    return json.loads(Path(path).read_text())


def default_output_path(rev: str | None = None) -> Path:
    return REPO_ROOT / f"BENCH_{rev or git_revision()}.json"


def find_baseline(exclude: Path | None = None) -> Path | None:
    """The committed baseline to gate against.

    Prefers the newest non-seed ``BENCH_*.json`` at the repo root and
    falls back to ``BENCH_seed.json``.
    """
    candidates = [
        p
        for p in sorted(REPO_ROOT.glob("BENCH_*.json"))
        if exclude is None or p.resolve() != Path(exclude).resolve()
    ]
    if not candidates:
        return None
    non_seed = [p for p in candidates if p.name != "BENCH_seed.json"]
    if non_seed:
        return max(non_seed, key=lambda p: p.stat().st_mtime)
    return candidates[0]


# --- the gate ----------------------------------------------------------------


@dataclass
class GateFinding:
    """One tracked kernel's current-vs-baseline comparison."""

    kernel: str
    baseline_s: float
    current_s: float
    regressed: bool

    @property
    def ratio(self) -> float:
        if self.baseline_s == 0:
            return float("inf")
        return self.current_s / self.baseline_s

    def render(self, threshold: float) -> str:
        tag = "REGRESSED" if self.regressed else "ok"
        return (
            f"{self.kernel:<20} baseline {self.baseline_s * 1e3:9.3f} ms   "
            f"current {self.current_s * 1e3:9.3f} ms   "
            f"x{self.ratio:5.2f}  [{tag}, gate at x{1 + threshold:.2f}]"
        )


def compare_payloads(
    current: dict,
    baseline: dict,
    threshold: float = DEFAULT_THRESHOLD,
    kernels: tuple[str, ...] = TRACKED_KERNELS,
) -> list[GateFinding]:
    """Compare tracked kernel medians; only shared kernels are gated."""
    findings: list[GateFinding] = []
    for name in kernels:
        cur = current.get("kernels", {}).get(name)
        base = baseline.get("kernels", {}).get(name)
        if cur is None or base is None:
            continue
        findings.append(
            GateFinding(
                kernel=name,
                baseline_s=float(base["median_s"]),
                current_s=float(cur["median_s"]),
                regressed=float(cur["median_s"])
                > float(base["median_s"]) * (1.0 + threshold),
            )
        )
    return findings


def gate_exit_code(findings: list[GateFinding]) -> int:
    """0 = no tracked kernel regressed, 2 = at least one did."""
    return 2 if any(f.regressed for f in findings) else 0
