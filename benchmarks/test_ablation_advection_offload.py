"""Ablation: offloading the scalar-advection loops (Sec. VIII).

After the collision and condensation fixes, ``rk_scalar_tend`` is the
next hotspot (Table I's second row). This bench stacks the three
offloads and reports the whole-program trajectory, ending with nearly
all of the per-step work on the device.
"""

import pytest

from benchmarks.conftest import run_once
from repro.core.env import PAPER_ENV
from repro.optim.pipeline import timings_from_result
from repro.optim.stages import Stage
from repro.wrf.model import WrfModel
from repro.wrf.namelist import conus12km_namelist

VARIANTS = (
    ("baseline (CPU)", Stage.BASELINE, False, False),
    ("coal offload", Stage.OFFLOAD_COLLAPSE3, False, False),
    ("+ condensation", Stage.OFFLOAD_COLLAPSE3, True, False),
    ("+ advection", Stage.OFFLOAD_COLLAPSE3, True, True),
)


def test_offload_stacking(benchmark, bench_config):
    def sweep():
        out = {}
        for label, stage, cond, adv in VARIANTS:
            kw = dict(
                scale=bench_config.scale,
                num_ranks=bench_config.num_ranks,
                stage=stage,
            )
            if stage.uses_gpu:
                kw.update(
                    num_gpus=bench_config.num_ranks,
                    env=PAPER_ENV,
                    offload_condensation=cond,
                    offload_advection=adv,
                )
            model = WrfModel(conus12km_namelist(**kw))
            try:
                result = model.run(num_steps=bench_config.num_steps)
                out[label] = timings_from_result(result)
            finally:
                model.close()
        return out

    results = run_once(benchmark, sweep)
    print()
    print("Offload stacking (whole-program per-step, simulated):")
    base = results["baseline (CPU)"].overall
    print(f"{'version':<18} {'per-step (ms)':>14} {'speedup':>9}")
    for label, *_ in VARIANTS:
        t = results[label].overall
        print(f"{label:<18} {t * 1e3:>14.2f} {base / t:>8.2f}x")
        benchmark.extra_info[label] = base / t

    # Each added offload improves the whole program further.
    seq = [results[label].overall for label, *_ in VARIANTS]
    assert seq[0] > seq[1] > seq[2] > seq[3]
    # Advection offload is a meaningful additional win (rk_scalar_tend
    # was the second hotspot of Table I).
    assert seq[2] / seq[3] > 1.2
