"""Regenerates Table V: full collapse(3) via temp_arrays pointers."""

from benchmarks.conftest import run_once
from repro.experiments import table5


def test_table5_full_collapse(benchmark, bench_config):
    result = run_once(benchmark, lambda: table5.run(config=bench_config))
    print()
    print(result.format_table())
    print()
    print(result.compare_to_paper())

    coal = result.row("coal_bott_new loop")
    overall = result.row("Overall")
    benchmark.extra_info["coal_loop_speedup"] = coal.current_speedup
    benchmark.extra_info["coal_loop_cumulative"] = coal.cumulative_speedup
    benchmark.extra_info["overall_cumulative"] = overall.cumulative_speedup
    benchmark.extra_info["paper_coal_loop_speedup"] = 10.3
    benchmark.extra_info["paper_coal_loop_cumulative"] = 66.6
    benchmark.extra_info["paper_overall_cumulative"] = 2.20

    # Paper: loop 10.3x (66.6x cumulative), overall cumulative 2.20x.
    assert 6.0 < coal.current_speedup < 16.0
    assert coal.cumulative_speedup > 30.0
    assert 1.6 < overall.cumulative_speedup < 2.8
    # The whole-program gain saturates (Amdahl): current speedup small.
    assert overall.current_speedup < 1.3
