"""Real wall-clock microbenchmarks of the physics kernels.

Unlike the table/figure benches (which report *simulated* Perlmutter
time), these measure this machine's actual execution of the NumPy
physics — including a genuine demonstration that the paper's lookup
optimization is a real-world win: interpolating all 20 full collision
tables costs far more than fetching the entries a point actually uses.
"""

import numpy as np
import pytest

from repro.fsbm.coal_bott import coal_bott_step
from repro.fsbm.collision_kernels import get_tables
from repro.fsbm.kernals_ks import kernals_ks
from repro.fsbm.species import INTERACTIONS, Species, interactions_for_regime


@pytest.fixture(scope="module")
def tables():
    return get_tables()


def _liquid_dists(npts, seed=0):
    rng = np.random.default_rng(seed)
    dists = {sp: np.zeros((npts, 33)) for sp in Species}
    dists[Species.LIQUID][:, 5:18] = rng.uniform(0, 5, (npts, 13))
    return dists


def test_perf_kernals_ks_full_precompute(benchmark, tables):
    """Baseline: all 20 tables interpolated per grid point."""
    pressures = np.linspace(950.0, 450.0, 64)

    def precompute_column():
        for p in pressures:
            kernals_ks(tables, float(p))

    benchmark(precompute_column)
    benchmark.extra_info["entries_per_point"] = tables.baseline_entry_count()


def test_perf_on_demand_entries(benchmark, tables):
    """Lookup optimization: only the warm-regime entries, occupied bins."""
    pressures = np.linspace(950.0, 450.0, 64)
    warm = interactions_for_regime(290.0)

    def on_demand_column():
        for p in pressures:
            for ix in warm:
                tables.interpolate_table(ix.name, float(p))[:18, :18]

    benchmark(on_demand_column)
    benchmark.extra_info["interactions_used"] = len(warm)


def test_perf_coal_bott_step(benchmark, tables):
    """The vectorized collision step on a realistic active-cell batch."""
    dists = _liquid_dists(2000)
    t = np.full(2000, 280.0)
    p = np.full(2000, 700.0)

    def step():
        working = {sp: d.copy() for sp, d in dists.items()}
        coal_bott_step(working, t, p, 5.0, tables, INTERACTIONS, on_demand=True)

    benchmark(step)


def test_perf_condensation_step(benchmark):
    from repro.fsbm.condensation import onecond1
    from repro.fsbm.thermo import saturation_mixing_ratio

    npts = 5000
    dists = _liquid_dists(npts)
    t = np.full(npts, 285.0)
    p = np.full(npts, 800.0)
    qv = 1.03 * saturation_mixing_ratio(t, p)
    rho = np.full(npts, 1e-3)
    ccn = np.full(npts, 100.0)

    def step():
        onecond1(
            {sp: d.copy() for sp, d in dists.items()},
            t.copy(),
            p,
            qv.copy(),
            rho,
            ccn.copy(),
            5.0,
        )

    benchmark(step)


def test_perf_transport_all_scalars(benchmark):
    """One donor-cell sweep over the 234 advected scalars of a patch."""
    from repro.wrf.dynamics import WindSplit, rk_scalar_tend

    shape = (30, 50, 24)
    rng = np.random.default_rng(0)
    u = np.full(shape, 8.0)
    v = np.full(shape, 2.0)
    w = rng.normal(0, 1, shape)
    t3d = rng.uniform(250, 300, shape)
    bins = rng.uniform(0, 1, (*shape, 33))

    def sweep():
        split = WindSplit.build(u, v, w, 12000.0, 500.0)
        rk_scalar_tend(t3d, split)
        for _ in range(7):
            rk_scalar_tend(bins, split)

    benchmark(sweep)
