"""Regenerates Table III: the kernals_ks lookup optimization."""

from benchmarks.conftest import run_once
from repro.experiments import table3


def test_table3_lookup_optimization(benchmark, bench_config):
    result = run_once(benchmark, lambda: table3.run(config=bench_config))
    print()
    print(result.format_table())
    print()
    print(result.compare_to_paper())

    fast_sbm = result.speedup_of("fast_sbm")
    overall = result.speedup_of("Overall")
    benchmark.extra_info["fast_sbm_speedup"] = fast_sbm
    benchmark.extra_info["overall_speedup"] = overall
    benchmark.extra_info["paper_fast_sbm_speedup"] = 1.83
    benchmark.extra_info["paper_overall_speedup"] = 1.42

    # Paper: 1.83x / 1.42x. Shape: both > 1, fast_sbm within ~30%.
    assert 1.4 < fast_sbm < 2.6
    assert 1.2 < overall < 1.9
    assert fast_sbm > overall
