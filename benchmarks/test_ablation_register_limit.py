"""Ablation: manual register capping (-maxregcount).

Sec. VIII: "Manually limiting the register count resulted in
significant speedup in the collapse(3) case, although further reduction
beyond 64 appears to have no effect." The sweep reproduces the shape:
capping a register-heavy kernel raises occupancy and cuts time until
the cap stops being the occupancy limiter; spill traffic then eats any
further gain.
"""

import pytest

from benchmarks.conftest import run_once
from repro.core.costmodel import GpuCostModel
from repro.core.directives import TargetTeamsDistributeParallelDo
from repro.core.env import OffloadEnv
from repro.core.kernel import Kernel, KernelResources
from repro.core.launch import plan_launch
from repro.hardware.memory import AccessPattern, TrafficComponent
from repro.hardware.specs import A100_40GB

CAPS = (None, 168, 128, 96, 64, 48, 32)


def _coal_like_kernel(regs=168):
    """A collapse(3)-geometry collision kernel before register tuning."""
    flops = 5.0e8
    return Kernel(
        name="coal_bott_new_loop",
        loop_extents=(75, 50, 107),
        resources=KernelResources(
            registers_per_thread=regs,
            automatic_array_bytes=0,
            working_set_per_thread=4752.0,
            flops=flops,
            traffic=(
                TrafficComponent(
                    name="work",
                    pattern=AccessPattern.GLOBAL_STRIDED,
                    read_bytes=flops * 0.4,
                    write_bytes=flops * 0.2,
                ),
            ),
            active_iterations=75 * 50 * 107,
        ),
    )


def test_register_cap_sweep(benchmark):
    model = GpuCostModel(A100_40GB)
    kernel = _coal_like_kernel()

    def sweep():
        out = {}
        for cap in CAPS:
            env = OffloadEnv(max_registers=cap)
            launch = plan_launch(
                kernel, TargetTeamsDistributeParallelDo(collapse=3), env
            )
            timing = model.time(kernel, launch)
            out[cap] = (timing.total, timing.occupancy.achieved)
        return out

    results = run_once(benchmark, sweep)
    print()
    print("Register-cap ablation (collapse(3) collision kernel):")
    print(f"{'maxregcount':>12} {'time (ms)':>10} {'occupancy':>10}")
    for cap, (t, occ) in results.items():
        label = "none" if cap is None else str(cap)
        print(f"{label:>12} {t * 1e3:>10.3f} {occ * 100:>9.1f}%")
        benchmark.extra_info[f"time_ms_cap_{label}"] = t * 1e3

    # Capping to 64 helps noticeably versus uncapped...
    assert results[64][0] < results[None][0] * 0.85
    # ...occupancy rises monotonically as the cap drops to 64...
    assert results[64][1] > results[128][1] > results[None][1]
    # ...but below 64 the improvement stalls (paper: "no effect").
    assert results[32][0] > results[64][0] * 0.85
