"""Regenerates Figure 3: roofline placement of the offloaded kernels."""

from benchmarks.conftest import run_once
from repro.experiments import figure3


def test_figure3_roofline(benchmark, bench_config):
    result = run_once(benchmark, lambda: figure3.run(config=bench_config))
    print()
    print(result.format_table())
    print()
    print(result.compare_to_paper())

    c2 = result.point("collapse(2) fp32")
    c3 = result.point("collapse(3) fp32")
    benchmark.extra_info["c2_gflops"] = c2.performance / 1e9
    benchmark.extra_info["c3_gflops"] = c3.performance / 1e9
    benchmark.extra_info["c3_fraction_of_ceiling"] = result.model.efficiency(c3)

    # The paper's qualitative picture: the full collapse lifts the
    # kernel toward the memory roofline while the added DRAM traffic
    # lowers its arithmetic intensity.
    assert "MISS" not in result.compare_to_paper()
    assert c3.performance > 5 * c2.performance
    assert c3.arithmetic_intensity < c2.arithmetic_intensity
    # fp64 points sit at roughly half the fp32 rate (compute-bound side).
    c2_64 = result.point("collapse(2) fp64")
    assert 0.3 < c2_64.performance / c2.performance < 0.8
