"""Digit agreement degrades with run length (EXPERIMENTS.md claim).

The paper's 1-5 digit microphysics agreement comes from a 3-hour run;
our short runs sit higher in the band. This test demonstrates the
mechanism: the CPU/GPU digit agreement after many steps is no better
than (and typically worse than) after a few.
"""

import pytest

from repro.core.env import PAPER_ENV
from repro.optim.stages import Stage
from repro.wrf.diffwrf import diffwrf
from repro.wrf.model import WrfModel
from repro.wrf.namelist import conus12km_namelist


def _digit_floor(steps: int) -> float:
    frames = {}
    for stage in (Stage.BASELINE, Stage.OFFLOAD_COLLAPSE3):
        kw = dict(scale=0.05, num_ranks=2, stage=stage)
        if stage.uses_gpu:
            kw.update(num_gpus=2, env=PAPER_ENV)
        model = WrfModel(conus12km_namelist(**kw))
        try:
            model.run(num_steps=steps)
            frames[stage] = model.gather_output()
        finally:
            model.close()
    diffs = diffwrf(frames[Stage.BASELINE], frames[Stage.OFFLOAD_COLLAPSE3])
    changed = [d for d in diffs if not d.bitwise_identical]
    assert changed, "the precision paths must diverge"
    return min(d.digits for d in changed)


def test_longer_runs_agree_no_better():
    short = _digit_floor(steps=2)
    long = _digit_floor(steps=10)
    # Nonlinear error growth: more steps never tighten the agreement.
    assert long <= short + 0.5
    # And both stay inside a sane significant-digit range.
    assert 1.0 < long <= 16.0
    assert 1.0 < short <= 16.0
