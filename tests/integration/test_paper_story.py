"""Capstone: the paper's whole narrative as one integration test.

Profile -> analyze with Codee -> refactor (stage 1) -> offload (stage 2,
hitting and fixing the stack overflow) -> full collapse (stage 3) ->
verify the output -> evaluate scaling. Every arrow is executed.
"""

import numpy as np
import pytest

from repro.codee import sources
from repro.codee.dependence import analyze_loop
from repro.codee.fparser import parse_source
from repro.codee.rewrite import offload_rewrite
from repro.core.clock import SimClock
from repro.core.device import Device
from repro.core.directives import TargetTeamsDistributeParallelDo
from repro.core.engine import OffloadEngine
from repro.core.env import PAPER_ENV, OffloadEnv
from repro.core.kernel import Kernel, KernelResources, estimate_registers
from repro.errors import CudaStackOverflow
from repro.fsbm.temp_arrays import automatic_frame_bytes
from repro.optim.pipeline import run_optimization_sequence
from repro.optim.projection import WorkRates, project_run
from repro.optim.stages import Stage
from repro.profiling.gprof import TABLE1_ROUTINES, GprofReport
from repro.wrf.diffwrf import diffwrf
from repro.wrf.model import WrfModel
from repro.wrf.namelist import conus12km_namelist

SCALE = 0.06
RANKS = 2
STEPS = 2


@pytest.fixture(scope="module")
def namelist():
    return conus12km_namelist(scale=SCALE, num_ranks=RANKS)


def test_step0_profiling_identifies_fast_sbm(namelist):
    """Sec. III: gprof points at fast_sbm."""
    model = WrfModel(namelist)
    result = model.run(num_steps=STEPS)
    report = GprofReport.from_run(result, TABLE1_ROUTINES)
    assert report.percent_of("fast_sbm") > 5.0
    top_two = {r.name for r in report.rows[:2]}
    assert "fast_sbm" in top_two


def test_step1_codee_justifies_the_lookup_refactor():
    """Sec. VI-A: dependence analysis proves the rewrite safe."""
    sf = parse_source(sources.KERNALS_KS_SOURCE, "module_mp_fast_sbm.f90")
    mod = sf.modules[0]
    sub = mod.routine("kernals_ks")
    report = analyze_loop(sub.loops()[0], sub, mod)
    assert report.parallelizable
    assert set(report.write_only_arrays) == {"cwll", "cwls", "cwlg"}
    rewrite = offload_rewrite(
        sources.KERNALS_KS_SOURCE, line=sub.loops()[0].line
    )
    assert "map(from:" in rewrite.source


def test_step2_offload_hits_and_fixes_the_stack_overflow():
    """Sec. VI-B/C: collapse(3) + automatic arrays fails; both remedies."""
    kernel = Kernel(
        name="coal_bott_new_loop",
        loop_extents=(75, 50, 107),
        resources=KernelResources(
            registers_per_thread=estimate_registers(30, 30),
            automatic_array_bytes=automatic_frame_bytes(),
            working_set_per_thread=4752.0,
            flops=1e8,
            traffic=(),
            active_iterations=100_000,
        ),
    )
    eng = OffloadEngine(device=Device(), env=OffloadEnv(), clock=SimClock())
    eng.launch(kernel, TargetTeamsDistributeParallelDo(collapse=2))  # ok
    with pytest.raises(CudaStackOverflow):
        eng.launch(kernel, TargetTeamsDistributeParallelDo(collapse=3))
    eng.close()
    eng = OffloadEngine(device=Device(), env=PAPER_ENV, clock=SimClock())
    eng.launch(kernel, TargetTeamsDistributeParallelDo(collapse=3))
    eng.close()


def test_step3_full_sequence_reproduces_the_staircase(namelist):
    """Tables III-V: each stage strictly improves the program."""
    sequence = run_optimization_sequence(namelist, num_steps=STEPS)
    overall = [
        sequence.timings[s].overall
        for s in (
            Stage.BASELINE,
            Stage.LOOKUP,
            Stage.OFFLOAD_COLLAPSE2,
            Stage.OFFLOAD_COLLAPSE3,
        )
    ]
    assert overall[0] > overall[1] > overall[2] >= overall[3] * 0.999
    assert overall[0] / overall[3] > 1.3


def test_step4_outputs_verify(namelist):
    """Sec. VII-B: CPU vs GPU outputs agree to several digits."""
    frames = {}
    for stage in (Stage.BASELINE, Stage.OFFLOAD_COLLAPSE3):
        nl = (
            namelist
            if stage is Stage.BASELINE
            else conus12km_namelist(
                scale=SCALE,
                num_ranks=RANKS,
                stage=stage,
                num_gpus=RANKS,
                env=PAPER_ENV,
            )
        )
        model = WrfModel(nl)
        try:
            model.run(num_steps=STEPS)
            frames[stage] = model.gather_output()
        finally:
            model.close()
    diffs = diffwrf(frames[Stage.BASELINE], frames[Stage.OFFLOAD_COLLAPSE3])
    assert any(not d.bitwise_identical for d in diffs)
    assert all(d.digits > 2.0 for d in diffs)


def test_step5_scaling_story_holds():
    """Sec. VII-A: GPU wins at fixed GPUs; parity at equal resources;
    the 6th rank per GPU cannot start."""
    rates = WorkRates.measure(scale=SCALE, num_ranks=RANKS, num_steps=STEPS)
    base16 = project_run(
        conus12km_namelist(num_ranks=16, stage=Stage.BASELINE), rates
    )
    gpu16 = project_run(
        conus12km_namelist(
            num_ranks=16, stage=Stage.OFFLOAD_COLLAPSE3, num_gpus=16
        ),
        rates,
    )
    assert base16.total_seconds / gpu16.total_seconds > 1.5
    gpu48 = project_run(
        conus12km_namelist(
            num_ranks=48, stage=Stage.OFFLOAD_COLLAPSE3, num_gpus=8
        ),
        rates,
    )
    assert gpu48.failed and "CudaOutOfMemory" in gpu48.error
