"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.fsbm.collision_kernels import KernelTables, get_tables
from repro.fsbm.species import Species, species_bins
from repro.grid.domain import DomainSpec
from repro.optim.stages import Stage
from repro.wrf.namelist import Namelist, conus12km_namelist


@pytest.fixture(scope="session")
def tables() -> KernelTables:
    """The shared collision-kernel tables (expensive to build once)."""
    return get_tables()


@pytest.fixture(scope="session")
def bins():
    """Bin grids per species."""
    return species_bins()


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(42)


@pytest.fixture
def small_domain() -> DomainSpec:
    """A small but decomposable domain."""
    return DomainSpec(nx=24, nz=10, ny=16, dx=12_000.0, dz=500.0)


@pytest.fixture
def tiny_namelist() -> Namelist:
    """The smallest CONUS-12km configuration that still has storms."""
    return conus12km_namelist(scale=0.05, num_ranks=2, stage=Stage.BASELINE)


def make_liquid_dists(
    npts: int, nkr: int = 33, seed: int = 0, lo_bin: int = 5, hi_bin: int = 15
) -> dict[Species, np.ndarray]:
    """Distributions with liquid in mid bins and other species empty."""
    rng = np.random.default_rng(seed)
    dists = {sp: np.zeros((npts, nkr)) for sp in Species}
    dists[Species.LIQUID][:, lo_bin:hi_bin] = rng.uniform(
        0.0, 5.0, (npts, hi_bin - lo_bin)
    )
    return dists


def total_mass(dists: dict[Species, np.ndarray]) -> float:
    """Total condensate mass over all species [g/cm^3 summed]."""
    grids = species_bins()
    return float(
        sum((d @ grids[sp].masses).sum() for sp, d in dists.items())
    )
