"""GPU/CPU cost models: monotonicity and regime behaviour."""

import pytest

from repro.core.costmodel import CpuCostModel, GpuCostModel
from repro.core.directives import TargetTeamsDistributeParallelDo
from repro.core.env import OffloadEnv
from repro.core.kernel import Kernel, KernelResources
from repro.core.launch import plan_launch
from repro.hardware.memory import AccessPattern, TrafficComponent
from repro.hardware.specs import A100_40GB, EPYC_MILAN


def _kernel(extents=(75, 50, 107), regs=74, flops=1e9, active=None, frame=0):
    total = 1
    for e in extents:
        total *= e
    return Kernel(
        name="coal",
        loop_extents=extents,
        resources=KernelResources(
            registers_per_thread=regs,
            automatic_array_bytes=frame,
            working_set_per_thread=4752.0,
            flops=flops,
            traffic=(
                TrafficComponent(
                    name="work",
                    pattern=AccessPattern.THREAD_SEQUENTIAL,
                    read_bytes=flops * 0.5,
                    write_bytes=flops * 0.25,
                ),
            ),
            active_iterations=active if active is not None else total,
        ),
    )


@pytest.fixture(scope="module")
def gpu():
    return GpuCostModel(A100_40GB)


def _time(gpu, kernel, collapse):
    launch = plan_launch(
        kernel, TargetTeamsDistributeParallelDo(collapse=collapse), OffloadEnv()
    )
    return gpu.time(kernel, launch)


class TestGpuCostModel:
    def test_collapse3_beats_collapse2(self, gpu):
        """The paper's core result: the full collapse is much faster."""
        k = _kernel()
        t2 = _time(gpu, k, 2)
        t3 = _time(gpu, k, 3)
        assert t3.total < t2.total / 3

    def test_occupancy_drives_the_gap(self, gpu):
        k = _kernel()
        t2 = _time(gpu, k, 2)
        t3 = _time(gpu, k, 3)
        assert t3.occupancy.achieved > 5 * t2.occupancy.achieved

    def test_more_flops_cost_more_time(self, gpu):
        cheap = _time(gpu, _kernel(flops=1e8), 3)
        dear = _time(gpu, _kernel(flops=1e10), 3)
        assert dear.total > cheap.total

    def test_launch_overhead_floors_empty_kernels(self, gpu):
        t = _time(gpu, _kernel(flops=0.0, extents=(1, 1, 1)), 3)
        assert t.total >= A100_40GB.launch_overhead

    def test_divergence_penalty_for_sparse_activity(self, gpu):
        dense = _time(gpu, _kernel(active=75 * 50 * 107), 3)
        sparse = _time(gpu, _kernel(active=75 * 50), 3)  # ~1% active
        assert sparse.effective_flops > dense.effective_flops * 0.9

    def test_fp64_slower_than_fp32(self, gpu):
        k32 = _kernel()
        k64 = k32.with_resources(precision="fp64")
        assert _time(gpu, k64, 3).compute_time > _time(gpu, k32, 3).compute_time


class TestCpuCostModel:
    def test_time_positive_and_monotone(self):
        cpu = CpuCostModel(cpu=EPYC_MILAN)
        t1 = cpu.time(1e9, 1e8)
        t2 = cpu.time(2e9, 2e8)
        assert 0 < t1 < t2

    def test_bandwidth_contention_with_active_cores(self):
        alone = CpuCostModel(cpu=EPYC_MILAN, active_cores_on_socket=1)
        packed = CpuCostModel(cpu=EPYC_MILAN, active_cores_on_socket=64)
        # Memory-bound workload slows when the socket is saturated.
        assert packed.time(1e6, 1e10) > alone.time(1e6, 1e10)

    def test_iteration_overhead_charged(self):
        cpu = CpuCostModel(cpu=EPYC_MILAN)
        assert cpu.time(0, 0, iterations=10_000_000) > 0.01


class TestRegisterCapAblation:
    def test_capping_helps_register_bound_kernel(self, gpu):
        """The paper: limiting registers sped up collapse(3) down to 64."""
        k = _kernel(regs=234)
        uncapped = gpu.time(
            k,
            plan_launch(
                k, TargetTeamsDistributeParallelDo(collapse=3), OffloadEnv()
            ),
        )
        capped = gpu.time(
            k,
            plan_launch(
                k,
                TargetTeamsDistributeParallelDo(collapse=3),
                OffloadEnv(max_registers=64),
            ),
        )
        assert capped.total < uncapped.total
        assert capped.occupancy.achieved > uncapped.occupancy.achieved
