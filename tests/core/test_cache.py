"""Tests for the named counting caches (`repro.core.cache`)."""

from __future__ import annotations

import threading

import pytest

from repro.core.cache import (
    CountingCache,
    cache_stats,
    cached,
    clear_all_caches,
    get_cache,
)


class TestCountingCache:
    def test_hit_miss_counters(self):
        c = CountingCache("t.counters")
        calls = []
        assert c.get_or_build("k", lambda: calls.append(1) or "v") == "v"
        assert c.get_or_build("k", lambda: calls.append(1) or "v") == "v"
        assert len(calls) == 1
        info = c.info()
        assert (info.hits, info.misses, info.currsize) == (1, 1, 1)
        assert info.hit_rate == 0.5

    def test_lru_eviction(self):
        c = CountingCache("t.evict", maxsize=2)
        c.get_or_build("a", lambda: 1)
        c.get_or_build("b", lambda: 2)
        c.get_or_build("a", lambda: 1)  # refresh a: b is now LRU
        c.get_or_build("c", lambda: 3)
        assert "b" not in c
        assert "a" in c and "c" in c
        assert c.info().evictions == 1

    def test_clear_keeps_counters(self):
        c = CountingCache("t.clear")
        c.get_or_build("a", lambda: 1)
        c.get_or_build("a", lambda: 1)
        c.clear()
        info = c.info()
        assert info.currsize == 0
        assert (info.hits, info.misses) == (1, 1)

    def test_hit_rate_empty(self):
        assert CountingCache("t.empty").info().hit_rate == 0.0

    def test_builder_runs_once_under_contention(self):
        c = CountingCache("t.thread")
        built = []

        def build():
            built.append(1)
            return 42

        threads = [
            threading.Thread(target=lambda: c.get_or_build("k", build))
            for _ in range(8)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(built) == 1
        assert c.info().hits == 7


class TestRegistry:
    def test_get_cache_returns_same_instance(self):
        a = get_cache("t.registry.same", maxsize=3)
        b = get_cache("t.registry.same", maxsize=99)
        assert a is b
        assert a.maxsize == 3  # first registration wins

    def test_cache_stats_lists_registered(self):
        get_cache("t.registry.listed").get_or_build("x", lambda: 1)
        stats = cache_stats()
        assert "t.registry.listed" in stats
        assert stats["t.registry.listed"].misses >= 1

    def test_clear_all(self):
        c = get_cache("t.registry.clearall")
        c.get_or_build("x", lambda: 1)
        clear_all_caches()
        assert len(c) == 0


class TestCachedDecorator:
    def test_memoizes_and_exposes_lru_api(self):
        calls = []

        @cached("t.deco.basic")
        def f(x, y=0):
            calls.append((x, y))
            return x + y

        assert f(1) == 1
        assert f(1) == 1
        assert f(1, y=2) == 3
        assert f(1, y=2) == 3
        assert calls == [(1, 0), (1, 2)]
        info = f.cache_info()
        assert info.hits == 2 and info.misses == 2
        f.cache_clear()
        assert f(1) == 1
        assert calls == [(1, 0), (1, 2), (1, 0)]

    def test_wrapped_is_original(self):
        @cached("t.deco.wrapped")
        def g(x):
            """doc"""
            return x

        assert g.__wrapped__(5) == 5
        assert g.__doc__ == "doc"
        assert g.cache is get_cache("t.deco.wrapped")


class TestFsbmCachesRegistered:
    """The hot-path precomputes live in named, inspectable caches."""

    def test_kernel_tables_cache_visible(self):
        from repro.fsbm.collision_kernels import get_tables

        get_tables()
        get_tables()
        stats = cache_stats()
        assert "fsbm.kernel_tables" in stats
        assert stats["fsbm.kernel_tables"].hits >= 1

    def test_split_tensor_cache_counts_and_invalidates_by_nkr(self):
        from repro.fsbm.coal_bott import _split_tensor

        _split_tensor.cache_clear()
        before = _split_tensor.cache_info()
        g33 = _split_tensor(33)
        g33_again = _split_tensor(33)
        g17 = _split_tensor(17)
        after = _split_tensor.cache_info()
        assert g33 is g33_again
        assert g33.shape == (33, 33, 33)
        assert g17.shape == (17, 17, 17)
        assert after.misses - before.misses == 2  # one per nkr
        assert after.hits - before.hits == 1
        assert set(_split_tensor.cache.keys()) >= {(33,), (17,)}

    def test_coal_operator_cache_keys_on_rectangle(self):
        import numpy as np

        from repro.fsbm.coal_bott import _coal_operators
        from repro.fsbm.collision_kernels import get_tables

        tables = get_tables()
        cache = get_cache("fsbm.coal_operators")
        cache.clear()
        base = cache.info()
        _coal_operators(tables, "cwll", 33, 20, 20, np.dtype(np.float64))
        _coal_operators(tables, "cwll", 33, 20, 20, np.dtype(np.float64))
        _coal_operators(tables, "cwll", 33, 21, 20, np.dtype(np.float64))
        info = cache.info()
        assert info.misses - base.misses == 2
        assert info.hits - base.hits == 1


@pytest.fixture(autouse=True)
def _isolate_test_caches():
    yield
    # Drop only the throwaway caches this module registered; the fsbm
    # caches keep their (expensive) contents for other tests.
    for name, c in list(cache_stats().items()):
        if name.startswith("t."):
            get_cache(name).clear()
