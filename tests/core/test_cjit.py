"""The shared native-kernel JIT: build cache, kill switches, fallback."""

import ctypes

import numpy as np
import pytest

from repro.core import cjit

ADD_SOURCE = r"""
void add_scaled(double *x, double s, long n)
{
    for (long i = 0; i < n; i++)
        x[i] += s;
}
"""


def _declare_add(lib: ctypes.CDLL) -> None:
    lib.add_scaled.restype = None
    lib.add_scaled.argtypes = [
        ctypes.POINTER(ctypes.c_double), ctypes.c_double, ctypes.c_long
    ]


def _make(tmp_path, name="tiny_add", source=ADD_SOURCE, **kw):
    return cjit.CJitModule(
        name, source, build_dir=tmp_path, setup=_declare_add, **kw
    )


class TestCompileAndCall:
    def test_compiles_and_runs(self, tmp_path):
        mod = _make(tmp_path)
        lib = mod.load()
        assert lib is not None, mod.load_error
        assert mod.load_error == ""
        x = np.arange(5, dtype=np.float64)
        lib.add_scaled(
            x.ctypes.data_as(ctypes.POINTER(ctypes.c_double)), 2.5, 5
        )
        np.testing.assert_array_equal(x, np.arange(5) + 2.5)

    def test_shared_object_cached_by_source_hash(self, tmp_path):
        mod = _make(tmp_path)
        assert mod.load() is not None
        so = mod.so_path
        assert so.exists() and so.name == f"tiny_add_{mod.tag}.so"
        mtime = so.stat().st_mtime_ns
        # A fresh module with identical source reuses the on-disk .so.
        again = _make(tmp_path, name="tiny_add")
        assert again.load() is not None
        assert again.so_path == so
        assert so.stat().st_mtime_ns == mtime

    def test_source_change_changes_tag(self, tmp_path):
        a = _make(tmp_path)
        b = _make(tmp_path, source=ADD_SOURCE + "\n/* v2 */\n")
        assert a.tag != b.tag
        assert a.so_path != b.so_path

    def test_load_is_cached_per_process(self, tmp_path):
        mod = _make(tmp_path)
        assert mod.load() is mod.load()


class TestFailureModes:
    def test_bad_source_falls_back_with_error(self, tmp_path):
        mod = _make(tmp_path, name="broken", source="this is not C;")
        assert mod.load() is None
        assert mod.load_error != ""
        # Subsequent loads stay on the fallback without re-compiling.
        assert mod.load() is None

    def test_global_kill_switch(self, tmp_path, monkeypatch):
        monkeypatch.setenv(cjit.DISABLE_ALL_ENV, "1")
        mod = _make(tmp_path)
        assert mod.load() is None
        assert cjit.DISABLE_ALL_ENV in mod.load_error
        # Checked on every call: clearing the switch re-enables the lib.
        monkeypatch.delenv(cjit.DISABLE_ALL_ENV)
        assert mod.load() is not None
        assert mod.load_error == ""

    def test_module_kill_switch(self, tmp_path, monkeypatch):
        mod = _make(tmp_path, disable_env="REPRO_DISABLE_TINY")
        assert mod.load() is not None
        monkeypatch.setenv("REPRO_DISABLE_TINY", "1")
        # Mid-process disable sticks even though the lib loaded already.
        assert mod.load() is None
        assert "REPRO_DISABLE_TINY" in mod.load_error


class TestRegistry:
    def test_modules_are_registered(self, tmp_path):
        mod = _make(tmp_path, name="registered_probe")
        assert cjit.modules()["registered_probe"] is mod

    def test_production_modules_present(self):
        # The stencil and physics kernels register on import.
        import repro.fsbm.ckernels  # noqa: F401
        import repro.wrf.cstencil  # noqa: F401

        names = set(cjit.modules())
        assert {"stencil", "fsbm_kernels"} <= names

    def test_compiler_candidates_prefers_cc_env(self, monkeypatch):
        monkeypatch.setenv("CC", "/custom/cc")
        assert cjit.compiler_candidates()[0] == "/custom/cc"
