"""The -gpu=autocompare diagnostic (Sec. VII-B)."""

import numpy as np
import pytest

from repro.core.autocompare import (
    ArrayComparison,
    autocompare_region,
    compare_arrays,
)


class TestCompareArrays:
    def test_identical_arrays(self):
        a = np.random.default_rng(0).normal(size=(10, 10))
        c = compare_arrays("x", a, a.copy())
        assert c.n_diff == 0
        assert c.digits == 16.0

    def test_float32_rounding_lands_in_expected_band(self):
        """The paper's 6-7 digit agreement comes from fp32 rounding."""
        a = np.random.default_rng(0).uniform(0.5, 2.0, size=(100, 33))
        b = a.astype(np.float32).astype(np.float64)
        c = compare_arrays("fsbm", a, b)
        assert 6.0 < c.digits < 8.5
        assert c.n_diff > 0

    def test_zero_fields_compare_clean(self):
        c = compare_arrays("z", np.zeros(10), np.zeros(10))
        assert c.digits == 16.0

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            compare_arrays("x", np.zeros(3), np.zeros(4))


class TestRegionReport:
    def test_min_digits_over_arrays(self):
        host = {"a": np.ones(5), "b": np.ones(5)}
        dev = {"a": np.ones(5), "b": np.ones(5) * (1 + 1e-4)}
        report = autocompare_region("coal", host, dev)
        assert report.min_digits == pytest.approx(4.0, abs=0.2)

    def test_all_identical_reports_16(self):
        host = {"a": np.ones(5)}
        report = autocompare_region("coal", host, {"a": np.ones(5)})
        assert report.min_digits == 16.0

    def test_format(self):
        host = {"a": np.ones(5)}
        dev = {"a": np.ones(5) * (1 + 1e-6)}
        text = autocompare_region("coal", host, dev).format_report()
        assert "autocompare" in text and "digits" in text


class TestFastSbmIntegration:
    def test_autocompare_reports_per_step(self):
        from repro.core.clock import SimClock
        from repro.core.costmodel import CpuCostModel
        from repro.core.device import Device
        from repro.core.engine import OffloadEngine
        from repro.core.env import PAPER_ENV
        from repro.fsbm.fast_sbm import FastSBM
        from repro.fsbm.state import MicroState
        from repro.fsbm.thermo import saturation_mixing_ratio
        from repro.hardware.specs import EPYC_MILAN
        from repro.optim.stages import Stage

        shape = (8, 6, 8)
        state = MicroState(shape=shape)
        mask = np.zeros(shape, dtype=bool)
        mask[2:6, 1:5, 2:6] = True
        state.seed_cloud(mask, lwc=1.2e-6)
        t = np.broadcast_to(
            np.linspace(295.0, 250.0, 6)[None, :, None], shape
        ).copy()
        p = np.broadcast_to(
            np.linspace(950.0, 500.0, 6)[None, :, None], shape
        ).copy()
        qv = 1.02 * saturation_mixing_ratio(t, p)
        rho = np.full(shape, 1.0e-3)

        clock = SimClock()
        engine = OffloadEngine(device=Device(), env=PAPER_ENV, clock=clock)
        sbm = FastSBM(
            stage=Stage.OFFLOAD_COLLAPSE3,
            dt=5.0,
            clock=clock,
            cpu_cost=CpuCostModel(cpu=EPYC_MILAN),
            engine=engine,
            autocompare=True,
        )
        for _ in range(2):
            sbm.step(state, t, p, qv, rho, dz_cm=50_000.0)

        assert len(sbm.autocompare_reports) == 2
        report = sbm.autocompare_reports[0]
        # The paper: 6-7 digits of agreement per time step.
        assert 5.0 < report.min_digits <= 16.0
        assert any(a.n_diff > 0 for a in report.arrays)
