"""Simulated device: memory pool, contexts, the ranks-per-GPU limit."""

import numpy as np
import pytest

from repro.core.device import Device, DeviceContext, STACK_RESERVATION_FACTOR
from repro.core.env import PAPER_ENV, OffloadEnv
from repro.errors import CudaOutOfMemory, MappingError
from repro.hardware.specs import A100_40GB


def test_allocation_accounting():
    dev = Device()
    ctx = dev.open_context(OffloadEnv())
    before = dev.allocated_bytes
    ctx.alloc_array("x", (100, 100))
    assert dev.allocated_bytes == before + 100 * 100 * 4
    ctx.free_array("x")
    assert dev.allocated_bytes == before


def test_oom_raised_with_context_info():
    dev = Device()
    ctx = dev.open_context(OffloadEnv())
    with pytest.raises(CudaOutOfMemory, match="out of memory"):
        ctx.alloc_array("huge", (200_000, 200_000))


def test_double_map_rejected():
    ctx = Device().open_context(OffloadEnv())
    ctx.alloc_array("x", (4,))
    with pytest.raises(MappingError):
        ctx.alloc_array("x", (4,))


def test_use_before_map_rejected():
    ctx = Device().open_context(OffloadEnv())
    with pytest.raises(MappingError, match="before being mapped"):
        ctx.get("never_mapped")


def test_release_unmapped_rejected():
    ctx = Device().open_context(OffloadEnv())
    with pytest.raises(MappingError):
        ctx.free_array("nope")


def test_init_data_copies_and_casts():
    ctx = Device().open_context(OffloadEnv())
    host = np.arange(6, dtype=np.float64).reshape(2, 3)
    arr = ctx.alloc_array("x", (2, 3), dtype=np.float32, init=host)
    assert arr.dtype == np.float32
    np.testing.assert_allclose(arr.data, host)


def test_init_shape_mismatch_rejected():
    ctx = Device().open_context(OffloadEnv())
    with pytest.raises(MappingError):
        ctx.alloc_array("x", (3, 2), init=np.zeros((2, 3)))


class TestStackReservation:
    def test_reservation_scales_with_stack_size(self):
        dev = Device()
        small = dev.stack_reservation(OffloadEnv(stack_bytes=1024))
        large = dev.stack_reservation(PAPER_ENV)
        assert large == small * 64

    def test_paper_env_admits_exactly_five_contexts(self):
        """The Sec. VII-A limit: 5 MPI ranks per 40 GB A100."""
        dev = Device(spec=A100_40GB)
        contexts = []
        for _ in range(5):
            contexts.append(dev.open_context(PAPER_ENV))
        # Each rank also pins its temp_arrays; with the reservations
        # alone five fit:
        assert len(dev.contexts) == 5
        with pytest.raises(CudaOutOfMemory):
            ctx6 = dev.open_context(PAPER_ENV)
            # A sixth context with any real allocation must not fit
            # once per-rank temp arrays are added; the reservation
            # itself may fit, so force the footprint:
            ctx6.alloc_array("temp", (2_000_000_000,), dtype=np.float32)

    def test_close_releases_everything(self):
        dev = Device()
        ctx = dev.open_context(PAPER_ENV)
        ctx.alloc_array("x", (1000,))
        ctx.close()
        assert dev.allocated_bytes == 0
        assert ctx not in dev.contexts
        ctx.close()  # idempotent


def test_footprint_includes_reservation():
    dev = Device()
    ctx = dev.open_context(PAPER_ENV)
    ctx.alloc_array("x", (1000,))
    assert ctx.footprint_bytes == ctx.mapped_bytes + dev.stack_reservation(PAPER_ENV)
