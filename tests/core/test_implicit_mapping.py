"""Implicit (default) OpenMP data transfers vs explicit map clauses.

Sec. V-B: "by default OpenMP always performs data transfers when
entering or exiting an offloading region regardless of necessity."
"""

import numpy as np
import pytest

from repro.core.clock import SimClock, TimeBucket
from repro.core.device import Device
from repro.core.directives import (
    Map,
    MapType,
    TargetEnterData,
    TargetTeamsDistributeParallelDo,
    map_alloc,
    map_to,
)
from repro.core.engine import OffloadEngine
from repro.core.env import OffloadEnv
from repro.core.kernel import Kernel, KernelResources


def _engine():
    return OffloadEngine(device=Device(), env=OffloadEnv(), clock=SimClock())


def _kernel():
    return Kernel(
        name="k",
        loop_extents=(10, 10),
        resources=KernelResources(
            registers_per_thread=64,
            automatic_array_bytes=0,
            working_set_per_thread=100.0,
            flops=1e6,
            traffic=(),
            active_iterations=100,
        ),
    )


def test_unmapped_references_transfer_both_ways():
    eng = _engine()
    big = np.zeros((512, 512))
    eng.launch(
        _kernel(),
        TargetTeamsDistributeParallelDo(collapse=2),
        referenced={"scratch": big},
    )
    assert eng.clock.bucket(TimeBucket.H2D) > 0
    assert eng.clock.bucket(TimeBucket.D2H) > 0
    # Transient: gone after the region.
    assert "scratch" not in eng.ctx.arrays


def test_explicit_to_clause_skips_the_download():
    implicit = _engine()
    big = np.zeros((512, 512))
    implicit.launch(
        _kernel(),
        TargetTeamsDistributeParallelDo(collapse=2),
        referenced={"table": big},
    )

    explicit = _engine()
    explicit.launch(
        _kernel(),
        TargetTeamsDistributeParallelDo(collapse=2, maps=(map_to("table"),)),
        to_arrays={"table": big},
        referenced={"table": big},
    )
    # Read-only input: map(to:) halves the traffic.
    assert explicit.clock.bucket(TimeBucket.D2H) == 0.0
    assert implicit.clock.bucket(TimeBucket.D2H) > 0
    assert (
        explicit.clock.bucket(TimeBucket.H2D)
        == implicit.clock.bucket(TimeBucket.H2D)
    )


def test_persistent_device_data_never_moves_implicitly():
    """Arrays already resident (target enter data) are not re-shipped —
    the temp_arrays pattern of Listing 8."""
    eng = _engine()
    eng.enter_data(
        TargetEnterData(maps=(map_alloc("fl1_temp"),)),
        shapes={"fl1_temp": (256, 256)},
    )
    h2d_before = eng.clock.bucket(TimeBucket.H2D)
    eng.launch(
        _kernel(),
        TargetTeamsDistributeParallelDo(collapse=2),
        referenced={"fl1_temp": np.zeros((256, 256))},
    )
    assert eng.clock.bucket(TimeBucket.H2D) == h2d_before
    assert eng.clock.bucket(TimeBucket.D2H) == 0.0


def test_implicit_transfer_waste_scales_with_array_size():
    small, large = _engine(), _engine()
    small.launch(
        _kernel(),
        TargetTeamsDistributeParallelDo(collapse=2),
        referenced={"x": np.zeros(16)},
    )
    large.launch(
        _kernel(),
        TargetTeamsDistributeParallelDo(collapse=2),
        referenced={"x": np.zeros(1 << 22)},
    )
    assert (
        large.clock.bucket(TimeBucket.D2H)
        > 10 * small.clock.bucket(TimeBucket.D2H)
    )
