"""Kernel descriptors, warp rounding, register estimation."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.kernel import (
    BASE_FRAME_BYTES,
    Kernel,
    KernelResources,
    estimate_registers,
    warp_rounded,
)
from repro.errors import ConfigurationError


def _resources(**overrides):
    kw = dict(
        registers_per_thread=64,
        automatic_array_bytes=0,
        working_set_per_thread=4752.0,
        flops=1e9,
        traffic=(),
        active_iterations=1000,
    )
    kw.update(overrides)
    return KernelResources(**kw)


class TestWarpRounded:
    def test_all_active_no_waste(self):
        assert warp_rounded(3200, 3200) == pytest.approx(3200)

    def test_no_active_no_cost(self):
        assert warp_rounded(0, 3200) == 0.0

    def test_sparse_activity_pays_for_whole_warps(self):
        # 1% activity scattered uniformly: nearly every warp has work.
        eff = warp_rounded(100, 10_000)
        assert eff > 100  # pays more than the active count
        assert eff <= 10_000

    @given(active=st.integers(0, 5000), total=st.integers(1, 5000))
    @settings(max_examples=60, deadline=None)
    def test_bounds(self, active, total):
        eff = warp_rounded(active, total)
        assert 0.0 <= eff <= total + 1e-9
        assert eff >= min(active, total) - 1e-9


class TestEstimateRegisters:
    def test_automatic_array_version_is_register_heavy(self):
        regs = estimate_registers(30, 30, pointer_based=False)
        assert regs > 200

    def test_pointer_version_is_lighter(self):
        heavy = estimate_registers(30, 30, pointer_based=False)
        light = estimate_registers(20, 30, pointer_based=True)
        assert light < heavy / 2

    def test_clamped_to_hardware_range(self):
        assert estimate_registers(500, 500) == 255
        assert estimate_registers(0, 0) >= 32


class TestKernelResources:
    def test_frame_includes_base_overhead(self):
        r = _resources(automatic_array_bytes=4752)
        assert r.frame_bytes == 4752 + BASE_FRAME_BYTES

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            _resources(registers_per_thread=0)
        with pytest.raises(ConfigurationError):
            _resources(flops=-1.0)
        with pytest.raises(ConfigurationError):
            _resources(precision="fp16")


class TestKernel:
    def test_iteration_split_by_collapse(self):
        k = Kernel(name="k", loop_extents=(75, 50, 107), resources=_resources())
        assert k.total_iterations == 75 * 50 * 107
        assert k.parallel_iterations(2) == 75 * 50
        assert k.serial_iterations_per_thread(2) == 107
        assert k.parallel_iterations(3) == k.total_iterations
        assert k.serial_iterations_per_thread(3) == 1

    def test_collapse_beyond_depth_clamps(self):
        k = Kernel(name="k", loop_extents=(10, 10), resources=_resources())
        assert k.parallel_iterations(5) == 100

    def test_with_resources_copies(self):
        k = Kernel(name="k", loop_extents=(4,), resources=_resources())
        k2 = k.with_resources(registers_per_thread=128)
        assert k2.resources.registers_per_thread == 128
        assert k.resources.registers_per_thread == 64

    def test_empty_extents_rejected(self):
        with pytest.raises(ConfigurationError):
            Kernel(name="k", loop_extents=(), resources=_resources())
