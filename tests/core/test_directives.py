"""OpenMP directive objects and their rendered Fortran text."""

import pytest

from repro.core.directives import (
    DeclareTarget,
    Map,
    MapType,
    TargetEnterData,
    TargetTeamsDistributeParallelDo,
    map_alloc,
    map_from,
    map_to,
)
from repro.errors import ConfigurationError


def test_map_render():
    assert map_to("a", "b").render() == "map(to: a, b)"
    assert map_from("cwls").render() == "map(from: cwls)"


def test_map_requires_names():
    with pytest.raises(ConfigurationError):
        Map(MapType.TO, ())


def test_combined_construct_render_matches_listing4_shape():
    d = TargetTeamsDistributeParallelDo(
        private=("n",),
        maps=(map_from("cwlg", "cwls"),),
    )
    text = d.render()
    assert text.splitlines()[0].startswith("!$omp target teams distribute")
    assert "parallel do" in text
    assert "private(n)" in text
    assert "map(from: cwlg, cwls)" in text
    # Continuation style.
    assert all(l.endswith("&") for l in text.splitlines()[:-1])


def test_collapse_clause_rendered_only_when_gt1():
    assert "collapse" not in TargetTeamsDistributeParallelDo(collapse=1).render()
    assert "collapse(3)" in TargetTeamsDistributeParallelDo(collapse=3).render()


def test_collapse_validation():
    with pytest.raises(ConfigurationError):
        TargetTeamsDistributeParallelDo(collapse=0)


def test_maps_of_filters_by_type():
    d = TargetTeamsDistributeParallelDo(
        maps=(map_to("a"), map_from("b", "c"), map_alloc("d"))
    )
    assert d.maps_of(MapType.FROM) == ("b", "c")
    assert d.maps_of(MapType.TO) == ("a",)
    assert d.maps_of(MapType.TOFROM) == ()


def test_enter_data_render():
    d = TargetEnterData(maps=(map_alloc("fl1_temp", "fl2_temp"),))
    assert d.render() == "!$omp target enter data map(alloc: fl1_temp, fl2_temp)"


def test_declare_target_render():
    assert DeclareTarget().render() == "!$omp declare target"
    assert DeclareTarget(("fl1_temp",)).render() == "!$omp declare target (fl1_temp)"
