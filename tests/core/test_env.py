"""Offload environment parsing and validation (Table II knobs)."""

import pytest

from repro.core.env import PAPER_ENV, OffloadEnv, parse_size
from repro.errors import ConfigurationError


class TestParseSize:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("65536", 65536),
            ("64MB", 64 * 1024**2),
            ("64mb", 64 * 1024**2),
            ("1G", 1024**3),
            ("8K", 8 * 1024),
            (" 128 MiB ", 128 * 1024**2),
            (123, 123),
        ],
    )
    def test_accepted_forms(self, text, expected):
        assert parse_size(text) == expected

    def test_rejects_garbage(self):
        with pytest.raises(ConfigurationError):
            parse_size("lots")


class TestOffloadEnv:
    def test_defaults_are_sane(self):
        env = OffloadEnv()
        assert env.stack_bytes == 1024
        assert env.block_size == 128

    def test_from_env_reads_nvhpc_variables(self):
        env = OffloadEnv.from_env(
            {"NV_ACC_CUDA_STACKSIZE": "65536", "NV_ACC_CUDA_HEAPSIZE": "64MB"}
        )
        assert env.stack_bytes == 65536
        assert env.heap_bytes == 64 * 1024**2

    def test_paper_env_matches_table2(self):
        assert PAPER_ENV.stack_bytes == 65536
        assert PAPER_ENV.heap_bytes == 64 * 1024**2

    def test_with_stack_accepts_strings(self):
        env = OffloadEnv().with_stack("128K")
        assert env.stack_bytes == 128 * 1024

    def test_with_registers_validates_range(self):
        env = OffloadEnv().with_registers(64)
        assert env.max_registers == 64
        with pytest.raises(ConfigurationError):
            OffloadEnv().with_registers(7)

    def test_block_size_must_be_warp_multiple(self):
        with pytest.raises(ConfigurationError):
            OffloadEnv(block_size=100)

    def test_nonpositive_sizes_rejected(self):
        with pytest.raises(ConfigurationError):
            OffloadEnv(stack_bytes=0)
