"""Launch planning: block/grid computation, register caps, spills."""

import math

import pytest

from repro.core.directives import TargetTeamsDistributeParallelDo
from repro.core.env import OffloadEnv
from repro.core.kernel import Kernel, KernelResources
from repro.core.launch import plan_launch


def _kernel(extents=(75, 50, 107), regs=200):
    return Kernel(
        name="coal",
        loop_extents=extents,
        resources=KernelResources(
            registers_per_thread=regs,
            automatic_array_bytes=0,
            working_set_per_thread=4752.0,
            flops=1e9,
            traffic=(),
            active_iterations=1000,
        ),
    )


def test_collapse2_grid_geometry():
    cfg = plan_launch(
        _kernel(), TargetTeamsDistributeParallelDo(collapse=2), OffloadEnv()
    )
    assert cfg.parallel_iterations == 75 * 50
    assert cfg.serial_iterations_per_thread == 107
    assert cfg.block_size == 128
    assert cfg.grid_blocks == math.ceil(75 * 50 / 128)


def test_collapse3_grid_geometry():
    cfg = plan_launch(
        _kernel(), TargetTeamsDistributeParallelDo(collapse=3), OffloadEnv()
    )
    assert cfg.parallel_iterations == 75 * 50 * 107
    assert cfg.serial_iterations_per_thread == 1


def test_thread_limit_overrides_block_size():
    cfg = plan_launch(
        _kernel(),
        TargetTeamsDistributeParallelDo(collapse=2, thread_limit=64),
        OffloadEnv(),
    )
    assert cfg.block_size == 64


def test_register_cap_spills():
    cfg = plan_launch(
        _kernel(regs=200),
        TargetTeamsDistributeParallelDo(collapse=3),
        OffloadEnv(max_registers=64),
    )
    assert cfg.registers_per_thread == 64
    assert cfg.spilled_registers == 136
    assert cfg.spill_traffic_bytes() > 0


def test_no_spill_when_cap_above_usage():
    cfg = plan_launch(
        _kernel(regs=60),
        TargetTeamsDistributeParallelDo(collapse=3),
        OffloadEnv(max_registers=128),
    )
    assert cfg.spilled_registers == 0
    assert cfg.spill_traffic_bytes() == 0.0


def test_spill_traffic_scales_with_serial_work():
    c2 = plan_launch(
        _kernel(regs=200),
        TargetTeamsDistributeParallelDo(collapse=2),
        OffloadEnv(max_registers=64),
    )
    c3 = plan_launch(
        _kernel(regs=200),
        TargetTeamsDistributeParallelDo(collapse=3),
        OffloadEnv(max_registers=64),
    )
    # Same total work, so spills cost the same order either way; the
    # per-thread serial loop multiplies the per-iteration respill.
    assert c2.spill_traffic_bytes() == pytest.approx(c3.spill_traffic_bytes())


def test_empty_parallel_dimension():
    k = Kernel(
        name="k",
        loop_extents=(0, 10),
        resources=_kernel().resources,
    )
    cfg = plan_launch(k, TargetTeamsDistributeParallelDo(collapse=2), OffloadEnv())
    assert cfg.grid_blocks == 0
    assert cfg.total_threads == 0
